#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace deepseq::nn {

/// A node in the dynamically built computation graph. `value` is always
/// present; `grad` is allocated lazily during backward(). Operation nodes
/// carry a backward function that scatters the node's gradient into its
/// parents' gradients.
struct VarNode {
  Tensor value;
  Tensor grad;  // empty until needed
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarNode>> parents;
  std::function<void(VarNode&)> backward_fn;
  std::uint64_t id = 0;  // creation order: descending id is a reverse topo order

  bool has_grad() const { return grad.rows() == value.rows() && grad.cols() == value.cols() && grad.size() > 0; }
  Tensor& ensure_grad() {
    if (!has_grad()) grad = Tensor(value.rows(), value.cols());
    return grad;
  }
};

using Var = std::shared_ptr<VarNode>;

/// Create a trainable parameter (lives outside any Graph tape; gradients
/// accumulate across backward calls until an optimizer zeroes them).
Var make_param(Tensor value);
/// Create a non-trainable constant/input.
Var make_constant(Tensor value);

/// Reference to one row of a Var — the unit the GNN state map hands to
/// gather(): node states live as rows of per-level matrices.
struct RowRef {
  Var var;
  int row = 0;
};

/// Dynamic reverse-mode autograd tape. All operations are methods so that
/// every created node is registered with the tape, which (a) gives backward
/// a creation-order topological sort and (b) lets clear() break parent links
/// iteratively, avoiding deep recursive shared_ptr destruction on long
/// unrolled propagation graphs. Construct with grad_enabled=false for
/// inference: ops then keep no parents/backwards and intermediates free as
/// soon as they go out of scope.
class Graph {
 public:
  explicit Graph(bool grad_enabled = true) : grad_enabled_(grad_enabled) {}
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  ~Graph() { clear(); }

  bool grad_enabled() const { return grad_enabled_; }

  Var constant(Tensor value);

  // ---- elementwise / linear algebra ---------------------------------------
  Var add(const Var& a, const Var& b);
  Var sub(const Var& a, const Var& b);
  Var mul(const Var& a, const Var& b);
  /// a (r x c) + row (1 x c), broadcast over rows.
  Var add_row(const Var& a, const Var& row);
  Var matmul(const Var& a, const Var& b);
  Var scale(const Var& a, float s);
  Var sigmoid(const Var& a);
  Var tanh_(const Var& a);
  Var relu(const Var& a);
  /// 1 - a (elementwise), used by the GRU update gate.
  Var one_minus(const Var& a);

  // ---- structure ops for level-batched message passing --------------------
  /// Horizontally concatenate equal-row-count blocks.
  Var concat_cols(const std::vector<Var>& blocks);
  /// Stack arbitrary rows of arbitrary Vars into a new matrix.
  Var gather(const std::vector<RowRef>& refs);
  /// Per-segment softmax over a column of scores (E x 1). segment[e] in
  /// [0, num_segments); entries of a segment need not be contiguous.
  Var segment_softmax(const Var& scores, const std::vector<int>& segment,
                      int num_segments);
  /// values (E x d) * col (E x 1) broadcast across columns.
  Var mul_col(const Var& values, const Var& col);
  /// Sum rows of values (E x d) into their segment (num_segments x d).
  Var segment_sum(const Var& values, const std::vector<int>& segment,
                  int num_segments);
  /// Columnwise max of values (E x d) per segment (num_segments x d);
  /// gradient flows to the (first) argmax row of each segment/column only.
  /// Empty segments yield 0.
  Var segment_max(const Var& values, const std::vector<int>& segment,
                  int num_segments);

  // ---- losses --------------------------------------------------------------
  /// Mean absolute error against a fixed target; returns a 1x1 scalar.
  Var l1_loss(const Var& pred, const Tensor& target);
  /// Weighted mean absolute error; weight shape == pred shape.
  Var l1_loss_weighted(const Var& pred, const Tensor& target,
                       const Tensor& weight);
  /// Mean softmax cross-entropy of logits (B x C) against integer class
  /// labels (size B, values in [0, C)); returns a 1x1 scalar. Numerically
  /// stabilized by row-max subtraction.
  Var softmax_cross_entropy(const Var& logits, const std::vector<int>& labels);

  /// Backpropagate from a scalar (or any) root: seeds d(root)/d(root) = 1.
  void backward(const Var& root);

  /// Break all graph links recorded on this tape (values stay valid).
  void clear();

  std::size_t tape_size() const { return tape_.size(); }

 private:
  Var record(Tensor value, std::vector<Var> parents,
             std::function<void(VarNode&)> backward_fn);

  bool grad_enabled_;
  std::vector<Var> tape_;
};

}  // namespace deepseq::nn
