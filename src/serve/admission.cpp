#include "serve/admission.hpp"

#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace deepseq::serve {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-kind admission counters on the process-wide obs registry — the shed
/// accounting the serving tier's "submitted == completed + failed + shed"
/// invariant is audited against. Resolved once per process.
struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* shed;
};

const AdmissionMetrics& admission_metrics(int kind) {
  static const std::array<AdmissionMetrics, kNumTaskKinds> all = [] {
    std::array<AdmissionMetrics, kNumTaskKinds> a{};
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kNumTaskKinds; ++i) {
      const std::string kind_name =
          api::task_name(static_cast<api::TaskKind>(i));
      a[static_cast<std::size_t>(i)] =
          AdmissionMetrics{&reg.counter("serve.admitted." + kind_name),
                           &reg.counter("serve.shed." + kind_name)};
    }
    return a;
  }();
  return all[static_cast<std::size_t>(kind)];
}

obs::Counter& shed_reason_counter(ShedReason r) {
  static obs::Counter* by_reason[3] = {
      &obs::Registry::global().counter("serve.shed_reason.queue-full"),
      &obs::Registry::global().counter("serve.shed_reason.deadline"),
      &obs::Registry::global().counter("serve.shed_reason.shutdown"),
  };
  return *by_reason[static_cast<int>(r)];
}

}  // namespace

const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kDeadline: return "deadline";
    case ShedReason::kShutdown: return "shutdown";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(const AdmissionConfig& config)
    : config_(config),
      clock_(config.clock ? config.clock
                          : std::function<std::uint64_t()>(steady_now_ns)) {
  if (config_.workers < 1)
    throw Error("AdmissionQueue: workers must be >= 1, got " +
                std::to_string(config_.workers));
  ewma_ns_.fill(config_.initial_cost_ns);
}

std::size_t AdmissionQueue::depth(int kind) const {
  const std::size_t d = config_.depth[static_cast<std::size_t>(kind)];
  return d > 0 ? d : config_.default_depth;
}

std::optional<ShedReason> AdmissionQueue::shed_locked(int kind,
                                                      ShedReason reason) {
  counts_.shed[static_cast<std::size_t>(kind)] += 1;
  counts_.shed_by_reason[static_cast<std::size_t>(reason)] += 1;
  admission_metrics(kind).shed->inc();
  shed_reason_counter(reason).inc();
  return reason;
}

std::optional<ShedReason> AdmissionQueue::try_push(Job job) {
  const int kind = job.kind;
  if (kind < 0 || kind >= kNumTaskKinds)
    throw Error("AdmissionQueue: bad task kind index " + std::to_string(kind));
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return shed_locked(kind, ShedReason::kShutdown);
  auto& q = queues_[static_cast<std::size_t>(kind)];
  if (q.size() >= depth(kind))
    return shed_locked(kind, ShedReason::kQueueFull);
  const std::uint64_t cost = ewma_ns_[static_cast<std::size_t>(kind)];
  if (job.deadline_ns != 0) {
    const std::uint64_t wait =
        total_queued_cost_ns_ / static_cast<std::uint64_t>(config_.workers);
    const std::uint64_t now = clock_();
    // Shed when the job would still be queued at its deadline: the wait
    // estimate alone must fit the budget (service time is the client's
    // problem to include in the deadline it picks).
    if (now + wait > job.deadline_ns)
      return shed_locked(kind, ShedReason::kDeadline);
  }
  counts_.admitted[static_cast<std::size_t>(kind)] += 1;
  admission_metrics(kind).admitted->inc();
  q.push_back(std::move(job));
  queued_cost_[static_cast<std::size_t>(kind)].push_back(cost);
  total_queued_cost_ns_ += cost;
  ready_.notify_one();
  return std::nullopt;
}

bool AdmissionQueue::pop(Job& out) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ready_.wait(lock, [&] {
      if (shutdown_) return true;
      for (const auto& q : queues_)
        if (!q.empty()) return true;
      return false;
    });
    // Highest priority (smallest value) non-empty kind, ties toward the
    // lower kind index — a deterministic total order.
    int best = -1;
    for (int k = 0; k < kNumTaskKinds; ++k) {
      if (queues_[static_cast<std::size_t>(k)].empty()) continue;
      if (best < 0 || config_.priority[static_cast<std::size_t>(k)] <
                          config_.priority[static_cast<std::size_t>(best)])
        best = k;
    }
    if (best < 0) {
      if (shutdown_) return false;
      continue;
    }
    auto& q = queues_[static_cast<std::size_t>(best)];
    Job job = std::move(q.front());
    q.pop_front();
    auto& costs = queued_cost_[static_cast<std::size_t>(best)];
    total_queued_cost_ns_ -= costs.front();
    costs.pop_front();
    // Pop-side deadline check: a job that expired while queued is shed here
    // (its shed callback delivers the typed error) and the popper keeps
    // waiting for live work.
    if (job.deadline_ns != 0 && clock_() > job.deadline_ns) {
      // Counters stay monotone (obs mirrors them): `admitted` counts jobs
      // that passed push-time admission, so a job shed after admission
      // appears in both admitted and shed — the audited identity is
      // submitted == completed + failed + shed.
      shed_locked(best, ShedReason::kDeadline);
      lock.unlock();
      if (job.shed) job.shed(ShedReason::kDeadline);
      lock.lock();
      continue;
    }
    out = std::move(job);
    return true;
  }
}

void AdmissionQueue::shutdown() {
  std::vector<Job> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      for (int k = 0; k < kNumTaskKinds; ++k) {
        auto& q = queues_[static_cast<std::size_t>(k)];
        while (!q.empty()) {
          shed_locked(k, ShedReason::kShutdown);
          drained.push_back(std::move(q.front()));
          q.pop_front();
        }
        queued_cost_[static_cast<std::size_t>(k)].clear();
      }
      total_queued_cost_ns_ = 0;
    }
  }
  ready_.notify_all();
  for (Job& job : drained)
    if (job.shed) job.shed(ShedReason::kShutdown);
}

void AdmissionQueue::record_service_ns(int kind, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t& e = ewma_ns_[static_cast<std::size_t>(kind)];
  e = e == 0 ? ns : (7 * e + ns) / 8;
}

std::uint64_t AdmissionQueue::estimated_wait_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_cost_ns_ / static_cast<std::uint64_t>(config_.workers);
}

std::uint64_t AdmissionQueue::service_estimate_ns(int kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_ns_[static_cast<std::size_t>(kind)];
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

AdmissionQueue::Counts AdmissionQueue::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

}  // namespace deepseq::serve
