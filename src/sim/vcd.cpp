#include "sim/vcd.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/bench_io.hpp"

namespace deepseq {

namespace {

/// VCD identifiers: base-94 strings over the printable range '!'..'~'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& out, const Circuit& c,
                     std::vector<NodeId> watch)
    : out_(out), c_(c), watch_(std::move(watch)) {
  if (watch_.empty())
    for (NodeId v = 0; v < c.num_nodes(); ++v) watch_.push_back(v);
  for (NodeId v : watch_)
    if (v >= c.num_nodes()) throw Error("VcdWriter: watched node out of range");

  const auto names = unique_node_names(c);
  ids_.reserve(watch_.size());
  last_.assign(watch_.size(), -1);

  out_ << "$version deepseq sequential simulator $end\n";
  out_ << "$timescale 1ns $end\n";
  out_ << "$scope module " << (c.name().empty() ? "top" : c.name())
       << " $end\n";
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    ids_.push_back(vcd_id(i));
    out_ << "$var wire 1 " << ids_[i] << ' ' << names[watch_[i]] << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::sample(const SequentialSimulator& sim, int lane) {
  if (lane < 0 || lane > 63) throw Error("VcdWriter: lane must be in [0,63]");
  bool stamped = false;
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    const signed char bit =
        static_cast<signed char>((sim.value(watch_[i]) >> lane) & 1ULL);
    if (bit == last_[i]) continue;
    if (!stamped) {
      out_ << '#' << time_ << '\n';
      stamped = true;
    }
    out_ << (bit ? '1' : '0') << ids_[i] << '\n';
    last_[i] = bit;
  }
  ++time_;
}

std::string dump_vcd(const Circuit& c, const Workload& w, int cycles) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("dump_vcd: workload PI count mismatch");
  std::ostringstream out;
  VcdWriter vcd(out, c);
  SequentialSimulator sim(c);
  Rng rng(w.pattern_seed);
  std::vector<std::uint64_t> pi(c.pis().size());
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t k = 0; k < pi.size(); ++k)
      pi[k] = rng.bernoulli_word(w.pi_prob[k]);
    sim.step(pi);
    vcd.sample(sim);
    sim.clock();
  }
  return out.str();
}

}  // namespace deepseq
