#include "netlist/subcircuit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "dataset/generator.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

Circuit random_aig(std::uint64_t seed, int gates = 300, int ffs = 24) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_gates = gates;
  spec.num_ffs = ffs;
  return optimize_aig(decompose_to_aig(generate_circuit(spec, rng)).aig).circuit;
}

TEST(Subcircuit, ValidatesAndRespectsSize) {
  const Circuit big = random_aig(1);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit sub = extract_subcircuit(big, 80, rng);
    EXPECT_NO_THROW(sub.validate());
    // Region capped at 80; boundary PIs can add more nodes but not double.
    EXPECT_LE(sub.num_nodes(), 80u + 120u);
    EXPECT_GE(sub.num_nodes(), 8u);
  }
}

TEST(Subcircuit, PreservesAigVocabulary) {
  // Extraction introduces no new gate types: everything stays in the AIG
  // vocabulary (plus CONST0, which optimization can legitimately produce
  // from annihilated reconvergence and the dataset builder filters out).
  const Circuit big = random_aig(3);
  Rng rng(4);
  const Circuit sub = extract_subcircuit(big, 120, rng);
  for (NodeId v = 0; v < sub.num_nodes(); ++v)
    EXPECT_TRUE(is_aig_type(sub.type(v)) || sub.type(v) == GateType::kConst0)
        << gate_type_name(sub.type(v));
}

TEST(Subcircuit, HasInputsAndOutputs) {
  const Circuit big = random_aig(5);
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit sub = extract_subcircuit(big, 100, rng);
    EXPECT_FALSE(sub.pis().empty());
    EXPECT_FALSE(sub.pos().empty());
  }
}

TEST(Subcircuit, DeterministicGivenRngState) {
  const Circuit big = random_aig(7);
  Rng r1(42), r2(42);
  const Circuit s1 = extract_subcircuit(big, 90, r1);
  const Circuit s2 = extract_subcircuit(big, 90, r2);
  EXPECT_EQ(s1.num_nodes(), s2.num_nodes());
  EXPECT_EQ(s1.type_counts(), s2.type_counts());
}

TEST(Subcircuit, TargetLargerThanComponentTakesComponent) {
  // On a connected circuit, an oversized target captures every node (the
  // BFS walks the seed's connected component).
  const Circuit big = decompose_to_aig(iscas89_s27()).aig;
  Rng rng(9);
  const Circuit sub = extract_subcircuit(big, 100000, rng);
  EXPECT_EQ(sub.num_nodes(), big.num_nodes());
}

TEST(Subcircuit, EmptyCircuitThrows) {
  Circuit empty;
  Rng rng(1);
  EXPECT_THROW(extract_subcircuit(empty, 10, rng), CircuitError);
}

TEST(Subcircuit, OftenKeepsFlipFlops) {
  const Circuit big = random_aig(10);
  Rng rng(11);
  int with_ffs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Circuit sub = extract_subcircuit(big, 120, rng);
    with_ffs += !sub.ffs().empty();
  }
  EXPECT_GT(with_ffs, 10);  // most decent-sized regions contain FFs
}

}  // namespace
}  // namespace deepseq
