#include "sim/fault_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "dataset/embedded.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

Workload s27_workload(std::uint64_t seed = 9) {
  Workload w;
  w.pi_prob = {0.4, 0.5, 0.6, 0.5};
  w.pattern_seed = seed;
  return w;
}

TEST(FaultSim, ZeroErrorRateIsPerfectlyReliable) {
  const Circuit c = iscas89_s27();
  FaultSimOptions opt;
  opt.num_sequences = 128;
  opt.cycles_per_sequence = 50;
  opt.gate_error_rate = 0.0;
  const FaultSimResult r = simulate_faults(c, s27_workload(), opt);
  EXPECT_DOUBLE_EQ(r.circuit_reliability, 1.0);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(r.err01[v], 0.0);
    EXPECT_DOUBLE_EQ(r.err10[v], 0.0);
    EXPECT_DOUBLE_EQ(r.node_reliability[v], 1.0);
  }
}

TEST(FaultSim, SingleGateErrorRateMatchesEpsilon) {
  // One AND gate: its conditional flip probabilities equal the injection
  // rate (no propagation or masking involved).
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  c.add_po(g, "o");
  Workload w;
  w.pi_prob = {0.5, 0.5};
  w.pattern_seed = 3;
  FaultSimOptions opt;
  opt.num_sequences = 2048;
  opt.cycles_per_sequence = 50;
  opt.gate_error_rate = 0.02;
  const FaultSimResult r = simulate_faults(c, w, opt);
  EXPECT_NEAR(r.err01[g], 0.02, 0.004);
  EXPECT_NEAR(r.err10[g], 0.02, 0.004);
  EXPECT_NEAR(r.circuit_reliability, 0.98, 0.004);
}

TEST(FaultSim, PisAreNeverCorrupted) {
  const Circuit c = iscas89_s27();
  FaultSimOptions opt;
  opt.num_sequences = 128;
  opt.cycles_per_sequence = 50;
  opt.gate_error_rate = 0.05;
  const FaultSimResult r = simulate_faults(c, s27_workload(), opt);
  for (NodeId pi : c.pis()) {
    EXPECT_DOUBLE_EQ(r.err01[pi], 0.0);
    EXPECT_DOUBLE_EQ(r.err10[pi], 0.0);
  }
}

TEST(FaultSim, HigherErrorRateLowersReliability) {
  const Circuit c = iscas89_s27();
  FaultSimOptions low, high;
  low.num_sequences = high.num_sequences = 512;
  low.cycles_per_sequence = high.cycles_per_sequence = 50;
  low.gate_error_rate = 0.001;
  high.gate_error_rate = 0.05;
  const double r_low = simulate_faults(c, s27_workload(), low).circuit_reliability;
  const double r_high = simulate_faults(c, s27_workload(), high).circuit_reliability;
  EXPECT_GT(r_low, r_high);
  EXPECT_GT(r_low, 0.98);
  EXPECT_LT(r_high, 0.95);
}

TEST(FaultSim, StateCorruptionPersists) {
  // A hold register (q -> q) with fault injection on its driving logic:
  // once corrupted, the error persists, so the FF's reliability is much
  // worse than the per-cycle injection rate.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId ff = c.add_ff(kNullNode, "q");
  const NodeId keep = c.add_gate(GateType::kBuf, {ff}, "keep");
  c.set_fanin(ff, 0, keep);
  c.add_po(ff, "o");
  c.add_po(c.add_and(a, ff, "g"), "o2");
  c.validate();
  Workload w;
  w.pi_prob = {0.5};
  w.pattern_seed = 8;
  FaultSimOptions opt;
  opt.num_sequences = 256;
  opt.cycles_per_sequence = 100;
  opt.gate_error_rate = 0.002;
  const FaultSimResult r = simulate_faults(c, w, opt);
  // Accumulated corruption probability after ~100 cycles is far above the
  // per-cycle rate.
  EXPECT_GT(1.0 - r.node_reliability[ff], 0.02);
}

TEST(FaultSim, DeterministicForSameSeed) {
  const Circuit c = iscas89_s27();
  FaultSimOptions opt;
  opt.num_sequences = 64;
  opt.cycles_per_sequence = 20;
  opt.gate_error_rate = 0.01;
  const FaultSimResult r1 = simulate_faults(c, s27_workload(), opt);
  const FaultSimResult r2 = simulate_faults(c, s27_workload(), opt);
  EXPECT_EQ(r1.circuit_reliability, r2.circuit_reliability);
  EXPECT_EQ(r1.err01, r2.err01);
}

TEST(FaultSim, WorkloadMismatchThrows) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5};
  EXPECT_THROW(simulate_faults(c, w, {}), Error);
}

}  // namespace
}  // namespace deepseq
