#pragma once

#include <cstdint>
#include <vector>

#include "core/circuit_graph.hpp"
#include "core/sample.hpp"
#include "nn/modules.hpp"

namespace deepseq {

/// PACE-style parallelizable structure encoder — the direction the paper's
/// §VI names for removing DeepSeq's main runtime bottleneck ("apply the
/// parallelizable computation structure encoder (PACE) [33] ... and then
/// capture the relations between nodes in a parallel manner").
///
/// DeepSeq's customized propagation is *levelized and sequential*: wall
/// time grows with (logic depth) x T because each level waits for its
/// predecessors. The PACE encoder instead runs a fixed number of masked
/// attention layers in which EVERY node simultaneously attends to a
/// bounded set of its ancestors (its fan-in cone through the combinational
/// view, truncated to the nearest max_ancestors), plus a sinusoidal
/// encoding of its logic level standing in for PACE's positional encoding.
/// Per-inference work is O(layers x N x max_ancestors) regardless of
/// depth, which is the claimed parallel-friendly shape; accuracy trades
/// off against the recurrent model (see bench/pace_runtime).
struct PaceConfig {
  int hidden_dim = 32;
  int layers = 3;
  /// Attention-set cap: each node attends to itself plus at most this many
  /// nearest ancestors (breadth-first through the comb view).
  int max_ancestors = 24;
  /// Width of the sinusoidal level-position encoding appended to the
  /// one-hot gate-type feature.
  int pos_dim = 8;
  std::uint64_t seed = 424242;
};

/// Mix every output-affecting PaceConfig field into `h` (see the
/// ModelConfig overload in core/model.hpp for why this lives here).
std::uint64_t mix_config(std::uint64_t h, const PaceConfig& p);

/// Precomputed attention structure of one circuit: flattened (target,
/// source) pairs with a segment map, plus node features that include the
/// positional encoding.
struct PaceGraph {
  int num_nodes = 0;
  nn::Tensor features;  // N x (4 + pos_dim)
  std::vector<NodeId> pis;
  std::vector<NodeId> consts;  // CONST0 nodes, pinned to 0
  std::vector<NodeId> targets;  // nodes with at least one attention source
  std::vector<NodeId> sources;  // flattened ancestor lists (incl. self)
  std::vector<int> segment;     // source index -> target row
};

PaceGraph build_pace_graph(const Circuit& aig, const PaceConfig& config);

class PaceEncoder {
 public:
  explicit PaceEncoder(const PaceConfig& config);

  const PaceConfig& config() const { return config_; }

  /// Node embeddings (N x hidden). PIs stay pinned to their workload rows,
  /// matching the DeepSeq convention (§III-B).
  nn::Var embed(nn::Graph& g, const PaceGraph& graph, const Workload& w,
                std::uint64_t init_seed) const;

  struct Output {
    nn::Var tr;  // N x 2
    nn::Var lg;  // N x 1
  };
  Output forward(nn::Graph& g, const PaceGraph& graph, const Workload& w,
                 std::uint64_t init_seed) const;

  nn::NamedParams params() const;

 private:
  PaceConfig config_;
  std::vector<nn::Var> att_w1_, att_w2_;  // per layer
  std::vector<nn::GruCell> gru_;          // per layer
  nn::Mlp mlp_tr_, mlp_lg_;
};

/// Multi-task L1 fit / evaluation mirroring the DeepSeq trainer, so PACE
/// and DeepSeq numbers are directly comparable. PaceGraphs are built once
/// per sample internally (keyed by sample order).
struct PaceTrainStats {
  double final_loss = 0.0;
  double avg_pe_tr = 0.0;
  double avg_pe_lg = 0.0;
};

PaceTrainStats fit_pace(PaceEncoder& model,
                        const std::vector<TrainSample>& train,
                        const std::vector<TrainSample>& val, int epochs,
                        float lr, int batch_size = 4);

}  // namespace deepseq
