#include "nn/modules.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/gradcheck.hpp"

namespace deepseq::nn {
namespace {

TEST(Linear, OutputShapeAndParams) {
  Rng rng(1);
  Linear lin(4, 3, rng, "l");
  Graph g;
  Var x = g.constant(Tensor::xavier(5, 4, rng));
  Var y = lin.apply(g, x);
  EXPECT_EQ(y->value.rows(), 5);
  EXPECT_EQ(y->value.cols(), 3);
  NamedParams p;
  lin.collect_params(p);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].first, "l.w");
}

TEST(Linear, BiasIsAdded) {
  Rng rng(2);
  Linear lin(2, 2, rng, "l");
  NamedParams p;
  lin.collect_params(p);
  p[1].second->value = Tensor::from_rows({{10.0f, 20.0f}});  // bias
  p[0].second->value = Tensor(2, 2);                         // zero weights
  Graph g;
  Var y = lin.apply(g, g.constant(Tensor(1, 2)));
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(y->value.at(0, 1), 20.0f);
}

TEST(Linear, GradCheck) {
  Rng rng(3);
  Linear lin(3, 2, rng, "l");
  const Tensor x = Tensor::xavier(4, 3, rng);
  const Tensor target = Tensor::full(4, 2, 0.2f);
  NamedParams p;
  lin.collect_params(p);
  auto forward = [&](Graph& g) {
    return g.l1_loss(g.sigmoid(lin.apply(g, g.constant(x))), target);
  };
  EXPECT_LT(grad_check(forward, p).max_rel_error, 0.05);
}

TEST(Mlp, ThreeLayerShapes) {
  Rng rng(4);
  Mlp mlp({8, 8, 8, 2}, Activation::kSigmoid, rng, "m");
  Graph g;
  Var y = mlp.apply(g, g.constant(Tensor::xavier(10, 8, rng)));
  EXPECT_EQ(y->value.rows(), 10);
  EXPECT_EQ(y->value.cols(), 2);
  // Sigmoid outputs are probabilities.
  for (std::size_t i = 0; i < y->value.size(); ++i) {
    EXPECT_GE(y->value.data()[i], 0.0f);
    EXPECT_LE(y->value.data()[i], 1.0f);
  }
  NamedParams p;
  mlp.collect_params(p);
  EXPECT_EQ(p.size(), 6u);  // 3 layers x (w, b)
}

TEST(Mlp, NeedsTwoDims) {
  Rng rng(5);
  EXPECT_THROW(Mlp({4}, Activation::kNone, rng, "m"), Error);
}

TEST(Mlp, GradCheck) {
  Rng rng(6);
  Mlp mlp({3, 4, 1}, Activation::kSigmoid, rng, "m");
  const Tensor x = Tensor::xavier(6, 3, rng);
  const Tensor target = Tensor::full(6, 1, 0.7f);
  NamedParams p;
  mlp.collect_params(p);
  auto forward = [&](Graph& g) {
    return g.l1_loss(mlp.apply(g, g.constant(x)), target);
  };
  EXPECT_LT(grad_check(forward, p).max_rel_error, 0.05);
}

TEST(Gru, OutputShapeAndRange) {
  Rng rng(7);
  GruCell gru(5, 4, rng, "g");
  Graph g;
  Var x = g.constant(Tensor::xavier(3, 5, rng));
  Var h = g.constant(Tensor::xavier(3, 4, rng));
  Var h2 = gru.apply(g, x, h);
  EXPECT_EQ(h2->value.rows(), 3);
  EXPECT_EQ(h2->value.cols(), 4);
  NamedParams p;
  gru.collect_params(p);
  EXPECT_EQ(p.size(), 9u);
}

TEST(Gru, InputDimChecked) {
  Rng rng(8);
  GruCell gru(5, 4, rng, "g");
  Graph g;
  EXPECT_THROW(gru.apply(g, g.constant(Tensor(3, 6)), g.constant(Tensor(3, 4))),
               ShapeError);
  EXPECT_THROW(gru.apply(g, g.constant(Tensor(3, 5)), g.constant(Tensor(3, 5))),
               ShapeError);
}

TEST(Gru, UpdateGateInterpolates) {
  // With all weights zero, z = sigmoid(0) = 0.5, n = tanh(0) = 0, so
  // h' = 0.5 * h exactly — the GRU's interpolation semantics.
  Rng rng(9);
  GruCell gru(2, 3, rng, "g");
  NamedParams p;
  gru.collect_params(p);
  for (auto& [name, v] : p) v->value.zero();
  Graph g;
  const Tensor h0 = Tensor::from_rows({{1.0f, -2.0f, 0.5f}});
  Var h2 = gru.apply(g, g.constant(Tensor(1, 2)), g.constant(h0));
  EXPECT_NEAR(h2->value.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(h2->value.at(0, 1), -1.0f, 1e-6);
  EXPECT_NEAR(h2->value.at(0, 2), 0.25f, 1e-6);
}

TEST(Gru, GradCheckThroughTwoSteps) {
  Rng rng(10);
  GruCell gru(3, 3, rng, "g");
  const Tensor x1 = Tensor::xavier(2, 3, rng);
  const Tensor x2 = Tensor::xavier(2, 3, rng);
  const Tensor h0 = Tensor::xavier(2, 3, rng);
  const Tensor target = Tensor::full(2, 3, 0.1f);
  NamedParams p;
  gru.collect_params(p);
  auto forward = [&](Graph& g) {
    Var h = gru.apply(g, g.constant(x1), g.constant(h0));
    h = gru.apply(g, g.constant(x2), h);  // recurrent reuse of weights
    return g.l1_loss(h, target);
  };
  EXPECT_LT(grad_check(forward, p, 5e-3f, 4).max_rel_error, 0.06);
}

}  // namespace
}  // namespace deepseq::nn
