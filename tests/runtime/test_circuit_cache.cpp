#include "runtime/circuit_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/structural_hash.hpp"
#include "netlist/topology.hpp"

namespace deepseq::runtime {
namespace {

// ---- structural hash -------------------------------------------------------

/// Rebuild `c` with a level-shuffled node creation order and randomly
/// swapped commutative fanins: same structure, different node ids.
Circuit permute_node_ids(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  Circuit out(c.name());
  std::vector<NodeId> map(c.num_nodes(), kNullNode);
  for (NodeId pi : c.pis()) map[pi] = out.add_pi();
  for (NodeId ff : c.ffs()) map[ff] = out.add_ff();

  const Levelization lv = comb_levelize(c);
  for (const auto& level : lv.by_level) {
    std::vector<NodeId> nodes = level;
    rng.shuffle(nodes);
    for (NodeId v : nodes) {
      if (map[v] != kNullNode) continue;  // PI/FF already placed
      std::vector<NodeId> fanins;
      for (int i = 0; i < c.num_fanins(v); ++i)
        fanins.push_back(map[c.fanin(v, i)]);
      if (c.type(v) == GateType::kAnd && rng.bernoulli(0.5))
        std::swap(fanins[0], fanins[1]);
      map[v] = c.type(v) == GateType::kConst0 ? out.add_const0()
                                              : out.add_gate(c.type(v), fanins);
    }
  }
  for (std::size_t k = 0; k < c.ffs().size(); ++k)
    out.set_fanin(out.ffs()[k], 0, map[c.fanin(c.ffs()[k], 0)]);
  for (NodeId po : c.pos()) out.add_po(map[po]);
  out.validate();
  return out;
}

Circuit random_aig(std::uint64_t seed, int gates = 120) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 5;
  spec.num_gates = gates;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return generate_circuit(spec, rng);
}

TEST(StructuralHash, StableAcrossNodeIdPermutations) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Circuit a = random_aig(seed);
    const StructuralHash ha = structural_hash(a);
    for (std::uint64_t p = 0; p < 3; ++p) {
      const Circuit b = permute_node_ids(a, 100 * seed + p);
      EXPECT_EQ(ha, structural_hash(b)) << "seed " << seed << " perm " << p;
    }
  }
}

TEST(StructuralHash, StableForRealBenchmarkCircuit) {
  const Circuit s27 = decompose_to_aig(iscas89_s27()).aig;
  const StructuralHash h = structural_hash(s27);
  EXPECT_EQ(h, structural_hash(permute_node_ids(s27, 9)));
  EXPECT_EQ(h.num_pis, s27.pis().size());
  EXPECT_EQ(h.num_ffs, s27.ffs().size());
}

TEST(StructuralHash, DistinguishesDifferentCircuits) {
  std::vector<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    digests.push_back(structural_hash(random_aig(seed)).digest);
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::unique(digests.begin(), digests.end()), digests.end());
}

TEST(StructuralHash, SensitiveToGateTypeAndWiring) {
  Circuit a("a");
  const NodeId a0 = a.add_pi(), a1 = a.add_pi();
  a.add_po(a.add_and(a0, a1));

  Circuit b("b");  // same shape, NOT on top
  const NodeId b0 = b.add_pi(), b1 = b.add_pi();
  b.add_po(b.add_not(b.add_and(b0, b1)));

  Circuit c("c");  // AND of a PI with itself
  const NodeId c0 = c.add_pi();
  (void)c.add_pi();
  c.add_po(c.add_and(c0, c0));

  const auto ha = structural_hash(a), hb = structural_hash(b),
             hc = structural_hash(c);
  EXPECT_NE(ha, hb);
  EXPECT_NE(ha, hc);
  EXPECT_NE(hb, hc);
}

TEST(StructuralHash, SensitiveToPoOrder) {
  Circuit a("a");
  NodeId p0 = a.add_pi(), p1 = a.add_pi();
  NodeId g = a.add_and(p0, p1), n = a.add_not(g);
  a.add_po(g);
  a.add_po(n);

  Circuit b("b");
  p0 = b.add_pi();
  p1 = b.add_pi();
  g = b.add_and(p0, p1);
  n = b.add_not(g);
  b.add_po(n);  // swapped
  b.add_po(g);

  EXPECT_NE(structural_hash(a), structural_hash(b));
}

// ---- generic sharded LRU ---------------------------------------------------

struct IntKey {
  std::uint64_t v = 0;
  std::uint64_t hash64() const { return hash_mix(0x1234, v); }
  bool operator==(const IntKey& o) const { return v == o.v; }
};

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache<IntKey, int> cache(/*capacity=*/4, /*num_shards=*/1);
  for (std::uint64_t i = 0; i < 4; ++i)
    cache.put(IntKey{i}, std::make_shared<int>(static_cast<int>(i)));
  // Touch 0 so 1 becomes the LRU victim.
  EXPECT_NE(cache.get(IntKey{0}), nullptr);
  cache.put(IntKey{99}, std::make_shared<int>(99));
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.get(IntKey{1}), nullptr);  // evicted
  EXPECT_NE(cache.get(IntKey{0}), nullptr);  // survived (recently used)
  EXPECT_NE(cache.get(IntKey{99}), nullptr);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(ShardedLruCache, PutOverwritesExistingKey) {
  ShardedLruCache<IntKey, int> cache(4, 1);
  cache.put(IntKey{7}, std::make_shared<int>(1));
  cache.put(IntKey{7}, std::make_shared<int>(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(IntKey{7}), 2);
}

TEST(ShardedLruCache, CountsHitsAndMisses) {
  ShardedLruCache<IntKey, int> cache(8, 2);
  EXPECT_EQ(cache.get(IntKey{1}), nullptr);
  cache.put(IntKey{1}, std::make_shared<int>(1));
  EXPECT_NE(cache.get(IntKey{1}), nullptr);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(ShardedLruCache, ConcurrentHitsReturnConsistentValues) {
  ShardedLruCache<IntKey, std::uint64_t> cache(64, 8);
  constexpr std::uint64_t kKeys = 16;
  for (std::uint64_t i = 0; i < kKeys; ++i)
    cache.put(IntKey{i}, std::make_shared<std::uint64_t>(i * 1000));

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &bad, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t k = rng.uniform_index(kKeys);
        auto v = cache.get_or_build(
            IntKey{k}, [k] { return std::make_shared<std::uint64_t>(k * 1000); });
        if (!v || *v != k * 1000) ++bad;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(cache.counters().hits + cache.counters().misses, 4u * 2000u);
}

// ---- circuit cache facade --------------------------------------------------

/// Minimal backend state for cache-facade tests (the real serving layer
/// stores api::DeepSeqState / api::PaceState here).
struct TestState final : api::BackendState {
  int tag = 0;
};

TEST(CircuitCache, IdenticalCircuitSharesPermutedDoesNot) {
  CircuitCache cache;
  const Circuit a = random_aig(3);
  // Same netlist "parsed again": identical creation order, shares the entry.
  const Circuit a2 = a;
  // Isomorphic but renumbered: node-indexed cached structures/embeddings
  // would be wrong for it, so it must get its own entry.
  const Circuit b = permute_node_ids(a, 17);

  const std::uint64_t backend_fp = 0xB1;
  const StructureKey key_a{structural_hash(a), exact_hash(a), backend_fp};
  const StructureKey key_a2{structural_hash(a2), exact_hash(a2), backend_fp};
  const StructureKey key_b{structural_hash(b), exact_hash(b), backend_fp};
  EXPECT_EQ(key_a, key_a2);
  EXPECT_EQ(key_a.hash, key_b.hash);  // structural identity matches...
  EXPECT_FALSE(key_a == key_b);       // ...but the exact digest differs
  // A differently-configured backend never shares state entries.
  StructureKey key_other_backend = key_a;
  key_other_backend.backend = 0xB2;
  EXPECT_FALSE(key_a == key_other_backend);

  int builds = 0;
  auto builder = [&] {
    ++builds;
    auto s = std::make_shared<TestState>();
    s->tag = builds;
    return s;
  };
  auto s1 = cache.get_or_build_structure(key_a, builder);
  auto s2 = cache.get_or_build_structure(key_a2, builder);  // hit
  auto s3 = cache.get_or_build_structure(key_b, builder);   // distinct entry
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_EQ(cache.stats().structures.hits, 1u);
  EXPECT_EQ(cache.stats().structures.misses, 2u);
}

TEST(CircuitCache, EmbeddingLayerKeyedByAllInputs) {
  CircuitCache cache;
  const StructuralHash h = structural_hash(random_aig(4));
  EmbeddingKey base;
  base.structure = h;
  base.backend_fingerprint = 11;
  base.workload_fingerprint = 22;
  base.init_seed = 33;
  cache.put_embedding(base, std::make_shared<nn::Tensor>(2, 2));
  EXPECT_NE(cache.get_embedding(base), nullptr);

  EmbeddingKey other = base;
  other.init_seed = 34;
  EXPECT_EQ(cache.get_embedding(other), nullptr);
  other = base;
  other.backend_fingerprint = 12;  // different backend identity
  EXPECT_EQ(cache.get_embedding(other), nullptr);
  other = base;
  other.workload_fingerprint = 23;
  EXPECT_EQ(cache.get_embedding(other), nullptr);
  other = base;
  other.exact = 99;  // isomorphic-but-renumbered circuit
  EXPECT_EQ(cache.get_embedding(other), nullptr);
}

TEST(CircuitCache, RegressionLayerSharesEmbeddingKey) {
  CircuitCache cache;
  EmbeddingKey key;
  key.structure = structural_hash(random_aig(5));
  key.backend_fingerprint = 7;
  key.workload_fingerprint = 9;
  key.init_seed = 3;

  EXPECT_EQ(cache.get_regression(key), nullptr);
  int builds = 0;
  auto build = [&] {
    ++builds;
    auto reg = std::make_shared<api::Regression>();
    reg->tr = nn::Tensor(4, 2);
    reg->lg = nn::Tensor(4, 1);
    return reg;
  };
  auto first = cache.get_or_build_regression(key, build);
  auto second = cache.get_or_build_regression(key, build);
  EXPECT_EQ(builds, 1);  // warm hit skips the head forward
  EXPECT_EQ(first.get(), second.get());

  // Any embedding-key component change misses (new workload, seed, ...).
  EmbeddingKey other = key;
  other.init_seed = 4;
  EXPECT_EQ(cache.get_regression(other), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.regressions.hits, 1u);
  EXPECT_EQ(stats.regressions.misses, 3u);  // initial get + build + other
  EXPECT_EQ(stats.regression_entries, 1u);
}

TEST(WorkloadFingerprint, DiscriminatesProbabilitiesAndSeed) {
  Workload a;
  a.pi_prob = {0.25, 0.5};
  a.pattern_seed = 1;
  Workload b = a;
  EXPECT_EQ(workload_fingerprint(a), workload_fingerprint(b));
  b.pi_prob[1] = 0.5000001;
  EXPECT_NE(workload_fingerprint(a), workload_fingerprint(b));
  b = a;
  b.pattern_seed = 2;
  EXPECT_NE(workload_fingerprint(a), workload_fingerprint(b));
}

}  // namespace
}  // namespace deepseq::runtime
