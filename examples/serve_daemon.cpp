// Standalone serving daemon: the fleet unit of deployment. Binds the
// serving tier (src/serve/) on 127.0.0.1 and serves every TaskKind over the
// length-prefixed wire protocol until SIGINT/SIGTERM, with hot weight
// pushes (reload name@hash against DEEPSEQ_ARTIFACT_DIR) and the stats
// endpoint live throughout.
//
//   serve_daemon
//
// Knobs (environment):
//   DEEPSEQ_PORT          TCP port; 0 = ephemeral            (default 0)
//   DEEPSEQ_PORT_FILE     write the bound port here — how a supervisor or
//                         CI discovers an ephemeral port      (default off)
//   DEEPSEQ_SHARDS        Session shards                      (default 2)
//   DEEPSEQ_SERVE_WORKERS worker threads per shard            (default 2)
//   DEEPSEQ_QUEUE_DEPTH   per-kind admission queue depth      (default 64)
//   DEEPSEQ_THREADS       engine threads inside each shard
//   DEEPSEQ_HIDDEN, DEEPSEQ_T   model preset for seed-built backends
//   DEEPSEQ_ARTIFACT_DIR  artifact store the reload endpoint resolves
//                         "name@hash" refs against (strict fail-fast)
//
// The daemon prints one line per lifecycle event and exits 0 on a clean
// signal-driven shutdown (in-flight work drains; queued work is shed typed).

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>

#include "common/env.hpp"
#include "serve/server.hpp"

using namespace deepseq;

int main() try {
  // Block the shutdown signals BEFORE any thread exists so every server
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  serve::ServeConfig cfg;
  cfg.port = static_cast<std::uint16_t>(env_int("DEEPSEQ_PORT", 0));
  cfg.router.shards = static_cast<int>(env_int("DEEPSEQ_SHARDS", 2));
  cfg.router.workers_per_shard =
      static_cast<int>(env_int("DEEPSEQ_SERVE_WORKERS", 2));
  cfg.router.admission.default_depth =
      static_cast<std::size_t>(env_int("DEEPSEQ_QUEUE_DEPTH", 64));
  cfg.router.session.engine.threads =
      static_cast<int>(env_int("DEEPSEQ_THREADS", 2));
  cfg.router.session.backends.model = ModelConfig::deepseq(
      static_cast<int>(env_int("DEEPSEQ_HIDDEN", 32)),
      static_cast<int>(env_int("DEEPSEQ_T", 4)));

  serve::Server server(cfg);
  std::printf("[daemon] serving on 127.0.0.1:%u (%d shards x %d workers, "
              "queue depth %zu)\n",
              static_cast<unsigned>(server.port()), cfg.router.shards,
              cfg.router.workers_per_shard, cfg.router.admission.default_depth);
  const std::string port_file = env_string("DEEPSEQ_PORT_FILE", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "[daemon] cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::printf("[daemon] port written to %s\n", port_file.c_str());
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("[daemon] signal %d — draining and shutting down\n", sig);
  std::fflush(stdout);
  server.stop();
  std::printf("[daemon] stopped\n");
  return 0;
} catch (const std::exception& e) {
  // e.g. a bad DEEPSEQ_ARTIFACT_DIR — the store fails construction fast,
  // naming the variable and the offending file.
  std::fprintf(stderr, "serve_daemon: %s\n", e.what());
  return 1;
}
