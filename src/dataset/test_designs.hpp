#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq {

/// One of the six large evaluation designs of Table IV. The netlist uses
/// the full generic gate vocabulary (paper §V-A2: "test circuits containing
/// different gate types") and is decomposed to AIG at inference time.
struct TestDesign {
  std::string name;
  std::string description;
  int paper_nodes = 0;  // node count reported in Table IV
  Circuit netlist;
};

/// Deterministically synthesize a named test design at `scale` times the
/// paper's node count (DESIGN.md §2 documents this substitution). Valid
/// names: noc_router, pll, ptc, rtcclock, ac97_ctrl, mem_ctrl.
TestDesign build_test_design(const std::string& name, double scale,
                             std::uint64_t seed);

/// All six designs of Table IV, in paper order.
std::vector<TestDesign> build_all_test_designs(double scale, std::uint64_t seed);

/// The scale used by benches: 1.0 under DEEPSEQ_FULL=1, else 1/8.
double default_design_scale();

}  // namespace deepseq
