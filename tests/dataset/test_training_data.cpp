#include "dataset/training_data.hpp"

#include <gtest/gtest.h>

namespace deepseq {
namespace {

TrainingDataOptions small_opts(int n = 8) {
  TrainingDataOptions opt;
  opt.num_subcircuits = n;
  opt.sim_cycles = 300;
  opt.size_scale = 0.25;  // small circuits for fast tests
  opt.seed = 11;
  return opt;
}

TEST(TrainingData, BuildsRequestedCount) {
  const TrainingDataset ds = build_training_dataset(small_opts());
  EXPECT_EQ(ds.samples.size(), 8u);
  for (const auto& s : ds.samples) {
    EXPECT_TRUE(s.circuit->is_strict_aig());
    EXPECT_FALSE(s.circuit->ffs().empty());
    EXPECT_EQ(s.workload.pi_prob.size(), s.circuit->pis().size());
    EXPECT_EQ(s.target_tr.rows(), s.graph.num_nodes);
  }
}

TEST(TrainingData, StatsCoverThreeFamilies) {
  const TrainingDataset ds = build_training_dataset(small_opts(12));
  ASSERT_EQ(ds.stats.size(), 3u);
  EXPECT_EQ(ds.stats[0].name, "ISCAS'89");
  EXPECT_EQ(ds.stats[1].name, "ITC'99");
  EXPECT_EQ(ds.stats[2].name, "Opencores");
  int total = 0;
  for (const auto& fs : ds.stats) total += fs.count;
  EXPECT_EQ(total, 12);
}

TEST(TrainingData, OpencoresDominatesMix) {
  // Table I: OpenCores contributes ~73% of subcircuits.
  const TrainingDataset ds = build_training_dataset(small_opts(30));
  EXPECT_GT(ds.stats[2].count, ds.stats[0].count);
  EXPECT_GT(ds.stats[2].count, ds.stats[1].count);
}

TEST(TrainingData, DeterministicForSeed) {
  const TrainingDataset a = build_training_dataset(small_opts(4));
  const TrainingDataset b = build_training_dataset(small_opts(4));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].circuit->num_nodes(), b.samples[i].circuit->num_nodes());
    EXPECT_EQ(a.samples[i].workload.pi_prob, b.samples[i].workload.pi_prob);
  }
}

TEST(TrainingData, SplitTrainVal) {
  const TrainingDataset ds = build_training_dataset(small_opts(10));
  std::vector<TrainSample> train, val;
  split_train_val(ds.samples, 0.3, 5, train, val);
  EXPECT_EQ(val.size(), 3u);
  EXPECT_EQ(train.size(), 7u);
}

TEST(TrainingData, SplitZeroFraction) {
  const TrainingDataset ds = build_training_dataset(small_opts(4));
  std::vector<TrainSample> train, val;
  split_train_val(ds.samples, 0.0, 5, train, val);
  EXPECT_TRUE(val.empty());
  EXPECT_EQ(train.size(), 4u);
}

}  // namespace
}  // namespace deepseq
