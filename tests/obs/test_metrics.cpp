#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "support/json_check.hpp"

namespace deepseq::obs {
namespace {

// ---- counters --------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Counter c;
  runtime::ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kPerTask = 10000;
  for (int t = 0; t < kTasks; ++t)
    pool.submit([&c] {
      for (int i = 0; i < kPerTask; ++i) c.inc();
    });
  pool.wait_idle();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kPerTask);
}

TEST(ObsCounter, IncByDelta) {
  Counter c;
  c.inc(5);
  c.inc(7);
  EXPECT_EQ(c.value(), 12u);
}

TEST(ObsThreadOrdinal, StablePerThread) {
  const std::uint32_t here = thread_ordinal();
  EXPECT_EQ(thread_ordinal(), here);
  std::uint32_t other = here;
  std::thread([&other] { other = thread_ordinal(); }).join();
  EXPECT_NE(other, here);
}

// ---- gauges ----------------------------------------------------------------

TEST(ObsGauge, TracksValueAndWatermark) {
  Gauge g;
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 5);
  g.add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max_value(), 12);
  g.add(-12);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 12);
}

// ---- histogram bucket math -------------------------------------------------

TEST(ObsHistogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(Histogram::bucket_upper(static_cast<int>(v)), v);
  }
}

TEST(ObsHistogram, BucketBoundsPartitionTheRange) {
  // Buckets tile [0, 2^64) without gaps or overlaps, and every probed value
  // maps into the bucket whose bounds contain it.
  for (int i = 0; i + 1 < Histogram::kBuckets; ++i) {
    ASSERT_EQ(Histogram::bucket_upper(i) + 1, Histogram::bucket_lower(i + 1))
        << "gap after bucket " << i;
  }
  std::uint64_t probes[] = {0,    1,     15,     16,        17,
                            255,  256,   1000,   123456789, std::uint64_t{1} << 40,
                            (std::uint64_t{1} << 63) + 12345};
  for (std::uint64_t v : probes) {
    const int i = Histogram::bucket_index(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lower(i), v);
    EXPECT_GE(Histogram::bucket_upper(i), v);
  }
}

TEST(ObsHistogram, IndexIsMonotone) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 100000; v = v < 64 ? v + 1 : v + v / 7) {
    const int i = Histogram::bucket_index(v);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

// ---- histogram percentiles vs a sorted-vector oracle -----------------------

TEST(ObsHistogram, PercentilesMatchSortedOracleWithinBucketWidth) {
  // Deterministic skewed sample (LCG), spanning several octaves like real
  // latencies do.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  Histogram h;
  std::vector<std::uint64_t> oracle;
  std::uint64_t sum = 0;
  for (int i = 0; i < 20000; ++i) {
    // Mix of fast (~1us), medium (~100us) and slow (~10ms) "latencies".
    const std::uint64_t r = next();
    std::uint64_t v;
    if (r % 10 < 7) {
      v = 500 + r % 1000;
    } else if (r % 10 < 9) {
      v = 50000 + r % 100000;
    } else {
      v = 5000000 + r % 10000000;
    }
    h.record(v);
    oracle.push_back(v);
    sum += v;
  }
  std::sort(oracle.begin(), oracle.end());

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, oracle.size());
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, oracle.back());

  for (double p : {0.5, 0.9, 0.99}) {
    const std::size_t rank = std::min(
        oracle.size() - 1,
        static_cast<std::size_t>(std::ceil(p * static_cast<double>(
                                                   oracle.size()))) -
            1);
    const double exact = static_cast<double>(oracle[rank]);
    const double est = snap.percentile(p);
    // Log-bucket midpoint estimate: relative error bounded by the bucket
    // width (1/16 per octave), plus slack for the rank falling across a
    // bucket boundary.
    EXPECT_NEAR(est, exact, exact * 0.125)
        << "p=" << p << " exact=" << exact << " est=" << est;
  }

  const Summary s = snap.summary();
  EXPECT_EQ(s.count, oracle.size());
  EXPECT_NEAR(s.mean,
              static_cast<double>(sum) / static_cast<double>(oracle.size()),
              1e-6);
  EXPECT_EQ(s.max, static_cast<double>(oracle.back()));
}

TEST(ObsHistogram, RecordMsStoresNanoseconds) {
  Histogram h;
  h.record_ms(1.5);
  h.record_ms(-3.0);  // clamps to 0
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 1500000u);
  const Summary s = snap.summary(1e-6);
  EXPECT_NEAR(s.max, 1.5, 1.5 / Histogram::kSub);
}

TEST(ObsHistogram, EmptySummaryIsZeros) {
  Histogram h;
  const Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCountAndSum) {
  Histogram h;
  runtime::ThreadPool pool(8);
  constexpr int kTasks = 32;
  constexpr int kPerTask = 5000;
  for (int t = 0; t < kTasks; ++t)
    pool.submit([&h, t] {
      for (int i = 0; i < kPerTask; ++i)
        h.record(static_cast<std::uint64_t>(t) * kPerTask + i);
    });
  pool.wait_idle();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(snap.max, static_cast<std::uint64_t>(kTasks) * kPerTask - 1);
}

// ---- registry, snapshots, deltas -------------------------------------------

TEST(ObsRegistry, LookupReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(ObsRegistry, SnapshotDeltaIsolatesAWindow) {
  Registry reg;
  reg.counter("c").inc(5);
  reg.histogram("h").record(100);
  reg.gauge("g").set(3);

  const Snapshot base = reg.snapshot();
  reg.counter("c").inc(3);
  reg.histogram("h").record(200);
  reg.histogram("h").record(300);
  reg.gauge("g").set(7);
  const Snapshot now = reg.snapshot();

  const Snapshot d = delta(now, base);
  EXPECT_EQ(d.counters.at("c"), 3u);
  EXPECT_EQ(d.histograms.at("h").count, 2u);
  EXPECT_EQ(d.histograms.at("h").sum, 500u);
  // Gauges are point-in-time: the delta keeps the `now` reading.
  EXPECT_EQ(d.gauges.at("g").value, 7);
  // Metrics born inside the window pass through whole.
  reg.counter("late").inc(9);
  const Snapshot d2 = delta(reg.snapshot(), base);
  EXPECT_EQ(d2.counters.at("late"), 9u);
}

TEST(ObsRegistry, SnapshotJsonIsValidAndNamed) {
  Registry reg;
  reg.counter("alpha.count").inc(42);
  reg.gauge("beta.depth").set(-3);
  reg.histogram("gamma \"quoted\\name").record(7);
  const std::string doc = to_json(reg.snapshot());
  EXPECT_TRUE(testing::valid_json(doc)) << doc;
  EXPECT_NE(doc.find("alpha.count"), std::string::npos);
  EXPECT_NE(doc.find("beta.depth"), std::string::npos);
  EXPECT_NE(doc.find("-3"), std::string::npos);
}

TEST(ObsRegistry, GlobalSnapshotJsonIsValid) {
  Registry::global().counter("test.obs.global_marker").inc();
  const std::string doc = snapshot_json();
  EXPECT_TRUE(testing::valid_json(doc));
  EXPECT_NE(doc.find("test.obs.global_marker"), std::string::npos);
}

TEST(ObsRegistry, CountTaskFailedIsNullSafeAndCounts) {
  count_task_failed(nullptr);  // untraced request: must be a no-op
  const Snapshot base = Registry::global().snapshot();
  count_task_failed("embedding");
  const Snapshot d = delta(Registry::global().snapshot(), base);
  EXPECT_EQ(d.counters.at("task.failed.embedding"), 1u);
}

}  // namespace
}  // namespace deepseq::obs
