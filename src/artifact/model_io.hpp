#pragma once

#include "artifact/artifact.hpp"
#include "reliability/reliability_model.hpp"

namespace deepseq::artifact {

// Backend kinds of the built-in models.
inline constexpr char kKindDeepSeq[] = "deepseq";
inline constexpr char kKindPace[] = "pace";

// Section names of the "deepseq" kind.
inline constexpr char kSectionBackbone[] = "backbone";
inline constexpr char kSectionRegression[] = "regression";
inline constexpr char kSectionReliability[] = "reliability";
// The single section of the "pace" kind (its heads are training-internal).
inline constexpr char kSectionEncoder[] = "encoder";

/// Snapshot a DeepSeqModel into a kind="deepseq" artifact: "backbone"
/// (aggregators + GRUs) and "regression" (the two probability-head MLPs)
/// sections plus the ModelConfig. When `reliability` is non-null its error
/// head is captured as a third "reliability" section, making the artifact a
/// full serving bundle for the deepseq backend's task surface.
Artifact snapshot(const DeepSeqModel& model,
                  const ReliabilityModel* reliability = nullptr);

/// Snapshot a PaceEncoder into a kind="pace" artifact ("encoder" section).
Artifact snapshot(const PaceEncoder& encoder);

/// Assign a deepseq artifact's backbone + regression weights into `model`.
/// The model's architecture must match the manifest snapshot (same
/// aggregator/propagation/iterations/hidden_dim) — fail-fast Error listing
/// the mismatch otherwise, or on a non-"deepseq" artifact kind.
void apply(const Artifact& a, DeepSeqModel& model);

/// Assign a deepseq artifact's "reliability" error-head section into
/// `model` (the backbone is applied separately through the DeepSeqModel
/// overload). Error when the artifact has no reliability section.
void apply(const Artifact& a, ReliabilityModel& model);

/// Assign a pace artifact's encoder weights into `encoder`.
void apply(const Artifact& a, PaceEncoder& encoder);

/// Throw unless the artifact's kind equals `expected`, with a message that
/// names both (the fail-fast contract of DEEPSEQ_ARTIFACT / BackendOptions).
void require_kind(const Artifact& a, const std::string& expected);

}  // namespace deepseq::artifact
