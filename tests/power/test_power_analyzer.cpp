#include "power/power_analyzer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "netlist/bench_io.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

TEST(CellLibrary, PowerFormula) {
  const CellLibrary& lib = default_cell_library();
  // P = 1/2 C V^2 f rate.
  const double p = lib.gate_power(GateType::kAnd, 0.5);
  EXPECT_NEAR(p, 0.5 * 3.2e-15 * 1.0 * 5e8 * 0.5, 1e-18);
  EXPECT_DOUBLE_EQ(lib.gate_power(GateType::kConst0, 1.0), 0.0);
  // FFs cost more than inverters (clock load).
  EXPECT_GT(lib.cap_of(GateType::kFf), lib.cap_of(GateType::kNot));
}

TEST(PowerAnalyzer, SingleGateHandCalculation) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  c.add_po(g, "o");
  std::vector<double> rates(c.num_nodes(), 0.0);
  rates[g] = 0.2;
  const PowerReport rep = analyze_power_rates(c, rates);
  const CellLibrary& lib = default_cell_library();
  EXPECT_NEAR(rep.total_watts, lib.gate_power(GateType::kAnd, 0.2), 1e-15);
  EXPECT_NEAR(rep.combinational_watts, rep.total_watts, 1e-18);
}

TEST(PowerAnalyzer, SaifPathMatchesDirectRates) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.4, 0.6, 0.3, 0.7};
  w.pattern_seed = 21;
  const NodeActivity act = collect_activity(c, w, {4000, 1});

  std::vector<double> rates(c.num_nodes());
  for (NodeId v = 0; v < c.num_nodes(); ++v) rates[v] = act.toggle_rate(v);
  const PowerReport direct = analyze_power_rates(c, rates);

  SaifDocument doc;
  doc.design = "s27";
  doc.duration = 100000;  // fine-grained so rounding error is negligible
  const auto names = unique_node_names(c);
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    doc.add_net(names[v], act.logic1[v], rates[v]);
  const PowerReport via_saif = analyze_power(c, doc);

  EXPECT_EQ(via_saif.nets_missing, 0u);
  EXPECT_NEAR(via_saif.total_watts, direct.total_watts,
              direct.total_watts * 0.01);
}

TEST(PowerAnalyzer, SplitsByCategory) {
  const Circuit c = iscas89_s27();
  std::vector<double> rates(c.num_nodes(), 0.1);
  const PowerReport rep = analyze_power_rates(c, rates);
  EXPECT_GT(rep.sequential_watts, 0.0);
  EXPECT_GT(rep.combinational_watts, 0.0);
  EXPECT_GT(rep.io_watts, 0.0);
  EXPECT_NEAR(rep.total_watts,
              rep.sequential_watts + rep.combinational_watts + rep.io_watts,
              1e-18);
}

TEST(PowerAnalyzer, MissingNetsCounted) {
  const Circuit c = iscas89_s27();
  SaifDocument doc;
  doc.design = "s27";
  doc.duration = 100;
  doc.add_net("G0", 0.5, 0.1);  // only one net present
  const PowerReport rep = analyze_power(c, doc);
  EXPECT_EQ(rep.nets_matched, 1u);
  EXPECT_EQ(rep.nets_missing, c.num_nodes() - 1);
}

TEST(PowerAnalyzer, ZeroDurationThrows) {
  const Circuit c = iscas89_s27();
  SaifDocument doc;
  EXPECT_THROW(analyze_power(c, doc), Error);
}

TEST(PowerAnalyzer, RateVectorSizeChecked) {
  const Circuit c = iscas89_s27();
  EXPECT_THROW(analyze_power_rates(c, {0.1, 0.2}), Error);
}

TEST(PowerAnalyzer, MoreSwitchingMorePower) {
  const Circuit c = iscas89_s27();
  std::vector<double> low(c.num_nodes(), 0.05), high(c.num_nodes(), 0.5);
  EXPECT_GT(analyze_power_rates(c, high).total_watts,
            analyze_power_rates(c, low).total_watts * 5);
}

}  // namespace
}  // namespace deepseq
