#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "api/backends.hpp"
#include "common/error.hpp"

namespace deepseq::api {
namespace {

/// Minimal third-party backend for registration tests.
struct StubState final : BackendState {};

class StubBackend final : public EmbeddingBackend {
 public:
  explicit StubBackend(int hidden) {
    info_.name = "stub";
    info_.hidden_dim = hidden;
    info_.fingerprint = 0x57;
  }
  const BackendInfo& info() const override { return info_; }
  std::shared_ptr<const BackendState> prepare(const Circuit&) const override {
    return std::make_shared<StubState>();
  }
  nn::Tensor embed(const BackendState&, const Workload&,
                   std::uint64_t) const override {
    return nn::Tensor(1, info_.hidden_dim);
  }

 private:
  BackendInfo info_;
};

TEST(BackendRegistry, GlobalHasBuiltinsRegistered) {
  auto& reg = BackendRegistry::global();
  EXPECT_TRUE(reg.contains("deepseq"));
  EXPECT_TRUE(reg.contains("pace"));
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "deepseq"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pace"), names.end());
}

TEST(BackendRegistry, CreateBuildsConfiguredBackends) {
  BackendOptions opts;
  opts.model = ModelConfig::deepseq(/*hidden=*/8, /*t=*/2);
  opts.pace.hidden_dim = 8;
  opts.pace.layers = 2;

  auto deepseq = BackendRegistry::global().create("deepseq", opts);
  ASSERT_NE(deepseq, nullptr);
  EXPECT_EQ(deepseq->info().name, "deepseq");
  EXPECT_EQ(deepseq->info().hidden_dim, 8);
  EXPECT_TRUE(deepseq->info().supports_regress);
  EXPECT_TRUE(deepseq->info().supports_reliability);

  auto pace = BackendRegistry::global().create("pace", opts);
  ASSERT_NE(pace, nullptr);
  EXPECT_EQ(pace->info().name, "pace");
  EXPECT_FALSE(pace->info().supports_regress);
  EXPECT_FALSE(pace->info().supports_reliability);

  // Distinct architectures never share cache identity.
  EXPECT_NE(deepseq->info().fingerprint, pace->info().fingerprint);
  // The fingerprint is deterministic: same options, same identity.
  auto again = BackendRegistry::global().create("deepseq", opts);
  EXPECT_EQ(deepseq->info().fingerprint, again->info().fingerprint);
  // ...and configuration-sensitive.
  opts.model = ModelConfig::deepseq(/*hidden=*/16, /*t=*/2);
  auto wider = BackendRegistry::global().create("deepseq", opts);
  EXPECT_NE(deepseq->info().fingerprint, wider->info().fingerprint);
}

TEST(BackendRegistry, UnknownNameFailsFastListingRegistered) {
  try {
    (void)BackendRegistry::global().create("no-such-backend", {});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-backend"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deepseq"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pace"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, ResolveHandlesEmptyKnownAndUnknown) {
  auto& reg = BackendRegistry::global();
  EXPECT_EQ(reg.resolve("", "deepseq"), "deepseq");
  EXPECT_EQ(reg.resolve("pace", "deepseq"), "pace");
  EXPECT_THROW((void)reg.resolve("typo", "deepseq"), Error);
}

TEST(BackendRegistry, CustomBackendsPlugIn) {
  BackendRegistry reg;
  reg.register_backend("stub", [](const BackendOptions& o) {
    return std::make_unique<StubBackend>(o.model.hidden_dim);
  });
  EXPECT_TRUE(reg.contains("stub"));
  EXPECT_FALSE(reg.contains("deepseq"));  // independent of the global one

  BackendOptions opts;
  opts.model.hidden_dim = 5;
  auto b = reg.create("stub", opts);
  EXPECT_EQ(b->info().hidden_dim, 5);

  // Unsupported capabilities throw rather than mis-serve.
  EXPECT_THROW((void)b->regress(nn::Tensor(1, 5)), Error);
  EXPECT_THROW((void)b->reliability(StubState{}, Workload{}, {}, 1), Error);

  // Duplicate names are a registration bug, not a silent overwrite.
  EXPECT_THROW(
      reg.register_backend(
          "stub", [](const BackendOptions&) -> std::unique_ptr<EmbeddingBackend> {
            return nullptr;
          }),
      Error);
}

TEST(BackendRegistry, BackendFromEnvResolvesAndValidates) {
  ::unsetenv("DEEPSEQ_BACKEND");
  EXPECT_EQ(backend_from_env(BackendRegistry::global()), "deepseq");
  ::setenv("DEEPSEQ_BACKEND", "pace", 1);
  EXPECT_EQ(backend_from_env(BackendRegistry::global()), "pace");
  ::setenv("DEEPSEQ_BACKEND", "onnx-not-registered", 1);
  EXPECT_THROW((void)backend_from_env(BackendRegistry::global()), Error);
  ::unsetenv("DEEPSEQ_BACKEND");
}

}  // namespace
}  // namespace deepseq::api
