// Streaming ingestion throughput: generate a deterministic multi-module
// Verilog corpus on disk, then sweep DEEPSEQ_INGEST_THREADS x chunk size
// through ingest::Corpus::scan and report MB/s, designs/s and per-module
// parse-latency percentiles (the ingest.parse_ns histogram window around
// each row, same obs::Histogram math as the serving benches).
//
// Emits a table and ingest_throughput.json (bench_util::JsonWriter); the
// repo commits a snapshot as BENCH_ingest_throughput.json at the root.
// Structural fields (designs, dup_dropped, bytes, no-slurp evidence) are
// host-independent; only MB/s scales with cores.
//
// Knobs: DEEPSEQ_INGEST_BENCH_FILES/MODULES/GATES size the corpus
// (defaults ~8 MB; DEEPSEQ_FULL=1 switches to ~64 MB), and
// DEEPSEQ_INGEST_BENCH_THREADS caps the thread sweep (default 4).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "ingest/corpus.hpp"
#include "netlist/verilog_io.hpp"
#include "obs/metrics.hpp"

using namespace deepseq;
using namespace deepseq::bench;

namespace {

namespace fs = std::filesystem;

obs::HistogramSnapshot window(const obs::Snapshot& s, const std::string& name) {
  const auto it = s.histograms.find(name);
  return it == s.histograms.end() ? obs::HistogramSnapshot{} : it->second;
}

/// Deterministic corpus tree, same layout as examples/gen_corpus: every
/// 10th module is a structural duplicate, every file ends with the
/// behavioral DFF companion the frontend skips.
std::uint64_t generate_corpus(const std::string& dir, std::int64_t files,
                              std::int64_t modules, std::int64_t gates) {
  fs::create_directories(dir);
  std::uint64_t bytes = 0;
  for (std::int64_t f = 0; f < files; ++f) {
    char name[64];
    std::snprintf(name, sizeof name, "bench_%03lld.v",
                  static_cast<long long>(f));
    const fs::path path = fs::path(dir) / name;
    std::ofstream out(path);
    for (std::int64_t m = 0; m < modules; ++m) {
      const std::int64_t ordinal = f * modules + m;
      const bool dup = ordinal > 0 && ordinal % 10 == 0;
      const std::int64_t sf = dup ? 0 : f, sm = dup ? 0 : m;
      Rng rng(99 ^ (static_cast<std::uint64_t>(sf) << 32) ^
              static_cast<std::uint64_t>(sm) * 0x9E3779B97F4A7C15ULL);
      GeneratorSpec spec;
      spec.name = "b_" + std::to_string(f) + "_" + std::to_string(m);
      spec.num_gates = static_cast<int>(gates * rng.uniform(0.5, 1.5));
      spec.num_ffs = 1 + spec.num_gates / 10;
      Circuit c = generate_circuit(spec, rng);
      write_verilog_module(c, out);
      out << "\n";
    }
    write_dff_companion(out);
    out.close();
    bytes += fs::file_size(path);
  }
  return bytes;
}

}  // namespace

int main() {
  const bool full = env_int("DEEPSEQ_FULL", 0) != 0;
  const std::int64_t files =
      env_int("DEEPSEQ_INGEST_BENCH_FILES", full ? 16 : 6);
  const std::int64_t modules =
      env_int("DEEPSEQ_INGEST_BENCH_MODULES", full ? 12 : 6);
  const std::int64_t gates =
      env_int("DEEPSEQ_INGEST_BENCH_GATES", full ? 6000 : 2500);
  const int max_threads =
      static_cast<int>(env_int("DEEPSEQ_INGEST_BENCH_THREADS", 4));

  const std::string dir =
      (fs::temp_directory_path() / "deepseq_ingest_bench").string();
  fs::remove_all(dir);
  const std::uint64_t corpus_bytes = generate_corpus(dir, files, modules, gates);
  std::printf("ingest_throughput: corpus %lld files x %lld modules, %.1f MB\n\n",
              static_cast<long long>(files), static_cast<long long>(modules),
              corpus_bytes / 1e6);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "ingest_throughput");
  json.field("full", full);
  json.field("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));
  json.field("corpus_files", static_cast<std::int64_t>(files));
  json.field("corpus_modules_per_file", static_cast<std::int64_t>(modules));
  json.field("corpus_bytes", corpus_bytes);
  json.begin_array("rows");

  std::printf("threads | chunk KiB |     MB/s | designs/s | parse p50/p99 ms\n");
  std::printf("--------|-----------|----------|-----------|-----------------\n");

  double mbs_1thread = 0.0, mbs_best = 0.0;
  std::vector<int> threads_sweep;
  for (int t = 1; t <= max_threads; t *= 2) threads_sweep.push_back(t);
  const std::size_t chunks[] = {std::size_t(64) << 10, std::size_t(1) << 20};
  for (const int threads : threads_sweep) {
    for (const std::size_t chunk : chunks) {
      ingest::CorpusOptions options;
      options.ingest.threads = threads;
      options.ingest.chunk_bytes = chunk;
      const obs::Snapshot base = obs::Registry::global().snapshot();
      const ingest::Corpus corpus = ingest::Corpus::scan(dir, options);
      const obs::Snapshot row =
          obs::delta(obs::Registry::global().snapshot(), base);

      const double secs = corpus.elapsed_ms() / 1e3;
      const double mbs = corpus.total_bytes() / 1e6 / secs;
      const double dps = corpus.size() / secs;
      const obs::HistogramSnapshot parse = window(row, "ingest.parse_ns");
      const obs::Summary lat = parse.summary(1e-6);  // ns -> ms
      std::printf("%7d | %9zu | %8.1f | %9.1f | %.2f / %.2f\n", threads,
                  chunk >> 10, mbs, dps, lat.p50, lat.p99);

      if (threads == 1 && chunk == chunks[1]) mbs_1thread = mbs;
      if (mbs > mbs_best) mbs_best = mbs;

      json.begin_object();
      json.field("threads", threads);
      json.field("chunk_bytes", static_cast<std::uint64_t>(chunk));
      json.field("mb_per_s", mbs);
      json.field("designs_per_s", dps);
      json.field("elapsed_ms", corpus.elapsed_ms());
      json.field("designs", static_cast<std::uint64_t>(corpus.size()));
      json.field("files", corpus.files_scanned());
      json.field("bytes", corpus.total_bytes());
      json.field("dup_dropped", corpus.dup_dropped());
      json.field("modules_skipped", corpus.modules_skipped());
      json.field("peak_carry_bytes",
                 static_cast<std::uint64_t>(corpus.peak_carry_bytes()));
      json.field("max_token_bytes",
                 static_cast<std::uint64_t>(corpus.max_token_bytes()));
      json_histogram(json, "parse_ms", parse, 1e-6);
      json.end_object();
      std::fflush(stdout);
    }
  }

  json.end_array();
  if (mbs_1thread > 0)
    json.field("best_vs_1thread_speedup", mbs_best / mbs_1thread);
  json.end_object();
  write_json_file("ingest_throughput.json", json.str());
  if (mbs_1thread > 0)
    std::printf("\nbest vs 1-thread: %.2fx\n", mbs_best / mbs_1thread);

  fs::remove_all(dir);
  return 0;
}
