#include "runtime/inference_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "api/backends.hpp"
#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/topology.hpp"
#include "nn/graph.hpp"

namespace deepseq::runtime {
namespace {

ModelConfig small_model() { return ModelConfig::deepseq(/*hidden=*/12, /*t=*/2); }

PaceConfig small_pace() {
  PaceConfig cfg;
  cfg.hidden_dim = 12;
  cfg.layers = 2;
  return cfg;
}

EngineConfig small_engine(int threads, int max_batch = 4) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.max_batch = max_batch;
  return cfg;
}

/// Backend pair shared by a test: the engine is only a scheduler now, so
/// tests own the backend instances the requests point at.
struct Backends {
  api::DeepSeqBackend deepseq{small_model()};
  api::PaceBackend pace{small_pace()};
};

std::shared_ptr<const Circuit> shared_aig(std::uint64_t seed) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 5;
  spec.num_ffs = 4;
  spec.num_gates = 60;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return std::make_shared<const Circuit>(generate_circuit(spec, rng));
}

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(InferenceEngine, BatchedMatchesSequentialBitIdentical) {
  Backends backends;

  // Reference models built from the same presets: identical weights by
  // construction (deterministic seeds).
  const DeepSeqModel ref_model(small_model());
  const PaceEncoder ref_pace(small_pace());

  std::vector<std::shared_ptr<const Circuit>> circuits = {
      shared_aig(1), shared_aig(2),
      std::make_shared<const Circuit>(decompose_to_aig(iscas89_s27()).aig)};

  InferenceEngine engine(small_engine(/*threads=*/4));
  std::vector<EmbeddingRequest> requests;
  Rng rng(99);
  for (int i = 0; i < 24; ++i) {
    EmbeddingRequest r;
    r.circuit = circuits[i % circuits.size()];
    r.workload = random_workload(*r.circuit, rng);
    r.backend = (i % 2 == 0)
                    ? static_cast<const api::EmbeddingBackend*>(&backends.deepseq)
                    : &backends.pace;
    r.init_seed = 1000 + static_cast<std::uint64_t>(i);
    requests.push_back(std::move(r));
  }

  std::vector<std::future<EmbeddingResult>> futures;
  for (const auto& r : requests) futures.push_back(engine.submit(r));
  engine.drain();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const EmbeddingResult got = futures[i].get();
    const EmbeddingRequest& r = requests[i];
    nn::Graph g(false);
    nn::Tensor want;
    if (r.backend == &backends.pace) {
      const PaceGraph pg = build_pace_graph(*r.circuit, small_pace());
      want = ref_pace.embed(g, pg, r.workload, r.init_seed)->value;
    } else {
      const CircuitGraph cg = build_circuit_graph(*r.circuit);
      want = ref_model.embed(g, cg, r.workload, r.init_seed)->value;
    }
    ASSERT_NE(got.embedding, nullptr) << "request " << i;
    EXPECT_TRUE(bit_identical(*got.embedding, want)) << "request " << i;
  }
}

TEST(InferenceEngine, RunSyncMatchesSubmit) {
  Backends backends;
  InferenceEngine a(small_engine(2)), b(small_engine(2));
  auto circuit = shared_aig(5);
  Rng rng(7);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;
  r.init_seed = 42;

  auto f = a.submit(r);
  a.flush();
  const EmbeddingResult via_pool = f.get();
  const EmbeddingResult via_sync = b.run_sync(r);
  EXPECT_TRUE(bit_identical(*via_pool.embedding, *via_sync.embedding));
}

TEST(InferenceEngine, SubmitThenRunsCompletionOnWorker) {
  Backends backends;
  InferenceEngine engine(small_engine(2));
  auto circuit = shared_aig(5);
  Rng rng(7);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;

  auto f = engine.submit_then(r, [](EmbeddingResult&& er) {
    return er.embedding->rows();  // mapped result type
  });
  engine.drain();
  EXPECT_EQ(f.get(), static_cast<int>(circuit->num_nodes()));

  // A throwing completion surfaces through the future.
  auto g = engine.submit_then(
      std::move(r), [](EmbeddingResult&&) -> int { throw Error("head"); });
  engine.drain();
  EXPECT_THROW(g.get(), Error);
}

TEST(InferenceEngine, RepeatRequestHitsEmbeddingCache) {
  Backends backends;
  InferenceEngine engine(small_engine(2));
  auto circuit = shared_aig(6);
  Rng rng(8);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;
  r.init_seed = 3;

  const EmbeddingResult first = engine.run_sync(r);
  EXPECT_FALSE(first.embedding_cache_hit);
  const EmbeddingResult second = engine.run_sync(r);
  EXPECT_TRUE(second.embedding_cache_hit);
  EXPECT_EQ(first.embedding.get(), second.embedding.get());  // shared entry
  EXPECT_GE(engine.cache_stats().embeddings.hits, 1u);
}

TEST(InferenceEngine, BackendsDoNotShareCacheEntries) {
  // Same circuit + workload + seed through two different backends: the
  // fingerprints differ, so each gets its own structure and embedding
  // entries (no cross-backend aliasing).
  Backends backends;
  ASSERT_NE(backends.deepseq.info().fingerprint,
            backends.pace.info().fingerprint);
  InferenceEngine engine(small_engine(2));
  auto circuit = shared_aig(14);
  Rng rng(15);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;

  const EmbeddingResult via_deepseq = engine.run_sync(r);
  r.backend = &backends.pace;
  const EmbeddingResult via_pace = engine.run_sync(r);
  EXPECT_FALSE(via_pace.embedding_cache_hit);
  EXPECT_FALSE(via_pace.structure_cache_hit);
  EXPECT_FALSE(bit_identical(*via_deepseq.embedding, *via_pace.embedding));
  EXPECT_EQ(engine.cache_stats().structures.misses, 2u);
}

TEST(InferenceEngine, StructureSharedAcrossWorkloads) {
  Backends backends;
  InferenceEngine engine(small_engine(2));
  auto circuit = shared_aig(7);
  Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    EmbeddingRequest r;
    r.circuit = circuit;
    r.workload = random_workload(*circuit, rng);  // distinct workloads
    r.backend = &backends.deepseq;
    r.init_seed = static_cast<std::uint64_t>(i);
    (void)engine.run_sync(r);
  }
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.structures.misses, 1u);  // built once
  EXPECT_EQ(stats.structures.hits, 3u);
  EXPECT_EQ(stats.embeddings.hits, 0u);  // all-new workloads: no reuse
}

TEST(InferenceEngine, StateOnlyRequestSkipsForwardPass) {
  Backends backends;
  InferenceEngine engine(small_engine(1));
  auto circuit = shared_aig(16);
  Rng rng(17);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;
  r.want_embedding = false;
  r.want_state = true;

  const EmbeddingResult res = engine.run_sync(r);
  EXPECT_EQ(res.embedding, nullptr);
  ASSERT_NE(res.state, nullptr);
  const auto* state = dynamic_cast<const api::DeepSeqState*>(res.state.get());
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->graph.num_nodes, static_cast<int>(circuit->num_nodes()));
  EXPECT_EQ(engine.cache_stats().embeddings.misses, 0u);  // never consulted
}

/// Rebuild `c` with reversed per-level gate creation order: isomorphic
/// (same structural hash) but different node ids.
Circuit renumber(const Circuit& c) {
  Circuit out(c.name());
  std::vector<NodeId> map(c.num_nodes(), kNullNode);
  for (NodeId pi : c.pis()) map[pi] = out.add_pi();
  for (NodeId ff : c.ffs()) map[ff] = out.add_ff();
  for (const auto& level : comb_levelize(c).by_level) {
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      const NodeId v = *it;
      if (map[v] != kNullNode) continue;
      std::vector<NodeId> fanins;
      for (int i = 0; i < c.num_fanins(v); ++i)
        fanins.push_back(map[c.fanin(v, i)]);
      map[v] = out.add_gate(c.type(v), fanins);
    }
  }
  for (std::size_t k = 0; k < c.ffs().size(); ++k)
    out.set_fanin(out.ffs()[k], 0, map[c.fanin(c.ffs()[k], 0)]);
  for (NodeId po : c.pos()) out.add_po(map[po]);
  return out;
}

TEST(InferenceEngine, IsomorphicRenumberedCircuitGetsItsOwnEmbedding) {
  Backends backends;
  InferenceEngine engine(small_engine(2));
  auto a = shared_aig(20);
  auto b = std::make_shared<const Circuit>(renumber(*a));
  ASSERT_EQ(structural_hash(*a), structural_hash(*b));
  ASSERT_NE(exact_hash(*a), exact_hash(*b));

  Rng rng(21);
  Workload w = random_workload(*a, rng);
  EmbeddingRequest ra;
  ra.circuit = a;
  ra.workload = w;
  ra.backend = &backends.deepseq;
  ra.init_seed = 5;
  EmbeddingRequest rb = ra;
  rb.circuit = b;

  (void)engine.run_sync(ra);  // warms the cache with a's node-indexed rows
  const EmbeddingResult got_b = engine.run_sync(rb);
  EXPECT_FALSE(got_b.embedding_cache_hit);  // must NOT reuse a's entry

  const DeepSeqModel ref(small_model());
  nn::Graph g(false);
  const nn::Tensor want =
      ref.embed(g, build_circuit_graph(*b), w, 5)->value;
  EXPECT_TRUE(bit_identical(*got_b.embedding, want));
}

TEST(InferenceEngine, PartialBatchFlushedByTimer) {
  Backends backends;
  EngineConfig cfg = small_engine(2, /*max_batch=*/64);
  cfg.flush_interval_ms = 1.0;
  InferenceEngine engine(cfg);
  auto circuit = shared_aig(8);
  Rng rng(10);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;

  auto f = engine.submit(r);  // far below max_batch; no explicit flush
  ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_NE(f.get().embedding, nullptr);
}

TEST(InferenceEngine, WorkloadMismatchSurfacesThroughFuture) {
  Backends backends;
  InferenceEngine engine(small_engine(2));
  EmbeddingRequest r;
  r.circuit = shared_aig(11);
  r.workload.pi_prob = {0.5};  // wrong PI count
  r.backend = &backends.deepseq;
  auto f = engine.submit(std::move(r));
  engine.flush();
  EXPECT_THROW(f.get(), Error);
}

TEST(InferenceEngine, MissingBackendSurfacesThroughFuture) {
  InferenceEngine engine(small_engine(1));
  EmbeddingRequest r;
  r.circuit = shared_aig(11);
  Rng rng(12);
  r.workload = random_workload(*r.circuit, rng);
  auto f = engine.submit(std::move(r));  // backend left null
  engine.flush();
  EXPECT_THROW(f.get(), Error);
}

TEST(InferenceEngine, MissingCircuitFailsFastOnSubmit) {
  Backends backends;
  InferenceEngine engine(small_engine(1));
  EmbeddingRequest r;
  r.backend = &backends.deepseq;  // circuit left null
  EXPECT_THROW((void)engine.submit(r), Error);
  EXPECT_THROW((void)engine.run_sync(r), Error);
}

TEST(InferenceEngine, LatencyBreakdownIsPopulated) {
  Backends backends;
  InferenceEngine engine(small_engine(1));
  auto circuit = shared_aig(12);
  Rng rng(13);
  EmbeddingRequest r;
  r.circuit = circuit;
  r.workload = random_workload(*circuit, rng);
  r.backend = &backends.deepseq;
  auto f = engine.submit(r);
  engine.drain();
  const EmbeddingResult res = f.get();
  EXPECT_GT(res.compute_ms, 0.0);
  EXPECT_GE(res.total_ms, res.compute_ms);
  EXPECT_GE(res.queue_ms, 0.0);
}

}  // namespace
}  // namespace deepseq::runtime
