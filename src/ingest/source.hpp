#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace deepseq::ingest {

/// Sequential fixed-size-chunk view over a file that never materializes the
/// whole text in an owned buffer. The file is mmap'ed read-only when
/// possible (chunks are zero-copy views into the mapping, advised
/// MADV_SEQUENTIAL so the kernel pages the window in and out behind the
/// cursor); when mmap is unavailable (pipes, platforms without it, empty
/// files) it falls back to read(2) into one reused chunk-sized buffer.
/// Either way the peak owned allocation is bounded by the chunk size, not
/// the file size — the structural half of the ingest no-slurp contract
/// (the other half is the lexer's bounded token carry-over).
class FileChunkReader {
 public:
  /// Throws ParseError("cannot open file: <path>") like the legacy parser.
  FileChunkReader(const std::string& path, std::size_t chunk_bytes);
  ~FileChunkReader();

  FileChunkReader(const FileChunkReader&) = delete;
  FileChunkReader& operator=(const FileChunkReader&) = delete;

  /// The next at-most-chunk_bytes window; empty at EOF. The view is
  /// invalidated by the next call (read fallback reuses its buffer).
  std::string_view next_chunk();

  std::uint64_t file_bytes() const { return file_bytes_; }
  std::size_t chunk_bytes() const { return chunk_bytes_; }
  bool mmap_backed() const { return map_ != nullptr; }

  /// Bytes of owned heap buffer this reader allocated: 0 when mmap-backed,
  /// the chunk size for the read fallback. Never proportional to the file.
  std::size_t buffer_bytes() const { return buffer_.size(); }

 private:
  std::size_t chunk_bytes_;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t pos_ = 0;
  int fd_ = -1;
  const char* map_ = nullptr;
  std::vector<char> buffer_;  // read-fallback scratch, chunk-sized
};

}  // namespace deepseq::ingest
