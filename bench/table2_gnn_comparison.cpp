// Regenerates Table II: average prediction error of the baseline DAG-GNNs
// and DeepSeq on the two tasks (transition probabilities T_TR and logic
// probability T_LG), all trained on the identical dataset and evaluated on
// a held-out split. Paper values shown alongside. The reproduction target
// is the *ranking* (DeepSeq best, recursion helping, attention helping),
// not the absolute numbers, which depend on training scale.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE II", "DeepSeq vs baseline GNN models (avg prediction error)", cfg);

  std::vector<TrainSample> train, val;
  split_dataset(cfg, train, val);
  std::printf("[setup] %zu train / %zu validation circuits\n", train.size(),
              val.size());

  struct Row {
    ModelConfig config;
    double paper_tr, paper_lg;
  };
  const Row rows[] = {
      {ModelConfig::dag_conv_gnn(AggregatorKind::kConvSum, cfg.hidden), 0.066, 0.236},
      {ModelConfig::dag_conv_gnn(AggregatorKind::kAttention, cfg.hidden), 0.065, 0.220},
      {ModelConfig::dag_rec_gnn(AggregatorKind::kConvSum, cfg.hidden, cfg.iterations), 0.045, 0.104},
      {ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, cfg.hidden, cfg.iterations), 0.035, 0.095},
      {ModelConfig::deepseq(cfg.hidden, cfg.iterations), 0.028, 0.080},
  };

  std::printf("\n%-32s | %9s %9s || %9s %9s\n", "Model / Aggregation",
              "PE(T_TR)", "PE(T_LG)", "paper TR", "paper LG");
  std::printf("%.*s\n", 80, "--------------------------------------------------"
                            "------------------------------");
  double best_tr = 1e9, deepseq_tr = 0, best_baseline_tr = 1e9, best_baseline_lg = 1e9;
  double deepseq_lg = 0;
  for (const Row& row : rows) {
    const DeepSeqModel model = train_or_load(row.config, train, cfg, "split");
    const EvalMetrics m = evaluate(model, val);
    std::printf("%-32s | %9.4f %9.4f || %9.3f %9.3f\n",
                row.config.description().c_str(), m.avg_pe_tr, m.avg_pe_lg,
                row.paper_tr, row.paper_lg);
    std::fflush(stdout);
    best_tr = std::min(best_tr, m.avg_pe_tr);
    if (row.config.propagation == PropagationKind::kDeepSeqCustom) {
      deepseq_tr = m.avg_pe_tr;
      deepseq_lg = m.avg_pe_lg;
    } else {
      best_baseline_tr = std::min(best_baseline_tr, m.avg_pe_tr);
      best_baseline_lg = std::min(best_baseline_lg, m.avg_pe_lg);
    }
  }

  std::printf("\nDeepSeq vs best baseline: TR %+.1f%%, LG %+.1f%% relative "
              "(paper: -20.0%% TR, -15.8%% LG)\n",
              100.0 * (deepseq_tr - best_baseline_tr) / best_baseline_tr,
              100.0 * (deepseq_lg - best_baseline_lg) / best_baseline_lg);
  return 0;
}
