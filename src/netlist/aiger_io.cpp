#include "netlist/aiger_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

namespace {

std::uint64_t parse_u64(const std::string& tok, int line) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0')
    throw ParseError("expected unsigned integer, got '" + tok + "'", line);
  return v;
}

struct AigerData {
  std::uint64_t M = 0;
  std::vector<std::uint64_t> input_lits, output_lits;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> latch_lits;  // cur,next
  std::vector<std::array<std::uint64_t, 3>> and_lits;               // lhs,r0,r1
};

/// Shared construction phase of both AIGER parsers: create PI/FF/AND nodes
/// for every defined variable, then resolve literals (one explicit NOT node
/// per complemented variable, matching the paper's four-node-type AIG).
Circuit build_from_aiger_data(const AigerData& d, std::string circuit_name) {
  Circuit c(std::move(circuit_name));
  const std::uint64_t M = d.M;
  std::vector<NodeId> var_node(M + 1, kNullNode);
  NodeId const0 = kNullNode;
  const auto& input_lits = d.input_lits;
  const auto& latch_lits = d.latch_lits;
  const auto& output_lits = d.output_lits;
  const auto& and_lits = d.and_lits;

  // Create structural nodes first (so forward references resolve).
  for (const auto lit : input_lits) {
    const auto var = lit >> 1;
    if (var > M || var_node[var] != kNullNode)
      throw ParseError("duplicate or out-of-range input variable");
    var_node[var] = c.add_pi("i" + std::to_string(var));
  }
  for (const auto& [cur, next] : latch_lits) {
    (void)next;
    const auto var = cur >> 1;
    if (var > M || var_node[var] != kNullNode)
      throw ParseError("duplicate or out-of-range latch variable");
    var_node[var] = c.add_ff(kNullNode, "l" + std::to_string(var));
  }
  for (const auto& al : and_lits) {
    const auto var = al[0] >> 1;
    if (var > M || var_node[var] != kNullNode)
      throw ParseError("duplicate or out-of-range and variable");
    var_node[var] = c.add_gate(GateType::kAnd, {kNullNode, kNullNode},
                               "a" + std::to_string(var));
  }

  // Literal resolution, creating one NOT node per complemented variable.
  std::unordered_map<std::uint64_t, NodeId> not_cache;
  auto lit_node = [&](std::uint64_t lit) -> NodeId {
    const auto var = lit >> 1;
    if (var > M) throw ParseError("literal out of range");
    if (var == 0) {
      if (const0 == kNullNode) const0 = c.add_const0("const0");
      if ((lit & 1) == 0) return const0;
      auto [it, inserted] = not_cache.emplace(1, kNullNode);
      if (inserted) it->second = c.add_not(const0, "const1");
      return it->second;
    }
    const NodeId base = var_node[var];
    if (base == kNullNode) throw ParseError("undefined variable " + std::to_string(var));
    if ((lit & 1) == 0) return base;
    auto [it, inserted] = not_cache.emplace(lit, kNullNode);
    if (inserted) it->second = c.add_not(base, "n" + std::to_string(lit));
    return it->second;
  };

  for (std::size_t k = 0; k < and_lits.size(); ++k) {
    const NodeId id = var_node[and_lits[k][0] >> 1];
    c.set_fanin(id, 0, lit_node(and_lits[k][1]));
    c.set_fanin(id, 1, lit_node(and_lits[k][2]));
  }
  for (const auto& [cur, next] : latch_lits)
    c.set_fanin(var_node[cur >> 1], 0, lit_node(next));
  for (const auto lit : output_lits)
    c.add_po(lit_node(lit), "o" + std::to_string(lit));

  c.validate();
  return c;
}


/// Variable/literal assignment shared by the ASCII and binary writers.
/// Variables are numbered canonically (PIs first, then FFs, then AND gates
/// in topological order) — the ordering the binary format requires. NOT
/// chains fold into complemented literals of their ultimate non-NOT source.
class LiteralMap {
 public:
  explicit LiteralMap(const Circuit& c) : c_(c), var_(c.num_nodes(), 0),
                                          lit_(c.num_nodes(), -1) {
    for (NodeId pi : c.pis()) var_[pi] = ++next_var_;
    for (NodeId ff : c.ffs()) var_[ff] = ++next_var_;
    for (NodeId v : comb_topo_order(c)) {
      switch (c.type(v)) {
        case GateType::kAnd:
          var_[v] = ++next_var_;
          and_order_.push_back(v);
          break;
        case GateType::kPi:
        case GateType::kFf:
        case GateType::kNot:
        case GateType::kConst0:
          break;
        default:
          throw CircuitError("write_aiger: circuit is not a strict AIG (has " +
                             std::string(gate_type_name(c.type(v))) + ")");
      }
    }
  }

  std::uint64_t max_var() const { return next_var_; }
  const std::vector<NodeId>& and_order() const { return and_order_; }
  std::uint64_t var(NodeId v) const { return var_[v]; }

  std::uint64_t lit(NodeId v) {
    if (lit_[v] >= 0) return static_cast<std::uint64_t>(lit_[v]);
    std::vector<NodeId> chain;
    NodeId cur = v;
    while (c_.type(cur) == GateType::kNot && lit_[cur] < 0) {
      chain.push_back(cur);
      cur = c_.fanin(cur, 0);
    }
    std::uint64_t base;
    if (lit_[cur] >= 0) {
      base = static_cast<std::uint64_t>(lit_[cur]);
    } else {
      base = (c_.type(cur) == GateType::kConst0) ? 0 : 2 * var_[cur];
      lit_[cur] = static_cast<std::int64_t>(base);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      base ^= 1;
      lit_[*it] = static_cast<std::int64_t>(base);
    }
    return static_cast<std::uint64_t>(lit_[v]);
  }

 private:
  const Circuit& c_;
  std::vector<std::uint64_t> var_;
  std::vector<std::int64_t> lit_;
  std::vector<NodeId> and_order_;
  std::uint64_t next_var_ = 0;
};

void write_symbol_table(const Circuit& c, std::ostream& out) {
  for (std::size_t k = 0; k < c.pis().size(); ++k) {
    const auto& n = c.node_name(c.pis()[k]);
    if (!n.empty()) out << 'i' << k << ' ' << n << "\n";
  }
  for (std::size_t k = 0; k < c.ffs().size(); ++k) {
    const auto& n = c.node_name(c.ffs()[k]);
    if (!n.empty()) out << 'l' << k << ' ' << n << "\n";
  }
  for (std::size_t k = 0; k < c.pos().size(); ++k) {
    const auto& n = c.po_name(k);
    if (!n.empty()) out << 'o' << k << ' ' << n << "\n";
  }
}

/// Read the optional trailing symbol table ("iK name" / "lK name" /
/// "oK name"), stopping at the comment section ("c") or end of stream.
void apply_symbol_table(std::istream& in, Circuit& c) {
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (line[0] == 'c' && (line.size() == 1 || line[1] == ' ')) break;
    const char kind = line[0];
    if (kind != 'i' && kind != 'l' && kind != 'o') break;
    const auto sp = line.find(' ');
    if (sp == std::string_view::npos || sp < 2) continue;
    char* end = nullptr;
    const std::string idx_text(line.substr(1, sp - 1));
    const unsigned long k = std::strtoul(idx_text.c_str(), &end, 10);
    if (end == idx_text.c_str() || *end != '\0') continue;
    const std::string name(trim(line.substr(sp + 1)));
    if (name.empty()) continue;
    if (kind == 'i' && k < c.pis().size()) c.set_node_name(c.pis()[k], name);
    if (kind == 'l' && k < c.ffs().size()) c.set_node_name(c.ffs()[k], name);
    if (kind == 'o' && k < c.pos().size()) c.set_po_name(k, name);
  }
}

}  // namespace

Circuit parse_aiger(std::istream& in, std::string circuit_name) {
  std::string raw;
  int line_no = 0;
  auto next_line = [&]() -> std::string {
    if (!std::getline(in, raw)) throw ParseError("unexpected end of file", line_no);
    ++line_no;
    return raw;
  };

  const auto header = split_ws(next_line());
  if (header.size() != 6 || header[0] != "aag")
    throw ParseError("expected 'aag M I L O A' header", line_no);
  AigerData d;
  d.M = parse_u64(header[1], line_no);
  const auto I = parse_u64(header[2], line_no);
  const auto L = parse_u64(header[3], line_no);
  const auto O = parse_u64(header[4], line_no);
  const auto A = parse_u64(header[5], line_no);
  if (d.M < I + L + A) throw ParseError("inconsistent AIGER header counts", 1);

  for (std::uint64_t k = 0; k < I; ++k) {
    const auto toks = split_ws(next_line());
    if (toks.size() != 1) throw ParseError("malformed input line", line_no);
    const auto lit = parse_u64(toks[0], line_no);
    if (lit < 2 || (lit & 1) != 0)
      throw ParseError("input literal must be positive and >= 2", line_no);
    d.input_lits.push_back(lit);
  }
  for (std::uint64_t k = 0; k < L; ++k) {
    const auto toks = split_ws(next_line());
    if (toks.size() != 2) throw ParseError("malformed latch line", line_no);
    const auto cur = parse_u64(toks[0], line_no);
    if (cur < 2 || (cur & 1) != 0)
      throw ParseError("latch literal must be positive and >= 2", line_no);
    d.latch_lits.emplace_back(cur, parse_u64(toks[1], line_no));
  }
  for (std::uint64_t k = 0; k < O; ++k) {
    const auto toks = split_ws(next_line());
    if (toks.size() != 1) throw ParseError("malformed output line", line_no);
    d.output_lits.push_back(parse_u64(toks[0], line_no));
  }
  for (std::uint64_t k = 0; k < A; ++k) {
    const auto toks = split_ws(next_line());
    if (toks.size() != 3) throw ParseError("malformed and line", line_no);
    const auto lhs = parse_u64(toks[0], line_no);
    if (lhs < 2 || (lhs & 1) != 0)
      throw ParseError("and lhs must be positive and >= 2", line_no);
    d.and_lits.push_back({lhs, parse_u64(toks[1], line_no), parse_u64(toks[2], line_no)});
  }

  Circuit c = build_from_aiger_data(d, std::move(circuit_name));
  apply_symbol_table(in, c);
  return c;
}

Circuit parse_aiger_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return parse_aiger(in, std::move(circuit_name));
}

Circuit parse_aiger_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  const auto slash = path.find_last_of('/');
  std::string base = (slash == std::string::npos) ? path : path.substr(slash + 1);
  return parse_aiger(in, std::move(base));
}

void write_aiger(const Circuit& c, std::ostream& out) {
  LiteralMap m(c);
  out << "aag " << m.max_var() << ' ' << c.pis().size() << ' '
      << c.ffs().size() << ' ' << c.pos().size() << ' '
      << m.and_order().size() << "\n";
  for (NodeId pi : c.pis()) out << 2 * m.var(pi) << "\n";
  for (NodeId ff : c.ffs())
    out << 2 * m.var(ff) << ' ' << m.lit(c.fanin(ff, 0)) << "\n";
  for (NodeId po : c.pos()) out << m.lit(po) << "\n";
  for (NodeId v : m.and_order())
    out << 2 * m.var(v) << ' ' << m.lit(c.fanin(v, 0)) << ' '
        << m.lit(c.fanin(v, 1)) << "\n";
  write_symbol_table(c, out);
}

std::string write_aiger_string(const Circuit& c) {
  std::ostringstream out;
  write_aiger(c, out);
  return out.str();
}

void write_aiger_file(const Circuit& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_aiger(c, out);
}


// ---- binary AIGER (.aig) ---------------------------------------------------

namespace {

/// LEB128-style varint of the AIGER binary format: 7 bits per byte, LSB
/// first, high bit set on all but the last byte.
void put_delta(std::ostream& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.put(static_cast<char>(0x80 | (x & 0x7F)));
    x >>= 7;
  }
  out.put(static_cast<char>(x));
}

std::uint64_t get_delta(std::istream& in) {
  std::uint64_t x = 0;
  int shift = 0;
  for (;;) {
    const int ch = in.get();
    if (ch == EOF) throw ParseError("unexpected end of binary AND section");
    x |= static_cast<std::uint64_t>(ch & 0x7F) << shift;
    if ((ch & 0x80) == 0) return x;
    shift += 7;
    if (shift > 63) throw ParseError("binary delta overflows 64 bits");
  }
}

}  // namespace

void write_aiger_binary(const Circuit& c, std::ostream& out) {
  LiteralMap m(c);
  const std::uint64_t I = c.pis().size(), L = c.ffs().size();
  out << "aig " << m.max_var() << ' ' << I << ' ' << L << ' '
      << c.pos().size() << ' ' << m.and_order().size() << "\n";
  // Binary format requires canonical variable numbering: PIs must be
  // variables 1..I and latches I+1..I+L. LiteralMap assigns exactly that.
  for (NodeId ff : c.ffs()) out << m.lit(c.fanin(ff, 0)) << "\n";
  for (NodeId po : c.pos()) out << m.lit(po) << "\n";
  for (NodeId v : m.and_order()) {
    const std::uint64_t lhs = 2 * m.var(v);
    std::uint64_t r0 = m.lit(c.fanin(v, 0));
    std::uint64_t r1 = m.lit(c.fanin(v, 1));
    if (r0 < r1) std::swap(r0, r1);  // format requires lhs > rhs0 >= rhs1
    put_delta(out, lhs - r0);
    put_delta(out, r0 - r1);
  }
  write_symbol_table(c, out);
}

Circuit parse_aiger_binary(std::istream& in, std::string circuit_name) {
  std::string raw;
  if (!std::getline(in, raw)) throw ParseError("empty binary AIGER stream");
  const auto header = split_ws(raw);
  if (header.size() != 6 || header[0] != "aig")
    throw ParseError("expected 'aig M I L O A' header", 1);
  AigerData d;
  d.M = parse_u64(header[1], 1);
  const auto I = parse_u64(header[2], 1);
  const auto L = parse_u64(header[3], 1);
  const auto O = parse_u64(header[4], 1);
  const auto A = parse_u64(header[5], 1);
  if (d.M != I + L + A)
    throw ParseError("binary AIGER requires M = I + L + A", 1);

  // Inputs and latch outputs are implicit consecutive variables.
  int line_no = 1;
  for (std::uint64_t k = 0; k < I; ++k) d.input_lits.push_back(2 * (k + 1));
  for (std::uint64_t k = 0; k < L; ++k) {
    if (!std::getline(in, raw)) throw ParseError("missing latch line", line_no);
    ++line_no;
    const auto toks = split_ws(raw);
    if (toks.empty()) throw ParseError("malformed latch line", line_no);
    // AIGER 1.9 allows an optional reset value token; only 0 (our FF
    // semantics) is representable.
    if (toks.size() > 1 && toks[1] != "0")
      throw ParseError("unsupported latch reset value", line_no);
    d.latch_lits.emplace_back(2 * (I + k + 1), parse_u64(toks[0], line_no));
  }
  for (std::uint64_t k = 0; k < O; ++k) {
    if (!std::getline(in, raw)) throw ParseError("missing output line", line_no);
    ++line_no;
    const auto toks = split_ws(raw);
    if (toks.size() != 1) throw ParseError("malformed output line", line_no);
    d.output_lits.push_back(parse_u64(toks[0], line_no));
  }
  for (std::uint64_t k = 0; k < A; ++k) {
    const std::uint64_t lhs = 2 * (I + L + k + 1);
    const std::uint64_t delta0 = get_delta(in);
    if (delta0 > lhs) throw ParseError("binary AND delta0 out of range");
    const std::uint64_t r0 = lhs - delta0;
    const std::uint64_t delta1 = get_delta(in);
    if (delta1 > r0) throw ParseError("binary AND delta1 out of range");
    d.and_lits.push_back({lhs, r0, r0 - delta1});
  }
  Circuit c = build_from_aiger_data(d, std::move(circuit_name));
  apply_symbol_table(in, c);
  return c;
}

Circuit parse_aiger_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open file: " + path);
  const auto slash = path.find_last_of('/');
  std::string base = (slash == std::string::npos) ? path : path.substr(slash + 1);
  return parse_aiger_binary(in, std::move(base));
}

void write_aiger_binary_file(const Circuit& c, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_aiger_binary(c, out);
}

}  // namespace deepseq
