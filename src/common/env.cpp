#include "common/env.hpp"

#include <cctype>
#include <cstdlib>

namespace deepseq {
namespace {

/// True when everything from `p` on is whitespace: a parse is only accepted
/// if it consumed the whole value (modulo trailing whitespace), so knobs
/// like DEEPSEQ_QPS=1e2abc or DEEPSEQ_THREADS=8x fall back instead of
/// silently truncating to a number the operator never asked for.
bool only_trailing_whitespace(const char* p) {
  for (; *p != '\0'; ++p)
    if (!std::isspace(static_cast<unsigned char>(*p))) return false;
  return true;
}

}  // namespace

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || !only_trailing_whitespace(end)) return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || !only_trailing_whitespace(end)) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

bool full_scale() { return env_int("DEEPSEQ_FULL", 0) != 0; }

}  // namespace deepseq
