#include "netlist/aiger_io.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

// A toggle flip-flop: latch inverts itself each cycle; output is the latch.
//   aag 2 1 1 1 0? -- we need one AND? Simplest legal file with an AND:
//   out = a AND latch, latch' = NOT latch.
const char* kToggle = R"(aag 3 1 1 1 1
2
4 5
6
6 2 4
i0 a
l0 q
o0 out
)";

TEST(AigerIo, ParsesToggleExample) {
  const Circuit c = parse_aiger_string(kToggle);
  EXPECT_EQ(c.pis().size(), 1u);
  EXPECT_EQ(c.ffs().size(), 1u);
  EXPECT_EQ(c.pos().size(), 1u);
  // Nodes: PI, FF, AND, plus one NOT for literal 5.
  const auto counts = c.type_counts();
  EXPECT_EQ(counts[static_cast<int>(GateType::kAnd)], 1u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kNot)], 1u);
}

TEST(AigerIo, ComplementedLiteralsShareOneInverter) {
  // Both ANDs use ~2; only one NOT node should exist.
  const char* text = R"(aag 4 1 0 2 2
2
6
8
6 3 3
8 3 2
)";
  const Circuit c = parse_aiger_string(text);
  EXPECT_EQ(c.type_counts()[static_cast<int>(GateType::kNot)], 1u);
}

TEST(AigerIo, ConstantLiterals) {
  // Output is constant false (literal 0).
  const char* text = "aag 1 1 0 1 0\n2\n0\n";
  const Circuit c = parse_aiger_string(text);
  ASSERT_EQ(c.pos().size(), 1u);
  EXPECT_EQ(c.type(c.pos()[0]), GateType::kConst0);
}

TEST(AigerIo, BadHeaderThrows) {
  EXPECT_THROW(parse_aiger_string("aig 1 1 0 1 0\n2\n0\n"), ParseError);
  EXPECT_THROW(parse_aiger_string("aag 1 1\n"), ParseError);
}

TEST(AigerIo, OddInputLiteralThrows) {
  EXPECT_THROW(parse_aiger_string("aag 1 1 0 0 0\n3\n"), ParseError);
}

TEST(AigerIo, DuplicateVariableThrows) {
  EXPECT_THROW(parse_aiger_string("aag 2 2 0 0 0\n2\n2\n"), ParseError);
}

TEST(AigerIo, TruncatedFileThrows) {
  EXPECT_THROW(parse_aiger_string("aag 3 1 1 1 1\n2\n4 5\n"), ParseError);
}

TEST(AigerIo, RoundTripPreservesBehaviour) {
  // Random AIG -> aag -> parse -> compare simulations.
  Rng rng(4242);
  GeneratorSpec spec;
  spec.num_gates = 80;
  spec.num_ffs = 8;
  // AIG-only vocabulary.
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 3;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 1;
  const Circuit original = generate_circuit(spec, rng);
  ASSERT_TRUE(original.is_strict_aig());

  const Circuit reparsed = parse_aiger_string(write_aiger_string(original));
  EXPECT_EQ(reparsed.pis().size(), original.pis().size());
  EXPECT_EQ(reparsed.ffs().size(), original.ffs().size());
  EXPECT_EQ(reparsed.pos().size(), original.pos().size());

  // Behavioural equivalence on the POs under a common pattern stream.
  SequentialSimulator s1(original), s2(reparsed);
  Rng pat(7);
  for (int cycle = 0; cycle < 64; ++cycle) {
    std::vector<std::uint64_t> pi(original.pis().size());
    for (auto& w : pi) w = pat.next_u64();
    s1.step(pi);
    s2.step(pi);
    for (std::size_t k = 0; k < original.pos().size(); ++k)
      ASSERT_EQ(s1.value(original.pos()[k]), s2.value(reparsed.pos()[k]))
          << "cycle " << cycle << " po " << k;
    s1.clock();
    s2.clock();
  }
}

TEST(AigerIo, WriteRejectsGenericGates) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId x = c.add_gate(GateType::kXor, {a, b}, "x");
  c.add_po(x, "o");
  EXPECT_THROW(write_aiger_string(c), CircuitError);
}

TEST(AigerIo, NotChainFoldsIntoComplement) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId n1 = c.add_not(a, "n1");
  const NodeId n2 = c.add_not(n1, "n2");
  const NodeId n3 = c.add_not(n2, "n3");
  c.add_po(n3, "o");
  const std::string text = write_aiger_string(c);
  // No AND gates; output literal must be the complement of input var 1.
  const Circuit back = parse_aiger_string(text);
  EXPECT_EQ(back.type_counts()[static_cast<int>(GateType::kAnd)], 0u);
}

}  // namespace
}  // namespace deepseq
