#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace deepseq::nn {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor(-1, 4), ShapeError);
}

TEST(Tensor, FromRows) {
  const Tensor t = Tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.at(2, 1), 6.0f);
}

TEST(Tensor, FromRowsRaggedThrows) {
  EXPECT_THROW(Tensor::from_rows({{1, 2}, {3}}), ShapeError);
}

TEST(Tensor, FullAndScalar) {
  const Tensor t = Tensor::full(2, 2, 7.5f);
  EXPECT_EQ(t.at(1, 1), 7.5f);
  EXPECT_EQ(Tensor::scalar(3.0f).at(0, 0), 3.0f);
}

TEST(Tensor, XavierBounds) {
  Rng rng(1);
  const Tensor t = Tensor::xavier(16, 16, rng);
  const double bound = std::sqrt(6.0 / 32.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t.data()[i]), bound);
  }
  EXPECT_GT(t.abs_max(), 0.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_rows({{1, -2}, {3, -4}});
  EXPECT_FLOAT_EQ(t.sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
}

TEST(Tensor, MatmulIdentity) {
  const Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor eye(2, 2);
  eye.at(0, 0) = eye.at(1, 1) = 1.0f;
  const Tensor r = matmul(a, eye);
  EXPECT_FLOAT_EQ(r.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(r.at(1, 1), 4.0f);
}

TEST(Tensor, MatmulKnownValues) {
  const Tensor a = Tensor::from_rows({{1, 2, 3}});       // 1x3
  const Tensor b = Tensor::from_rows({{1}, {2}, {3}});   // 3x1
  EXPECT_FLOAT_EQ(matmul(a, b).at(0, 0), 14.0f);
  const Tensor outer = matmul(b, a);  // 3x3
  EXPECT_FLOAT_EQ(outer.at(2, 2), 9.0f);
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor(2, 3), Tensor(2, 3)), ShapeError);
}

TEST(Tensor, MatmulTnAccEqualsTransposedProduct) {
  Rng rng(3);
  const Tensor a = Tensor::xavier(4, 3, rng);
  const Tensor b = Tensor::xavier(4, 5, rng);
  Tensor out(3, 5);
  matmul_tn_acc(a, b, out);
  Tensor at(3, 4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  const Tensor expect = matmul(at, b);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.data()[i], expect.data()[i], 1e-5);
}

TEST(Tensor, MatmulNtAccEqualsProductWithTranspose) {
  Rng rng(4);
  const Tensor a = Tensor::xavier(4, 3, rng);
  const Tensor b = Tensor::xavier(5, 3, rng);
  Tensor out(4, 5);
  matmul_nt_acc(a, b, out);
  Tensor bt(3, 5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  const Tensor expect = matmul(a, bt);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.data()[i], expect.data()[i], 1e-5);
}

TEST(Tensor, ElementwiseOps) {
  const Tensor a = Tensor::from_rows({{1, 2}});
  const Tensor b = Tensor::from_rows({{3, 5}});
  EXPECT_FLOAT_EQ(add(a, b).at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(sub(a, b).at(0, 0), -2.0f);
  EXPECT_FLOAT_EQ(mul(a, b).at(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(scale(a, -2.0f).at(0, 0), -2.0f);
}

TEST(Tensor, ElementwiseShapeChecks) {
  EXPECT_THROW(add(Tensor(1, 2), Tensor(2, 1)), ShapeError);
  EXPECT_THROW(mul(Tensor(1, 2), Tensor(1, 3)), ShapeError);
}

TEST(Tensor, AddRowBroadcast) {
  const Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  const Tensor r = Tensor::from_rows({{10, 20}});
  const Tensor out = add_row(a, r);
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
  EXPECT_THROW(add_row(a, Tensor(1, 3)), ShapeError);
}

TEST(Tensor, Activations) {
  const Tensor x = Tensor::from_rows({{0.0f, -100.0f, 100.0f}});
  const Tensor s = sigmoid(x);
  EXPECT_NEAR(s.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(s.at(0, 1), 0.0f, 1e-6);
  EXPECT_NEAR(s.at(0, 2), 1.0f, 1e-6);
  const Tensor t = tanh_t(Tensor::from_rows({{0.0f, 100.0f}}));
  EXPECT_NEAR(t.at(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(t.at(0, 1), 1.0f, 1e-6);
  const Tensor r = relu(Tensor::from_rows({{-1.0f, 2.0f}}));
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(0, 1), 2.0f);
}

TEST(Tensor, InPlaceOps) {
  Tensor a = Tensor::from_rows({{1, 2}});
  add_in_place(a, Tensor::from_rows({{10, 10}}));
  EXPECT_FLOAT_EQ(a.at(0, 1), 12.0f);
  scale_in_place(a, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 5.5f);
}

}  // namespace
}  // namespace deepseq::nn
