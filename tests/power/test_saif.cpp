#include "power/saif.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace deepseq {
namespace {

SaifDocument sample_doc() {
  SaifDocument doc;
  doc.design = "testchip";
  doc.duration = 10000;
  doc.add_net("n1", 0.25, 0.1);
  doc.add_net("n2", 0.75, 0.02);
  doc.add_net("clk_q", 0.5, 1.0);
  return doc;
}

TEST(Saif, AddNetComputesDurations) {
  const SaifDocument doc = sample_doc();
  const auto nets = doc.net_map();
  EXPECT_EQ(nets.at("n1").t1, 2500);
  EXPECT_EQ(nets.at("n1").t0, 7500);
  EXPECT_EQ(nets.at("n1").tc, 1000);
  EXPECT_EQ(nets.at("clk_q").tc, 10000);
}

TEST(Saif, RoundTripPreservesRecords) {
  const SaifDocument doc = sample_doc();
  const SaifDocument back = parse_saif_string(write_saif_string(doc));
  EXPECT_EQ(back.design, "testchip");
  EXPECT_EQ(back.duration, 10000);
  ASSERT_EQ(back.nets.size(), 3u);
  const auto nets = back.net_map();
  EXPECT_EQ(nets.at("n1").t0, 7500);
  EXPECT_EQ(nets.at("n2").tc, 200);
  EXPECT_EQ(nets.at("clk_q").t1, 5000);
}

TEST(Saif, OutputContainsStandardSections) {
  const std::string text = write_saif_string(sample_doc());
  EXPECT_NE(text.find("(SAIFILE"), std::string::npos);
  EXPECT_NE(text.find("(SAIFVERSION \"2.0\")"), std::string::npos);
  EXPECT_NE(text.find("(DURATION 10000)"), std::string::npos);
  EXPECT_NE(text.find("(INSTANCE testchip"), std::string::npos);
  EXPECT_NE(text.find("(TC 1000)"), std::string::npos);
}

TEST(Saif, ParserSkipsUnknownSections) {
  const char* text = R"((SAIFILE
  (SAIFVERSION "2.0")
  (SOMETHING (NESTED (DEEP 3)))
  (DURATION 100)
  (INSTANCE top
    (PORT (ignored (T0 1)))
    (NET
      (a (T0 40) (T1 60) (TC 7))
    )
  )
))";
  const SaifDocument doc = parse_saif_string(text);
  EXPECT_EQ(doc.duration, 100);
  ASSERT_EQ(doc.nets.size(), 1u);
  EXPECT_EQ(doc.nets[0].first, "a");
  EXPECT_EQ(doc.nets[0].second.tc, 7);
}

TEST(Saif, MalformedInputThrows) {
  EXPECT_THROW(parse_saif_string("(NOTSAIF)"), ParseError);
  EXPECT_THROW(parse_saif_string("(SAIFILE (DURATION abc))"), ParseError);
  EXPECT_THROW(parse_saif_string("(SAIFILE"), ParseError);
}

TEST(Saif, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/test.saif";
  write_saif_file(sample_doc(), path);
  const SaifDocument back = parse_saif_file(path);
  EXPECT_EQ(back.nets.size(), 3u);
}

TEST(Saif, MissingFileThrows) {
  EXPECT_THROW(parse_saif_file("/nonexistent/x.saif"), ParseError);
}

}  // namespace
}  // namespace deepseq
