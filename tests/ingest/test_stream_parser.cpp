// Chunk-boundary correctness and new-vs-legacy parser parity: the
// streaming frontend must produce Circuits that are bit-identical (same
// node ids, same serialized bytes, same hashes) to the legacy
// parse_verilog on every design, at every chunk size and thread count.

#include "ingest/stream_parser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "dataset/test_designs.hpp"
#include "netlist/structural_hash.hpp"
#include "netlist/verilog_io.hpp"
#include "runtime/thread_pool.hpp"

namespace deepseq::ingest {
namespace {

IngestOptions opts(std::size_t chunk, int threads) {
  IngestOptions o;
  o.chunk_bytes = chunk;
  o.threads = threads;
  return o;
}

/// Every Circuit comparison in this suite: identical creation-order ids
/// (exact_hash), identical structure (structural_hash) and identical
/// serialized bytes.
void expect_identical(const Circuit& a, const Circuit& b,
                      const std::string& label) {
  EXPECT_EQ(exact_hash(a), exact_hash(b)) << label;
  EXPECT_EQ(structural_hash(a).to_string(), structural_hash(b).to_string())
      << label;
  EXPECT_EQ(write_verilog_string(a), write_verilog_string(b)) << label;
}

/// The designs the repo already tests on: all six Table IV designs (at
/// test scale) plus the embedded reference netlists and one generic-gate
/// generator circuit.
std::vector<Circuit> testdata_designs() {
  std::vector<Circuit> designs;
  for (TestDesign& d : build_all_test_designs(1.0 / 16.0, 7))
    designs.push_back(std::move(d.netlist));
  designs.push_back(iscas89_s27());
  designs.push_back(counter4());
  Rng rng(55);
  GeneratorSpec spec;
  spec.num_gates = 300;
  designs.push_back(generate_circuit(spec, rng));
  return designs;
}

std::string temp_file(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(StreamParser, ChunkSweepIsByteIdenticalToLegacyOnAllTestdataDesigns) {
  const std::size_t chunks[] = {7, 64, 4096, std::size_t(1) << 30};
  int i = 0;
  for (const Circuit& design : testdata_designs()) {
    const std::string text = write_verilog_string(design);
    const Circuit legacy = parse_verilog_string(text);
    const std::string label = "design " + std::to_string(i++);
    for (const std::size_t chunk : chunks) {
      StreamStats stats;
      auto modules = parse_verilog_modules_string(text, opts(chunk, 1), &stats);
      ASSERT_EQ(modules.size(), 1u) << label;  // DFF companion skipped
      expect_identical(legacy, modules[0].circuit,
                       label + " chunk " + std::to_string(chunk));
      EXPECT_EQ(stats.file_bytes, text.size());
      EXPECT_LE(stats.peak_carry_bytes, stats.max_token_bytes);
    }
  }
}

TEST(StreamParser, ThreadSweepIsByteIdenticalAndOrdered) {
  // One multi-module stream; every thread count must return the same
  // circuits in source order.
  std::string text;
  std::vector<Circuit> sources;
  Rng rng(11);
  for (int m = 0; m < 12; ++m) {
    GeneratorSpec spec;
    spec.name = "mod" + std::to_string(m);
    spec.num_gates = 120 + 40 * m;
    sources.push_back(generate_circuit(spec, rng));
    text += write_verilog_string(sources.back());  // each brings a DFF companion
  }
  const auto reference =
      parse_verilog_modules_string(text, opts(1 << 16, 1), nullptr);
  ASSERT_EQ(reference.size(), sources.size());
  for (const int threads : {1, 2, 4}) {
    for (const std::size_t chunk : {std::size_t(64), std::size_t(1) << 16}) {
      auto modules = parse_verilog_modules_string(text, opts(chunk, threads));
      ASSERT_EQ(modules.size(), reference.size());
      for (std::size_t k = 0; k < modules.size(); ++k) {
        EXPECT_EQ(modules[k].circuit.name(), sources[k].name());
        expect_identical(reference[k].circuit, modules[k].circuit,
                         "module " + std::to_string(k) + " threads " +
                             std::to_string(threads));
      }
    }
  }
}

TEST(StreamParser, ExternalPoolIsEquivalent) {
  Rng rng(3);
  GeneratorSpec spec;
  spec.num_gates = 200;
  const std::string text = write_verilog_string(generate_circuit(spec, rng));
  runtime::ThreadPool pool(3);
  IngestOptions with_pool = opts(128, 1);
  with_pool.pool = &pool;
  auto a = parse_verilog_modules_string(text, with_pool);
  auto b = parse_verilog_modules_string(text, opts(128, 1));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  expect_identical(a[0].circuit, b[0].circuit, "external pool");
}

TEST(StreamParser, FileEntryPointMatchesStringEntryPoint) {
  const Circuit design = counter4();
  const std::string text = write_verilog_string(design);
  const std::string path = temp_file("stream_parser_file.v", text);
  for (const std::size_t chunk : {std::size_t(7), std::size_t(1) << 20}) {
    StreamStats stats;
    auto modules = parse_verilog_modules_file(path, opts(chunk, 2), &stats);
    ASSERT_EQ(modules.size(), 1u);
    expect_identical(parse_verilog_string(text), modules[0].circuit, "file");
    EXPECT_EQ(stats.file_bytes, text.size());
    EXPECT_EQ(stats.chunk_bytes, chunk);
    // mmap chunks are zero-copy views; the fallback buffer is one chunk.
    EXPECT_LE(stats.reader_buffer_bytes, chunk);
  }
}

TEST(StreamParser, LegacyFileEntryPointIsStreamingAndIdentical) {
  // netlist::parse_verilog_file routes through the chunked reader but
  // must behave exactly like the legacy first-module parse.
  const Circuit design = iscas89_s27();
  const std::string text = write_verilog_string(design);
  const std::string path = temp_file("legacy_file_route.v", text);
  expect_identical(parse_verilog_string(text, "legacy_file_route"),
                   parse_verilog_file(path), "parse_verilog_file");
}

TEST(StreamParser, SrcBytesCoverModuleSpans) {
  const std::string text =
      "  module a; endmodule\n\nmodule b; endmodule  // tail\n";
  auto modules = parse_verilog_modules_string(text, opts(8, 1));
  ASSERT_EQ(modules.size(), 2u);
  EXPECT_EQ(modules[0].src_bytes, std::string("module a; endmodule").size());
  EXPECT_EQ(modules[1].src_bytes, std::string("module b; endmodule").size());
}

TEST(StreamParser, BehavioralModulesAreSkippedOrRejected) {
  const std::string text =
      "module good (a, y); input a; output y; buf g (y, a); endmodule\n"
      "\nmodule DFF (Q, D, CK);\n  output reg Q;\n  input D, CK;\n"
      "  initial Q = 1'b0;\n  always @(posedge CK) Q <= D;\nendmodule\n";
  StreamStats stats;
  auto modules = parse_verilog_modules_string(text, opts(16, 1), &stats);
  ASSERT_EQ(modules.size(), 1u);
  EXPECT_EQ(modules[0].circuit.name(), "good");
  EXPECT_EQ(stats.modules_skipped, 1u);

  IngestOptions strict = opts(16, 1);
  strict.skip_behavioral = false;
  EXPECT_THROW(parse_verilog_modules_string(text, strict), ParseError);
}

TEST(StreamParser, MalformedInputsFailFast) {
  // Truncated module: the parser's own missing-endmodule diagnosis, same
  // as the legacy path, at every chunk size and thread count.
  const std::string truncated = "module m (a);\n  input a;\n  wire w;\n";
  std::string legacy_what;
  try {
    parse_verilog_string(truncated);
    FAIL();
  } catch (const ParseError& e) {
    legacy_what = e.what();
  }
  for (const std::size_t chunk : {std::size_t(7), std::size_t(1) << 20}) {
    for (const int threads : {1, 2}) {
      try {
        parse_verilog_modules_string(truncated, opts(chunk, threads));
        FAIL() << "chunk " << chunk;
      } catch (const ParseError& e) {
        EXPECT_EQ(legacy_what, std::string(e.what()));
      }
    }
  }

  // Token split at EOF inside a comment: unterminated, fail-fast.
  EXPECT_THROW(
      parse_verilog_modules_string("module m; endmodule /* trailing",
                                   opts(7, 1)),
      ParseError);

  // Garbage between modules is not silently ignored in corpus mode.
  try {
    parse_verilog_modules_string("module a; endmodule stray tokens",
                                 opts(64, 1));
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("expected 'module'"),
              std::string::npos);
  }

  // A parse error inside an early module surfaces even when later modules
  // are fine and workers run in parallel.
  const std::string mixed =
      "module bad; nonsense g (x, y); endmodule\n"
      "module ok (a, y); input a; output y; buf g (y, a); endmodule\n";
  EXPECT_THROW(parse_verilog_modules_string(mixed, opts(64, 4)), ParseError);

  EXPECT_THROW(parse_verilog_modules_file("/nonexistent/path.v", opts(64, 1)),
               ParseError);
}

TEST(StreamParser, NoSlurpContract) {
  // A file many times the chunk size: the frontend's owned buffers stay
  // bounded by max-token + chunk, never the file. This is the CI gate of
  // the acceptance criteria (structural, core-count independent).
  Rng rng(17);
  GeneratorSpec spec;
  spec.num_gates = 4000;
  spec.num_ffs = 200;
  const std::string text = write_verilog_string(generate_circuit(spec, rng));
  const std::size_t chunk = 4096;
  ASSERT_GT(text.size(), 32 * chunk);
  const std::string path = temp_file("no_slurp.v", text);
  for (const int threads : {1, 4}) {
    StreamStats stats;
    auto modules = parse_verilog_modules_file(path, opts(chunk, threads), &stats);
    ASSERT_EQ(modules.size(), 1u);
    EXPECT_LE(stats.peak_carry_bytes, stats.max_token_bytes + chunk);
    EXPECT_LE(stats.peak_carry_bytes, stats.max_token_bytes);  // tighter
    EXPECT_LT(stats.max_token_bytes, 64u);  // identifiers, not the file
    EXPECT_LE(stats.reader_buffer_bytes, chunk);
    EXPECT_EQ(stats.file_bytes, text.size());
  }
}

TEST(StreamParser, OptionResolutionIsStrict) {
  EXPECT_GT(IngestOptions{}.resolved_chunk_bytes(), 0u);
  EXPECT_EQ(opts(123, 1).resolved_chunk_bytes(), 123u);
  EXPECT_EQ(opts(0, 5).resolved_threads(), 5);
}

}  // namespace
}  // namespace deepseq::ingest
