#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq {

/// One lexical token of the supported Verilog netlist subset: an
/// identifier, a sized constant (1'b0 style) or a single punctuation
/// character, with the 1-based source line it started on. Produced by the
/// legacy whole-text tokenizer below and by the chunked streaming lexer in
/// ingest/ — both feed the same token-level parser, so the two frontends
/// are bit-identical by construction.
struct VerilogToken {
  std::string text;
  int line = 0;
};

/// Character classes of the token grammar, shared verbatim by the legacy
/// tokenizer and the chunked ingest lexer so the two can never drift.
inline bool verilog_ident_start(char ch) {
  return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch == '_';
}
inline bool verilog_ident_char(char ch) {
  return verilog_ident_start(ch) || (ch >= '0' && ch <= '9') || ch == '$';
}

/// Parse a gate-level structural Verilog module (the netlist subset emitted
/// by synthesis tools and by write_verilog below):
///
///   module top (a, b, clk, y);
///     input a, b, clk;
///     output y;
///     wire w1, w2;
///     and  g1 (w1, a, b);        // primitives: and or nand nor xor xnor
///     not  g2 (w2, w1);          //             not buf (instance name
///     DFF  r1 (.Q(q), .D(w2));   //             optional)
///     assign y = s ? w2 : q;     // ternary = MUX, ~x = NOT, 1'b0/1 consts
///   endmodule
///
/// Supported: scalar nets only; n-ary and/or/nand/nor (expanded to 2-input
/// trees); DFF instances positional (Q, D [, CK]) or by named ports
/// (case-insensitive Q/D/CK/CLK); assigns of a net, ~net, constant or
/// ternary. Inputs used only as DFF clocks are dropped (they carry no logic
/// value). Escaped identifiers and vectors/buses are rejected.
Circuit parse_verilog(std::istream& in, std::string fallback_name = "top");
Circuit parse_verilog_string(const std::string& text,
                             std::string fallback_name = "top");

/// Parse a file. Routed through the chunked streaming reader in ingest/ —
/// the file is never slurped into one string — but parses exactly the
/// first module, like the istream entry point, and node ids / names /
/// errors are identical to it. The istream/string entry points above
/// remain as in-memory compatibility shims.
Circuit parse_verilog_file(const std::string& path);

/// Token-level parse entry point shared by the legacy tokenizer and the
/// streaming ingest frontend: run the parser over an already-lexed token
/// stream covering exactly one `module ... endmodule`.
Circuit parse_verilog_tokens(std::vector<VerilogToken> tokens,
                             std::string fallback_name = "top");

/// Tokenize a whole in-memory text (the legacy single-shot lexer). Kept as
/// the reference implementation the chunked ingest lexer is pinned against
/// in tests.
std::vector<VerilogToken> tokenize_verilog(const std::string& text);

/// Serialize any Circuit (all 12 gate types) as a structural Verilog module
/// named after the circuit. FFs become instances of an appended behavioral
/// `DFF` module clocked by an added `clk` input; MUXes become ternary
/// assigns; node names are sanitized into unique Verilog identifiers.
void write_verilog(const Circuit& c, std::ostream& out);
std::string write_verilog_string(const Circuit& c);
void write_verilog_file(const Circuit& c, const std::string& path);

/// Just the structural module for `c`, without the behavioral `DFF`
/// companion module write_verilog appends for sequential circuits. Corpus
/// files concatenate many modules and want a single shared companion —
/// write_dff_companion emits it (verbatim what write_verilog appends).
void write_verilog_module(const Circuit& c, std::ostream& out);
void write_dff_companion(std::ostream& out);

}  // namespace deepseq
