#include "netlist/verilog_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "ingest/stream_parser.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/expand.hpp"

namespace deepseq {

namespace {

// ---- tokenizer -------------------------------------------------------------

using Token = VerilogToken;

bool is_ident_start(char ch) { return verilog_ident_start(ch); }
bool is_ident_char(char ch) { return verilog_ident_char(ch); }

}  // namespace

/// Splits the text into identifiers, sized constants (1'b0 style) and
/// single-character punctuation; strips // and /* */ comments.
std::vector<VerilogToken> tokenize_verilog(const std::string& text) {
  std::vector<VerilogToken> out;
  int line = 1;
  std::size_t i = 0;
  while (i < text.size()) {
    const char ch = text[i];
    if (ch == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }
    if (ch == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (ch == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= text.size()) throw ParseError("unterminated comment", line);
      i += 2;
      continue;
    }
    if (is_ident_start(ch)) {
      std::size_t j = i + 1;
      while (j < text.size() && is_ident_char(text[j])) ++j;
      out.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      // Sized constant such as 1'b0 / 1'b1 (the only numbers we accept).
      std::size_t j = i;
      while (j < text.size() &&
             (is_ident_char(text[j]) || text[j] == '\''))
        ++j;
      out.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (ch == '\\')
      throw ParseError("escaped identifiers are not supported", line);
    if (ch == '[')
      throw ParseError("vector/bus ports are not supported", line);
    out.push_back({std::string(1, ch), line});
    ++i;
  }
  return out;
}

namespace {

// ---- parser ----------------------------------------------------------------

/// A gate or DFF instantiation captured during the first pass; fanins are
/// patched once every driven net is known (nets may be used before their
/// driver appears, e.g. DFF feedback).
struct Instance {
  GateType type = GateType::kConst0;
  NodeId id = kNullNode;  // kNullNode: n-ary gate expanded after pass 1
  std::string lhs;
  std::vector<std::string> fanin_names;
  int line = 0;
};

/// One operand of an assign: a net name, possibly complemented, or a
/// constant (net empty, const_value 0/1).
struct Operand {
  std::string net;
  bool complemented = false;
  int const_value = -1;
};

/// Right-hand side of an assign: one operand, or a ternary (MUX).
struct AssignRhs {
  bool is_ternary = false;
  Operand sel, a, b;  // a = then-branch, b = else-branch
};

struct AssignStmt {
  std::string lhs;
  AssignRhs rhs;
  int line = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string fallback_name)
      : toks_(std::move(tokens)), fallback_(std::move(fallback_name)) {}

  Circuit run() {
    expect_keyword("module");
    module_name_ = take_ident("module name");
    // The port list only orders names; directions come from declarations.
    if (peek("(")) {
      take("(");
      if (!peek(")")) {
        port_order_.push_back(take_ident("port"));
        while (peek(",")) {
          take(",");
          port_order_.push_back(take_ident("port"));
        }
      }
      take(")");
    }
    take(";");
    while (!peek_keyword("endmodule")) statement();
    take("endmodule");
    return build();
  }

 private:
  // ---- token helpers -------------------------------------------------------

  [[noreturn]] void fail(const std::string& msg) const {
    const int line = pos_ < toks_.size() ? toks_[pos_].line : 0;
    throw ParseError(msg, line);
  }
  bool at_end() const { return pos_ >= toks_.size(); }
  bool peek(std::string_view text) const {
    return !at_end() && toks_[pos_].text == text;
  }
  bool peek_keyword(std::string_view kw) const {
    return !at_end() && to_lower(toks_[pos_].text) == kw;
  }
  Token take(std::string_view expected) {
    if (!peek(expected)) fail("expected '" + std::string(expected) + "'");
    return toks_[pos_++];
  }
  void expect_keyword(std::string_view kw) {
    if (!peek_keyword(kw)) fail("expected '" + std::string(kw) + "'");
    ++pos_;
  }
  std::string take_ident(const std::string& what) {
    if (at_end() || !is_ident_start(toks_[pos_].text[0]))
      fail("expected " + what);
    return toks_[pos_++].text;
  }

  // ---- grammar -------------------------------------------------------------

  void statement() {
    if (at_end()) fail("unexpected end of file (missing endmodule?)");
    const std::string kw = to_lower(toks_[pos_].text);
    if (kw == "input" || kw == "output" || kw == "wire" || kw == "reg") {
      declaration(kw);
      return;
    }
    if (kw == "assign") {
      ++pos_;
      assign_statement();
      return;
    }
    if (kw == "dff") {
      ++pos_;
      dff_instance();
      return;
    }
    static const std::unordered_map<std::string, GateType> kPrimitives = {
        {"and", GateType::kAnd},   {"or", GateType::kOr},
        {"nand", GateType::kNand}, {"nor", GateType::kNor},
        {"xor", GateType::kXor},   {"xnor", GateType::kXnor},
        {"not", GateType::kNot},   {"buf", GateType::kBuf}};
    const auto it = kPrimitives.find(kw);
    if (it == kPrimitives.end())
      fail("unsupported statement or module '" + toks_[pos_].text + "'");
    ++pos_;
    gate_instance(it->second);
  }

  void declaration(const std::string& kind) {
    ++pos_;
    if (peek_keyword("reg")) ++pos_;  // "output reg q"
    do {
      const std::string name = take_ident("net name");
      if (kind == "input") inputs_.push_back(name);
      if (kind == "output") outputs_.push_back(name);
      // wire/reg declarations carry no structure of their own.
    } while (peek(",") && (take(","), true));
    take(";");
  }

  void gate_instance(GateType type) {
    Instance inst;
    inst.type = type;
    inst.line = toks_[pos_ - 1].line;
    if (!peek("(")) take_ident("instance name");  // optional, ignored
    take("(");
    inst.lhs = take_ident("output net");
    while (peek(",")) {
      take(",");
      inst.fanin_names.push_back(take_ident("input net"));
    }
    take(")");
    take(";");
    const int arity = gate_arity(type);
    const bool nary_ok = type == GateType::kAnd || type == GateType::kOr ||
                         type == GateType::kNand || type == GateType::kNor;
    const int n = static_cast<int>(inst.fanin_names.size());
    if (n != arity && !(nary_ok && n > 2))
      fail("wrong fanin count for primitive " +
           std::string(gate_type_name(type)));
    instances_.push_back(std::move(inst));
  }

  void dff_instance() {
    Instance inst;
    inst.type = GateType::kFf;
    inst.line = toks_[pos_ - 1].line;
    if (!peek("(")) take_ident("instance name");
    take("(");
    std::string q, d, ck;
    if (peek(".")) {
      // Named ports: .Q(net), .D(net), optional .CK/.CLK(net).
      while (peek(".")) {
        take(".");
        const std::string port = to_lower(take_ident("port name"));
        take("(");
        const std::string net = take_ident("net");
        take(")");
        if (port == "q") q = net;
        else if (port == "d") d = net;
        else if (port == "ck" || port == "clk") ck = net;
        else fail("unknown DFF port ." + port);
        if (peek(",")) take(",");
      }
    } else {
      q = take_ident("Q net");
      take(",");
      d = take_ident("D net");
      if (peek(",")) {
        take(",");
        ck = take_ident("clock net");
      }
    }
    take(")");
    take(";");
    if (q.empty() || d.empty()) fail("DFF requires Q and D connections");
    if (!ck.empty()) clock_nets_.insert(ck);
    inst.lhs = q;
    inst.fanin_names.push_back(d);
    instances_.push_back(std::move(inst));
  }

  Operand operand() {
    Operand op;
    if (peek("~")) {
      take("~");
      op.complemented = true;
    }
    if (at_end()) fail("expected operand");
    const std::string& t = toks_[pos_].text;
    if (t == "1'b0" || t == "1'B0") {
      op.const_value = op.complemented ? 1 : 0;
      op.complemented = false;
      ++pos_;
    } else if (t == "1'b1" || t == "1'B1") {
      op.const_value = op.complemented ? 0 : 1;
      op.complemented = false;
      ++pos_;
    } else {
      op.net = take_ident("operand net");
    }
    return op;
  }

  void assign_statement() {
    AssignStmt st;
    st.line = toks_[pos_ - 1].line;
    st.lhs = take_ident("assign target");
    take("=");
    st.rhs.a = operand();
    if (peek("?")) {
      take("?");
      st.rhs.is_ternary = true;
      st.rhs.sel = st.rhs.a;
      st.rhs.a = operand();
      take(":");
      st.rhs.b = operand();
    }
    take(";");
    assigns_.push_back(std::move(st));
  }

  // ---- construction --------------------------------------------------------

  Circuit build() {
    Circuit c(module_name_.empty() ? fallback_ : module_name_);

    // Inputs referenced only as DFF clocks carry no logic value.
    std::unordered_set<std::string> data_nets;
    for (const Instance& inst : instances_)
      for (const auto& f : inst.fanin_names) data_nets.insert(f);
    for (const AssignStmt& st : assigns_)
      for (const Operand* op : {&st.rhs.sel, &st.rhs.a, &st.rhs.b})
        if (!op->net.empty()) data_nets.insert(op->net);

    std::unordered_map<std::string, NodeId> by_name;
    auto define = [&](const std::string& name, NodeId id, int line) {
      if (!by_name.emplace(name, id).second)
        throw ParseError("net driven twice: " + name, line);
    };

    for (const std::string& in : inputs_) {
      if (clock_nets_.count(in) != 0 && data_nets.count(in) == 0) continue;
      define(in, c.add_pi(in), 0);
    }

    // Pass 1: create nodes for fixed-arity instances and assign targets.
    for (Instance& inst : instances_) {
      if (inst.type == GateType::kFf) {
        inst.id = c.add_ff(kNullNode, inst.lhs);
      } else if (static_cast<int>(inst.fanin_names.size()) ==
                 gate_arity(inst.type)) {
        inst.id = c.add_gate(
            inst.type,
            std::vector<NodeId>(inst.fanin_names.size(), kNullNode),
            inst.lhs);
      }
      if (inst.id != kNullNode) define(inst.lhs, inst.id, inst.line);
    }

    NodeId const0 = kNullNode;
    auto get_const = [&](int value, int line) -> NodeId {
      if (const0 == kNullNode) const0 = c.add_const0("const0");
      if (value == 0) return const0;
      auto it = by_name.find("const1");
      if (it != by_name.end()) return it->second;
      const NodeId n1 = c.add_not(const0, "const1");
      define("const1", n1, line);
      return n1;
    };

    auto resolve = [&](const std::string& name, int line) -> NodeId {
      const auto it = by_name.find(name);
      if (it == by_name.end())
        throw ParseError("undriven net: " + name, line);
      return it->second;
    };
    auto resolve_op = [&](const Operand& op, int line) -> NodeId {
      if (op.const_value >= 0) return get_const(op.const_value, line);
      const NodeId base = resolve(op.net, line);
      return op.complemented ? c.add_not(base) : base;
    };

    // Assign targets may feed instances parsed earlier, so define them all
    // before patching fanins. Ternaries/complements also create nodes here.
    for (const AssignStmt& st : assigns_) {
      NodeId id;
      if (st.rhs.is_ternary) {
        id = c.add_gate(GateType::kMux,
                        {kNullNode, kNullNode, kNullNode}, st.lhs);
        mux_fixups_.push_back({id, st});
      } else if (st.rhs.a.const_value >= 0) {
        id = get_const(st.rhs.a.const_value, st.line);
        by_name.emplace(st.lhs, id);  // alias, duplicates allowed
        continue;
      } else if (st.rhs.a.complemented) {
        id = c.add_gate(GateType::kNot, {kNullNode}, st.lhs);
        not_fixups_.push_back({id, st});
      } else {
        id = c.add_gate(GateType::kBuf, {kNullNode}, st.lhs);
        buf_fixups_.push_back({id, st});
      }
      define(st.lhs, id, st.line);
    }

    // N-ary expansions. An n-ary gate may feed another n-ary gate declared
    // earlier in the file, so expand to a fixpoint: every round, expand the
    // gates whose leaves are all driven. Progress is guaranteed because
    // combinational cycles are invalid (feedback must pass through FFs,
    // which are already defined).
    std::vector<const Instance*> todo;
    for (const Instance& inst : instances_)
      if (inst.id == kNullNode) todo.push_back(&inst);
    while (!todo.empty()) {
      std::vector<const Instance*> stuck;
      for (const Instance* inst : todo) {
        bool ready = true;
        for (const auto& f : inst->fanin_names)
          if (by_name.find(f) == by_name.end()) ready = false;
        if (!ready) {
          stuck.push_back(inst);
          continue;
        }
        std::vector<NodeId> leaves;
        for (const auto& f : inst->fanin_names)
          leaves.push_back(resolve(f, inst->line));
        define(inst->lhs,
               build_gate_tree(c, inst->type, std::move(leaves), inst->lhs),
               inst->line);
      }
      if (stuck.size() == todo.size())
        throw ParseError("undriven net: " + stuck.front()->fanin_names.front(),
                         stuck.front()->line);
      todo = std::move(stuck);
    }

    // Pass 2: patch fanins.
    for (const Instance& inst : instances_) {
      if (inst.id == kNullNode) continue;
      for (std::size_t i = 0; i < inst.fanin_names.size(); ++i)
        c.set_fanin(inst.id, static_cast<int>(i),
                    resolve(inst.fanin_names[i], inst.line));
    }
    for (const auto& [id, st] : mux_fixups_) {
      c.set_fanin(id, 0, resolve_op(st.rhs.sel, st.line));
      c.set_fanin(id, 1, resolve_op(st.rhs.a, st.line));
      c.set_fanin(id, 2, resolve_op(st.rhs.b, st.line));
    }
    for (const auto& [id, st] : not_fixups_)
      c.set_fanin(id, 0, resolve(st.rhs.a.net, st.line));
    for (const auto& [id, st] : buf_fixups_)
      c.set_fanin(id, 0, resolve(st.rhs.a.net, st.line));

    for (const std::string& out : outputs_) c.add_po(resolve(out, 0), out);

    c.validate();
    return c;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::string fallback_;
  std::string module_name_;
  std::vector<std::string> port_order_;
  std::vector<std::string> inputs_, outputs_;
  std::unordered_set<std::string> clock_nets_;
  std::vector<Instance> instances_;
  std::vector<AssignStmt> assigns_;
  std::vector<std::pair<NodeId, AssignStmt>> mux_fixups_, not_fixups_,
      buf_fixups_;
};

// ---- writer ----------------------------------------------------------------

/// Make node names valid, collision-free Verilog identifiers.
std::vector<std::string> verilog_names(const Circuit& c) {
  std::vector<std::string> names = unique_node_names(c);
  std::unordered_set<std::string> used;
  for (auto& n : names) {
    std::string s;
    s.reserve(n.size());
    for (char ch : n)
      s.push_back(is_ident_char(ch) && ch != '$' ? ch : '_');
    if (s.empty() || !is_ident_start(s[0])) s.insert(0, "n_");
    std::string candidate = s;
    for (int k = 2; !used.insert(candidate).second; ++k)
      candidate = s + "_" + std::to_string(k);
    n = candidate;
  }
  return names;
}

const char* primitive_name(GateType t) {
  switch (t) {
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kNot: return "not";
    case GateType::kBuf: return "buf";
    default: return nullptr;
  }
}

}  // namespace

Circuit parse_verilog(std::istream& in, std::string fallback_name) {
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Parser(tokenize_verilog(text), std::move(fallback_name)).run();
}

Circuit parse_verilog_string(const std::string& text,
                             std::string fallback_name) {
  return Parser(tokenize_verilog(text), std::move(fallback_name)).run();
}

Circuit parse_verilog_tokens(std::vector<VerilogToken> tokens,
                             std::string fallback_name) {
  return Parser(std::move(tokens), std::move(fallback_name)).run();
}

Circuit parse_verilog_file(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = (slash == std::string::npos) ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return ingest::parse_verilog_file_first_module(path, std::move(base));
}

void write_verilog_module(const Circuit& c, std::ostream& out) {
  const std::vector<std::string> names = verilog_names(c);
  const bool has_ffs = !c.ffs().empty();
  // The added clock port must not collide with a net name.
  std::string clk = "clk";
  for (bool collides = true; collides;) {
    collides = false;
    for (const auto& n : names)
      if (n == clk) {
        clk += "_g";
        collides = true;
        break;
      }
  }
  std::string module = c.name().empty() ? "top" : c.name();
  for (char& ch : module)
    if (!is_ident_char(ch) || ch == '$') ch = '_';
  if (!is_ident_start(module[0])) module.insert(0, "m_");

  // Ports: inputs, clk (when sequential), one output per PO. PO port names
  // must not collide with net names, so they get a po_ prefix when needed.
  std::vector<std::string> po_ports;
  for (std::size_t k = 0; k < c.pos().size(); ++k) {
    std::string p = c.po_name(k).empty() ? "po" + std::to_string(k)
                                         : c.po_name(k);
    std::string s;
    for (char ch : p) s.push_back(is_ident_char(ch) && ch != '$' ? ch : '_');
    if (s.empty() || !is_ident_start(s[0])) s.insert(0, "po_");
    po_ports.push_back("po_" + s);
  }

  out << "// generated by deepseq write_verilog\n";
  out << "module " << module << " (";
  bool first = true;
  auto port = [&](const std::string& p) {
    out << (first ? "" : ", ") << p;
    first = false;
  };
  for (NodeId pi : c.pis()) port(names[pi]);
  if (has_ffs) port(clk);
  for (const auto& p : po_ports) port(p);
  out << ");\n";

  for (NodeId pi : c.pis()) out << "  input " << names[pi] << ";\n";
  if (has_ffs) out << "  input " << clk << ";\n";
  for (const auto& p : po_ports) out << "  output " << p << ";\n";
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    if (c.type(v) != GateType::kPi) out << "  wire " << names[v] << ";\n";

  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    const Node& n = c.node(v);
    switch (n.type) {
      case GateType::kPi:
        break;
      case GateType::kConst0:
        out << "  assign " << names[v] << " = 1'b0;\n";
        break;
      case GateType::kFf:
        out << "  DFF ff_" << v << " (.Q(" << names[v] << "), .D("
            << names[n.fanin[0]] << "), .CK(" << clk << "));\n";
        break;
      case GateType::kMux:
        out << "  assign " << names[v] << " = " << names[n.fanin[0]] << " ? "
            << names[n.fanin[1]] << " : " << names[n.fanin[2]] << ";\n";
        break;
      default: {
        const char* prim = primitive_name(n.type);
        out << "  " << prim << " g_" << v << " (" << names[v];
        for (int i = 0; i < n.num_fanins; ++i)
          out << ", " << names[n.fanin[i]];
        out << ");\n";
      }
    }
  }
  for (std::size_t k = 0; k < c.pos().size(); ++k)
    out << "  assign " << po_ports[k] << " = " << names[c.pos()[k]] << ";\n";
  out << "endmodule\n";
}

void write_dff_companion(std::ostream& out) {
  out << "\nmodule DFF (Q, D, CK);\n"
         "  output reg Q;\n"
         "  input D, CK;\n"
         "  initial Q = 1'b0;\n"
         "  always @(posedge CK) Q <= D;\n"
         "endmodule\n";
}

void write_verilog(const Circuit& c, std::ostream& out) {
  write_verilog_module(c, out);
  if (!c.ffs().empty()) write_dff_companion(out);
}

std::string write_verilog_string(const Circuit& c) {
  std::ostringstream out;
  write_verilog(c, out);
  return out.str();
}

void write_verilog_file(const Circuit& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_verilog(c, out);
}

}  // namespace deepseq
