#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/aiger_io.hpp"
#include "support/equivalence.hpp"

namespace deepseq {
namespace {

Circuit random_aig(std::uint64_t seed, int gates = 120) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 5;
  spec.num_gates = gates;
  return decompose_to_aig(generate_circuit(spec, rng)).aig;
}

TEST(AigerBinary, HeaderCountsAreCanonical) {
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  std::ostringstream out;
  write_aiger_binary(aig, out);
  const std::string text = out.str();
  std::istringstream header(text.substr(0, text.find('\n')));
  std::string tag;
  std::uint64_t m = 0, i = 0, l = 0, o = 0, a = 0;
  header >> tag >> m >> i >> l >> o >> a;
  EXPECT_EQ(tag, "aig");
  EXPECT_EQ(m, i + l + a);  // binary format requires contiguous variables
  EXPECT_EQ(i, aig.pis().size());
  EXPECT_EQ(l, aig.ffs().size());
  EXPECT_EQ(o, aig.pos().size());
}

TEST(AigerBinary, RoundTripS27) {
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  std::stringstream buf;
  write_aiger_binary(aig, buf);
  const Circuit back = parse_aiger_binary(buf);
  EXPECT_EQ(back.pis().size(), aig.pis().size());
  EXPECT_EQ(back.ffs().size(), aig.ffs().size());
  testing::expect_po_equivalent(aig, back, 200, 41);
}

class AigerBinaryRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AigerBinaryRandom, RoundTripPreservesBehaviour) {
  const Circuit aig = random_aig(GetParam());
  std::stringstream buf;
  write_aiger_binary(aig, buf);
  const Circuit back = parse_aiger_binary(buf);
  testing::expect_po_equivalent(aig, back, 128, GetParam() + 7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerBinaryRandom,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

TEST(AigerBinary, BinaryAndAsciiDescribeTheSameCircuit) {
  const Circuit aig = random_aig(61);
  std::stringstream bin, txt;
  write_aiger_binary(aig, bin);
  write_aiger(aig, txt);
  const Circuit from_bin = parse_aiger_binary(bin);
  const Circuit from_txt = parse_aiger(txt);
  EXPECT_EQ(from_bin.pis().size(), from_txt.pis().size());
  EXPECT_EQ(from_bin.ffs().size(), from_txt.ffs().size());
  testing::expect_po_equivalent(from_bin, from_txt, 128, 62);
}

TEST(AigerBinary, BinaryIsSmallerThanAscii) {
  const Circuit aig = random_aig(63, 400);
  std::ostringstream bin, txt;
  write_aiger_binary(aig, bin);
  write_aiger(aig, txt);
  EXPECT_LT(bin.str().size(), txt.str().size());
}

TEST(AigerBinary, SymbolTableSurvives) {
  Circuit c("named");
  const NodeId a = c.add_pi("alpha");
  const NodeId b = c.add_pi("beta");
  const NodeId g = c.add_and(a, b, "gate");
  c.add_po(g, "out");
  std::stringstream buf;
  write_aiger_binary(c, buf);
  const Circuit back = parse_aiger_binary(buf);
  EXPECT_EQ(back.node_name(back.pis()[0]), "alpha");
  EXPECT_EQ(back.node_name(back.pis()[1]), "beta");
  EXPECT_EQ(back.po_name(0), "out");
}

TEST(AigerBinary, ConstantFanins) {
  Circuit c("consts");
  const NodeId zero = c.add_const0("z");
  const NodeId a = c.add_pi("a");
  const NodeId one = c.add_not(zero, "one");
  const NodeId g = c.add_and(a, one, "g");
  c.add_po(g, "y");
  c.add_po(zero, "y0");
  std::stringstream buf;
  write_aiger_binary(c, buf);
  const Circuit back = parse_aiger_binary(buf);
  SequentialSimulator sim(back);
  sim.step({~0ULL});
  EXPECT_EQ(sim.value(back.pos()[0]) & 1ULL, 1ULL);  // a & 1 = a
  EXPECT_EQ(sim.value(back.pos()[1]) & 1ULL, 0ULL);  // const 0
}

TEST(AigerBinary, FileRoundTrip) {
  const Circuit aig = random_aig(64);
  const std::string path = ::testing::TempDir() + "/deepseq_rt.aig";
  write_aiger_binary_file(aig, path);
  const Circuit back = parse_aiger_binary_file(path);
  deepseq::testing::expect_po_equivalent(aig, back, 64, 65);
}

TEST(AigerBinary, RejectsGenericGates) {
  const Circuit c = counter4();  // contains XOR/MUX gates
  std::ostringstream out;
  EXPECT_THROW(write_aiger_binary(c, out), CircuitError);
}

TEST(AigerBinary, RejectsTruncatedAndSection) {
  const Circuit aig = random_aig(66);
  std::ostringstream out;
  write_aiger_binary(aig, out);
  std::string text = out.str();
  // Find the end of the last ASCII line before the AND section and cut the
  // binary payload short.
  text.resize(text.size() / 2);
  std::istringstream in(text);
  EXPECT_THROW(parse_aiger_binary(in), ParseError);
}

TEST(AigerBinary, RejectsBadHeader) {
  std::istringstream in("aag 3 1 1 1 1\n");
  EXPECT_THROW(parse_aiger_binary(in), ParseError);
  std::istringstream in2("aig 9 1 1 1 1\n");  // M != I+L+A
  EXPECT_THROW(parse_aiger_binary(in2), ParseError);
}

}  // namespace
}  // namespace deepseq
