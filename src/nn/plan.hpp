#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/op.hpp"

namespace deepseq::nn {

/// One slice of an op's kernel: a row range for row-parallel kernels
/// (matmul, gather, elementwise, ...), a column range for the segment
/// reductions (whose output rows are scatter targets but whose columns are
/// independent). Chunks of a wave write disjoint output regions, so they can
/// run on different threads with bit-identical results: every output element
/// is produced by exactly one chunk using the same inner-loop order as the
/// sequential kernel. Non-splittable kernels (segment_softmax, the scalar
/// losses) are emitted as a single full-range chunk.
///
/// `role` selects the kernel: kRoleForward for the forward pass; backward
/// waves (built by Executor::run_backward) use kRolePrep / kRoleAll /
/// part indices >= 0 (one part per gradient target of the op).
struct Chunk {
  Op* op = nullptr;
  int begin = 0;
  int end = 0;
  int role = -1;
};

inline constexpr int kRoleForward = -1;
/// Backward: allocate the op's input gradients (runs alone, before parts).
inline constexpr int kRolePrep = -2;
/// Backward: prep + every part at full range, sequentially (single-chunk ops
/// and aliased operands, which must keep the sequential scatter order).
inline constexpr int kRoleAll = -3;

/// A wave of mutually independent chunks: no chunk's op consumes another
/// same-wave op's output, so the executor may run them in any order or
/// concurrently. Chunks are stored flat in the owning Plan; a Wave is the
/// [first, first + count) view plus the wave's summed scalar-op estimate
/// (used only to decide whether dispatching to the pool beats inline).
struct Wave {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::uint64_t work = 0;
};

/// Estimated scalar operations of one op's forward kernel. Drives chunk
/// sizing and the inline/parallel decision only — never affects results.
std::uint64_t op_work(const Op& op);

/// Extent of the op's parallel axis (output rows, or columns for the
/// segment reductions); 0 when the kernel must run as one chunk.
int op_parallel_extent(const Op& op);

/// Minimum estimated work per additional chunk: kernels below this run as a
/// single chunk, and one chunk is added per multiple of it (capped by the
/// executor's thread count). Deterministic in the op alone, so a given
/// (batch, thread-count) pair always produces the same chunk boundaries.
inline constexpr std::uint64_t kSplitWork = 8192;

/// The shared splitting rule (forward planning and backward parts): chunks
/// for a kernel of `work` estimated scalar ops over `extent` rows.
int chunk_count(std::uint64_t work, int extent, int threads);

/// The plan layer: a wave-ordered chunk schedule. build() topologically
/// levels a flushed batch of recorded ops into waves of independent ops and
/// splits large row-parallel kernels into row-range chunks sized for
/// `threads` workers; Executor::run_backward assembles backward plans
/// through the same container (one or two waves per taped op).
class Plan {
 public:
  static Plan build(const std::vector<std::shared_ptr<Op>>& ops, int threads);

  bool empty() const { return chunks_.empty(); }
  const std::vector<Wave>& waves() const { return waves_; }
  const Chunk* chunks() const { return chunks_.data(); }

  std::uint64_t total_work() const;
  std::uint32_t max_wave_chunks() const;

  // ---- assembly (build() and the backward planner) -------------------------
  void reserve(std::size_t waves, std::size_t chunks);
  Wave& add_wave() {
    waves_.push_back(Wave{static_cast<std::uint32_t>(chunks_.size()), 0, 0});
    return waves_.back();
  }
  void add_chunk(const Chunk& c) {
    chunks_.push_back(c);
    ++waves_.back().count;
  }

 private:
  std::vector<Chunk> chunks_;
  std::vector<Wave> waves_;
};

}  // namespace deepseq::nn
