#include "nn/gradcheck.hpp"

#include <cmath>

namespace deepseq::nn {

GradCheckResult grad_check(const std::function<Var(Graph&)>& forward,
                           const std::vector<std::pair<std::string, Var>>& params,
                           float eps, int max_entries_per_param) {
  GradCheckResult res;

  // Analytic gradients.
  for (const auto& [name, p] : params) {
    (void)name;
    if (p->has_grad()) p->grad.zero();
  }
  {
    Graph g(true);
    Var loss = forward(g);
    g.backward(loss);
  }
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const auto& [name, p] : params) {
    (void)name;
    analytic.push_back(p->has_grad() ? p->grad : Tensor(p->value.rows(), p->value.cols()));
  }

  auto eval_loss = [&]() -> double {
    Graph g(false);
    return forward(g)->value.at(0, 0);
  };

  for (std::size_t k = 0; k < params.size(); ++k) {
    Var p = params[k].second;
    const int n = static_cast<int>(p->value.size());
    const int stride = std::max(1, n / max_entries_per_param);
    for (int i = 0; i < n; i += stride) {
      const float saved = p->value.data()[i];
      p->value.data()[i] = saved + eps;
      const double up = eval_loss();
      p->value.data()[i] = saved - eps;
      const double down = eval_loss();
      p->value.data()[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double exact = analytic[k].data()[i];
      const double denom = std::max({std::fabs(numeric), std::fabs(exact), 1e-4});
      const double rel = std::fabs(numeric - exact) / denom;
      ++res.checked_entries;
      if (rel > res.max_rel_error) {
        res.max_rel_error = rel;
        res.worst_param = params[k].first + "[" + std::to_string(i) + "]";
      }
    }
  }
  return res;
}

}  // namespace deepseq::nn
