#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"

namespace deepseq {
namespace {

TEST(BenchIo, ParsesS27Structure) {
  const Circuit c = iscas89_s27();
  EXPECT_EQ(c.pis().size(), 4u);
  EXPECT_EQ(c.ffs().size(), 3u);
  EXPECT_EQ(c.pos().size(), 1u);
  EXPECT_EQ(c.num_nodes(), 17u);  // 4 PI + 3 FF + 10 gates
}

TEST(BenchIo, ForwardReferenceThroughFf) {
  // G5 = DFF(G10) appears before G10 is defined.
  const Circuit c = parse_bench_string(
      "INPUT(a)\nOUTPUT(o)\nq = DFF(g)\ng = AND(a, q)\no = NOT(g)\n");
  EXPECT_EQ(c.ffs().size(), 1u);
  const NodeId q = c.find_by_name("q");
  const NodeId g = c.find_by_name("g");
  EXPECT_EQ(c.fanin(q, 0), g);
}

TEST(BenchIo, CommentsAndBlankLines) {
  const Circuit c = parse_bench_string(
      "# a comment\n\nINPUT(a)\n  # indented comment\nOUTPUT(b)\nb = NOT(a)\n");
  EXPECT_EQ(c.num_nodes(), 2u);
}

TEST(BenchIo, CaseInsensitiveKeywords) {
  const Circuit c = parse_bench_string(
      "input(a)\noutput(b)\nb = not(a)\n");
  EXPECT_EQ(c.pis().size(), 1u);
  EXPECT_EQ(c.type(c.find_by_name("b")), GateType::kNot);
}

TEST(BenchIo, NaryAndExpandsToTree) {
  const Circuit c = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n");
  // 4 PIs + 3 AND gates in a balanced tree.
  const auto counts = c.type_counts();
  EXPECT_EQ(counts[static_cast<int>(GateType::kAnd)], 3u);
  EXPECT_EQ(c.pos().size(), 1u);
}

TEST(BenchIo, NaryNorGetsInverter) {
  const Circuit c = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NOR(a, b, c)\n");
  const NodeId y = c.pos()[0];
  EXPECT_EQ(c.type(y), GateType::kNot);  // NOR(a,b,c) = NOT(OR-tree)
}

TEST(BenchIo, MuxParses) {
  const Circuit c = parse_bench_string(
      "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(s, a, b)\n");
  EXPECT_EQ(c.type(c.pos()[0]), GateType::kMux);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST(BenchIo, UndefinedSignalThrows) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
      ParseError);
}

TEST(BenchIo, RedefinedSignalThrows) {
  EXPECT_THROW(parse_bench_string(
                   "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n"),
               ParseError);
}

TEST(BenchIo, WrongFaninCountThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = XOR(a)\n"),
               ParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = DFF(a, a)\n"),
               ParseError);
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Circuit c = iscas89_s27();
  const Circuit c2 = parse_bench_string(write_bench_string(c), "s27rt");
  EXPECT_EQ(c2.num_nodes(), c.num_nodes());
  EXPECT_EQ(c2.pis().size(), c.pis().size());
  EXPECT_EQ(c2.ffs().size(), c.ffs().size());
  EXPECT_EQ(c2.pos().size(), c.pos().size());
  EXPECT_EQ(c2.type_counts(), c.type_counts());
}

TEST(BenchIo, UniqueNodeNamesAreUnique) {
  Circuit c;
  c.add_pi("x");
  c.add_pi("x");  // duplicate user names
  const NodeId a = c.add_and(0, 1);
  c.add_po(a, "o");
  const auto names = unique_node_names(c);
  EXPECT_NE(names[0], names[1]);
  EXPECT_FALSE(names[2].empty());
}

TEST(BenchIo, FileRoundTrip) {
  const Circuit c = iscas89_s27();
  const std::string path = ::testing::TempDir() + "/s27.bench";
  write_bench_file(c, path);
  const Circuit c2 = parse_bench_file(path);
  EXPECT_EQ(c2.num_nodes(), c.num_nodes());
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/file.bench"), ParseError);
}

}  // namespace
}  // namespace deepseq
