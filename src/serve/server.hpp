#pragma once

// The ingress layer: a TCP front end over the ShardRouter. One blocking
// accept loop plus one reader thread per connection (the protocol is
// length-prefixed, so a reader just splits frames and dispatches); task
// responses are written back by shard workers under a per-connection write
// lock, so many in-flight requests from one connection complete out of
// order — the request id pairs them up client-side.
//
// Endpoints:
//   kTaskRequest   -> kTaskResponse | kErrorResponse (typed: bad request,
//                     overload-queue-full, overload-deadline, shutting-down,
//                     internal)
//   kReloadRequest -> coordinated reload_weights across every shard; the
//                     artifact is resolved "name@hash" against the server's
//                     artifact::Store directory (DEEPSEQ_ARTIFACT_DIR or
//                     ServeConfig::artifact_dir)
//   kStatsRequest  -> one JSON document: per-kind serving counters, per-
//                     shard admission/cache stats — the health endpoint.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/router.hpp"

namespace deepseq::artifact {
class Store;
}

namespace deepseq::serve {

struct ServeConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// Server::port()).
  std::uint16_t port = 0;
  RouterConfig router;
  /// Directory the reload endpoint resolves "name@hash" refs against.
  /// Empty resolves DEEPSEQ_ARTIFACT_DIR (strict fail-fast at construction
  /// when set); empty both ways leaves reloads rejected with kBadRequest.
  std::string artifact_dir;
};

class Server {
 public:
  /// Binds + listens + starts the accept loop. Throws Error when the port
  /// cannot be bound or the artifact directory fails validation.
  explicit Server(const ServeConfig& config);
  /// stop() + joins everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the chosen one when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, shut every connection and shard queue down, join all
  /// threads. In-flight admitted tasks finish and their responses are
  /// written before the connection closes; queued-but-unserved tasks get
  /// typed kShuttingDown errors. Idempotent.
  void stop();

  /// Refresh the reload endpoint's view of the artifact directory (picks
  /// up files dropped since construction). Strict: throws on any invalid
  /// artifact file, keeping the previous view.
  void rescan_artifacts();

  /// The health/stats document served by kStatsRequest.
  std::string stats_json() const;

  ShardRouter& router() { return *router_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> open{true};
  };

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const FrameParser::Frame& frame);
  void send_frame(const std::shared_ptr<Connection>& conn, MsgType type,
                  const std::string& payload);
  void send_error(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id, ErrorCode code,
                  const std::string& detail);

  ServeConfig config_;
  std::unique_ptr<ShardRouter> router_;
  std::shared_ptr<const artifact::Store> store_;  // swapped by rescan
  mutable std::mutex store_mu_;
  /// Serializes reload pushes so two concurrent name@hash pushes cannot
  /// interleave their per-shard swaps.
  std::mutex reload_mu_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;

  mutable std::mutex conns_mu_;
  std::list<std::shared_ptr<Connection>> conns_;
};

}  // namespace deepseq::serve
