#include "api/registry.hpp"

#include <utility>

#include "api/backends.hpp"
#include "api/ensemble.hpp"
#include "artifact/artifact.hpp"
#include "common/env.hpp"
#include "common/error.hpp"

namespace deepseq::api {

void BackendRegistry::register_backend(const std::string& name,
                                       Factory factory) {
  if (name.empty()) throw Error("BackendRegistry: empty backend name");
  std::lock_guard<std::mutex> lock(mu_);
  if (!factories_.emplace(name, std::move(factory)).second)
    throw Error("BackendRegistry: backend '" + name + "' already registered");
}

bool BackendRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::string BackendRegistry::unknown_message(const std::string& name) const {
  std::string msg = "unknown backend '" + name + "'; registered:";
  for (const auto& [known, factory] : factories_) msg += " " + known;
  return msg;
}

std::unique_ptr<EmbeddingBackend> BackendRegistry::create(
    const std::string& name, const BackendOptions& options) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) throw Error(unknown_message(name));
    factory = it->second;
  }
  auto backend = factory(options);
  if (!backend)
    throw Error("BackendRegistry: factory for '" + name + "' returned null");
  return backend;
}

std::string BackendRegistry::resolve(const std::string& requested,
                                     const std::string& fallback) const {
  const std::string& name = requested.empty() ? fallback : requested;
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.find(name) == factories_.end())
    throw Error(unknown_message(name));
  return name;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->register_backend("deepseq", [](const BackendOptions& o) {
      return o.artifact ? std::make_unique<DeepSeqBackend>(*o.artifact)
                        : std::make_unique<DeepSeqBackend>(o.model);
    });
    r->register_backend("pace", [](const BackendOptions& o) {
      return o.artifact ? std::make_unique<PaceBackend>(*o.artifact)
                        : std::make_unique<PaceBackend>(o.pace);
    });
    r->register_backend("ensemble", [](const BackendOptions& o) {
      auto base = o.artifact ? std::make_unique<DeepSeqBackend>(*o.artifact)
                             : std::make_unique<DeepSeqBackend>(o.model);
      return std::make_unique<EnsembleBackend>(std::move(base), o.ensemble_k);
    });
    return r;
  }();
  return *registry;
}

std::string backend_from_env(const BackendRegistry& registry,
                             const std::string& fallback) {
  return registry.resolve(env_string("DEEPSEQ_BACKEND", ""), fallback);
}

std::shared_ptr<const artifact::Artifact> artifact_from_env() {
  const std::string path = env_string("DEEPSEQ_ARTIFACT", "");
  if (path.empty()) return nullptr;
  try {
    return std::make_shared<const artifact::Artifact>(
        artifact::load_artifact(path));
  } catch (const Error& e) {
    throw Error(std::string("DEEPSEQ_ARTIFACT: ") + e.what());
  }
}

BackendOptions options_from_env(BackendOptions base) {
  if (auto a = artifact_from_env()) base.artifact = std::move(a);
  return base;
}

}  // namespace deepseq::api
