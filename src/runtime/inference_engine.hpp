#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "nn/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/circuit_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace deepseq::runtime {

/// One embedding query: a strict sequential AIG, the workload defining its
/// PI behaviour, the backend to encode with (non-owning — the caller keeps
/// the instance alive until the request is fulfilled; api::Session does so
/// by capturing an owning handle in its submit_then completion, which is
/// what lets it hot-swap backends under reload_weights without touching
/// in-flight work), and the init seed that makes the forward pass
/// reproducible (paper convention: non-PI states are seeded randomly per
/// sample).
struct EmbeddingRequest {
  std::shared_ptr<const Circuit> circuit;
  Workload workload;
  const api::EmbeddingBackend* backend = nullptr;
  std::uint64_t init_seed = 1;
  /// Compute the N x hidden forward pass (disable for tasks that only need
  /// the prepared structure, e.g. reliability / testability readouts).
  bool want_embedding = true;
  /// Resolve + return the backend structure state even when the embedding
  /// is served from cache (tasks that read the structure set this).
  bool want_state = false;
  /// Observability identity (task id / kind / backend fingerprint) the
  /// request's spans and failure counters are attributed to. api::Session
  /// fills it in submit()/run_sync(); a default (null-kind) context marks
  /// an untraced engine-level request — no spans, no task counters.
  obs::TaskContext trace;
};

/// The fulfilled side of a request. `embedding` is the N x hidden final
/// node-state matrix h_v^T — bit-identical to what a direct
/// single-threaded call to the backend's embed() produces for the same
/// inputs. `state` is the backend's prepared structure when the request
/// asked for it (want_state, or any computed forward pass).
struct EmbeddingResult {
  std::shared_ptr<const nn::Tensor> embedding;
  std::shared_ptr<const api::BackendState> state;
  StructuralHash structure;
  /// The full embedding-layer cache key of this request: task heads reuse it
  /// to cache their own derived outputs (InferenceEngine::regress_cached).
  EmbeddingKey key;
  const api::EmbeddingBackend* backend = nullptr;
  bool structure_cache_hit = false;
  bool embedding_cache_hit = false;
  double queue_ms = 0.0;    // submit -> start of compute
  double compute_ms = 0.0;  // structure resolve + forward (0 on cache hit)
  double total_ms = 0.0;    // submit -> fulfillment
  /// The request's observability identity, passed through so task heads
  /// (api::Session::finish) record their spans under the same task id.
  obs::TaskContext trace;
};

struct EngineConfig {
  /// Worker threads; <= 0 uses hardware concurrency.
  int threads = 4;
  /// Intra-circuit parallelism: threads the nn executor may use for one
  /// forward pass, drawn from the SAME worker pool (no second pool). 0
  /// resolves DEEPSEQ_NN_THREADS (default: the pool size); 1 keeps every
  /// forward pass sequential on its worker.
  int nn_threads = 0;
  /// Coalescing window: a partial batch is dispatched once it reaches this
  /// many requests...
  int max_batch = 8;
  /// ...or once the oldest pending request has waited this long.
  double flush_interval_ms = 2.0;
  CircuitCacheConfig cache;
  /// Disable to force a full forward pass per request (reference /
  /// cold-path measurement); the structure layer stays active.
  bool cache_embeddings = true;
};

/// Multi-threaded batched scheduler over pluggable api::EmbeddingBackend
/// implementations. The engine owns no models: every request names the
/// backend that serves it, and cache entries are keyed by the backend's
/// deterministic fingerprint — the public serving surface is api::Session.
///
/// submit() never blocks on inference: requests accumulate in a pending
/// window and are coalesced into batches (grouped by circuit identity so a
/// batch's structure work — the backend's prepare() — happens once per
/// distinct circuit), then fan out across the worker pool. Results arrive
/// through futures with per-request latency breakdowns; submit_then()
/// additionally runs a caller-supplied completion (e.g. a task head) on the
/// worker thread. All public methods are thread-safe.
class InferenceEngine {
 public:
  explicit InferenceEngine(const EngineConfig& config);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  const EngineConfig& config() const { return config_; }

  /// Enqueue a request; the future is fulfilled by a worker thread (or
  /// carries the exception the forward pass threw, e.g. on a workload/PI
  /// size mismatch).
  std::future<EmbeddingResult> submit(EmbeddingRequest request) {
    return submit_then(std::move(request),
                       [](EmbeddingResult&& r) { return std::move(r); });
  }

  /// Enqueue a request plus a completion that maps the EmbeddingResult to
  /// the caller's result type on the worker thread (the api layer's task
  /// heads). Exceptions from the forward pass or the completion both land
  /// in the returned future.
  template <typename F>
  auto submit_then(EmbeddingRequest request, F post)
      -> std::future<std::invoke_result_t<F&, EmbeddingResult&&>> {
    using R = std::invoke_result_t<F&, EmbeddingResult&&>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    auto pending = std::make_unique<Pending>();
    // For failure accounting: the completion (a task head) may throw after
    // the forward pass succeeded — count that against the task's kind too.
    const char* kind = request.trace.kind;
    pending->request = std::move(request);
    pending->deliver = [promise, post = std::move(post),
                        kind](EmbeddingResult&& result) mutable {
      try {
        promise->set_value(post(std::move(result)));
      } catch (...) {
        obs::count_task_failed(kind);
        promise->set_exception(std::current_exception());
      }
    };
    pending->fail = [promise](std::exception_ptr e) {
      promise->set_exception(std::move(e));
    };
    enqueue(std::move(pending));
    return future;
  }

  /// Dispatch the current partial batch immediately.
  void flush();

  /// flush() + block until every dispatched request has been fulfilled.
  void drain();

  /// Reference path: compute one request synchronously on the calling
  /// thread through the same cache. Batched and sync results for identical
  /// inputs are bit-identical.
  EmbeddingResult run_sync(const EmbeddingRequest& request);

  /// Regression-head outputs for an embedding, cached beside the embedding
  /// under the same EmbeddingKey: warm multi-task probability/power traffic
  /// skips the two-head MLP forward. Falls through to a direct (uncached)
  /// regress when embedding caching is disabled. Runs on the engine's nn
  /// executor either way.
  std::shared_ptr<const api::Regression> regress_cached(
      const EmbeddingKey& key, const api::EmbeddingBackend& backend,
      const nn::Tensor& embedding, bool* cache_hit = nullptr);

  CircuitCache::Stats cache_stats() const { return cache_.stats(); }
  int num_threads() const { return pool_.num_threads(); }
  /// Intra-circuit executor threads (the resolved nn_threads knob).
  int nn_threads() const { return nn_exec_.threads(); }

 private:
  struct Pending {
    EmbeddingRequest request;
    std::chrono::steady_clock::time_point enqueued;
    std::function<void(EmbeddingResult&&)> deliver;
    std::function<void(std::exception_ptr)> fail;
  };

  /// Both circuit digests, computed once per coalesced group so the warm
  /// path does not re-hash per request.
  struct CircuitHashes {
    StructuralHash structural;
    std::uint64_t exact = 0;
  };

  void enqueue(std::unique_ptr<Pending> pending);
  void flusher_loop();
  void dispatch_batch(std::vector<std::unique_ptr<Pending>> batch);
  EmbeddingResult process(const EmbeddingRequest& request,
                          std::chrono::steady_clock::time_point enqueued,
                          const CircuitHashes& hashes);
  std::shared_ptr<const api::BackendState> resolve_structure(
      const api::EmbeddingBackend& backend, const Circuit& circuit,
      const StructureKey& key, bool* hit);

  EngineConfig config_;
  CircuitCache cache_;
  ThreadPool pool_;
  /// The intra-circuit executor, sharing pool_ (declared after it, so
  /// helpers never outlive their pool).
  nn::Executor nn_exec_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::vector<std::unique_ptr<Pending>> pending_;
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace deepseq::runtime
