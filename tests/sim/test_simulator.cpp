#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

/// Naive scalar reference simulator: evaluates one lane with bools in
/// recursive topological order. Used to cross-check the word-parallel
/// engine bit by bit.
class ReferenceSim {
 public:
  explicit ReferenceSim(const Circuit& c)
      : c_(c), order_(comb_topo_order(c)), val_(c.num_nodes(), false) {}

  void step(const std::vector<bool>& pi) {
    for (std::size_t k = 0; k < c_.pis().size(); ++k) val_[c_.pis()[k]] = pi[k];
    for (NodeId v : order_) {
      const Node& n = c_.node(v);
      if (n.type == GateType::kPi || n.type == GateType::kFf ||
          n.type == GateType::kConst0)
        continue;
      const bool a = val_[n.fanin[0]];
      const bool b = n.num_fanins > 1 ? val_[n.fanin[1]] : false;
      const bool s = n.num_fanins > 2 ? val_[n.fanin[2]] : false;
      // eval_gate expects MUX as (then, else, select); fanins are
      // (select, then, else).
      val_[v] = n.type == GateType::kMux ? eval_gate(n.type, b, s, a)
                                         : eval_gate(n.type, a, b);
    }
  }

  void clock() {
    std::vector<bool> next(c_.ffs().size());
    for (std::size_t k = 0; k < c_.ffs().size(); ++k)
      next[k] = val_[c_.fanin(c_.ffs()[k], 0)];
    for (std::size_t k = 0; k < c_.ffs().size(); ++k) val_[c_.ffs()[k]] = next[k];
  }

  bool value(NodeId v) const { return val_[v]; }

 private:
  const Circuit& c_;
  std::vector<NodeId> order_;
  std::vector<bool> val_;
};

TEST(Simulator, MatchesReferenceOnS27) {
  const Circuit c = iscas89_s27();
  SequentialSimulator fast(c);
  ReferenceSim slow(c);
  Rng rng(2024);
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::vector<std::uint64_t> pi_words(c.pis().size());
    std::vector<bool> pi_bits(c.pis().size());
    for (std::size_t k = 0; k < pi_words.size(); ++k) {
      pi_words[k] = rng.next_u64();
      pi_bits[k] = pi_words[k] & 1ULL;  // lane 0
    }
    fast.step(pi_words);
    slow.step(pi_bits);
    for (NodeId v = 0; v < c.num_nodes(); ++v)
      ASSERT_EQ(fast.value(v) & 1ULL, slow.value(v) ? 1ULL : 0ULL)
          << "cycle " << cycle << " node " << v;
    fast.clock();
    slow.clock();
  }
}

TEST(Simulator, MatchesReferenceOnGenericGates) {
  // Exercise every gate type including MUX through both engines.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId s = c.add_pi("s");
  const NodeId x1 = c.add_gate(GateType::kXor, {a, b}, "x1");
  const NodeId m = c.add_gate(GateType::kMux, {s, x1, b}, "m");
  const NodeId ff = c.add_ff(m, "q");
  const NodeId o = c.add_gate(GateType::kNor, {ff, x1}, "o");
  c.add_po(o, "out");
  c.validate();

  SequentialSimulator fast(c);
  ReferenceSim slow(c);
  Rng rng(5);
  for (int cycle = 0; cycle < 200; ++cycle) {
    std::vector<std::uint64_t> pw(3);
    std::vector<bool> pb(3);
    for (int k = 0; k < 3; ++k) {
      pw[k] = rng.next_u64();
      pb[k] = pw[k] & 1ULL;
    }
    fast.step(pw);
    slow.step(pb);
    for (NodeId v = 0; v < c.num_nodes(); ++v)
      ASSERT_EQ(fast.value(v) & 1ULL, slow.value(v) ? 1ULL : 0ULL);
    fast.clock();
    slow.clock();
  }
}

TEST(Simulator, FfsStartAtZeroAndLatchOnClock) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId ff = c.add_ff(a, "q");
  c.add_po(ff, "o");
  SequentialSimulator sim(c);
  sim.step({~0ULL});
  EXPECT_EQ(sim.value(ff), 0u);  // not latched yet
  sim.clock();
  sim.step({0ULL});
  EXPECT_EQ(sim.value(ff), ~0ULL);  // previous cycle's input
}

TEST(Simulator, FfChainShiftsNotRipples) {
  // q2 <- q1 <- a: after one clock q1 = a(0), q2 must still be 0.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId q1 = c.add_ff(a, "q1");
  const NodeId q2 = c.add_ff(q1, "q2");
  c.add_po(q2, "o");
  SequentialSimulator sim(c);
  sim.step({~0ULL});
  sim.clock();
  EXPECT_EQ(sim.value(q1), ~0ULL);
  EXPECT_EQ(sim.value(q2), 0u);
  sim.step({~0ULL});
  sim.clock();
  EXPECT_EQ(sim.value(q2), ~0ULL);
}

TEST(Simulator, WrongPiCountThrows) {
  const Circuit c = iscas89_s27();
  SequentialSimulator sim(c);
  EXPECT_THROW(sim.step({1, 2}), Error);
}

TEST(Activity, PiStatisticsMatchWorkload) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.1, 0.5, 0.9, 0.3};
  w.pattern_seed = 99;
  ActivityOptions opt;
  opt.num_cycles = 5000;
  const NodeActivity act = collect_activity(c, w, opt);
  for (std::size_t k = 0; k < c.pis().size(); ++k) {
    const NodeId pi = c.pis()[k];
    const double p = w.pi_prob[k];
    EXPECT_NEAR(act.logic1[pi], p, 0.01) << "pi " << k;
    EXPECT_NEAR(act.tr01[pi], p * (1 - p), 0.01) << "pi " << k;
    EXPECT_NEAR(act.tr10[pi], p * (1 - p), 0.01) << "pi " << k;
  }
}

TEST(Activity, CounterTogglesAtClosedFormRates) {
  const Circuit c = counter4();
  Workload w;
  w.pi_prob = {1.0};  // always enabled
  w.pattern_seed = 1;
  ActivityOptions opt;
  opt.num_cycles = 4096;
  const NodeActivity act = collect_activity(c, w, opt);
  // Bit k toggles once every 2^k cycles.
  for (int k = 0; k < 4; ++k) {
    const NodeId q = c.pos()[k];
    EXPECT_NEAR(act.toggle_rate(q), std::pow(0.5, k), 0.02) << "bit " << k;
    EXPECT_NEAR(act.logic1[q], 0.5, 0.02) << "bit " << k;
  }
}

TEST(Activity, CounterHalfEnabledScalesRates) {
  const Circuit c = counter4();
  Workload w;
  w.pi_prob = {0.5};
  w.pattern_seed = 3;
  ActivityOptions opt;
  opt.num_cycles = 8192;
  const NodeActivity act = collect_activity(c, w, opt);
  EXPECT_NEAR(act.toggle_rate(c.pos()[0]), 0.5, 0.03);
  EXPECT_NEAR(act.toggle_rate(c.pos()[1]), 0.25, 0.03);
}

TEST(Activity, ProbabilitiesAreProbabilities) {
  const Circuit c = iscas89_s27();
  Rng rng(77);
  const Workload w = random_workload(c, rng);
  const NodeActivity act = collect_activity(c, w, {2000, 1});
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    EXPECT_GE(act.logic1[v], 0.0);
    EXPECT_LE(act.logic1[v], 1.0);
    EXPECT_GE(act.tr01[v], 0.0);
    EXPECT_LE(act.tr01[v] + act.tr10[v], 1.0);
  }
}

TEST(Activity, Tr01EqualsTr10InSteadyState) {
  // In a long stationary run, every node makes as many 0->1 as 1->0
  // transitions (they alternate), so the rates match closely.
  const Circuit c = iscas89_s27();
  Rng rng(31);
  const Workload w = random_workload(c, rng);
  const NodeActivity act = collect_activity(c, w, {10000, 1});
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    EXPECT_NEAR(act.tr01[v], act.tr10[v], 0.01) << "node " << v;
}

TEST(Activity, PinnedPiIsStatic) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.0, 1.0, 0.0, 1.0};
  w.pattern_seed = 5;
  const NodeActivity act = collect_activity(c, w, {1000, 1});
  for (std::size_t k = 0; k < c.pis().size(); ++k)
    EXPECT_EQ(act.toggle_count[c.pis()[k]], 0u);
  EXPECT_GT(act.static_fraction(), 0.5);
}

TEST(Activity, DeterministicForSameSeed) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.3, 0.6, 0.2, 0.8};
  w.pattern_seed = 11;
  const NodeActivity a1 = collect_activity(c, w, {500, 1});
  const NodeActivity a2 = collect_activity(c, w, {500, 1});
  EXPECT_EQ(a1.logic1, a2.logic1);
  EXPECT_EQ(a1.toggle_count, a2.toggle_count);
}

TEST(Activity, TooFewCyclesThrows) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(collect_activity(c, w, {1, 1}), Error);
}

TEST(Activity, WorkloadSizeMismatchThrows) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5};
  EXPECT_THROW(collect_activity(c, w, {100, 1}), Error);
}

}  // namespace
}  // namespace deepseq
