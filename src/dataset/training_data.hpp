#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sample.hpp"

namespace deepseq {

/// Options for assembling the pre-training corpus (paper §III / Table I):
/// benchmark-family circuits are synthesized, converted to optimized AIG,
/// and connected subcircuits are extracted; each subcircuit gets one random
/// workload whose 10,000-cycle simulation provides the supervision.
/// Defaults here are paper-faithful; benches scale them down via env knobs.
struct TrainingDataOptions {
  int num_subcircuits = 10534;
  int sim_cycles = 10000;
  std::uint64_t seed = 2024;
  /// Family mix, proportional to Table I (1159 : 1691 : 7684).
  double iscas89_fraction = 0.11;
  double itc99_fraction = 0.16;
  /// Scales every family's subcircuit-size range (1.0 = paper's 150-300).
  double size_scale = 1.0;
};

struct FamilyStats {
  std::string name;
  int count = 0;
  double node_mean = 0.0;
  double node_std = 0.0;
};

struct TrainingDataset {
  std::vector<TrainSample> samples;
  std::vector<FamilyStats> stats;  // per family, Table I layout
};

TrainingDataset build_training_dataset(const TrainingDataOptions& opt);

/// Deterministic train/validation split (shuffles a copy of the indexes).
void split_train_val(const std::vector<TrainSample>& all, double val_fraction,
                     std::uint64_t seed, std::vector<TrainSample>& train,
                     std::vector<TrainSample>& val);

}  // namespace deepseq
