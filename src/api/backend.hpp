#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"
#include "nn/tensor.hpp"
#include "sim/workload.hpp"

namespace deepseq::api {

/// Opaque per-circuit structure state produced by EmbeddingBackend::prepare
/// — whatever a backend derives from the netlist alone (levelized schedule,
/// ancestor sets, positional encodings, ...). The serving layer caches these
/// keyed by circuit identity + backend fingerprint, so concrete contents are
/// node-indexed against the exact circuit they were prepared from.
struct BackendState {
  virtual ~BackendState() = default;
};

/// Capability descriptor of one embedding backend. `fingerprint` is a
/// deterministic function of the backend's architecture + weights seed and
/// is the cache-key component that keeps entries of differently-configured
/// backends apart; two backends with equal fingerprints MUST produce
/// bit-identical outputs for equal inputs.
struct BackendInfo {
  std::string name;
  int hidden_dim = 0;
  std::uint64_t fingerprint = 0;
  /// Weight provenance: "seed" for architecture-default initialization, or
  /// "artifact:<hex content hash>" when the backend was built from (or
  /// hot-reloaded with) a model artifact — see BackendOptions::artifact and
  /// Session::reload_weights.
  std::string weights = "seed";
  /// Probability heads available: regress() works, so the logic-prob,
  /// transition-prob and power tasks can be served by this backend.
  bool supports_regress = false;
  /// reliability() works (model-only circuit reliability readout).
  bool supports_reliability = false;
  /// embed() runs through the nn record/plan/execute pipeline: a single
  /// forward pass scales across the engine's shared worker pool
  /// (DEEPSEQ_NN_THREADS / EngineConfig::nn_threads), bit-identical to the
  /// sequential path.
  bool threaded_embed = false;
};

/// Per-node probability heads over an embedding matrix.
struct Regression {
  nn::Tensor tr;  // N x 2 sigmoid outputs: P(0->1), P(1->0)
  nn::Tensor lg;  // N x 1 sigmoid output: P(node = 1)
};

/// Model-only reliability readout (mirrors ReliabilityModel::Estimate
/// without pulling the reliability headers into the interface).
struct ReliabilityEstimate {
  std::vector<double> node_reliability;
  double circuit_reliability = 1.0;
};

/// Abstract embedding backend: the unit of extensibility of the serving
/// surface. A backend turns a strict sequential AIG into per-node
/// embeddings in two phases — `prepare` derives the reusable structure
/// state (cached once per circuit), `embed` runs the deterministic forward
/// pass for one (workload, init_seed). Implementations must be const-safe
/// for concurrent calls: the engine invokes prepare/embed from many worker
/// threads at once.
class EmbeddingBackend {
 public:
  virtual ~EmbeddingBackend() = default;

  virtual const BackendInfo& info() const = 0;

  /// Derive this backend's structure state from a circuit. Expensive —
  /// callers (the inference engine) cache the result by circuit identity.
  virtual std::shared_ptr<const BackendState> prepare(
      const Circuit& aig) const = 0;

  /// Deterministic forward pass: N x hidden final node states. `state` must
  /// have been produced by this backend's prepare() for the same circuit.
  virtual nn::Tensor embed(const BackendState& state, const Workload& w,
                           std::uint64_t init_seed) const = 0;

  /// Run the probability heads over an embedding matrix this backend
  /// produced. Default: throws Error("... does not support regress") —
  /// check info().supports_regress.
  virtual Regression regress(const nn::Tensor& embedding) const;

  /// Model-only reliability estimate over the prepared structure (`pos` are
  /// the node ids reliability is read out at, normally the circuit's POs).
  /// Default: throws — check info().supports_reliability.
  virtual ReliabilityEstimate reliability(const BackendState& state,
                                          const Workload& w,
                                          const std::vector<NodeId>& pos,
                                          std::uint64_t init_seed) const;
};

}  // namespace deepseq::api
