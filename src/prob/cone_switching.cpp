#include "prob/cone_switching.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

namespace {

/// Lag-1 joint distribution of a stationary binary process, mirrored from
/// the base estimator (kept local: the two estimators must stay
/// independently readable).
struct Joint {
  double j[2][2] = {{1.0, 0.0}, {0.0, 0.0}};

  double p1() const { return j[1][0] + j[1][1]; }

  static Joint constant0() { return Joint{}; }

  static Joint bernoulli(double p) {
    Joint out;
    out.j[0][0] = (1.0 - p) * (1.0 - p);
    out.j[0][1] = (1.0 - p) * p;
    out.j[1][0] = p * (1.0 - p);
    out.j[1][1] = p * p;
    return out;
  }

  double max_abs_diff(const Joint& o) const {
    double m = 0.0;
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y)
        m = std::max(m, std::fabs(j[x][y] - o.j[x][y]));
    return m;
  }

  void normalize() {
    double sum = 0.0;
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y) {
        if (j[x][y] < 0.0) j[x][y] = 0.0;
        sum += j[x][y];
      }
    if (sum <= 0.0) {
      *this = constant0();
      return;
    }
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y) j[x][y] /= sum;
  }
};

bool gate_out(GateType t, int a, int b, int s) {
  // Circuit MUX fanin order is (select, then, else); eval_gate takes
  // (then, else, select).
  if (t == GateType::kMux) return eval_gate(t, b != 0, s != 0, a != 0);
  return eval_gate(t, a != 0, b != 0);
}

/// Independence propagation of one gate (the base method's rule).
Joint independent_joint(GateType t, const Joint* in, int arity) {
  Joint out;
  out.j[0][0] = out.j[0][1] = out.j[1][0] = out.j[1][1] = 0.0;
  const int combos = 1 << (2 * arity);
  for (int mask = 0; mask < combos; ++mask) {
    double prob = 1.0;
    int vt[3] = {0, 0, 0}, vt1[3] = {0, 0, 0};
    for (int i = 0; i < arity; ++i) {
      vt[i] = (mask >> (2 * i)) & 1;
      vt1[i] = (mask >> (2 * i + 1)) & 1;
      prob *= in[i].j[vt[i]][vt1[i]];
      if (prob == 0.0) break;
    }
    if (prob == 0.0) continue;
    const int x = gate_out(t, vt[0], vt[1], vt[2]) ? 1 : 0;
    const int y = gate_out(t, vt1[0], vt1[1], vt1[2]) ? 1 : 0;
    out.j[x][y] += prob;
  }
  out.normalize();
  return out;
}

/// Evaluate node v's logic value given fixed source values, memoized per
/// assignment with an epoch stamp (sources = PIs/FFs/CONST0).
class ConeEvaluator {
 public:
  explicit ConeEvaluator(const Circuit& c)
      : c_(c),
        value_(c.num_nodes(), 0),
        stamp_(c.num_nodes(), 0),
        source_value_(c.num_nodes(), 0) {}

  void begin_assignment() { ++epoch_; }
  void set_source(NodeId s, bool v) {
    source_value_[s] = v ? 1 : 0;
    stamp_[s] = epoch_;
    value_[s] = source_value_[s];
  }

  bool eval(NodeId v) {
    if (stamp_[v] == epoch_) return value_[v] != 0;
    const Node& n = c_.node(v);
    bool out = false;
    switch (n.type) {
      case GateType::kConst0:
        out = false;
        break;
      case GateType::kPi:
      case GateType::kFf:
        throw Error("ConeEvaluator: unassigned source in cone");
      default: {
        const bool a = eval(n.fanin[0]);
        const bool b = n.num_fanins > 1 ? eval(n.fanin[1]) : false;
        const bool s = n.num_fanins > 2 ? eval(n.fanin[2]) : false;
        out = gate_out(n.type, a ? 1 : 0, b ? 1 : 0, s ? 1 : 0);
      }
    }
    stamp_[v] = epoch_;
    value_[v] = out ? 1 : 0;
    return out;
  }

 private:
  const Circuit& c_;
  std::vector<std::uint8_t> value_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint8_t> source_value_;
  std::uint32_t epoch_ = 0;
};

/// Sorted source-support sets with a size cap; empty + wide flag when the
/// union exceeds the cap.
struct SupportTable {
  std::vector<std::vector<NodeId>> support;  // per node, sorted
  std::vector<bool> wide;                    // support exceeds the cap

  SupportTable(const Circuit& c, const Levelization& lv, int cap)
      : support(c.num_nodes()), wide(c.num_nodes(), false) {
    for (const auto& level : lv.by_level)
      for (NodeId v : level) {
        const GateType t = c.type(v);
        if (t == GateType::kPi || t == GateType::kFf) {
          support[v] = {v};
          continue;
        }
        if (t == GateType::kConst0) continue;  // empty support
        std::vector<NodeId> acc;
        bool w = false;
        for (int i = 0; i < c.num_fanins(v) && !w; ++i) {
          const NodeId f = c.fanin(v, i);
          if (wide[f]) {
            w = true;
            break;
          }
          std::vector<NodeId> merged;
          std::set_union(acc.begin(), acc.end(), support[f].begin(),
                         support[f].end(), std::back_inserter(merged));
          acc = std::move(merged);
          if (static_cast<int>(acc.size()) > cap) w = true;
        }
        if (w) {
          wide[v] = true;
        } else {
          support[v] = std::move(acc);
        }
      }
  }

  /// True when two fanins share support — independence is then wrong.
  bool reconvergent(const Circuit& c, NodeId v) const {
    for (int i = 0; i < c.num_fanins(v); ++i)
      for (int k = i + 1; k < c.num_fanins(v); ++k) {
        const auto& a = support[c.fanin(v, i)];
        const auto& b = support[c.fanin(v, k)];
        std::size_t ia = 0, ib = 0;
        while (ia < a.size() && ib < b.size()) {
          if (a[ia] == b[ib]) return true;
          if (a[ia] < b[ib]) ++ia;
          else ++ib;
        }
      }
    return false;
  }
};

}  // namespace

ConeSwitchingEstimate estimate_switching_cone(const Circuit& c,
                                              const Workload& w,
                                              const ConeSwitchingOptions& opt) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("estimate_switching_cone: workload PI count mismatch");
  if (opt.max_support < 1 || opt.max_support > 12)
    throw Error("estimate_switching_cone: max_support must be in [1, 12]");

  const Levelization lv = comb_levelize(c);
  const SupportTable st(c, lv, opt.max_support);
  ConeEvaluator cone(c);

  const std::size_t n = c.num_nodes();
  std::vector<Joint> joint(n);
  for (std::size_t k = 0; k < c.pis().size(); ++k)
    joint[c.pis()[k]] = Joint::bernoulli(w.pi_prob[k]);
  // FFs start at constant 0 (their reset state) and iterate to fixpoint.

  ConeSwitchingEstimate out;
  out.logic1.resize(n);
  out.tr01.resize(n);
  out.tr10.resize(n);

  // Which gates get the exact treatment (decided once; support is
  // structural). Exact iff narrow support AND reconvergent fanin supports.
  std::vector<bool> exact(n, false);
  for (const auto& level : lv.by_level)
    for (NodeId v : level) {
      const GateType t = c.type(v);
      if (t == GateType::kPi || t == GateType::kFf || t == GateType::kConst0)
        continue;
      if (!st.wide[v] && st.reconvergent(c, v)) {
        exact[v] = true;
        ++out.exact_nodes;
      } else if (st.wide[v]) {
        ++out.fallback_nodes;
      }
    }

  for (int iter = 0; iter < opt.base.max_iterations; ++iter) {
    // One combinational sweep with the current FF joints.
    for (std::size_t l = 1; l < lv.by_level.size(); ++l)
      for (NodeId v : lv.by_level[l]) {
        const Node& nd = c.node(v);
        if (!exact[v]) {
          Joint in[3];
          for (int i = 0; i < nd.num_fanins; ++i) in[i] = joint[nd.fanin[i]];
          joint[v] = independent_joint(nd.type, in, nd.num_fanins);
          continue;
        }
        // Exact enumeration of the cone's source processes over two
        // consecutive cycles.
        const auto& sup = st.support[v];
        const int m = static_cast<int>(sup.size());
        Joint acc;
        acc.j[0][0] = acc.j[0][1] = acc.j[1][0] = acc.j[1][1] = 0.0;
        const std::uint64_t combos = 1ULL << (2 * m);
        for (std::uint64_t mask = 0; mask < combos; ++mask) {
          double prob = 1.0;
          for (int i = 0; i < m && prob != 0.0; ++i) {
            const int xt = (mask >> (2 * i)) & 1;
            const int xt1 = (mask >> (2 * i + 1)) & 1;
            prob *= joint[sup[i]].j[xt][xt1];
          }
          if (prob == 0.0) continue;
          cone.begin_assignment();
          for (int i = 0; i < m; ++i)
            cone.set_source(sup[i], ((mask >> (2 * i)) & 1) != 0);
          const int x = cone.eval(v) ? 1 : 0;
          cone.begin_assignment();
          for (int i = 0; i < m; ++i)
            cone.set_source(sup[i], ((mask >> (2 * i + 1)) & 1) != 0);
          const int y = cone.eval(v) ? 1 : 0;
          acc.j[x][y] += prob;
        }
        acc.normalize();
        joint[v] = acc;
      }

    // FF update: an FF's process is its D input's process one cycle later;
    // damped like the base method.
    double delta = 0.0;
    for (NodeId ff : c.ffs()) {
      const Joint target = joint[c.fanin(ff, 0)];
      Joint next;
      for (int x = 0; x < 2; ++x)
        for (int y = 0; y < 2; ++y)
          next.j[x][y] = opt.base.damping * target.j[x][y] +
                         (1.0 - opt.base.damping) * joint[ff].j[x][y];
      next.normalize();
      delta = std::max(delta, next.max_abs_diff(joint[ff]));
      joint[ff] = next;
    }
    out.iterations_used = iter + 1;
    if (delta < opt.base.tolerance) break;
  }

  for (NodeId v = 0; v < n; ++v) {
    out.logic1[v] = joint[v].p1();
    out.tr01[v] = joint[v].j[0][1];
    out.tr10[v] = joint[v].j[1][0];
  }
  return out;
}

}  // namespace deepseq
