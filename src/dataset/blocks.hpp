#pragma once

#include <vector>

#include "common/rng.hpp"
#include "netlist/circuit.hpp"

namespace deepseq::blocks {

/// Structural generators for realistic design blocks. All append gates into
/// an existing Circuit and return the block's output nodes. They are the
/// building material of the six named test designs of Table IV (counters,
/// FIFOs/shift registers, FSMs, datapath slices, arbiters — the contents of
/// a NoC router, a PLL divider chain, a PWM/timer core, an RTC, an audio
/// controller and a memory controller, at netlist granularity).

/// `bits`-bit synchronous up-counter with enable; returns the state bits.
std::vector<NodeId> counter(Circuit& c, int bits, NodeId enable,
                            const std::string& prefix);

/// Shift register of `depth` stages with enable (a FIFO data lane).
std::vector<NodeId> shift_register(Circuit& c, NodeId in, int depth,
                                   NodeId enable, const std::string& prefix);

/// Fibonacci LFSR (pseudo-random source / scrambler); returns state bits.
std::vector<NodeId> lfsr(Circuit& c, int bits, const std::string& prefix);

/// Balanced mux tree selecting one of `data` by `sel` (LSB first).
/// data.size() must be 2^sel.size().
NodeId mux_tree(Circuit& c, const std::vector<NodeId>& data,
                const std::vector<NodeId>& sel, const std::string& prefix);

/// Ripple-carry adder; returns sum bits (carry-out last).
std::vector<NodeId> ripple_adder(Circuit& c, const std::vector<NodeId>& a,
                                 const std::vector<NodeId>& b,
                                 const std::string& prefix);

/// XOR-reduction parity of `in`.
NodeId parity(Circuit& c, const std::vector<NodeId>& in,
              const std::string& prefix);

/// Equality comparator a == b.
NodeId equal(Circuit& c, const std::vector<NodeId>& a,
             const std::vector<NodeId>& b, const std::string& prefix);

/// Moore FSM with `state_bits` registers and random next-state logic driven
/// by `inputs`; returns the state bits.
std::vector<NodeId> random_fsm(Circuit& c, int state_bits,
                               const std::vector<NodeId>& inputs, Rng& rng,
                               const std::string& prefix);

/// Round-robin-ish arbiter: grants[i] = req[i] & ~(higher-priority req),
/// priority rotated by a small counter; returns grant bits.
std::vector<NodeId> arbiter(Circuit& c, const std::vector<NodeId>& req,
                            const std::string& prefix);

/// Clock-gate emulation: AND every signal in `data` with `enable` into
/// registered copies (the low-power structure behind the paper's ~70%
/// static-gate observation under real workloads).
std::vector<NodeId> gated_register_bank(Circuit& c,
                                        const std::vector<NodeId>& data,
                                        NodeId enable,
                                        const std::string& prefix);

}  // namespace deepseq::blocks
