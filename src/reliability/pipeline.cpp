#include "reliability/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "netlist/aig.hpp"
#include "power/pipeline.hpp"
#include "prob/reliability_analytic.hpp"

namespace deepseq {

ReliabilityPipeline::ReliabilityPipeline(
    const DeepSeqModel& pretrained, const ReliabilityPipelineOptions& options)
    : model_(pretrained), options_(options) {}

void ReliabilityPipeline::finetune(const std::vector<TrainSample>& dataset) {
  std::vector<ReliabilitySample> samples;
  samples.reserve(dataset.size());
  for (const auto& s : dataset)
    samples.push_back(make_reliability_sample(s, options_.fault));
  model_.fit(samples, options_.finetune_epochs, options_.finetune_lr,
             options_.seed);
  finetuned_ = true;
}

ReliabilityComparison ReliabilityPipeline::run(const TestDesign& design,
                                               const Workload& workload) {
  if (!finetuned_)
    throw Error("ReliabilityPipeline: call finetune() before run()");

  ReliabilityComparison cmp;
  cmp.design = design.name;
  const Circuit& netlist = design.netlist;

  // Ground truth: paired golden/faulty Monte-Carlo simulation.
  const FaultSimResult gt = simulate_faults(netlist, workload, options_.fault);
  cmp.gt = gt.circuit_reliability;

  // Analytic baseline on the generic netlist.
  ReliabilityOptions an;
  an.gate_error_rate = options_.fault.gate_error_rate;
  cmp.probabilistic =
      estimate_reliability(netlist, workload, an).circuit_reliability;

  // DeepSeq: inference on the decomposed AIG; POs map to representatives.
  const AigConversion conv = decompose_to_aig(netlist);
  const Workload w_aig =
      map_workload_to_aig(netlist, conv.node_map, conv.aig, workload);
  const CircuitGraph graph = build_circuit_graph(conv.aig);
  std::vector<NodeId> pos;
  pos.reserve(netlist.pos().size());
  for (NodeId po : netlist.pos()) pos.push_back(conv.node_map[po]);
  Rng rng(options_.seed ^ std::hash<std::string>{}(design.name));
  cmp.deepseq =
      model_.estimate(graph, w_aig, pos, rng.next_u64()).circuit_reliability;

  const auto rel_err = [&](double est) {
    return cmp.gt != 0.0 ? std::fabs(est - cmp.gt) / cmp.gt : 0.0;
  };
  cmp.probabilistic_error = rel_err(cmp.probabilistic);
  cmp.deepseq_error = rel_err(cmp.deepseq);
  return cmp;
}

}  // namespace deepseq
