// The Fig. 3 power-estimation pipeline end to end on one test design, at
// miniature scale so it finishes in about a minute: pre-train DeepSeq and
// the Grannite baseline on a small corpus, fine-tune on the design, emit
// SAIF files for every method, and compare the analyzed power.

#include <cstdio>
#include <filesystem>

#include "common/timer.hpp"
#include "core/trainer.hpp"
#include "dataset/training_data.hpp"
#include "power/pipeline.hpp"

using namespace deepseq;

int main() {
  WallTimer total;

  // Pre-training corpus (a miniature Table I).
  TrainingDataOptions dopt;
  dopt.num_subcircuits = 16;
  dopt.sim_cycles = 1000;
  dopt.size_scale = 0.5;
  dopt.seed = 7;
  const TrainingDataset ds = build_training_dataset(dopt);
  std::printf("corpus: %zu subcircuits\n", ds.samples.size());

  DeepSeqModel deepseq_model(ModelConfig::deepseq(16, 3));
  {
    TrainOptions topt;
    topt.epochs = 12;
    topt.lr = 2e-3f;
    topt.batch_size = 4;
    Trainer(deepseq_model, topt).fit(ds.samples);
  }
  GranniteConfig gc;
  gc.hidden_dim = 16;
  GranniteModel grannite_model(gc);
  {
    std::vector<GranniteSample> gs;
    for (const auto& s : ds.samples) gs.push_back(make_grannite_sample(s));
    grannite_model.fit(gs, 12, 2e-3f);
  }
  std::printf("pre-trained DeepSeq + Grannite (%.0fs)\n", total.seconds());

  // The design under evaluation: ptc at 1/16 of the paper's size.
  const TestDesign design = build_test_design("ptc", 1.0 / 16.0, 3);
  std::printf("design: %s (%s), %zu nodes\n", design.name.c_str(),
              design.description.c_str(), design.netlist.num_nodes());

  PowerPipelineOptions popt;
  popt.gt_sim_cycles = 2000;
  popt.finetune_workloads = 16;
  popt.finetune_epochs = 24;
  popt.finetune_sim_cycles = 1000;
  popt.finetune_lr = 2e-3f;
  popt.saif_dir = "deepseq_cache/saif_example";
  std::filesystem::create_directories(popt.saif_dir);
  PowerPipeline pipeline(deepseq_model, grannite_model, popt);

  Rng rng(99);
  const Workload testbench = low_activity_workload(design.netlist, rng, 0.3);
  const PowerComparison cmp = pipeline.run(design, testbench);

  std::printf("\n%.0f%% of gates are static under this workload (paper §V-A1"
              " observes ~70%%)\n", cmp.static_fraction * 100);
  std::printf("\n%-22s %10s %10s\n", "method", "power (mW)", "error");
  std::printf("--------------------------------------------\n");
  std::printf("%-22s %10.4f %10s\n", "ground truth (sim)", cmp.gt_mw, "-");
  std::printf("%-22s %10.4f %9.1f%%\n", "probabilistic [27]", cmp.probabilistic_mw,
              cmp.probabilistic_error * 100);
  std::printf("%-22s %10.4f %9.1f%%\n", "Grannite [18] (tuned)", cmp.grannite_mw,
              cmp.grannite_error * 100);
  std::printf("%-22s %10.4f %9.1f%%\n", "DeepSeq (fine-tuned)", cmp.deepseq_mw,
              cmp.deepseq_error * 100);
  std::printf("\nSAIF files written to %s/\n", popt.saif_dir.c_str());
  std::printf(
      "(absolute errors at this miniature demo scale are noisy — the\n"
      " calibrated comparison is bench/table5_power_large; see\n"
      " EXPERIMENTS.md for paper-vs-measured numbers)\n");
  std::printf("total %.0fs\n", total.seconds());
  return 0;
}
