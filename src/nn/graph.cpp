#include "nn/graph.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "common/env.hpp"
#include "common/error.hpp"
#include "nn/executor.hpp"
#include "nn/op.hpp"
#include "nn/plan.hpp"

namespace deepseq::nn {

namespace {

std::atomic<std::uint64_t> g_next_id{1};

Var new_node(Tensor value, bool requires_grad) {
  auto n = std::make_shared<VarNode>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  n->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  return n;
}

bool any_requires_grad(const InlineInputs& parents) {
  for (const auto& p : parents)
    if (p->requires_grad) return true;
  return false;
}

void check_same_shape(const Var& a, const Var& b, const char* op) {
  if (!a->value.same_shape(b->value))
    throw ShapeError(std::string(op) + ": shape mismatch " +
                     a->value.shape_string() + " vs " + b->value.shape_string());
}

}  // namespace

bool nn_slab_from_env() { return env_int("DEEPSEQ_NN_SLAB", 1) != 0; }

Var make_param(Tensor value) { return new_node(std::move(value), true); }
Var make_constant(Tensor value) { return new_node(std::move(value), false); }

Var Graph::constant(Tensor value) { return make_constant(std::move(value)); }

Graph::Graph(bool grad_enabled) : grad_enabled_(grad_enabled) {}

Graph::~Graph() { clear(); }

// The record layer's single registration point: the output node is created
// with its final shape (zero-filled — kernels that accumulate rely on it),
// the op joins the pending batch, and the tape additionally retains it when
// gradients will flow. Outside a BatchScope the batch is flushed
// immediately, preserving eager `var->value` semantics for every caller.
Var Graph::record(Tensor out, Op* op) {
  const bool needs = grad_enabled_ && any_requires_grad(op->inputs);
  Var n = new_node(std::move(out), needs);
  op->out = n;
  pending_.push_back(op);
  if (needs) {
    n->producer = op;
    tape_.push_back(op);
  }
  if (batch_depth_ == 0) flush();
  return n;
}

void Graph::flush() {
  if (pending_.empty()) return;
  Executor& exec = Executor::current();
  exec.run(Plan::build(pending_, exec.threads(), nn_fuse_from_env()));
  // Recycle executed ops: release their references immediately (dead
  // intermediates free as early as they did on the eager tape) but keep the
  // member vectors' capacity warm for the next record. Taped ops (those
  // whose output points back at them as producer) must survive for
  // backward(); everything else — every op of a no-grad graph, and ops of
  // a grad graph whose inputs all lack requires_grad, like the per-level
  // feature gathers — returns to the free list now.
  for (Op* op : pending_)
    if (op->out->producer != op) recycle(op);
  pending_.clear();
  // Reader bookkeeping only orders ops within one planned batch; anything
  // still registered has executed and can't race a future scatter.
  slab_readers_.clear();
}

void Graph::recycle(Op* op) {
  op->out.reset();
  op->inputs.clear();
  op->refs.clear();
  op->segment.clear();
  op->argmax.clear();
  op->num_segments = 0;
  op->scalar = 0.0f;
  op->slab_rows = 0;
  if (op->attr_a.size() != 0) op->attr_a = Tensor();
  if (op->attr_b.size() != 0) op->attr_b = Tensor();
  if (op->saved.size() != 0) op->saved = Tensor();
  free_ops_.push_back(op);
}

Op* Graph::acquire_op(OpKind kind) {
  constexpr std::size_t kArenaBlock = 64;
  Op* op;
  if (!free_ops_.empty()) {
    op = free_ops_.back();
    free_ops_.pop_back();
  } else {
    if (arena_.empty() || arena_used_ == kArenaBlock) {
      arena_.push_back(std::make_unique<Op[]>(kArenaBlock));
      arena_used_ = 0;
    }
    op = &arena_.back()[arena_used_++];
  }
  op->kind = kind;
  return op;
}

Var Graph::add(const Var& a, const Var& b) {
  check_same_shape(a, b, "add");
  auto op = acquire_op(OpKind::kAdd);
  op->inputs = {a, b};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::sub(const Var& a, const Var& b) {
  check_same_shape(a, b, "sub");
  auto op = acquire_op(OpKind::kSub);
  op->inputs = {a, b};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::mul(const Var& a, const Var& b) {
  check_same_shape(a, b, "mul");
  auto op = acquire_op(OpKind::kMul);
  op->inputs = {a, b};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::add_row(const Var& a, const Var& row) {
  if (row->value.rows() != 1 || row->value.cols() != a->value.cols())
    throw ShapeError("add_row: need 1x" + std::to_string(a->value.cols()) +
                     " row vector, got " + row->value.shape_string());
  auto op = acquire_op(OpKind::kAddRow);
  op->inputs = {a, row};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::matmul(const Var& a, const Var& b) {
  if (a->value.cols() != b->value.rows())
    throw ShapeError("matmul: inner dimension mismatch " +
                     a->value.shape_string() + " * " + b->value.shape_string());
  auto op = acquire_op(OpKind::kMatmul);
  op->inputs = {a, b};
  return record(Tensor(a->value.rows(), b->value.cols()), op);
}

Var Graph::scale(const Var& a, float s) {
  auto op = acquire_op(OpKind::kScale);
  op->inputs = {a};
  op->scalar = s;
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::sigmoid(const Var& a) {
  auto op = acquire_op(OpKind::kSigmoid);
  op->inputs = {a};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::tanh_(const Var& a) {
  auto op = acquire_op(OpKind::kTanh);
  op->inputs = {a};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::relu(const Var& a) {
  auto op = acquire_op(OpKind::kRelu);
  op->inputs = {a};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::one_minus(const Var& a) {
  auto op = acquire_op(OpKind::kOneMinus);
  op->inputs = {a};
  return record(Tensor(a->value.rows(), a->value.cols()), op);
}

Var Graph::concat_cols(const std::vector<Var>& blocks) {
  if (blocks.empty()) throw ShapeError("concat_cols: no blocks");
  const int rows = blocks[0]->value.rows();
  int cols = 0;
  for (const auto& b : blocks) {
    if (b->value.rows() != rows) throw ShapeError("concat_cols: row mismatch");
    cols += b->value.cols();
  }
  auto op = acquire_op(OpKind::kConcatCols);
  op->inputs.assign(blocks);
  return record(Tensor(rows, cols), op);
}

namespace {

///// The tensor-owning node behind a RowRef / slab version: the slab base for
/// version markers, the node itself otherwise.
VarNode* storage_of(const Var& v) {
  return v->slab_base != nullptr ? v->slab_base.get() : v.get();
}

}  // namespace

Var Graph::gather(const std::vector<RowRef>& refs) {
  if (refs.empty()) throw ShapeError("gather: no rows");
  const int cols = storage_of(refs[0].var)->value.cols();
  bool any_slab = false;
  for (const auto& r : refs) {
    const VarNode* src = storage_of(r.var);
    if (src->value.cols() != cols) throw ShapeError("gather: column mismatch");
    if (r.row < 0 || r.row >= src->value.rows())
      throw ShapeError("gather: row index out of range");
    if (r.var->slab) {
      if (r.var->slab_consumed)
        throw Error("gather: slab version already consumed by scatter_rows");
      any_slab = true;
    }
  }
  auto op = acquire_op(OpKind::kGather);
  op->refs = refs;
  {
    std::unordered_set<VarNode*> seen;
    for (const auto& r : refs)
      if (seen.insert(r.var.get()).second) op->inputs.push_back(r.var);
  }
  if (any_slab) {
    // Rewrite slab-version rows to read the base tensor directly — the
    // executor's gather kernel stays a plain row copy — while the version
    // Var remains an op input, giving the planner the write-before-read
    // edge. Count the rewritten rows for PlanStats.
    for (auto& r : op->refs) {
      if (!r.var->slab) continue;
      ++op->slab_rows;
      if (r.var->slab_base != nullptr) r.var = r.var->slab_base;
    }
  }
  Var out = record(Tensor(static_cast<int>(refs.size()), cols), op);
  if (any_slab) {
    // Register this gather as a reader of every distinct version it touched
    // so a later scatter_rows on that version is ordered after it.
    std::unordered_set<VarNode*> seen;
    for (const auto& r : refs)
      if (r.var->slab && seen.insert(r.var.get()).second)
        slab_readers_.emplace_back(r.var.get(), out);
  }
  return out;
}

Var Graph::slab(Tensor init) {
  Var v = make_constant(std::move(init));
  v->slab = true;
  return v;
}

Var Graph::scatter_rows(const Var& version, const Var& values,
                        const std::vector<int>& rows) {
  if (grad_enabled_)
    throw Error("scatter_rows: slabs are inference-only (grad-enabled graph)");
  if (!version->slab) throw Error("scatter_rows: not a slab version");
  if (version->slab_consumed)
    throw Error("scatter_rows: slab version already consumed");
  VarNode* base = storage_of(version);
  if (values->value.cols() != base->value.cols())
    throw ShapeError("scatter_rows: column mismatch " +
                     values->value.shape_string() + " into " +
                     base->value.shape_string());
  if (static_cast<int>(rows.size()) != values->value.rows())
    throw ShapeError("scatter_rows: row count mismatch");
  {
    // Distinct targets are what make row-split execution safe; levels are
    // small, so an O(n log n) check is cheap insurance.
    std::vector<int> sorted(rows);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] < 0 || sorted[i] >= base->value.rows())
        throw ShapeError("scatter_rows: row index out of range");
      if (i > 0 && sorted[i] == sorted[i - 1])
        throw ShapeError("scatter_rows: duplicate target row");
    }
  }
  version->slab_consumed = true;
  auto op = acquire_op(OpKind::kScatterRows);
  op->inputs = {values, version};
  // Order every recorded reader of the consumed version before this
  // overwrite, then retire their entries — the version is dead.
  for (std::size_t i = 0; i < slab_readers_.size();) {
    if (slab_readers_[i].first == version.get()) {
      if (slab_readers_[i].second.get() != values.get())
        op->inputs.push_back(slab_readers_[i].second);
      slab_readers_[i] = std::move(slab_readers_.back());
      slab_readers_.pop_back();
    } else {
      ++i;
    }
  }
  op->segment = rows;
  op->slab_rows = static_cast<std::uint32_t>(rows.size());
  Var out = record(Tensor(), op);
  out->slab = true;
  out->slab_base = version->slab_base != nullptr ? version->slab_base : version;
  return out;
}

Var Graph::segment_softmax(const Var& scores, const std::vector<int>& segment,
                           int num_segments) {
  if (scores->value.cols() != 1)
    throw ShapeError("segment_softmax: scores must be E x 1");
  if (static_cast<int>(segment.size()) != scores->value.rows())
    throw ShapeError("segment_softmax: segment size mismatch");
  auto op = acquire_op(OpKind::kSegmentSoftmax);
  op->inputs = {scores};
  op->segment = segment;
  op->num_segments = num_segments;
  return record(Tensor(scores->value.rows(), 1), op);
}

Var Graph::mul_col(const Var& values, const Var& col) {
  if (col->value.cols() != 1 || col->value.rows() != values->value.rows())
    throw ShapeError("mul_col: col must be E x 1 matching values rows");
  auto op = acquire_op(OpKind::kMulCol);
  op->inputs = {values, col};
  return record(Tensor(values->value.rows(), values->value.cols()), op);
}

Var Graph::segment_sum(const Var& values, const std::vector<int>& segment,
                       int num_segments) {
  if (static_cast<int>(segment.size()) != values->value.rows())
    throw ShapeError("segment_sum: segment size mismatch");
  auto op = acquire_op(OpKind::kSegmentSum);
  op->inputs = {values};
  op->segment = segment;
  op->num_segments = num_segments;
  return record(Tensor(num_segments, values->value.cols()), op);
}

Var Graph::segment_max(const Var& values, const std::vector<int>& segment,
                       int num_segments) {
  if (static_cast<int>(segment.size()) != values->value.rows())
    throw ShapeError("segment_max: segment size mismatch");
  const int cols = values->value.cols();
  auto op = acquire_op(OpKind::kSegmentMax);
  op->inputs = {values};
  op->segment = segment;
  op->num_segments = num_segments;
  op->argmax.assign(static_cast<std::size_t>(num_segments) * cols, -1);
  return record(Tensor(num_segments, cols), op);
}

Var Graph::l1_loss(const Var& pred, const Tensor& target) {
  if (!pred->value.same_shape(target))
    throw ShapeError("l1_loss: prediction/target shape mismatch " +
                     pred->value.shape_string() + " vs " + target.shape_string());
  auto op = acquire_op(OpKind::kL1Loss);
  op->inputs = {pred};
  op->attr_a = target;
  return record(Tensor(1, 1), op);
}

Var Graph::l1_loss_weighted(const Var& pred, const Tensor& target,
                            const Tensor& weight) {
  if (!pred->value.same_shape(target) || !pred->value.same_shape(weight))
    throw ShapeError("l1_loss_weighted: shape mismatch");
  auto op = acquire_op(OpKind::kL1LossWeighted);
  op->inputs = {pred};
  op->attr_a = target;
  op->attr_b = weight;
  return record(Tensor(1, 1), op);
}

Var Graph::softmax_cross_entropy(const Var& logits,
                                 const std::vector<int>& labels) {
  const int rows = logits->value.rows(), cols = logits->value.cols();
  if (static_cast<int>(labels.size()) != rows)
    throw ShapeError("softmax_cross_entropy: label count mismatch");
  for (int r = 0; r < rows; ++r)
    if (labels[r] < 0 || labels[r] >= cols)
      throw ShapeError("softmax_cross_entropy: label out of range");
  auto op = acquire_op(OpKind::kSoftmaxXent);
  op->inputs = {logits};
  op->segment = labels;
  return record(Tensor(1, 1), op);
}

void Graph::backward(const Var& root) {
  if (!grad_enabled_) throw Error("Graph::backward: gradients disabled");
  flush();
  root->ensure_grad().fill(1.0f);

  // Reachable taped ops, then descending output creation id = reverse
  // topological order (node creation order is a topo order of the DAG).
  std::vector<Op*> reachable;
  {
    std::unordered_set<VarNode*> seen;
    std::vector<VarNode*> work{root.get()};
    seen.insert(root.get());
    while (!work.empty()) {
      VarNode* n = work.back();
      work.pop_back();
      if (n->producer == nullptr) continue;
      reachable.push_back(n->producer);
      for (const auto& p : n->producer->inputs)
        if (seen.insert(p.get()).second) work.push_back(p.get());
    }
  }
  std::sort(reachable.begin(), reachable.end(),
            [](const Op* a, const Op* b) { return a->out->id > b->out->id; });
  Executor::current().run_backward(reachable);
}

void Graph::clear() {
  flush();
  for (Op* op : tape_) {
    op->out->producer = nullptr;
    recycle(op);
  }
  tape_.clear();
}

}  // namespace deepseq::nn
