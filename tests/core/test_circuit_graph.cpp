#include "core/circuit_graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

Circuit s27_aig() { return decompose_to_aig(iscas89_s27()).aig; }

TEST(CircuitGraph, FeatureOneHot) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  EXPECT_EQ(g.features.rows(), static_cast<int>(aig.num_nodes()));
  EXPECT_EQ(g.features.cols(), kFeatureDim);
  for (NodeId v = 0; v < aig.num_nodes(); ++v) {
    float sum = 0.0f;
    for (int c = 0; c < kFeatureDim; ++c) sum += g.features.at(v, c);
    EXPECT_FLOAT_EQ(sum, 1.0f) << "node " << v;
    EXPECT_FLOAT_EQ(g.features.at(v, feature_index(aig.type(v))), 1.0f);
  }
}

TEST(CircuitGraph, FeatureIndexRejectsGenericTypes) {
  EXPECT_THROW(feature_index(GateType::kXor), CircuitError);
  EXPECT_THROW(feature_index(GateType::kMux), CircuitError);
}

TEST(CircuitGraph, Const0IsTreatedAsPinnedPseudoPi) {
  // Optimization keeps a CONST0 when a PO cone is constant; the GNN views
  // it as a primary input pinned to logic-1 probability 0.
  EXPECT_EQ(feature_index(GateType::kConst0), feature_index(GateType::kPi));
  Circuit c("const_po");
  const NodeId a = c.add_pi("a");
  const NodeId zero = c.add_const0("z");
  const NodeId g1 = c.add_and(a, zero, "g1");
  c.add_po(g1, "y");
  c.add_po(zero, "y0");
  const CircuitGraph graph = build_circuit_graph(c);
  ASSERT_EQ(graph.consts.size(), 1u);
  EXPECT_EQ(graph.consts[0], zero);
  // CONST0 must never be an update target in any schedule.
  for (const auto* batches :
       {&graph.comb_forward, &graph.comb_reverse, &graph.baseline_forward,
        &graph.baseline_reverse})
    for (const auto& batch : *batches)
      for (NodeId t : batch.targets) EXPECT_NE(t, zero);
}

TEST(CircuitGraph, RejectsNonAigCircuit) {
  EXPECT_THROW(build_circuit_graph(iscas89_s27()), CircuitError);
}

TEST(CircuitGraph, ForwardBatchesCoverAllGatesOnce) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  std::vector<int> seen(aig.num_nodes(), 0);
  for (const auto& batch : g.comb_forward)
    for (NodeId v : batch.targets) ++seen[v];
  for (NodeId v = 0; v < aig.num_nodes(); ++v) {
    const bool gate = aig.type(v) == GateType::kAnd || aig.type(v) == GateType::kNot;
    EXPECT_EQ(seen[v], gate ? 1 : 0) << "node " << v;
  }
}

TEST(CircuitGraph, ForwardEdgesMatchFanins) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  for (const auto& batch : g.comb_forward) {
    ASSERT_EQ(batch.sources.size(), batch.segment.size());
    // Each target's incoming sources are exactly its fanins.
    std::vector<std::vector<NodeId>> per_target(batch.targets.size());
    for (std::size_t e = 0; e < batch.sources.size(); ++e)
      per_target[batch.segment[e]].push_back(batch.sources[e]);
    for (std::size_t t = 0; t < batch.targets.size(); ++t) {
      const NodeId v = batch.targets[t];
      ASSERT_EQ(per_target[t].size(),
                static_cast<std::size_t>(aig.num_fanins(v)));
      for (int i = 0; i < aig.num_fanins(v); ++i)
        EXPECT_EQ(per_target[t][i], aig.fanin(v, i));
    }
  }
}

TEST(CircuitGraph, ForwardLevelsRespectDependencies) {
  // Within the forward schedule, a gate's fanin gates must appear in an
  // earlier batch (levelized execution).
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  std::vector<int> batch_of(aig.num_nodes(), -1);
  for (std::size_t bi = 0; bi < g.comb_forward.size(); ++bi)
    for (NodeId v : g.comb_forward[bi].targets)
      batch_of[v] = static_cast<int>(bi);
  for (const auto& batch : g.comb_forward) {
    for (std::size_t e = 0; e < batch.sources.size(); ++e) {
      const NodeId tgt = batch.targets[batch.segment[e]];
      const NodeId src = batch.sources[e];
      if (batch_of[src] >= 0) {
        EXPECT_LT(batch_of[src], batch_of[tgt]);
      }
    }
  }
}

TEST(CircuitGraph, ReverseUsesFanouts) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  const auto fanouts = aig.fanouts();
  for (const auto& batch : g.comb_reverse) {
    std::vector<std::vector<NodeId>> per_target(batch.targets.size());
    for (std::size_t e = 0; e < batch.sources.size(); ++e)
      per_target[batch.segment[e]].push_back(batch.sources[e]);
    for (std::size_t t = 0; t < batch.targets.size(); ++t) {
      EXPECT_EQ(per_target[t].size(), fanouts[batch.targets[t]].size());
    }
  }
}

TEST(CircuitGraph, FfCopyPairsMatchDInputs) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  ASSERT_EQ(g.ff_targets.size(), aig.ffs().size());
  for (std::size_t k = 0; k < g.ff_targets.size(); ++k) {
    EXPECT_EQ(g.ff_targets[k], aig.ffs()[k]);
    EXPECT_EQ(g.ff_sources[k], aig.fanin(aig.ffs()[k], 0));
  }
}

TEST(CircuitGraph, BaselineScheduleUpdatesFfs) {
  // In the baseline (acyclified) schedule, FFs with surviving in-edges are
  // regular targets — unlike the customized schedule.
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  bool ff_in_baseline = false;
  for (const auto& batch : g.baseline_forward)
    for (NodeId v : batch.targets)
      if (aig.type(v) == GateType::kFf) ff_in_baseline = true;
  EXPECT_TRUE(ff_in_baseline);

  for (const auto& batch : g.comb_forward)
    for (NodeId v : batch.targets)
      EXPECT_NE(aig.type(v), GateType::kFf);
}

TEST(CircuitGraph, PisNeverTargets) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  for (const auto* sched : {&g.comb_forward, &g.comb_reverse,
                            &g.baseline_forward, &g.baseline_reverse}) {
    for (const auto& batch : *sched)
      for (NodeId v : batch.targets) EXPECT_NE(aig.type(v), GateType::kPi);
  }
}

TEST(CircuitGraph, PisRecorded) {
  const Circuit aig = s27_aig();
  const CircuitGraph g = build_circuit_graph(aig);
  EXPECT_EQ(g.pis, aig.pis());
}

}  // namespace
}  // namespace deepseq
