#include "netlist/circuit.hpp"

#include "common/error.hpp"

namespace deepseq {

NodeId Circuit::add_node(GateType type, std::string name) {
  if (nodes_.size() >= kNullNode) throw CircuitError("circuit too large");
  Node n;
  n.type = type;
  nodes_.push_back(n);
  names_.push_back(std::move(name));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Circuit::add_pi(std::string name) {
  const NodeId id = add_node(GateType::kPi, std::move(name));
  pis_.push_back(id);
  return id;
}

NodeId Circuit::add_const0(std::string name) {
  return add_node(GateType::kConst0, std::move(name));
}

NodeId Circuit::add_gate(GateType type, const std::vector<NodeId>& fanins,
                         std::string name) {
  if (type == GateType::kPi || type == GateType::kFf)
    throw CircuitError("add_gate: use add_pi/add_ff for PI/FF nodes");
  if (static_cast<int>(fanins.size()) != gate_arity(type))
    throw CircuitError("add_gate: wrong fanin count for " +
                       std::string(gate_type_name(type)));
  const NodeId id = add_node(type, std::move(name));
  Node& n = nodes_[id];
  n.num_fanins = static_cast<std::uint8_t>(fanins.size());
  for (std::size_t i = 0; i < fanins.size(); ++i) n.fanin[i] = fanins[i];
  return id;
}

NodeId Circuit::add_not(NodeId a, std::string name) {
  return add_gate(GateType::kNot, {a}, std::move(name));
}

NodeId Circuit::add_and(NodeId a, NodeId b, std::string name) {
  return add_gate(GateType::kAnd, {a, b}, std::move(name));
}

NodeId Circuit::add_ff(NodeId d, std::string name) {
  const NodeId id = add_node(GateType::kFf, std::move(name));
  Node& n = nodes_[id];
  n.num_fanins = 1;
  n.fanin[0] = d;
  ffs_.push_back(id);
  return id;
}

void Circuit::set_fanin(NodeId node, int slot, NodeId source) {
  if (node >= nodes_.size()) throw CircuitError("set_fanin: bad node id");
  Node& n = nodes_[node];
  if (slot < 0 || slot >= n.num_fanins)
    throw CircuitError("set_fanin: bad slot");
  n.fanin[slot] = source;
}

void Circuit::add_po(NodeId node, std::string name) {
  if (node >= nodes_.size()) throw CircuitError("add_po: bad node id");
  pos_.push_back(node);
  po_names_.push_back(std::move(name));
}

NodeId Circuit::find_by_name(std::string_view name) const {
  for (NodeId v = 0; v < names_.size(); ++v)
    if (names_[v] == name) return v;
  return kNullNode;
}

std::vector<std::vector<NodeId>> Circuit::fanouts() const {
  std::vector<std::vector<NodeId>> out(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const Node& n = nodes_[v];
    for (int i = 0; i < n.num_fanins; ++i) {
      if (n.fanin[i] != kNullNode) out[n.fanin[i]].push_back(v);
    }
  }
  return out;
}

void Circuit::validate() const {
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const Node& n = nodes_[v];
    if (n.num_fanins != gate_arity(n.type))
      throw CircuitError("node " + std::to_string(v) + " (" +
                         std::string(gate_type_name(n.type)) +
                         ") has wrong fanin count");
    for (int i = 0; i < n.num_fanins; ++i) {
      if (n.fanin[i] == kNullNode)
        throw CircuitError("node " + std::to_string(v) +
                           " has unconnected fanin " + std::to_string(i));
      if (n.fanin[i] >= nodes_.size())
        throw CircuitError("node " + std::to_string(v) +
                           " has dangling fanin id");
    }
  }
  for (NodeId po : pos_) {
    if (po >= nodes_.size()) throw CircuitError("dangling primary output");
  }

  // Combinational-cycle check: DFS over combinational edges only (edges into
  // FF D inputs break the cycle, matching real clocked hardware).
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> mark(nodes_.size(), Mark::kWhite);
  std::vector<std::pair<NodeId, int>> stack;
  for (NodeId root = 0; root < nodes_.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const Node& n = nodes_[v];
      // FFs break combinational paths: do not traverse their fanin.
      const int limit = (n.type == GateType::kFf) ? 0 : n.num_fanins;
      if (next < limit) {
        const NodeId u = n.fanin[next++];
        if (mark[u] == Mark::kGray)
          throw CircuitError("combinational cycle through node " +
                             std::to_string(u));
        if (mark[u] == Mark::kWhite) {
          mark[u] = Mark::kGray;
          stack.emplace_back(u, 0);
        }
      } else {
        mark[v] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
}

bool Circuit::is_strict_aig() const {
  for (const Node& n : nodes_)
    if (!is_aig_type(n.type)) return false;
  return true;
}

std::array<std::size_t, kNumGateTypes> Circuit::type_counts() const {
  std::array<std::size_t, kNumGateTypes> counts{};
  for (const Node& n : nodes_) ++counts[static_cast<std::size_t>(n.type)];
  return counts;
}

}  // namespace deepseq
