#pragma once

#include <memory>
#include <vector>

#include "core/aggregator.hpp"
#include "core/circuit_graph.hpp"
#include "core/sample.hpp"
#include "nn/adam.hpp"
#include "nn/modules.hpp"

namespace deepseq {

/// Re-implementation of the Grannite-style learning baseline [18] in the
/// paper's unified framework (§V-A2): a *forward-only* DAG-GNN over the
/// combinational logic whose sequential-element activity is an input, not a
/// prediction. PI and FF nodes carry simulator-derived features (toggle
/// rate and static probability — the paper feeds Grannite RTL-simulation
/// results; our golden gate-level simulation provides the identical
/// information) and keep them fixed; the model infers toggle rates of
/// combinational gates only. The missing periodic exchange between memory
/// elements and logic is exactly the deficiency §V-A3c discusses.
struct GranniteConfig {
  int hidden_dim = 64;
  std::uint64_t seed = 77;
};

/// Per-circuit input for Grannite: the shared CircuitGraph plus the source
/// feature matrix (N x 3: [toggle_rate, logic1, is_source], zero for
/// non-source nodes).
struct GranniteSample {
  const TrainSample* base = nullptr;  // circuit graph + TR labels
  nn::Tensor source_feats;            // N x 3
  nn::Tensor comb_mask;               // N x 2: 1 where the loss applies
};

/// Build the Grannite input from a sample whose activity is already known
/// (source features come from the simulated workload).
GranniteSample make_grannite_sample(const TrainSample& base);

class GranniteModel {
 public:
  explicit GranniteModel(const GranniteConfig& config);

  /// Predicted per-node toggle probabilities (N x 2, sigmoid). Predictions
  /// are only meaningful on combinational gates; callers substitute
  /// simulator truth for PI/FF rows (the Grannite protocol).
  nn::Var forward(nn::Graph& g, const CircuitGraph& graph,
                  const nn::Tensor& source_feats,
                  std::uint64_t init_seed) const;

  /// L1-fit on combinational gates of the given samples. With
  /// balance_active, active and static gates get equal loss mass (see
  /// TrainOptions::balance_tr for the rationale at reduced budgets).
  void fit(const std::vector<GranniteSample>& samples, int epochs, float lr,
           std::uint64_t shuffle_seed = 99, bool balance_active = false);

  /// Full toggle-rate vector for power analysis: model predictions on comb
  /// gates, simulation values on PI/FF (taken from source_feats).
  std::vector<double> toggle_rates(const CircuitGraph& graph,
                                   const nn::Tensor& source_feats,
                                   std::uint64_t init_seed) const;

  nn::NamedParams params() const;
  void copy_params_from(const GranniteModel& other);
  const GranniteConfig& config() const { return config_; }

 private:
  GranniteConfig config_;
  Aggregator agg_;
  nn::GruCell gru_;
  nn::Mlp head_;
};

}  // namespace deepseq
