// Synthetic corpus generator: emits a directory tree of multi-module
// gate-level Verilog at configurable scale, so tests and CI can exercise
// SoC-scale streaming ingestion without committing large files.
//
//   gen_corpus <dir> [files] [modules-per-file] [gates-per-module] [seed]
//
// Environment overrides (same order of precedence as other DEEPSEQ knobs):
//   DEEPSEQ_GEN_FILES    number of .v files               (default 8)
//   DEEPSEQ_GEN_MODULES  modules per file                 (default 8)
//   DEEPSEQ_GEN_GATES    mean gates per module            (default 1500)
//   DEEPSEQ_GEN_FF_RATIO FFs as a fraction of gates       (default 0.12)
//   DEEPSEQ_GEN_DUP_EVERY every Nth module is a structural duplicate of
//                        an earlier one under a fresh name (default 10;
//                        0 disables) — exercises corpus dedup, and the
//                        expected unique count is printed so CI can pin
//                        the manifest against it.
//   DEEPSEQ_GEN_SEED     generator seed                   (default 42)
//
// Output is deterministic for a given knob set: module K of file F is
// generated from a seed derived only from (seed, F, K). Each file gets
// one shared behavioral DFF companion module at the end (the streaming
// frontend skips it). A gen_manifest.json with the expected file/module/
// unique counts and total bytes is written into the corpus directory.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "netlist/verilog_io.hpp"

using namespace deepseq;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: gen_corpus <dir> [files] [modules] [gates] [seed]\n");
    return 2;
  }
  const std::string dir = argv[1];
  const auto arg_or_env = [&](int idx, const char* env, std::int64_t dflt) {
    if (argc > idx) return static_cast<std::int64_t>(std::atoll(argv[idx]));
    return env_int(env, dflt);
  };
  const std::int64_t num_files = arg_or_env(2, "DEEPSEQ_GEN_FILES", 8);
  const std::int64_t modules_per_file = arg_or_env(3, "DEEPSEQ_GEN_MODULES", 8);
  const std::int64_t mean_gates = arg_or_env(4, "DEEPSEQ_GEN_GATES", 1500);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(arg_or_env(5, "DEEPSEQ_GEN_SEED", 42));
  const double ff_ratio = env_double("DEEPSEQ_GEN_FF_RATIO", 0.12);
  const std::int64_t dup_every = env_int("DEEPSEQ_GEN_DUP_EVERY", 10);
  if (num_files < 1 || modules_per_file < 1 || mean_gates < 8) {
    std::fprintf(stderr, "gen_corpus: files/modules >= 1, gates >= 8\n");
    return 2;
  }

  std::filesystem::create_directories(dir);

  // A duplicate module reuses the (file, module) coordinates of an earlier
  // module for its generator seed — structurally identical circuit, fresh
  // module name — so structural-hash dedup has real work to do.
  std::uint64_t total_bytes = 0;
  std::int64_t total_modules = 0, dup_modules = 0;
  for (std::int64_t f = 0; f < num_files; ++f) {
    char name[64];
    std::snprintf(name, sizeof name, "corpus_%03lld.v",
                  static_cast<long long>(f));
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "gen_corpus: cannot write %s\n",
                   path.string().c_str());
      return 1;
    }
    bool any_ffs = false;
    for (std::int64_t m = 0; m < modules_per_file; ++m) {
      const std::int64_t ordinal = f * modules_per_file + m;
      std::int64_t src_f = f, src_m = m;
      const bool dup =
          dup_every > 0 && ordinal > 0 && ordinal % dup_every == 0;
      if (dup) {
        // Clone the very first module of the corpus (always a non-dup).
        src_f = 0;
        src_m = 0;
        ++dup_modules;
      }
      Rng rng(seed ^ (static_cast<std::uint64_t>(src_f) << 32) ^
              static_cast<std::uint64_t>(src_m) * 0x9E3779B97F4A7C15ULL);
      GeneratorSpec spec;
      spec.name = "m_" + std::to_string(f) + "_" + std::to_string(m);
      // Sizes spread around the mean (x0.5 .. x1.5) for design diversity.
      spec.num_gates = static_cast<int>(
          static_cast<double>(mean_gates) * rng.uniform(0.5, 1.5));
      spec.num_pis = 4 + static_cast<int>(rng.uniform_index(29));
      spec.num_ffs =
          1 + static_cast<int>(spec.num_gates * ff_ratio * rng.uniform(0.5, 1.5));
      Circuit c = generate_circuit(spec, rng);
      any_ffs = any_ffs || !c.ffs().empty();
      write_verilog_module(c, out);
      out << "\n";
      ++total_modules;
    }
    if (any_ffs) write_dff_companion(out);
    out.close();
    total_bytes += std::filesystem::file_size(path);
  }

  const std::int64_t unique_modules = total_modules - dup_modules;
  const std::string manifest =
      "{\"files\":" + std::to_string(num_files) +
      ",\"modules\":" + std::to_string(total_modules) +
      ",\"unique_modules\":" + std::to_string(unique_modules) +
      ",\"dup_modules\":" + std::to_string(dup_modules) +
      ",\"bytes\":" + std::to_string(total_bytes) +
      ",\"seed\":" + std::to_string(seed) + "}";
  {
    std::ofstream mf(std::filesystem::path(dir) / "gen_manifest.json");
    mf << manifest << "\n";
  }
  std::printf("%s\n", manifest.c_str());
  std::printf("gen_corpus: %lld modules (%lld unique) in %lld files, %.1f MB\n",
              static_cast<long long>(total_modules),
              static_cast<long long>(unique_modules),
              static_cast<long long>(num_files), total_bytes / 1e6);
  return 0;
}
