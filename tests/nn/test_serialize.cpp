#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include <fstream>
#include <iterator>

namespace deepseq::nn {
namespace {

TEST(Serialize, RoundTrip) {
  Rng rng(1);
  Var a = make_param(Tensor::xavier(3, 4, rng));
  Var b = make_param(Tensor::xavier(1, 7, rng));
  const Tensor a_orig = a->value, b_orig = b->value;

  const std::string path = ::testing::TempDir() + "/params.bin";
  save_params(path, {{"a", a}, {"b", b}});

  // Perturb, then reload.
  a->value.fill(0.0f);
  b->value.fill(-1.0f);
  load_params(path, {{"a", a}, {"b", b}});
  for (std::size_t i = 0; i < a_orig.size(); ++i)
    EXPECT_FLOAT_EQ(a->value.data()[i], a_orig.data()[i]);
  for (std::size_t i = 0; i < b_orig.size(); ++i)
    EXPECT_FLOAT_EQ(b->value.data()[i], b_orig.data()[i]);
}

TEST(Serialize, SubsetLoadIgnoresExtraFileEntries) {
  Rng rng(2);
  Var a = make_param(Tensor::xavier(2, 2, rng));
  Var b = make_param(Tensor::xavier(2, 2, rng));
  const std::string path = ::testing::TempDir() + "/params2.bin";
  save_params(path, {{"a", a}, {"b", b}});
  // Loading only "a" works (fine-tuning heads load a backbone subset).
  Var a2 = make_param(Tensor(2, 2));
  EXPECT_NO_THROW(load_params(path, {{"a", a2}}));
  EXPECT_FLOAT_EQ(a2->value.at(1, 1), a->value.at(1, 1));
}

TEST(Serialize, MissingNameThrows) {
  Rng rng(3);
  Var a = make_param(Tensor::xavier(2, 2, rng));
  const std::string path = ::testing::TempDir() + "/params3.bin";
  save_params(path, {{"a", a}});
  Var c = make_param(Tensor(2, 2));
  EXPECT_THROW(load_params(path, {{"missing", c}}), Error);
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(4);
  Var a = make_param(Tensor::xavier(2, 2, rng));
  const std::string path = ::testing::TempDir() + "/params4.bin";
  save_params(path, {{"a", a}});
  Var wrong = make_param(Tensor(3, 3));
  EXPECT_THROW(load_params(path, {{"a", wrong}}), Error);
}

TEST(Serialize, MissingFileThrows) {
  Var a = make_param(Tensor(1, 1));
  EXPECT_THROW(load_params("/nonexistent/params.bin", {{"a", a}}), Error);
}

TEST(Serialize, CollectionOrderDoesNotChangeFileBytes) {
  // Entries are written in sorted-name order, so identical weights always
  // produce byte-identical files — the determinism the artifact layer's
  // content hashes stand on.
  Rng rng(5);
  Var a = make_param(Tensor::xavier(2, 3, rng));
  Var b = make_param(Tensor::xavier(3, 1, rng));
  Var c = make_param(Tensor::xavier(1, 4, rng));
  const std::string p1 = ::testing::TempDir() + "/order1.bin";
  const std::string p2 = ::testing::TempDir() + "/order2.bin";
  save_params(p1, {{"a", a}, {"b", b}, {"c", c}});
  save_params(p2, {{"c", c}, {"a", a}, {"b", b}});

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes1 = slurp(p1), bytes2 = slurp(p2);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes2);
}

TEST(Serialize, CorruptFileThrows) {
  const std::string path = ::testing::TempDir() + "/corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "notaparamfile";
  }
  Var a = make_param(Tensor(1, 1));
  EXPECT_THROW(load_params(path, {{"a", a}}), Error);
}

}  // namespace
}  // namespace deepseq::nn
