#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace deepseq::obs {

/// Small dense ordinal of the calling thread (0, 1, 2, ... in first-call
/// order) — counters shard on it and trace events use it as their tid.
std::uint32_t thread_ordinal();

/// Percentile/mean/max digest of one histogram window. Values carry the
/// unit the histogram was recorded in times `scale` (time histograms record
/// nanoseconds; summary(1e-6) reports milliseconds). Percentiles are
/// bucket-midpoint estimates with relative error bounded by the histogram's
/// bucket width (<= 1/16 per octave); count, mean and max are exact.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Monotonic counter with a per-thread-sharded hot path: inc() is one
/// relaxed fetch_add on a cache-line-private slot picked by the calling
/// thread's ordinal, so concurrent writers on different threads never
/// contend on one line. value() sums the shards (monotone but momentarily
/// stale under concurrent writers — exact once they quiesce).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void inc(std::uint64_t n = 1) { slot().fetch_add(n, std::memory_order_relaxed); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& slot();

  std::array<Slot, kShards> slots_{};
};

/// Point-in-time signed value (queue depths, pool occupancy) plus a
/// lifetime high-watermark. All operations are relaxed atomics.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t d) { raise_max(v_.fetch_add(d, std::memory_order_relaxed) + d); }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Readout of one histogram: exact count/sum/max plus the non-empty
/// buckets as (inclusive upper bound, count) pairs in ascending order.
/// Snapshots subtract (see delta()) so a bench can report the percentile
/// distribution of just its own window on the process-wide registry.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// Nearest-rank percentile estimate (bucket midpoint, clamped to max);
  /// p in [0, 1]. Zero when the window is empty.
  double percentile(double p) const;
  Summary summary(double scale = 1.0) const;
};

/// Fixed-bucket log-scale histogram for latency-style values. Layout: 16
/// exact unit buckets (values 0..15), then 16 sub-buckets per power-of-two
/// octave up to 2^64 — relative bucket width 1/16 (6.25%), 976 buckets,
/// ~8 KB. record() is lock-free: one bucket index computation (a count-
/// leading-zeros and two shifts) plus three relaxed atomic adds and a
/// relaxed max CAS; there is no per-record allocation or lock anywhere.
/// Time histograms record nanoseconds by convention (record_ms converts).
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;                    // 16
  static constexpr int kBuckets = kSub + (64 - kSubBits) * kSub;  // 976

  static int bucket_index(std::uint64_t v);
  /// Inclusive upper bound of bucket i (the largest value mapping to it).
  static std::uint64_t bucket_upper(int i);
  /// Smallest value mapping to bucket i.
  static std::uint64_t bucket_lower(int i);

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Record a duration given in milliseconds (stored as ns; negatives
  /// clamp to 0).
  void record_ms(double ms) {
    record(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1e6));
  }

  HistogramSnapshot snapshot() const;
  Summary summary(double scale = 1.0) const { return snapshot().summary(scale); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One consistent-enough readout of every registered metric (counters and
/// histograms are monotonic, so two snapshots subtract into a window).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  struct GaugeValue {
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// `now` minus `base`: counters and histogram buckets subtract (metrics
/// absent from `base` pass through), gauges keep their `now` reading. The
/// delta's histogram max is conservative: min(now.max, highest non-empty
/// delta bucket's upper bound) — exact when the window contains the
/// lifetime max.
Snapshot delta(const Snapshot& now, const Snapshot& base);

/// One-line JSON document: {"counters":{...},"gauges":{name:{"value":..,
/// "max":..}},"histograms":{name:{"count":..,"mean":..,"p50":..,...,
/// "buckets":[[upper,count],...]}}}. Histogram summaries are emitted in the
/// recorded unit (ns for time histograms).
std::string to_json(const Snapshot& snapshot);

/// Process-wide name -> metric registry. Lookup takes a mutex and is meant
/// for initialization (hold the returned reference — typically in a
/// function-local static); recording through the reference is lock-free.
/// Metric objects live for the process lifetime: references never dangle.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;

  /// The process-wide instance every built-in instrumentation point
  /// records into (intentionally leaked: safe from static destructors and
  /// detached threads).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// to_json(Registry::global().snapshot()) — the export surface callers and
/// the DEEPSEQ_METRICS printer use.
std::string snapshot_json();

/// Bump "task.failed.<kind>" on the global registry. Out-of-line so the
/// templated scheduler paths (InferenceEngine::submit_then) can count
/// failures without pulling registry lookups into the header.
void count_task_failed(const char* kind);

}  // namespace deepseq::obs
