#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "core/pace.hpp"
#include "runtime/circuit_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace deepseq::runtime {

/// One embedding query: a strict sequential AIG, the workload defining its
/// PI behaviour, the backend to encode with, and the init seed that makes
/// the forward pass reproducible (paper convention: non-PI states are
/// seeded randomly per sample).
struct EmbeddingRequest {
  std::shared_ptr<const Circuit> circuit;
  Workload workload;
  Backend backend = Backend::kDeepSeqCustom;
  std::uint64_t init_seed = 1;
};

/// The fulfilled side of a request. `embedding` is the N x hidden final
/// node-state matrix h_v^T (DeepSeq backend) or the PACE encoder output —
/// bit-identical to what a direct single-threaded call to
/// DeepSeqModel::embed / PaceEncoder::embed produces for the same inputs.
struct EmbeddingResult {
  std::shared_ptr<const nn::Tensor> embedding;
  StructuralHash structure;
  Backend backend = Backend::kDeepSeqCustom;
  bool structure_cache_hit = false;
  bool embedding_cache_hit = false;
  double queue_ms = 0.0;    // submit -> start of compute
  double compute_ms = 0.0;  // structure resolve + forward (0 on cache hit)
  double total_ms = 0.0;    // submit -> fulfillment
};

struct EngineConfig {
  /// Worker threads; <= 0 uses hardware concurrency.
  int threads = 4;
  /// Coalescing window: a partial batch is dispatched once it reaches this
  /// many requests...
  int max_batch = 8;
  /// ...or once the oldest pending request has waited this long.
  double flush_interval_ms = 2.0;
  /// Model presets the engine serves. Both backends are constructed up
  /// front (deterministically from their seeds) so every request against
  /// this engine sees identical weights.
  ModelConfig model = ModelConfig::deepseq(/*hidden=*/32, /*t=*/4);
  PaceConfig pace;
  CircuitCacheConfig cache;
  /// Disable to force a full forward pass per request (reference /
  /// cold-path measurement); the structure layer stays active.
  bool cache_embeddings = true;
};

/// Multi-threaded batched embedding service over the existing core/ models.
///
/// submit() never blocks on inference: requests accumulate in a pending
/// window and are coalesced into batches (grouped by circuit identity so a
/// batch's structure work — parse-derived AIG, levelization, PACE ancestor
/// sets — happens once per distinct circuit), then fan out across the
/// worker pool. Results arrive through futures with per-request latency
/// breakdowns. All public methods are thread-safe.
class InferenceEngine {
 public:
  explicit InferenceEngine(const EngineConfig& config);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  const EngineConfig& config() const { return config_; }

  /// Enqueue a request; the future is fulfilled by a worker thread (or
  /// carries the exception the forward pass threw, e.g. on a workload/PI
  /// size mismatch).
  std::future<EmbeddingResult> submit(EmbeddingRequest request);

  /// Dispatch the current partial batch immediately.
  void flush();

  /// flush() + block until every dispatched request has been fulfilled.
  void drain();

  /// Reference path: compute one request synchronously on the calling
  /// thread through the same cache and models. Batched and sync results
  /// for identical inputs are bit-identical.
  EmbeddingResult run_sync(const EmbeddingRequest& request);

  CircuitCache::Stats cache_stats() const { return cache_.stats(); }
  int num_threads() const { return pool_.num_threads(); }

 private:
  struct Pending {
    EmbeddingRequest request;
    std::promise<EmbeddingResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Both circuit digests, computed once per coalesced group so the warm
  /// path does not re-hash per request.
  struct CircuitHashes {
    StructuralHash structural;
    std::uint64_t exact = 0;
  };

  void flusher_loop();
  void dispatch_batch(std::vector<std::unique_ptr<Pending>> batch);
  EmbeddingResult process(const EmbeddingRequest& request,
                          std::chrono::steady_clock::time_point enqueued,
                          const CircuitHashes& hashes);
  std::shared_ptr<const CachedStructure> resolve_structure(
      const Circuit& circuit, const StructureKey& key, bool* hit);

  EngineConfig config_;
  DeepSeqModel model_;
  PaceEncoder pace_;
  std::uint64_t model_fingerprint_ = 0;
  std::uint64_t pace_fingerprint_ = 0;

  CircuitCache cache_;
  ThreadPool pool_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::vector<std::unique_ptr<Pending>> pending_;
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace deepseq::runtime
