// Corpus harness: directory scan determinism, structural-hash dedup,
// manifest shape, strict env resolution and obs instrumentation.

#include "ingest/corpus.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "netlist/verilog_io.hpp"
#include "obs/metrics.hpp"
#include "support/json_check.hpp"

namespace deepseq::ingest {
namespace {

namespace fs = std::filesystem;

Circuit make_design(const std::string& name, std::uint64_t seed,
                    int gates = 120) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.name = name;
  spec.num_gates = gates;
  return generate_circuit(spec, rng);
}

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << content;
}

/// A small corpus tree: three files (one in a subdirectory), five
/// modules, of which two are structural duplicates of earlier ones and
/// one is a non-.v file that must be ignored.
fs::path build_tree(const std::string& tag) {
  const fs::path root = fs::path(::testing::TempDir()) / ("corpus_" + tag);
  fs::remove_all(root);
  const Circuit a = make_design("alpha", 1);
  const Circuit b = make_design("beta", 2, 200);
  const Circuit c = make_design("gamma", 3, 90);
  Circuit a_clone = make_design("alpha_clone", 1);  // same structure as a

  write_file(root / "one.v",
             write_verilog_string(a) + "\n" + write_verilog_string(b));
  write_file(root / "two.v", write_verilog_string(a_clone));
  write_file(root / "sub" / "three.v",
             write_verilog_string(c) + "\n" + write_verilog_string(a));
  write_file(root / "notes.txt", "not verilog");
  return root;
}

TEST(Corpus, ScanDedupsAndOrdersDeterministically) {
  const fs::path root = build_tree("dedup");
  const Corpus corpus = Corpus::scan(root.string());

  // 5 gate-level modules (+1 DFF companion per file with FFs, skipped),
  // minus the alpha_clone and the repeated alpha.
  EXPECT_EQ(corpus.files_scanned(), 3u);
  ASSERT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.dup_dropped(), 2u);
  EXPECT_GE(corpus.modules_skipped(), 1u);

  // Files scanned in sorted relative-path order; modules in source order.
  EXPECT_EQ(corpus.record(0).name, "alpha");
  EXPECT_EQ(corpus.record(0).file, "one.v");
  EXPECT_EQ(corpus.record(1).name, "beta");
  EXPECT_EQ(corpus.record(2).name, "gamma");
  EXPECT_EQ(corpus.record(2).file, "sub/three.v");

  for (const auto& entry : corpus) {
    EXPECT_EQ(entry.record.nodes, entry.circuit.num_nodes());
    EXPECT_GT(entry.record.levels, 0);
    EXPECT_GT(entry.record.src_bytes, 0u);
    EXPECT_EQ(entry.record.hash.to_string(),
              structural_hash(entry.circuit).to_string());
  }
  EXPECT_LE(corpus.peak_carry_bytes(), corpus.max_token_bytes());

  // Same tree again: identical manifest modulo timings.
  const Corpus again = Corpus::scan(root.string());
  ASSERT_EQ(again.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus.record(i).name, again.record(i).name);
    EXPECT_EQ(corpus.record(i).hash.to_string(),
              again.record(i).hash.to_string());
  }
}

TEST(Corpus, DedupOffKeepsIsomorphsAndUniquifiesNames) {
  const fs::path root = build_tree("nodedup");
  CorpusOptions options;
  options.dedup = false;
  const Corpus corpus = Corpus::scan(root.string(), options);
  ASSERT_EQ(corpus.size(), 5u);
  EXPECT_EQ(corpus.dup_dropped(), 0u);
  // Scan order is one.v, sub/three.v, two.v; "alpha" appears in the
  // first two, so its second occurrence gets the ~2 suffix.
  EXPECT_EQ(corpus.record(0).name, "alpha");
  EXPECT_EQ(corpus.record(3).name, "alpha~2");
  EXPECT_EQ(corpus.record(4).name, "alpha_clone");
}

TEST(Corpus, ThreadCountDoesNotChangeTheManifest) {
  const fs::path root = build_tree("threads");
  std::string manifests[3];
  int i = 0;
  for (const int threads : {1, 2, 4}) {
    CorpusOptions options;
    options.ingest.threads = threads;
    options.ingest.chunk_bytes = 256;
    const Corpus corpus = Corpus::scan(root.string(), options);
    std::string m = corpus.manifest_json();
    // Blank out the timing fields, which legitimately vary run to run.
    for (const char* key : {"\"elapsed_ms\":", "\"parse_ms\":"}) {
      std::size_t pos = 0;
      while ((pos = m.find(key, pos)) != std::string::npos) {
        pos += std::string(key).size();
        const std::size_t end = m.find_first_of(",}", pos);
        m.replace(pos, end - pos, "0");
      }
    }
    manifests[i++] = std::move(m);
  }
  EXPECT_EQ(manifests[0], manifests[1]);
  EXPECT_EQ(manifests[0], manifests[2]);
}

TEST(Corpus, ManifestIsValidJsonWithExpectedFields) {
  const fs::path root = build_tree("manifest");
  const Corpus corpus = Corpus::scan(root.string());
  const std::string json = corpus.manifest_json();
  EXPECT_TRUE(deepseq::testing::valid_json(json)) << json;
  for (const char* key :
       {"\"root\":", "\"files\":3", "\"num_designs\":3", "\"dup_dropped\":2",
        "\"peak_carry_bytes\":", "\"max_token_bytes\":", "\"designs\":[",
        "\"name\":\"alpha\"", "\"file\":\"sub/three.v\"", "\"levels\":",
        "\"hash\":\"", "\"parse_ms\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Corpus, ScanFailsFastOnBadInputs) {
  EXPECT_THROW(Corpus::scan("/nonexistent/corpus/root"), Error);

  // A malformed file surfaces with its relative path prepended.
  const fs::path root = fs::path(::testing::TempDir()) / "corpus_bad";
  fs::remove_all(root);
  write_file(root / "broken.v", "module oops (a;\n");
  try {
    Corpus::scan(root.string());
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("broken.v: "), std::string::npos)
        << e.what();
  }
}

TEST(Corpus, ScanFromEnvIsStrict) {
  ::unsetenv("DEEPSEQ_CORPUS_DIR");
  try {
    Corpus::scan_from_env();
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DEEPSEQ_CORPUS_DIR"),
              std::string::npos);
  }
  ::setenv("DEEPSEQ_CORPUS_DIR", "/nonexistent/corpus/root", 1);
  EXPECT_THROW(Corpus::scan_from_env(), Error);

  const fs::path root = build_tree("env");
  ::setenv("DEEPSEQ_CORPUS_DIR", root.string().c_str(), 1);
  EXPECT_EQ(Corpus::scan_from_env().size(), 3u);
  ::unsetenv("DEEPSEQ_CORPUS_DIR");
}

TEST(Corpus, ScansAreCountedInTheGlobalRegistry) {
  auto& reg = obs::Registry::global();
  const std::uint64_t files0 = reg.counter("ingest.files").value();
  const std::uint64_t designs0 = reg.counter("ingest.designs").value();
  const std::uint64_t dups0 = reg.counter("ingest.dup_dropped").value();
  const std::uint64_t hist0 = reg.histogram("ingest.parse_ns").snapshot().count;

  const fs::path root = build_tree("obs");
  const Corpus corpus = Corpus::scan(root.string());

  EXPECT_EQ(reg.counter("ingest.files").value() - files0,
            corpus.files_scanned());
  EXPECT_EQ(reg.counter("ingest.designs").value() - designs0, corpus.size());
  EXPECT_EQ(reg.counter("ingest.dup_dropped").value() - dups0,
            corpus.dup_dropped());
  EXPECT_EQ(reg.histogram("ingest.parse_ns").snapshot().count - hist0,
            corpus.size());
}

}  // namespace
}  // namespace deepseq::ingest
