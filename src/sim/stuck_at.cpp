#include "sim/stuck_at.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace deepseq {

std::vector<StuckAtFault> enumerate_stuck_at_faults(const Circuit& c) {
  std::vector<StuckAtFault> out;
  out.reserve(2 * c.num_nodes());
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.type(v) == GateType::kConst0) continue;  // already constant
    out.push_back({v, false});
    out.push_back({v, true});
  }
  return out;
}

StuckAtResult simulate_stuck_at(const Circuit& c, const Workload& w,
                                const std::vector<StuckAtFault>& faults,
                                const StuckAtOptions& opt) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("simulate_stuck_at: workload PI count mismatch");
  if (opt.num_cycles <= 0 || opt.num_words <= 0)
    throw Error("simulate_stuck_at: cycles/words must be positive");

  const std::size_t num_pis = c.pis().size();
  const std::size_t num_pos = c.pos().size();
  const auto cycles = static_cast<std::size_t>(opt.num_cycles);

  StuckAtResult result;
  result.faults = faults;
  result.detected.assign(faults.size(), false);

  SequentialSimulator golden(c);
  SequentialSimulator faulty(c);

  for (int word = 0; word < opt.num_words; ++word) {
    // Draw the pattern stream once (identical for golden and every faulty
    // machine) and record the golden PO responses.
    Rng rng(w.pattern_seed + static_cast<std::uint64_t>(word));
    std::vector<std::uint64_t> patterns(cycles * num_pis);
    for (std::size_t cycle = 0; cycle < cycles; ++cycle)
      for (std::size_t k = 0; k < num_pis; ++k)
        patterns[cycle * num_pis + k] = rng.bernoulli_word(w.pi_prob[k]);

    std::vector<std::uint64_t> golden_po(cycles * num_pos);
    golden.reset();
    std::vector<std::uint64_t> pi(num_pis);
    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
      for (std::size_t k = 0; k < num_pis; ++k)
        pi[k] = patterns[cycle * num_pis + k];
      golden.step(pi);
      for (std::size_t p = 0; p < num_pos; ++p)
        golden_po[cycle * num_pos + p] = golden.value(c.pos()[p]);
      golden.clock();
    }

    // Serial fault simulation with early exit on detection.
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (result.detected[f]) continue;
      faulty.clear_forcing();
      faulty.reset();
      faulty.force_stuck(faults[f].node, faults[f].value);
      for (std::size_t cycle = 0; cycle < cycles && !result.detected[f];
           ++cycle) {
        for (std::size_t k = 0; k < num_pis; ++k)
          pi[k] = patterns[cycle * num_pis + k];
        faulty.step(pi);
        for (std::size_t p = 0; p < num_pos; ++p) {
          if (faulty.value(c.pos()[p]) != golden_po[cycle * num_pos + p]) {
            result.detected[f] = true;
            break;
          }
        }
        faulty.clock();
      }
    }
  }

  for (const bool d : result.detected) result.num_detected += d ? 1 : 0;
  return result;
}

StuckAtResult simulate_stuck_at(const Circuit& c, const Workload& w,
                                const StuckAtOptions& opt) {
  return simulate_stuck_at(c, w, enumerate_stuck_at_faults(c), opt);
}

}  // namespace deepseq
