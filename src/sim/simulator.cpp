#include "sim/simulator.hpp"

#include <bit>

#include "common/error.hpp"

namespace deepseq {

SequentialSimulator::SequentialSimulator(const Circuit& c) : c_(c) {
  const Levelization lv = comb_levelize(c);
  for (std::size_t l = 1; l < lv.by_level.size(); ++l)
    for (NodeId v : lv.by_level[l]) eval_order_.push_back(v);
  val_.assign(c.num_nodes(), 0);
}

void SequentialSimulator::reset() {
  val_.assign(c_.num_nodes(), 0);
  if (forced_node_ != kNullNode) val_[forced_node_] = forced_word_;
}

void SequentialSimulator::force_stuck(NodeId v, bool value) {
  forced_node_ = v;
  forced_word_ = value ? ~0ULL : 0ULL;
  val_[v] = forced_word_;
}

void SequentialSimulator::clear_forcing() { forced_node_ = kNullNode; }

void SequentialSimulator::step(const std::vector<std::uint64_t>& pi_words) {
  if (pi_words.size() != c_.pis().size())
    throw Error("SequentialSimulator::step: wrong number of PI words");
  for (std::size_t k = 0; k < pi_words.size(); ++k)
    val_[c_.pis()[k]] = pi_words[k];
  if (forced_node_ != kNullNode) val_[forced_node_] = forced_word_;
  for (NodeId v : eval_order_) {
    const Node& n = c_.node(v);
    switch (n.type) {
      case GateType::kAnd:
        val_[v] = val_[n.fanin[0]] & val_[n.fanin[1]];
        break;
      case GateType::kNot:
        val_[v] = ~val_[n.fanin[0]];
        break;
      case GateType::kBuf:
        val_[v] = val_[n.fanin[0]];
        break;
      case GateType::kOr:
        val_[v] = val_[n.fanin[0]] | val_[n.fanin[1]];
        break;
      case GateType::kNand:
        val_[v] = ~(val_[n.fanin[0]] & val_[n.fanin[1]]);
        break;
      case GateType::kNor:
        val_[v] = ~(val_[n.fanin[0]] | val_[n.fanin[1]]);
        break;
      case GateType::kXor:
        val_[v] = val_[n.fanin[0]] ^ val_[n.fanin[1]];
        break;
      case GateType::kXnor:
        val_[v] = ~(val_[n.fanin[0]] ^ val_[n.fanin[1]]);
        break;
      case GateType::kMux: {
        const std::uint64_t s = val_[n.fanin[0]];
        val_[v] = (s & val_[n.fanin[1]]) | (~s & val_[n.fanin[2]]);
        break;
      }
      case GateType::kConst0:
        val_[v] = 0;
        break;
      case GateType::kPi:
      case GateType::kFf:
        break;  // sources, never in eval_order_
    }
    if (v == forced_node_) val_[v] = forced_word_;
  }
}

void SequentialSimulator::clock() {
  // Two phases so FF->FF chains latch the pre-clock values.
  std::vector<std::uint64_t> next(c_.ffs().size());
  for (std::size_t k = 0; k < c_.ffs().size(); ++k)
    next[k] = val_[c_.fanin(c_.ffs()[k], 0)];
  for (std::size_t k = 0; k < c_.ffs().size(); ++k) val_[c_.ffs()[k]] = next[k];
  if (forced_node_ != kNullNode) val_[forced_node_] = forced_word_;
}

double NodeActivity::mean_toggle_rate() const {
  if (tr01.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < tr01.size(); ++v) sum += tr01[v] + tr10[v];
  return sum / static_cast<double>(tr01.size());
}

double NodeActivity::static_fraction() const {
  if (toggle_count.empty()) return 0.0;
  std::size_t zero = 0;
  for (const auto t : toggle_count) zero += (t == 0);
  return static_cast<double>(zero) / static_cast<double>(toggle_count.size());
}

NodeActivity collect_activity(const Circuit& c, const Workload& w,
                              const ActivityOptions& opt) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("collect_activity: workload PI count mismatch");
  if (opt.num_cycles < 2) throw Error("collect_activity: need >= 2 cycles");

  const std::size_t n = c.num_nodes();
  NodeActivity act;
  act.logic1.assign(n, 0.0);
  act.tr01.assign(n, 0.0);
  act.tr10.assign(n, 0.0);
  act.toggle_count.assign(n, 0);

  std::vector<std::uint64_t> ones(n, 0), c01(n, 0), c10(n, 0);
  SequentialSimulator sim(c);
  std::vector<std::uint64_t> prev(n, 0), pi_words(c.pis().size());
  Rng rng(w.pattern_seed);

  for (int word = 0; word < opt.num_words; ++word) {
    sim.reset();
    for (int cycle = 0; cycle < opt.num_cycles; ++cycle) {
      for (std::size_t k = 0; k < pi_words.size(); ++k)
        pi_words[k] = rng.bernoulli_word(w.pi_prob[k]);
      sim.step(pi_words);
      const auto& val = sim.values();
      if (cycle > 0) {
        for (std::size_t v = 0; v < n; ++v) {
          c01[v] += std::popcount(~prev[v] & val[v]);
          c10[v] += std::popcount(prev[v] & ~val[v]);
        }
      }
      for (std::size_t v = 0; v < n; ++v) {
        ones[v] += std::popcount(val[v]);
        prev[v] = val[v];
      }
      sim.clock();
    }
  }

  const auto lanes = static_cast<std::uint64_t>(opt.num_words) * 64;
  act.logic_samples = lanes * static_cast<std::uint64_t>(opt.num_cycles);
  act.transition_samples = lanes * static_cast<std::uint64_t>(opt.num_cycles - 1);
  for (std::size_t v = 0; v < n; ++v) {
    act.logic1[v] = static_cast<double>(ones[v]) / static_cast<double>(act.logic_samples);
    act.tr01[v] = static_cast<double>(c01[v]) / static_cast<double>(act.transition_samples);
    act.tr10[v] = static_cast<double>(c10[v]) / static_cast<double>(act.transition_samples);
    act.toggle_count[v] = c01[v] + c10[v];
  }
  return act;
}

}  // namespace deepseq
