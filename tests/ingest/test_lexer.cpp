// The chunked streaming lexer is pinned token-for-token (text, order,
// line numbers, error messages) against the legacy whole-text
// tokenize_verilog, at every chunking of the same bytes — the foundation
// of the ingest frontend's bit-identity contract.

#include "ingest/lexer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "netlist/verilog_io.hpp"

namespace deepseq::ingest {
namespace {

/// Run the streaming lexer over `text` cut into `chunk`-sized feeds.
std::vector<VerilogToken> lex_chunked(const std::string& text,
                                      std::size_t chunk,
                                      StreamLexer* out_lexer = nullptr) {
  StreamLexer lexer;
  for (std::size_t pos = 0; pos < text.size(); pos += chunk)
    lexer.feed(std::string_view(text).substr(pos, chunk));
  lexer.finish();
  if (out_lexer != nullptr) *out_lexer = std::move(lexer);
  return out_lexer != nullptr ? out_lexer->tokens()
                              : std::move(lexer.tokens());
}

void expect_token_parity(const std::string& text, std::size_t chunk) {
  const std::vector<VerilogToken> legacy = tokenize_verilog(text);
  const std::vector<VerilogToken> streamed = lex_chunked(text, chunk);
  ASSERT_EQ(legacy.size(), streamed.size())
      << "chunk=" << chunk << " text=" << text.substr(0, 80);
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].text, streamed[i].text) << "token " << i;
    EXPECT_EQ(legacy[i].line, streamed[i].line)
        << "line of token '" << legacy[i].text << "' (" << i << ")";
  }
}

const std::size_t kChunks[] = {1, 2, 3, 7, 64, 4096, std::size_t(-1)};

TEST(StreamLexer, ParityOnRepresentativeSnippets) {
  const std::string snippets[] = {
      "",
      "module m (a); input a; endmodule\n",
      "// line comment only\n",
      "/* block */ module /* mid */ m; endmodule // tail",
      "/* multi\nline\ncomment */ x",
      "assign y = s ? 1'b0 : ~q;\nDFF r (.Q(q), .D(w2));",
      "a/b // division punct then comment\n/c",
      "/**/x/***/y/* * / */z",
      "ident_with_$dollar and1 1'b1 0 42 9'habc",
      "x\n\n\n\ny /* \n\n */ z\n",
      "/",
      "a/",
      "deep//nest\n/*//*/done",
  };
  for (const std::string& text : snippets)
    for (std::size_t chunk : kChunks) expect_token_parity(text, chunk);
}

TEST(StreamLexer, ParityOnGeneratedDesignAtEveryChunkSize) {
  Rng rng(123);
  GeneratorSpec spec;
  spec.num_gates = 400;
  spec.num_ffs = 40;
  const std::string text = write_verilog_string(generate_circuit(spec, rng));
  ASSERT_GT(text.size(), 8000u);
  for (std::size_t chunk : kChunks) expect_token_parity(text, chunk);
}

TEST(StreamLexer, OffsetsPointAtTokenStarts) {
  const std::string text = "module m;\n  wire w1; /* c */ assign w1 = 1'b0;\nendmodule";
  for (std::size_t chunk : {std::size_t(1), std::size_t(5), text.size()}) {
    StreamLexer lexer;
    lex_chunked(text, chunk, &lexer);
    ASSERT_EQ(lexer.tokens().size(), lexer.offsets().size());
    for (std::size_t i = 0; i < lexer.tokens().size(); ++i) {
      const VerilogToken& t = lexer.tokens()[i];
      const std::uint64_t off = lexer.offsets()[i];
      ASSERT_LE(off + t.text.size(), text.size());
      EXPECT_EQ(text.substr(off, t.text.size()), t.text) << "token " << i;
    }
    EXPECT_EQ(lexer.bytes_fed(), text.size());
  }
}

TEST(StreamLexer, CarryIsBoundedByLongestToken) {
  // 1000 copies of a 60-char identifier: whatever the chunking, the only
  // bytes carried across a feed boundary are one partial token.
  std::string text;
  const std::string ident(60, 'x');
  for (int i = 0; i < 1000; ++i) text += ident + " ";
  for (std::size_t chunk : {std::size_t(7), std::size_t(64)}) {
    StreamLexer lexer;
    lex_chunked(text, chunk, &lexer);
    EXPECT_LE(lexer.peak_carry_bytes(), lexer.max_token_bytes());
    EXPECT_EQ(lexer.max_token_bytes(), ident.size());
    // The structural no-slurp bound: carry never scales with input size.
    EXPECT_LE(lexer.peak_carry_bytes(), ident.size());
  }
}

TEST(StreamLexer, ErrorParityWithLegacy) {
  const std::string bad[] = {
      "wire \\esc ;",         // escaped identifier
      "wire w[3:0];",         // vector/bus bracket
      "/* never closed",      // unterminated comment
      "a /* one\ntwo\n",      // unterminated, newline at EOF (line count
                              // matches the legacy off-by-design exactly)
      "x /* ends with star *",
  };
  for (const std::string& text : bad) {
    std::string legacy_what;
    try {
      tokenize_verilog(text);
      FAIL() << "legacy accepted: " << text;
    } catch (const ParseError& e) {
      legacy_what = e.what();
    }
    for (std::size_t chunk : kChunks) {
      try {
        lex_chunked(text, chunk);
        FAIL() << "streamed accepted: " << text << " chunk=" << chunk;
      } catch (const ParseError& e) {
        EXPECT_EQ(legacy_what, std::string(e.what()))
            << "chunk=" << chunk << " text=" << text;
      }
    }
  }
}

}  // namespace
}  // namespace deepseq::ingest
