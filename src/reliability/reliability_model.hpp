#pragma once

#include <memory>
#include <vector>

#include "core/model.hpp"
#include "core/sample.hpp"
#include "sim/fault_sim.hpp"

namespace deepseq {

/// A training instance for the reliability task (paper §V-B1): the circuit
/// and workload of a regular sample plus per-node conditional error
/// probabilities from Monte-Carlo fault simulation. target_err columns are
/// [P(reads 1 | golden 0), P(reads 0 | golden 1)].
struct ReliabilitySample {
  TrainSample base;
  nn::Tensor target_err;  // N x 2
};

/// Attach fault-simulation labels to an existing sample.
ReliabilitySample make_reliability_sample(TrainSample base,
                                          const FaultSimOptions& opt);

/// DeepSeq fine-tuned for reliability: the pre-trained backbone is forked
/// and a fresh 2-d error-probability head is added (paper §V-B1 supervises
/// every node with the 0->1 / 1->0 error probabilities). Circuit-level
/// reliability is read out from the model alone, combining the predicted
/// logic probability with the predicted conditional error probabilities:
///   r(v) = P(v=1)(1 - err10) + P(v=0)(1 - err01),
/// averaged over primary outputs — no simulation at inference time.
class ReliabilityModel {
 public:
  explicit ReliabilityModel(const DeepSeqModel& pretrained);

  /// Predicted error probabilities (N x 2) for one circuit.
  nn::Var forward(nn::Graph& g, const CircuitGraph& graph, const Workload& w,
                  std::uint64_t init_seed) const;

  /// Fine-tune backbone + head with L1 on the error probabilities.
  void fit(const std::vector<ReliabilitySample>& samples, int epochs, float lr,
           std::uint64_t shuffle_seed = 31);

  struct Estimate {
    std::vector<double> node_reliability;
    double circuit_reliability = 1.0;
  };
  /// Model-only reliability estimate of a circuit (needs its PO list).
  Estimate estimate(const CircuitGraph& graph, const Workload& w,
                    const std::vector<NodeId>& pos,
                    std::uint64_t init_seed) const;

  nn::NamedParams params() const;
  /// The error head alone (the "reliability" artifact section).
  nn::NamedParams head_params() const;

 private:
  DeepSeqModel backbone_;
  nn::Mlp err_head_;
};

}  // namespace deepseq
