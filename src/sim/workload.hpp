#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netlist/circuit.hpp"

namespace deepseq {

/// A workload for a sequential netlist is defined by the behaviour of its
/// primary inputs (paper §III-B): per-PI logic-1 probabilities from which a
/// sequential input pattern is drawn. `pi_prob[k]` corresponds to
/// `circuit.pis()[k]`. `pattern_seed` makes the drawn pattern reproducible.
struct Workload {
  std::vector<double> pi_prob;
  std::uint64_t pattern_seed = 1;
};

/// Uniform-random workload: each PI gets an independent logic-1 probability
/// drawn uniformly from [0, 1] (training-set generation, paper §III-B).
Workload random_workload(const Circuit& c, Rng& rng);

/// Low-activity workload emulating realistic testbenches on large designs
/// (paper §V-A1: under a real workload only a few modules are active and
/// ~70% of gates show no transitions). A fraction `active_fraction` of PIs
/// behave randomly; the rest are pinned to constant 0 or 1 (enables, modes,
/// resets) and never toggle.
Workload low_activity_workload(const Circuit& c, Rng& rng,
                               double active_fraction = 0.3);

}  // namespace deepseq
