// Corpus ingestion harness: stream a directory tree of Verilog netlists
// through the chunked parallel frontend (src/ingest/) and emit the
// manifest.
//
//   ingest_corpus [dir]     (dir defaults to DEEPSEQ_CORPUS_DIR, strict)
//
// Knobs: DEEPSEQ_INGEST_THREADS (1 = inline, 0 = hardware), and
// DEEPSEQ_INGEST_CHUNK (lexer window bytes, default 1 MiB). The manifest
// JSON (per-design name/file/bytes/nodes/FFs/levels/structural hash/parse
// time plus scan totals and the no-slurp evidence) is written to
// corpus_manifest.json and summarized on stdout. Exits 1 if the
// structural no-slurp contract is violated (lexer carry-over exceeding
// the longest token — cannot happen by construction; this is the guard
// CI leans on).

#include <cstdio>
#include <fstream>

#include "common/env.hpp"
#include "ingest/corpus.hpp"

using namespace deepseq;

int main(int argc, char** argv) {
  ingest::CorpusOptions options;
  ingest::Corpus corpus = argc > 1 ? ingest::Corpus::scan(argv[1], options)
                                   : ingest::Corpus::scan_from_env();

  const std::string path =
      env_string("DEEPSEQ_MANIFEST", "corpus_manifest.json");
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "ingest_corpus: cannot write %s\n", path.c_str());
      return 1;
    }
    out << corpus.manifest_json() << "\n";
  }

  std::uint64_t nodes = 0, ffs = 0;
  for (const auto& entry : corpus) {
    nodes += entry.record.nodes;
    ffs += entry.record.ffs;
  }
  std::printf(
      "ingest_corpus: %zu designs (%llu nodes, %llu FFs) from %llu files, "
      "%.1f MB in %.0f ms (%.1f MB/s), %llu dups dropped, %llu behavioral "
      "skipped\n",
      corpus.size(), static_cast<unsigned long long>(nodes),
      static_cast<unsigned long long>(ffs),
      static_cast<unsigned long long>(corpus.files_scanned()),
      corpus.total_bytes() / 1e6, corpus.elapsed_ms(),
      corpus.total_bytes() / 1e6 / (corpus.elapsed_ms() / 1e3 + 1e-9),
      static_cast<unsigned long long>(corpus.dup_dropped()),
      static_cast<unsigned long long>(corpus.modules_skipped()));
  std::printf("ingest_corpus: manifest -> %s\n", path.c_str());

  if (corpus.peak_carry_bytes() > corpus.max_token_bytes()) {
    std::fprintf(stderr,
                 "ingest_corpus: no-slurp contract violated: carry %zu > "
                 "max token %zu\n",
                 corpus.peak_carry_bytes(), corpus.max_token_bytes());
    return 1;
  }
  return 0;
}
