#include "artifact/model_io.hpp"

#include <string>

#include "common/error.hpp"

namespace deepseq::artifact {

namespace {

std::string architecture_string(const ModelConfig& m) {
  return m.description() + " T=" + std::to_string(m.iterations) +
         " hidden=" + std::to_string(m.hidden_dim);
}

/// The architecture-defining fields (seed excluded: two models initialized
/// from different seeds still share shapes, and the artifact overwrites
/// every weight anyway).
void require_same_architecture(const ModelConfig& artifact_cfg,
                               const ModelConfig& model_cfg) {
  if (artifact_cfg.aggregator == model_cfg.aggregator &&
      artifact_cfg.propagation == model_cfg.propagation &&
      artifact_cfg.iterations == model_cfg.iterations &&
      artifact_cfg.hidden_dim == model_cfg.hidden_dim)
    return;
  throw Error("artifact: architecture mismatch: artifact holds " +
              architecture_string(artifact_cfg) + ", model is " +
              architecture_string(model_cfg));
}

}  // namespace

void require_kind(const Artifact& a, const std::string& expected) {
  if (a.manifest.backend_kind == expected) return;
  throw Error("artifact: kind mismatch: file holds '" +
              a.manifest.backend_kind + "' weights, expected '" + expected +
              "'");
}

Artifact snapshot(const DeepSeqModel& model,
                  const ReliabilityModel* reliability) {
  Artifact a;
  a.manifest.backend_kind = kKindDeepSeq;
  a.manifest.model = model.config();
  a.add_section(kSectionBackbone, model.backbone_params());
  a.add_section(kSectionRegression, model.head_params());
  if (reliability != nullptr)
    a.add_section(kSectionReliability, reliability->head_params());
  return a;
}

Artifact snapshot(const PaceEncoder& encoder) {
  Artifact a;
  a.manifest.backend_kind = kKindPace;
  a.manifest.pace = encoder.config();
  a.add_section(kSectionEncoder, encoder.params());
  return a;
}

void apply(const Artifact& a, DeepSeqModel& model) {
  require_kind(a, kKindDeepSeq);
  require_same_architecture(a.manifest.model, model.config());
  a.apply_section(kSectionBackbone, model.backbone_params());
  a.apply_section(kSectionRegression, model.head_params());
}

void apply(const Artifact& a, ReliabilityModel& model) {
  require_kind(a, kKindDeepSeq);
  a.apply_section(kSectionReliability, model.head_params());
}

void apply(const Artifact& a, PaceEncoder& encoder) {
  require_kind(a, kKindPace);
  if (a.manifest.pace.hidden_dim != encoder.config().hidden_dim ||
      a.manifest.pace.layers != encoder.config().layers ||
      a.manifest.pace.pos_dim != encoder.config().pos_dim)
    throw Error("artifact: pace architecture mismatch: artifact hidden/layers/"
                "pos_dim = " +
                std::to_string(a.manifest.pace.hidden_dim) + "/" +
                std::to_string(a.manifest.pace.layers) + "/" +
                std::to_string(a.manifest.pace.pos_dim) + ", encoder = " +
                std::to_string(encoder.config().hidden_dim) + "/" +
                std::to_string(encoder.config().layers) + "/" +
                std::to_string(encoder.config().pos_dim));
  a.apply_section(kSectionEncoder, encoder.params());
}

}  // namespace deepseq::artifact
