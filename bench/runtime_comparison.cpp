// Reproduces the §VI runtime observation: DeepSeq inference is a few times
// slower than a parallel logic simulator because its message passing is
// levelized and sequential. We compare bit-parallel simulation of a
// workload (64 lanes, enough cycles for stable probabilities) against one
// no-grad GNN inference on the same circuit. The paper reports 3-4x against
// a commercial simulator; the shape to check is simulator-faster-than-GNN
// with a small constant factor.

#include <benchmark/benchmark.h>

#include "core/model.hpp"
#include "dataset/test_designs.hpp"
#include "netlist/aig.hpp"
#include "power/pipeline.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace deepseq;

struct Setup {
  Circuit aig;
  CircuitGraph graph;
  Workload workload;
  DeepSeqModel model{ModelConfig::deepseq(32, 4)};

  explicit Setup(const char* design_name) {
    const TestDesign d = build_test_design(design_name, 1.0 / 16.0, 7);
    const AigConversion conv = decompose_to_aig(d.netlist);
    aig = conv.aig;
    graph = build_circuit_graph(aig);
    Rng rng(3);
    Workload w_gen = low_activity_workload(d.netlist, rng, 0.3);
    workload = map_workload_to_aig(d.netlist, conv.node_map, aig, w_gen);
  }
};

Setup& setup(const char* name) {
  static Setup ptc("ptc");
  static Setup rtc("rtcclock");
  return (std::string(name) == "ptc") ? ptc : rtc;
}

void BM_LogicSimulation(benchmark::State& state, const char* name) {
  Setup& s = setup(name);
  ActivityOptions opt;
  opt.num_cycles = 2000;
  for (auto _ : state) {
    const NodeActivity act = collect_activity(s.aig, s.workload, opt);
    benchmark::DoNotOptimize(act.logic1.data());
  }
  state.counters["nodes"] = static_cast<double>(s.aig.num_nodes());
}

void BM_DeepSeqInference(benchmark::State& state, const char* name) {
  Setup& s = setup(name);
  for (auto _ : state) {
    nn::Graph g(false);
    const auto out = s.model.forward(g, s.graph, s.workload, 1);
    benchmark::DoNotOptimize(out.tr->value.data());
  }
  state.counters["nodes"] = static_cast<double>(s.graph.num_nodes);
}

BENCHMARK_CAPTURE(BM_LogicSimulation, ptc, "ptc")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DeepSeqInference, ptc, "ptc")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LogicSimulation, rtcclock, "rtcclock")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DeepSeqInference, rtcclock, "rtcclock")->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
