#include "netlist/expand.hpp"

#include "common/error.hpp"

namespace deepseq {

NodeId build_gate_tree(Circuit& c, GateType type, std::vector<NodeId> leaves,
                       const std::string& name) {
  if (leaves.empty()) throw CircuitError("build_gate_tree: no fanins");
  GateType inner = type;
  bool invert = false;
  if (type == GateType::kNand) {
    inner = GateType::kAnd;
    invert = true;
  } else if (type == GateType::kNor) {
    inner = GateType::kOr;
    invert = true;
  }
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
      next.push_back(c.add_gate(inner, {leaves[i], leaves[i + 1]}));
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  if (invert) return c.add_not(leaves[0], name);
  return leaves[0];
}

}  // namespace deepseq
