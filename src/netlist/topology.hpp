#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Logic-level assignment of the combinational view of a sequential circuit:
/// PIs, FFs and constants sit at level 0 (FFs act as pseudo primary inputs,
/// exactly the cycle-removal of the paper's propagation step 1); every other
/// node is 1 + max(fanin level). by_level groups nodes for level-batched
/// processing (simulation and GNN propagation both walk levels in order).
struct Levelization {
  std::vector<int> level;                     // per node
  std::vector<std::vector<NodeId>> by_level;  // nodes grouped by level
  int depth = 0;                              // deepest level index
};

/// Levelize the combinational view. Throws CircuitError on a combinational
/// cycle (call Circuit::validate() first for a better message).
Levelization comb_levelize(const Circuit& c);

/// All nodes in a valid combinational evaluation order: level 0 sources
/// first, then gates by increasing level.
std::vector<NodeId> comb_topo_order(const Circuit& c);

/// The graph baseline DAG-GNNs consume: the full directed graph (including
/// FF D-input edges) with the minimal set of cycle-closing back edges
/// removed by DFS. FFs keep any forward D edges and aggregate like ordinary
/// nodes — this is the "apply a DAG-GNN to a cyclic circuit" strategy the
/// paper contrasts its customized propagation against.
struct AcyclicView {
  std::vector<std::vector<NodeId>> fanins;  // per node, after edge removal
  Levelization levels;                      // levels of the acyclified DAG
  std::size_t num_removed_edges = 0;
};

AcyclicView make_acyclic_view(const Circuit& c);

}  // namespace deepseq
