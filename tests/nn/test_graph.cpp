#include "nn/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/gradcheck.hpp"

namespace deepseq::nn {
namespace {

Var param(std::initializer_list<std::initializer_list<float>> rows) {
  std::vector<std::vector<float>> r;
  for (const auto& row : rows) r.emplace_back(row);
  return make_param(Tensor::from_rows(r));
}

TEST(Graph, AddForwardAndBackward) {
  Graph g;
  Var a = param({{1, 2}});
  Var b = param({{3, 4}});
  Var c = g.add(a, b);
  EXPECT_FLOAT_EQ(c->value.at(0, 1), 6.0f);
  g.backward(c);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b->grad.at(0, 1), 1.0f);
}

TEST(Graph, SubBackwardNegatesSecond) {
  Graph g;
  Var a = param({{5}});
  Var b = param({{2}});
  Var c = g.sub(a, b);
  g.backward(c);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b->grad.at(0, 0), -1.0f);
}

TEST(Graph, MulBackwardIsCrossValue) {
  Graph g;
  Var a = param({{3}});
  Var b = param({{7}});
  g.backward(g.mul(a, b));
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(b->grad.at(0, 0), 3.0f);
}

TEST(Graph, MatmulGradientsMatchFormula) {
  Graph g;
  Var a = param({{1, 2}, {3, 4}});
  Var b = param({{5, 6}, {7, 8}});
  Var c = g.matmul(a, b);
  g.backward(c);
  // dL/dA = 1 * B^T, dL/dB = A^T * 1 (with upstream grad of ones).
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 11.0f);  // 5+6
  EXPECT_FLOAT_EQ(a->grad.at(0, 1), 15.0f);  // 7+8
  EXPECT_FLOAT_EQ(b->grad.at(0, 0), 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(b->grad.at(1, 1), 6.0f);   // 2+4
}

TEST(Graph, GradAccumulatesOnReuse) {
  Graph g;
  Var a = param({{2}});
  Var y = g.add(g.mul(a, a), a);  // y = a^2 + a, dy/da = 2a + 1 = 5
  g.backward(y);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 5.0f);
}

TEST(Graph, ConstantGetsNoGrad) {
  Graph g;
  Var a = param({{2}});
  Var c = g.constant(Tensor::scalar(10.0f));
  Var y = g.mul(a, c);
  g.backward(y);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 10.0f);
  EXPECT_FALSE(c->has_grad());
}

TEST(Graph, NoGradModeRecordsNothing) {
  Graph g(false);
  Var a = param({{2}});
  Var y = g.mul(a, a);
  EXPECT_EQ(g.tape_size(), 0u);
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 4.0f);
  EXPECT_THROW(g.backward(y), Error);
}

TEST(Graph, OpsOnPureConstantsAreNotTaped) {
  Graph g(true);
  Var a = g.constant(Tensor::scalar(1.0f));
  Var b = g.constant(Tensor::scalar(2.0f));
  g.add(a, b);
  EXPECT_EQ(g.tape_size(), 0u);
}

TEST(Graph, SigmoidGradient) {
  Graph g;
  Var a = param({{0.0f}});
  Var y = g.sigmoid(a);
  g.backward(y);
  EXPECT_NEAR(a->grad.at(0, 0), 0.25f, 1e-6);  // s(0)(1-s(0)) = 0.25
}

TEST(Graph, TanhGradient) {
  Graph g;
  Var a = param({{0.0f}});
  g.backward(g.tanh_(a));
  EXPECT_NEAR(a->grad.at(0, 0), 1.0f, 1e-6);
}

TEST(Graph, ReluGradientMask) {
  Graph g;
  Var a = param({{-1.0f, 2.0f}});
  g.backward(g.relu(a));
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(a->grad.at(0, 1), 1.0f);
}

TEST(Graph, OneMinus) {
  Graph g;
  Var a = param({{0.3f}});
  Var y = g.one_minus(a);
  EXPECT_NEAR(y->value.at(0, 0), 0.7f, 1e-6);
  g.backward(y);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), -1.0f);
}

TEST(Graph, ConcatColsSplitsGradients) {
  Graph g;
  Var a = param({{1, 2}});
  Var b = param({{3}});
  Var c = g.concat_cols({a, b});
  EXPECT_EQ(c->value.cols(), 3);
  EXPECT_FLOAT_EQ(c->value.at(0, 2), 3.0f);
  g.backward(c);
  EXPECT_FLOAT_EQ(a->grad.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(b->grad.at(0, 0), 1.0f);
}

TEST(Graph, GatherForwardAndScatterBackward) {
  Graph g;
  Var a = param({{1, 2}, {3, 4}});
  Var b = param({{5, 6}});
  // Gather rows: a[1], b[0], a[1] again (duplicate).
  Var got = g.gather({{a, 1}, {b, 0}, {a, 1}});
  EXPECT_EQ(got->value.rows(), 3);
  EXPECT_FLOAT_EQ(got->value.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(got->value.at(1, 1), 6.0f);
  g.backward(got);
  EXPECT_FLOAT_EQ(a->grad.at(1, 0), 2.0f);  // gathered twice
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(b->grad.at(0, 1), 1.0f);
}

TEST(Graph, GatherRangeChecked) {
  Graph g;
  Var a = param({{1, 2}});
  EXPECT_THROW(g.gather({{a, 3}}), ShapeError);
}

TEST(Graph, SegmentSoftmaxNormalizesPerSegment) {
  Graph g;
  Var s = param({{1.0f}, {2.0f}, {0.5f}, {3.0f}});
  const std::vector<int> seg{0, 0, 1, 1};
  Var y = g.segment_softmax(s, seg, 2);
  EXPECT_NEAR(y->value.at(0, 0) + y->value.at(1, 0), 1.0f, 1e-6);
  EXPECT_NEAR(y->value.at(2, 0) + y->value.at(3, 0), 1.0f, 1e-6);
  EXPECT_GT(y->value.at(1, 0), y->value.at(0, 0));
}

TEST(Graph, SegmentSoftmaxSingletonIsOne) {
  Graph g;
  Var s = param({{-5.0f}});
  Var y = g.segment_softmax(s, {0}, 1);
  EXPECT_NEAR(y->value.at(0, 0), 1.0f, 1e-6);
}

TEST(Graph, SegmentSumForwardBackward) {
  Graph g;
  Var v = param({{1, 1}, {2, 2}, {3, 3}});
  Var y = g.segment_sum(v, {0, 1, 0}, 2);
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y->value.at(1, 0), 2.0f);
  g.backward(y);
  for (int r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(v->grad.at(r, 0), 1.0f);
}

TEST(Graph, MulColBroadcast) {
  Graph g;
  Var v = param({{1, 2}, {3, 4}});
  Var c = param({{2}, {10}});
  Var y = g.mul_col(v, c);
  EXPECT_FLOAT_EQ(y->value.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(y->value.at(1, 0), 30.0f);
  g.backward(y);
  EXPECT_FLOAT_EQ(c->grad.at(0, 0), 3.0f);   // 1+2
  EXPECT_FLOAT_EQ(c->grad.at(1, 0), 7.0f);   // 3+4
  EXPECT_FLOAT_EQ(v->grad.at(1, 1), 10.0f);
}

TEST(Graph, L1LossValueAndGrad) {
  Graph g;
  Var p = param({{1.0f, -1.0f}});
  const Tensor target = Tensor::from_rows({{0.0f, 1.0f}});
  Var loss = g.l1_loss(p, target);
  EXPECT_NEAR(loss->value.at(0, 0), 1.5f, 1e-6);  // (1 + 2)/2
  g.backward(loss);
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(p->grad.at(0, 1), -0.5f);
}

TEST(Graph, WeightedL1IgnoresMaskedEntries) {
  Graph g;
  Var p = param({{1.0f, -1.0f}});
  const Tensor target = Tensor::from_rows({{0.0f, 1.0f}});
  const Tensor weight = Tensor::from_rows({{1.0f, 0.0f}});
  Var loss = g.l1_loss_weighted(p, target, weight);
  EXPECT_NEAR(loss->value.at(0, 0), 1.0f, 1e-6);
  g.backward(loss);
  EXPECT_FLOAT_EQ(p->grad.at(0, 1), 0.0f);
}

TEST(Graph, ClearBreaksLinksButKeepsValues) {
  Graph g;
  Var a = param({{1}});
  Var y = g.add(a, a);
  g.clear();
  EXPECT_EQ(g.tape_size(), 0u);
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 2.0f);
  EXPECT_EQ(y->producer, nullptr);
}

TEST(Graph, DeepChainDoesNotOverflowStackOnDestruction) {
  // 200k chained ops would blow the stack under naive recursive shared_ptr
  // destruction; the tape's clear() breaks links iteratively.
  auto g = std::make_unique<Graph>();
  Var a = make_param(Tensor::scalar(0.001f));
  Var x = a;
  for (int i = 0; i < 200000; ++i) x = g->add(x, a);
  EXPECT_EQ(g->tape_size(), 200000u);
  g.reset();  // must not crash
  SUCCEED();
}

// ---- finite-difference verification of composite expressions --------------

TEST(GradCheck, CompositeExpression) {
  Rng rng(12);
  Var w1 = make_param(Tensor::xavier(4, 3, rng));
  Var w2 = make_param(Tensor::xavier(3, 2, rng));
  Var b = make_param(Tensor(1, 2));
  const Tensor x = Tensor::xavier(5, 4, rng);
  const Tensor target = Tensor::full(5, 2, 0.3f);

  auto forward = [&](Graph& g) {
    Var h = g.tanh_(g.matmul(g.constant(x), w1));
    Var out = g.sigmoid(g.add_row(g.matmul(h, w2), b));
    return g.l1_loss(out, target);
  };
  const auto res = grad_check(forward, {{"w1", w1}, {"w2", w2}, {"b", b}});
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}

TEST(GradCheck, SegmentSoftmaxAttention) {
  Rng rng(21);
  Var w1 = make_param(Tensor::xavier(3, 1, rng));
  Var w2 = make_param(Tensor::xavier(3, 1, rng));
  const Tensor hu = Tensor::xavier(6, 3, rng);
  const Tensor hv = Tensor::xavier(6, 3, rng);
  const std::vector<int> seg{0, 0, 0, 1, 1, 2};
  const Tensor target = Tensor::full(3, 3, 0.1f);

  auto forward = [&](Graph& g) {
    Var scores = g.add(g.matmul(g.constant(hv), w1), g.matmul(g.constant(hu), w2));
    Var alpha = g.segment_softmax(scores, seg, 3);
    Var m = g.segment_sum(g.mul_col(g.constant(hu), alpha), seg, 3);
    return g.l1_loss(m, target);
  };
  const auto res = grad_check(forward, {{"w1", w1}, {"w2", w2}}, 5e-3f, 3);
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}

TEST(GradCheck, GatherMulColPipeline) {
  Rng rng(33);
  Var table = make_param(Tensor::xavier(4, 3, rng));
  Var col = make_param(Tensor::xavier(5, 1, rng));
  const Tensor target = Tensor::full(2, 3, 0.0f);

  auto forward = [&](Graph& g) {
    Var gathered = g.gather({{table, 0}, {table, 2}, {table, 2}, {table, 3}, {table, 1}});
    Var scaled = g.mul_col(gathered, col);
    Var summed = g.segment_sum(scaled, {0, 0, 1, 1, 1}, 2);
    return g.l1_loss(summed, target);
  };
  const auto res = grad_check(forward, {{"table", table}, {"col", col}}, 5e-3f, 6);
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}


TEST(Graph, SegmentMaxForwardPicksColumnwiseMax) {
  Graph g;
  Var v = param({{1.0f, -2.0f}, {0.5f, 4.0f}, {-3.0f, 0.0f}, {2.0f, 1.0f}});
  Var m = g.segment_max(v, {0, 0, 1, 1}, 2);
  EXPECT_FLOAT_EQ(m->value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m->value.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(m->value.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(m->value.at(1, 1), 1.0f);
}

TEST(Graph, SegmentMaxRoutesGradientToArgmaxOnly) {
  Graph g;
  Var v = param({{1.0f, -2.0f}, {0.5f, 4.0f}});
  Var m = g.segment_max(v, {0, 0}, 1);
  g.backward(m);
  EXPECT_FLOAT_EQ(v->grad.at(0, 0), 1.0f);  // col 0 max is row 0
  EXPECT_FLOAT_EQ(v->grad.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(v->grad.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(v->grad.at(1, 1), 1.0f);  // col 1 max is row 1
}

TEST(Graph, SegmentMaxEmptySegmentIsZero) {
  Graph g;
  Var v = param({{3.0f}});
  Var m = g.segment_max(v, {1}, 2);
  EXPECT_FLOAT_EQ(m->value.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m->value.at(1, 0), 3.0f);
}

TEST(Graph, SegmentMaxRejectsSizeMismatch) {
  Graph g;
  Var v = param({{1.0f}, {2.0f}});
  EXPECT_THROW(g.segment_max(v, {0}, 1), ShapeError);
}

TEST(GradCheck, SegmentMaxPipeline) {
  Rng rng(77);
  Var table = make_param(Tensor::xavier(6, 3, rng));
  const std::vector<int> seg{0, 0, 1, 1, 1, 2};
  const Tensor target = Tensor::full(3, 3, 0.2f);
  auto forward = [&](Graph& g) {
    return g.l1_loss(g.segment_max(table, seg, 3), target);
  };
  // Small eps: max is piecewise linear; keep perturbations below the
  // typical gap between competing entries.
  const auto res = grad_check(forward, {{"table", table}}, 1e-3f, 8);
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}

TEST(Graph, SoftmaxCrossEntropyUniformLogitsIsLogC) {
  Graph g;
  Var z = param({{0.0f, 0.0f, 0.0f, 0.0f}});
  Var loss = g.softmax_cross_entropy(z, {2});
  EXPECT_NEAR(loss->value.at(0, 0), std::log(4.0f), 1e-5);
}

TEST(Graph, SoftmaxCrossEntropyGradientIsSoftmaxMinusOnehot) {
  Graph g;
  Var z = param({{1.0f, 2.0f, 3.0f}});
  Var loss = g.softmax_cross_entropy(z, {1});
  g.backward(loss);
  const double e1 = std::exp(1.0), e2 = std::exp(2.0), e3 = std::exp(3.0);
  const double denom = e1 + e2 + e3;
  EXPECT_NEAR(z->grad.at(0, 0), e1 / denom, 1e-5);
  EXPECT_NEAR(z->grad.at(0, 1), e2 / denom - 1.0, 1e-5);
  EXPECT_NEAR(z->grad.at(0, 2), e3 / denom, 1e-5);
}

TEST(Graph, SoftmaxCrossEntropyIsShiftInvariant) {
  Graph g;
  Var a = param({{1.0f, -1.0f}});
  Var b = param({{101.0f, 99.0f}});  // same logits + 100
  Var la = g.softmax_cross_entropy(a, {0});
  Var lb = g.softmax_cross_entropy(b, {0});
  EXPECT_NEAR(la->value.at(0, 0), lb->value.at(0, 0), 1e-5);
}

TEST(Graph, SoftmaxCrossEntropyAveragesOverBatch) {
  Graph g;
  Var z = param({{5.0f, 0.0f}, {0.0f, 5.0f}});
  Var good = g.softmax_cross_entropy(z, {0, 1});   // both confident correct
  Var bad = g.softmax_cross_entropy(z, {1, 0});    // both confident wrong
  EXPECT_LT(good->value.at(0, 0), 0.01f);
  EXPECT_GT(bad->value.at(0, 0), 4.0f);
}

TEST(Graph, SoftmaxCrossEntropyRejectsBadLabels) {
  Graph g;
  Var z = param({{0.0f, 0.0f}});
  EXPECT_THROW(g.softmax_cross_entropy(z, {2}), ShapeError);
  EXPECT_THROW(g.softmax_cross_entropy(z, {0, 1}), ShapeError);
}

TEST(GradCheck, SoftmaxCrossEntropyHead) {
  Rng rng(91);
  Var w = make_param(Tensor::xavier(4, 3, rng));
  const Tensor x = Tensor::xavier(5, 4, rng);
  const std::vector<int> labels{0, 2, 1, 1, 0};
  auto forward = [&](Graph& g) {
    return g.softmax_cross_entropy(g.matmul(g.constant(x), w), labels);
  };
  const auto res = grad_check(forward, {{"w", w}}, 5e-3f, 8);
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}

// ---- state slabs -----------------------------------------------------------

TEST(Slab, GatherReadsRowsAndScatterMakesNextVersion) {
  Graph g(/*grad_enabled=*/false);
  Var v0 = g.slab(Tensor::from_rows({{1, 2}, {3, 4}, {5, 6}}));
  Var rows = g.gather({RowRef{v0, 2}, RowRef{v0, 0}});
  EXPECT_FLOAT_EQ(rows->value.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(rows->value.at(1, 1), 2.0f);

  Var upd = g.constant(Tensor::from_rows({{10, 20}}));
  Var v1 = g.scatter_rows(v0, upd, {1});
  // The overwrite landed in the shared storage; the new version reads it
  // and the untouched rows.
  Var after = g.gather({RowRef{v1, 0}, RowRef{v1, 1}, RowRef{v1, 2}});
  EXPECT_FLOAT_EQ(after->value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(after->value.at(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(after->value.at(1, 1), 20.0f);
  EXPECT_FLOAT_EQ(after->value.at(2, 1), 6.0f);
}

TEST(Slab, VersionIsConsumedExactlyOnce) {
  Graph g(/*grad_enabled=*/false);
  Var v0 = g.slab(Tensor::full(3, 2, 1.0f));
  Var upd = g.constant(Tensor::full(1, 2, 9.0f));
  Var v1 = g.scatter_rows(v0, upd, {0});
  // A second scatter through the dead version must throw, as must a gather
  // of it: rows may already hold v1 data.
  EXPECT_THROW(g.scatter_rows(v0, upd, {1}), Error);
  EXPECT_THROW(g.gather({RowRef{v0, 0}}), Error);
  // The live version still works.
  Var v2 = g.scatter_rows(v1, upd, {2});
  EXPECT_FLOAT_EQ(g.gather({RowRef{v2, 2}})->value.at(0, 1), 9.0f);
}

TEST(Slab, ScatterValidatesShapeAndTargets) {
  Graph g(/*grad_enabled=*/false);
  Var v0 = g.slab(Tensor::full(4, 2, 0.0f));
  Var bad_cols = g.constant(Tensor::full(1, 3, 1.0f));
  EXPECT_THROW(g.scatter_rows(v0, bad_cols, {0}), ShapeError);
  Var two = g.constant(Tensor::full(2, 2, 1.0f));
  EXPECT_THROW(g.scatter_rows(v0, two, {0}), ShapeError);       // row count
  EXPECT_THROW(g.scatter_rows(v0, two, {1, 1}), ShapeError);    // duplicate
  EXPECT_THROW(g.scatter_rows(v0, two, {1, 4}), ShapeError);    // range
  EXPECT_THROW(g.scatter_rows(v0, two, {-1, 1}), ShapeError);   // range
  // None of the rejected calls consumed the version.
  Var v1 = g.scatter_rows(v0, two, {3, 1});  // unsorted targets are fine
  EXPECT_FLOAT_EQ(g.gather({RowRef{v1, 3}})->value.at(0, 0), 1.0f);
}

TEST(Slab, GradEnabledGraphRefusesScatter) {
  Graph g(/*grad_enabled=*/true);
  Var v0 = g.slab(Tensor::full(2, 2, 0.0f));
  Var upd = g.constant(Tensor::full(1, 2, 1.0f));
  EXPECT_THROW(g.scatter_rows(v0, upd, {0}), Error);
}

TEST(Slab, BatchedReadersAreOrderedBeforeOverwrite) {
  // Inside one BatchScope, gathers of the old version record before the
  // scatter that overwrites their rows; the planner must sequence them
  // first, so the gathered values are the OLD rows even though everything
  // executes in one flush.
  Graph g(/*grad_enabled=*/false);
  Var v0 = g.slab(Tensor::from_rows({{1, 1}, {2, 2}}));
  Var old_rows, after;
  {
    BatchScope batch(g);
    old_rows = g.gather({RowRef{v0, 0}, RowRef{v0, 1}});
    Var doubled = g.scale(old_rows, 2.0f);
    Var v1 = g.scatter_rows(v0, doubled, {0, 1});
    after = g.gather({RowRef{v1, 0}, RowRef{v1, 1}});
  }
  EXPECT_FLOAT_EQ(old_rows->value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(old_rows->value.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(after->value.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(after->value.at(1, 0), 4.0f);
}


}  // namespace
}  // namespace deepseq::nn
