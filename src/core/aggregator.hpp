#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "nn/modules.hpp"

namespace deepseq {

/// The aggregation functions compared in Tables II/III.
enum class AggregatorKind {
  kConvSum,       // degree-normalized convolutional sum [12]
  kAttention,     // additive attention, DeepGate/DAGNN style [14][16] (Eq. 5)
  kDualAttention  // the paper's contribution (Eq. 5-7)
};

const char* aggregator_name(AggregatorKind k);

/// Parameterized aggregator producing the per-target message matrix.
///
/// Inputs (built by the propagation loop from the state map):
///   hv_prev_targets — (L x d) state of each target before this update
///   hv_prev_edges   — (E x d) target state replicated along its in-edges
///   hu              — (E x d) source states
///   segment         — edge -> target row index
///
/// Output message width is hidden_dim for conv-sum / attention, and
/// 2*hidden_dim for dual attention (m_TR || m_LG, Eq. 7).
class Aggregator {
 public:
  Aggregator() = default;
  Aggregator(AggregatorKind kind, int hidden_dim, Rng& rng, std::string name);

  AggregatorKind kind() const { return kind_; }
  int message_dim() const;

  nn::Var aggregate(nn::Graph& g, const nn::Var& hv_prev_targets,
                    const nn::Var& hv_prev_edges, const nn::Var& hu,
                    const std::vector<int>& segment, int num_targets) const;

  void collect_params(nn::NamedParams& out) const;

 private:
  AggregatorKind kind_ = AggregatorKind::kConvSum;
  int dim_ = 0;
  std::string name_;
  nn::Linear conv_w_;            // conv-sum
  nn::Var att_w1_, att_w2_;      // Eq. 5 attention scores
  nn::Var gate_w1_, gate_w2_;    // Eq. 6 transition gate (dual attention)
};

}  // namespace deepseq
