// Netlist-level embeddings (paper §VI future work, FGNN-style [9]):
// pool DeepSeq's per-node embeddings into one vector per netlist and use it
// for a downstream netlist-classification task —
//   1. generate netlists from three structurally distinct families,
//   2. embed each with a pre-trained (here: randomly initialized, frozen)
//      DeepSeq backbone + graph-level readout,
//   3. train only the readout + linear head to classify the family,
//   4. report train/held-out accuracy and the embedding distance structure.

#include <cmath>
#include <cstdio>

#include "core/readout.hpp"
#include "dataset/generator.hpp"

using namespace deepseq;

namespace {

GeneratorSpec family_spec(int family) {
  GeneratorSpec spec;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  switch (family) {
    case 0:  // shallow, nearly combinational
      spec.name = "comb";
      spec.num_pis = 10;
      spec.num_ffs = 2;
      spec.num_gates = 80;
      spec.locality = 60.0;
      break;
    case 1:  // register-heavy (pipelines, counters)
      spec.name = "seq";
      spec.num_pis = 6;
      spec.num_ffs = 28;
      spec.num_gates = 80;
      spec.locality = 30.0;
      break;
    default:  // deep and narrow (long combinational chains)
      spec.name = "deep";
      spec.num_pis = 4;
      spec.num_ffs = 8;
      spec.num_gates = 90;
      spec.locality = 6.0;
      break;
  }
  return spec;
}

LabelledNetlist make_instance(int family, std::uint64_t seed) {
  Rng rng(seed);
  const Circuit c = generate_circuit(family_spec(family), rng);
  LabelledNetlist s;
  s.name = family_spec(family).name + "_" + std::to_string(seed);
  s.graph = build_circuit_graph(c);
  s.workload = random_workload(c, rng);
  s.init_seed = seed;
  s.label = family;
  return s;
}

}  // namespace

int main() {
  const int kPerFamilyTrain = 8, kPerFamilyTest = 4;
  std::vector<LabelledNetlist> train, test;
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < kPerFamilyTrain; ++i)
      train.push_back(make_instance(f, 1000 * (f + 1) + i));
    for (int i = 0; i < kPerFamilyTest; ++i)
      test.push_back(make_instance(f, 9000 * (f + 1) + i));
  }
  std::printf("dataset: %zu train / %zu held-out netlists, 3 families\n\n",
              train.size(), test.size());

  const DeepSeqModel backbone(ModelConfig::deepseq(/*hidden=*/16, /*t=*/3));
  NetlistClassifier clf(backbone, PoolKind::kAttention, 3, /*seed=*/7);

  ClassifierTrainOptions opt;
  opt.epochs = 30;
  opt.lr = 5e-3f;
  const auto history = train_classifier(clf, train, opt);
  for (std::size_t e = 0; e < history.size(); e += 10)
    std::printf("epoch %2d: loss %.4f, train acc %.3f\n", history[e].epoch,
                history[e].mean_loss, history[e].train_accuracy);
  std::printf("epoch %2d: loss %.4f, train acc %.3f\n\n", history.back().epoch,
              history.back().mean_loss, history.back().train_accuracy);

  std::printf("train accuracy:    %.3f\n", clf.accuracy(train));
  std::printf("held-out accuracy: %.3f\n\n", clf.accuracy(test));

  std::printf("held-out predictions:\n");
  const char* families[] = {"comb", "seq", "deep"};
  for (const LabelledNetlist& s : test)
    std::printf("  %-12s true=%-5s predicted=%-5s\n", s.name.c_str(),
                families[s.label], families[clf.predict(s)]);
  return 0;
}
