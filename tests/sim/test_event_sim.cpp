#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

/// Drive both backends with the same single-lane pattern and require
/// identical values on every node after every cycle.
void expect_backends_agree(const Circuit& c, std::uint64_t seed, int cycles) {
  SequentialSimulator levelized(c);
  EventDrivenSimulator event(c);
  Rng rng(seed);
  std::vector<std::uint64_t> words(c.pis().size());
  std::vector<bool> bits(c.pis().size());
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t k = 0; k < bits.size(); ++k) {
      bits[k] = rng.bernoulli(0.5);
      words[k] = bits[k] ? 1 : 0;
    }
    levelized.step(words);
    event.step(bits);
    for (NodeId v = 0; v < c.num_nodes(); ++v)
      ASSERT_EQ((levelized.value(v) & 1ULL) != 0, event.value(v))
          << "node " << v << " (" << gate_type_name(c.type(v)) << ") cycle "
          << cycle;
    levelized.clock();
    event.clock();
  }
}

TEST(EventSim, MatchesLevelizedOnS27) {
  expect_backends_agree(iscas89_s27(), 11, 300);
}

TEST(EventSim, MatchesLevelizedOnCounter) {
  expect_backends_agree(counter4(), 12, 300);
}

TEST(EventSim, MatchesLevelizedOnDecomposedCounterAig) {
  const AigConversion conv = decompose_to_aig(counter4());
  expect_backends_agree(conv.aig, 13, 300);
}

/// Property sweep: random generic-gate circuits of varying shape.
class EventSimRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventSimRandom, MatchesLevelized) {
  Rng rng(GetParam());
  GeneratorSpec spec;
  spec.num_pis = 4 + static_cast<int>(rng.uniform_index(8));
  spec.num_ffs = 2 + static_cast<int>(rng.uniform_index(12));
  spec.num_gates = 60 + static_cast<int>(rng.uniform_index(200));
  const Circuit c = generate_circuit(spec, rng);
  expect_backends_agree(c, GetParam() * 7919 + 1, 64);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSimRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EventSim, ConstantInputsCauseNoReEvaluation) {
  const Circuit c = iscas89_s27();
  EventDrivenSimulator sim(c);
  const std::vector<bool> pi(c.pis().size(), false);
  sim.step(pi);  // full initial evaluation
  const std::uint64_t after_first = sim.gate_evaluations();
  EXPECT_EQ(after_first, sim.num_comb_gates());
  // s27 has a feedback loop, so a couple of cycles may still settle FF
  // state; once the state is a fixed point, steps must be free.
  for (int i = 0; i < 10; ++i) {
    sim.clock();
    sim.step(pi);
  }
  const std::uint64_t settled = sim.gate_evaluations();
  sim.clock();
  sim.step(pi);
  EXPECT_EQ(sim.gate_evaluations(), settled);
}

TEST(EventSim, LowActivityEvaluatesFewerGatesThanOblivious) {
  Rng rng(99);
  GeneratorSpec spec;
  spec.num_pis = 12;
  spec.num_ffs = 16;
  spec.num_gates = 300;
  const Circuit c = generate_circuit(spec, rng);
  EventDrivenSimulator sim(c);
  std::vector<bool> pi(c.pis().size(), false);
  const int cycles = 200;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Only PI 0 toggles; everything else is pinned — the low-activity
    // regime of paper §V-A1.
    pi[0] = (cycle & 1) != 0;
    sim.step(pi);
    sim.clock();
  }
  // FF feedback keeps some internal state churning even under constant
  // inputs, so the saving is partial; require a clear (>25%) win over the
  // oblivious per-cycle full evaluation.
  const std::uint64_t oblivious_work =
      static_cast<std::uint64_t>(sim.num_comb_gates()) * cycles;
  EXPECT_LT(sim.gate_evaluations(), oblivious_work * 3 / 4);
}

TEST(EventSim, ResetRestoresInitialState) {
  const Circuit c = counter4();
  EventDrivenSimulator sim(c);
  std::vector<bool> pi(c.pis().size(), true);
  std::vector<bool> first_cycle(c.num_nodes());
  sim.step(pi);
  for (NodeId v = 0; v < c.num_nodes(); ++v) first_cycle[v] = sim.value(v);
  for (int i = 0; i < 9; ++i) {
    sim.clock();
    sim.step(pi);
  }
  sim.reset();
  EXPECT_EQ(sim.gate_evaluations(), 0u);
  EXPECT_EQ(sim.cycles(), 0u);
  sim.step(pi);
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    EXPECT_EQ(sim.value(v), first_cycle[v]) << "node " << v;
}

TEST(EventSim, ClockBeforeFirstStepIsHarmless) {
  const Circuit c = counter4();
  EventDrivenSimulator a(c);
  EventDrivenSimulator b(c);
  a.clock();  // no step yet: FF D values are all stale zeros
  const std::vector<bool> pi(c.pis().size(), true);
  a.step(pi);
  b.step(pi);
  for (NodeId v = 0; v < c.num_nodes(); ++v) EXPECT_EQ(a.value(v), b.value(v));
}

TEST(EventSim, RejectsWrongPiCount) {
  const Circuit c = counter4();
  EventDrivenSimulator sim(c);
  EXPECT_THROW(sim.step(std::vector<bool>(c.pis().size() + 1)), Error);
}

}  // namespace
}  // namespace deepseq
