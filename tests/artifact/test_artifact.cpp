#include "artifact/artifact.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "artifact/model_io.hpp"
#include "common/error.hpp"

namespace deepseq::artifact {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool same_params(const nn::NamedParams& a, const nn::NamedParams& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) return false;
    const nn::Tensor& ta = a[i].second->value;
    const nn::Tensor& tb = b[i].second->value;
    if (!ta.same_shape(tb)) return false;
    if (std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

// The four ModelConfig presets of Tables II/III, at test scale.
std::vector<ModelConfig> all_presets() {
  return {ModelConfig::deepseq(/*hidden=*/8, /*t=*/2),
          ModelConfig::deepseq_simple_attention(/*hidden=*/8, /*t=*/2),
          ModelConfig::dag_conv_gnn(AggregatorKind::kConvSum, /*hidden=*/8),
          ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, /*hidden=*/8,
                                   /*t=*/2)};
}

TEST(Artifact, RoundTripAllModelPresets) {
  int k = 0;
  for (const ModelConfig& cfg : all_presets()) {
    const DeepSeqModel original(cfg);
    Artifact a = snapshot(original);
    const std::string path = tmp_path("preset" + std::to_string(k++) + ".dsqa");
    save_artifact(path, a);

    const Artifact loaded = load_artifact(path);
    EXPECT_EQ(loaded.manifest.backend_kind, kKindDeepSeq);
    EXPECT_EQ(loaded.manifest.content_hash, a.manifest.content_hash);
    EXPECT_EQ(loaded.manifest.model.hidden_dim, cfg.hidden_dim);
    EXPECT_EQ(loaded.manifest.model.iterations, cfg.iterations);
    EXPECT_EQ(loaded.manifest.model.aggregator, cfg.aggregator);
    EXPECT_EQ(loaded.manifest.model.propagation, cfg.propagation);

    // Rebuilding from the artifact reproduces every weight bit-exactly.
    DeepSeqModel rebuilt(loaded.manifest.model);
    apply(loaded, rebuilt);
    EXPECT_TRUE(same_params(original.params(), rebuilt.params()))
        << cfg.description();
  }
}

TEST(Artifact, RoundTripPaceEncoder) {
  PaceConfig cfg;
  cfg.hidden_dim = 8;
  cfg.layers = 2;
  const PaceEncoder original(cfg);
  Artifact a = snapshot(original);
  const std::string path = tmp_path("pace.dsqa");
  save_artifact(path, a);

  const Artifact loaded = load_artifact(path);
  EXPECT_EQ(loaded.manifest.backend_kind, kKindPace);
  PaceEncoder rebuilt(loaded.manifest.pace);
  apply(loaded, rebuilt);
  EXPECT_TRUE(same_params(original.params(), rebuilt.params()));
}

TEST(Artifact, ReliabilityHeadSectionRoundTrips) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  const ReliabilityModel rel(model);
  Artifact a = snapshot(model, &rel);
  EXPECT_TRUE(a.has_section(kSectionReliability));
  const std::string path = tmp_path("rel.dsqa");
  save_artifact(path, a);

  const Artifact loaded = load_artifact(path);
  DeepSeqModel rebuilt(loaded.manifest.model);
  apply(loaded, rebuilt);
  ReliabilityModel rel_rebuilt(rebuilt);
  apply(loaded, rel_rebuilt);
  EXPECT_TRUE(same_params(rel.params(), rel_rebuilt.params()));

  // Without the section, the reliability overload fails fast.
  Artifact bare = snapshot(model);
  ReliabilityModel fresh(model);
  EXPECT_THROW(apply(bare, fresh), Error);
}

TEST(Artifact, SavesAreByteDeterministic) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Artifact a = snapshot(model);
  Artifact b = snapshot(model);
  const std::string pa = tmp_path("det_a.dsqa"), pb = tmp_path("det_b.dsqa");
  save_artifact(pa, a);
  save_artifact(pb, b);
  EXPECT_EQ(read_file(pa), read_file(pb));
  EXPECT_EQ(a.manifest.content_hash, b.manifest.content_hash);
}

TEST(Artifact, MetadataDoesNotAffectContentHash) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Artifact plain = snapshot(model);
  Artifact annotated = snapshot(model);
  annotated.set_metadata("epochs", "50");
  annotated.set_metadata("final_loss", "0.123");
  EXPECT_EQ(plain.content_hash(), annotated.content_hash());

  // ...but different weights always produce a different hash.
  ModelConfig other = ModelConfig::deepseq(8, 1);
  other.seed = 999;
  EXPECT_NE(plain.content_hash(), snapshot(DeepSeqModel(other)).content_hash());

  // Metadata survives the round trip.
  const std::string path = tmp_path("meta.dsqa");
  save_artifact(path, annotated);
  const Artifact loaded = load_artifact(path);
  ASSERT_NE(loaded.find_metadata("epochs"), nullptr);
  EXPECT_EQ(*loaded.find_metadata("epochs"), "50");
  EXPECT_EQ(loaded.find_metadata("absent"), nullptr);
}

TEST(Artifact, MissingFileFailsFast) {
  try {
    (void)load_artifact("/nonexistent/dir/weights.dsqa");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/weights.dsqa"),
              std::string::npos)
        << e.what();
  }
}

TEST(Artifact, TruncationFailsFastAtEveryPrefix) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Artifact a = snapshot(model);
  const std::string path = tmp_path("trunc.dsqa");
  save_artifact(path, a);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 64u);

  // Every proper prefix must be rejected — the trailer marker guarantees
  // even a truncation landing on a record boundary cannot parse cleanly.
  const std::string cut = tmp_path("cut.dsqa");
  for (const double frac : {0.1, 0.5, 0.9, 0.999}) {
    const auto len = static_cast<std::size_t>(bytes.size() * frac);
    write_file(cut, bytes.substr(0, len));
    EXPECT_THROW((void)load_artifact(cut), Error) << "prefix " << len;
  }
  write_file(cut, bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW((void)load_artifact(cut), Error) << "one byte short";
}

TEST(Artifact, CorruptedPayloadFailsContentHashCheck) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Artifact a = snapshot(model);
  const std::string path = tmp_path("corrupt.dsqa");
  save_artifact(path, a);
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one weight bit mid-file
  write_file(path, bytes);
  try {
    (void)load_artifact(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("content hash"), std::string::npos)
        << e.what();
  }
}

TEST(Artifact, WrongFormatVersionFailsFastNamingBoth) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Artifact a = snapshot(model);
  const std::string path = tmp_path("version.dsqa");
  save_artifact(path, a);
  std::string bytes = read_file(path);
  const std::uint32_t future_version = kFormatVersion + 7;
  std::memcpy(bytes.data() + 4, &future_version, sizeof(future_version));
  write_file(path, bytes);
  try {
    (void)load_artifact(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(future_version)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(kFormatVersion)), std::string::npos) << msg;
  }
}

TEST(Artifact, NotAnArtifactFailsFast) {
  const std::string path = tmp_path("garbage.dsqa");
  write_file(path, "definitely not a weights file, but long enough to read");
  EXPECT_THROW((void)load_artifact(path), Error);
}

TEST(Artifact, KindMismatchNamesBothKinds) {
  PaceConfig cfg;
  cfg.hidden_dim = 8;
  cfg.layers = 1;
  Artifact pace_artifact = snapshot(PaceEncoder(cfg));
  DeepSeqModel model(ModelConfig::deepseq(8, 1));
  try {
    apply(pace_artifact, model);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pace"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deepseq"), std::string::npos) << msg;
  }
}

TEST(Artifact, ArchitectureMismatchFailsFast) {
  const DeepSeqModel narrow(ModelConfig::deepseq(8, 1));
  Artifact a = snapshot(narrow);
  DeepSeqModel wider(ModelConfig::deepseq(16, 1));
  EXPECT_THROW(apply(a, wider), Error);
  DeepSeqModel deeper(ModelConfig::deepseq(8, 3));
  EXPECT_THROW(apply(a, deeper), Error);
  // Same architecture, different init seed: applies fine (every weight is
  // overwritten anyway).
  ModelConfig reseeded = ModelConfig::deepseq(8, 1);
  reseeded.seed = 4242;
  DeepSeqModel target(reseeded);
  EXPECT_NO_THROW(apply(a, target));
  EXPECT_TRUE(same_params(narrow.params(), target.params()));
}

TEST(Artifact, SectionAndTensorLookupErrors) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Artifact a = snapshot(model);
  EXPECT_THROW((void)a.section("no-such-section"), Error);
  EXPECT_THROW(a.add_section(kSectionBackbone, nn::NamedParams{}),
               Error);  // duplicate

  // apply_section: a param absent from the section fails fast; extra
  // section entries are fine (subset application).
  nn::NamedParams unknown{{"not_a_weight", nn::make_param(nn::Tensor(1, 1))}};
  EXPECT_THROW(a.apply_section(kSectionBackbone, unknown), Error);
  const nn::NamedParams backbone = model.backbone_params();
  nn::NamedParams wrong_shape{
      {backbone[0].first, nn::make_param(nn::Tensor(1, 1))}};
  EXPECT_THROW(a.apply_section(kSectionBackbone, wrong_shape), Error);
  nn::NamedParams subset{backbone[0]};
  EXPECT_NO_THROW(a.apply_section(kSectionBackbone, subset));
}

}  // namespace
}  // namespace deepseq::artifact
