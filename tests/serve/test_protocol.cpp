// Wire-protocol codec tests: every message type round-trips bit-identically
// (floats travel as raw IEEE-754 bit patterns — the tier's acceptance
// contract), every decoder is fail-fast on truncation, trailing bytes,
// unknown enums and version skew, and the FrameParser reassembles frames
// from arbitrary byte fragmentation.

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/structural_hash.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"

namespace deepseq::serve {
namespace {

// A small sequential netlist exercising every wire feature: FF feedback
// (set_fanin closes the loop to a LATER node id, so decode must wire in two
// passes), node and PO names (the power task matches nets by name), and a
// node that is both PO and FF fanin.
Circuit wire_circuit() {
  Circuit c("wire");
  const NodeId a = c.add_pi("in_a");
  const NodeId b = c.add_pi("in_b");
  const NodeId ff = c.add_ff(kNullNode, "state");
  const NodeId g1 = c.add_and(a, ff, "g1");
  const NodeId g2 = c.add_not(b, "g2");
  const NodeId g3 = c.add_and(g1, g2, "g3");
  c.set_fanin(ff, 0, g3);  // feedback: FF created before its D source
  c.add_po(g3, "out");
  c.add_po(ff, "state_out");
  c.validate();
  return c;
}

Workload wire_workload() {
  Workload wl;
  wl.pattern_seed = 0x1234'5678'9abc'def0ULL;
  wl.pi_prob = {0.0, 1.0, 0.4999999999999999, 1e-300};
  return wl;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

bool bits_equal(float a, float b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(ServeProtocol, CircuitRoundTripPreservesStructureAndNames) {
  const Circuit c = wire_circuit();
  WireWriter w;
  encode_circuit(w, c);
  WireReader r(w.data());
  const Circuit d = decode_circuit(r);
  EXPECT_EQ(r.remaining(), 0u);

  ASSERT_EQ(d.num_nodes(), c.num_nodes());
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    EXPECT_EQ(d.type(id), c.type(id)) << "node " << id;
    ASSERT_EQ(d.num_fanins(id), c.num_fanins(id)) << "node " << id;
    for (int s = 0; s < c.num_fanins(id); ++s)
      EXPECT_EQ(d.fanin(id, s), c.fanin(id, s)) << "node " << id;
    EXPECT_EQ(d.node_name(id), c.node_name(id)) << "node " << id;
  }
  EXPECT_EQ(d.name(), c.name());
  EXPECT_EQ(d.pis(), c.pis());
  EXPECT_EQ(d.ffs(), c.ffs());
  ASSERT_EQ(d.pos(), c.pos());
  for (std::size_t k = 0; k < c.pos().size(); ++k)
    EXPECT_EQ(d.po_name(k), c.po_name(k));
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(structural_hash(d), structural_hash(c));
  EXPECT_EQ(exact_hash(d), exact_hash(c));
}

TEST(ServeProtocol, WorkloadRoundTripIsBitIdentical) {
  const Workload wl = wire_workload();
  WireWriter w;
  encode_workload(w, wl);
  WireReader r(w.data());
  const Workload d = decode_workload(r);
  EXPECT_EQ(d.pattern_seed, wl.pattern_seed);
  ASSERT_EQ(d.pi_prob.size(), wl.pi_prob.size());
  for (std::size_t i = 0; i < wl.pi_prob.size(); ++i)
    EXPECT_TRUE(bits_equal(d.pi_prob[i], wl.pi_prob[i])) << "pi " << i;
}

TEST(ServeProtocol, TensorRoundTripPreservesEveryBitPattern) {
  nn::Tensor t(2, 3);
  t.at(0, 0) = 0.0f;
  t.at(0, 1) = -0.0f;  // signed zero survives
  t.at(0, 2) = std::numeric_limits<float>::infinity();
  t.at(1, 0) = -std::numeric_limits<float>::denorm_min();
  t.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  t.at(1, 2) = 1.0f / 3.0f;
  WireWriter w;
  encode_tensor(w, t);
  WireReader r(w.data());
  const nn::Tensor d = decode_tensor(r);
  ASSERT_EQ(d.rows(), t.rows());
  ASSERT_EQ(d.cols(), t.cols());
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_TRUE(bits_equal(d.data()[i], t.data()[i])) << "element " << i;
}

TEST(ServeProtocol, TaskRequestRoundTrip) {
  TaskRequestMsg m;
  m.request_id = 0xfeed'beef'cafe'f00dULL;
  m.task = api::TaskKind::kPower;
  m.backend = "deepseq";
  m.init_seed = 42;
  m.deadline_ms = 1500;
  m.circuit = wire_circuit();
  m.workload = wire_workload();

  const TaskRequestMsg d = decode_task_request(encode(m));
  EXPECT_EQ(d.request_id, m.request_id);
  EXPECT_EQ(d.task, m.task);
  EXPECT_EQ(d.backend, m.backend);
  EXPECT_EQ(d.init_seed, m.init_seed);
  EXPECT_EQ(d.deadline_ms, m.deadline_ms);
  EXPECT_EQ(structural_hash(d.circuit), structural_hash(m.circuit));
  EXPECT_EQ(d.workload.pattern_seed, m.workload.pattern_seed);
  EXPECT_EQ(d.workload.pi_prob.size(), m.workload.pi_prob.size());
}

TEST(ServeProtocol, RequestIdLeadsEveryRequestPayload) {
  // The server peeks the first 8 payload bytes to address a typed error for
  // a frame it cannot decode — pin that layout for every request type.
  const std::uint64_t id = 0x0102'0304'0506'0708ULL;
  TaskRequestMsg task;
  task.request_id = id;
  task.circuit = wire_circuit();
  ReloadRequestMsg reload;
  reload.request_id = id;
  reload.artifact_ref = "model@latest";
  StatsRequestMsg stats;
  stats.request_id = id;
  for (const std::string& payload :
       {encode(task), encode(reload), encode(stats)}) {
    ASSERT_GE(payload.size(), 8u);
    std::uint64_t lead = 0;
    std::memcpy(&lead, payload.data(), 8);
    EXPECT_EQ(lead, id);
  }
}

TEST(ServeProtocol, VersionMismatchIsRejectedTyped) {
  TaskRequestMsg m;
  m.circuit = wire_circuit();
  std::string payload = encode(m);
  payload[8] = 9;  // version u32 follows the 8-byte request id
  try {
    decode_task_request(payload);
    FAIL() << "version skew must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(ServeProtocol, UnknownTaskKindIsRejected) {
  TaskRequestMsg m;
  m.circuit = wire_circuit();
  std::string payload = encode(m);
  payload[12] = 17;  // kind byte follows id + version
  EXPECT_THROW(decode_task_request(payload), Error);
}

TEST(ServeProtocol, TruncationAlwaysThrowsNeverMisreads) {
  TaskRequestMsg m;
  m.request_id = 7;
  m.backend = "deepseq";
  m.circuit = wire_circuit();
  m.workload = wire_workload();
  const std::string payload = encode(m);
  for (std::size_t n = 0; n < payload.size(); ++n)
    EXPECT_THROW(decode_task_request(payload.substr(0, n)), Error)
        << "prefix " << n;
}

TEST(ServeProtocol, TrailingBytesAreRejected) {
  TaskRequestMsg m;
  m.circuit = wire_circuit();
  EXPECT_THROW(decode_task_request(encode(m) + '\0'), Error);
  StatsRequestMsg s;
  EXPECT_THROW(decode_stats_request(encode(s) + "x"), Error);
}

api::TaskResult result_for(api::TaskKind kind) {
  api::TaskResult res;
  res.task = kind;
  res.backend = "deepseq";
  res.structure.digest = 0xabcdef;
  res.structure.num_nodes = 9;
  res.structure.num_pis = 2;
  res.structure.num_pos = 2;
  res.structure.num_ffs = 1;
  res.structure_cache_hit = true;
  res.regression_cache_hit = true;
  res.queue_ms = 0.25;
  res.compute_ms = 1.5;
  res.total_ms = 1.75;
  auto tensor = [](int rows, int cols, float seed) {
    nn::Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i)
      t.data()[i] = seed + 0.125f * static_cast<float>(i);
    return std::make_shared<const nn::Tensor>(std::move(t));
  };
  switch (kind) {
    case api::TaskKind::kEmbedding:
      res.output = api::EmbeddingOutput{tensor(4, 8, 0.5f)};
      break;
    case api::TaskKind::kLogicProb:
      res.output = api::LogicProbOutput{tensor(4, 1, 0.25f)};
      break;
    case api::TaskKind::kTransitionProb:
      res.output = api::TransitionProbOutput{tensor(4, 2, 0.75f)};
      break;
    case api::TaskKind::kPower: {
      api::PowerOutput out;
      out.report.total_watts = 1.5;
      out.report.combinational_watts = 0.75;
      out.report.sequential_watts = 0.5;
      out.report.io_watts = 0.25;
      out.report.nets_matched = 40;
      out.report.nets_missing = 2;
      out.logic1 = {0.1, 0.9, 0.5};
      out.toggle_rate = {0.01, 0.2, 0.33};
      res.output = std::move(out);
      break;
    }
    case api::TaskKind::kReliability: {
      api::ReliabilityOutput out;
      out.circuit_reliability = 0.875;
      out.node_reliability = {1.0, 0.5, 0.25};
      res.output = std::move(out);
      break;
    }
    case api::TaskKind::kTestability: {
      api::TestabilityOutput out;
      out.scoap.cc0 = {1.0, 2.0};
      out.scoap.cc1 = {3.0, 4.0};
      out.scoap.co = {5.0, 6.0};
      out.scoap.controllability_iterations = 3;
      out.scoap.observability_iterations = 2;
      res.output = std::move(out);
      break;
    }
  }
  return res;
}

TEST(ServeProtocol, TaskResponseRoundTripForEveryKind) {
  for (int k = 0; k < kNumTaskKinds; ++k) {
    const api::TaskKind kind = static_cast<api::TaskKind>(k);
    TaskResponseMsg m;
    m.request_id = 100 + static_cast<std::uint64_t>(k);
    m.shard = 3;
    m.result = result_for(kind);

    const TaskResponseMsg d = decode_task_response(encode(m));
    EXPECT_EQ(d.request_id, m.request_id);
    EXPECT_EQ(d.shard, m.shard);
    EXPECT_EQ(d.result.task, kind);
    EXPECT_EQ(d.result.backend, "deepseq");
    EXPECT_EQ(d.result.structure, m.result.structure);
    EXPECT_TRUE(d.result.structure_cache_hit);
    EXPECT_FALSE(d.result.embedding_cache_hit);
    EXPECT_TRUE(d.result.regression_cache_hit);
    EXPECT_TRUE(bits_equal(d.result.queue_ms, m.result.queue_ms));
    EXPECT_TRUE(bits_equal(d.result.compute_ms, m.result.compute_ms));
    EXPECT_TRUE(bits_equal(d.result.total_ms, m.result.total_ms));
    switch (kind) {
      case api::TaskKind::kEmbedding: {
        const auto& a = *m.result.as<api::EmbeddingOutput>().embedding;
        const auto& b = *d.result.as<api::EmbeddingOutput>().embedding;
        ASSERT_EQ(b.rows(), a.rows());
        ASSERT_EQ(b.cols(), a.cols());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
        break;
      }
      case api::TaskKind::kLogicProb:
        EXPECT_EQ(d.result.as<api::LogicProbOutput>().prob->rows(), 4);
        break;
      case api::TaskKind::kTransitionProb:
        EXPECT_EQ(d.result.as<api::TransitionProbOutput>().prob->cols(), 2);
        break;
      case api::TaskKind::kPower: {
        const auto& out = d.result.as<api::PowerOutput>();
        EXPECT_TRUE(bits_equal(out.report.total_watts, 1.5));
        EXPECT_EQ(out.report.nets_matched, 40u);
        EXPECT_EQ(out.report.nets_missing, 2u);
        EXPECT_EQ(out.logic1.size(), 3u);
        EXPECT_TRUE(bits_equal(out.toggle_rate[2], 0.33));
        break;
      }
      case api::TaskKind::kReliability: {
        const auto& out = d.result.as<api::ReliabilityOutput>();
        EXPECT_TRUE(bits_equal(out.circuit_reliability, 0.875));
        EXPECT_EQ(out.node_reliability.size(), 3u);
        break;
      }
      case api::TaskKind::kTestability: {
        const auto& out = d.result.as<api::TestabilityOutput>();
        EXPECT_EQ(out.scoap.cc1, (std::vector<double>{3.0, 4.0}));
        EXPECT_EQ(out.scoap.controllability_iterations, 3);
        EXPECT_EQ(out.scoap.observability_iterations, 2);
        break;
      }
    }
  }
}

TEST(ServeProtocol, ErrorReloadAndStatsRoundTrips) {
  ErrorResponseMsg err;
  err.request_id = 11;
  err.code = ErrorCode::kOverloadDeadline;
  err.detail = "estimated wait 12ms > budget 5ms";
  const ErrorResponseMsg derr = decode_error_response(encode(err));
  EXPECT_EQ(derr.request_id, err.request_id);
  EXPECT_EQ(derr.code, err.code);
  EXPECT_EQ(derr.detail, err.detail);

  ReloadRequestMsg rel;
  rel.request_id = 12;
  rel.backend = "deepseq";
  rel.artifact_ref = "model@1a2b";
  const ReloadRequestMsg drel = decode_reload_request(encode(rel));
  EXPECT_EQ(drel.artifact_ref, rel.artifact_ref);
  EXPECT_EQ(drel.backend, rel.backend);

  ReloadResponseMsg relr;
  relr.request_id = 13;
  relr.fingerprint = 0x1122'3344'5566'7788ULL;
  relr.shards = 4;
  const ReloadResponseMsg drelr = decode_reload_response(encode(relr));
  EXPECT_EQ(drelr.fingerprint, relr.fingerprint);
  EXPECT_EQ(drelr.shards, relr.shards);

  StatsResponseMsg st;
  st.request_id = 14;
  st.json = "{\"ok\":true}";
  EXPECT_EQ(decode_stats_response(encode(st)).json, st.json);
}

TEST(ServeProtocol, InvalidErrorCodeIsRejected) {
  ErrorResponseMsg err;
  err.code = ErrorCode::kBadRequest;
  std::string payload = encode(err);
  payload[8] = 0;  // code byte follows the request id
  EXPECT_THROW(decode_error_response(payload), Error);
  payload[8] = 6;
  EXPECT_THROW(decode_error_response(payload), Error);
}

TEST(ServeProtocol, FrameParserReassemblesByteAtATime) {
  StatsRequestMsg a;
  a.request_id = 1;
  ErrorResponseMsg b;
  b.request_id = 2;
  b.code = ErrorCode::kShuttingDown;
  b.detail = "drain";
  const std::string stream =
      encode_frame(MsgType::kStatsRequest, encode(a)) +
      encode_frame(MsgType::kErrorResponse, encode(b));

  FrameParser parser;
  std::vector<FrameParser::Frame> frames;
  for (char byte : stream) {
    parser.feed(&byte, 1);
    while (auto f = parser.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kStatsRequest);
  EXPECT_EQ(decode_stats_request(frames[0].payload).request_id, 1u);
  EXPECT_EQ(frames[1].type, MsgType::kErrorResponse);
  EXPECT_EQ(decode_error_response(frames[1].payload).detail, "drain");
}

TEST(ServeProtocol, FrameParserRejectsOversizedAndUnknownFrames) {
  // Corrupt length prefix: must throw before trying to buffer 4 GB.
  FrameParser oversized;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  char hdr[5];
  std::memcpy(hdr, &huge, 4);
  hdr[4] = static_cast<char>(MsgType::kStatsRequest);
  oversized.feed(hdr, sizeof hdr);
  EXPECT_THROW(oversized.next(), Error);

  FrameParser unknown;
  const std::string frame = encode_frame(MsgType::kStatsRequest, "");
  std::string bad = frame;
  bad[4] = 99;  // type byte
  unknown.feed(bad.data(), bad.size());
  EXPECT_THROW(unknown.next(), Error);
}

}  // namespace
}  // namespace deepseq::serve
