#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace deepseq {

/// One net's switching record in a SAIF file: durations at 0/1 and the
/// toggle count over the capture window.
struct SaifNet {
  long long t0 = 0;  // time at logic 0
  long long t1 = 0;  // time at logic 1
  long long tc = 0;  // toggle count
};

/// A minimal Switching Activity Interchange Format document — the handoff
/// artifact between the probability estimators and the power analyzer
/// (paper Fig. 3: every method emits a SAIF file which the power tool
/// consumes). Only the subset needed for average-power analysis is modeled.
struct SaifDocument {
  std::string design;
  long long duration = 0;  // capture window (cycles)
  std::vector<std::pair<std::string, SaifNet>> nets;

  /// Fill from per-net probabilities: t1 = p1*duration, tc = rate*duration.
  void add_net(const std::string& name, double logic1_prob,
               double toggle_rate);

  std::unordered_map<std::string, SaifNet> net_map() const;
};

void write_saif(const SaifDocument& doc, std::ostream& out);
std::string write_saif_string(const SaifDocument& doc);
void write_saif_file(const SaifDocument& doc, const std::string& path);

SaifDocument parse_saif(std::istream& in);
SaifDocument parse_saif_string(const std::string& text);
SaifDocument parse_saif_file(const std::string& path);

}  // namespace deepseq
