// Quickstart: the full DeepSeq loop on one small real circuit (ISCAS'89
// s27) in under a minute —
//   1. parse a BENCH netlist and convert it to a sequential AIG,
//   2. define a workload and simulate it for ground-truth probabilities,
//   3. train a small DeepSeq model on a handful of workloads,
//   4. predict logic/transition probabilities for an unseen workload and
//      compare against simulation.

#include <cstdio>

#include "core/trainer.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"
#include "netlist/bench_io.hpp"

using namespace deepseq;

int main() {
  // 1. Circuit: s27 (4 PIs, 3 FFs, 10 gates) -> strict sequential AIG.
  const Circuit s27 = iscas89_s27();
  const Circuit aig = decompose_to_aig(s27).aig;
  std::printf("s27: %zu nodes -> AIG with %zu nodes (%zu AND, %zu NOT, %zu FF)\n",
              s27.num_nodes(), aig.num_nodes(),
              aig.type_counts()[static_cast<int>(GateType::kAnd)],
              aig.type_counts()[static_cast<int>(GateType::kNot)],
              aig.ffs().size());

  // 2. Training data: a few random workloads, each simulated for 2000
  //    cycles (paper §III-B uses 10k cycles and one workload per circuit).
  Rng rng(2024);
  std::vector<TrainSample> train;
  for (int k = 0; k < 6; ++k) {
    Workload w = random_workload(aig, rng);
    train.push_back(make_sample("s27_w" + std::to_string(k), aig, std::move(w),
                                {2000, 1}, rng.next_u64()));
  }

  // 3. Train a small DeepSeq (hidden=16, T=3) with the multi-task L1 loss.
  DeepSeqModel model(ModelConfig::deepseq(16, 3));
  TrainOptions topt;
  topt.epochs = 40;
  topt.lr = 3e-3f;
  topt.batch_size = 2;
  Trainer trainer(model, topt);
  trainer.fit(train);
  std::printf("trained %d epochs on %zu workloads\n", topt.epochs, train.size());

  // 4. Evaluate on an unseen workload.
  Workload test = random_workload(aig, rng);
  const TrainSample truth = make_sample("s27_test", aig, test, {4000, 1}, 99);
  const Predictions pred = predict(model, truth);

  std::printf("\n%-8s %-5s | %8s %8s | %8s %8s\n", "node", "type", "sim P(1)",
              "pred", "sim tgl", "pred");
  std::printf("------------------------------------------------------\n");
  double pe_lg = 0, pe_tr = 0;
  for (int v = 0; v < truth.graph.num_nodes; ++v) {
    pe_lg += std::abs(pred.lg.at(v, 0) - truth.target_lg.at(v, 0));
    pe_tr += 0.5 * (std::abs(pred.tr.at(v, 0) - truth.target_tr.at(v, 0)) +
                    std::abs(pred.tr.at(v, 1) - truth.target_tr.at(v, 1)));
    if (v % 4 != 0) continue;  // print a sample of rows
    std::printf("%-8s %-5s | %8.3f %8.3f | %8.3f %8.3f\n",
                truth.circuit->node_name(v).c_str(),
                std::string(gate_type_name(truth.circuit->type(v))).c_str(),
                truth.target_lg.at(v, 0), pred.lg.at(v, 0),
                truth.target_tr.at(v, 0) + truth.target_tr.at(v, 1),
                pred.tr.at(v, 0) + pred.tr.at(v, 1));
  }
  pe_lg /= truth.graph.num_nodes;
  pe_tr /= truth.graph.num_nodes;
  std::printf("\navg prediction error on unseen workload: LG %.4f, TR %.4f\n",
              pe_lg, pe_tr);
  std::printf("(Eq. 9 of the paper; smaller is better)\n");
  return 0;
}
