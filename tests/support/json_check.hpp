#pragma once

// Minimal validating JSON parser for tests: strict enough to catch the
// bugs hand-rolled serializers actually have (missing commas, unescaped
// strings, trailing garbage, unbalanced brackets), small enough to live in
// a header. valid_json() accepts exactly one top-level value.

#include <cctype>
#include <cstddef>
#include <string>

namespace deepseq::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    pos_ = 0;
    depth_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool value() {
    if (depth_ > kMaxDepth || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* want) {
    for (const char* p = want; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

inline bool valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace deepseq::testing
