// Parity of the record/plan/execute pipeline across thread counts: parallel
// execution must be bit-identical to the sequential path — forward
// embeddings, loss values, and gradients — for every ModelConfig preset, in
// grad and no-grad modes. Chunk boundaries are fixed by the plan and every
// output element is produced by exactly one chunk with the sequential
// inner-loop order, so equality here is exact (memcmp), not approximate.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "nn/executor.hpp"
#include "nn/gradcheck.hpp"
#include "nn/op.hpp"
#include "runtime/thread_pool.hpp"
#include "support/nn_parity.hpp"

namespace deepseq {
namespace {

using nn::Graph;
using nn::Tensor;
using nn::Var;
using testsupport::GradRun;
using testsupport::bit_identical;
using testsupport::parity_fixture;
using testsupport::parity_presets;
using testsupport::train_step_with;

Tensor embed_with(const DeepSeqModel& model, nn::Executor& exec) {
  nn::ExecutorScope scope(exec);
  Graph g(/*grad_enabled=*/false);
  return model.embed(g, parity_fixture().graph, parity_fixture().workload, 7)
      ->value;
}

TEST(Executor, ParallelEmbedBitIdenticalToSequentialForAllPresets) {
  runtime::ThreadPool pool(4);
  nn::Executor sequential;
  for (const ModelConfig& config : parity_presets()) {
    const DeepSeqModel model(config);
    const Tensor reference = embed_with(model, sequential);
    for (const int threads : {2, 4}) {
      nn::Executor parallel(&pool, threads);
      const Tensor got = embed_with(model, parallel);
      EXPECT_TRUE(bit_identical(reference, got))
          << config.description() << " diverges at " << threads << " threads";
    }
  }
}

TEST(Executor, ParallelBackwardBitIdenticalToSequentialForAllPresets) {
  runtime::ThreadPool pool(4);
  nn::Executor sequential;
  for (const ModelConfig& config : parity_presets()) {
    const DeepSeqModel model(config);
    const GradRun reference = train_step_with(model, sequential);
    for (const int threads : {2, 4}) {
      nn::Executor parallel(&pool, threads);
      const GradRun got = train_step_with(model, parallel);
      EXPECT_EQ(reference.loss, got.loss) << config.description();
      ASSERT_EQ(reference.grads.size(), got.grads.size());
      for (std::size_t i = 0; i < reference.grads.size(); ++i)
        EXPECT_TRUE(bit_identical(reference.grads[i], got.grads[i]))
            << config.description() << " grad " << i << " diverges at "
            << threads << " threads";
    }
  }
}

TEST(Executor, ParallelCutsActuallyDispatch) {
  // Guard against silently testing the inline path only: at 4 threads the
  // deepseq preset on this fixture must cross the parallel-dispatch
  // thresholds in at least one cut wave, and chain fusion must actually
  // fuse ops (multi-op chains) rather than degenerate to one op per task.
  // Fusion is pinned on explicitly: the CI matrix also runs this suite
  // under DEEPSEQ_NN_FUSE=0, where unfused plans are the contract.
  const char* prev_fuse = std::getenv("DEEPSEQ_NN_FUSE");
  const std::string prev_fuse_value = prev_fuse != nullptr ? prev_fuse : "";
  ::setenv("DEEPSEQ_NN_FUSE", "1", 1);
  runtime::ThreadPool pool(4);
  nn::Executor parallel(&pool, 4);
  nn::ExecStats stats;
  {
    nn::ExecutorScope scope(parallel);
    nn::ExecTraceScope trace(stats);
    const DeepSeqModel model(ModelConfig::deepseq(32, 2));
    Graph g(false);
    model.embed(g, parity_fixture().graph, parity_fixture().workload, 7);
  }
  EXPECT_GT(stats.flushes, 0);
  EXPECT_GT(stats.barriers, stats.flushes);  // levels plan to multi-cut DAGs
  EXPECT_GT(stats.parallel_cuts, 0);
  EXPECT_GT(stats.steps, stats.barriers);
  EXPECT_GT(stats.chains, 0);
  EXPECT_GT(stats.fused_ops, 0);           // chains longer than one op exist
  EXPECT_GT(stats.chains, stats.barriers);  // cuts hold more than one chain
  if (prev_fuse != nullptr) {
    ::setenv("DEEPSEQ_NN_FUSE", prev_fuse_value.c_str(), 1);
  } else {
    ::unsetenv("DEEPSEQ_NN_FUSE");
  }
}

TEST(Executor, GradCheckPassesUnderFourThreads) {
  // DEEPSEQ_NN_THREADS=4 equivalent: analytic gradients computed through
  // chunked backward kernels must match finite differences. Dimensions are
  // sized to cross the split thresholds.
  runtime::ThreadPool pool(4);
  nn::Executor parallel(&pool, 4);
  nn::ExecutorScope scope(parallel);

  Rng rng(5);
  Var w1 = nn::make_param(Tensor::xavier(48, 64, rng));
  Var w2 = nn::make_param(Tensor::xavier(64, 8, rng));
  Var b = nn::make_param(Tensor(1, 8));
  const Tensor x = Tensor::xavier(96, 48, rng);
  const Tensor target = Tensor::full(96, 8, 0.25f);

  auto forward = [&](Graph& g) {
    Var h = g.tanh_(g.matmul(g.constant(x), w1));
    Var out = g.sigmoid(g.add_row(g.matmul(h, w2), b));
    return g.l1_loss(out, target);
  };
  const auto res = nn::grad_check(forward, {{"w1", w1}, {"w2", w2}, {"b", b}});
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}

TEST(Executor, GradCheckOnModelLossUnderFourThreads) {
  runtime::ThreadPool pool(4);
  nn::Executor parallel(&pool, 4);
  nn::ExecutorScope scope(parallel);

  const DeepSeqModel model(ModelConfig::deepseq(16, 1));
  const Tensor target_lg(parity_fixture().graph.num_nodes, 1);
  auto forward = [&](Graph& g) {
    const auto out = model.forward(g, parity_fixture().graph, parity_fixture().workload, 3);
    return g.l1_loss(out.lg, target_lg);
  };
  // Subset of backbone params keeps the finite-difference sweep fast.
  nn::NamedParams params = model.params();
  params.resize(4);
  for (const auto& [name, p] : params) {
    (void)name;
    if (p->has_grad()) p->grad.zero();
  }
  const auto res = nn::grad_check(forward, params, 1e-2f, 3);
  EXPECT_LT(res.max_rel_error, 0.05) << "worst: " << res.worst_param;
}

TEST(BatchScope, ValuesMaterializeOnScopeExit) {
  Graph g(false);
  Var a = nn::make_constant(Tensor::full(4, 4, 2.0f));
  Var y;
  {
    nn::BatchScope batch(g);
    y = g.add(a, a);
    // Recorded, not yet executed: shape is known, value is not.
    EXPECT_EQ(y->value.rows(), 4);
  }
  EXPECT_FLOAT_EQ(y->value.at(3, 3), 4.0f);
}

TEST(BatchScope, NestedScopesFlushOnceAtOutermostExit) {
  Graph g(false);
  Var a = nn::make_constant(Tensor::full(2, 2, 1.0f));
  Var z;
  {
    nn::BatchScope outer(g);
    Var y = g.add(a, a);
    {
      nn::BatchScope inner(g);
      z = g.mul(y, y);
    }
    // Inner exit must not flush: y (z's input) is still pending.
  }
  EXPECT_FLOAT_EQ(z->value.at(1, 1), 4.0f);
}

TEST(BatchScope, BackwardInsideBatchFlushesFirst) {
  Graph g(true);
  Var a = nn::make_param(Tensor::full(1, 1, 3.0f));
  nn::BatchScope batch(g);
  Var y = g.mul(a, a);
  g.backward(y);  // must flush pending ops before seeding
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 6.0f);
}

TEST(Executor, EnvKnobResolution) {
  // nn_threads_from_env falls back when the variable is unset; the strict
  // env_int parser (PR 2) already rejects trailing garbage.
  EXPECT_GE(nn::nn_threads_from_env(3), 1);
  nn::Executor sequential;
  EXPECT_EQ(sequential.threads(), 1);
  runtime::ThreadPool pool(2);
  nn::Executor two(&pool, 2);
  EXPECT_EQ(two.threads(), 2);
  nn::Executor clamped(&pool, 0);  // <= 1 collapses to the sequential path
  EXPECT_EQ(clamped.threads(), 1);
  EXPECT_EQ(clamped.pool(), nullptr);
}

}  // namespace
}  // namespace deepseq
