#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "dataset/embedded.hpp"

namespace deepseq {
namespace {

Circuit buf_circuit() {
  Circuit c("bufc");
  const NodeId a = c.add_pi("a");
  const NodeId y = c.add_gate(GateType::kBuf, {a}, "y");
  c.add_po(y, "out");
  return c;
}

TEST(Vcd, HeaderDeclaresWatchedVariables) {
  const Circuit c = buf_circuit();
  std::ostringstream out;
  VcdWriter vcd(out, c);
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module bufc"), std::string::npos);
}

TEST(Vcd, InitialSampleDumpsEverythingOnceThenOnlyChanges) {
  const Circuit c = buf_circuit();
  std::ostringstream out;
  VcdWriter vcd(out, c);
  SequentialSimulator sim(c);
  sim.step({0});
  vcd.sample(sim);  // full dump at #0
  sim.clock();
  sim.step({0});
  vcd.sample(sim);  // nothing changed: no #1 stamp
  sim.clock();
  sim.step({~0ULL});
  vcd.sample(sim);  // both nodes change at #2
  const std::string text = out.str();
  EXPECT_NE(text.find("#0\n"), std::string::npos);
  EXPECT_EQ(text.find("#1\n"), std::string::npos);
  EXPECT_NE(text.find("#2\n"), std::string::npos);
  EXPECT_EQ(vcd.timesteps(), 3);
}

TEST(Vcd, LaneSelectsTheRightBit) {
  const Circuit c = buf_circuit();
  std::ostringstream out0, out5;
  VcdWriter v0(out0, c), v5(out5, c);
  SequentialSimulator sim(c);
  sim.step({1ULL << 5});  // only lane 5 is high
  v0.sample(sim, 0);
  v5.sample(sim, 5);
  EXPECT_NE(out0.str().find("0!"), std::string::npos);
  EXPECT_NE(out5.str().find("1!"), std::string::npos);
}

TEST(Vcd, WatchSubsetOnly) {
  const Circuit c = buf_circuit();
  std::ostringstream out;
  VcdWriter vcd(out, c, {c.pis()[0]});
  const std::string text = out.str();
  EXPECT_NE(text.find(" a $end"), std::string::npos);
  EXPECT_EQ(text.find(" y $end"), std::string::npos);
}

TEST(Vcd, DumpProducesParseableWaveOnS27) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob.assign(c.pis().size(), 0.5);
  w.pattern_seed = 6;
  const std::string text = dump_vcd(c, w, 32);
  // One $var per node, a #0 stamp, and at least one later change.
  std::size_t vars = 0, stamps = 0;
  for (std::size_t pos = 0; (pos = text.find("$var", pos)) != std::string::npos;
       ++pos)
    ++vars;
  for (std::size_t pos = 0; (pos = text.find("\n#", pos)) != std::string::npos;
       ++pos)
    ++stamps;
  EXPECT_EQ(vars, c.num_nodes());
  EXPECT_GT(stamps, 1u);
}

TEST(Vcd, RejectsBadArguments) {
  const Circuit c = buf_circuit();
  std::ostringstream out;
  EXPECT_THROW(VcdWriter(out, c, {NodeId{99}}), Error);
  VcdWriter vcd(out, c);
  SequentialSimulator sim(c);
  sim.step({0});
  EXPECT_THROW(vcd.sample(sim, 64), Error);
  Workload bad;
  EXPECT_THROW(dump_vcd(c, bad, 4), Error);
}

}  // namespace
}  // namespace deepseq
