#include "dataset/generator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {
namespace {

TEST(Generator, ProducesValidCircuit) {
  Rng rng(1);
  GeneratorSpec spec;
  const Circuit c = generate_circuit(spec, rng);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.pis().size(), static_cast<std::size_t>(spec.num_pis));
  EXPECT_EQ(c.ffs().size(), static_cast<std::size_t>(spec.num_ffs));
  EXPECT_FALSE(c.pos().empty());
}

TEST(Generator, DeterministicForSameSeed) {
  GeneratorSpec spec;
  Rng r1(9), r2(9);
  const Circuit a = generate_circuit(spec, r1);
  const Circuit b = generate_circuit(spec, r2);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.type_counts(), b.type_counts());
}

TEST(Generator, RespectsGateWeights) {
  Rng rng(3);
  GeneratorSpec spec;
  spec.num_gates = 400;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0;
  spec.gate_weights[static_cast<int>(GateType::kXor)] = 1;
  const Circuit c = generate_circuit(spec, rng);
  const auto counts = c.type_counts();
  EXPECT_EQ(counts[static_cast<int>(GateType::kXor)], 400u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kAnd)], 0u);
}

TEST(Generator, AllWeightsZeroThrows) {
  Rng rng(4);
  GeneratorSpec spec;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0;
  EXPECT_THROW(generate_circuit(spec, rng), Error);
}

TEST(Generator, LocalityControlsDepth) {
  Rng r1(5), r2(5);
  GeneratorSpec shallow, deep;
  shallow.num_gates = deep.num_gates = 300;
  shallow.locality = 150.0;  // far-reaching fanins -> shallow
  deep.locality = 3.0;       // local fanins -> deep chains
  const Circuit cs = generate_circuit(shallow, r1);
  const Circuit cd = generate_circuit(deep, r2);
  EXPECT_GT(comb_levelize(cd).depth, comb_levelize(cs).depth);
}

TEST(Generator, FamilySpecsProduceDifferentScales) {
  Rng rng(6);
  // Averaged over several draws, ITC'99-like circuits are bigger than
  // ISCAS'89-like ones (Table I ordering).
  double iscas = 0, itc = 0;
  for (int k = 0; k < 10; ++k) {
    Rng gen = rng.split();
    iscas += static_cast<double>(
        generate_circuit(iscas89_like_spec(gen), gen).num_nodes());
    Rng gen2 = rng.split();
    itc += static_cast<double>(
        generate_circuit(itc99_like_spec(gen2), gen2).num_nodes());
  }
  EXPECT_GT(itc, iscas * 1.3);
}

TEST(Generator, NoDuplicateFaninsOnBinaryGates) {
  Rng rng(7);
  GeneratorSpec spec;
  spec.num_gates = 300;
  const Circuit c = generate_circuit(spec, rng);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.num_fanins(v) == 2) {
      EXPECT_NE(c.fanin(v, 0), c.fanin(v, 1)) << "node " << v;
    }
  }
}

TEST(Generator, NeedsAtLeastOnePi) {
  Rng rng(8);
  GeneratorSpec spec;
  spec.num_pis = 0;
  EXPECT_THROW(generate_circuit(spec, rng), Error);
}

}  // namespace
}  // namespace deepseq
