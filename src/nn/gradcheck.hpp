#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace deepseq::nn {

/// Finite-difference gradient verification for tests. `forward` must build a
/// scalar loss from scratch on the supplied Graph each call (parameters are
/// perturbed between calls). Returns the maximum relative error between
/// analytic and central-difference gradients over all checked parameters.
struct GradCheckResult {
  double max_rel_error = 0.0;
  std::string worst_param;
  int checked_entries = 0;
};

GradCheckResult grad_check(const std::function<Var(Graph&)>& forward,
                           const std::vector<std::pair<std::string, Var>>& params,
                           float eps = 1e-2f, int max_entries_per_param = 5);

}  // namespace deepseq::nn
