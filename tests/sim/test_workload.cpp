#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include "dataset/embedded.hpp"

namespace deepseq {
namespace {

TEST(Workload, RandomWorkloadCoversAllPis) {
  const Circuit c = iscas89_s27();
  Rng rng(1);
  const Workload w = random_workload(c, rng);
  EXPECT_EQ(w.pi_prob.size(), c.pis().size());
  for (const double p : w.pi_prob) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Workload, RandomWorkloadsDiffer) {
  const Circuit c = iscas89_s27();
  Rng rng(2);
  const Workload w1 = random_workload(c, rng);
  const Workload w2 = random_workload(c, rng);
  EXPECT_NE(w1.pi_prob, w2.pi_prob);
  EXPECT_NE(w1.pattern_seed, w2.pattern_seed);
}

TEST(Workload, LowActivityPinsMostPis) {
  // With many PIs and a small active fraction, most probabilities must be
  // exactly 0 or 1.
  Circuit c("wide");
  for (int i = 0; i < 200; ++i) c.add_pi("p" + std::to_string(i));
  c.add_po(c.add_and(0, 1), "o");
  Rng rng(3);
  const Workload w = low_activity_workload(c, rng, 0.25);
  int pinned = 0;
  for (const double p : w.pi_prob) pinned += (p == 0.0 || p == 1.0);
  EXPECT_GT(pinned, 100);
  EXPECT_LT(pinned, 200);  // some PIs stay active
}

TEST(Workload, ActiveFractionOneKeepsAllRandom) {
  const Circuit c = iscas89_s27();
  Rng rng(4);
  const Workload w = low_activity_workload(c, rng, 1.0);
  for (const double p : w.pi_prob) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

}  // namespace
}  // namespace deepseq
