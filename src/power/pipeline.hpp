#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/trainer.hpp"
#include "dataset/test_designs.hpp"
#include "power/grannite.hpp"
#include "power/power_analyzer.hpp"

namespace deepseq {

/// Options of the Fig. 3 power-estimation pipeline. Paper-scale values are
/// gt_sim_cycles=10000 and finetune_workloads=1000; benches scale these via
/// env knobs (see EXPERIMENTS.md).
/// Distribution the per-design fine-tuning workloads are drawn from
/// (paper §V-A1: "generated with the same pipeline as Section III-B" —
/// random workloads; the options below exist to study the choice at
/// reduced budgets, see bench/ablation_finetune).
enum class FinetuneDist {
  kUniform,      // uniform random per-PI logic-1 probability (§III-B)
  kLowActivity,  // a fraction of PIs active, the rest pinned (deployment-like)
  kMixed,        // alternate between the two
};

const char* finetune_dist_name(FinetuneDist d);

struct PowerPipelineOptions {
  int gt_sim_cycles = 10000;
  int finetune_workloads = 8;
  int finetune_epochs = 4;
  FinetuneDist finetune_dist = FinetuneDist::kLowActivity;
  /// Active-PI fraction of kLowActivity fine-tuning workloads.
  double finetune_active_fraction = 0.3;
  int finetune_sim_cycles = 2000;
  float finetune_lr = 1e-3f;
  /// Gradient-accumulation batch during fine-tuning. Small batches give
  /// more optimizer steps per epoch — important at reduced budgets, where
  /// too few steps leave per-node predictions collapsed at the target
  /// median (~0 on low-activity designs) and power badly underestimated.
  int finetune_batch = 2;
  /// Class-balanced transition loss during fine-tuning (both learned
  /// methods). At the paper's budget (1000 workloads, 50 epochs) the plain
  /// L1 of Eq. 3 discriminates nodes well; at reduced budgets it collapses
  /// predictions to the mostly-zero target median and systematically
  /// underestimates power. Balancing active vs static nodes keeps the
  /// reduced-scale reproduction faithful to the paper's *shape*; see
  /// DESIGN.md. Disabled automatically under DEEPSEQ_FULL by the benches.
  bool balanced_finetune = true;
  /// When non-empty, every method's SAIF file is written here (exercising
  /// the full Fig. 3 artifact flow); power is always computed via SAIF.
  std::string saif_dir;
  std::uint64_t seed = 5150;
  /// Base random-initial-state seed. Fine-tuning sample k uses
  /// init_seed + k (matching pre-training, where every sample draws its
  /// own h0 realization), so the fine-tuned model is robust to the
  /// initialization noise of non-PI states.
  std::uint64_t init_seed = 0x5EEDF00Du;
  /// Inference-time ensemble width: predictions are averaged over this
  /// many h0 realizations (init_seed + 0..k-1). Averaging removes the
  /// init-state variance from the power estimate without touching the
  /// training protocol.
  int inference_init_seeds = 4;
};

/// One Table V/VI row: power per method plus relative error against GT.
struct PowerComparison {
  std::string design;
  std::string workload_id;
  double gt_mw = 0.0;
  double probabilistic_mw = 0.0, probabilistic_error = 0.0;
  double grannite_mw = 0.0, grannite_error = 0.0;
  double deepseq_mw = 0.0, deepseq_error = 0.0;
  /// Fraction of gates with zero transitions under the test workload
  /// (the paper's ~70% observation, §V-A1).
  double static_fraction = 0.0;
};

/// Orchestrates ground-truth simulation, the probabilistic baseline, the
/// fine-tuned Grannite baseline and fine-tuned DeepSeq on a large test
/// design, producing SAIF files and power numbers through one shared
/// analyzer. Fine-tuning forks the supplied pre-trained models, which stay
/// unmodified.
class PowerPipeline {
 public:
  PowerPipeline(const DeepSeqModel& pretrained_deepseq,
                const GranniteModel& pretrained_grannite,
                const PowerPipelineOptions& options);

  /// Fine-tune once on `design`, then evaluate every workload (Table VI).
  std::vector<PowerComparison> run_workloads(
      const TestDesign& design, const std::vector<Workload>& workloads);

  /// Single-workload convenience (Table V rows).
  PowerComparison run(const TestDesign& design, const Workload& workload);

 private:
  const DeepSeqModel& pretrained_deepseq_;
  const GranniteModel& pretrained_grannite_;
  PowerPipelineOptions options_;
};

/// Remap a workload defined on `generic` PIs onto the PI order of its
/// decomposed AIG (decomposition can permute PI creation order).
Workload map_workload_to_aig(const Circuit& generic,
                             const std::vector<NodeId>& node_map,
                             const Circuit& aig, const Workload& w);

/// Power from per-node activity via the pipeline's shared artifact path: a
/// SAIF document over the netlist's node names (logic-1 duty + toggles over
/// `duration` cycles) analyzed by the src/power analyzer — exactly how every
/// method inside PowerPipeline is scored. `logic1`/`toggle_rate` are indexed
/// by NodeId (rate in toggles/cycle) and may come from simulation or from
/// model predictions (the serving layer's power task feeds DeepSeq regress
/// outputs through here). When `saif_path` is non-empty the SAIF file is
/// also written there.
PowerReport power_from_activity(const Circuit& netlist,
                                const std::vector<double>& logic1,
                                const std::vector<double>& toggle_rate,
                                long long duration,
                                const std::string& saif_path = "");

}  // namespace deepseq
