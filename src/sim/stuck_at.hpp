#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// A single stuck-at fault: node `node` permanently reads `value`.
struct StuckAtFault {
  NodeId node = kNullNode;
  bool value = false;
};

/// The collapsed-free full fault list: stuck-at-0 and stuck-at-1 on the
/// output of every node except constants (2N faults).
std::vector<StuckAtFault> enumerate_stuck_at_faults(const Circuit& c);

struct StuckAtOptions {
  int num_cycles = 1000;
  int num_words = 1;  // 64 pattern lanes per word
};

/// Result of serial stuck-at fault simulation under one workload.
struct StuckAtResult {
  std::vector<StuckAtFault> faults;
  std::vector<bool> detected;      // per fault: some PO differed in some cycle
  std::size_t num_detected = 0;

  double coverage() const {
    return faults.empty()
               ? 0.0
               : static_cast<double>(num_detected) /
                     static_cast<double>(faults.size());
  }
};

/// Serial stuck-at fault simulation: the golden machine and one faulty
/// machine run the same bit-parallel pattern stream (64 lanes x
/// num_cycles); a fault is detected when any primary output differs in any
/// lane of any cycle. This is the workhorse behind test-point-insertion
/// flows (DeepTPI [10]) — test points are inserted exactly where stuck-at
/// coverage is poor, which SCOAP's fault_effort predicts.
StuckAtResult simulate_stuck_at(const Circuit& c, const Workload& w,
                                const std::vector<StuckAtFault>& faults,
                                const StuckAtOptions& opt = {});

/// Convenience: full fault list.
StuckAtResult simulate_stuck_at(const Circuit& c, const Workload& w,
                                const StuckAtOptions& opt = {});

}  // namespace deepseq
