#pragma once

// Shared fixture and helpers of the nn bit-identity parity suites
// (tests/nn/test_executor.cpp and tests/nn/test_plan.cpp): both must pin the
// SAME circuit, model presets and loss recipe, or the executor and plan
// legs would silently verify different contracts.

#include <cstring>
#include <vector>

#include "core/model.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "nn/executor.hpp"

namespace deepseq::testsupport {

inline bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  if (!a.same_shape(b)) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// A circuit wide enough that per-level kernels cross the planner's
/// split-work threshold (so the parallel dispatch path actually runs).
struct ParityFixture {
  Circuit aig;
  CircuitGraph graph;
  Workload workload;

  ParityFixture() {
    Rng rng(2024);
    GeneratorSpec spec;
    spec.num_gates = 600;
    spec.num_ffs = 40;
    spec.num_pis = 24;
    const Circuit generic = generate_circuit(spec, rng);
    aig = optimize_aig(decompose_to_aig(generic).aig).circuit;
    graph = build_circuit_graph(aig);
    workload = random_workload(aig, rng);
  }
};

inline ParityFixture& parity_fixture() {
  static ParityFixture f;
  return f;
}

inline std::vector<ModelConfig> parity_presets() {
  return {
      ModelConfig::deepseq(32, 2),
      ModelConfig::deepseq_simple_attention(32, 2),
      ModelConfig::dag_conv_gnn(AggregatorKind::kConvSum, 32),
      ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, 32, 2),
  };
}

struct GradRun {
  float loss = 0.0f;
  std::vector<nn::Tensor> grads;  // per params() entry, in order
};

/// One full training step (forward + both L1 heads + backward) on the
/// shared fixture under `exec`, returning the loss and every parameter
/// gradient for memcmp comparison.
inline GradRun train_step_with(const DeepSeqModel& model, nn::Executor& exec) {
  nn::ExecutorScope scope(exec);
  const auto params = model.params();
  for (const auto& [name, p] : params) {
    (void)name;
    if (p->has_grad()) p->grad.zero();
  }
  nn::Graph g(/*grad_enabled=*/true);
  const auto out =
      model.forward(g, parity_fixture().graph, parity_fixture().workload, 7);
  const nn::Tensor target_tr(parity_fixture().graph.num_nodes, 2);
  const nn::Tensor target_lg(parity_fixture().graph.num_nodes, 1);
  const nn::Var loss =
      g.add(g.l1_loss(out.tr, target_tr), g.l1_loss(out.lg, target_lg));
  g.backward(loss);
  GradRun run;
  run.loss = loss->value.at(0, 0);
  for (const auto& [name, p] : params) {
    (void)name;
    run.grads.push_back(p->has_grad() ? p->grad
                                      : nn::Tensor(p->value.rows(),
                                                   p->value.cols()));
  }
  return run;
}

}  // namespace deepseq::testsupport
