#include "dataset/test_designs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

TEST(TestDesigns, AllSixBuildAndValidate) {
  const auto designs = build_all_test_designs(0.05, 1);
  ASSERT_EQ(designs.size(), 6u);
  const std::vector<std::string> expected{"noc_router", "pll",       "ptc",
                                          "rtcclock",   "ac97_ctrl", "mem_ctrl"};
  for (std::size_t i = 0; i < designs.size(); ++i) {
    EXPECT_EQ(designs[i].name, expected[i]);
    EXPECT_NO_THROW(designs[i].netlist.validate());
    EXPECT_FALSE(designs[i].netlist.pos().empty());
    EXPECT_FALSE(designs[i].description.empty());
  }
}

TEST(TestDesigns, NodeCountsScaleWithPaperTargets) {
  const double scale = 0.05;
  for (const auto& d : build_all_test_designs(scale, 2)) {
    const auto target = static_cast<double>(d.paper_nodes) * scale;
    EXPECT_GT(static_cast<double>(d.netlist.num_nodes()), target * 0.9) << d.name;
    EXPECT_LT(static_cast<double>(d.netlist.num_nodes()), target * 1.6) << d.name;
  }
}

TEST(TestDesigns, PaperNodeCountsMatchTableIV) {
  const auto designs = build_all_test_designs(0.02, 3);
  EXPECT_EQ(designs[0].paper_nodes, 5246);
  EXPECT_EQ(designs[1].paper_nodes, 18208);
  EXPECT_EQ(designs[2].paper_nodes, 2024);
  EXPECT_EQ(designs[3].paper_nodes, 4720);
  EXPECT_EQ(designs[4].paper_nodes, 14004);
  EXPECT_EQ(designs[5].paper_nodes, 10733);
}

TEST(TestDesigns, DeterministicForSameSeed) {
  const TestDesign a = build_test_design("ptc", 0.05, 7);
  const TestDesign b = build_test_design("ptc", 0.05, 7);
  EXPECT_EQ(a.netlist.num_nodes(), b.netlist.num_nodes());
  EXPECT_EQ(a.netlist.type_counts(), b.netlist.type_counts());
}

TEST(TestDesigns, SeedChangesStructure) {
  const TestDesign a = build_test_design("ptc", 0.05, 7);
  const TestDesign b = build_test_design("ptc", 0.05, 8);
  EXPECT_NE(a.netlist.type_counts(), b.netlist.type_counts());
}

TEST(TestDesigns, ContainSequentialAndMixedLogic) {
  for (const auto& d : build_all_test_designs(0.05, 4)) {
    EXPECT_FALSE(d.netlist.ffs().empty()) << d.name;
    EXPECT_FALSE(d.netlist.is_strict_aig()) << d.name;  // multi-gate-type
  }
}

TEST(TestDesigns, DecomposeToStrictAig) {
  // The paper's inference path: decompose every test design to AIG.
  for (const auto& d : build_all_test_designs(0.03, 5)) {
    const AigConversion conv = decompose_to_aig(d.netlist);
    EXPECT_TRUE(conv.aig.is_strict_aig()) << d.name;
    EXPECT_GT(conv.aig.num_nodes(), d.netlist.num_nodes()) << d.name;
  }
}

TEST(TestDesigns, UnknownNameThrows) {
  EXPECT_THROW(build_test_design("cpu9000", 1.0, 1), Error);
}

TEST(TestDesigns, DefaultScaleIsEighthWithoutEnv) {
  ::unsetenv("DEEPSEQ_FULL");
  EXPECT_DOUBLE_EQ(default_design_scale(), 0.125);
  ::setenv("DEEPSEQ_FULL", "1", 1);
  EXPECT_DOUBLE_EQ(default_design_scale(), 1.0);
  ::unsetenv("DEEPSEQ_FULL");
}

}  // namespace
}  // namespace deepseq
