#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace deepseq::nn {

namespace {
constexpr std::uint32_t kMagic = 0x44535130;  // "DSQ0"
constexpr std::uint32_t kMaxNameLen = 1 << 16;
constexpr std::uint32_t kMaxDim = 1 << 24;
// Element cap (2^28 floats = 1 GiB) so a corrupt 8-byte shape header fails
// fast instead of attempting a petabyte allocation.
constexpr std::uint64_t kMaxElements = 1ULL << 28;
}  // namespace

void write_tensor_record(std::ostream& out, const std::string& name,
                         const Tensor& value) {
  // Mirror the reader's bounds so anything written can be read back —
  // never a saved-but-"corrupt" file.
  if (name.size() > kMaxNameLen)
    throw Error("write_tensor_record: name exceeds " +
                std::to_string(kMaxNameLen) + " bytes: '" +
                name.substr(0, 64) + "...'");
  if (value.rows() > static_cast<int>(kMaxDim) ||
      value.cols() > static_cast<int>(kMaxDim) ||
      static_cast<std::uint64_t>(value.size()) > kMaxElements)
    throw Error("write_tensor_record: tensor '" + name + "' shape " +
                value.shape_string() + " exceeds the format's " +
                std::to_string(kMaxElements) + "-element bound");
  const auto len = static_cast<std::uint32_t>(name.size());
  const auto rows = static_cast<std::uint32_t>(value.rows());
  const auto cols = static_cast<std::uint32_t>(value.cols());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(name.data(), len);
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(value.data()),
            static_cast<std::streamsize>(value.size() * sizeof(float)));
}

TensorRecord read_tensor_record(std::istream& in, const std::string& context) {
  std::uint32_t len = 0, rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > kMaxNameLen) throw Error(context + ": corrupt entry");
  TensorRecord rec;
  rec.name.assign(len, '\0');
  in.read(rec.name.data(), len);
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in) throw Error(context + ": truncated file");
  if (rows > kMaxDim || cols > kMaxDim ||
      static_cast<std::uint64_t>(rows) * cols > kMaxElements)
    throw Error(context + ": corrupt shape for '" + rec.name + "'");
  rec.value = Tensor(static_cast<int>(rows), static_cast<int>(cols));
  in.read(reinterpret_cast<char*>(rec.value.data()),
          static_cast<std::streamsize>(rec.value.size() * sizeof(float)));
  if (!in) throw Error(context + ": truncated file");
  return rec;
}

void save_params(const std::string& path, const NamedParams& params) {
  // Sorted-name order makes the file a pure function of the weight values:
  // two models with identical parameters produce byte-identical files no
  // matter what order their modules collected them in.
  std::vector<const std::pair<std::string, Var>*> order;
  order.reserve(params.size());
  for (const auto& entry : params) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("save_params: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto* entry : order)
    write_tensor_record(out, entry->first, entry->second->value);
  if (!out) throw Error("save_params: write failed for " + path);
}

void load_params(const std::string& path, const NamedParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_params: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) throw Error("load_params: bad file format");

  std::unordered_map<std::string, Tensor> loaded;
  for (std::uint32_t k = 0; k < count; ++k) {
    TensorRecord rec = read_tensor_record(in, "load_params");
    loaded.emplace(std::move(rec.name), std::move(rec.value));
  }

  for (const auto& [name, p] : params) {
    auto it = loaded.find(name);
    if (it == loaded.end())
      throw Error("load_params: parameter '" + name + "' missing from " + path);
    if (!it->second.same_shape(p->value))
      throw Error("load_params: shape mismatch for '" + name + "'");
    p->value = it->second;
  }
}

}  // namespace deepseq::nn
