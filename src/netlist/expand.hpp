#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Expand an n-ary AND/OR/NAND/NOR over `leaves` into a balanced tree of
/// 2-input gates (NAND/NOR become NOT(tree) to preserve n-ary semantics).
/// The final node receives `name`. Shared by the BENCH and Verilog parsers,
/// both of whose source formats allow gates with more than two inputs.
NodeId build_gate_tree(Circuit& c, GateType type, std::vector<NodeId> leaves,
                       const std::string& name);

}  // namespace deepseq
