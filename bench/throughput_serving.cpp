// Serving throughput of the unified deepseq::api surface: requests/sec and
// p50/p99 latency vs worker-thread count (1/2/4/8) and cache temperature,
// for every backend registered in the BackendRegistry (the paper's
// levelized DeepSeq propagation and the PACE-style parallel encoder out of
// the box). Each configuration replays the same closed-burst trace twice
// against one Session: the first pass is all-cold (every structure
// prepared, every forward pass computed), the second is warm (the
// structural-hash-keyed cache serves repeats). Emits a table and a JSON
// document (serving_throughput.json) — including queue_ms vs compute_ms
// percentile breakdowns, so queueing delay and forward-pass cost are
// separable — for cross-commit tracking.
//
// Knobs: DEEPSEQ_SERVE_REQUESTS (trace length), DEEPSEQ_SERVE_CIRCUITS,
// DEEPSEQ_SERVE_THREADS (cap the thread sweep, e.g. 2 for CI smoke runs),
// DEEPSEQ_FULL=1 for paper-scale model presets.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/session.hpp"
#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "dataset/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/server_loop.hpp"

using namespace deepseq;
using namespace deepseq::bench;
using namespace deepseq::runtime;

namespace {

struct RunResult {
  double wall_s = 0.0;
  double qps = 0.0;
  LatencySummary latency;
  LatencySummary queue;
  LatencySummary compute;
};

/// Submit the whole trace as fast as possible (closed burst) and drain:
/// wall time measures pipeline throughput, per-request futures measure
/// latency under that load.
RunResult replay(api::Session& session,
                 const std::vector<api::TaskRequest>& trace) {
  std::vector<std::future<api::TaskResult>> futures;
  futures.reserve(trace.size());
  WallTimer t;
  for (const auto& r : trace) futures.push_back(session.submit(r));
  session.drain();
  RunResult out;
  out.wall_s = t.seconds();
  std::vector<double> total_ms, queue_ms, compute_ms;
  total_ms.reserve(futures.size());
  queue_ms.reserve(futures.size());
  compute_ms.reserve(futures.size());
  for (auto& f : futures) {
    const api::TaskResult r = f.get();
    total_ms.push_back(r.total_ms);
    queue_ms.push_back(r.queue_ms);
    compute_ms.push_back(r.compute_ms);
  }
  out.qps = out.wall_s > 0 ? static_cast<double>(trace.size()) / out.wall_s : 0;
  out.latency = summarize_latencies(std::move(total_ms));
  out.queue = summarize_latencies(std::move(queue_ms));
  out.compute = summarize_latencies(std::move(compute_ms));
  return out;
}

/// A named histogram window out of an obs delta (empty snapshot when the
/// metric never fired in the window).
obs::HistogramSnapshot window(const obs::Snapshot& s, const std::string& name) {
  const auto it = s.histograms.find(name);
  return it == s.histograms.end() ? obs::HistogramSnapshot{} : it->second;
}

/// Sum every per-kind counter under `prefix` (e.g. "task.submitted.").
std::uint64_t sum_counters(const obs::Snapshot& s, const std::string& prefix) {
  std::uint64_t total = 0;
  for (const auto& [name, v] : s.counters)
    if (name.rfind(prefix, 0) == 0) total += v;
  return total;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("SERVING", "batched inference via the deepseq::api Session",
               cfg);

  const int num_requests =
      static_cast<int>(env_int("DEEPSEQ_SERVE_REQUESTS", cfg.full ? 512 : 96));
  const int num_circuits =
      static_cast<int>(env_int("DEEPSEQ_SERVE_CIRCUITS", 6));
  const int max_threads =
      static_cast<int>(env_int("DEEPSEQ_SERVE_THREADS", 8));
  const int workloads_per_circuit = 4;

  // Servable fleet: AIG-only generated netlists of increasing size.
  Rng rng(cfg.eval_seed);
  std::vector<std::shared_ptr<const Circuit>> circuits;
  for (int i = 0; i < num_circuits; ++i) {
    GeneratorSpec spec;
    spec.name = "serve" + std::to_string(i);
    spec.num_pis = 6 + i;
    spec.num_ffs = 4 + i;
    spec.num_gates = 80 + 40 * i;
    for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
    spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
    spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
    circuits.push_back(
        std::make_shared<const Circuit>(generate_circuit(spec, rng)));
  }
  std::vector<std::vector<Workload>> workloads(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i)
    for (int k = 0; k < workloads_per_circuit; ++k)
      workloads[i].push_back(random_workload(*circuits[i], rng));

  // Every registered backend gets the same sweep — plugging a new backend
  // into the registry automatically adds its rows here.
  const std::vector<std::string> backends =
      api::BackendRegistry::global().names();

  // DEEPSEQ_ARTIFACT serves tuned weights through the same trace; resolve
  // (and hash-verify) the file once, not per sweep row.
  const auto env_artifact = api::artifact_from_env();

  std::printf("trace: %d requests over %d circuits x %d workloads\n",
              num_requests, num_circuits, workloads_per_circuit);
  std::printf("backends:");
  for (const std::string& b : backends) std::printf(" %s", b.c_str());
  std::printf("\n\n");

  JsonWriter json;
  json.begin_object();
  json.field("bench", "serving_throughput");
  json.field("requests", num_requests);
  json.field("circuits", num_circuits);
  json.begin_array("rows");

  std::vector<double> baseline_cold_qps(backends.size(), 0.0);
  std::vector<double> best_warm_qps(backends.size(), 0.0);

  std::vector<int> thread_sweep;
  for (const int t : {1, 2, 4, 8})
    if (t <= max_threads) thread_sweep.push_back(t);
  if (thread_sweep.empty()) thread_sweep.push_back(1);
  const int speedup_threads = thread_sweep.back();

  for (std::size_t bi = 0; bi < backends.size(); ++bi) {
    const std::string& backend = backends[bi];
    std::printf("%-8s | %7s | %9s %9s %9s | %9s %9s %9s | %8s\n",
                "backend", "threads", "cold q/s", "p50 ms", "p99 ms",
                "warm q/s", "p50 ms", "p99 ms", "hit rate");
    std::printf("%.*s\n", 98, std::string(98, '-').c_str());
    for (const int threads : thread_sweep) {
      // Deterministic trace shared by every configuration.
      Rng trace_rng(4242);
      std::vector<api::TaskRequest> trace;
      for (int i = 0; i < num_requests; ++i) {
        api::TaskRequest r;
        const std::size_t c = trace_rng.uniform_index(circuits.size());
        r.circuit = circuits[c];
        r.workload = workloads[c][trace_rng.uniform_index(workloads_per_circuit)];
        r.task = api::TaskKind::kEmbedding;
        r.backend = backend;
        r.init_seed = 7;
        trace.push_back(std::move(r));
      }

      api::SessionConfig scfg;
      scfg.backend = backend;
      scfg.engine.threads = threads;
      scfg.engine.max_batch = 8;
      scfg.backends.model = ModelConfig::deepseq(cfg.hidden, cfg.iterations);
      scfg.backends.pace.hidden_dim = cfg.hidden;
      // An artifact binds to one backend kind; rows of the other kinds
      // are skipped rather than failing the whole sweep.
      scfg.backends.artifact = env_artifact;
      std::unique_ptr<api::Session> session_ptr;
      try {
        session_ptr = std::make_unique<api::Session>(scfg);
      } catch (const Error& e) {
        if (scfg.backends.artifact == nullptr) throw;
        std::printf("%-8s | skipped under DEEPSEQ_ARTIFACT: %s\n",
                    backend.c_str(), e.what());
        break;
      }
      api::Session& session = *session_ptr;

      // Bracket the row with registry snapshots: the delta isolates this
      // configuration's queue-depth / batch-size distributions on the
      // process-wide registry.
      const obs::Snapshot row_base = obs::Registry::global().snapshot();
      const RunResult cold = replay(session, trace);
      const RunResult warm = replay(session, trace);
      const obs::Snapshot row_obs =
          obs::delta(obs::Registry::global().snapshot(), row_base);
      const auto stats = session.cache_stats();
      const double hit_rate = stats.embeddings.hit_rate();

      if (threads == 1) baseline_cold_qps[bi] = cold.qps;
      if (threads == speedup_threads) best_warm_qps[bi] = warm.qps;

      std::printf("%-8s | %7d | %9.1f %9.2f %9.2f | %9.1f %9.2f %9.2f | %7.0f%%\n",
                  backend.c_str(), threads, cold.qps,
                  cold.latency.p50, cold.latency.p99, warm.qps,
                  warm.latency.p50, warm.latency.p99, 100.0 * hit_rate);

      json.begin_object();
      json.field("backend", backend);
      json.field("threads", threads);
      json.field("nn_threads", session.nn_threads());
      json.field("cold_qps", cold.qps);
      json_summary(json, "cold", cold.latency);
      json_summary(json, "cold_queue", cold.queue);
      json_summary(json, "cold_compute", cold.compute);
      json.field("warm_qps", warm.qps);
      json_summary(json, "warm", warm.latency);
      json_summary(json, "warm_queue", warm.queue);
      json_summary(json, "warm_compute", warm.compute);
      json.field("embedding_hit_rate", hit_rate);
      json.field("structure_hits", stats.structures.hits);
      json.field("structure_misses", stats.structures.misses);
      json.field("regression_hits", stats.regressions.hits);
      // The engine's own view of this row: how full batches ran and how
      // deep the pending window got (distributions, not just means).
      json_histogram(json, "batch_size", window(row_obs, "engine.batch_size"));
      json_histogram(json, "queue_depth",
                     window(row_obs, "engine.queue_depth"));
      json.end_object();
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  json.end_array();
  for (std::size_t bi = 0; bi < backends.size(); ++bi) {
    if (baseline_cold_qps[bi] <= 0) continue;  // skipped under an artifact
    const double speedup = best_warm_qps[bi] / baseline_cold_qps[bi];
    std::printf("%s: %d-thread warm vs 1-thread cold speedup: %.1fx\n",
                backends[bi].c_str(), speedup_threads, speedup);
    json.field(backends[bi] + "_warm_vs_cold1_speedup", speedup);
  }

  // Whole-run obs readout: the lifetime registry after every sweep. The
  // per-kind task counters must balance exactly (submitted == completed +
  // failed) — a leak here means a request path lost its accounting, so the
  // bench fails rather than shipping numbers it cannot vouch for.
  const obs::Snapshot obs_total = obs::Registry::global().snapshot();
  const std::uint64_t submitted = sum_counters(obs_total, "task.submitted.");
  const std::uint64_t completed = sum_counters(obs_total, "task.completed.");
  const std::uint64_t failed = sum_counters(obs_total, "task.failed.");
  const bool balanced = submitted == completed + failed;
  json.field("tracing_enabled", obs::tracing_enabled());
  json.field("tasks_submitted", submitted);
  json.field("tasks_completed", completed);
  json.field("tasks_failed", failed);
  json.field("tasks_balanced", balanced);
  json.field("obs_metrics", static_cast<std::uint64_t>(
                                obs_total.counters.size() +
                                obs_total.gauges.size() +
                                obs_total.histograms.size()));
  json.end_object();
  write_json_file("serving_throughput.json", json.str());
  if (!balanced) {
    std::fprintf(stderr,
                 "[serving] task counters do not balance: submitted %llu != "
                 "completed %llu + failed %llu\n",
                 static_cast<unsigned long long>(submitted),
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(failed));
    return 1;
  }
  return 0;
}
