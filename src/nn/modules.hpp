#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace deepseq::nn {

/// Named trainable parameter collection — modules expose their parameters
/// through this so the optimizer and (de)serialization see a flat list.
using NamedParams = std::vector<std::pair<std::string, Var>>;

/// Fully-connected layer: y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int in_dim, int out_dim, Rng& rng, std::string name = "linear");

  Var apply(Graph& g, const Var& x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  void collect_params(NamedParams& out) const;

 private:
  int in_dim_ = 0, out_dim_ = 0;
  std::string name_;
  Var w_, b_;
};

enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Multi-layer perceptron with ReLU between hidden layers (paper §IV-A3:
/// the regressors are 3-layer MLPs with ReLU) and a configurable final
/// activation (sigmoid for probability outputs).
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, h1, ..., out}.
  Mlp(const std::vector<int>& dims, Activation final_activation, Rng& rng,
      std::string name = "mlp");

  Var apply(Graph& g, const Var& x) const;
  void collect_params(NamedParams& out) const;

 private:
  std::vector<Linear> layers_;
  Activation final_activation_ = Activation::kNone;
};

/// Gated recurrent unit cell, the paper's Combine function (Eq. 8):
///   z = sigmoid(x Wz + h Uz + bz)
///   r = sigmoid(x Wr + h Ur + br)
///   n = tanh(x Wn + (r*h) Un + bn)
///   h' = (1 - z) * n + z * h
class GruCell {
 public:
  GruCell() = default;
  GruCell(int in_dim, int hidden_dim, Rng& rng, std::string name = "gru");

  Var apply(Graph& g, const Var& x, const Var& h) const;

  int in_dim() const { return in_dim_; }
  int hidden_dim() const { return hidden_dim_; }
  void collect_params(NamedParams& out) const;

 private:
  int in_dim_ = 0, hidden_dim_ = 0;
  std::string name_;
  Var wz_, wr_, wn_;  // in -> hidden
  Var uz_, ur_, un_;  // hidden -> hidden
  Var bz_, br_, bn_;
};

}  // namespace deepseq::nn
