#include "nn/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace deepseq::nn {

namespace {

std::atomic<std::uint64_t> g_next_id{1};

Var new_node(Tensor value, bool requires_grad) {
  auto n = std::make_shared<VarNode>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  n->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  return n;
}

bool any_requires_grad(const std::vector<Var>& parents) {
  for (const auto& p : parents)
    if (p->requires_grad) return true;
  return false;
}

}  // namespace

Var make_param(Tensor value) { return new_node(std::move(value), true); }
Var make_constant(Tensor value) { return new_node(std::move(value), false); }

Var Graph::constant(Tensor value) { return make_constant(std::move(value)); }

Var Graph::record(Tensor value, std::vector<Var> parents,
                  std::function<void(VarNode&)> backward_fn) {
  const bool needs = grad_enabled_ && any_requires_grad(parents);
  Var n = new_node(std::move(value), needs);
  if (needs) {
    n->parents = std::move(parents);
    n->backward_fn = std::move(backward_fn);
    tape_.push_back(n);
  }
  return n;
}

Var Graph::add(const Var& a, const Var& b) {
  Tensor v = nn::add(a->value, b->value);
  return record(std::move(v), {a, b}, [a, b](VarNode& self) {
    if (a->requires_grad) add_in_place(a->ensure_grad(), self.grad);
    if (b->requires_grad) add_in_place(b->ensure_grad(), self.grad);
  });
}

Var Graph::sub(const Var& a, const Var& b) {
  Tensor v = nn::sub(a->value, b->value);
  return record(std::move(v), {a, b}, [a, b](VarNode& self) {
    if (a->requires_grad) add_in_place(a->ensure_grad(), self.grad);
    if (b->requires_grad) {
      Tensor& g = b->ensure_grad();
      for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] -= self.grad.data()[i];
    }
  });
}

Var Graph::mul(const Var& a, const Var& b) {
  Tensor v = nn::mul(a->value, b->value);
  return record(std::move(v), {a, b}, [a, b](VarNode& self) {
    if (a->requires_grad)
      add_in_place(a->ensure_grad(), nn::mul(self.grad, b->value));
    if (b->requires_grad)
      add_in_place(b->ensure_grad(), nn::mul(self.grad, a->value));
  });
}

Var Graph::add_row(const Var& a, const Var& row) {
  Tensor v = nn::add_row(a->value, row->value);
  return record(std::move(v), {a, row}, [a, row](VarNode& self) {
    if (a->requires_grad) add_in_place(a->ensure_grad(), self.grad);
    if (row->requires_grad) {
      Tensor& g = row->ensure_grad();
      for (int r = 0; r < self.grad.rows(); ++r)
        for (int c = 0; c < self.grad.cols(); ++c) g.at(0, c) += self.grad.at(r, c);
    }
  });
}

Var Graph::matmul(const Var& a, const Var& b) {
  Tensor v = nn::matmul(a->value, b->value);
  return record(std::move(v), {a, b}, [a, b](VarNode& self) {
    if (a->requires_grad) matmul_nt_acc(self.grad, b->value, a->ensure_grad());
    if (b->requires_grad) matmul_tn_acc(a->value, self.grad, b->ensure_grad());
  });
}

Var Graph::scale(const Var& a, float s) {
  Tensor v = nn::scale(a->value, s);
  return record(std::move(v), {a}, [a, s](VarNode& self) {
    if (a->requires_grad) add_in_place(a->ensure_grad(), nn::scale(self.grad, s));
  });
}

Var Graph::sigmoid(const Var& a) {
  Tensor v = nn::sigmoid(a->value);
  return record(std::move(v), {a}, [a](VarNode& self) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float y = self.value.data()[i];
      g.data()[i] += self.grad.data()[i] * y * (1.0f - y);
    }
  });
}

Var Graph::tanh_(const Var& a) {
  Tensor v = nn::tanh_t(a->value);
  return record(std::move(v), {a}, [a](VarNode& self) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float y = self.value.data()[i];
      g.data()[i] += self.grad.data()[i] * (1.0f - y * y);
    }
  });
}

Var Graph::relu(const Var& a) {
  Tensor v = nn::relu(a->value);
  return record(std::move(v), {a}, [a](VarNode& self) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i)
      if (a->value.data()[i] > 0.0f) g.data()[i] += self.grad.data()[i];
  });
}

Var Graph::one_minus(const Var& a) {
  Tensor v(a->value.rows(), a->value.cols());
  for (std::size_t i = 0; i < v.size(); ++i) v.data()[i] = 1.0f - a->value.data()[i];
  return record(std::move(v), {a}, [a](VarNode& self) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] -= self.grad.data()[i];
  });
}

Var Graph::concat_cols(const std::vector<Var>& blocks) {
  if (blocks.empty()) throw ShapeError("concat_cols: no blocks");
  const int rows = blocks[0]->value.rows();
  int cols = 0;
  for (const auto& b : blocks) {
    if (b->value.rows() != rows) throw ShapeError("concat_cols: row mismatch");
    cols += b->value.cols();
  }
  Tensor v(rows, cols);
  int offset = 0;
  for (const auto& b : blocks) {
    for (int r = 0; r < rows; ++r)
      std::copy(b->value.row(r), b->value.row(r) + b->value.cols(),
                v.row(r) + offset);
    offset += b->value.cols();
  }
  std::vector<Var> parents(blocks.begin(), blocks.end());
  return record(std::move(v), std::move(parents), [blocks](VarNode& self) {
    int off = 0;
    for (const auto& b : blocks) {
      const int bc = b->value.cols();
      if (b->requires_grad) {
        Tensor& g = b->ensure_grad();
        for (int r = 0; r < g.rows(); ++r)
          for (int c = 0; c < bc; ++c) g.at(r, c) += self.grad.at(r, off + c);
      }
      off += bc;
    }
  });
}

Var Graph::gather(const std::vector<RowRef>& refs) {
  if (refs.empty()) throw ShapeError("gather: no rows");
  const int cols = refs[0].var->value.cols();
  Tensor v(static_cast<int>(refs.size()), cols);
  for (std::size_t e = 0; e < refs.size(); ++e) {
    const auto& r = refs[e];
    if (r.var->value.cols() != cols) throw ShapeError("gather: column mismatch");
    if (r.row < 0 || r.row >= r.var->value.rows())
      throw ShapeError("gather: row index out of range");
    std::copy(r.var->value.row(r.row), r.var->value.row(r.row) + cols,
              v.row(static_cast<int>(e)));
  }
  // Unique parents.
  std::vector<Var> parents;
  {
    std::unordered_set<VarNode*> seen;
    for (const auto& r : refs)
      if (seen.insert(r.var.get()).second) parents.push_back(r.var);
  }
  auto refs_copy = refs;
  return record(std::move(v), std::move(parents),
                [refs_copy](VarNode& self) {
                  const int cols = self.value.cols();
                  for (std::size_t e = 0; e < refs_copy.size(); ++e) {
                    const auto& r = refs_copy[e];
                    if (!r.var->requires_grad) continue;
                    Tensor& g = r.var->ensure_grad();
                    const float* src = self.grad.row(static_cast<int>(e));
                    float* dst = g.row(r.row);
                    for (int c = 0; c < cols; ++c) dst[c] += src[c];
                  }
                });
}

Var Graph::segment_softmax(const Var& scores, const std::vector<int>& segment,
                           int num_segments) {
  if (scores->value.cols() != 1)
    throw ShapeError("segment_softmax: scores must be E x 1");
  const int e_count = scores->value.rows();
  if (static_cast<int>(segment.size()) != e_count)
    throw ShapeError("segment_softmax: segment size mismatch");

  Tensor v(e_count, 1);
  {
    std::vector<float> seg_max(num_segments, -1e30f);
    for (int e = 0; e < e_count; ++e)
      seg_max[segment[e]] = std::max(seg_max[segment[e]], scores->value.at(e, 0));
    std::vector<double> seg_sum(num_segments, 0.0);
    for (int e = 0; e < e_count; ++e) {
      const float x = std::exp(scores->value.at(e, 0) - seg_max[segment[e]]);
      v.at(e, 0) = x;
      seg_sum[segment[e]] += x;
    }
    for (int e = 0; e < e_count; ++e)
      v.at(e, 0) = static_cast<float>(v.at(e, 0) / seg_sum[segment[e]]);
  }

  auto seg = segment;
  return record(std::move(v), {scores}, [scores, seg, num_segments](VarNode& self) {
    if (!scores->requires_grad) return;
    // ds_e = y_e * (g_e - sum_{e' in seg} g_e' y_e')
    std::vector<double> seg_dot(num_segments, 0.0);
    const int n = self.value.rows();
    for (int e = 0; e < n; ++e)
      seg_dot[seg[e]] += static_cast<double>(self.grad.at(e, 0)) * self.value.at(e, 0);
    Tensor& g = scores->ensure_grad();
    for (int e = 0; e < n; ++e)
      g.at(e, 0) += self.value.at(e, 0) *
                    (self.grad.at(e, 0) - static_cast<float>(seg_dot[seg[e]]));
  });
}

Var Graph::mul_col(const Var& values, const Var& col) {
  if (col->value.cols() != 1 || col->value.rows() != values->value.rows())
    throw ShapeError("mul_col: col must be E x 1 matching values rows");
  Tensor v(values->value.rows(), values->value.cols());
  for (int r = 0; r < v.rows(); ++r) {
    const float a = col->value.at(r, 0);
    for (int c = 0; c < v.cols(); ++c) v.at(r, c) = values->value.at(r, c) * a;
  }
  return record(std::move(v), {values, col}, [values, col](VarNode& self) {
    if (values->requires_grad) {
      Tensor& g = values->ensure_grad();
      for (int r = 0; r < g.rows(); ++r) {
        const float a = col->value.at(r, 0);
        for (int c = 0; c < g.cols(); ++c) g.at(r, c) += self.grad.at(r, c) * a;
      }
    }
    if (col->requires_grad) {
      Tensor& g = col->ensure_grad();
      for (int r = 0; r < self.grad.rows(); ++r) {
        double acc = 0.0;
        for (int c = 0; c < self.grad.cols(); ++c)
          acc += static_cast<double>(self.grad.at(r, c)) * values->value.at(r, c);
        g.at(r, 0) += static_cast<float>(acc);
      }
    }
  });
}

Var Graph::segment_sum(const Var& values, const std::vector<int>& segment,
                       int num_segments) {
  if (static_cast<int>(segment.size()) != values->value.rows())
    throw ShapeError("segment_sum: segment size mismatch");
  Tensor v(num_segments, values->value.cols());
  for (int e = 0; e < values->value.rows(); ++e) {
    float* dst = v.row(segment[e]);
    const float* src = values->value.row(e);
    for (int c = 0; c < v.cols(); ++c) dst[c] += src[c];
  }
  auto seg = segment;
  return record(std::move(v), {values}, [values, seg](VarNode& self) {
    if (!values->requires_grad) return;
    Tensor& g = values->ensure_grad();
    for (int e = 0; e < g.rows(); ++e) {
      const float* src = self.grad.row(seg[e]);
      float* dst = g.row(e);
      for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
    }
  });
}

Var Graph::segment_max(const Var& values, const std::vector<int>& segment,
                       int num_segments) {
  if (static_cast<int>(segment.size()) != values->value.rows())
    throw ShapeError("segment_max: segment size mismatch");
  const int cols = values->value.cols();
  Tensor v(num_segments, cols);
  // argmax[s*cols + c] = source row providing segment s's max in column c.
  std::vector<int> argmax(static_cast<std::size_t>(num_segments) * cols, -1);
  for (int e = 0; e < values->value.rows(); ++e) {
    const int s = segment[e];
    const float* src = values->value.row(e);
    float* dst = v.row(s);
    for (int c = 0; c < cols; ++c) {
      int& am = argmax[static_cast<std::size_t>(s) * cols + c];
      if (am < 0 || src[c] > dst[c]) {
        dst[c] = src[c];
        am = e;
      }
    }
  }
  return record(std::move(v), {values},
                [values, argmax, cols](VarNode& self) {
                  if (!values->requires_grad) return;
                  Tensor& g = values->ensure_grad();
                  for (int s = 0; s < self.value.rows(); ++s) {
                    const float* src = self.grad.row(s);
                    for (int c = 0; c < cols; ++c) {
                      const int e = argmax[static_cast<std::size_t>(s) * cols + c];
                      if (e >= 0) g.row(e)[c] += src[c];
                    }
                  }
                });
}

Var Graph::l1_loss(const Var& pred, const Tensor& target) {
  if (!pred->value.same_shape(target))
    throw ShapeError("l1_loss: prediction/target shape mismatch " +
                     pred->value.shape_string() + " vs " + target.shape_string());
  double acc = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i)
    acc += std::fabs(pred->value.data()[i] - target.data()[i]);
  const auto n = static_cast<double>(target.size());
  Tensor v = Tensor::scalar(static_cast<float>(acc / n));
  Tensor tgt = target;
  return record(std::move(v), {pred}, [pred, tgt, n](VarNode& self) {
    if (!pred->requires_grad) return;
    Tensor& g = pred->ensure_grad();
    const float s = self.grad.at(0, 0) / static_cast<float>(n);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float d = pred->value.data()[i] - tgt.data()[i];
      g.data()[i] += d > 0.0f ? s : (d < 0.0f ? -s : 0.0f);
    }
  });
}

Var Graph::l1_loss_weighted(const Var& pred, const Tensor& target,
                            const Tensor& weight) {
  if (!pred->value.same_shape(target) || !pred->value.same_shape(weight))
    throw ShapeError("l1_loss_weighted: shape mismatch");
  double acc = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    acc += weight.data()[i] * std::fabs(pred->value.data()[i] - target.data()[i]);
    wsum += weight.data()[i];
  }
  if (wsum <= 0.0) wsum = 1.0;
  Tensor v = Tensor::scalar(static_cast<float>(acc / wsum));
  Tensor tgt = target, wt = weight;
  return record(std::move(v), {pred}, [pred, tgt, wt, wsum](VarNode& self) {
    if (!pred->requires_grad) return;
    Tensor& g = pred->ensure_grad();
    const float s = self.grad.at(0, 0) / static_cast<float>(wsum);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float d = pred->value.data()[i] - tgt.data()[i];
      const float w = wt.data()[i];
      g.data()[i] += w * (d > 0.0f ? s : (d < 0.0f ? -s : 0.0f));
    }
  });
}

Var Graph::softmax_cross_entropy(const Var& logits,
                                 const std::vector<int>& labels) {
  const int rows = logits->value.rows(), cols = logits->value.cols();
  if (static_cast<int>(labels.size()) != rows)
    throw ShapeError("softmax_cross_entropy: label count mismatch");
  for (int r = 0; r < rows; ++r)
    if (labels[r] < 0 || labels[r] >= cols)
      throw ShapeError("softmax_cross_entropy: label out of range");
  // Cache the softmax for the backward pass: d(loss)/d(logit) is
  // (softmax - onehot) / B.
  Tensor soft(rows, cols);
  double acc = 0.0;
  for (int r = 0; r < rows; ++r) {
    const float* z = logits->value.row(r);
    float zmax = z[0];
    for (int c = 1; c < cols; ++c) zmax = std::max(zmax, z[c]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) denom += std::exp(static_cast<double>(z[c] - zmax));
    float* p = soft.row(r);
    for (int c = 0; c < cols; ++c)
      p[c] = static_cast<float>(std::exp(static_cast<double>(z[c] - zmax)) / denom);
    acc -= std::log(std::max(static_cast<double>(p[labels[r]]), 1e-12));
  }
  Tensor v = Tensor::scalar(static_cast<float>(acc / rows));
  auto lab = labels;
  return record(std::move(v), {logits}, [logits, soft, lab](VarNode& self) {
    if (!logits->requires_grad) return;
    Tensor& g = logits->ensure_grad();
    const float s = self.grad.at(0, 0) / static_cast<float>(soft.rows());
    for (int r = 0; r < soft.rows(); ++r) {
      const float* p = soft.row(r);
      float* dst = g.row(r);
      for (int c = 0; c < soft.cols(); ++c)
        dst[c] += s * (p[c] - (c == lab[r] ? 1.0f : 0.0f));
    }
  });
}

void Graph::backward(const Var& root) {
  if (!grad_enabled_) throw Error("Graph::backward: gradients disabled");
  root->ensure_grad().fill(1.0f);

  // Reachable set, then descending creation id = reverse topological order.
  std::vector<VarNode*> reachable;
  {
    std::unordered_set<VarNode*> seen;
    std::vector<VarNode*> work{root.get()};
    seen.insert(root.get());
    while (!work.empty()) {
      VarNode* n = work.back();
      work.pop_back();
      reachable.push_back(n);
      for (const auto& p : n->parents)
        if (seen.insert(p.get()).second) work.push_back(p.get());
    }
  }
  std::sort(reachable.begin(), reachable.end(),
            [](const VarNode* a, const VarNode* b) { return a->id > b->id; });
  for (VarNode* n : reachable) {
    if (n->backward_fn && n->has_grad()) n->backward_fn(*n);
  }
}

void Graph::clear() {
  for (auto& n : tape_) {
    n->parents.clear();
    n->backward_fn = nullptr;
  }
  tape_.clear();
}

}  // namespace deepseq::nn
