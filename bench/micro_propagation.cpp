// Microbenchmarks of the GNN propagation: forward (inference) and
// forward+backward (training) passes across circuit sizes, and the
// customized-vs-baseline schedule cost.

#include <benchmark/benchmark.h>

#include "core/model.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"

namespace {

using namespace deepseq;

struct Fixture {
  Circuit aig;
  CircuitGraph graph;
  Workload workload;

  explicit Fixture(int gates) {
    Rng rng(11);
    GeneratorSpec spec;
    spec.num_gates = gates;
    spec.num_ffs = gates / 12;
    spec.num_pis = 16;
    const Circuit generic = generate_circuit(spec, rng);
    aig = optimize_aig(decompose_to_aig(generic).aig).circuit;
    graph = build_circuit_graph(aig);
    workload = random_workload(aig, rng);
  }
};

Fixture& fixture(int gates) {
  static Fixture small(120);
  static Fixture large(2000);
  return gates <= 120 ? small : large;
}

void BM_InferenceCustomProp(benchmark::State& state) {
  Fixture& f = fixture(static_cast<int>(state.range(0)));
  const DeepSeqModel model(ModelConfig::deepseq(32, 4));
  for (auto _ : state) {
    nn::Graph g(false);
    const auto out = model.forward(g, f.graph, f.workload, 1);
    benchmark::DoNotOptimize(out.lg->value.data());
  }
  state.counters["nodes"] = static_cast<double>(f.graph.num_nodes);
}
BENCHMARK(BM_InferenceCustomProp)->Arg(120)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_InferenceBaselineProp(benchmark::State& state) {
  Fixture& f = fixture(static_cast<int>(state.range(0)));
  const DeepSeqModel model(
      ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, 32, 4));
  for (auto _ : state) {
    nn::Graph g(false);
    const auto out = model.forward(g, f.graph, f.workload, 1);
    benchmark::DoNotOptimize(out.lg->value.data());
  }
}
BENCHMARK(BM_InferenceBaselineProp)->Arg(120)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_TrainStep(benchmark::State& state) {
  Fixture& f = fixture(static_cast<int>(state.range(0)));
  const DeepSeqModel model(ModelConfig::deepseq(32, 4));
  const nn::Tensor target_tr(f.graph.num_nodes, 2);
  const nn::Tensor target_lg(f.graph.num_nodes, 1);
  for (auto _ : state) {
    nn::Graph g(true);
    const auto out = model.forward(g, f.graph, f.workload, 1);
    const auto loss =
        g.add(g.l1_loss(out.tr, target_tr), g.l1_loss(out.lg, target_lg));
    g.backward(loss);
    benchmark::DoNotOptimize(loss->value.at(0, 0));
    for (const auto& [name, p] : model.params())
      if (p->has_grad()) p->grad.zero();
  }
}
BENCHMARK(BM_TrainStep)->Arg(120)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const CircuitGraph g = build_circuit_graph(f.aig);
    benchmark::DoNotOptimize(g.num_nodes);
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(120)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_IterationScaling(benchmark::State& state) {
  // Cost is linear in T — the levelized sequential bottleneck the paper's
  // §VI discusses.
  Fixture& f = fixture(120);
  const DeepSeqModel model(
      ModelConfig::deepseq(32, static_cast<int>(state.range(0))));
  for (auto _ : state) {
    nn::Graph g(false);
    const auto out = model.forward(g, f.graph, f.workload, 1);
    benchmark::DoNotOptimize(out.lg->value.data());
  }
}
BENCHMARK(BM_IterationScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
