#include "nn/modules.hpp"

#include "common/error.hpp"

namespace deepseq::nn {

Linear::Linear(int in_dim, int out_dim, Rng& rng, std::string name)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      name_(std::move(name)),
      w_(make_param(Tensor::xavier(in_dim, out_dim, rng))),
      b_(make_param(Tensor(1, out_dim))) {}

Var Linear::apply(Graph& g, const Var& x) const {
  return g.add_row(g.matmul(x, w_), b_);
}

void Linear::collect_params(NamedParams& out) const {
  out.emplace_back(name_ + ".w", w_);
  out.emplace_back(name_ + ".b", b_);
}

Mlp::Mlp(const std::vector<int>& dims, Activation final_activation, Rng& rng,
         std::string name)
    : final_activation_(final_activation) {
  if (dims.size() < 2) throw Error("Mlp: need at least in/out dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng,
                         name + ".l" + std::to_string(i));
}

Var Mlp::apply(Graph& g, const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].apply(g, h);
    if (i + 1 < layers_.size()) h = g.relu(h);
  }
  switch (final_activation_) {
    case Activation::kNone: return h;
    case Activation::kRelu: return g.relu(h);
    case Activation::kSigmoid: return g.sigmoid(h);
    case Activation::kTanh: return g.tanh_(h);
  }
  throw Error("Mlp: unknown activation");
}

void Mlp::collect_params(NamedParams& out) const {
  for (const auto& l : layers_) l.collect_params(out);
}

GruCell::GruCell(int in_dim, int hidden_dim, Rng& rng, std::string name)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      name_(std::move(name)),
      wz_(make_param(Tensor::xavier(in_dim, hidden_dim, rng))),
      wr_(make_param(Tensor::xavier(in_dim, hidden_dim, rng))),
      wn_(make_param(Tensor::xavier(in_dim, hidden_dim, rng))),
      uz_(make_param(Tensor::xavier(hidden_dim, hidden_dim, rng))),
      ur_(make_param(Tensor::xavier(hidden_dim, hidden_dim, rng))),
      un_(make_param(Tensor::xavier(hidden_dim, hidden_dim, rng))),
      bz_(make_param(Tensor(1, hidden_dim))),
      br_(make_param(Tensor(1, hidden_dim))),
      bn_(make_param(Tensor(1, hidden_dim))) {}

Var GruCell::apply(Graph& g, const Var& x, const Var& h) const {
  if (x->value.cols() != in_dim_)
    throw ShapeError("GruCell: input dim mismatch, expected " +
                     std::to_string(in_dim_) + ", got " +
                     std::to_string(x->value.cols()));
  if (h->value.cols() != hidden_dim_)
    throw ShapeError("GruCell: hidden dim mismatch");
  const Var z = g.sigmoid(g.add_row(g.add(g.matmul(x, wz_), g.matmul(h, uz_)), bz_));
  const Var r = g.sigmoid(g.add_row(g.add(g.matmul(x, wr_), g.matmul(h, ur_)), br_));
  const Var n = g.tanh_(g.add_row(g.add(g.matmul(x, wn_), g.matmul(g.mul(r, h), un_)), bn_));
  return g.add(g.mul(g.one_minus(z), n), g.mul(z, h));
}

void GruCell::collect_params(NamedParams& out) const {
  out.emplace_back(name_ + ".wz", wz_);
  out.emplace_back(name_ + ".wr", wr_);
  out.emplace_back(name_ + ".wn", wn_);
  out.emplace_back(name_ + ".uz", uz_);
  out.emplace_back(name_ + ".ur", ur_);
  out.emplace_back(name_ + ".un", un_);
  out.emplace_back(name_ + ".bz", bz_);
  out.emplace_back(name_ + ".br", br_);
  out.emplace_back(name_ + ".bn", bn_);
}

}  // namespace deepseq::nn
