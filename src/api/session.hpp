#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "api/backend.hpp"
#include "api/registry.hpp"
#include "netlist/scoap.hpp"
#include "power/power_analyzer.hpp"
#include "runtime/inference_engine.hpp"

namespace deepseq::api {

/// The downstream tasks DeepSeq embeddings feed (paper §V: logic/transition
/// probability, power, reliability; netlist testability rides on the same
/// serving surface via SCOAP).
enum class TaskKind {
  kEmbedding,
  kLogicProb,
  kTransitionProb,
  kPower,
  kReliability,
  kTestability,
};

const char* task_name(TaskKind k);

/// One typed query against a Session: which circuit, under which workload,
/// which task, served by which backend (registry name; empty = the
/// session's default backend).
struct TaskRequest {
  std::shared_ptr<const Circuit> circuit;  // strict sequential AIG
  Workload workload;
  TaskKind task = TaskKind::kEmbedding;
  std::string backend;
  std::uint64_t init_seed = 1;
};

// ---- per-task typed results ------------------------------------------------

struct EmbeddingOutput {
  std::shared_ptr<const nn::Tensor> embedding;  // N x hidden
};

struct LogicProbOutput {
  std::shared_ptr<const nn::Tensor> prob;  // N x 1: P(node = 1)
};

struct TransitionProbOutput {
  std::shared_ptr<const nn::Tensor> prob;  // N x 2: P(0->1), P(1->0)
};

struct PowerOutput {
  PowerReport report;               // via the src/power analyzer (SAIF path)
  std::vector<double> logic1;       // model-predicted per-node P(=1)
  std::vector<double> toggle_rate;  // model-predicted per-node toggles/cycle
};

struct ReliabilityOutput {
  double circuit_reliability = 1.0;        // averaged over POs
  std::vector<double> node_reliability;    // per node
};

struct TestabilityOutput {
  ScoapMeasures scoap;  // via netlist/scoap
};

using TaskOutput =
    std::variant<EmbeddingOutput, LogicProbOutput, TransitionProbOutput,
                 PowerOutput, ReliabilityOutput, TestabilityOutput>;

struct TaskResult {
  TaskKind task = TaskKind::kEmbedding;
  std::string backend;  // registry name that served the request
  TaskOutput output;
  StructuralHash structure;
  bool structure_cache_hit = false;
  bool embedding_cache_hit = false;
  /// Regression-head outputs served from the cache (same EmbeddingKey as
  /// the embedding): warm logic/transition-prob/power requests skip the
  /// two-head MLP forward entirely.
  bool regression_cache_hit = false;
  double queue_ms = 0.0;
  double compute_ms = 0.0;  // embed/structure resolve + task head
  double total_ms = 0.0;

  /// Typed access: `result.as<PowerOutput>()`. Throws
  /// std::bad_variant_access on a task/type mismatch.
  template <typename T>
  const T& as() const {
    return std::get<T>(output);
  }
};

struct SessionConfig {
  /// Default backend (registry name) for requests that leave
  /// TaskRequest::backend empty. Resolved at construction — unknown names
  /// throw listing the registered ones.
  std::string backend = "deepseq";
  /// Construction presets handed to backend factories.
  BackendOptions backends;
  /// Scheduler knobs (threads, batch window, cache capacities).
  runtime::EngineConfig engine;
  /// SAIF duration (cycles) power predictions are reported over.
  long long power_duration = 10000;
  ScoapOptions scoap;
  /// Dump a Chrome trace-event / Perfetto-compatible JSON of every task's
  /// span chain (submit -> queue -> resolve -> embed -> head) to this path
  /// on Session destruction. Empty resolves the DEEPSEQ_TRACE environment
  /// variable (strict: an unwritable path fails Session construction,
  /// naming the variable and path); empty both ways disables tracing —
  /// the request path then pays one relaxed atomic load per stage.
  std::string trace_path;
};

/// The public serving surface: one Session owns the backend instances (all
/// created through the registry), the batched scheduler and its caches, and
/// serves every TaskKind through one submit/run_sync pair. All task kinds
/// against the same circuit share one cached structure resolve, and
/// embedding-consuming tasks (logic/transition probability, power) share
/// one cached forward pass. All public methods are thread-safe.
class Session {
 public:
  explicit Session(const SessionConfig& config = {},
                   BackendRegistry& registry = BackendRegistry::global());

  /// Drains in-flight work; when tracing was enabled (trace_path /
  /// DEEPSEQ_TRACE), writes the Chrome-trace dump and restores the prior
  /// global tracing state (I/O failures are reported on stderr — a
  /// destructor never throws).
  ~Session();

  const SessionConfig& config() const { return config_; }

  /// Enqueue a task; the future is fulfilled by a worker thread after the
  /// coalesced batch it joins is processed. Unknown backend names and
  /// unsupported task/backend combinations throw here (fail fast), compute
  /// errors surface through the future.
  std::future<TaskResult> submit(TaskRequest request);

  /// Dispatch any partial batch immediately.
  void flush();

  /// flush() + block until every submitted task is fulfilled.
  void drain();

  /// Reference path: compute one task synchronously on the calling thread
  /// through the same cache and backends. Bit-identical to submit().
  TaskResult run_sync(const TaskRequest& request);

  /// Zero-downtime weight push: build a replacement backend instance from
  /// the artifact through the registry (same name, the session's options
  /// with the artifact swapped in), drain the in-flight batches, then
  /// atomically swap the serving instance. Tasks submitted before the swap
  /// complete on the weights they were submitted against — their results
  /// and cache entries stay keyed by the old fingerprint, nothing is
  /// dropped — and every later submit is served by the new weights under
  /// the artifact-derived fingerprint (returned). Empty name = the session
  /// default backend; a kind/architecture mismatch — or a push that leaves
  /// the fingerprint unchanged (weights already live, or a custom factory
  /// that ignores BackendOptions::artifact) — throws before anything is
  /// swapped.
  std::uint64_t reload_weights(
      std::shared_ptr<const artifact::Artifact> artifact,
      const std::string& name = "");

  /// The session's instance of a backend (empty name = session default).
  /// Lazily created through the registry on first use. The reference names
  /// the instance serving at call time and is INVALIDATED by a
  /// reload_weights of the same name (the swap drops the session's
  /// ownership of the replaced instance); callers that may outlive a
  /// reload must hold backend_handle() instead.
  const EmbeddingBackend& backend(const std::string& name = "");

  /// Owning handle on the instance currently serving `name` (empty name =
  /// session default) — survives reload_weights swaps.
  std::shared_ptr<const EmbeddingBackend> backend_handle(
      const std::string& name = "");

  /// Registry names available to this session, sorted.
  std::vector<std::string> backend_names() const { return registry_.names(); }

  runtime::CircuitCache::Stats cache_stats() const {
    return engine_.cache_stats();
  }
  int num_threads() const { return engine_.num_threads(); }
  /// Intra-circuit nn-executor threads (shared pool; EngineConfig::nn_threads
  /// / DEEPSEQ_NN_THREADS).
  int nn_threads() const { return engine_.nn_threads(); }

 private:
  runtime::EmbeddingRequest to_engine_request(const TaskRequest& request,
                                              const EmbeddingBackend& be) const;
  TaskResult finish(const TaskRequest& request, const EmbeddingBackend& be,
                    runtime::EmbeddingResult&& er);

  SessionConfig config_;
  BackendRegistry& registry_;
  /// Resolved trace dump path (config or DEEPSEQ_TRACE); empty = tracing
  /// untouched by this session.
  std::string trace_path_;
  bool tracing_prev_ = false;
  /// Serializes reload_weights pushes (held across build/guard/drain/swap;
  /// always acquired before backends_mu_).
  std::mutex reload_mu_;
  mutable std::mutex backends_mu_;
  // The instances currently serving each name. Shared ownership is what
  // makes reload_weights safe: in-flight completions hold their own
  // handle, so a replaced instance stays alive until its last task
  // finishes. Destroyed AFTER engine_ (declared before it), so worker
  // references stay valid through engine teardown.
  std::map<std::string, std::shared_ptr<EmbeddingBackend>> backends_;
  runtime::InferenceEngine engine_;
};

}  // namespace deepseq::api
