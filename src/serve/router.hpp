#pragma once

// Shard-by-structural-hash routing: the in-process multi-worker core of the
// serving tier. N shards each own a full api::Session — and with it a
// private CircuitCache — and every request is routed by the netlist's
// structural hash, so isomorphic circuits ALWAYS land on the shard whose
// cache is already warm (node renamings/reorderings included: the hash is
// node-id-invariant). Routing is a pure function of the hash, hence stable
// across server restarts — a fleet front end can build the same placement
// from the same netlists forever.
//
// Each shard runs its own AdmissionQueue and worker threads; workers serve
// jobs through Session::run_sync (the bit-identical reference path), so a
// routed result is exactly what a direct in-process call produces.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "api/session.hpp"
#include "serve/admission.hpp"

namespace deepseq::artifact {
class Artifact;
}

namespace deepseq::serve {

struct RouterConfig {
  /// Session shards; each owns its backends, engine and caches.
  int shards = 1;
  /// Worker threads per shard draining its admission queue via run_sync.
  int workers_per_shard = 2;
  /// Per-shard admission knobs (workers/clock fields are overwritten per
  /// shard from workers_per_shard and the shared clock).
  AdmissionConfig admission;
  /// Session preset every shard is built from (each shard constructs its
  /// own instances through the registry).
  api::SessionConfig session;
};

/// The terminal state of one routed request: exactly one of a served
/// result, a typed shed, or the exception the compute path raised.
struct RoutedOutcome {
  std::variant<api::TaskResult, ShedReason, std::exception_ptr> value;
  int shard = -1;

  bool ok() const { return std::holds_alternative<api::TaskResult>(value); }
};

class ShardRouter {
 public:
  explicit ShardRouter(const RouterConfig& config);
  /// Sheds everything still queued (kShutdown), joins all workers.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Pure routing function: which shard serves this structure. Stable
  /// across processes (it depends only on the hash and the shard count).
  int shard_for(const StructuralHash& h) const;

  /// Route + admit + serve. The outcome callback fires exactly once, from a
  /// shard worker (admitted path) or the calling thread (immediate shed /
  /// pre-admission failure). `deadline_ns` is absolute on the admission
  /// clock (0 = none). Never throws.
  void submit(api::TaskRequest request, std::uint64_t deadline_ns,
              std::function<void(RoutedOutcome&&)> done);

  /// Coordinated weight push: rebuild + drain + swap on EVERY shard (each
  /// shard's Session::reload_weights drains its in-flight work before the
  /// atomic instance swap, so nothing is dropped anywhere). Returns the new
  /// serving fingerprint, identical across shards. Throws on the first
  /// failing shard, leaving earlier shards flipped. Within one call, a
  /// shard that already serves the fingerprint an earlier shard flipped to
  /// is tolerated (its Session rejects the push as a no-op), so a push that
  /// failed partway can be driven to completion by retrying while shard 0
  /// still serves the old weights.
  std::uint64_t reload_all(std::shared_ptr<const artifact::Artifact> artifact,
                           const std::string& backend = "");

  /// Fingerprint currently served for `backend` (empty = default) by shard
  /// `i` — coordination tests assert these are equal across shards.
  std::uint64_t shard_fingerprint(int i, const std::string& backend = "");

  struct ShardStats {
    runtime::CircuitCache::Stats cache;
    AdmissionQueue::Counts admission;
    std::size_t queued = 0;
    std::uint64_t served = 0;  // jobs a worker completed (ok or failed)
  };
  ShardStats shard_stats(int i) const;

  AdmissionQueue& admission(int i) { return *shards_[static_cast<std::size_t>(i)]->queue; }
  api::Session& session(int i) { return shards_[static_cast<std::size_t>(i)]->session; }

 private:
  struct Shard {
    explicit Shard(const api::SessionConfig& scfg) : session(scfg) {}
    api::Session session;
    std::unique_ptr<AdmissionQueue> queue;
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> served{0};
  };

  void worker_loop(Shard& shard);

  RouterConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace deepseq::serve
