#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

std::vector<TrainSample> tiny_dataset(int count, std::uint64_t seed) {
  std::vector<TrainSample> out;
  Rng rng(seed);
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  for (int k = 0; k < count; ++k) {
    Workload w = random_workload(aig, rng);
    ActivityOptions opt;
    opt.num_cycles = 500;
    out.push_back(make_sample("s27_" + std::to_string(k), aig, std::move(w),
                              opt, rng.next_u64()));
  }
  return out;
}

TEST(Sample, LabelsComeFromSimulation) {
  const auto ds = tiny_dataset(1, 1);
  const TrainSample& s = ds[0];
  EXPECT_EQ(s.target_tr.rows(), s.graph.num_nodes);
  EXPECT_EQ(s.target_tr.cols(), 2);
  EXPECT_EQ(s.target_lg.cols(), 1);
  // PI labels must equal the workload statistics.
  for (std::size_t k = 0; k < s.circuit->pis().size(); ++k) {
    const auto pi = static_cast<int>(s.circuit->pis()[k]);
    EXPECT_NEAR(s.target_lg.at(pi, 0), s.workload.pi_prob[k], 0.05);
  }
}

TEST(Trainer, LossDecreasesOnOvertfitTask) {
  auto ds = tiny_dataset(2, 7);
  DeepSeqModel model(ModelConfig::deepseq(8, 2));
  TrainOptions opt;
  opt.epochs = 30;
  opt.lr = 5e-3f;
  opt.batch_size = 2;
  Trainer trainer(model, opt);
  const auto history = trainer.fit(ds);
  ASSERT_EQ(history.size(), 30u);
  // Average of the last 5 epochs must beat the first epoch clearly.
  double tail = 0.0;
  for (int i = 25; i < 30; ++i) tail += history[i].mean_loss;
  tail /= 5.0;
  EXPECT_LT(tail, history[0].mean_loss * 0.8)
      << "first " << history[0].mean_loss << " tail " << tail;
}

TEST(Trainer, EvaluateReportsPerTaskErrors) {
  const auto ds = tiny_dataset(2, 9);
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  const EvalMetrics m = evaluate(model, ds);
  EXPECT_GT(m.avg_pe_tr, 0.0);
  EXPECT_LT(m.avg_pe_tr, 1.0);
  EXPECT_GT(m.avg_pe_lg, 0.0);
  EXPECT_LT(m.avg_pe_lg, 1.0);
}

TEST(Trainer, TrainingImprovesEvalMetrics) {
  auto ds = tiny_dataset(3, 11);
  DeepSeqModel model(ModelConfig::deepseq(8, 2));
  const EvalMetrics before = evaluate(model, ds);
  TrainOptions opt;
  opt.epochs = 25;
  opt.lr = 5e-3f;
  Trainer trainer(model, opt);
  trainer.fit(ds);
  const EvalMetrics after = evaluate(model, ds);
  EXPECT_LT(after.avg_pe_lg, before.avg_pe_lg);
}

TEST(Trainer, ValidationMetricsFilled) {
  auto ds = tiny_dataset(2, 13);
  const std::vector<TrainSample> val = tiny_dataset(1, 14);
  DeepSeqModel model(ModelConfig::deepseq(8, 1));
  TrainOptions opt;
  opt.epochs = 2;
  Trainer trainer(model, opt);
  const auto history = trainer.fit(ds, &val);
  EXPECT_GT(history[0].val.avg_pe_tr, 0.0);
}

TEST(Trainer, PredictMatchesEvaluate) {
  const auto ds = tiny_dataset(1, 15);
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  const Predictions p = predict(model, ds[0]);
  double err = 0.0;
  for (std::size_t i = 0; i < p.lg.size(); ++i)
    err += std::abs(p.lg.data()[i] - ds[0].target_lg.data()[i]);
  err /= static_cast<double>(p.lg.size());
  const EvalMetrics m = evaluate(model, ds);
  EXPECT_NEAR(m.avg_pe_lg, err, 1e-6);
}

TEST(Trainer, EmptyDatasetIsHarmless) {
  DeepSeqModel model(ModelConfig::deepseq(8, 1));
  TrainOptions opt;
  opt.epochs = 1;
  Trainer trainer(model, opt);
  EXPECT_NO_THROW(trainer.fit({}));
  const EvalMetrics m = evaluate(model, {});
  EXPECT_EQ(m.avg_pe_tr, 0.0);
}


TEST(Trainer, BalancedWeightsEqualizeClassMass) {
  nn::Tensor tr(4, 2);
  // 2 active entries, 6 static entries.
  tr.at(0, 0) = 0.3f;
  tr.at(2, 1) = 0.1f;
  const nn::Tensor w = balanced_tr_weights(tr);
  double active_mass = 0.0, static_mass = 0.0;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 2; ++c)
      (tr.at(r, c) > 0.005f ? active_mass : static_mass) += w.at(r, c);
  EXPECT_NEAR(active_mass, static_mass, 1e-4);
}

TEST(Trainer, BalancedWeightsDegenerateClassesAreUniform) {
  nn::Tensor all_static(3, 2);
  const nn::Tensor w0 = balanced_tr_weights(all_static);
  for (std::size_t i = 0; i < w0.size(); ++i)
    EXPECT_FLOAT_EQ(w0.data()[i], 1.0f);
  nn::Tensor all_active = nn::Tensor::full(3, 2, 0.4f);
  const nn::Tensor w1 = balanced_tr_weights(all_active);
  for (std::size_t i = 0; i < w1.size(); ++i)
    EXPECT_FLOAT_EQ(w1.data()[i], 1.0f);
}

TEST(Trainer, BalancedLossStillLearns) {
  auto ds = tiny_dataset(2, 17);
  DeepSeqModel model(ModelConfig::deepseq(8, 2));
  TrainOptions opt;
  opt.epochs = 25;
  opt.lr = 5e-3f;
  opt.batch_size = 2;
  opt.balance_tr = true;
  Trainer trainer(model, opt);
  const auto history = trainer.fit(ds);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
}

TEST(Trainer, TaskWeightZeroFreezesThatHead) {
  // With weight_tr = 0 the TR head receives no gradient: its predictions
  // must not move while the LG head trains.
  auto ds = tiny_dataset(2, 19);
  DeepSeqModel model(ModelConfig::deepseq(8, 2));
  const Predictions before = predict(model, ds[0]);
  TrainOptions opt;
  opt.epochs = 4;
  opt.lr = 5e-3f;
  opt.batch_size = 2;
  opt.weight_tr = 0.0f;
  Trainer trainer(model, opt);
  trainer.fit(ds);
  const Predictions after = predict(model, ds[0]);
  // The backbone still moves (shared GRU/aggregator receive LG gradient),
  // so TR outputs shift; but LG must shift far more than it would with a
  // dead objective. Instead assert the opposite direction: LG-only
  // training must improve LG error.
  double lg_before = 0.0, lg_after = 0.0;
  for (int v = 0; v < ds[0].graph.num_nodes; ++v) {
    lg_before += std::fabs(before.lg.at(v, 0) - ds[0].target_lg.at(v, 0));
    lg_after += std::fabs(after.lg.at(v, 0) - ds[0].target_lg.at(v, 0));
  }
  EXPECT_LT(lg_after, lg_before);
}


}  // namespace
}  // namespace deepseq
