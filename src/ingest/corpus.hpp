#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ingest/stream_parser.hpp"
#include "netlist/circuit.hpp"
#include "netlist/structural_hash.hpp"

namespace deepseq::ingest {

/// Manifest row of one ingested design. `name` is the module name,
/// uniquified with a ~N suffix when distinct designs collide; `file` is
/// the path relative to the corpus root.
struct DesignRecord {
  std::string name;
  std::string file;
  std::uint64_t src_bytes = 0;  // module source span in the file
  std::uint32_t nodes = 0;
  std::uint32_t pis = 0;
  std::uint32_t pos = 0;
  std::uint32_t ffs = 0;
  int levels = 0;  // combinational depth (comb_levelize)
  StructuralHash hash;
  double parse_ms = 0.0;
};

struct CorpusOptions {
  IngestOptions ingest;
  /// Drop designs whose StructuralHash matches an earlier design (the
  /// first occurrence in scan order wins) — isomorphic duplicates would
  /// only warm the same cache shard again.
  bool dedup = true;
  /// File extensions scanned (case-sensitive match on the path suffix).
  std::vector<std::string> extensions = {".v"};
};

/// A directory tree of Verilog netlists, ingested through the streaming
/// parallel frontend into an in-memory set of Circuits plus a manifest.
/// Scan order (and therefore record order, dedup winners and the manifest
/// JSON) is deterministic: files sort by relative path, modules keep
/// source order, regardless of thread count. Instrumented process-wide
/// via obs: ingest.bytes / ingest.files / ingest.designs /
/// ingest.modules_skipped / ingest.dup_dropped counters and the
/// ingest.parse_ns histogram.
class Corpus {
 public:
  /// Ingest every matching file under `dir` (recursively). Throws Error
  /// when `dir` is not a directory; parse failures are rethrown with the
  /// offending file prepended.
  static Corpus scan(const std::string& dir, const CorpusOptions& options = {});

  /// scan(DEEPSEQ_CORPUS_DIR) — fails fast, naming the variable, when it
  /// is unset or not a directory (no silent fallback).
  static Corpus scan_from_env();

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<DesignRecord>& records() const { return records_; }
  const DesignRecord& record(std::size_t i) const { return records_[i]; }
  const Circuit& circuit(std::size_t i) const { return circuits_[i]; }

  /// Iteration for range-for over (record, circuit) pairs — the draw
  /// surface bench/ and the serving tier feed from.
  struct Entry {
    const DesignRecord& record;
    const Circuit& circuit;
  };
  class Iterator {
   public:
    Iterator(const Corpus* c, std::size_t i) : corpus_(c), i_(i) {}
    Entry operator*() const { return {corpus_->record(i_), corpus_->circuit(i_)}; }
    Iterator& operator++() { ++i_; return *this; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }
   private:
    const Corpus* corpus_;
    std::size_t i_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, records_.size()); }

  const std::string& root() const { return root_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t files_scanned() const { return files_scanned_; }
  std::uint64_t modules_skipped() const { return modules_skipped_; }
  std::uint64_t dup_dropped() const { return dup_dropped_; }
  double elapsed_ms() const { return elapsed_ms_; }
  /// Aggregate no-slurp evidence: the largest lexer carry-over and token
  /// seen across every scanned file (peak_carry <= max_token by contract).
  std::size_t peak_carry_bytes() const { return peak_carry_bytes_; }
  std::size_t max_token_bytes() const { return max_token_bytes_; }

  /// One JSON document: scan totals plus one manifest row per design
  /// (name, file, bytes, nodes/pis/pos/ffs/levels, structural hash,
  /// parse_ms). Deterministic given the same corpus and options.
  std::string manifest_json() const;

 private:
  std::string root_;
  std::vector<DesignRecord> records_;
  std::vector<Circuit> circuits_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t files_scanned_ = 0;
  std::uint64_t modules_skipped_ = 0;
  std::uint64_t dup_dropped_ = 0;
  std::size_t peak_carry_bytes_ = 0;
  std::size_t max_token_bytes_ = 0;
  double elapsed_ms_ = 0.0;
};

}  // namespace deepseq::ingest
