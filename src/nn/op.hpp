#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "nn/graph.hpp"
#include "nn/tensor.hpp"

namespace deepseq::nn {

/// Operation kinds of the record layer. Every Graph op method builds one Op;
/// the Plan fuses a flushed batch into chain tasks separated by cut waves and
/// the Executor runs the per-kind kernels (forward and backward) over the
/// chains' steps.
enum class OpKind : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kAddRow,
  kMatmul,
  kScale,
  kSigmoid,
  kTanh,
  kRelu,
  kOneMinus,
  kConcatCols,
  kGather,
  /// Copy rows of inputs[0] into the rows of a state slab named by
  /// `segment` (row i of the values lands at slab row segment[i]). The
  /// output Var is a slab *version* marker (empty tensor, slab_base set) —
  /// the data lives in the base slab tensor. inputs[1] is the consumed
  /// version (ordering + the base pointer); inputs[2..] are the version's
  /// readers, recorded purely so the planner orders every gather of the old
  /// rows before the overwrite.
  kScatterRows,
  kSegmentSoftmax,
  kMulCol,
  kSegmentSum,
  kSegmentMax,
  kL1Loss,
  kL1LossWeighted,
  kSoftmaxXent,
};

const char* op_name(OpKind k);

/// Ordered operand list with inline storage for the common case: all but
/// concat_cols and gather reference at most two Vars, so steady-state
/// recording never heap-allocates for operands. Past the inline capacity the
/// whole list moves to a spill vector (elements stay contiguous either way),
/// whose capacity survives clear() — recycled Ops re-record into warm
/// storage.
class InlineInputs {
 public:
  static constexpr std::size_t kInline = 2;

  InlineInputs() = default;

  InlineInputs& operator=(std::initializer_list<Var> vs) {
    clear();
    for (const Var& v : vs) push_back(v);
    return *this;
  }

  void assign(const std::vector<Var>& vs) {
    clear();
    for (const Var& v : vs) push_back(v);
  }

  void push_back(const Var& v) {
    if (size_ < kInline) {
      inline_[size_] = v;
    } else {
      if (size_ == kInline && spill_.empty()) {
        spill_.reserve(kInline * 2);
        for (std::size_t i = 0; i < kInline; ++i)
          spill_.push_back(std::move(inline_[i]));
        for (std::size_t i = 0; i < kInline; ++i) inline_[i].reset();
      }
      spill_.push_back(v);
    }
    ++size_;
  }

  void clear() {
    for (std::size_t i = 0; i < kInline; ++i) inline_[i].reset();
    spill_.clear();  // keeps capacity: recycled ops reuse the allocation
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Var& operator[](std::size_t i) const { return begin()[i]; }
  Var& operator[](std::size_t i) {
    return const_cast<Var*>(begin())[i];
  }

  const Var* begin() const { return size_ <= kInline ? inline_ : spill_.data(); }
  const Var* end() const { return begin() + size_; }

 private:
  Var inline_[kInline];
  std::vector<Var> spill_;
  std::uint32_t size_ = 0;
};

/// One recorded operation: output node, ordered operands, and the kernel
/// arguments the executor needs. Ops double as the autograd tape entries:
/// forward-pass byproducts the backward kernels consume (`argmax`, `saved`)
/// are filled in during execution, before any backward runs.
struct Op {
  OpKind kind = OpKind::kAdd;
  Var out;
  /// Ordered operands. For kGather these are the unique referenced Vars
  /// (the per-row fan-out lives in `refs`).
  InlineInputs inputs;

  float scalar = 0.0f;       // kScale factor
  std::vector<int> segment;  // segment ops: row -> segment; kSoftmaxXent: labels
  int num_segments = 0;
  std::vector<RowRef> refs;  // kGather source rows
  /// Slab accounting, filled at record time: rows this op moves through a
  /// state slab (gather rows resolved against a slab base, or scatter_rows'
  /// row count). Summed into PlanStats so slab traffic is observable
  /// without walking refs at plan time.
  std::uint32_t slab_rows = 0;
  Tensor attr_a;             // loss target
  Tensor attr_b;             // loss weight
  std::vector<int> argmax;   // kSegmentMax: argmax rows, filled by forward
  Tensor saved;              // kSoftmaxXent: softmax cached for backward
};

}  // namespace deepseq::nn
