#pragma once

// Client half of the serving tier: one TCP connection, many in-flight
// requests. submit() assigns a request id, writes the frame under a write
// lock and parks a promise; one background reader thread splits response
// frames and fulfills the matching promise — so N threads (or one
// closed-loop driver) share a single connection without coordination.
// Typed server errors surface as ServeError carrying the wire ErrorCode,
// which is how callers distinguish backpressure (kOverload*) from broken
// requests and compute failures.

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace deepseq::serve {

/// A typed error frame from the server. code() tells a caller whether to
/// back off (kOverloadQueueFull / kOverloadDeadline), give up
/// (kShuttingDown) or fix the request (kBadRequest).
class ServeError : public Error {
 public:
  ServeError(ErrorCode code, const std::string& detail)
      : Error(std::string("serve: ") + error_code_name(code) + ": " + detail),
        code_(code) {}
  ErrorCode code() const { return code_; }
  bool overloaded() const {
    return code_ == ErrorCode::kOverloadQueueFull ||
           code_ == ErrorCode::kOverloadDeadline;
  }

 private:
  ErrorCode code_;
};

/// One served task: the result (bit-identical to an in-process run_sync)
/// plus which shard computed it.
struct TaskReply {
  api::TaskResult result;
  int shard = 0;
};

class Client {
 public:
  /// Connect to a serving tier on `host`:`port` (the daemon binds
  /// 127.0.0.1). Throws Error when the connection fails.
  explicit Client(std::uint16_t port, const std::string& host = "127.0.0.1");
  /// Closes the connection; every unfulfilled future gets a ServeError
  /// (kShuttingDown, "connection closed").
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one task; the future carries the reply or throws ServeError /
  /// Error. `deadline_ms` is the server-side latency budget (0 = none) —
  /// admission control sheds the request (future throws ServeError with
  /// kOverloadDeadline) when its estimated queue wait exceeds it.
  std::future<TaskReply> submit(const api::TaskRequest& request,
                                std::uint32_t deadline_ms = 0);

  /// submit + get: the closed-loop call.
  TaskReply run(const api::TaskRequest& request, std::uint32_t deadline_ms = 0);

  /// Coordinated weight push: resolve `artifact_ref` ("name@hash",
  /// "name@latest" or bare name) on the server and flip every shard.
  /// Returns the new serving fingerprint.
  std::uint64_t reload(const std::string& artifact_ref,
                       const std::string& backend = "");

  /// The server's health/stats JSON document.
  std::string stats_json();

 private:
  struct Pending {
    std::promise<TaskReply> task;
    std::promise<ReloadResponseMsg> reload;
    std::promise<StatsResponseMsg> stats;
    MsgType kind = MsgType::kTaskRequest;  // which promise is armed
  };

  void reader_loop();
  /// Write one framed request; on failure, deliver the error through the
  /// pending entry's promise (via `fail`) and drop it.
  void send_or_fail(std::uint64_t request_id, const std::string& frame,
                    const std::function<void(Pending&, std::exception_ptr)>& fail);
  void fail_all(const std::string& why);

  int fd_ = -1;
  std::thread reader_;

  std::mutex write_mu_;
  std::mutex pending_mu_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  bool closed_ = false;  // under pending_mu_
};

}  // namespace deepseq::serve
