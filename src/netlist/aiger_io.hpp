#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Parse an ASCII AIGER (.aag) sequential AIG:
///
///   aag M I L O A
///   <I input literals>
///   <L latch lines: current next>
///   <O output literals>
///   <A and lines: lhs rhs0 rhs1>
///   [symbol table: iK/lK/oK name]  [c comment]
///
/// Complemented literals become explicit NOT nodes (one per complemented
/// variable), matching the paper's four-node-type AIG representation.
Circuit parse_aiger(std::istream& in, std::string circuit_name = "aig");
Circuit parse_aiger_string(const std::string& text,
                           std::string circuit_name = "aig");
Circuit parse_aiger_file(const std::string& path);

/// Serialize a strict sequential AIG (PI/AND/NOT/FF/CONST0 only) to ASCII
/// AIGER. NOT nodes are folded into complemented edges. Throws CircuitError
/// if the circuit contains generic gate types.
void write_aiger(const Circuit& c, std::ostream& out);
std::string write_aiger_string(const Circuit& c);
void write_aiger_file(const Circuit& c, const std::string& path);

/// Binary AIGER (.aig): inputs and latch current-state literals are implicit
/// consecutive variables, AND gates are delta-compressed varint pairs
/// ("aig M I L O A" with M = I + L + A). Same node-construction semantics as
/// the ASCII parser; the stream must be opened in binary mode.
Circuit parse_aiger_binary(std::istream& in, std::string circuit_name = "aig");
Circuit parse_aiger_binary_file(const std::string& path);
void write_aiger_binary(const Circuit& c, std::ostream& out);
void write_aiger_binary_file(const Circuit& c, const std::string& path);

}  // namespace deepseq
