#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"
#include "nn/tensor.hpp"

namespace deepseq::nn {

/// Operation kinds of the record layer. Every Graph op method builds one Op;
/// the Plan levels a flushed batch into waves and the Executor runs the
/// per-kind kernels (forward and backward) over row/column chunks.
enum class OpKind : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kAddRow,
  kMatmul,
  kScale,
  kSigmoid,
  kTanh,
  kRelu,
  kOneMinus,
  kConcatCols,
  kGather,
  kSegmentSoftmax,
  kMulCol,
  kSegmentSum,
  kSegmentMax,
  kL1Loss,
  kL1LossWeighted,
  kSoftmaxXent,
};

const char* op_name(OpKind k);

/// One recorded operation: output node, ordered operands, and the kernel
/// arguments the executor needs. Ops double as the autograd tape entries:
/// forward-pass byproducts the backward kernels consume (`argmax`, `saved`)
/// are filled in during execution, before any backward runs.
struct Op {
  OpKind kind = OpKind::kAdd;
  Var out;
  /// Ordered operands. For kGather these are the unique referenced Vars
  /// (the per-row fan-out lives in `refs`).
  std::vector<Var> inputs;

  float scalar = 0.0f;       // kScale factor
  std::vector<int> segment;  // segment ops: row -> segment; kSoftmaxXent: labels
  int num_segments = 0;
  std::vector<RowRef> refs;  // kGather source rows
  Tensor attr_a;             // loss target
  Tensor attr_b;             // loss weight
  std::vector<int> argmax;   // kSegmentMax: argmax rows, filled by forward
  Tensor saved;              // kSoftmaxXent: softmax cached for backward
};

}  // namespace deepseq::nn
