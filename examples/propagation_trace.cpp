// Traces the customized propagation scheme of Fig. 2 on its 8-node example
// circuit: cycle removal (FFs become pseudo primary inputs), the levelized
// forward schedule, the reverse schedule, and the FF state-copy step. Run
// this to see exactly which nodes exchange messages at each step.

#include <cstdio>

#include "core/circuit_graph.hpp"
#include "netlist/topology.hpp"

using namespace deepseq;

namespace {

void print_batches(const Circuit& c, const std::vector<LevelBatch>& batches,
                   const char* direction) {
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::printf("  %s step %zu:\n", direction, b + 1);
    const LevelBatch& batch = batches[b];
    for (std::size_t t = 0; t < batch.targets.size(); ++t) {
      std::printf("    %s <-", c.node_name(batch.targets[t]).c_str());
      for (std::size_t e = 0; e < batch.sources.size(); ++e)
        if (batch.segment[e] == static_cast<int>(t))
          std::printf(" %s", c.node_name(batch.sources[e]).c_str());
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  // The Fig. 2 shape: two PIs feeding a cone, one FF closing a cycle.
  Circuit c("fig2");
  const NodeId i1 = c.add_pi("pi1");
  const NodeId i2 = c.add_pi("pi2");
  const NodeId ff = c.add_ff(kNullNode, "ff3");
  const NodeId g4 = c.add_and(i1, i2, "and4");
  const NodeId g5 = c.add_and(g4, ff, "and5");
  const NodeId g6 = c.add_not(g5, "not6");
  const NodeId g7 = c.add_and(g6, i2, "and7");
  const NodeId g8 = c.add_not(g7, "not8");
  c.set_fanin(ff, 0, g6);  // feedback: not6 -> ff3 -> and5
  c.add_po(g8, "po");
  c.validate();

  std::printf("Input circuit: %zu nodes, cycle not6 -> ff3 -> and5 -> not6\n\n",
              c.num_nodes());

  std::printf("Step 1 — remove FF incoming edges (FFs become pseudo PIs):\n");
  const Levelization lv = comb_levelize(c);
  for (int l = 0; l <= lv.depth; ++l) {
    std::printf("  level %d:", l);
    for (NodeId v : lv.by_level[static_cast<std::size_t>(l)])
      std::printf(" %s", c.node_name(v).c_str());
    std::printf("\n");
  }

  const CircuitGraph graph = build_circuit_graph(c);
  std::printf("\nStep 2 — forward propagation (levelized, PIs fixed):\n");
  print_batches(c, graph.comb_forward, "forward");

  std::printf("\nStep 3 — reverse propagation (implications from successors):\n");
  print_batches(c, graph.comb_reverse, "reverse");

  std::printf("\nStep 4 — FF update (clock edge, copy D-predecessor state):\n");
  for (std::size_t k = 0; k < graph.ff_targets.size(); ++k)
    std::printf("  %s := state(%s)\n", c.node_name(graph.ff_targets[k]).c_str(),
                c.node_name(graph.ff_sources[k]).c_str());

  std::printf("\nThe four steps repeat T times (paper: T=10); compare with\n"
              "the baseline schedule, which keeps FFs as ordinary nodes:\n");
  std::printf("\nBaseline (acyclified DAG) forward schedule:\n");
  print_batches(c, graph.baseline_forward, "forward");
  return 0;
}
