#include "power/grannite.hpp"

#include <numeric>

#include "common/error.hpp"
#include "core/trainer.hpp"

namespace deepseq {

using nn::Graph;
using nn::RowRef;
using nn::Tensor;
using nn::Var;

GranniteSample make_grannite_sample(const TrainSample& base) {
  GranniteSample s;
  s.base = &base;
  const int n = base.graph.num_nodes;
  s.source_feats = Tensor(n, 3);
  s.comb_mask = Tensor(n, 2);
  for (int v = 0; v < n; ++v) {
    const bool is_pi = base.graph.features.at(v, feature_index(GateType::kPi)) > 0.5f;
    const bool is_ff = base.graph.features.at(v, feature_index(GateType::kFf)) > 0.5f;
    if (is_pi || is_ff) {
      // Simulator-derived activity of sequential elements and inputs
      // (Grannite's "RTL simulation" inputs).
      const float rate = base.target_tr.at(v, 0) + base.target_tr.at(v, 1);
      s.source_feats.at(v, 0) = rate;
      s.source_feats.at(v, 1) = base.target_lg.at(v, 0);
      s.source_feats.at(v, 2) = 1.0f;
    } else {
      s.comb_mask.at(v, 0) = 1.0f;
      s.comb_mask.at(v, 1) = 1.0f;
    }
  }
  return s;
}

GranniteModel::GranniteModel(const GranniteConfig& config) : config_(config) {
  Rng rng(config.seed);
  const int d = config.hidden_dim;
  agg_ = Aggregator(AggregatorKind::kAttention, d, rng, "grannite.agg");
  // Input = message + one-hot type + the 3 source features.
  gru_ = nn::GruCell(d + kFeatureDim + 3, d, rng, "grannite.gru");
  head_ = nn::Mlp({d, d, 2}, nn::Activation::kSigmoid, rng, "grannite.head");
}

Var GranniteModel::forward(Graph& g, const CircuitGraph& graph,
                           const Tensor& source_feats,
                           std::uint64_t init_seed) const {
  const int d = config_.hidden_dim;
  const int n = graph.num_nodes;
  if (source_feats.rows() != n || source_feats.cols() != 3)
    throw Error("GranniteModel: source feature shape mismatch");

  // Extended per-node features: one-hot type || source activity.
  Tensor feats(n, kFeatureDim + 3);
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < kFeatureDim; ++c) feats.at(v, c) = graph.features.at(v, c);
    for (int c = 0; c < 3; ++c) feats.at(v, kFeatureDim + c) = source_feats.at(v, c);
  }
  const Var features = g.constant(std::move(feats));

  // Source states broadcast their activity; gates start from seeded noise.
  Rng rng(init_seed);
  Tensor h0(n, d);
  for (int v = 0; v < n; ++v) {
    if (source_feats.at(v, 2) > 0.5f) {
      for (int c = 0; c < d; ++c)
        h0.at(v, c) = (c % 2 == 0) ? source_feats.at(v, 0) : source_feats.at(v, 1);
    } else {
      for (int c = 0; c < d; ++c) h0.at(v, c) = static_cast<float>(rng.uniform());
    }
  }
  const Var init = g.constant(std::move(h0));

  std::vector<RowRef> state(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) state[v] = RowRef{init, v};

  // Single forward sweep over the combinational levels (no reverse pass, no
  // FF update, no recursion — the Grannite schedule).
  for (const auto& batch : graph.comb_forward) {
    const int num_targets = static_cast<int>(batch.targets.size());
    std::vector<RowRef> target_refs, edge_refs, source_refs, feat_refs;
    for (NodeId v : batch.targets) {
      target_refs.push_back(state[v]);
      feat_refs.push_back(RowRef{features, static_cast<int>(v)});
    }
    for (std::size_t e = 0; e < batch.sources.size(); ++e) {
      edge_refs.push_back(state[batch.targets[batch.segment[e]]]);
      source_refs.push_back(state[batch.sources[e]]);
    }
    const Var hv_prev = g.gather(target_refs);
    const Var hu = g.gather(source_refs);
    const Var m = agg_.aggregate(g, hv_prev, g.gather(edge_refs), hu,
                                 batch.segment, num_targets);
    const Var x = g.concat_cols({m, g.gather(feat_refs)});
    const Var h_new = gru_.apply(g, x, hv_prev);
    for (int i = 0; i < num_targets; ++i)
      state[batch.targets[i]] = RowRef{h_new, i};
  }

  std::vector<RowRef> all;
  all.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) all.push_back(state[v]);
  return head_.apply(g, g.gather(all));
}

void GranniteModel::fit(const std::vector<GranniteSample>& samples, int epochs,
                        float lr, std::uint64_t shuffle_seed,
                        bool balance_active) {
  nn::Adam adam(params(), nn::AdamOptions{lr, 0.9f, 0.999f, 1e-8f, 5.0f});
  Rng rng(shuffle_seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    int in_batch = 0;
    adam.zero_grad();
    for (std::size_t i = 0; i < order.size(); ++i) {
      const GranniteSample& s = samples[order[i]];
      Graph g(true);
      const Var pred = forward(g, s.base->graph, s.source_feats, s.base->init_seed);
      Tensor weight = s.comb_mask;
      if (balance_active) {
        const Tensor bal = balanced_tr_weights(s.base->target_tr);
        for (std::size_t k = 0; k < weight.size(); ++k)
          weight.data()[k] *= bal.data()[k];
      }
      const Var loss = g.l1_loss_weighted(pred, s.base->target_tr, weight);
      g.backward(loss);
      if (++in_batch >= 4 || i + 1 == order.size()) {
        adam.step();
        adam.zero_grad();
        in_batch = 0;
      }
    }
  }
}

std::vector<double> GranniteModel::toggle_rates(const CircuitGraph& graph,
                                                const Tensor& source_feats,
                                                std::uint64_t init_seed) const {
  Graph g(false);
  const Var pred = forward(g, graph, source_feats, init_seed);
  std::vector<double> rates(static_cast<std::size_t>(graph.num_nodes));
  for (int v = 0; v < graph.num_nodes; ++v) {
    if (source_feats.at(v, 2) > 0.5f) {
      rates[v] = source_feats.at(v, 0);  // simulation truth for PI/FF
    } else {
      rates[v] = pred->value.at(v, 0) + pred->value.at(v, 1);
    }
  }
  return rates;
}

nn::NamedParams GranniteModel::params() const {
  nn::NamedParams out;
  agg_.collect_params(out);
  gru_.collect_params(out);
  head_.collect_params(out);
  return out;
}

void GranniteModel::copy_params_from(const GranniteModel& other) {
  const nn::NamedParams mine = params();
  const nn::NamedParams theirs = other.params();
  if (mine.size() != theirs.size())
    throw Error("GranniteModel::copy_params_from: architecture mismatch");
  for (std::size_t i = 0; i < mine.size(); ++i)
    mine[i].second->value = theirs[i].second->value;
}

}  // namespace deepseq
