#include "core/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <set>

#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"
#include "nn/gradcheck.hpp"

namespace deepseq {
namespace {

using nn::Graph;
using nn::Tensor;

struct ModelFixture {
  Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  CircuitGraph graph = build_circuit_graph(aig);
  Workload w;

  ModelFixture() { w.pi_prob = {0.2, 0.5, 0.8, 0.4}; }
};

TEST(ModelConfig, PresetsMatchPaperRows) {
  const ModelConfig ds = ModelConfig::deepseq();
  EXPECT_EQ(ds.aggregator, AggregatorKind::kDualAttention);
  EXPECT_EQ(ds.propagation, PropagationKind::kDeepSeqCustom);
  EXPECT_EQ(ds.iterations, 10);
  EXPECT_EQ(ds.hidden_dim, 64);

  const ModelConfig conv = ModelConfig::dag_conv_gnn(AggregatorKind::kConvSum);
  EXPECT_EQ(conv.iterations, 1);
  EXPECT_EQ(conv.propagation, PropagationKind::kBaselineDag);

  const ModelConfig rec = ModelConfig::dag_rec_gnn(AggregatorKind::kAttention);
  EXPECT_EQ(rec.iterations, 10);

  EXPECT_EQ(ModelConfig::deepseq().description(), "DeepSeq / Dual Attention");
  EXPECT_EQ(conv.description(), "DAG-ConvGNN / Conv. Sum");
  EXPECT_EQ(rec.description(), "DAG-RecGNN / Attention");
}

TEST(Model, OutputShapesAndRanges) {
  ModelFixture f;
  const DeepSeqModel model(ModelConfig::deepseq(16, 2));
  Graph g(false);
  const auto out = model.forward(g, f.graph, f.w, 1);
  EXPECT_EQ(out.tr->value.rows(), f.graph.num_nodes);
  EXPECT_EQ(out.tr->value.cols(), 2);
  EXPECT_EQ(out.lg->value.rows(), f.graph.num_nodes);
  EXPECT_EQ(out.lg->value.cols(), 1);
  for (std::size_t i = 0; i < out.tr->value.size(); ++i) {
    EXPECT_GE(out.tr->value.data()[i], 0.0f);
    EXPECT_LE(out.tr->value.data()[i], 1.0f);
  }
}

class ModelVariants : public ::testing::TestWithParam<ModelConfig> {};

TEST_P(ModelVariants, ForwardRunsAndBackpropagates) {
  ModelFixture f;
  const DeepSeqModel model(GetParam());
  const Tensor target_tr = Tensor::full(f.graph.num_nodes, 2, 0.25f);
  const Tensor target_lg = Tensor::full(f.graph.num_nodes, 1, 0.5f);
  Graph g(true);
  const auto out = model.forward(g, f.graph, f.w, 1);
  const auto loss = g.add(g.l1_loss(out.tr, target_tr), g.l1_loss(out.lg, target_lg));
  g.backward(loss);
  // Every parameter must receive a gradient.
  int with_grad = 0;
  for (const auto& [name, p] : model.params()) with_grad += p->has_grad();
  EXPECT_EQ(with_grad, static_cast<int>(model.params().size()));
}

INSTANTIATE_TEST_SUITE_P(
    TableIIRows, ModelVariants,
    ::testing::Values(ModelConfig::dag_conv_gnn(AggregatorKind::kConvSum, 8),
                      ModelConfig::dag_conv_gnn(AggregatorKind::kAttention, 8),
                      ModelConfig::dag_rec_gnn(AggregatorKind::kConvSum, 8, 3),
                      ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, 8, 3),
                      ModelConfig::deepseq_simple_attention(8, 3),
                      ModelConfig::deepseq(8, 3)));

TEST(Model, ParamNamesUnique) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  const auto params = model.params();
  std::set<std::string> names;
  for (const auto& [n, v] : params) names.insert(n);
  EXPECT_EQ(names.size(), params.size());
  EXPECT_GT(params.size(), 20u);  // two aggregators, two GRUs, two MLPs
}

TEST(Model, BackboneExcludesHeads) {
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  EXPECT_LT(model.backbone_params().size(), model.params().size());
  for (const auto& [n, v] : model.backbone_params())
    EXPECT_EQ(n.find("mlp_"), std::string::npos);
}

TEST(Model, SaveLoadRoundTrip) {
  ModelFixture f;
  DeepSeqModel m1(ModelConfig::deepseq(8, 2));
  const std::string path = ::testing::TempDir() + "/model.bin";
  m1.save(path);

  ModelConfig cfg2 = ModelConfig::deepseq(8, 2);
  cfg2.seed = 12345;  // different init
  DeepSeqModel m2(cfg2);
  Graph ga(false), gb(false);
  const Tensor before = m2.forward(ga, f.graph, f.w, 1).lg->value;
  m2.load(path);
  const Tensor after = m2.forward(gb, f.graph, f.w, 1).lg->value;
  Graph gc(false);
  const Tensor reference = m1.forward(gc, f.graph, f.w, 1).lg->value;
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_FLOAT_EQ(after.data()[i], reference.data()[i]);
  // And the load actually changed something.
  double diff = 0.0;
  for (std::size_t i = 0; i < after.size(); ++i)
    diff += std::abs(after.data()[i] - before.data()[i]);
  EXPECT_GT(diff, 1e-4);
}

TEST(Model, CopyParamsFromMatchesOutputs) {
  ModelFixture f;
  const DeepSeqModel src(ModelConfig::deepseq(8, 2));
  ModelConfig cfg = ModelConfig::deepseq(8, 2);
  cfg.seed = 4321;
  DeepSeqModel dst(cfg);
  dst.copy_params_from(src);
  Graph g1(false), g2(false);
  const Tensor a = src.forward(g1, f.graph, f.w, 9).tr->value;
  const Tensor b = dst.forward(g2, f.graph, f.w, 9).tr->value;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

TEST(Model, CopyParamsArchMismatchThrows) {
  const DeepSeqModel src(ModelConfig::deepseq(8, 2));
  DeepSeqModel dst(ModelConfig::deepseq(16, 2));
  EXPECT_THROW(dst.copy_params_from(src), Error);
}

TEST(Model, WorkloadSizeMismatchThrows) {
  ModelFixture f;
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));
  Workload bad;
  bad.pi_prob = {0.5};
  Graph g(false);
  EXPECT_THROW(model.forward(g, f.graph, bad, 1), Error);
}

TEST(Model, GradCheckEndToEnd) {
  // Full model finite-difference check on a tiny circuit: validates the
  // whole unrolled propagation graph (gather/attention/GRU/FF-copy chain).
  Circuit c("tiny");
  const NodeId a = c.add_pi("a");
  const NodeId ff = c.add_ff(kNullNode, "q");
  const NodeId g1 = c.add_and(a, ff, "g1");
  const NodeId n1 = c.add_not(g1, "n1");
  c.set_fanin(ff, 0, n1);
  c.add_po(n1, "o");
  c.validate();
  const CircuitGraph graph = build_circuit_graph(c);
  const DeepSeqModel model(ModelConfig::deepseq(4, 2));
  Workload w;
  w.pi_prob = {0.3};
  const Tensor target = Tensor::full(graph.num_nodes, 4, 0.2f);
  const Tensor zeros = Tensor(graph.num_nodes, 4);

  // Check the unrolled propagation composition (gather / attention / GRU /
  // FF-copy across iterations) through the *backbone*, whose path is smooth
  // (sigmoid, tanh, softmax). The ReLU regressor heads are unit-gradchecked
  // in test_modules.cpp; their kinks would corrupt finite differences here.
  auto forward = [&](Graph& g) {
    const auto emb = model.embed(g, graph, w, 3);
    const auto d = g.sub(emb, g.constant(target));
    return g.l1_loss(g.mul(d, d), zeros);  // smooth squared error
  };
  const auto res = nn::grad_check(forward, model.backbone_params(), 5e-3f, 2);
  EXPECT_LT(res.max_rel_error, 0.08) << "worst: " << res.worst_param;
}

}  // namespace
}  // namespace deepseq
