#include "dataset/test_designs.hpp"

#include <algorithm>
#include <functional>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/blocks.hpp"

namespace deepseq {

namespace {

/// Shared scaffolding for the per-design recipes: a circuit under
/// construction, the pool of reusable signals, and gating enables that the
/// low-activity workloads will pin — producing the paper's ~70% static
/// gates under realistic stimuli.
struct DesignBuilder {
  Circuit c;
  Rng rng;
  std::vector<NodeId> signals;
  std::vector<NodeId> enables;
  int block_id = 0;

  DesignBuilder(const std::string& name, std::uint64_t seed)
      : c(name), rng(seed) {}

  std::string tag(const char* kind) {
    return std::string(kind) + std::to_string(block_id++);
  }

  NodeId sig() { return signals[rng.uniform_index(signals.size())]; }
  NodeId enable() { return enables[rng.uniform_index(enables.size())]; }

  std::vector<NodeId> sigs(int n) {
    std::vector<NodeId> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) out.push_back(sig());
    return out;
  }

  void absorb(const std::vector<NodeId>& outs) {
    signals.insert(signals.end(), outs.begin(), outs.end());
  }

  void make_ios(int data_pis, int enable_pis) {
    for (int i = 0; i < data_pis; ++i)
      signals.push_back(c.add_pi("in" + std::to_string(i)));
    for (int i = 0; i < enable_pis; ++i) {
      const NodeId e = c.add_pi("en" + std::to_string(i));
      enables.push_back(e);
      signals.push_back(e);
    }
  }

  void finish() {
    const auto fanouts = c.fanouts();
    int po = 0;
    for (NodeId v = 0; v < c.num_nodes(); ++v) {
      if (c.type(v) == GateType::kPi) continue;
      if (fanouts[v].empty()) c.add_po(v, "po" + std::to_string(po++));
    }
    if (c.pos().empty()) c.add_po(static_cast<NodeId>(c.num_nodes() - 1), "po0");
    c.validate();
  }
};

using BlockFn = std::function<void(DesignBuilder&)>;

void add_counter(DesignBuilder& b, int min_bits, int max_bits) {
  const int bits = static_cast<int>(b.rng.uniform_int(min_bits, max_bits));
  b.absorb(blocks::counter(b.c, bits, b.enable(), b.tag("cnt")));
}
void add_shift(DesignBuilder& b, int min_d, int max_d) {
  const int depth = static_cast<int>(b.rng.uniform_int(min_d, max_d));
  b.absorb(blocks::shift_register(b.c, b.sig(), depth, b.enable(), b.tag("sr")));
}
void add_lfsr(DesignBuilder& b) {
  b.absorb(blocks::lfsr(b.c, static_cast<int>(b.rng.uniform_int(4, 12)), b.tag("lfsr")));
}
void add_mux_tree(DesignBuilder& b) {
  const int sel_bits = static_cast<int>(b.rng.uniform_int(2, 4));
  b.signals.push_back(blocks::mux_tree(b.c, b.sigs(1 << sel_bits),
                                       b.sigs(sel_bits), b.tag("mx")));
}
void add_adder(DesignBuilder& b, int min_w, int max_w) {
  const int w = static_cast<int>(b.rng.uniform_int(min_w, max_w));
  b.absorb(blocks::ripple_adder(b.c, b.sigs(w), b.sigs(w), b.tag("add")));
}
void add_parity(DesignBuilder& b) {
  b.signals.push_back(
      blocks::parity(b.c, b.sigs(static_cast<int>(b.rng.uniform_int(4, 12))), b.tag("par")));
}
void add_equal(DesignBuilder& b, int min_w, int max_w) {
  const int w = static_cast<int>(b.rng.uniform_int(min_w, max_w));
  b.signals.push_back(blocks::equal(b.c, b.sigs(w), b.sigs(w), b.tag("eq")));
}
void add_fsm(DesignBuilder& b) {
  const int bits = static_cast<int>(b.rng.uniform_int(2, 5));
  b.absorb(blocks::random_fsm(b.c, bits, b.sigs(4), b.rng, b.tag("fsm")));
}
void add_arbiter(DesignBuilder& b) {
  const int n = static_cast<int>(b.rng.uniform_int(3, 6));
  b.absorb(blocks::arbiter(b.c, b.sigs(n), b.tag("arb")));
}
void add_gated_bank(DesignBuilder& b) {
  const int w = static_cast<int>(b.rng.uniform_int(4, 16));
  b.absorb(blocks::gated_register_bank(b.c, b.sigs(w), b.enable(), b.tag("bank")));
}

struct Recipe {
  std::string description;
  int paper_nodes;
  int data_pis, enable_pis;
  std::vector<std::pair<double, BlockFn>> menu;  // weight, builder
};

Recipe recipe_for(const std::string& name) {
  using namespace std::placeholders;
  if (name == "noc_router")
    return {"Network-on-Chip router", 5246, 20, 6,
            {{3, [](DesignBuilder& b) { add_arbiter(b); }},
             {3, [](DesignBuilder& b) { add_mux_tree(b); }},
             {3, [](DesignBuilder& b) { add_shift(b, 4, 12); }},
             {2, [](DesignBuilder& b) { add_equal(b, 4, 8); }},
             {1, [](DesignBuilder& b) { add_fsm(b); }},
             {1, [](DesignBuilder& b) { add_gated_bank(b); }}}};
  if (name == "pll")
    return {"Phase locked loop", 18208, 12, 8,
            {{4, [](DesignBuilder& b) { add_counter(b, 6, 16); }},
             {3, [](DesignBuilder& b) { add_adder(b, 8, 16); }},
             {2, [](DesignBuilder& b) { add_lfsr(b); }},
             {2, [](DesignBuilder& b) { add_equal(b, 6, 12); }},
             {1, [](DesignBuilder& b) { add_gated_bank(b); }}}};
  if (name == "ptc")
    return {"PWM/Timer/Counter IP core", 2024, 10, 4,
            {{4, [](DesignBuilder& b) { add_counter(b, 4, 10); }},
             {3, [](DesignBuilder& b) { add_equal(b, 4, 10); }},
             {2, [](DesignBuilder& b) { add_fsm(b); }},
             {1, [](DesignBuilder& b) { add_mux_tree(b); }}}};
  if (name == "rtcclock")
    return {"Real-time clock core", 4720, 8, 4,
            {{5, [](DesignBuilder& b) { add_counter(b, 6, 14); }},
             {3, [](DesignBuilder& b) { add_equal(b, 6, 14); }},
             {2, [](DesignBuilder& b) { add_adder(b, 4, 8); }},
             {1, [](DesignBuilder& b) { add_gated_bank(b); }}}};
  if (name == "ac97_ctrl")
    return {"Audio Codec 97 controller", 14004, 24, 8,
            {{4, [](DesignBuilder& b) { add_shift(b, 8, 20); }},
             {3, [](DesignBuilder& b) { add_gated_bank(b); }},
             {2, [](DesignBuilder& b) { add_fsm(b); }},
             {2, [](DesignBuilder& b) { add_parity(b); }},
             {2, [](DesignBuilder& b) { add_counter(b, 4, 10); }},
             {1, [](DesignBuilder& b) { add_mux_tree(b); }}}};
  if (name == "mem_ctrl")
    return {"Memory controller", 10733, 24, 8,
            {{3, [](DesignBuilder& b) { add_fsm(b); }},
             {3, [](DesignBuilder& b) { add_adder(b, 8, 16); }},
             {3, [](DesignBuilder& b) { add_mux_tree(b); }},
             {2, [](DesignBuilder& b) { add_gated_bank(b); }},
             {2, [](DesignBuilder& b) { add_shift(b, 4, 10); }},
             {1, [](DesignBuilder& b) { add_arbiter(b); }}}};
  throw Error("build_test_design: unknown design '" + name + "'");
}

}  // namespace

double default_design_scale() { return full_scale() ? 1.0 : 0.125; }

TestDesign build_test_design(const std::string& name, double scale,
                             std::uint64_t seed) {
  const Recipe recipe = recipe_for(name);
  const int target =
      std::max(64, static_cast<int>(recipe.paper_nodes * scale));

  DesignBuilder b(name, seed ^ std::hash<std::string>{}(name));
  b.make_ios(recipe.data_pis, recipe.enable_pis);

  double total_weight = 0.0;
  for (const auto& [w, fn] : recipe.menu) total_weight += w;
  while (static_cast<int>(b.c.num_nodes()) < target) {
    double x = b.rng.uniform(0.0, total_weight);
    for (const auto& [w, fn] : recipe.menu) {
      x -= w;
      if (x < 0.0) {
        fn(b);
        break;
      }
    }
  }
  b.finish();

  TestDesign d;
  d.name = name;
  d.description = recipe.description;
  d.paper_nodes = recipe.paper_nodes;
  d.netlist = std::move(b.c);
  return d;
}

std::vector<TestDesign> build_all_test_designs(double scale,
                                               std::uint64_t seed) {
  std::vector<TestDesign> out;
  for (const char* name :
       {"noc_router", "pll", "ptc", "rtcclock", "ac97_ctrl", "mem_ctrl"})
    out.push_back(build_test_design(name, scale, seed));
  return out;
}

}  // namespace deepseq
