#include "netlist/topology.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"

namespace deepseq {
namespace {

TEST(Topology, SourcesAtLevelZero) {
  const Circuit c = iscas89_s27();
  const Levelization lv = comb_levelize(c);
  for (NodeId pi : c.pis()) EXPECT_EQ(lv.level[pi], 0);
  for (NodeId ff : c.ffs()) EXPECT_EQ(lv.level[ff], 0);
}

TEST(Topology, GateAboveItsFanins) {
  const Circuit c = iscas89_s27();
  const Levelization lv = comb_levelize(c);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.type(v) == GateType::kFf || c.type(v) == GateType::kPi) continue;
    for (int i = 0; i < c.num_fanins(v); ++i)
      EXPECT_GT(lv.level[v], lv.level[c.fanin(v, i)])
          << "node " << v << " fanin " << c.fanin(v, i);
  }
}

TEST(Topology, ByLevelPartitionsAllNodes) {
  const Circuit c = iscas89_s27();
  const Levelization lv = comb_levelize(c);
  std::size_t total = 0;
  for (const auto& level : lv.by_level) total += level.size();
  EXPECT_EQ(total, c.num_nodes());
  EXPECT_EQ(static_cast<int>(lv.by_level.size()), lv.depth + 1);
}

TEST(Topology, TopoOrderRespectsDependencies) {
  const Circuit c = iscas89_s27();
  const auto order = comb_topo_order(c);
  EXPECT_EQ(order.size(), c.num_nodes());
  std::vector<int> pos(c.num_nodes(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.type(v) == GateType::kFf || c.type(v) == GateType::kPi) continue;
    for (int i = 0; i < c.num_fanins(v); ++i)
      EXPECT_LT(pos[c.fanin(v, i)], pos[v]);
  }
}

TEST(Topology, AcyclicViewRemovesFeedbackOnly) {
  // A 2-FF ring: both D edges are forward (FF -> gate -> FF), so the
  // acyclified graph drops the loop-closing edges.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId f1 = c.add_ff(kNullNode, "f1");
  const NodeId f2 = c.add_ff(kNullNode, "f2");
  const NodeId g1 = c.add_and(a, f2, "g1");
  const NodeId g2 = c.add_and(a, f1, "g2");
  c.set_fanin(f1, 0, g1);
  c.set_fanin(f2, 0, g2);
  c.add_po(g1, "o");
  c.validate();

  const AcyclicView av = make_acyclic_view(c);
  // Some edges must be gone (the design has a cycle), but the remainder
  // must levelize without error.
  EXPECT_GT(av.num_removed_edges, 0u);
  std::size_t edges = 0;
  for (const auto& fi : av.fanins) edges += fi.size();
  std::size_t orig_edges = 0;
  for (NodeId v = 0; v < c.num_nodes(); ++v) orig_edges += c.num_fanins(v);
  EXPECT_EQ(edges + av.num_removed_edges, orig_edges);
}

TEST(Topology, AcyclicViewIsDag) {
  Rng rng(99);
  GeneratorSpec spec;
  spec.num_gates = 120;
  spec.num_ffs = 14;
  const Circuit c = generate_circuit(spec, rng);
  const AcyclicView av = make_acyclic_view(c);
  // Level order is a topological witness of acyclicity.
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    for (NodeId u : av.fanins[v])
      EXPECT_LT(av.levels.level[u], av.levels.level[v]);
}

TEST(Topology, AcyclicViewOnPureDagKeepsAllEdges) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  const NodeId n = c.add_not(g, "n");
  c.add_po(n, "o");
  const AcyclicView av = make_acyclic_view(c);
  EXPECT_EQ(av.num_removed_edges, 0u);
}

TEST(Topology, DepthOfChain) {
  Circuit c;
  NodeId x = c.add_pi("a");
  for (int i = 0; i < 10; ++i) x = c.add_not(x, "n" + std::to_string(i));
  c.add_po(x, "o");
  const Levelization lv = comb_levelize(c);
  EXPECT_EQ(lv.depth, 10);
}

}  // namespace
}  // namespace deepseq
