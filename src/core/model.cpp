#include "core/model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "netlist/structural_hash.hpp"
#include "nn/serialize.hpp"

namespace deepseq {

using nn::Graph;
using nn::RowRef;
using nn::Tensor;
using nn::Var;

const char* propagation_name(PropagationKind k) {
  switch (k) {
    case PropagationKind::kBaselineDag: return "plain DAG";
    case PropagationKind::kDeepSeqCustom: return "customized";
  }
  return "?";
}

ModelConfig ModelConfig::deepseq(int hidden, int t) {
  ModelConfig c;
  c.aggregator = AggregatorKind::kDualAttention;
  c.propagation = PropagationKind::kDeepSeqCustom;
  c.hidden_dim = hidden;
  c.iterations = t;
  return c;
}

ModelConfig ModelConfig::deepseq_simple_attention(int hidden, int t) {
  ModelConfig c = deepseq(hidden, t);
  c.aggregator = AggregatorKind::kAttention;
  return c;
}

ModelConfig ModelConfig::dag_conv_gnn(AggregatorKind agg, int hidden) {
  ModelConfig c;
  c.aggregator = agg;
  c.propagation = PropagationKind::kBaselineDag;
  c.hidden_dim = hidden;
  c.iterations = 1;
  return c;
}

ModelConfig ModelConfig::dag_rec_gnn(AggregatorKind agg, int hidden, int t) {
  ModelConfig c = dag_conv_gnn(agg, hidden);
  c.iterations = t;
  return c;
}

std::uint64_t mix_config(std::uint64_t h, const ModelConfig& m) {
  h = hash_mix(h, static_cast<std::uint64_t>(m.aggregator));
  h = hash_mix(h, static_cast<std::uint64_t>(m.propagation));
  h = hash_mix(h, static_cast<std::uint64_t>(m.iterations));
  h = hash_mix(h, static_cast<std::uint64_t>(m.hidden_dim));
  return hash_mix(h, m.seed);
}

std::string ModelConfig::description() const {
  std::string base;
  if (propagation == PropagationKind::kDeepSeqCustom) {
    base = "DeepSeq";
  } else {
    base = iterations > 1 ? "DAG-RecGNN" : "DAG-ConvGNN";
  }
  return base + " / " + aggregator_name(aggregator);
}

DeepSeqModel::DeepSeqModel(const ModelConfig& config) : config_(config) {
  Rng rng(config.seed);
  const int d = config.hidden_dim;
  agg_fwd_ = Aggregator(config.aggregator, d, rng, "agg_fwd");
  agg_rev_ = Aggregator(config.aggregator, d, rng, "agg_rev");
  const int in_dim = agg_fwd_.message_dim() + kFeatureDim;
  gru_fwd_ = nn::GruCell(in_dim, d, rng, "gru_fwd");
  gru_rev_ = nn::GruCell(in_dim, d, rng, "gru_rev");
  mlp_tr_ = nn::Mlp({d, d, d, 2}, nn::Activation::kSigmoid, rng, "mlp_tr");
  mlp_lg_ = nn::Mlp({d, d, d, 1}, nn::Activation::kSigmoid, rng, "mlp_lg");
}

namespace {

/// Initial state matrix: PIs hold their workload logic-1 probability in
/// every dimension (and stay fixed); other nodes start from a reproducible
/// uniform-random state (paper §III-B).
Tensor initial_states(const CircuitGraph& graph, const Workload& w, int dim,
                      std::uint64_t init_seed) {
  if (w.pi_prob.size() != graph.pis.size())
    throw Error("DeepSeqModel: workload has " + std::to_string(w.pi_prob.size()) +
                " PI probabilities, circuit has " + std::to_string(graph.pis.size()));
  Rng rng(init_seed);
  Tensor h0(graph.num_nodes, dim);
  for (std::size_t i = 0; i < h0.size(); ++i)
    h0.data()[i] = static_cast<float>(rng.uniform());
  for (std::size_t k = 0; k < graph.pis.size(); ++k) {
    float* row = h0.row(static_cast<int>(graph.pis[k]));
    for (int c = 0; c < dim; ++c) row[c] = static_cast<float>(w.pi_prob[k]);
  }
  for (NodeId v : graph.consts) {
    float* row = h0.row(static_cast<int>(v));
    for (int c = 0; c < dim; ++c) row[c] = 0.0f;
  }
  return h0;
}

/// Run one batched level update: gather operands, aggregate, GRU-combine,
/// and repoint the updated nodes' states at the fresh level matrix. The
/// whole level is recorded under one BatchScope, so the planner sees its op
/// DAG at once: independent ops (the three gathers, the GRU gate matmuls)
/// land in shared waves and large kernels split into row chunks across the
/// executor's threads.
void run_level(Graph& g, const LevelBatch& batch, const Aggregator& agg,
               const nn::GruCell& gru, const Var& features,
               std::vector<RowRef>& state) {
  nn::BatchScope level_scope(g);
  const int num_targets = static_cast<int>(batch.targets.size());
  std::vector<RowRef> target_refs, edge_target_refs, source_refs, feat_refs;
  target_refs.reserve(batch.targets.size());
  feat_refs.reserve(batch.targets.size());
  for (NodeId v : batch.targets) {
    target_refs.push_back(state[v]);
    feat_refs.push_back(RowRef{features, static_cast<int>(v)});
  }
  edge_target_refs.reserve(batch.sources.size());
  source_refs.reserve(batch.sources.size());
  for (std::size_t e = 0; e < batch.sources.size(); ++e) {
    edge_target_refs.push_back(state[batch.targets[batch.segment[e]]]);
    source_refs.push_back(state[batch.sources[e]]);
  }

  const Var hv_prev = g.gather(target_refs);
  const Var hv_prev_edges = g.gather(edge_target_refs);
  const Var hu = g.gather(source_refs);
  const Var m = agg.aggregate(g, hv_prev, hv_prev_edges, hu, batch.segment,
                              num_targets);
  const Var x = g.concat_cols({m, g.gather(feat_refs)});
  const Var h_new = gru.apply(g, x, hv_prev);
  for (int i = 0; i < num_targets; ++i)
    state[batch.targets[i]] = RowRef{h_new, i};
}

/// Slab-mode level update (inference): node states are rows of one
/// plan-owned slab, addressed through the current version marker. The three
/// gathers read slab rows directly — the planner rewrites them to the base
/// tensor, so they fuse into their consumer chains instead of escaping into
/// per-level matrices — and the updated rows scatter back in place,
/// consuming the version. Returns the next version.
Var run_level_slab(Graph& g, const LevelBatch& batch, const Aggregator& agg,
                   const nn::GruCell& gru, const Var& features,
                   const Var& version) {
  nn::BatchScope level_scope(g);
  const int num_targets = static_cast<int>(batch.targets.size());
  std::vector<RowRef> target_refs, edge_target_refs, source_refs, feat_refs;
  target_refs.reserve(batch.targets.size());
  feat_refs.reserve(batch.targets.size());
  for (NodeId v : batch.targets) {
    target_refs.push_back(RowRef{version, static_cast<int>(v)});
    feat_refs.push_back(RowRef{features, static_cast<int>(v)});
  }
  edge_target_refs.reserve(batch.sources.size());
  source_refs.reserve(batch.sources.size());
  for (std::size_t e = 0; e < batch.sources.size(); ++e) {
    edge_target_refs.push_back(RowRef{
        version, static_cast<int>(batch.targets[batch.segment[e]])});
    source_refs.push_back(RowRef{version, static_cast<int>(batch.sources[e])});
  }

  const Var hv_prev = g.gather(target_refs);
  const Var hv_prev_edges = g.gather(edge_target_refs);
  const Var hu = g.gather(source_refs);
  const Var m = agg.aggregate(g, hv_prev, hv_prev_edges, hu, batch.segment,
                              num_targets);
  const Var x = g.concat_cols({m, g.gather(feat_refs)});
  const Var h_new = gru.apply(g, x, hv_prev);
  std::vector<int> targets;
  targets.reserve(batch.targets.size());
  for (NodeId v : batch.targets) targets.push_back(static_cast<int>(v));
  return g.scatter_rows(version, h_new, targets);
}

}  // namespace

namespace {

/// Levels recorded per planner flush. Grouping levels amortizes the
/// executor's helper-enlisting cost and lets the chain planner fuse within
/// and across levels of one group (independent chains of different levels
/// schedule concurrently as coarse tasks), while bounding how many
/// unexecuted intermediates a no-grad pass holds at once. The planner sees
/// the cross-level dependencies, so grouping never reorders computation.
/// Retuned for chain granularity: fusion cut barriers per level by ~an
/// order of magnitude, so doubling the group (32 -> 64) halves the
/// remaining per-flush dispatch overhead on deep designs at a still-modest
/// pending-intermediate footprint.
constexpr int kLevelsPerFlush = 64;

/// Run one direction sweep (all levels) in level groups.
void run_sweep(Graph& g, const std::vector<LevelBatch>& levels,
               const Aggregator& agg, const nn::GruCell& gru,
               const Var& features, std::vector<RowRef>& state) {
  std::size_t i = 0;
  while (i < levels.size()) {
    nn::BatchScope group(g);
    const std::size_t end =
        std::min(levels.size(), i + static_cast<std::size_t>(kLevelsPerFlush));
    for (; i < end; ++i) run_level(g, levels[i], agg, gru, features, state);
  }
}

/// Slab-mode sweep: threads the version marker through the levels of each
/// flush group. Same grouping, same cross-level dependencies — the version
/// chain just replaces the per-level state matrices.
Var run_sweep_slab(Graph& g, const std::vector<LevelBatch>& levels,
                   const Aggregator& agg, const nn::GruCell& gru,
                   const Var& features, Var version) {
  std::size_t i = 0;
  while (i < levels.size()) {
    nn::BatchScope group(g);
    const std::size_t end =
        std::min(levels.size(), i + static_cast<std::size_t>(kLevelsPerFlush));
    for (; i < end; ++i)
      version = run_level_slab(g, levels[i], agg, gru, features, version);
  }
  return version;
}

}  // namespace

Var DeepSeqModel::propagate(Graph& g, const CircuitGraph& graph,
                            const Workload& w, std::uint64_t init_seed) const {
  const Var features = g.constant(graph.features);
  Tensor h0_states = initial_states(graph, w, config_.hidden_dim, init_seed);

  const bool custom = config_.propagation == PropagationKind::kDeepSeqCustom;
  const auto& fwd = custom ? graph.comb_forward : graph.baseline_forward;
  const auto& rev = custom ? graph.comb_reverse : graph.baseline_reverse;

  if (!g.grad_enabled() && nn::nn_slab_from_env()) {
    // Slab path (inference): every node's state is a row of one slab
    // tensor, updated in place through the consume-exactly-once version
    // chain. Gathers read the slab directly (no per-level state matrices to
    // escape into), so flush groups fuse into long chains and the final
    // readout is a single N-row gather. Bit-identical to the matrix path:
    // the same kernels run in the same order over the same rows.
    Var version = g.slab(std::move(h0_states));
    for (int t = 0; t < config_.iterations; ++t) {
      version = run_sweep_slab(g, fwd, agg_fwd_, gru_fwd_, features, version);
      version = run_sweep_slab(g, rev, agg_rev_, gru_rev_, features, version);
      if (custom && !graph.ff_targets.empty()) {
        // Step 4 (Fig. 2): FFs take their D predecessor's representation.
        // The gather executes before the scatter overwrites, so FF->FF
        // chains shift correctly (same two-phase rule as the matrix path).
        std::vector<RowRef> src;
        src.reserve(graph.ff_sources.size());
        for (NodeId u : graph.ff_sources)
          src.push_back(RowRef{version, static_cast<int>(u)});
        const Var vals = g.gather(src);
        std::vector<int> tgts;
        tgts.reserve(graph.ff_targets.size());
        for (NodeId v : graph.ff_targets) tgts.push_back(static_cast<int>(v));
        version = g.scatter_rows(version, vals, tgts);
      }
    }
    std::vector<RowRef> all;
    all.reserve(static_cast<std::size_t>(graph.num_nodes));
    for (int v = 0; v < graph.num_nodes; ++v)
      all.push_back(RowRef{version, v});
    return g.gather(all);
  }

  const Var h0 = g.constant(std::move(h0_states));
  std::vector<RowRef> state(static_cast<std::size_t>(graph.num_nodes));
  for (int v = 0; v < graph.num_nodes; ++v) state[v] = RowRef{h0, v};

  for (int t = 0; t < config_.iterations; ++t) {
    run_sweep(g, fwd, agg_fwd_, gru_fwd_, features, state);
    run_sweep(g, rev, agg_rev_, gru_rev_, features, state);
    if (custom) {
      // Step 4 (Fig. 2): FFs take their D predecessor's representation —
      // the clock edge. Two-phase copy so FF->FF chains shift correctly.
      std::vector<RowRef> next(graph.ff_targets.size());
      for (std::size_t k = 0; k < graph.ff_targets.size(); ++k)
        next[k] = state[graph.ff_sources[k]];
      for (std::size_t k = 0; k < graph.ff_targets.size(); ++k)
        state[graph.ff_targets[k]] = next[k];
    }
  }

  std::vector<RowRef> all;
  all.reserve(static_cast<std::size_t>(graph.num_nodes));
  for (int v = 0; v < graph.num_nodes; ++v) all.push_back(state[v]);
  return g.gather(all);
}

Var DeepSeqModel::embed(Graph& g, const CircuitGraph& graph, const Workload& w,
                        std::uint64_t init_seed) const {
  return propagate(g, graph, w, init_seed);
}

DeepSeqModel::Output DeepSeqModel::regress(Graph& g, const Var& embeddings) const {
  return Output{mlp_tr_.apply(g, embeddings), mlp_lg_.apply(g, embeddings)};
}

DeepSeqModel::Output DeepSeqModel::forward(Graph& g, const CircuitGraph& graph,
                                           const Workload& w,
                                           std::uint64_t init_seed) const {
  return regress(g, propagate(g, graph, w, init_seed));
}

nn::NamedParams DeepSeqModel::params() const {
  nn::NamedParams out = backbone_params();
  mlp_tr_.collect_params(out);
  mlp_lg_.collect_params(out);
  return out;
}

nn::NamedParams DeepSeqModel::head_params() const {
  nn::NamedParams out;
  mlp_tr_.collect_params(out);
  mlp_lg_.collect_params(out);
  return out;
}

nn::NamedParams DeepSeqModel::backbone_params() const {
  nn::NamedParams out;
  agg_fwd_.collect_params(out);
  agg_rev_.collect_params(out);
  gru_fwd_.collect_params(out);
  gru_rev_.collect_params(out);
  return out;
}

void DeepSeqModel::save(const std::string& path) const {
  nn::save_params(path, params());
}

void DeepSeqModel::load(const std::string& path) {
  nn::load_params(path, params());
}

void DeepSeqModel::copy_params_from(const DeepSeqModel& other) {
  const nn::NamedParams mine = params();
  const nn::NamedParams theirs = other.params();
  if (mine.size() != theirs.size())
    throw Error("copy_params_from: architecture mismatch");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].first != theirs[i].first ||
        !mine[i].second->value.same_shape(theirs[i].second->value))
      throw Error("copy_params_from: parameter mismatch at " + mine[i].first);
    mine[i].second->value = theirs[i].second->value;
  }
}

}  // namespace deepseq
