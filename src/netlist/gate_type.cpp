#include "netlist/gate_type.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace deepseq {

int gate_arity(GateType t) {
  switch (t) {
    case GateType::kConst0:
    case GateType::kPi:
      return 0;
    case GateType::kNot:
    case GateType::kBuf:
    case GateType::kFf:
      return 1;
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return 2;
    case GateType::kMux:
      return 3;
  }
  throw Error("gate_arity: unknown gate type");
}

std::string_view gate_type_name(GateType t) {
  switch (t) {
    case GateType::kConst0: return "CONST0";
    case GateType::kPi: return "INPUT";
    case GateType::kAnd: return "AND";
    case GateType::kNot: return "NOT";
    case GateType::kFf: return "DFF";
    case GateType::kBuf: return "BUFF";
    case GateType::kOr: return "OR";
    case GateType::kNand: return "NAND";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
  }
  throw Error("gate_type_name: unknown gate type");
}

GateType parse_gate_type(std::string_view s) {
  const std::string u = to_lower(s);
  if (u == "and") return GateType::kAnd;
  if (u == "not" || u == "inv") return GateType::kNot;
  if (u == "dff" || u == "ff") return GateType::kFf;
  if (u == "buf" || u == "buff") return GateType::kBuf;
  if (u == "or") return GateType::kOr;
  if (u == "nand") return GateType::kNand;
  if (u == "nor") return GateType::kNor;
  if (u == "xor") return GateType::kXor;
  if (u == "xnor") return GateType::kXnor;
  if (u == "mux") return GateType::kMux;
  if (u == "const0") return GateType::kConst0;
  if (u == "input") return GateType::kPi;
  throw ParseError("unknown gate type: " + std::string(s));
}

bool is_aig_type(GateType t) {
  switch (t) {
    case GateType::kPi:
    case GateType::kAnd:
    case GateType::kNot:
    case GateType::kFf:
      return true;
    default:
      return false;
  }
}

bool eval_gate(GateType t, bool a, bool b, bool s) {
  return eval_gate_word(t, a ? ~0ULL : 0, b ? ~0ULL : 0, s ? ~0ULL : 0) & 1ULL;
}

std::uint64_t eval_gate_word(GateType t, std::uint64_t a, std::uint64_t b,
                             std::uint64_t s) {
  switch (t) {
    case GateType::kConst0: return 0;
    case GateType::kAnd: return a & b;
    case GateType::kNot: return ~a;
    case GateType::kBuf: return a;
    case GateType::kOr: return a | b;
    case GateType::kNand: return ~(a & b);
    case GateType::kNor: return ~(a | b);
    case GateType::kXor: return a ^ b;
    case GateType::kXnor: return ~(a ^ b);
    case GateType::kMux: return (s & a) | (~s & b);
    case GateType::kPi:
    case GateType::kFf:
      throw Error("eval_gate_word: PI/FF have no combinational function");
  }
  throw Error("eval_gate_word: unknown gate type");
}

}  // namespace deepseq
