#pragma once

// Admission control of the serving tier: bounded per-TaskKind queues with a
// static priority order, and shed-on-deadline backed by an EWMA service-time
// model. The contract is "reject typed, never queue unboundedly": a request
// that cannot be admitted is shed IMMEDIATELY with a typed reason (so the
// client can back off), and every submitted job ends in exactly one of
// {completed, failed, shed} — the accounting the obs counters pin.
//
// Determinism: all time flows through an injectable clock (AdmissionConfig::
// clock), so tests drive deadline sheds with a fake clock and exact
// arithmetic — no sleeps, no wall-clock flakes.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "api/session.hpp"

namespace deepseq::serve {

/// Why a job was not (or will not be) served. Mapped 1:1 onto the wire's
/// typed overload errors by the server.
enum class ShedReason : std::uint8_t {
  kQueueFull = 0,  // the kind's bounded queue is at capacity
  kDeadline = 1,   // estimated (or actual) wait exceeds the job's deadline
  kShutdown = 2,   // queue is draining for shutdown
};

const char* shed_reason_name(ShedReason r);

constexpr int kNumTaskKinds = 6;

struct AdmissionConfig {
  /// Per-kind queue capacity; 0 entries fall back to `default_depth`.
  std::array<std::size_t, kNumTaskKinds> depth{};
  std::size_t default_depth = 64;
  /// Serving order across kinds: pop() always takes from the non-empty kind
  /// with the SMALLEST priority value; ties break toward the lower kind
  /// index. Defaults (0 everywhere) make pop round over kinds in enum order.
  std::array<int, kNumTaskKinds> priority{};
  /// Worker threads draining this queue — the divisor of the queue-wait
  /// estimate (K workers drain K jobs concurrently).
  int workers = 1;
  /// Assumed per-job service time before the first real sample of a kind
  /// lands in the EWMA (0 = admit everything until measured).
  std::uint64_t initial_cost_ns = 0;
  /// Monotonic nanosecond clock; defaults to std::chrono::steady_clock.
  /// Tests inject a fake to make deadline sheds exact.
  std::function<std::uint64_t()> clock;
};

/// One unit of admitted work. `run` executes the task; `shed` is invoked
/// instead (with the reason) when the job is dropped after admission — the
/// pop-side deadline check and shutdown drain both route through it, so a
/// caller-supplied completion always fires exactly once.
struct Job {
  int kind = 0;  // api::TaskKind index
  /// Absolute deadline on the admission clock; 0 = none.
  std::uint64_t deadline_ns = 0;
  std::function<void()> run;
  std::function<void(ShedReason)> shed;
};

/// Bounded, prioritized, deadline-aware MPMC queue. Thread-safe throughout.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionConfig& config);

  /// Admit or shed. Admission applies, in order: (1) shutdown check, (2)
  /// bounded-depth check on the job's kind, (3) deadline check — the job is
  /// shed with kDeadline when now + estimated_wait_ns() would exceed its
  /// deadline. On a shed the job's `shed` callback is NOT invoked (the
  /// caller still holds the job and reports the typed error itself); the
  /// reason is returned. nullopt = admitted.
  std::optional<ShedReason> try_push(Job job);

  /// Block for the highest-priority admitted job. A job whose deadline
  /// already passed at pop time is shed (its `shed` callback runs with
  /// kDeadline, counted like a push-side shed) and the wait continues.
  /// Returns false when the queue is shut down and empty.
  bool pop(Job& out);

  /// Wake every popper; subsequent try_push calls shed with kShutdown.
  /// Jobs still queued are shed (their `shed` callbacks run with kShutdown)
  /// — nothing admitted is silently dropped.
  void shutdown();

  /// Feed one measured service time into the kind's EWMA (alpha = 1/8).
  void record_service_ns(int kind, std::uint64_t ns);

  /// Estimated wait of a newly-arriving job: the summed cost estimate of
  /// everything currently queued, divided by the worker count.
  std::uint64_t estimated_wait_ns() const;

  /// Current EWMA service-time estimate of one kind (initial_cost_ns until
  /// the first sample).
  std::uint64_t service_estimate_ns(int kind) const;

  std::size_t depth(int kind) const;
  std::size_t size() const;

  /// Monotone admission counters (mirrored 1:1 onto the obs registry as
  /// serve.admitted.<kind> / serve.shed.<kind> / serve.shed_reason.<r>).
  /// `admitted` counts jobs that passed push-time admission; a job shed
  /// AFTER admission (pop-side deadline, shutdown drain) appears in both
  /// admitted and shed, so the audited identity is
  ///   submitted == completed + failed + shed
  /// with `submitted`/`completed`/`failed` kept by the caller.
  struct Counts {
    std::array<std::uint64_t, kNumTaskKinds> admitted{};
    std::array<std::uint64_t, kNumTaskKinds> shed{};
    std::array<std::uint64_t, 3> shed_by_reason{};  // indexed by ShedReason
  };
  Counts counts() const;

  std::uint64_t now_ns() const { return clock_(); }

 private:
  std::optional<ShedReason> shed_locked(int kind, ShedReason reason);

  AdmissionConfig config_;
  std::function<std::uint64_t()> clock_;

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::array<std::deque<Job>, kNumTaskKinds> queues_;
  /// Summed service-cost estimate of queued jobs (each job contributes the
  /// estimate captured at push time, so push/pop bookkeeping is exact).
  std::array<std::deque<std::uint64_t>, kNumTaskKinds> queued_cost_;
  std::uint64_t total_queued_cost_ns_ = 0;
  std::array<std::uint64_t, kNumTaskKinds> ewma_ns_{};
  bool shutdown_ = false;
  Counts counts_;
};

}  // namespace deepseq::serve
