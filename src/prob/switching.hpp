#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// Non-simulative switching-activity estimation in the style of Ghosh et
/// al., DAC'92 [27] — the "Probabilistic" baseline of Tables V/VI.
///
/// Every signal is modeled as a stationary two-state process described by
/// its lag-1 joint distribution pxy = P(v_t = x, v_t+1 = y); PIs get the
/// exact joint of their Bernoulli(p) pattern stream, gates combine their
/// fanins' joints through the gate function assuming *spatial independence*
/// between signals, and FF joints are solved by damped fixed-point
/// iteration (an FF's process is its D input's process delayed one cycle).
/// Spatial independence is exactly what fails on reconvergent fanout and
/// cross-signal sequential correlation — the error source the paper
/// attributes to probabilistic methods (§V-A).
struct SwitchingEstimate {
  std::vector<double> logic1;  // stationary P(v = 1)
  std::vector<double> tr01;    // joint P(v_t = 0, v_t+1 = 1)
  std::vector<double> tr10;    // joint P(v_t = 1, v_t+1 = 0)
  int iterations_used = 0;     // fixed-point iterations until convergence

  double toggle_rate(NodeId v) const { return tr01[v] + tr10[v]; }
};

struct SwitchingOptions {
  int max_iterations = 100;
  double tolerance = 1e-9;  // max FF joint change to declare convergence
  double damping = 0.5;     // new = damping*new + (1-damping)*old
};

SwitchingEstimate estimate_switching(const Circuit& c, const Workload& w,
                                     const SwitchingOptions& opt = {});

/// Propagate stationary signal probabilities only (one combinational sweep
/// given fixed source probabilities). Exposed for reuse by the reliability
/// estimator.
std::vector<double> propagate_signal_probs(const Circuit& c,
                                           const std::vector<double>& pi_prob,
                                           const std::vector<double>& ff_prob);

}  // namespace deepseq
