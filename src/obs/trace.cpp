#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace deepseq::obs {
namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_task_id{0};

std::chrono::steady_clock::time_point trace_origin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }
void set_tracing_enabled(bool on) {
  g_tracing.store(on, std::memory_order_relaxed);
}

std::uint64_t next_task_id() {
  return g_task_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t trace_now_ns() { return to_trace_ns(std::chrono::steady_clock::now()); }

std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  const auto d = tp - trace_origin();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns);
}

// ---- sink ------------------------------------------------------------------

TraceSink::TraceSink(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

TraceSink& TraceSink::global() {
  static TraceSink* sink = new TraceSink();  // leaked: see header
  return *sink;
}

void TraceSink::record(TraceEvent e) {
  e.tid = thread_ordinal();
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket % slots_.size()];
  // Per-slot spinlock: writers only collide on one slot when the ring laps
  // itself within a claim window; the hold time is a struct copy.
  while (s.busy.exchange(true, std::memory_order_acquire))
    std::this_thread::yield();
  s.ticket = ticket;
  s.e = e;
  s.busy.store(false, std::memory_order_release);
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<std::pair<std::uint64_t, TraceEvent>> got;
  got.reserve(slots_.size());
  for (const Slot& s : slots_) {
    while (s.busy.exchange(true, std::memory_order_acquire))
      std::this_thread::yield();
    if (s.ticket != kEmpty) got.emplace_back(s.ticket, s.e);
    s.busy.store(false, std::memory_order_release);
  }
  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TraceEvent> out;
  out.reserve(got.size());
  for (auto& [ticket, e] : got) {
    (void)ticket;
    out.push_back(e);
  }
  return out;
}

void TraceSink::clear() {
  for (Slot& s : slots_) {
    while (s.busy.exchange(true, std::memory_order_acquire))
      std::this_thread::yield();
    s.ticket = kEmpty;
    s.busy.store(false, std::memory_order_release);
  }
  next_.store(0, std::memory_order_relaxed);
}

// ---- chrome export ---------------------------------------------------------

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.cat != nullptr ? e.cat : "task";
    out += "\",\"ph\":\"";
    out.push_back(e.ph);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.ts_ns);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
    } else if (e.ph == 'i') {
      out += ",\"s\":\"p\"";  // process-scoped instant
    }
    out += ",\"args\":{";
    bool afirst = true;
    const auto arg_sep = [&] {
      if (!afirst) out.push_back(',');
      afirst = false;
    };
    if (e.ctx.task_id != 0) {
      arg_sep();
      out += "\"task\":" + std::to_string(e.ctx.task_id);
    }
    if (e.ctx.kind != nullptr) {
      arg_sep();
      out += "\"kind\":\"";
      out += e.ctx.kind;
      out += "\"";
    }
    if (e.ctx.backend_fingerprint != 0) {
      arg_sep();
      out += "\"backend\":";
      append_hex(out, e.ctx.backend_fingerprint);
    }
    if (e.structure != 0) {
      arg_sep();
      out += "\"structure\":";
      append_hex(out, e.structure);
    }
    for (int i = 0; i < TraceEvent::kMaxArgs; ++i) {
      if (e.arg_name[i] == nullptr) continue;
      arg_sep();
      out += "\"";
      out += e.arg_name[i];
      out += "\":" + std::to_string(e.arg[i]);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json(TraceSink::global().events());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw Error("write_chrome_trace: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) throw Error("write_chrome_trace: short write to '" + path + "'");
}

std::string trace_path_from_env() { return env_string("DEEPSEQ_TRACE", ""); }

void validate_trace_path(const std::string& path) {
  // Create/truncate up front so a bad DEEPSEQ_TRACE fails at Session
  // construction (same fail-fast contract as DEEPSEQ_ARTIFACT), never as a
  // silently missing dump when the Session is destroyed.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw Error("DEEPSEQ_TRACE: cannot open '" + path + "' for writing");
  std::fclose(f);
}

}  // namespace deepseq::obs
