#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace deepseq {
namespace {

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("DEEPSEQ_TEST_KNOB");
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 42), 42);
  EXPECT_EQ(env_string("DEEPSEQ_TEST_KNOB", "dflt"), "dflt");
}

TEST(Env, ReadsIntegerValue) {
  ::setenv("DEEPSEQ_TEST_KNOB", "17", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 42), 17);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, UnparsableFallsBack) {
  ::setenv("DEEPSEQ_TEST_KNOB", "abc", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 9), 9);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, TrailingGarbageFallsBack) {
  // A prefix that parses must not be accepted when followed by garbage:
  // "8x" is a typo'd knob, not a request for 8.
  ::setenv("DEEPSEQ_TEST_KNOB", "8x", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 3), 3);
  ::setenv("DEEPSEQ_TEST_KNOB", "12 7", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 3), 3);
  ::setenv("DEEPSEQ_TEST_KNOB", "1e2abc", 1);
  EXPECT_DOUBLE_EQ(env_double("DEEPSEQ_TEST_KNOB", 2.5), 2.5);
  ::setenv("DEEPSEQ_TEST_KNOB", "3.5qps", 1);
  EXPECT_DOUBLE_EQ(env_double("DEEPSEQ_TEST_KNOB", 2.5), 2.5);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, TrailingWhitespaceIsAccepted) {
  ::setenv("DEEPSEQ_TEST_KNOB", "8 ", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 3), 8);
  ::setenv("DEEPSEQ_TEST_KNOB", " 1e2 \t\n", 1);
  EXPECT_DOUBLE_EQ(env_double("DEEPSEQ_TEST_KNOB", 2.5), 100.0);
  ::setenv("DEEPSEQ_TEST_KNOB", " \t ", 1);  // whitespace only: no number
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 3), 3);
  EXPECT_DOUBLE_EQ(env_double("DEEPSEQ_TEST_KNOB", 2.5), 2.5);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, NegativeAndFractionalValuesStillParse) {
  ::setenv("DEEPSEQ_TEST_KNOB", "-4", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 3), -4);
  ::setenv("DEEPSEQ_TEST_KNOB", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("DEEPSEQ_TEST_KNOB", 1.0), 0.25);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, ReadsString) {
  ::setenv("DEEPSEQ_TEST_KNOB", "value", 1);
  EXPECT_EQ(env_string("DEEPSEQ_TEST_KNOB", "d"), "value");
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

}  // namespace
}  // namespace deepseq
