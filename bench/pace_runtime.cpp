// Future-work study (paper §VI): DeepSeq's levelized, sequential message
// passing makes inference wall-time grow with logic depth x T — the reason
// it is "3x to 4x slower than the commercial simulation tool". The paper
// names PACE [33] (a parallelizable structure encoder) as the fix. This
// bench implements that comparison on our PACE-style encoder:
//
//   1. accuracy — train the PACE encoder on the standard corpus and compare
//      its avg prediction error against pre-trained DeepSeq (same data,
//      same metric; the parallel encoder trades some accuracy);
//   2. runtime — per-inference wall time on test designs of increasing
//      logic depth: DeepSeq's cost tracks depth, PACE's cost tracks only
//      node count (fixed number of whole-graph attention rounds).

#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/pace.hpp"
#include "dataset/test_designs.hpp"
#include "netlist/aig.hpp"
#include "netlist/topology.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("PACE", "parallel encoder vs levelized propagation (§VI)",
               cfg);

  std::vector<TrainSample> train, val;
  split_dataset(cfg, train, val);

  // ---- accuracy ------------------------------------------------------------
  const DeepSeqModel deepseq = pretrained_deepseq(cfg);
  const EvalMetrics dm = evaluate(deepseq, val);

  PaceConfig pcfg;
  pcfg.hidden_dim = cfg.hidden;
  PaceEncoder pace(pcfg);
  WallTimer train_timer;
  const PaceTrainStats ps =
      fit_pace(pace, train, val, cfg.epochs, cfg.lr, cfg.batch);
  std::printf("[train] PACE (%d layers, %d ancestors): %d epochs in %.0fs\n",
              pcfg.layers, pcfg.max_ancestors, cfg.epochs,
              train_timer.seconds());

  std::printf("\n%-34s | %9s %9s\n", "Model", "PE(T_TR)", "PE(T_LG)");
  std::printf("%.*s\n", 58, std::string(58, '-').c_str());
  std::printf("%-34s | %9.4f %9.4f\n", "DeepSeq (levelized, recurrent)",
              dm.avg_pe_tr, dm.avg_pe_lg);
  std::printf("%-34s | %9.4f %9.4f\n", "PACE-style (parallel, 3 layers)",
              ps.avg_pe_tr, ps.avg_pe_lg);

  // ---- runtime vs depth ------------------------------------------------------
  std::printf("\n%-11s | %6s %6s | %12s %12s | %7s\n", "Design", "nodes",
              "depth", "DeepSeq (ms)", "PACE (ms)", "ratio");
  std::printf("%.*s\n", 70, std::string(70, '-').c_str());
  for (const char* name : {"ptc", "noc_router", "rtcclock", "pll"}) {
    const TestDesign design =
        build_test_design(name, cfg.design_scale, cfg.eval_seed);
    const Circuit aig = decompose_to_aig(design.netlist).aig;
    const CircuitGraph graph = build_circuit_graph(aig);
    const PaceGraph pgraph = build_pace_graph(aig, pcfg);
    const Levelization lv = comb_levelize(aig);

    Rng rng(cfg.eval_seed);
    Workload w = random_workload(aig, rng);

    const int reps = 3;
    WallTimer td;
    for (int r = 0; r < reps; ++r) {
      nn::Graph g(false);
      (void)deepseq.forward(g, graph, w, 1);
    }
    const double deepseq_ms = td.seconds() * 1e3 / reps;
    WallTimer tp;
    for (int r = 0; r < reps; ++r) {
      nn::Graph g(false);
      (void)pace.forward(g, pgraph, w, 1);
    }
    const double pace_ms = tp.seconds() * 1e3 / reps;
    std::printf("%-11s | %6zu %6d | %12.1f %12.1f | %6.1fx\n", name,
                aig.num_nodes(), lv.depth, deepseq_ms, pace_ms,
                deepseq_ms / pace_ms);
    std::fflush(stdout);
  }
  std::printf(
      "\n(DeepSeq cost grows with depth x T; PACE cost tracks node count —\n"
      " the §VI claim that a parallel encoder removes the levelized\n"
      " bottleneck, at some accuracy cost)\n");
  return 0;
}
