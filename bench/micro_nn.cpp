// Microbenchmarks of the neural-network substrate: matmul kernels,
// autograd tape overhead, GRU cell, and segment-softmax attention ops.

#include <benchmark/benchmark.h>

#include "nn/adam.hpp"
#include "nn/graph.hpp"
#include "nn/modules.hpp"

namespace {

using namespace deepseq;
using namespace deepseq::nn;

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::xavier(n, n, rng);
  const Tensor b = Tensor::xavier(n, n, rng);
  for (auto _ : state) {
    const Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_GruForwardBackward(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Rng rng(2);
  const GruCell gru(64, 32, rng, "g");
  const Tensor x = Tensor::xavier(rows, 64, rng);
  const Tensor h = Tensor::xavier(rows, 32, rng);
  const Tensor target(rows, 32);
  for (auto _ : state) {
    Graph g(true);
    Var out = gru.apply(g, g.constant(x), g.constant(h));
    Var loss = g.l1_loss(out, target);
    g.backward(loss);
    benchmark::DoNotOptimize(loss->value.at(0, 0));
  }
}
BENCHMARK(BM_GruForwardBackward)->Arg(16)->Arg(256);

void BM_SegmentSoftmax(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  Rng rng(3);
  Graph g(false);
  const Var scores = g.constant(Tensor::xavier(edges, 1, rng));
  std::vector<int> seg(edges);
  for (int e = 0; e < edges; ++e) seg[e] = e / 2;  // 2 preds per target
  const int nseg = (edges + 1) / 2;
  for (auto _ : state) {
    Graph gg(false);
    Var alpha = gg.segment_softmax(scores, seg, nseg);
    benchmark::DoNotOptimize(alpha->value.data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1024)->Arg(16384);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(4);
  NamedParams params;
  for (int k = 0; k < 16; ++k)
    params.emplace_back("p" + std::to_string(k),
                        make_param(Tensor::xavier(64, 64, rng)));
  Adam adam(params);
  for (auto& [name, p] : params) p->ensure_grad().fill(0.01f);
  for (auto _ : state) {
    adam.step();
    benchmark::DoNotOptimize(params[0].second->value.data());
  }
}
BENCHMARK(BM_AdamStep);

void BM_TapeOverhead(benchmark::State& state) {
  // Cost of recording + clearing N chained small ops.
  const int n = static_cast<int>(state.range(0));
  Var a = make_param(Tensor::scalar(0.5f));
  for (auto _ : state) {
    Graph g(true);
    Var x = a;
    for (int i = 0; i < n; ++i) x = g.add(x, a);
    g.backward(x);
    benchmark::DoNotOptimize(x->value.at(0, 0));
    a->grad.zero();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TapeOverhead)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
