#include "dataset/blocks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

/// Drive a block with constant-probability PIs and return the activity.
NodeActivity run(const Circuit& c, std::vector<double> pi_prob, int cycles = 2048) {
  Workload w;
  w.pi_prob = std::move(pi_prob);
  w.pattern_seed = 1;
  return collect_activity(c, w, {cycles, 1});
}

TEST(Blocks, CounterCountsInBinary) {
  Circuit c;
  const NodeId en = c.add_pi("en");
  const auto q = blocks::counter(c, 3, en, "cnt");
  for (NodeId b : q) c.add_po(b, "q");
  c.validate();
  SequentialSimulator sim(c);
  // Enable always on, lane 0: count 0,1,2,...
  for (int expect = 0; expect < 16; ++expect) {
    sim.step({~0ULL});
    int value = 0;
    for (std::size_t b = 0; b < q.size(); ++b)
      value |= static_cast<int>(sim.value(q[b]) & 1ULL) << b;
    EXPECT_EQ(value, expect % 8);
    sim.clock();
  }
}

TEST(Blocks, CounterHoldsWhenDisabled) {
  Circuit c;
  const NodeId en = c.add_pi("en");
  const auto q = blocks::counter(c, 3, en, "cnt");
  c.add_po(q[0], "q0");
  c.validate();
  SequentialSimulator sim(c);
  sim.step({~0ULL});
  sim.clock();  // now q = 1
  for (int i = 0; i < 5; ++i) {
    sim.step({0ULL});  // disabled
    sim.clock();
  }
  sim.step({0ULL});
  EXPECT_EQ(sim.value(q[0]) & 1ULL, 1ULL);  // still 1
}

TEST(Blocks, ShiftRegisterDelaysInput) {
  Circuit c;
  const NodeId in = c.add_pi("in");
  const NodeId en = c.add_pi("en");
  const auto stages = blocks::shift_register(c, in, 3, en, "sr");
  c.add_po(stages.back(), "out");
  c.validate();
  SequentialSimulator sim(c);
  // Push a single 1 followed by 0s (enable on).
  std::vector<int> seen;
  for (int t = 0; t < 6; ++t) {
    sim.step({t == 0 ? ~0ULL : 0ULL, ~0ULL});
    seen.push_back(static_cast<int>(sim.value(stages.back()) & 1ULL));
    sim.clock();
  }
  // The pulse appears at the last stage after 3 clocks.
  EXPECT_EQ(seen, (std::vector<int>{0, 0, 0, 1, 0, 0}));
}

TEST(Blocks, LfsrVisitsManyStates) {
  Circuit c;
  const auto state = blocks::lfsr(c, 6, "l");
  for (NodeId s : state) c.add_po(s, "q");
  c.validate();
  SequentialSimulator sim(c);
  std::set<int> states;
  for (int t = 0; t < 64; ++t) {
    sim.step({});
    int v = 0;
    for (std::size_t b = 0; b < state.size(); ++b)
      v |= static_cast<int>(sim.value(state[b]) & 1ULL) << b;
    states.insert(v);
    sim.clock();
  }
  EXPECT_GT(states.size(), 10u);  // long period, not stuck
}

TEST(Blocks, MuxTreeSelectsCorrectInput) {
  Circuit c;
  std::vector<NodeId> data, sel;
  for (int i = 0; i < 4; ++i) data.push_back(c.add_pi("d" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) sel.push_back(c.add_pi("s" + std::to_string(i)));
  const NodeId out = blocks::mux_tree(c, data, sel, "mx");
  c.add_po(out, "o");
  c.validate();
  SequentialSimulator sim(c);
  for (int choose = 0; choose < 4; ++choose) {
    std::vector<std::uint64_t> pi(6, 0);
    pi[choose] = ~0ULL;  // only the chosen data input is 1
    pi[4] = (choose & 1) ? ~0ULL : 0;
    pi[5] = (choose & 2) ? ~0ULL : 0;
    sim.step(pi);
    EXPECT_EQ(sim.value(out), ~0ULL) << "select " << choose;
  }
}

TEST(Blocks, MuxTreeSizeChecked) {
  Circuit c;
  std::vector<NodeId> data{c.add_pi("a")};
  std::vector<NodeId> sel{c.add_pi("s")};
  EXPECT_THROW(blocks::mux_tree(c, data, sel, "m"), Error);
}

TEST(Blocks, RippleAdderAddsCorrectly) {
  Circuit c;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(c.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(c.add_pi("b" + std::to_string(i)));
  const auto sum = blocks::ripple_adder(c, a, b, "add");
  for (NodeId s : sum) c.add_po(s, "s");
  c.validate();
  SequentialSimulator sim(c);
  for (int x = 0; x < 16; x += 3) {
    for (int y = 0; y < 16; y += 5) {
      std::vector<std::uint64_t> pi(8);
      for (int i = 0; i < 4; ++i) pi[i] = (x >> i & 1) ? ~0ULL : 0;
      for (int i = 0; i < 4; ++i) pi[4 + i] = (y >> i & 1) ? ~0ULL : 0;
      sim.step(pi);
      int result = 0;
      for (std::size_t i = 0; i < sum.size(); ++i)
        result |= static_cast<int>(sim.value(sum[i]) & 1ULL) << i;
      EXPECT_EQ(result, x + y);
    }
  }
}

TEST(Blocks, ParityIsXorReduction) {
  Circuit c;
  std::vector<NodeId> in;
  for (int i = 0; i < 5; ++i) in.push_back(c.add_pi("i" + std::to_string(i)));
  const NodeId p = blocks::parity(c, in, "par");
  c.add_po(p, "o");
  c.validate();
  SequentialSimulator sim(c);
  for (int pattern = 0; pattern < 32; ++pattern) {
    std::vector<std::uint64_t> pi(5);
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      pi[i] = (pattern >> i & 1) ? ~0ULL : 0;
      ones += pattern >> i & 1;
    }
    sim.step(pi);
    EXPECT_EQ(sim.value(p) & 1ULL, static_cast<std::uint64_t>(ones % 2));
  }
}

TEST(Blocks, EqualDetectsEquality) {
  Circuit c;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 3; ++i) a.push_back(c.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) b.push_back(c.add_pi("b" + std::to_string(i)));
  const NodeId eq = blocks::equal(c, a, b, "eq");
  c.add_po(eq, "o");
  c.validate();
  SequentialSimulator sim(c);
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::vector<std::uint64_t> pi(6);
      for (int i = 0; i < 3; ++i) pi[i] = (x >> i & 1) ? ~0ULL : 0;
      for (int i = 0; i < 3; ++i) pi[3 + i] = (y >> i & 1) ? ~0ULL : 0;
      sim.step(pi);
      EXPECT_EQ(sim.value(eq) & 1ULL, x == y ? 1ULL : 0ULL);
    }
  }
}

TEST(Blocks, ArbiterGrantsAreOneHot) {
  Circuit c;
  std::vector<NodeId> req;
  for (int i = 0; i < 4; ++i) req.push_back(c.add_pi("r" + std::to_string(i)));
  const auto grants = blocks::arbiter(c, req, "arb");
  for (NodeId g : grants) c.add_po(g, "g");
  c.validate();
  SequentialSimulator sim(c);
  Rng rng(9);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::uint64_t> pi(4);
    for (auto& p : pi) p = rng.next_u64();
    sim.step(pi);
    sim.clock();
    sim.step(pi);  // grants registered: check after the clock
    // At most one grant per lane.
    for (int lane = 0; lane < 64; ++lane) {
      int granted = 0;
      for (NodeId g : grants) granted += (sim.value(g) >> lane) & 1ULL;
      EXPECT_LE(granted, 1);
    }
    sim.clock();
  }
}

TEST(Blocks, GatedBankIsStaticWhenDisabled) {
  Circuit c;
  const NodeId en = c.add_pi("en");
  std::vector<NodeId> data;
  for (int i = 0; i < 4; ++i) data.push_back(c.add_pi("d" + std::to_string(i)));
  const auto bank = blocks::gated_register_bank(c, data, en, "bank");
  for (NodeId q : bank) c.add_po(q, "q");
  c.validate();
  // Enable pinned to 0: the registers never toggle even with wild data.
  const NodeActivity act = run(c, {0.0, 0.5, 0.5, 0.5, 0.5});
  for (NodeId q : bank) EXPECT_EQ(act.toggle_count[q], 0u);
}

TEST(Blocks, RandomFsmIsValidAndActive) {
  Circuit c;
  std::vector<NodeId> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(c.add_pi("i" + std::to_string(i)));
  Rng rng(12);
  const auto state = blocks::random_fsm(c, 3, inputs, rng, "fsm");
  for (NodeId s : state) c.add_po(s, "q");
  c.validate();
  const NodeActivity act = run(c, {0.5, 0.5, 0.5});
  // The FSM should actually move (at least one state bit toggles).
  std::uint64_t toggles = 0;
  for (NodeId s : state) toggles += act.toggle_count[s];
  EXPECT_GT(toggles, 0u);
}

}  // namespace
}  // namespace deepseq
