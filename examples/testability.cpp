// Testability analysis: the substrate of the test-point-insertion task
// that motivates circuit representation learning downstream (DeepTPI [10],
// §II-B of the paper) —
//   1. compute SCOAP controllability/observability for a sequential
//      netlist,
//   2. run serial stuck-at fault simulation under a random workload,
//   3. show that SCOAP's fault effort separates the detected from the
//      undetected faults — the signal a TPI flow (learned or classic)
//      exploits when choosing where to insert test points.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dataset/embedded.hpp"
#include "netlist/scoap.hpp"
#include "sim/stuck_at.hpp"

using namespace deepseq;

int main() {
  const Circuit c = iscas89_s27();
  std::printf("circuit: %s (%zu nodes, %zu PIs, %zu FFs, %zu POs)\n\n",
              c.name().c_str(), c.num_nodes(), c.pis().size(), c.ffs().size(),
              c.pos().size());

  // 1. SCOAP measures.
  const ScoapMeasures m = compute_scoap(c);
  std::printf("%-8s %-5s | %6s %6s %6s\n", "node", "type", "CC0", "CC1", "CO");
  std::printf("---------------------------------------\n");
  auto fmt = [](double v) {
    return v >= kScoapInf ? std::string("inf") : std::to_string((int)v);
  };
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    std::printf("%-8s %-5s | %6s %6s %6s\n", c.node_name(v).c_str(),
                std::string(gate_type_name(c.type(v))).c_str(),
                fmt(m.cc0[v]).c_str(), fmt(m.cc1[v]).c_str(),
                fmt(m.co[v]).c_str());
  std::printf("(controllability fixpoint: %d rounds, observability: %d)\n\n",
              m.controllability_iterations, m.observability_iterations);

  // 2. Stuck-at fault simulation under increasing pattern budgets.
  Workload w;
  w.pi_prob.assign(c.pis().size(), 0.5);
  w.pattern_seed = 12;
  std::printf("%-10s | %9s %9s %9s\n", "cycles", "faults", "detected",
              "coverage");
  std::printf("--------------------------------------------\n");
  StuckAtResult last;
  for (int cycles : {2, 8, 32, 128, 512}) {
    last = simulate_stuck_at(c, w, {cycles, 1});
    std::printf("%-10d | %9zu %9zu %8.1f%%\n", cycles, last.faults.size(),
                last.num_detected, 100.0 * last.coverage());
  }

  // 3. SCOAP effort of detected vs undetected faults.
  std::vector<double> det, undet;
  for (std::size_t f = 0; f < last.faults.size(); ++f) {
    const double e = m.fault_effort(last.faults[f].node, last.faults[f].value);
    if (e >= kScoapInf) continue;
    (last.detected[f] ? det : undet).push_back(e);
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  std::printf("\nmean SCOAP fault effort: detected %.1f (%zu faults)",
              mean(det), det.size());
  if (!undet.empty())
    std::printf(", undetected %.1f (%zu faults)", mean(undet), undet.size());
  std::printf(
      "\n(high-effort faults are where a TPI flow inserts test points;\n"
      " DeepTPI [10] learns this decision from DeepGate embeddings)\n");
  return 0;
}
