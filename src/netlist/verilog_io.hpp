#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Parse a gate-level structural Verilog module (the netlist subset emitted
/// by synthesis tools and by write_verilog below):
///
///   module top (a, b, clk, y);
///     input a, b, clk;
///     output y;
///     wire w1, w2;
///     and  g1 (w1, a, b);        // primitives: and or nand nor xor xnor
///     not  g2 (w2, w1);          //             not buf (instance name
///     DFF  r1 (.Q(q), .D(w2));   //             optional)
///     assign y = s ? w2 : q;     // ternary = MUX, ~x = NOT, 1'b0/1 consts
///   endmodule
///
/// Supported: scalar nets only; n-ary and/or/nand/nor (expanded to 2-input
/// trees); DFF instances positional (Q, D [, CK]) or by named ports
/// (case-insensitive Q/D/CK/CLK); assigns of a net, ~net, constant or
/// ternary. Inputs used only as DFF clocks are dropped (they carry no logic
/// value). Escaped identifiers and vectors/buses are rejected.
Circuit parse_verilog(std::istream& in, std::string fallback_name = "top");
Circuit parse_verilog_string(const std::string& text,
                             std::string fallback_name = "top");
Circuit parse_verilog_file(const std::string& path);

/// Serialize any Circuit (all 12 gate types) as a structural Verilog module
/// named after the circuit. FFs become instances of an appended behavioral
/// `DFF` module clocked by an added `clk` input; MUXes become ternary
/// assigns; node names are sanitized into unique Verilog identifiers.
void write_verilog(const Circuit& c, std::ostream& out);
std::string write_verilog_string(const Circuit& c);
void write_verilog_file(const Circuit& c, const std::string& path);

}  // namespace deepseq
