// Cross-module property tests: invariants that must hold across format
// conversions, circuit transformations and model configurations, swept over
// random circuits.

#include <gtest/gtest.h>

#include <sstream>

#include "core/model.hpp"
#include "core/trainer.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/aiger_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "prob/switching.hpp"
#include "support/equivalence.hpp"

namespace deepseq {
namespace {

Circuit random_generic(std::uint64_t seed, int gates = 120) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 6;
  spec.num_gates = gates;
  return generate_circuit(spec, rng);
}

// ---- transformation composition ---------------------------------------------

class TransformChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformChain, DecomposeThenOptimizePreservesBehaviour) {
  const Circuit generic = random_generic(GetParam());
  const Circuit aig = decompose_to_aig(generic).aig;
  const OptimizeResult opt = optimize_aig(aig);
  testing::expect_po_equivalent(generic, opt.circuit, 128, GetParam() + 11);
}

TEST_P(TransformChain, FormatChainPreservesBehaviour) {
  // generic -> Verilog -> parse -> BENCH -> parse -> AIG -> binary AIGER ->
  // parse: four independent codecs composed; the PO behaviour must survive.
  const Circuit generic = random_generic(GetParam(), 80);
  const Circuit v = parse_verilog_string(write_verilog_string(generic));
  const Circuit b = parse_bench_string(write_bench_string(v));
  const Circuit aig = decompose_to_aig(b).aig;
  std::stringstream bin;
  write_aiger_binary(aig, bin);
  const Circuit back = parse_aiger_binary(bin);
  testing::expect_po_equivalent(generic, back, 128, GetParam() + 13);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformChain,
                         ::testing::Values(401, 402, 403, 404, 405, 406));

// ---- optimization monotonicity ----------------------------------------------

class OptimizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeSweep, NeverGrowsAndIsIdempotent) {
  const Circuit aig = decompose_to_aig(random_generic(GetParam())).aig;
  const OptimizeResult once = optimize_aig(aig);
  EXPECT_LE(once.circuit.num_nodes(), aig.num_nodes());
  const OptimizeResult twice = optimize_aig(once.circuit);
  EXPECT_EQ(twice.circuit.num_nodes(), once.circuit.num_nodes())
      << "optimization must reach a fixpoint in one pass";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeSweep,
                         ::testing::Values(411, 412, 413, 414));

// ---- probability estimators vs simulation ------------------------------------

class EstimatorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorSweep, SwitchingEstimateIsCalibratedOnAverage) {
  // The independence estimate is approximate per node, but its circuit
  // mean toggle rate should track simulation within a loose factor — the
  // property that makes it usable as the Tables V/VI baseline.
  const Circuit c = random_generic(GetParam(), 80);
  Rng rng(GetParam() + 1);
  const Workload w = random_workload(c, rng);
  ActivityOptions opt;
  opt.num_cycles = 10000;
  const NodeActivity act = collect_activity(c, w, opt);
  const SwitchingEstimate est = estimate_switching(c, w);
  double sim_mean = 0.0, est_mean = 0.0;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    sim_mean += act.toggle_rate(v);
    est_mean += est.toggle_rate(v);
  }
  sim_mean /= static_cast<double>(c.num_nodes());
  est_mean /= static_cast<double>(c.num_nodes());
  EXPECT_GT(est_mean, sim_mean * 0.4);
  EXPECT_LT(est_mean, sim_mean * 2.5 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorSweep,
                         ::testing::Values(421, 422, 423, 424, 425));

// ---- model configuration sweep ------------------------------------------------

struct ConfigCase {
  const char* name;
  ModelConfig config;
};

class ModelConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ModelConfigSweep, SaveLoadPredictsIdentically) {
  const Circuit aig = decompose_to_aig(random_generic(77, 60)).aig;
  Rng rng(7);
  Workload w = random_workload(aig, rng);
  ActivityOptions opt;
  opt.num_cycles = 200;
  const TrainSample s = make_sample("cfg", aig, std::move(w), opt, 5);

  const DeepSeqModel model(GetParam().config);
  const Predictions before = predict(model, s);

  const std::string path = ::testing::TempDir() + "/deepseq_cfg_" +
                           std::string(GetParam().name) + ".bin";
  model.save(path);
  DeepSeqModel loaded(GetParam().config);
  loaded.load(path);
  const Predictions after = predict(loaded, s);
  for (std::size_t i = 0; i < before.tr.size(); ++i)
    ASSERT_FLOAT_EQ(before.tr.data()[i], after.tr.data()[i]);
  for (std::size_t i = 0; i < before.lg.size(); ++i)
    ASSERT_FLOAT_EQ(before.lg.data()[i], after.lg.data()[i]);
}

TEST_P(ModelConfigSweep, OutputsAreProbabilities) {
  const Circuit aig = decompose_to_aig(random_generic(78, 60)).aig;
  Rng rng(8);
  Workload w = random_workload(aig, rng);
  ActivityOptions opt;
  opt.num_cycles = 200;
  const TrainSample s = make_sample("cfg", aig, std::move(w), opt, 6);
  const DeepSeqModel model(GetParam().config);
  const Predictions p = predict(model, s);
  for (std::size_t i = 0; i < p.tr.size(); ++i) {
    ASSERT_GE(p.tr.data()[i], 0.0f);
    ASSERT_LE(p.tr.data()[i], 1.0f);
  }
  for (std::size_t i = 0; i < p.lg.size(); ++i) {
    ASSERT_GE(p.lg.data()[i], 0.0f);
    ASSERT_LE(p.lg.data()[i], 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ModelConfigSweep,
    ::testing::Values(
        ConfigCase{"deepseq", ModelConfig::deepseq(8, 2)},
        ConfigCase{"deepseq_attn", ModelConfig::deepseq_simple_attention(8, 2)},
        ConfigCase{"conv_sum", ModelConfig::dag_conv_gnn(AggregatorKind::kConvSum, 8)},
        ConfigCase{"conv_attn", ModelConfig::dag_conv_gnn(AggregatorKind::kAttention, 8)},
        ConfigCase{"rec_sum", ModelConfig::dag_rec_gnn(AggregatorKind::kConvSum, 8, 2)},
        ConfigCase{"rec_attn", ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, 8, 2)}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace deepseq
