#include "netlist/topology.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace deepseq {

namespace {

/// Generic levelization over an explicit fanin list. `is_source(v)` marks
/// level-0 nodes whose fanins (if any) are ignored.
Levelization levelize(std::size_t num_nodes,
                      const std::vector<std::vector<NodeId>>& fanins,
                      const std::vector<bool>& is_source) {
  Levelization out;
  out.level.assign(num_nodes, -1);

  // Iterative DFS with memoized levels.
  std::vector<std::pair<NodeId, int>> stack;
  for (NodeId root = 0; root < num_nodes; ++root) {
    if (out.level[root] >= 0) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (is_source[v] || fanins[v].empty()) {
        out.level[v] = 0;
        stack.pop_back();
        continue;
      }
      if (next < static_cast<int>(fanins[v].size())) {
        const NodeId u = fanins[v][next++];
        if (out.level[u] < 0) stack.emplace_back(u, 0);
      } else {
        int lvl = 0;
        for (NodeId u : fanins[v]) {
          if (out.level[u] < 0)
            throw CircuitError("levelize: cycle detected at node " +
                               std::to_string(u));
          lvl = std::max(lvl, out.level[u] + 1);
        }
        out.level[v] = lvl;
        stack.pop_back();
      }
    }
  }

  out.depth = 0;
  for (int l : out.level) out.depth = std::max(out.depth, l);
  out.by_level.assign(static_cast<std::size_t>(out.depth) + 1, {});
  for (NodeId v = 0; v < num_nodes; ++v)
    out.by_level[static_cast<std::size_t>(out.level[v])].push_back(v);
  return out;
}

}  // namespace

Levelization comb_levelize(const Circuit& c) {
  const std::size_t n = c.num_nodes();
  std::vector<std::vector<NodeId>> fanins(n);
  std::vector<bool> is_source(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const GateType t = c.type(v);
    if (t == GateType::kPi || t == GateType::kFf || t == GateType::kConst0) {
      is_source[v] = true;
      continue;
    }
    for (int i = 0; i < c.num_fanins(v); ++i) fanins[v].push_back(c.fanin(v, i));
  }
  return levelize(n, fanins, is_source);
}

std::vector<NodeId> comb_topo_order(const Circuit& c) {
  const Levelization lv = comb_levelize(c);
  std::vector<NodeId> order;
  order.reserve(c.num_nodes());
  for (const auto& level : lv.by_level)
    for (NodeId v : level) order.push_back(v);
  return order;
}

AcyclicView make_acyclic_view(const Circuit& c) {
  const std::size_t n = c.num_nodes();
  AcyclicView out;
  out.fanins.assign(n, {});

  // DFS over the full graph (FF D edges included); drop edges into gray
  // nodes (back edges) so the remainder is a DAG.
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> mark(n, Mark::kWhite);
  std::vector<std::pair<NodeId, int>> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (mark[root] != Mark::kWhite) continue;
    mark[root] = Mark::kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < c.num_fanins(v)) {
        const NodeId u = c.fanin(v, next++);
        if (mark[u] == Mark::kGray) {
          ++out.num_removed_edges;  // back edge: skip
        } else {
          out.fanins[v].push_back(u);
          if (mark[u] == Mark::kWhite) {
            mark[u] = Mark::kGray;
            stack.emplace_back(u, 0);
          }
        }
      } else {
        mark[v] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }

  std::vector<bool> is_source(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (c.type(v) == GateType::kPi || c.type(v) == GateType::kConst0)
      is_source[v] = true;
  }
  out.levels = levelize(n, out.fanins, is_source);
  return out;
}

}  // namespace deepseq
