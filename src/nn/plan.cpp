#include "nn/plan.hpp"

#include <algorithm>
#include <atomic>

namespace deepseq::nn {

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kAddRow: return "add_row";
    case OpKind::kMatmul: return "matmul";
    case OpKind::kScale: return "scale";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kRelu: return "relu";
    case OpKind::kOneMinus: return "one_minus";
    case OpKind::kConcatCols: return "concat_cols";
    case OpKind::kGather: return "gather";
    case OpKind::kSegmentSoftmax: return "segment_softmax";
    case OpKind::kMulCol: return "mul_col";
    case OpKind::kSegmentSum: return "segment_sum";
    case OpKind::kSegmentMax: return "segment_max";
    case OpKind::kL1Loss: return "l1_loss";
    case OpKind::kL1LossWeighted: return "l1_loss_weighted";
    case OpKind::kSoftmaxXent: return "softmax_cross_entropy";
  }
  return "?";
}

std::uint64_t op_work(const Op& op) {
  const Tensor& out = op.out->value;
  switch (op.kind) {
    case OpKind::kMatmul:
      return 2ull * static_cast<std::uint64_t>(out.rows()) *
             static_cast<std::uint64_t>(op.inputs[0]->value.cols()) * out.cols();
    case OpKind::kSegmentSum:
    case OpKind::kSegmentMax:
    case OpKind::kL1Loss:
    case OpKind::kL1LossWeighted:
    case OpKind::kSegmentSoftmax:
      return static_cast<std::uint64_t>(op.inputs[0]->value.size());
    case OpKind::kSoftmaxXent:
      // exp-heavy: weight the per-element cost up so it counts as real work.
      return 8ull * static_cast<std::uint64_t>(op.inputs[0]->value.size());
    case OpKind::kSigmoid:
    case OpKind::kTanh:
      return 4ull * static_cast<std::uint64_t>(out.size());
    default:
      return static_cast<std::uint64_t>(out.size());
  }
}

int op_parallel_extent(const Op& op) {
  switch (op.kind) {
    case OpKind::kSegmentSum:
    case OpKind::kSegmentMax:
      return op.out->value.cols();
    case OpKind::kSegmentSoftmax:
    case OpKind::kL1Loss:
    case OpKind::kL1LossWeighted:
    case OpKind::kSoftmaxXent:
      return 0;  // scalar reduction / ordered accumulation: one chunk
    default:
      return op.out->value.rows();
  }
}

int chunk_count(std::uint64_t work, int extent, int threads) {
  if (threads <= 1 || extent <= 1) return 1;
  const int cap = std::min(threads, extent);
  return std::max(1, static_cast<int>(std::min<std::uint64_t>(
                         work / kSplitWork, static_cast<std::uint64_t>(cap))));
}

namespace {

void emit_chunks(Plan& plan, Op* op, int extent, int chunks) {
  if (extent <= 0) {
    plan.add_chunk(Chunk{op, 0, 0, kRoleForward});  // full-range kernel
    return;
  }
  const int base = extent / chunks, rem = extent % chunks;
  int begin = 0;
  for (int i = 0; i < chunks; ++i) {
    const int len = base + (i < rem ? 1 : 0);
    plan.add_chunk(Chunk{op, begin, begin + len, kRoleForward});
    begin += len;
  }
}

}  // namespace

std::uint64_t Plan::total_work() const {
  std::uint64_t total = 0;
  for (const Wave& w : waves_) total += w.work;
  return total;
}

std::uint32_t Plan::max_wave_chunks() const {
  std::uint32_t m = 0;
  for (const Wave& w : waves_) m = std::max(m, w.count);
  return m;
}

void Plan::reserve(std::size_t waves, std::size_t chunks) {
  waves_.reserve(waves);
  chunks_.reserve(chunks);
}

Plan Plan::build(const std::vector<std::shared_ptr<Op>>& ops, int threads) {
  Plan plan;
  if (ops.empty()) return plan;
  if (ops.size() == 1) {  // eager fast path: no leveling needed
    Op* op = ops[0].get();
    const int extent = op_parallel_extent(*op);
    const std::uint64_t work = op_work(*op);
    plan.add_wave().work = work;
    emit_chunks(plan, op, extent, chunk_count(work, extent, threads));
    return plan;
  }

  // Ops arrive in creation order, so every in-batch producer precedes its
  // consumers; one forward scan levels the DAG. Wave indices live in the
  // nodes themselves, tagged with a fresh epoch per build — a node whose
  // epoch doesn't match was materialized before this batch (a wave-0 input).
  static std::atomic<std::uint64_t> g_epoch{0};
  const std::uint64_t epoch = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;

  // Pass 1: wave index + chunk count per op; per-wave chunk totals.
  struct Placement {
    int wave, extent, chunks;
  };
  std::vector<Placement> placed;
  placed.reserve(ops.size());
  std::vector<std::uint32_t> wave_chunks;  // chunks per wave
  std::vector<std::uint64_t> wave_work;
  for (const auto& op : ops) {
    int level = 0;
    for (const Var& in : op->inputs)
      if (in->plan_epoch == epoch) level = std::max(level, in->plan_wave + 1);
    op->out->plan_epoch = epoch;
    op->out->plan_wave = level;
    const std::uint64_t work = op_work(*op);
    const int extent = op_parallel_extent(*op);
    const int chunks = chunk_count(work, extent, threads);
    placed.push_back(Placement{level, extent, chunks});
    if (static_cast<std::size_t>(level) >= wave_chunks.size()) {
      wave_chunks.resize(static_cast<std::size_t>(level) + 1, 0);
      wave_work.resize(static_cast<std::size_t>(level) + 1, 0);
    }
    wave_chunks[static_cast<std::size_t>(level)] +=
        static_cast<std::uint32_t>(chunks);
    wave_work[static_cast<std::size_t>(level)] += work;
  }

  // Pass 2: lay chunks out flat, grouped by wave.
  std::size_t total_chunks = 0;
  for (const std::uint32_t c : wave_chunks) total_chunks += c;
  plan.reserve(wave_chunks.size(), total_chunks);
  std::vector<std::uint32_t> cursor(wave_chunks.size());
  {
    std::uint32_t offset = 0;
    for (std::size_t w = 0; w < wave_chunks.size(); ++w) {
      cursor[w] = offset;
      plan.waves_.push_back(Wave{offset, wave_chunks[w], wave_work[w]});
      offset += wave_chunks[w];
    }
    plan.chunks_.resize(total_chunks);
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op* op = ops[i].get();
    const Placement& p = placed[i];
    std::uint32_t at = cursor[static_cast<std::size_t>(p.wave)];
    if (p.extent <= 0) {
      plan.chunks_[at++] = Chunk{op, 0, 0, kRoleForward};
    } else {
      const int base = p.extent / p.chunks, rem = p.extent % p.chunks;
      int begin = 0;
      for (int c = 0; c < p.chunks; ++c) {
        const int len = base + (c < rem ? 1 : 0);
        plan.chunks_[at++] = Chunk{op, begin, begin + len, kRoleForward};
        begin += len;
      }
    }
    cursor[static_cast<std::size_t>(p.wave)] = at;
  }
  return plan;
}

}  // namespace deepseq::nn
