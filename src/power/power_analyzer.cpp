#include "power/power_analyzer.hpp"

#include "common/error.hpp"
#include "netlist/bench_io.hpp"

namespace deepseq {

namespace {

void accumulate(PowerReport& report, GateType t, double watts) {
  report.total_watts += watts;
  if (t == GateType::kFf) {
    report.sequential_watts += watts;
  } else if (t == GateType::kPi) {
    report.io_watts += watts;
  } else {
    report.combinational_watts += watts;
  }
}

}  // namespace

PowerReport analyze_power(const Circuit& netlist, const SaifDocument& saif,
                          const CellLibrary& lib) {
  if (saif.duration <= 0) throw Error("analyze_power: SAIF duration must be > 0");
  const auto names = unique_node_names(netlist);
  const auto nets = saif.net_map();

  PowerReport report;
  for (NodeId v = 0; v < netlist.num_nodes(); ++v) {
    const auto it = nets.find(names[v]);
    if (it == nets.end()) {
      ++report.nets_missing;
      continue;
    }
    ++report.nets_matched;
    const double rate = static_cast<double>(it->second.tc) /
                        static_cast<double>(saif.duration);
    accumulate(report, netlist.type(v), lib.gate_power(netlist.type(v), rate));
  }
  return report;
}

PowerReport analyze_power_rates(const Circuit& netlist,
                                const std::vector<double>& toggle_rate,
                                const CellLibrary& lib) {
  if (toggle_rate.size() != netlist.num_nodes())
    throw Error("analyze_power_rates: rate vector size mismatch");
  PowerReport report;
  for (NodeId v = 0; v < netlist.num_nodes(); ++v) {
    ++report.nets_matched;
    accumulate(report, netlist.type(v),
               lib.gate_power(netlist.type(v), toggle_rate[v]));
  }
  return report;
}

}  // namespace deepseq
