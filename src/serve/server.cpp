#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "artifact/artifact.hpp"
#include "artifact/store.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace deepseq::serve {
namespace {

/// Ingress request counters: serve.requests.<kind> at arrival, then exactly
/// one of serve.completed.<kind> / serve.failed.<kind> / serve.shed.<kind>
/// (the last bumped by the AdmissionQueue) — the audited identity.
struct RequestMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* failed;
};

const RequestMetrics& request_metrics(int kind) {
  static const std::array<RequestMetrics, kNumTaskKinds> all = [] {
    std::array<RequestMetrics, kNumTaskKinds> a{};
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kNumTaskKinds; ++i) {
      const std::string name = api::task_name(static_cast<api::TaskKind>(i));
      a[static_cast<std::size_t>(i)] =
          RequestMetrics{&reg.counter("serve.requests." + name),
                         &reg.counter("serve.completed." + name),
                         &reg.counter("serve.failed." + name)};
    }
    return a;
  }();
  return all[static_cast<std::size_t>(kind)];
}

ErrorCode error_code_for(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull: return ErrorCode::kOverloadQueueFull;
    case ShedReason::kDeadline: return ErrorCode::kOverloadDeadline;
    case ShedReason::kShutdown: return ErrorCode::kShuttingDown;
  }
  return ErrorCode::kInternal;
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// The request id leads every request payload — recover it from an
/// otherwise undecodable frame so the typed error still reaches the right
/// caller-side future.
std::uint64_t peek_request_id(const std::string& payload) {
  if (payload.size() < 8) return 0;
  WireReader r(payload.data(), 8);
  return r.u64("request_id");
}

}  // namespace

Server::Server(const ServeConfig& config) : config_(config) {
  // Resolve the artifact directory first: a bad DEEPSEQ_ARTIFACT_DIR must
  // fail server construction, not the first reload request.
  if (!config_.artifact_dir.empty()) {
    store_ = std::make_shared<const artifact::Store>(
        artifact::Store::open(config_.artifact_dir));
  } else {
    store_ = artifact::store_from_env();
  }
  router_ = std::make_unique<ShardRouter>(config_.router);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw Error(std::string("serve::Server: socket(): ") +
                std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve::Server: cannot listen on 127.0.0.1:" +
                std::to_string(config_.port) + ": " + why);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock accept() first, then stop every connection from producing new
  // requests (SHUT_RD) and join the readers; only then tear the router
  // down — queued jobs are shed typed (kShuttingDown goes out over the
  // still-open write halves), workers finish what they already popped and
  // those responses are written too. fds close last.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::list<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns)
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  for (auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
  // Destroying the router sheds queued jobs (kShutdown) and joins workers,
  // so every in-flight completion has written its frame once this returns.
  router_.reset();
  for (auto& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->open.store(false, std::memory_order_relaxed);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

void Server::rescan_artifacts() {
  if (config_.artifact_dir.empty() && store_ == nullptr)
    throw Error("serve::Server: no artifact directory configured");
  const std::string dir =
      config_.artifact_dir.empty() ? store_->dir() : config_.artifact_dir;
  auto fresh =
      std::make_shared<const artifact::Store>(artifact::Store::open(dir));
  std::lock_guard<std::mutex> lock(store_mu_);
  store_ = std::move(fresh);
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — stop accepting
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_.load(std::memory_order_relaxed)) {
        ::close(fd);
        return;
      }
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { connection_loop(conn); });
  }
}

void Server::connection_loop(const std::shared_ptr<Connection>& conn) {
  FrameParser parser;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    try {
      parser.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = parser.next()) handle_frame(conn, *frame);
    } catch (const std::exception& e) {
      // Framing is broken (oversized length prefix, ...): the stream can't
      // be resynchronized, so report once and drop the connection.
      send_error(conn, 0, ErrorCode::kBadRequest, e.what());
      break;
    }
  }
  conn->open.store(false, std::memory_order_relaxed);
}

void Server::send_frame(const std::shared_ptr<Connection>& conn, MsgType type,
                        const std::string& payload) {
  const std::string frame = encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load(std::memory_order_relaxed)) return;
  if (!write_all(conn->fd, frame.data(), frame.size()))
    conn->open.store(false, std::memory_order_relaxed);
}

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, ErrorCode code,
                        const std::string& detail) {
  ErrorResponseMsg msg;
  msg.request_id = request_id;
  msg.code = code;
  msg.detail = detail;
  send_frame(conn, MsgType::kErrorResponse, encode(msg));
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const FrameParser::Frame& frame) {
  switch (frame.type) {
    case MsgType::kTaskRequest: {
      TaskRequestMsg msg;
      try {
        msg = decode_task_request(frame.payload);
      } catch (const std::exception& e) {
        send_error(conn, peek_request_id(frame.payload),
                   ErrorCode::kBadRequest, e.what());
        return;
      }
      const int kind = static_cast<int>(msg.task);
      request_metrics(kind).submitted->inc();
      api::TaskRequest request;
      request.circuit = std::make_shared<const Circuit>(std::move(msg.circuit));
      request.workload = std::move(msg.workload);
      request.task = msg.task;
      request.backend = std::move(msg.backend);
      request.init_seed = msg.init_seed;
      // deadline_ms is relative to arrival; pin it to the admission clock
      // here so the estimate-vs-deadline comparison is exact.
      const std::uint64_t deadline_ns =
          msg.deadline_ms == 0
              ? 0
              : router_->admission(0).now_ns() +
                    static_cast<std::uint64_t>(msg.deadline_ms) * 1000000ull;
      const std::uint64_t request_id = msg.request_id;
      router_->submit(
          std::move(request), deadline_ns,
          [this, conn, request_id, kind](RoutedOutcome&& out) {
            if (auto* result = std::get_if<api::TaskResult>(&out.value)) {
              request_metrics(kind).completed->inc();
              TaskResponseMsg resp;
              resp.request_id = request_id;
              resp.shard = static_cast<std::uint32_t>(out.shard);
              resp.result = std::move(*result);
              send_frame(conn, MsgType::kTaskResponse, encode(resp));
            } else if (auto* shed = std::get_if<ShedReason>(&out.value)) {
              send_error(conn, request_id, error_code_for(*shed),
                         std::string("shed: ") + shed_reason_name(*shed));
            } else {
              request_metrics(kind).failed->inc();
              std::string what = "unknown error";
              try {
                std::rethrow_exception(
                    std::get<std::exception_ptr>(out.value));
              } catch (const std::exception& e) {
                what = e.what();
              } catch (...) {
              }
              send_error(conn, request_id, ErrorCode::kInternal, what);
            }
          });
      return;
    }
    case MsgType::kReloadRequest: {
      ReloadRequestMsg msg;
      try {
        msg = decode_reload_request(frame.payload);
      } catch (const std::exception& e) {
        send_error(conn, peek_request_id(frame.payload),
                   ErrorCode::kBadRequest, e.what());
        return;
      }
      std::shared_ptr<const artifact::Store> store;
      {
        std::lock_guard<std::mutex> lock(store_mu_);
        store = store_;
      }
      if (store == nullptr) {
        send_error(conn, msg.request_id, ErrorCode::kBadRequest,
                   "no artifact directory configured (set "
                   "DEEPSEQ_ARTIFACT_DIR or ServeConfig::artifact_dir)");
        return;
      }
      std::shared_ptr<const artifact::Artifact> artifact;
      try {
        artifact = store->resolve(msg.artifact_ref);
      } catch (const std::exception& e) {
        send_error(conn, msg.request_id, ErrorCode::kBadRequest, e.what());
        return;
      }
      try {
        std::lock_guard<std::mutex> lock(reload_mu_);
        ReloadResponseMsg resp;
        resp.request_id = msg.request_id;
        resp.fingerprint = router_->reload_all(artifact, msg.backend);
        resp.shards = static_cast<std::uint32_t>(router_->num_shards());
        send_frame(conn, MsgType::kReloadResponse, encode(resp));
      } catch (const std::exception& e) {
        send_error(conn, msg.request_id, ErrorCode::kInternal, e.what());
      }
      return;
    }
    case MsgType::kStatsRequest: {
      StatsRequestMsg msg;
      try {
        msg = decode_stats_request(frame.payload);
      } catch (const std::exception& e) {
        send_error(conn, peek_request_id(frame.payload),
                   ErrorCode::kBadRequest, e.what());
        return;
      }
      StatsResponseMsg resp;
      resp.request_id = msg.request_id;
      resp.json = stats_json();
      send_frame(conn, MsgType::kStatsResponse, encode(resp));
      return;
    }
    default:
      send_error(conn, peek_request_id(frame.payload), ErrorCode::kBadRequest,
                 "unexpected message type " +
                     std::to_string(static_cast<int>(frame.type)));
      return;
  }
}

std::string Server::stats_json() const {
  auto cache_json = [](const runtime::CacheCounters& c) {
    return "{\"hits\":" + std::to_string(c.hits) +
           ",\"misses\":" + std::to_string(c.misses) +
           ",\"evictions\":" + std::to_string(c.evictions) + "}";
  };
  std::string out = "{\"port\":" + std::to_string(port_) +
                    ",\"shards\":" + std::to_string(router_->num_shards()) +
                    ",\"per_shard\":[";
  for (int s = 0; s < router_->num_shards(); ++s) {
    const ShardRouter::ShardStats st = router_->shard_stats(s);
    if (s > 0) out += ",";
    std::string admitted, shed;
    for (int k = 0; k < kNumTaskKinds; ++k) {
      if (k > 0) {
        admitted += ",";
        shed += ",";
      }
      admitted += std::to_string(st.admission.admitted[static_cast<std::size_t>(k)]);
      shed += std::to_string(st.admission.shed[static_cast<std::size_t>(k)]);
    }
    out += "{\"queued\":" + std::to_string(st.queued) +
           ",\"served\":" + std::to_string(st.served) +
           ",\"admitted\":[" + admitted + "],\"shed\":[" + shed +
           "],\"structures\":" + cache_json(st.cache.structures) +
           ",\"embeddings\":" + cache_json(st.cache.embeddings) +
           ",\"regressions\":" + cache_json(st.cache.regressions) + "}";
  }
  out += "],\"requests\":{";
  for (int k = 0; k < kNumTaskKinds; ++k) {
    const RequestMetrics& m = request_metrics(k);
    if (k > 0) out += ",";
    out += std::string("\"") + api::task_name(static_cast<api::TaskKind>(k)) +
           "\":{\"submitted\":" + std::to_string(m.submitted->value()) +
           ",\"completed\":" + std::to_string(m.completed->value()) +
           ",\"failed\":" + std::to_string(m.failed->value()) + "}";
  }
  out += "}";
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (store_ != nullptr)
      out += ",\"artifacts\":" + store_->manifest_json();
  }
  out += "}";
  return out;
}

}  // namespace deepseq::serve
