#include "netlist/scoap.hpp"

#include <gtest/gtest.h>

#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"

namespace deepseq {
namespace {

TEST(Scoap, PiBaseline) {
  Circuit c("pi");
  const NodeId a = c.add_pi("a");
  c.add_po(a, "y");
  const ScoapMeasures m = compute_scoap(c);
  EXPECT_DOUBLE_EQ(m.cc0[a], 1.0);
  EXPECT_DOUBLE_EQ(m.cc1[a], 1.0);
  EXPECT_DOUBLE_EQ(m.co[a], 0.0);
}

TEST(Scoap, AndGateGoldsteinValues) {
  Circuit c("and");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  c.add_po(g, "y");
  const ScoapMeasures m = compute_scoap(c);
  // CC1(AND) = CC1(a) + CC1(b) + 1; CC0(AND) = min(CC0) + 1.
  EXPECT_DOUBLE_EQ(m.cc1[g], 3.0);
  EXPECT_DOUBLE_EQ(m.cc0[g], 2.0);
  // CO(input) = CO(g) + CC1(other) + 1.
  EXPECT_DOUBLE_EQ(m.co[a], 2.0);
  EXPECT_DOUBLE_EQ(m.co[b], 2.0);
}

TEST(Scoap, XorSideInputNeedsAnyValue) {
  Circuit c("xor");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_gate(GateType::kXor, {a, b}, "g");
  c.add_po(g, "y");
  const ScoapMeasures m = compute_scoap(c);
  EXPECT_DOUBLE_EQ(m.cc0[g], 3.0);  // equal inputs
  EXPECT_DOUBLE_EQ(m.cc1[g], 3.0);  // differing inputs
  EXPECT_DOUBLE_EQ(m.co[a], 2.0);   // side input: min(CC0, CC1) + 1
}

TEST(Scoap, NotChainAccumulatesDepth) {
  Circuit c("chain");
  NodeId cur = c.add_pi("a");
  for (int i = 0; i < 5; ++i) cur = c.add_not(cur);
  c.add_po(cur, "y");
  const ScoapMeasures m = compute_scoap(c);
  // Each inverter adds 1 to controllability.
  EXPECT_DOUBLE_EQ(std::min(m.cc0[cur], m.cc1[cur]), 6.0);
}

TEST(Scoap, ConstantIsUncontrollableToOne) {
  Circuit c("const");
  const NodeId z = c.add_const0("z");
  const NodeId a = c.add_pi("a");
  const NodeId g = c.add_and(a, z, "g");
  c.add_po(g, "y");
  const ScoapMeasures m = compute_scoap(c);
  EXPECT_GE(m.cc1[z], kScoapInf);
  EXPECT_DOUBLE_EQ(m.cc0[z], 0.0);
  // g = a AND 0 can never be 1.
  EXPECT_GE(m.cc1[g], kScoapInf);
  // a is unobservable: the AND's side input can never be 1.
  EXPECT_GE(m.co[a], kScoapInf);
}

TEST(Scoap, FlipFlopAddsATimeFrame) {
  Circuit c("ff");
  const NodeId d = c.add_pi("d");
  const NodeId q = c.add_ff(d, "q");
  c.add_po(q, "y");
  const ScoapMeasures m = compute_scoap(c);
  EXPECT_DOUBLE_EQ(m.cc1[q], m.cc1[d] + 1.0);
  EXPECT_DOUBLE_EQ(m.co[d], m.co[q] + 1.0);
}

TEST(Scoap, FeedbackLoopConverges) {
  // Toggle FF: q' = NOT(q). The fixpoint must terminate and yield finite
  // controllability for both values (the toggler reaches 0 and 1).
  Circuit c("toggle");
  const NodeId q = c.add_ff(kNullNode, "q");
  const NodeId nq = c.add_not(q, "nq");
  c.set_fanin(q, 0, nq);
  c.add_po(q, "y");
  const ScoapMeasures m = compute_scoap(c);
  EXPECT_LT(m.cc0[q], kScoapInf);
  EXPECT_LT(m.cc1[q], kScoapInf);
  EXPECT_GT(m.controllability_iterations, 1);
}

TEST(Scoap, UnobservableDeadLogic) {
  Circuit c("dead");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId dead = c.add_and(a, b, "dead");  // no path to any PO
  const NodeId live = c.add_not(a, "live");
  c.add_po(live, "y");
  const ScoapMeasures m = compute_scoap(c);
  EXPECT_GE(m.co[dead], kScoapInf);
  EXPECT_LT(m.co[a], kScoapInf);
}

TEST(Scoap, DeeperNodesAreHarder) {
  const Circuit c = iscas89_s27();
  const ScoapMeasures m = compute_scoap(c);
  // PIs are easiest to control, FFs reach 0 by reset (cost 1); every
  // combinational gate costs strictly more.
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.type(v) == GateType::kPi || c.type(v) == GateType::kFf) continue;
    EXPECT_GE(std::min(m.cc0[v], m.cc1[v]), 2.0) << "node " << v;
  }
}

TEST(Scoap, FaultEffortCombinesDriveAndObserve) {
  Circuit c("fe");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  c.add_po(g, "y");
  const ScoapMeasures m = compute_scoap(c);
  // stuck-at-0 at g: drive g to 1 (cost 3) + observe g (cost 0).
  EXPECT_DOUBLE_EQ(m.fault_effort(g, false), 3.0);
  // stuck-at-1 at g: drive g to 0 (cost 2).
  EXPECT_DOUBLE_EQ(m.fault_effort(g, true), 2.0);
}

TEST(Scoap, RandomCircuitsAllFiniteWhenFullyObservable) {
  Rng rng(91);
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 6;
  spec.num_gates = 120;
  spec.extra_po_fraction = 1.0;  // every non-sink gate exported
  const Circuit c = generate_circuit(spec, rng);
  const ScoapMeasures m = compute_scoap(c);
  std::size_t finite_cc = 0;
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    if (std::min(m.cc0[v], m.cc1[v]) < kScoapInf) ++finite_cc;
  // At least the vast majority of nodes must be controllable to one value.
  EXPECT_GT(finite_cc, c.num_nodes() * 9 / 10);
}

}  // namespace
}  // namespace deepseq
