// Serving-tier bench: closed-loop clients driving the fleet tier over real
// loopback TCP — every request crosses the wire protocol, the shard router
// and admission control, and is served by Session::run_sync inside a shard.
// Reports p50/p99 latency per TaskKind, the shed rate, and per-shard cache
// hit rates (the payoff of structural-hash routing), and emits
// serving_tier.json for cross-commit tracking.
//
// Knobs: DEEPSEQ_TIER_REQUESTS   requests per TaskKind        (default 18)
//        DEEPSEQ_TIER_CLIENTS    closed-loop client threads   (default 4)
//        DEEPSEQ_TIER_SHARDS     Session shards               (default 2)
//        DEEPSEQ_TIER_WORKERS    workers per shard            (default 2)
//        DEEPSEQ_TIER_DEPTH      per-kind admission depth     (default 64;
//                                undersize it to demo typed load shedding)
//        DEEPSEQ_TIER_DEADLINE_MS  per-request server budget  (default 0)
//        DEEPSEQ_TIER_CONNECT    "port" or "host:port" of an external
//                                serve_daemon: bench an already-running
//                                fleet instead of an in-process server
//        DEEPSEQ_FULL=1          paper-scale model presets

#include <array>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "dataset/generator.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace deepseq;
using namespace deepseq::bench;

namespace {

constexpr int kKinds = serve::kNumTaskKinds;

struct KindTally {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
};

}  // namespace

int main() try {
  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("SERVING TIER",
               "closed-loop clients over loopback TCP: wire protocol, shard "
               "routing, admission control",
               cfg);

  const int per_kind =
      static_cast<int>(env_int("DEEPSEQ_TIER_REQUESTS", cfg.full ? 64 : 18));
  const int num_clients = static_cast<int>(env_int("DEEPSEQ_TIER_CLIENTS", 4));
  const int shards = static_cast<int>(env_int("DEEPSEQ_TIER_SHARDS", 2));
  const int workers = static_cast<int>(env_int("DEEPSEQ_TIER_WORKERS", 2));
  const std::size_t depth =
      static_cast<std::size_t>(env_int("DEEPSEQ_TIER_DEPTH", 64));
  const std::uint32_t deadline_ms =
      static_cast<std::uint32_t>(env_int("DEEPSEQ_TIER_DEADLINE_MS", 0));
  const std::string connect = env_string("DEEPSEQ_TIER_CONNECT", "");

  // Servable fleet: small AND/NOT netlists plus bounded workload pools, so
  // repeats are cacheable and shard-local warmth is measurable.
  const int num_circuits = 4, workloads_per_circuit = 2;
  Rng rng(cfg.eval_seed);
  std::vector<std::shared_ptr<const Circuit>> circuits;
  for (int i = 0; i < num_circuits; ++i) {
    GeneratorSpec spec;
    spec.name = "tier" + std::to_string(i);
    spec.num_pis = 5 + i;
    spec.num_ffs = 3 + i;
    spec.num_gates = 50 + 25 * i;
    for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
    spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
    spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
    circuits.push_back(
        std::make_shared<const Circuit>(generate_circuit(spec, rng)));
  }
  std::vector<std::vector<Workload>> workloads(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i)
    for (int k = 0; k < workloads_per_circuit; ++k)
      workloads[i].push_back(random_workload(*circuits[i], rng));

  // In-process server on an ephemeral port, unless pointed at a live
  // serve_daemon via DEEPSEQ_TIER_CONNECT.
  std::unique_ptr<serve::Server> server;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (connect.empty()) {
    serve::ServeConfig scfg;
    scfg.router.shards = shards;
    scfg.router.workers_per_shard = workers;
    scfg.router.admission.default_depth = depth;
    scfg.router.session.engine.threads = 2;
    scfg.router.session.backends.model =
        ModelConfig::deepseq(cfg.hidden, cfg.iterations);
    server = std::make_unique<serve::Server>(scfg);
    port = server->port();
  } else {
    const auto colon = connect.find(':');
    if (colon == std::string::npos) {
      port = static_cast<std::uint16_t>(std::stoi(connect));
    } else {
      host = connect.substr(0, colon);
      port = static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
    }
  }
  std::printf("target: %s:%u (%s), %d clients, %d requests x %d kinds, "
              "depth %zu, deadline %u ms\n\n",
              host.c_str(), static_cast<unsigned>(port),
              connect.empty() ? "in-process" : "external", num_clients,
              per_kind, kKinds, depth, deadline_ms);

  // Deterministic request list, kinds interleaved so the per-kind queues
  // and the priority order are all exercised at once.
  std::vector<api::TaskRequest> trace;
  trace.reserve(static_cast<std::size_t>(per_kind) * kKinds);
  Rng trace_rng(4242);
  for (int i = 0; i < per_kind; ++i) {
    for (int k = 0; k < kKinds; ++k) {
      api::TaskRequest r;
      const std::size_t c = trace_rng.uniform_index(circuits.size());
      r.circuit = circuits[c];
      r.workload = workloads[c][trace_rng.uniform_index(workloads_per_circuit)];
      r.task = static_cast<api::TaskKind>(k);
      r.init_seed = 7;
      trace.push_back(std::move(r));
    }
  }

  // Closed-loop drive: each client thread owns one connection and pulls the
  // next request off the shared trace, waiting for every reply.
  static std::array<obs::Histogram, kKinds> latency;  // ns
  std::array<KindTally, kKinds> tally;
  std::atomic<std::size_t> cursor{0};
  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int t = 0; t < num_clients; ++t) {
    clients.emplace_back([&] {
      serve::Client client(port, host);
      while (true) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= trace.size()) break;
        const int kind = static_cast<int>(trace[i].task);
        WallTimer rt;
        try {
          (void)client.run(trace[i], deadline_ms);
          latency[static_cast<std::size_t>(kind)].record(
              static_cast<std::uint64_t>(rt.seconds() * 1e9));
          tally[static_cast<std::size_t>(kind)].completed.fetch_add(1);
        } catch (const serve::ServeError& e) {
          if (e.overloaded())
            tally[static_cast<std::size_t>(kind)].shed.fetch_add(1);
          else
            tally[static_cast<std::size_t>(kind)].failed.fetch_add(1);
        } catch (const std::exception&) {
          tally[static_cast<std::size_t>(kind)].failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s = wall.seconds();

  JsonWriter json;
  json.begin_object();
  json.field("bench", "serving_tier");
  json.field("requests_per_kind", per_kind);
  json.field("clients", num_clients);
  json.field("external", !connect.empty());
  json.field("deadline_ms", static_cast<std::uint64_t>(deadline_ms));
  json.field("queue_depth", static_cast<std::uint64_t>(depth));
  json.field("wall_seconds", wall_s);

  std::printf("%-14s | %9s %6s %6s | %9s %9s %9s\n", "kind", "completed",
              "shed", "fail", "p50 ms", "p99 ms", "max ms");
  std::printf("%.*s\n", 76, std::string(76, '-').c_str());
  std::uint64_t total_completed = 0, total_shed = 0, total_failed = 0;
  json.begin_array("per_kind");
  for (int k = 0; k < kKinds; ++k) {
    const auto& tl = tally[static_cast<std::size_t>(k)];
    const obs::Summary s =
        latency[static_cast<std::size_t>(k)].summary(1e-6);  // ns -> ms
    total_completed += tl.completed.load();
    total_shed += tl.shed.load();
    total_failed += tl.failed.load();
    std::printf("%-14s | %9llu %6llu %6llu | %9.2f %9.2f %9.2f\n",
                api::task_name(static_cast<api::TaskKind>(k)),
                static_cast<unsigned long long>(tl.completed.load()),
                static_cast<unsigned long long>(tl.shed.load()),
                static_cast<unsigned long long>(tl.failed.load()), s.p50,
                s.p99, s.max);
    json.begin_object();
    json.field("kind", api::task_name(static_cast<api::TaskKind>(k)));
    json.field("completed", tl.completed.load());
    json.field("shed", tl.shed.load());
    json.field("failed", tl.failed.load());
    json_summary(json, "latency", s);
    json.end_object();
  }
  json.end_array();

  const std::uint64_t submitted = total_completed + total_shed + total_failed;
  const double shed_rate =
      submitted > 0 ? static_cast<double>(total_shed) / submitted : 0.0;
  const double qps = wall_s > 0 ? total_completed / wall_s : 0.0;
  std::printf("\n%llu submitted, %llu completed, %llu shed (%.1f%%), %llu "
              "failed, %.1f q/s closed-loop\n",
              static_cast<unsigned long long>(submitted),
              static_cast<unsigned long long>(total_completed),
              static_cast<unsigned long long>(total_shed), 100.0 * shed_rate,
              static_cast<unsigned long long>(total_failed), qps);
  json.field("submitted", submitted);
  json.field("completed", total_completed);
  json.field("shed", total_shed);
  json.field("failed", total_failed);
  json.field("shed_rate", shed_rate);
  json.field("closed_loop_qps", qps);

  // Per-shard readout (in-process mode): routing balance and the warm-cache
  // payoff of structural-hash placement.
  json.begin_array("per_shard");
  if (server != nullptr) {
    std::printf("\n%-6s | %7s %7s | %10s %10s\n", "shard", "served", "queued",
                "embed hit", "struct hit");
    std::printf("%.*s\n", 50, std::string(50, '-').c_str());
    for (int s = 0; s < server->router().num_shards(); ++s) {
      const serve::ShardRouter::ShardStats st = server->router().shard_stats(s);
      std::printf("%-6d | %7llu %7zu | %9.0f%% %9.0f%%\n", s,
                  static_cast<unsigned long long>(st.served), st.queued,
                  100.0 * st.cache.embeddings.hit_rate(),
                  100.0 * st.cache.structures.hit_rate());
      json.begin_object();
      json.field("shard", s);
      json.field("served", st.served);
      json.field("embedding_hit_rate", st.cache.embeddings.hit_rate());
      json.field("structure_hit_rate", st.cache.structures.hit_rate());
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  write_json_file("serving_tier.json", json.str());
  return total_completed > 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "serving_tier: %s\n", e.what());
  return 1;
}
