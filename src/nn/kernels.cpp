#include "nn/kernels.hpp"

#include <atomic>

#include "common/env.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace deepseq::nn::kernels {

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

// Process-global gate, refreshed from the env once per flush by the
// executor. Both paths are bit-identical, so a racing refresh mid-flush
// could at worst mix paths across kernels — results are unchanged either
// way; relaxed ordering is sufficient.
std::atomic<bool> g_simd_enabled{true};

#if defined(__x86_64__)

// AVX2 bodies. target("avx2") deliberately excludes "fma": the scalar
// baseline is built without -mfma, so every multiply-add must stay a
// separate vmulps + vaddps to round identically.

__attribute__((target("avx2"))) void add_avx2(float* o, const float* x, const float* y,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) o[i] = x[i] + y[i];
}

__attribute__((target("avx2"))) void sub_avx2(float* o, const float* x, const float* y,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) o[i] = x[i] - y[i];
}

__attribute__((target("avx2"))) void mul_avx2(float* o, const float* x, const float* y,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) o[i] = x[i] * y[i];
}

__attribute__((target("avx2"))) void scale_avx2(float* o, const float* x, float s,
                                                std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) o[i] = x[i] * s;
}

// max_ps(x, 0) matches the scalar `x > 0 ? x : 0`: for NaN inputs maxps
// returns the second operand (0.0f), same as the comparison being false,
// and -0.0f > 0 is false so both yield +0.0f.
__attribute__((target("avx2"))) void relu_avx2(float* o, const float* x, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

__attribute__((target("avx2"))) void one_minus_avx2(float* o, const float* x, std::size_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_sub_ps(one, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) o[i] = 1.0f - x[i];
}

__attribute__((target("avx2"))) void acc_add_avx2(float* dst, const float* g, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) dst[i] += g[i];
}

__attribute__((target("avx2"))) void acc_sub_avx2(float* dst, const float* g, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_sub_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) dst[i] -= g[i];
}

__attribute__((target("avx2"))) void acc_mul_avx2(float* dst, const float* g, const float* o,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_loadu_ps(o + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += g[i] * o[i];
}

__attribute__((target("avx2"))) void acc_scale_avx2(float* dst, const float* g, float s,
                                                    std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(g + i), vs);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += g[i] * s;
}

// Register-blocked row microkernel: 4 ymm accumulators cover a 32-float
// output block per row. Each out[i][j] is accumulated over ascending p with
// the same zero-skip as the scalar loop, so per-element op order is
// identical regardless of the j-blocking.
__attribute__((target("avx2"))) void matmul_rows_avx2(const float* a, int lda, const float* b,
                                                      int ldb, float* out, int ldo, int rb,
                                                      int re, int k, int n) {
  for (int i = rb; i < re; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * lda;
    float* orow = out + static_cast<std::size_t>(i) * ldo;
    int j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 acc0 = _mm256_loadu_ps(orow + j);
      __m256 acc1 = _mm256_loadu_ps(orow + j + 8);
      __m256 acc2 = _mm256_loadu_ps(orow + j + 16);
      __m256 acc3 = _mm256_loadu_ps(orow + j + 24);
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(av);
        const float* brow = b + static_cast<std::size_t>(p) * ldb + j;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(brow)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 8)));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 16)));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 24)));
      }
      _mm256_storeu_ps(orow + j, acc0);
      _mm256_storeu_ps(orow + j + 8, acc1);
      _mm256_storeu_ps(orow + j + 16, acc2);
      _mm256_storeu_ps(orow + j + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(orow + j);
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(av);
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(va, _mm256_loadu_ps(b + static_cast<std::size_t>(p) * ldb + j)));
      }
      _mm256_storeu_ps(orow + j, acc);
    }
    for (; j < n; ++j) {
      float acc = orow[j];
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        acc += av * b[static_cast<std::size_t>(p) * ldb + j];
      }
      orow[j] = acc;
    }
  }
}

#endif  // defined(__x86_64__)

// Scalar fallbacks — byte-for-byte the executor's original loops.

void add_scalar(float* o, const float* x, const float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
}
void sub_scalar(float* o, const float* x, const float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] - y[i];
}
void mul_scalar(float* o, const float* x, const float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
}
void scale_scalar(float* o, const float* x, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] * s;
}
void relu_scalar(float* o, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}
void one_minus_scalar(float* o, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = 1.0f - x[i];
}
void acc_add_scalar(float* dst, const float* g, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += g[i];
}
void acc_sub_scalar(float* dst, const float* g, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= g[i];
}
void acc_mul_scalar(float* dst, const float* g, const float* o, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += g[i] * o[i];
}
void acc_scale_scalar(float* dst, const float* g, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += g[i] * s;
}
void matmul_rows_scalar(const float* a, int lda, const float* b, int ldb, float* out, int ldo,
                        int rb, int re, int k, int n) {
  for (int i = rb; i < re; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * lda;
    float* orow = out + static_cast<std::size_t>(i) * ldo;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * ldb;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

bool nn_simd_from_env() { return env_int("DEEPSEQ_NN_SIMD", 1) != 0; }

void refresh_from_env() { g_simd_enabled.store(nn_simd_from_env(), std::memory_order_relaxed); }

bool simd_active() { return cpu_has_avx2() && g_simd_enabled.load(std::memory_order_relaxed); }

int lanes() { return simd_active() ? 8 : 1; }

#if defined(__x86_64__)
#define DEEPSEQ_DISPATCH(fn, ...)             \
  do {                                        \
    if (simd_active()) {                      \
      fn##_avx2(__VA_ARGS__);                 \
    } else {                                  \
      fn##_scalar(__VA_ARGS__);               \
    }                                         \
  } while (0)
#else
#define DEEPSEQ_DISPATCH(fn, ...) fn##_scalar(__VA_ARGS__)
#endif

void add(float* o, const float* x, const float* y, std::size_t n) {
  DEEPSEQ_DISPATCH(add, o, x, y, n);
}
void sub(float* o, const float* x, const float* y, std::size_t n) {
  DEEPSEQ_DISPATCH(sub, o, x, y, n);
}
void mul(float* o, const float* x, const float* y, std::size_t n) {
  DEEPSEQ_DISPATCH(mul, o, x, y, n);
}
void scale(float* o, const float* x, float s, std::size_t n) {
  DEEPSEQ_DISPATCH(scale, o, x, s, n);
}
void relu(float* o, const float* x, std::size_t n) { DEEPSEQ_DISPATCH(relu, o, x, n); }
void one_minus(float* o, const float* x, std::size_t n) { DEEPSEQ_DISPATCH(one_minus, o, x, n); }
void acc_add(float* dst, const float* g, std::size_t n) { DEEPSEQ_DISPATCH(acc_add, dst, g, n); }
void acc_sub(float* dst, const float* g, std::size_t n) { DEEPSEQ_DISPATCH(acc_sub, dst, g, n); }
void acc_mul(float* dst, const float* g, const float* o, std::size_t n) {
  DEEPSEQ_DISPATCH(acc_mul, dst, g, o, n);
}
void acc_scale(float* dst, const float* g, float s, std::size_t n) {
  DEEPSEQ_DISPATCH(acc_scale, dst, g, s, n);
}
void matmul_rows(const float* a, int lda, const float* b, int ldb, float* out, int ldo, int rb,
                 int re, int k, int n) {
  DEEPSEQ_DISPATCH(matmul_rows, a, lda, b, ldb, out, ldo, rb, re, k, n);
}

#undef DEEPSEQ_DISPATCH

}  // namespace deepseq::nn::kernels
