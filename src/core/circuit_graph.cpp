#include "core/circuit_graph.hpp"

#include "common/error.hpp"

namespace deepseq {

int feature_index(GateType t) {
  switch (t) {
    // A constant-0 node is a primary input pinned to logic-1 probability 0
    // (optimization keeps one when a PO cone is constant), so it shares the
    // PI feature slot and is pinned like a PI during propagation.
    case GateType::kConst0: return 0;
    case GateType::kPi: return 0;
    case GateType::kAnd: return 1;
    case GateType::kNot: return 2;
    case GateType::kFf: return 3;
    default:
      throw CircuitError("feature_index: node type " +
                         std::string(gate_type_name(t)) +
                         " is not part of the sequential AIG vocabulary");
  }
}

namespace {

bool is_gate(GateType t) { return t == GateType::kAnd || t == GateType::kNot; }

/// Forward batches from a level structure + fanin provider: one batch per
/// level >= 1 with every updatable node that has at least one predecessor.
template <typename FaninsOf, typename Updatable>
std::vector<LevelBatch> forward_batches(const Levelization& lv,
                                        FaninsOf&& fanins_of,
                                        Updatable&& updatable) {
  std::vector<LevelBatch> out;
  for (std::size_t l = 1; l < lv.by_level.size(); ++l) {
    LevelBatch batch;
    for (NodeId v : lv.by_level[l]) {
      if (!updatable(v)) continue;
      const auto& fi = fanins_of(v);
      if (fi.empty()) continue;
      const int t = static_cast<int>(batch.targets.size());
      batch.targets.push_back(v);
      for (NodeId u : fi) {
        batch.sources.push_back(u);
        batch.segment.push_back(t);
      }
    }
    if (!batch.empty()) out.push_back(std::move(batch));
  }
  return out;
}

/// Reverse batches: walk levels in descending order; each updatable node
/// aggregates from its successors (fanout list).
template <typename Updatable>
std::vector<LevelBatch> reverse_batches(
    const Levelization& lv, const std::vector<std::vector<NodeId>>& fanouts,
    Updatable&& updatable) {
  std::vector<LevelBatch> out;
  for (std::size_t li = lv.by_level.size(); li-- > 1;) {
    LevelBatch batch;
    for (NodeId v : lv.by_level[li]) {
      if (!updatable(v)) continue;
      if (fanouts[v].empty()) continue;
      const int t = static_cast<int>(batch.targets.size());
      batch.targets.push_back(v);
      for (NodeId u : fanouts[v]) {
        batch.sources.push_back(u);
        batch.segment.push_back(t);
      }
    }
    if (!batch.empty()) out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace

CircuitGraph build_circuit_graph(const Circuit& c) {
  CircuitGraph g;
  g.num_nodes = static_cast<int>(c.num_nodes());
  g.pis = c.pis();
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    if (c.type(v) == GateType::kConst0) g.consts.push_back(v);

  g.features = nn::Tensor(g.num_nodes, kFeatureDim);
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    g.features.at(static_cast<int>(v), feature_index(c.type(v))) = 1.0f;

  // ---- customized propagation structure (comb view, Fig. 2) --------------
  g.comb = comb_levelize(c);
  auto comb_fanins = [&](NodeId v) {
    static thread_local std::vector<NodeId> buf;
    buf.clear();
    for (int i = 0; i < c.num_fanins(v); ++i) buf.push_back(c.fanin(v, i));
    return buf;
  };
  auto gate_only = [&](NodeId v) { return is_gate(c.type(v)); };
  g.comb_forward = forward_batches(g.comb, comb_fanins, gate_only);

  const auto fanouts = c.fanouts();  // includes FF D-read edges
  g.comb_reverse = reverse_batches(g.comb, fanouts, gate_only);

  for (NodeId ff : c.ffs()) {
    g.ff_targets.push_back(ff);
    g.ff_sources.push_back(c.fanin(ff, 0));
  }

  // ---- baseline DAG structure ---------------------------------------------
  const AcyclicView av = make_acyclic_view(c);
  auto av_fanins = [&](NodeId v) -> const std::vector<NodeId>& {
    return av.fanins[v];
  };
  auto non_pi = [&](NodeId v) {
    return c.type(v) != GateType::kPi && c.type(v) != GateType::kConst0;
  };
  g.baseline_forward = forward_batches(av.levels, av_fanins, non_pi);

  std::vector<std::vector<NodeId>> av_fanouts(c.num_nodes());
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    for (NodeId u : av.fanins[v]) av_fanouts[u].push_back(v);
  g.baseline_reverse = reverse_batches(av.levels, av_fanouts, non_pi);

  return g;
}

}  // namespace deepseq
