#include "dataset/training_data.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/subcircuit.hpp"

namespace deepseq {

namespace {

enum class Family { kIscas89, kItc99, kOpencores };

const char* family_name(Family f) {
  switch (f) {
    case Family::kIscas89: return "ISCAS'89";
    case Family::kItc99: return "ITC'99";
    case Family::kOpencores: return "Opencores";
  }
  return "?";
}

GeneratorSpec spec_for(Family f, Rng& rng) {
  switch (f) {
    case Family::kIscas89: return iscas89_like_spec(rng);
    case Family::kItc99: return itc99_like_spec(rng);
    case Family::kOpencores: return opencores_like_spec(rng);
  }
  throw Error("spec_for: bad family");
}

/// Target subcircuit size ranges per family, chosen so the extracted-AIG
/// node statistics land near Table I (149 / 273 / 211 mean nodes).
std::pair<int, int> sub_range(Family f, double scale) {
  int lo = 0, hi = 0;
  switch (f) {
    case Family::kIscas89: lo = 60; hi = 240; break;
    case Family::kItc99: lo = 160; hi = 385; break;
    case Family::kOpencores: lo = 130; hi = 292; break;
  }
  lo = std::max(16, static_cast<int>(lo * scale));
  hi = std::max(lo + 8, static_cast<int>(hi * scale));
  return {lo, hi};
}

/// A usable training circuit is a strict AIG with at least one FF and no
/// constants (the paper's vocabulary has exactly four node types).
bool usable(const Circuit& c) {
  if (!c.is_strict_aig()) return false;
  if (c.ffs().empty()) return false;
  if (c.pis().empty()) return false;
  return true;
}

}  // namespace

TrainingDataset build_training_dataset(const TrainingDataOptions& opt) {
  TrainingDataset out;
  Rng rng(opt.seed);

  std::vector<std::vector<double>> family_nodes(3);
  int produced = 0;
  int attempts = 0;
  const int max_attempts = opt.num_subcircuits * 8 + 64;

  while (produced < opt.num_subcircuits && attempts < max_attempts) {
    ++attempts;
    // Pick the family by the Table I mix.
    const double u = rng.uniform();
    const Family fam = u < opt.iscas89_fraction ? Family::kIscas89
                       : (u < opt.iscas89_fraction + opt.itc99_fraction
                              ? Family::kItc99
                              : Family::kOpencores);

    // Source benchmark -> optimized AIG -> subcircuit.
    Rng gen_rng = rng.split();
    const GeneratorSpec spec = spec_for(fam, gen_rng);
    const Circuit bench = generate_circuit(spec, gen_rng);
    const Circuit aig = optimize_aig(decompose_to_aig(bench).aig).circuit;
    const auto [lo, hi] = sub_range(fam, opt.size_scale);
    if (static_cast<int>(aig.num_nodes()) < lo) continue;
    const int target = static_cast<int>(rng.uniform_int(lo, hi));
    Circuit sub = extract_subcircuit(
        aig, static_cast<std::size_t>(
                 std::min<int>(target, static_cast<int>(aig.num_nodes()))),
        gen_rng);
    if (!usable(sub)) continue;

    sub.set_name(std::string(family_name(fam)) + "_" + std::to_string(produced));
    Workload w = random_workload(sub, rng);
    ActivityOptions sim_opt;
    sim_opt.num_cycles = opt.sim_cycles;
    const std::size_t n = sub.num_nodes();
    out.samples.push_back(make_sample(sub.name(), std::move(sub), std::move(w),
                                      sim_opt, rng.next_u64()));
    family_nodes[static_cast<int>(fam)].push_back(static_cast<double>(n));
    ++produced;
  }
  if (produced < opt.num_subcircuits)
    throw Error("build_training_dataset: generator kept producing unusable "
                "circuits (wanted " + std::to_string(opt.num_subcircuits) +
                ", got " + std::to_string(produced) + ")");

  for (int f = 0; f < 3; ++f) {
    FamilyStats fs;
    fs.name = family_name(static_cast<Family>(f));
    fs.count = static_cast<int>(family_nodes[f].size());
    if (fs.count > 0) {
      const double mean =
          std::accumulate(family_nodes[f].begin(), family_nodes[f].end(), 0.0) /
          fs.count;
      double var = 0.0;
      for (double x : family_nodes[f]) var += (x - mean) * (x - mean);
      fs.node_mean = mean;
      fs.node_std = std::sqrt(var / std::max(1, fs.count - 1));
    }
    out.stats.push_back(fs);
  }
  return out;
}

void split_train_val(const std::vector<TrainSample>& all, double val_fraction,
                     std::uint64_t seed, std::vector<TrainSample>& train,
                     std::vector<TrainSample>& val) {
  std::vector<std::size_t> idx(all.size());
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  rng.shuffle(idx);
  const auto n_val = static_cast<std::size_t>(
      std::round(val_fraction * static_cast<double>(all.size())));
  train.clear();
  val.clear();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (i < n_val) {
      val.push_back(all[idx[i]]);
    } else {
      train.push_back(all[idx[i]]);
    }
  }
}

}  // namespace deepseq
