#pragma once

#include <cstddef>

namespace deepseq::nn::kernels {

/// Vectorized chain-step primitives with a bit-identical scalar fallback.
///
/// Every routine here computes exactly the same per-element operation
/// sequence as the executor's original scalar loops: elementwise kernels
/// apply one IEEE op per element, and the matmul microkernel accumulates
/// each output element over the inner dimension in ascending order with the
/// same zero-skip, using separate multiply and add (never FMA — the scalar
/// baseline is compiled without FP contraction, so a fused multiply-add
/// would change rounding). The AVX2 paths therefore produce byte-identical
/// results to the scalar paths, which tests/nn/test_kernels.cpp pins per
/// kernel; transcendental kernels (sigmoid, tanh, the softmax family) stay
/// scalar libm by design.
///
/// Dispatch is runtime: the AVX2 path runs only when the host supports it
/// AND DEEPSEQ_NN_SIMD (env_int, default 1) is nonzero. The executor
/// refreshes the env gate once per flush (refresh_from_env), so a process
/// can A/B simd on/off between runs exactly like DEEPSEQ_NN_FUSE.

/// DEEPSEQ_NN_SIMD knob (env_int): 0 forces the scalar fallback;
/// unset or any other value enables the vector path where supported.
bool nn_simd_from_env();

/// Re-read DEEPSEQ_NN_SIMD into the process-global gate. Called by the
/// executor at each flush; cheap (one env read, one relaxed store).
void refresh_from_env();

/// True when the vector path is live: host supports AVX2 and the gate is
/// open. Purely informational for callers — every kernel dispatches
/// internally.
bool simd_active();

/// SIMD lane width the dispatcher will use: 8 when simd_active(), else 1.
/// Surfaced through ExecStats so benches and traces record which path ran.
int lanes();

// ---- elementwise forward ----------------------------------------------------
void add(float* o, const float* x, const float* y, std::size_t n);
void sub(float* o, const float* x, const float* y, std::size_t n);
void mul(float* o, const float* x, const float* y, std::size_t n);
void scale(float* o, const float* x, float s, std::size_t n);
void relu(float* o, const float* x, std::size_t n);
void one_minus(float* o, const float* x, std::size_t n);

// ---- elementwise backward accumulations ------------------------------------
void acc_add(float* dst, const float* g, std::size_t n);                   // dst += g
void acc_sub(float* dst, const float* g, std::size_t n);                   // dst -= g
void acc_mul(float* dst, const float* g, const float* o, std::size_t n);   // dst += g * o
void acc_scale(float* dst, const float* g, float s, std::size_t n);        // dst += g * s

/// Register-blocked matmul microkernel over output rows [rb, re):
///   out[i][j] += sum_p a[i][p] * b[p][j]
/// accumulated per element in ascending p with the sequential kernel's
/// zero-skip (a[i][p] == 0 contributes nothing, bit-for-bit). `lda`/`ldb`/
/// `ldo` are row strides in floats. Accumulates into `out` (the planner
/// zero-initializes matmul outputs at record time).
void matmul_rows(const float* a, int lda, const float* b, int ldb, float* out,
                 int ldo, int rb, int re, int k, int n);

}  // namespace deepseq::nn::kernels
