#pragma once

#include <string>

#include "netlist/circuit.hpp"
#include "power/cell_library.hpp"
#include "power/saif.hpp"

namespace deepseq {

/// Average-power report of one analysis run (the in-repo stand-in for the
/// paper's commercial power tool).
struct PowerReport {
  double total_watts = 0.0;
  double combinational_watts = 0.0;
  double sequential_watts = 0.0;  // FF clock/data power
  double io_watts = 0.0;          // PI pads
  std::size_t nets_matched = 0;
  std::size_t nets_missing = 0;   // netlist nodes without a SAIF record

  double total_mw() const { return total_watts * 1e3; }
};

/// Compute average dynamic power of `netlist` from a SAIF activity file:
/// each node's toggle rate (TC / DURATION) is weighted by its cell
/// capacitance, P = 1/2 C Vdd^2 f rate. Nodes are matched to SAIF nets by
/// their (generated-unique) names, exactly how a commercial flow matches a
/// gate-level SAIF against the netlist.
PowerReport analyze_power(const Circuit& netlist, const SaifDocument& saif,
                          const CellLibrary& lib = default_cell_library());

/// Convenience: per-node toggle rates indexed by NodeId (bypasses name
/// matching; used by tests to cross-validate the SAIF path).
PowerReport analyze_power_rates(const Circuit& netlist,
                                const std::vector<double>& toggle_rate,
                                const CellLibrary& lib = default_cell_library());

}  // namespace deepseq
