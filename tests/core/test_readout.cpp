#include "core/readout.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"

namespace deepseq {
namespace {

GeneratorSpec aig_spec(int pis, int ffs, int gates) {
  GeneratorSpec spec;
  spec.num_pis = pis;
  spec.num_ffs = ffs;
  spec.num_gates = gates;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return spec;
}

LabelledNetlist make_labelled(const GeneratorSpec& spec, int label,
                              std::uint64_t seed) {
  Rng rng(seed);
  const Circuit c = generate_circuit(spec, rng);
  LabelledNetlist s;
  s.name = spec.name;
  s.graph = build_circuit_graph(c);
  s.workload = random_workload(c, rng);
  s.init_seed = seed;
  s.label = label;
  return s;
}

class ReadoutPool : public ::testing::TestWithParam<PoolKind> {};

TEST_P(ReadoutPool, ProducesRequestedShape) {
  Rng rng(5);
  const Readout ro(GetParam(), 8, 5, rng);
  nn::Graph g;
  const nn::Var h = g.constant(nn::Tensor::xavier(12, 8, rng));
  const nn::Var e = ro.apply(g, h);
  EXPECT_EQ(e->value.rows(), 1);
  EXPECT_EQ(e->value.cols(), 5);
}

TEST_P(ReadoutPool, IsInvariantToNodeOrder) {
  Rng rng(6);
  const Readout ro(GetParam(), 6, 6, rng);
  nn::Tensor h(10, 6);
  for (int r = 0; r < h.rows(); ++r)
    for (int c = 0; c < h.cols(); ++c)
      h.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
  nn::Tensor reversed(10, 6);
  for (int r = 0; r < h.rows(); ++r)
    for (int c = 0; c < h.cols(); ++c) reversed.at(r, c) = h.at(9 - r, c);

  nn::Graph g(/*grad_enabled=*/false);
  const nn::Var a = ro.apply(g, g.constant(h));
  const nn::Var b = ro.apply(g, g.constant(reversed));
  for (int c = 0; c < 6; ++c)
    EXPECT_NEAR(a->value.at(0, c), b->value.at(0, c), 1e-5f);
}

TEST_P(ReadoutPool, IsInvariantToNodeDuplication) {
  // Mean, max and softmax-attention pooling are all multiset-insensitive to
  // duplicating every node once — a graph-level readout should summarize
  // content, not raw size.
  Rng rng(7);
  const Readout ro(GetParam(), 4, 4, rng);
  nn::Tensor h(5, 4);
  for (int r = 0; r < h.rows(); ++r)
    for (int c = 0; c < h.cols(); ++c)
      h.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
  nn::Tensor doubled(10, 4);
  for (int r = 0; r < 10; ++r)
    for (int c = 0; c < 4; ++c) doubled.at(r, c) = h.at(r % 5, c);

  nn::Graph g(/*grad_enabled=*/false);
  const nn::Var a = ro.apply(g, g.constant(h));
  const nn::Var b = ro.apply(g, g.constant(doubled));
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(a->value.at(0, c), b->value.at(0, c), 1e-5f);
}

TEST_P(ReadoutPool, GradientsReachParameters) {
  Rng rng(8);
  const Readout ro(GetParam(), 4, 3, rng);
  nn::Graph g;
  const nn::Var h = g.constant(nn::Tensor::xavier(6, 4, rng));
  const nn::Var e = ro.apply(g, h);
  g.backward(g.l1_loss(e, nn::Tensor::full(1, 3, 0.5f)));
  nn::NamedParams params;
  ro.collect_params(params);
  ASSERT_FALSE(params.empty());
  bool any_nonzero = false;
  for (const auto& [name, p] : params) {
    ASSERT_TRUE(p->has_grad()) << name;
    for (std::size_t i = 0; i < p->grad.size(); ++i)
      if (p->grad.data()[i] != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ReadoutPool,
                         ::testing::Values(PoolKind::kMean, PoolKind::kMax,
                                           PoolKind::kAttention),
                         [](const auto& info) {
                           return std::string(pool_name(info.param));
                         });

TEST(Readout, AttentionHasScoreParams) {
  Rng rng(9);
  const Readout mean(PoolKind::kMean, 4, 4, rng);
  const Readout att(PoolKind::kAttention, 4, 4, rng);
  nn::NamedParams pm, pa;
  mean.collect_params(pm);
  att.collect_params(pa);
  EXPECT_GT(pa.size(), pm.size());
}

TEST(Readout, RejectsWidthMismatch) {
  Rng rng(10);
  const Readout ro(PoolKind::kMean, 8, 4, rng);
  nn::Graph g;
  EXPECT_THROW(ro.apply(g, g.constant(nn::Tensor(3, 5))), Error);
}

TEST(NetlistClassifier, LearnsToSeparateFamilies) {
  // Two structurally distinct families: nearly-combinational vs FF-heavy.
  // A frozen random-init backbone already embeds the gate-type mix, so the
  // trained head must overfit its own training set essentially perfectly.
  ModelConfig cfg = ModelConfig::deepseq(/*hidden=*/16, /*t=*/2);
  const DeepSeqModel backbone(cfg);

  std::vector<LabelledNetlist> data;
  for (int i = 0; i < 6; ++i) {
    data.push_back(make_labelled(aig_spec(6, 2, 70), 0, 100 + i));
    data.push_back(make_labelled(aig_spec(6, 24, 70), 1, 200 + i));
  }

  NetlistClassifier clf(backbone, PoolKind::kMean, 2, /*seed=*/3);
  ClassifierTrainOptions opt;
  opt.epochs = 40;
  opt.lr = 5e-3f;
  const auto history = train_classifier(clf, data, opt);
  ASSERT_EQ(history.size(), 40u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GE(clf.accuracy(data), 0.9);
}

TEST(NetlistClassifier, PredictReturnsValidClass) {
  const DeepSeqModel backbone(ModelConfig::deepseq(8, 1));
  NetlistClassifier clf(backbone, PoolKind::kAttention, 3, 4);
  const LabelledNetlist s = make_labelled(aig_spec(4, 4, 40), 0, 42);
  const int cls = clf.predict(s);
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 3);
}

TEST(NetlistClassifier, TrainRejectsEmptySet) {
  const DeepSeqModel backbone(ModelConfig::deepseq(8, 1));
  NetlistClassifier clf(backbone, PoolKind::kMean, 2, 4);
  EXPECT_THROW(train_classifier(clf, {}, {}), Error);
}

}  // namespace
}  // namespace deepseq
