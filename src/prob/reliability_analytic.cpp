#include "prob/reliability_analytic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "netlist/topology.hpp"
#include "prob/switching.hpp"

namespace deepseq {

namespace {

/// P(gate output unchanged) when each input i is flipped independently with
/// probability (1 - r_i) and the golden input values are Bernoulli(p_i),
/// all independent. Exact enumeration over the gate's truth table.
double masking_prob(GateType t, int arity, const double* r, const double* p) {
  double total = 0.0;
  const int value_patterns = 1 << arity;
  const int corr_patterns = 1 << arity;
  for (int corr = 0; corr < corr_patterns; ++corr) {
    double pc = 1.0;
    for (int i = 0; i < arity; ++i)
      pc *= (corr >> i & 1) ? r[i] : (1.0 - r[i]);
    if (pc == 0.0) continue;
    for (int vals = 0; vals < value_patterns; ++vals) {
      double pv = 1.0;
      for (int i = 0; i < arity; ++i)
        pv *= (vals >> i & 1) ? p[i] : (1.0 - p[i]);
      if (pv == 0.0) continue;
      bool in_g[3] = {false, false, false};
      bool in_f[3] = {false, false, false};
      for (int i = 0; i < arity; ++i) {
        in_g[i] = (vals >> i) & 1;
        in_f[i] = ((corr >> i) & 1) ? in_g[i] : !in_g[i];
      }
      const bool out_g = eval_gate(t, in_g[0], arity > 1 ? in_g[1] : false,
                                   arity > 2 ? in_g[2] : false);
      const bool out_f = eval_gate(t, in_f[0], arity > 1 ? in_f[1] : false,
                                   arity > 2 ? in_f[2] : false);
      if (out_g == out_f) total += pc * pv;
    }
  }
  return total;
}

}  // namespace

ReliabilityEstimate estimate_reliability(const Circuit& c, const Workload& w,
                                         const ReliabilityOptions& opt) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("estimate_reliability: workload PI count mismatch");

  // Signal probabilities for logical masking (same independence machinery
  // as the switching baseline).
  const SwitchingEstimate sw = estimate_switching(c, w);
  const Levelization lv = comb_levelize(c);

  const std::size_t n = c.num_nodes();
  std::vector<double> r(n, 1.0);
  std::vector<double> ff_rel(c.ffs().size(), 1.0);
  const double eps = opt.gate_error_rate;

  int iter = 0;
  for (; iter < opt.max_iterations; ++iter) {
    for (std::size_t k = 0; k < c.ffs().size(); ++k) r[c.ffs()[k]] = ff_rel[k];
    for (NodeId pi : c.pis()) r[pi] = 1.0;

    for (std::size_t l = 1; l < lv.by_level.size(); ++l) {
      for (NodeId v : lv.by_level[l]) {
        const Node& nd = c.node(v);
        if (nd.type == GateType::kConst0) {
          r[v] = 1.0;
          continue;
        }
        double rin[3], pin[3];
        for (int i = 0; i < nd.num_fanins; ++i) {
          rin[i] = r[nd.fanin[i]];
          // MUX evaluation order: eval_gate takes (then, else, select)
          // differently — masking_prob passes values positionally matching
          // eval_gate(t, a, b, s) with our fanin order (select, then, else)
          // for kMux handled below.
          pin[i] = sw.logic1[nd.fanin[i]];
        }
        double r_prop;
        if (nd.type == GateType::kMux) {
          // eval_gate(kMux, a=then, b=else, s=select); reorder fanins
          // (select, then, else) -> (then, else, select).
          const double rr[3] = {rin[1], rin[2], rin[0]};
          const double pp[3] = {pin[1], pin[2], pin[0]};
          r_prop = masking_prob(nd.type, 3, rr, pp);
        } else {
          r_prop = masking_prob(nd.type, nd.num_fanins, rin, pin);
        }
        r[v] = r_prop * (1.0 - eps) + (1.0 - r_prop) * eps;
      }
    }

    double max_delta = 0.0;
    for (std::size_t k = 0; k < c.ffs().size(); ++k) {
      const double next = r[c.fanin(c.ffs()[k], 0)];
      const double updated = opt.damping * next + (1.0 - opt.damping) * ff_rel[k];
      max_delta = std::max(max_delta, std::fabs(updated - ff_rel[k]));
      ff_rel[k] = updated;
    }
    if (max_delta < opt.tolerance) break;
  }

  ReliabilityEstimate est;
  est.iterations_used = iter + 1;
  for (std::size_t k = 0; k < c.ffs().size(); ++k) r[c.ffs()[k]] = ff_rel[k];
  est.node_reliability = r;
  if (!c.pos().empty()) {
    double sum = 0.0;
    for (NodeId po : c.pos()) sum += r[po];
    est.circuit_reliability = sum / static_cast<double>(c.pos().size());
  }
  return est;
}

}  // namespace deepseq
