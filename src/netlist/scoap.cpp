#include "netlist/scoap.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

namespace {

double add1(double a) { return a >= kScoapInf ? kScoapInf : a + 1.0; }
double sum1(double a, double b) {
  return a >= kScoapInf || b >= kScoapInf ? kScoapInf : a + b + 1.0;
}
double sum2(double a, double b, double c) {
  return a >= kScoapInf || b >= kScoapInf || c >= kScoapInf ? kScoapInf
                                                            : a + b + c + 1.0;
}

/// One controllability relaxation of a combinational gate from its fanins'
/// current (cc0, cc1) values. Returns {cc0, cc1}.
std::pair<double, double> gate_cc(const Circuit& c, NodeId v,
                                  const std::vector<double>& cc0,
                                  const std::vector<double>& cc1) {
  const Node& n = c.node(v);
  const NodeId a = n.fanin[0];
  const NodeId b = n.num_fanins > 1 ? n.fanin[1] : kNullNode;
  switch (n.type) {
    case GateType::kAnd:
      return {add1(std::min(cc0[a], cc0[b])), sum1(cc1[a], cc1[b])};
    case GateType::kOr:
      return {sum1(cc0[a], cc0[b]), add1(std::min(cc1[a], cc1[b]))};
    case GateType::kNand:
      return {sum1(cc1[a], cc1[b]), add1(std::min(cc0[a], cc0[b]))};
    case GateType::kNor:
      return {add1(std::min(cc1[a], cc1[b])), sum1(cc0[a], cc0[b])};
    case GateType::kNot:
      return {add1(cc1[a]), add1(cc0[a])};
    case GateType::kBuf:
      return {add1(cc0[a]), add1(cc1[a])};
    case GateType::kXor:
      // 0: equal inputs; 1: differing inputs (cheapest combination).
      return {add1(std::min(cc0[a] + cc0[b], cc1[a] + cc1[b])),
              add1(std::min(cc0[a] + cc1[b], cc1[a] + cc0[b]))};
    case GateType::kXnor:
      return {add1(std::min(cc0[a] + cc1[b], cc1[a] + cc0[b])),
              add1(std::min(cc0[a] + cc0[b], cc1[a] + cc1[b]))};
    case GateType::kMux: {
      // fanins: (select s, then t, else e).
      const NodeId s = n.fanin[0], t = n.fanin[1], e = n.fanin[2];
      return {add1(std::min(cc1[s] + cc0[t], cc0[s] + cc0[e])),
              add1(std::min(cc1[s] + cc1[t], cc0[s] + cc1[e]))};
    }
    default:
      throw CircuitError("compute_scoap: unexpected gate type " +
                         std::string(gate_type_name(n.type)));
  }
}

}  // namespace

ScoapMeasures compute_scoap(const Circuit& c, const ScoapOptions& opt) {
  c.validate();
  const std::size_t n = c.num_nodes();
  ScoapMeasures m;
  m.cc0.assign(n, kScoapInf);
  m.cc1.assign(n, kScoapInf);
  m.co.assign(n, kScoapInf);

  const auto order = comb_topo_order(c);

  // ---- controllability: forward fixpoint ----------------------------------
  for (NodeId pi : c.pis()) m.cc0[pi] = m.cc1[pi] = 1.0;
  // FFs reset to 0 in this library's simulation semantics, so driving an FF
  // to 0 costs one action even with no controllable D cone (classic SCOAP
  // assumes an unknown initial state; autonomous oscillators would then be
  // scored uncontrollable, contradicting our simulators).
  for (NodeId ff : c.ffs()) m.cc0[ff] = 1.0;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    bool changed = false;
    auto relax = [&](NodeId v, double v0, double v1) {
      if (v0 < m.cc0[v]) {
        m.cc0[v] = v0;
        changed = true;
      }
      if (v1 < m.cc1[v]) {
        m.cc1[v] = v1;
        changed = true;
      }
    };
    for (NodeId v : order) {
      switch (c.type(v)) {
        case GateType::kPi:
          break;
        case GateType::kConst0:
          relax(v, 0.0, kScoapInf);  // constant: 0 free, 1 impossible
          break;
        case GateType::kFf: {
          // One clock cycle on top of controlling the D input.
          const NodeId d = c.fanin(v, 0);
          relax(v, add1(m.cc0[d]), add1(m.cc1[d]));
          break;
        }
        default: {
          const auto [v0, v1] = gate_cc(c, v, m.cc0, m.cc1);
          relax(v, v0, v1);
        }
      }
    }
    m.controllability_iterations = iter + 1;
    if (!changed) break;
  }

  // ---- observability: backward fixpoint -----------------------------------
  for (NodeId po : c.pos()) m.co[po] = 0.0;
  const auto fanouts = c.fanouts();
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    bool changed = false;
    auto relax = [&](NodeId v, double val) {
      if (val < m.co[v]) {
        m.co[v] = val;
        changed = true;
      }
    };
    // Walk sinks-to-sources: reverse combinational topological order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId g = *it;
      const Node& nd = c.node(g);
      const double cog = m.co[g];
      if (cog >= kScoapInf && nd.type != GateType::kFf) continue;
      switch (nd.type) {
        case GateType::kPi:
        case GateType::kConst0:
          break;
        case GateType::kFf:
          // Observing the D input requires observing the FF one cycle on.
          relax(nd.fanin[0], add1(m.co[g]));
          break;
        case GateType::kNot:
        case GateType::kBuf:
          relax(nd.fanin[0], add1(cog));
          break;
        case GateType::kAnd:
        case GateType::kNand:
          // Side input must be non-controlling (1).
          relax(nd.fanin[0], sum1(cog, m.cc1[nd.fanin[1]]));
          relax(nd.fanin[1], sum1(cog, m.cc1[nd.fanin[0]]));
          break;
        case GateType::kOr:
        case GateType::kNor:
          relax(nd.fanin[0], sum1(cog, m.cc0[nd.fanin[1]]));
          relax(nd.fanin[1], sum1(cog, m.cc0[nd.fanin[0]]));
          break;
        case GateType::kXor:
        case GateType::kXnor:
          // Side input only needs a known value (either one).
          relax(nd.fanin[0],
                sum1(cog, std::min(m.cc0[nd.fanin[1]], m.cc1[nd.fanin[1]])));
          relax(nd.fanin[1],
                sum1(cog, std::min(m.cc0[nd.fanin[0]], m.cc1[nd.fanin[0]])));
          break;
        case GateType::kMux: {
          const NodeId s = nd.fanin[0], t = nd.fanin[1], e = nd.fanin[2];
          // Select observable when then/else differ; cheapest: set the
          // branches to opposite values.
          relax(s, sum2(cog, std::min(m.cc0[t], m.cc1[t]),
                        std::min(m.cc0[e], m.cc1[e])));
          relax(t, sum1(cog, m.cc1[s]));  // select the then branch
          relax(e, sum1(cog, m.cc0[s]));  // select the else branch
          break;
        }
        default:
          throw CircuitError("compute_scoap: unexpected gate type");
      }
    }
    m.observability_iterations = iter + 1;
    if (!changed) break;
  }
  return m;
}

}  // namespace deepseq
