#pragma once

#include <cstdint>
#include <string>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Content-addressed identity of a circuit's *structure*: two circuits that
/// differ only in node creation order (and node names) hash equal; circuits
/// with different logic, interface order, or gate types hash differently
/// with overwhelming probability. This is the cache key of the runtime
/// serving layer (runtime/circuit_cache), letting repeated requests for the
/// same netlist skip parsing, levelization and encoding.
///
/// The hash is computed Weisfeiler-Leman style on the circuit graph: each
/// node starts from its gate type (PIs and POs additionally mix in their
/// interface ordinal, since workloads and outputs are positional), then a
/// number of refinement rounds mixes every node's hash with its fanins'
/// hashes — sorted first for commutative gates (AND/OR/XOR/...), kept in
/// slot order for non-commutative ones (MUX). FF feedback cycles are
/// handled naturally by the fixed-round iteration. The digest combines the
/// sorted multiset of final node hashes with the PI/PO/FF interface
/// signature, so it is independent of node ids.
struct StructuralHash {
  std::uint64_t digest = 0;
  // Cheap exact invariants mixed into cache keys alongside the digest, so a
  // 64-bit collision additionally has to match the structure counts.
  std::uint32_t num_nodes = 0;
  std::uint32_t num_pis = 0;
  std::uint32_t num_pos = 0;
  std::uint32_t num_ffs = 0;

  bool operator==(const StructuralHash& o) const {
    return digest == o.digest && num_nodes == o.num_nodes &&
           num_pis == o.num_pis && num_pos == o.num_pos && num_ffs == o.num_ffs;
  }
  bool operator!=(const StructuralHash& o) const { return !(*this == o); }

  /// Hex digest + counts, for logging and bench JSON.
  std::string to_string() const;
};

/// Hash the structure of `c`. `rounds` < 0 picks a default that saturates
/// the refinement for typical netlists (diameter-bounded, capped).
StructuralHash structural_hash(const Circuit& c, int rounds = -1);

/// Creation-order hash: a single cheap pass over nodes in id order (type,
/// fanin ids, interface lists). Unlike structural_hash() this IS sensitive
/// to node numbering — two isomorphic circuits with permuted ids hash
/// differently. The runtime cache keys on BOTH digests: the structural
/// digest gives a stable content identity, the exact digest guards against
/// serving one circuit's node-indexed embedding matrix to an isomorphic
/// circuit whose rows are numbered differently.
std::uint64_t exact_hash(const Circuit& c);

/// Combine-style 64-bit mixer shared with the runtime cache shards.
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v);

}  // namespace deepseq
