#include "runtime/inference_engine.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "nn/graph.hpp"

namespace deepseq::runtime {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::uint64_t fingerprint_model(const ModelConfig& m) {
  std::uint64_t h = hash_mix(0xD5ULL, static_cast<std::uint64_t>(m.aggregator));
  h = hash_mix(h, static_cast<std::uint64_t>(m.propagation));
  h = hash_mix(h, static_cast<std::uint64_t>(m.iterations));
  h = hash_mix(h, static_cast<std::uint64_t>(m.hidden_dim));
  return hash_mix(h, m.seed);
}

std::uint64_t fingerprint_pace(const PaceConfig& p) {
  std::uint64_t h = hash_mix(0xFACEULL, static_cast<std::uint64_t>(p.hidden_dim));
  h = hash_mix(h, static_cast<std::uint64_t>(p.layers));
  h = hash_mix(h, static_cast<std::uint64_t>(p.max_ancestors));
  h = hash_mix(h, static_cast<std::uint64_t>(p.pos_dim));
  return hash_mix(h, p.seed);
}

}  // namespace

InferenceEngine::InferenceEngine(const EngineConfig& config)
    : config_(config),
      model_(config.model),
      pace_(config.pace),
      model_fingerprint_(fingerprint_model(config.model)),
      pace_fingerprint_(fingerprint_pace(config.pace)),
      cache_(config.cache),
      pool_(config.threads) {
  config_.max_batch = std::max(1, config_.max_batch);
  flusher_ = std::thread([this] { flusher_loop(); });
}

InferenceEngine::~InferenceEngine() {
  drain();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    stop_ = true;
  }
  pending_cv_.notify_all();
  flusher_.join();
}

std::future<EmbeddingResult> InferenceEngine::submit(EmbeddingRequest request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->enqueued = std::chrono::steady_clock::now();
  std::future<EmbeddingResult> future = pending->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(pending));
    if (static_cast<int>(pending_.size()) >= config_.max_batch) {
      std::vector<std::unique_ptr<Pending>> batch;
      batch.swap(pending_);
      dispatch_batch(std::move(batch));
    }
  }
  return future;
}

void InferenceEngine::flush() {
  std::lock_guard<std::mutex> lock(pending_mu_);
  std::vector<std::unique_ptr<Pending>> batch;
  batch.swap(pending_);
  if (!batch.empty()) dispatch_batch(std::move(batch));
}

void InferenceEngine::drain() {
  flush();
  pool_.wait_idle();
}

void InferenceEngine::flusher_loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      std::max(0.1, config_.flush_interval_ms));
  std::unique_lock<std::mutex> lock(pending_mu_);
  while (!stop_) {
    pending_cv_.wait_for(lock, interval);
    if (pending_.empty()) continue;
    const auto now = std::chrono::steady_clock::now();
    if (now - pending_.front()->enqueued < interval) continue;
    std::vector<std::unique_ptr<Pending>> batch;
    batch.swap(pending_);
    dispatch_batch(std::move(batch));
  }
}

// Caller must hold pending_mu_: handing the batch to the pool before the
// lock is released is what lets drain() (= flush() + wait_idle()) observe
// every submitted request — a batch can never sit swapped-out but not yet
// in the pool queue while pending_ looks empty.
void InferenceEngine::dispatch_batch(
    std::vector<std::unique_ptr<Pending>> batch) {
  // Coalesce: group the batch by circuit identity so one worker resolves
  // each distinct structure (and its hashes) exactly once while distinct
  // circuits fan out across the pool in parallel.
  std::map<const Circuit*, std::vector<std::unique_ptr<Pending>>> groups;
  for (auto& p : batch) groups[p->request.circuit.get()].push_back(std::move(p));
  for (auto& [circuit, group] : groups) {
    (void)circuit;
    auto shared_group = std::make_shared<
        std::vector<std::unique_ptr<Pending>>>(std::move(group));
    pool_.submit([this, shared_group] {
      // One hash computation serves the whole group (same Circuit object).
      const Circuit& c = *(*shared_group)[0]->request.circuit;
      const CircuitHashes hashes{structural_hash(c), exact_hash(c)};
      for (auto& p : *shared_group) {
        try {
          p->promise.set_value(process(p->request, p->enqueued, hashes));
        } catch (...) {
          p->promise.set_exception(std::current_exception());
        }
      }
    });
  }
}

std::shared_ptr<const CachedStructure> InferenceEngine::resolve_structure(
    const Circuit& circuit, const StructureKey& key, bool* hit) {
  bool miss = false;
  auto structure = cache_.get_or_build_structure(key, [&] {
    miss = true;
    auto built = std::make_shared<CachedStructure>();
    built->aig = std::make_shared<Circuit>(circuit);
    built->graph =
        std::make_shared<CircuitGraph>(build_circuit_graph(circuit));
    built->pace = std::make_shared<PaceGraph>(
        build_pace_graph(circuit, config_.pace));
    return built;
  });
  *hit = !miss;
  return structure;
}

EmbeddingResult InferenceEngine::process(
    const EmbeddingRequest& request,
    std::chrono::steady_clock::time_point enqueued,
    const CircuitHashes& hashes) {
  const auto start = std::chrono::steady_clock::now();
  EmbeddingResult result;
  result.backend = request.backend;
  result.queue_ms = ms_since(enqueued, start);

  result.structure = hashes.structural;
  const StructureKey skey{hashes.structural, hashes.exact};

  EmbeddingKey ekey;
  ekey.structure = hashes.structural;
  ekey.exact = hashes.exact;
  ekey.backend = request.backend;
  ekey.model_fingerprint = request.backend == Backend::kPace
                               ? pace_fingerprint_
                               : model_fingerprint_;
  ekey.workload_fingerprint = workload_fingerprint(request.workload);
  ekey.init_seed = request.init_seed;

  if (config_.cache_embeddings) {
    if (auto cached = cache_.get_embedding(ekey)) {
      result.embedding = cached;
      result.embedding_cache_hit = true;
      const auto end = std::chrono::steady_clock::now();
      result.total_ms = ms_since(enqueued, end);
      return result;
    }
  }

  const auto structure =
      resolve_structure(*request.circuit, skey, &result.structure_cache_hit);

  nn::Graph g(/*grad_enabled=*/false);
  nn::Var h;
  if (request.backend == Backend::kPace) {
    h = pace_.embed(g, *structure->pace, request.workload, request.init_seed);
  } else {
    h = model_.embed(g, *structure->graph, request.workload,
                     request.init_seed);
  }
  auto embedding = std::make_shared<const nn::Tensor>(std::move(h->value));
  if (config_.cache_embeddings) cache_.put_embedding(ekey, embedding);

  result.embedding = std::move(embedding);
  const auto end = std::chrono::steady_clock::now();
  result.compute_ms = ms_since(start, end);
  result.total_ms = ms_since(enqueued, end);
  return result;
}

EmbeddingResult InferenceEngine::run_sync(const EmbeddingRequest& request) {
  const CircuitHashes hashes{structural_hash(*request.circuit),
                             exact_hash(*request.circuit)};
  return process(request, std::chrono::steady_clock::now(), hashes);
}

}  // namespace deepseq::runtime
