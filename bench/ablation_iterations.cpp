// Beyond-paper ablation: prediction error versus the number of recursive
// iterations T. The paper fixes T=10 citing DeepGate's observation that a
// single pass cannot capture circuit behaviour (§III-B); this bench traces
// the error curve so the design choice is visible. Expect a large drop from
// T=1 to T=2 and diminishing returns after.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  BenchConfig cfg = BenchConfig::from_env();
  print_banner("ABLATION", "avg prediction error vs recursion depth T", cfg);

  std::vector<TrainSample> train, val;
  split_dataset(cfg, train, val);

  std::printf("\n%4s | %9s %9s\n", "T", "PE(T_TR)", "PE(T_LG)");
  std::printf("------------------------------\n");
  for (const int t : {1, 2, cfg.iterations}) {
    ModelConfig mc = ModelConfig::deepseq(cfg.hidden, t);
    BenchConfig tcfg = cfg;  // fingerprint includes T via the model config
    const DeepSeqModel model = train_or_load(mc, train, tcfg, "split");
    const EvalMetrics m = evaluate(model, val);
    std::printf("%4d | %9.4f %9.4f\n", t, m.avg_pe_tr, m.avg_pe_lg);
    std::fflush(stdout);
  }
  std::printf("\n(paper uses T=10 at full scale; the bench default T=%d)\n",
              cfg.iterations);
  return 0;
}
