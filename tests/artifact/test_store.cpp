// artifact::Store tests: a directory of .dsqa files read as a versioned
// manifest — several versions of one logical name side by side, addressed
// as name@<hex hash> (unique prefixes), name@latest or bare name — with the
// strict fail-fast contract: one corrupt file fails the whole open, and
// DEEPSEQ_ARTIFACT_DIR errors name the variable.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "api/backends.hpp"
#include "artifact/model_io.hpp"
#include "artifact/store.hpp"
#include "common/error.hpp"
#include "support/json_check.hpp"

namespace deepseq::artifact {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test tmpdir.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Save a deepseq snapshot with `hidden` controlling the content (different
/// architectures => different content hashes, deterministically).
std::uint64_t save_model(const std::string& path, int hidden) {
  Artifact a = snapshot(DeepSeqModel(ModelConfig::deepseq(hidden, 2)));
  save_artifact(path, a);
  return a.manifest.content_hash;
}

TEST(ArtifactStore, VersionsOfOneNameLiveSideBySide) {
  const std::string dir = fresh_dir("store_versions");
  // Same logical name "model" under two file names: the stem up to the
  // first '@' is the name, so a push drops "model@<hash>.dsqa" next to the
  // original without renaming anything.
  const std::uint64_t h1 = save_model(dir + "/model.dsqa", 8);
  const std::uint64_t h2 = save_model(dir + "/model@v2.dsqa", 12);
  ASSERT_NE(h1, h2);

  const Store store = Store::open(dir);
  ASSERT_EQ(store.entries().size(), 2u);
  EXPECT_EQ(store.entries()[0].name, "model");
  EXPECT_EQ(store.entries()[1].name, "model");
  // Entries are sorted by (name, hash_hex) — a deterministic manifest.
  EXPECT_LT(store.entries()[0].hash_hex, store.entries()[1].hash_hex);
  for (const StoreEntry& e : store.entries()) {
    EXPECT_EQ(e.backend_kind, "deepseq");
    EXPECT_EQ(e.hash_hex.size(), 16u);
  }
}

TEST(ArtifactStore, ResolveByHashPrefixLatestAndBareName) {
  const std::string dir = fresh_dir("store_resolve");
  const std::uint64_t h1 = save_model(dir + "/model.dsqa", 8);
  const std::uint64_t h2 = save_model(dir + "/model@v2.dsqa", 12);
  // Make "newest" unambiguous even on coarse-mtime filesystems.
  fs::last_write_time(dir + "/model@v2.dsqa",
                      fs::last_write_time(dir + "/model.dsqa") +
                          std::chrono::seconds(5));
  const Store store = Store::open(dir);

  char full[17];
  std::snprintf(full, sizeof full, "%016llx",
                static_cast<unsigned long long>(h1));

  // Full hash and any unique prefix resolve the same entry.
  EXPECT_EQ(store.resolve_entry("model@" + std::string(full)).content_hash, h1);
  std::string prefix(full, 1);
  // Grow the prefix until it distinguishes the two hashes (usually 1 char).
  char other[17];
  std::snprintf(other, sizeof other, "%016llx",
                static_cast<unsigned long long>(h2));
  std::size_t n = 1;
  while (std::string(full, n) == std::string(other, n)) ++n;
  EXPECT_EQ(store.resolve_entry("model@" + std::string(full, n)).content_hash,
            h1);

  // "@latest" and the bare name pick the newest file (the v2 push).
  EXPECT_EQ(store.resolve_entry("model@latest").content_hash, h2);
  EXPECT_EQ(store.resolve_entry("model").content_hash, h2);

  // resolve() hands back the verified artifact itself.
  const std::shared_ptr<const Artifact> art = store.resolve("model@latest");
  ASSERT_NE(art, nullptr);
  EXPECT_EQ(art->manifest.content_hash, h2);
}

TEST(ArtifactStore, ResolveErrorsNameTheAvailableVersions) {
  const std::string dir = fresh_dir("store_errors");
  (void)save_model(dir + "/model.dsqa", 8);
  (void)save_model(dir + "/model@v2.dsqa", 12);
  const Store store = Store::open(dir);

  // Unknown name: lists what IS there.
  try {
    (void)store.resolve_entry("nonesuch");
    FAIL() << "unknown name must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("model@"), std::string::npos);
  }
  // Hash prefix matching nothing.
  EXPECT_THROW((void)store.resolve_entry("model@zzzz"), Error);
  // Malformed refs: empty version, empty name.
  EXPECT_THROW((void)store.resolve_entry("model@"), Error);
  EXPECT_THROW((void)store.resolve_entry("@1234"), Error);
}

TEST(ArtifactStore, EmptyAndMissingDirectories) {
  const std::string dir = fresh_dir("store_empty");
  const Store store = Store::open(dir);  // empty store is valid
  EXPECT_TRUE(store.entries().empty());
  try {
    (void)store.resolve_entry("model");
    FAIL() << "resolve on an empty store must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("store is empty"), std::string::npos);
  }
  EXPECT_THROW((void)Store::open(dir + "/missing"), Error);
}

TEST(ArtifactStore, OneCorruptFileFailsTheWholeOpen) {
  const std::string dir = fresh_dir("store_corrupt");
  (void)save_model(dir + "/good.dsqa", 8);
  {
    std::ofstream bad(dir + "/bad.dsqa", std::ios::binary);
    bad << "this is not an artifact";
  }
  try {
    (void)Store::open(dir);
    FAIL() << "a corrupt artifact must fail the whole open";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad.dsqa"), std::string::npos);
  }

  // A bit-flipped but well-formed file fails the content-hash re-check too.
  fs::remove(dir + "/bad.dsqa");
  const std::string victim = dir + "/good.dsqa";
  std::fstream f(victim,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-9, std::ios::end);  // inside the trailing weight payload
  char byte = 0;
  f.seekg(-9, std::ios::end);
  f.get(byte);
  f.seekp(-9, std::ios::end);
  f.put(static_cast<char>(byte ^ 0x01));
  f.close();
  EXPECT_THROW((void)Store::open(dir), Error);
}

TEST(ArtifactStore, ManifestJsonIsValidAndListsEveryEntry) {
  const std::string dir = fresh_dir("store_manifest");
  (void)save_model(dir + "/alpha.dsqa", 8);
  (void)save_model(dir + "/beta.dsqa", 12);
  const Store store = Store::open(dir);

  const std::string json = store.manifest_json();
  EXPECT_TRUE(testing::valid_json(json)) << json;
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"deepseq\""), std::string::npos);
}

TEST(ArtifactStore, StoreFromEnvContract) {
  // Unset / empty: no store, no error.
  unsetenv("DEEPSEQ_ARTIFACT_DIR");
  EXPECT_EQ(store_from_env(), nullptr);
  setenv("DEEPSEQ_ARTIFACT_DIR", "", 1);
  EXPECT_EQ(store_from_env(), nullptr);

  // A set but invalid directory fails fast naming the variable — never a
  // silent empty store.
  const std::string missing = ::testing::TempDir() + "/env_store_missing";
  fs::remove_all(missing);
  setenv("DEEPSEQ_ARTIFACT_DIR", missing.c_str(), 1);
  try {
    (void)store_from_env();
    FAIL() << "missing DEEPSEQ_ARTIFACT_DIR must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DEEPSEQ_ARTIFACT_DIR"),
              std::string::npos);
  }

  // A valid directory opens strictly.
  const std::string dir = fresh_dir("env_store");
  (void)save_model(dir + "/model.dsqa", 8);
  setenv("DEEPSEQ_ARTIFACT_DIR", dir.c_str(), 1);
  const std::shared_ptr<const Store> store = store_from_env();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->entries().size(), 1u);
  unsetenv("DEEPSEQ_ARTIFACT_DIR");
}

}  // namespace
}  // namespace deepseq::artifact
