// Regenerates Table V: power estimation on the six large test designs —
// ground-truth simulation vs the probabilistic (non-simulative) baseline
// [27], the fine-tuned Grannite-style baseline [18] and fine-tuned DeepSeq,
// all flowing through the same SAIF -> power-analyzer path (Fig. 3).
// Reproduction target: Probabilistic worst by a wide margin, learned
// methods close to GT, DeepSeq best on average (paper: 16.35% / 8.48% /
// 3.19% average error).

#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "netlist/aig.hpp"
#include "power/pipeline.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE V", "power estimation on the large test designs", cfg);

  const DeepSeqModel deepseq_model = pretrained_deepseq(cfg);
  const GranniteModel grannite_model = pretrained_grannite(cfg);

  PowerPipelineOptions popt;
  popt.gt_sim_cycles = cfg.gt_cycles;
  popt.finetune_workloads = cfg.ft_workloads;
  popt.finetune_epochs = cfg.ft_epochs;
  popt.finetune_sim_cycles = cfg.ft_cycles;
  popt.finetune_lr = cfg.ft_lr;
  // The paper's plain Eq. 3 objective at full scale; class-balanced TR
  // loss at reduced budgets (see PowerPipelineOptions::balanced_finetune).
  popt.balanced_finetune = !cfg.full;
  popt.saif_dir = cfg.cache_dir + "/saif";
  std::filesystem::create_directories(popt.saif_dir);

  struct PaperRow {
    const char* name;
    double gt, prob_err, gran_err, ds_err;
  };
  const PaperRow paper[] = {
      {"noc_router", 0.653, 0.0658, 0.0185, 0.0153},
      {"pll", 0.936, 0.1912, 0.1141, 0.0256},
      {"ptc", 0.247, 0.2555, 0.1020, 0.0324},
      {"rtcclock", 0.463, 0.1284, 0.0572, 0.0454},
      {"ac97_ctrl", 3.353, 0.2622, 0.1760, 0.0274},
      {"mem_ctrl", 1.365, 0.0777, 0.0410, 0.0454},
  };

  std::printf("\n%-11s | %9s | %9s %8s | %9s %8s | %9s %8s || %8s %8s %8s\n",
              "Design", "GT (mW)", "Prob(mW)", "Err", "Gran(mW)", "Err",
              "DeepSeq", "Err", "p:Prob", "p:Gran", "p:DS");
  std::printf("%.*s\n", 118, std::string(118, '-').c_str());

  double sum_prob = 0, sum_gran = 0, sum_ds = 0, sum_static = 0;
  int n = 0;
  for (const PaperRow& pr : paper) {
    WallTimer t;
    const TestDesign design =
        build_test_design(pr.name, cfg.design_scale, cfg.eval_seed);
    Rng rng(cfg.eval_seed ^ 0xABCDu ^ static_cast<std::uint64_t>(n));
    const Workload w = low_activity_workload(design.netlist, rng,
                                             cfg.workload_active_fraction);
    // Per-design fine-tuning budget: roughly constant wall-time across
    // design sizes (see scaled_ft_budget).
    const FtBudget budget = scaled_ft_budget(
        cfg, decompose_to_aig(design.netlist).aig.num_nodes());
    popt.finetune_workloads = budget.workloads;
    popt.finetune_epochs = budget.epochs;
    PowerPipeline pipeline(deepseq_model, grannite_model, popt);
    const PowerComparison cmp = pipeline.run(design, w);
    std::printf("%-11s | %9.4f | %9.4f %8s | %9.4f %8s | %9.4f %8s || %8s %8s %8s  [%.0fs]\n",
                pr.name, cmp.gt_mw, cmp.probabilistic_mw,
                pct(cmp.probabilistic_error).c_str(), cmp.grannite_mw,
                pct(cmp.grannite_error).c_str(), cmp.deepseq_mw,
                pct(cmp.deepseq_error).c_str(), pct(pr.prob_err).c_str(),
                pct(pr.gran_err).c_str(), pct(pr.ds_err).c_str(), t.seconds());
    std::fflush(stdout);
    sum_prob += cmp.probabilistic_error;
    sum_gran += cmp.grannite_error;
    sum_ds += cmp.deepseq_error;
    sum_static += cmp.static_fraction;
    ++n;
  }
  std::printf("%-11s | %9s | %9s %8s | %9s %8s | %9s %8s || %8s %8s %8s\n",
              "Avg.", "", "", pct(sum_prob / n).c_str(), "",
              pct(sum_gran / n).c_str(), "", pct(sum_ds / n).c_str(), "16.35%",
              "8.48%", "3.19%");
  std::printf("\nmean static-gate fraction under the test workloads: %s "
              "(paper §V-A1 reports ~70%%)\n",
              pct(sum_static / n, 0).c_str());
  std::printf("SAIF artifacts: %s\n", popt.saif_dir.c_str());
  return 0;
}
