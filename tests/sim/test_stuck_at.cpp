#include "sim/stuck_at.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "netlist/scoap.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

Workload uniform_half(const Circuit& c) {
  Workload w;
  w.pi_prob.assign(c.pis().size(), 0.5);
  w.pattern_seed = 3;
  return w;
}

TEST(StuckAt, FaultListCoversEveryNonConstantNodeTwice) {
  const Circuit c = iscas89_s27();
  const auto faults = enumerate_stuck_at_faults(c);
  EXPECT_EQ(faults.size(), 2 * c.num_nodes());
}

TEST(StuckAt, ForcedSimulatorPinsTheNode) {
  Circuit c("f");
  const NodeId a = c.add_pi("a");
  const NodeId g = c.add_not(a, "g");
  c.add_po(g, "y");
  SequentialSimulator sim(c);
  sim.force_stuck(g, true);
  sim.step({0});
  EXPECT_EQ(sim.value(g), ~0ULL);
  sim.step({~0ULL});  // NOT would yield 0, force wins
  EXPECT_EQ(sim.value(g), ~0ULL);
  sim.clear_forcing();
  sim.step({~0ULL});
  EXPECT_EQ(sim.value(g), 0ULL);
}

TEST(StuckAt, ObviousFaultOnPoConeIsDetected) {
  Circuit c("det");
  const NodeId a = c.add_pi("a");
  const NodeId g = c.add_not(a, "g");
  c.add_po(g, "y");
  const StuckAtResult r =
      simulate_stuck_at(c, uniform_half(c), {{g, false}, {g, true}}, {64, 1});
  EXPECT_TRUE(r.detected[0]);
  EXPECT_TRUE(r.detected[1]);
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(StuckAt, DeadLogicFaultIsUndetectable) {
  Circuit c("dead");
  const NodeId a = c.add_pi("a");
  const NodeId dead = c.add_not(a, "dead");  // not in any PO cone
  const NodeId live = c.add_gate(GateType::kBuf, {a}, "live");
  c.add_po(live, "y");
  const StuckAtResult r =
      simulate_stuck_at(c, uniform_half(c), {{dead, true}}, {256, 1});
  EXPECT_FALSE(r.detected[0]);
}

TEST(StuckAt, GatedLogicFaultNeedsTheEnable) {
  // g = a AND en; with en pinned low, faults on a are masked.
  Circuit c("gated");
  const NodeId a = c.add_pi("a");
  const NodeId en = c.add_pi("en");
  const NodeId g = c.add_and(a, en, "g");
  c.add_po(g, "y");
  Workload masked;
  masked.pi_prob = {0.5, 0.0};  // enable never asserts
  masked.pattern_seed = 4;
  const StuckAtResult off =
      simulate_stuck_at(c, masked, {{a, true}}, {256, 1});
  EXPECT_FALSE(off.detected[0]);
  Workload open;
  open.pi_prob = {0.5, 1.0};
  open.pattern_seed = 4;
  const StuckAtResult on = simulate_stuck_at(c, open, {{a, true}}, {256, 1});
  EXPECT_TRUE(on.detected[0]);
}

TEST(StuckAt, StuckValueEqualToConstantBehaviourIsUndetected) {
  // y = a AND 0 is constant 0, so stuck-at-0 at y changes nothing.
  Circuit c("redund");
  const NodeId a = c.add_pi("a");
  const NodeId z = c.add_const0("z");
  const NodeId g = c.add_and(a, z, "g");
  c.add_po(g, "y");
  const StuckAtResult r =
      simulate_stuck_at(c, uniform_half(c), {{g, false}, {g, true}}, {128, 1});
  EXPECT_FALSE(r.detected[0]);  // stuck-at-0 == normal behaviour
  EXPECT_TRUE(r.detected[1]);   // stuck-at-1 flips the PO
}

TEST(StuckAt, S27CoverageIsHighUnderRandomPatterns) {
  const Circuit c = iscas89_s27();
  const StuckAtResult r = simulate_stuck_at(c, uniform_half(c), {1000, 1});
  // s27 is fully testable; random patterns detect nearly everything.
  EXPECT_GT(r.coverage(), 0.9);
  EXPECT_EQ(r.detected.size(), r.faults.size());
}

TEST(StuckAt, SequentialFaultNeedsStatePropagation) {
  // Fault on a FF's D-cone is only visible after a clock edge.
  Circuit c("seq");
  const NodeId a = c.add_pi("a");
  const NodeId q = c.add_ff(a, "q");
  c.add_po(q, "y");
  const StuckAtResult one_cycle =
      simulate_stuck_at(c, uniform_half(c), {{a, true}}, {1, 1});
  EXPECT_FALSE(one_cycle.detected[0]) << "needs a clock to reach the PO";
  const StuckAtResult two_cycles =
      simulate_stuck_at(c, uniform_half(c), {{a, true}}, {8, 1});
  EXPECT_TRUE(two_cycles.detected[0]);
}

TEST(StuckAt, ScoapEffortPredictsDetectability) {
  // The harder SCOAP says a fault is, the less likely random patterns
  // detect it: every undetected s27 fault must not be strictly easier
  // than every detected one (sanity-level agreement, not a strict order).
  const Circuit c = iscas89_s27();
  const ScoapMeasures m = compute_scoap(c);
  const StuckAtResult r = simulate_stuck_at(c, uniform_half(c), {200, 1});
  double max_detected = 0.0;
  double min_undetected = kScoapInf;
  for (std::size_t f = 0; f < r.faults.size(); ++f) {
    const double effort =
        m.fault_effort(r.faults[f].node, r.faults[f].value);
    if (effort >= kScoapInf) continue;
    if (r.detected[f]) {
      max_detected = std::max(max_detected, effort);
    } else {
      min_undetected = std::min(min_undetected, effort);
    }
  }
  if (min_undetected < kScoapInf) {
    EXPECT_GE(min_undetected, 2.0)
        << "an undetected fault scored trivially easy by SCOAP";
  }
  EXPECT_GT(max_detected, 0.0);
}

TEST(StuckAt, RejectsBadArguments) {
  const Circuit c = iscas89_s27();
  Workload bad;  // wrong PI count
  EXPECT_THROW(simulate_stuck_at(c, bad, {10, 1}), Error);
  Workload ok = uniform_half(c);
  EXPECT_THROW(simulate_stuck_at(c, ok, {0, 1}), Error);
}

}  // namespace
}  // namespace deepseq
