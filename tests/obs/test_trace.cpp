#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "runtime/thread_pool.hpp"
#include "support/json_check.hpp"

namespace deepseq::obs {
namespace {

TraceEvent make_event(const char* name, std::uint64_t id) {
  TraceEvent e;
  e.name = name;
  e.ts_ns = id * 1000;
  e.dur_ns = 500;
  e.ctx.task_id = id;
  return e;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every integer following a `"task":` key in a serialized trace.
std::vector<std::uint64_t> task_ids_in(const std::string& doc) {
  std::vector<std::uint64_t> ids;
  const std::string key = "\"task\":";
  for (std::size_t pos = doc.find(key); pos != std::string::npos;
       pos = doc.find(key, pos + 1)) {
    ids.push_back(std::strtoull(doc.c_str() + pos + key.size(), nullptr, 10));
  }
  return ids;
}

// ---- ring-buffer sink ------------------------------------------------------

TEST(ObsTraceSink, RetainsEverythingUnderCapacity) {
  TraceSink sink(16);
  for (std::uint64_t i = 0; i < 10; ++i) sink.record(make_event("e", i));
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_EQ(events[i].ctx.task_id, i);  // oldest first
}

TEST(ObsTraceSink, OverflowKeepsTheNewestEvents) {
  TraceSink sink(8);
  for (std::uint64_t i = 0; i < 20; ++i) sink.record(make_event("e", i));
  EXPECT_EQ(sink.recorded(), 20u);
  EXPECT_EQ(sink.dropped(), 12u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(events[i].ctx.task_id, 12 + i);  // the tail of the run
}

TEST(ObsTraceSink, ClearResets) {
  TraceSink sink(8);
  for (std::uint64_t i = 0; i < 5; ++i) sink.record(make_event("e", i));
  sink.clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(ObsTraceSink, ConcurrentRecordersLoseNothingUnderCapacity) {
  TraceSink sink(4096);
  runtime::ThreadPool pool(8);
  constexpr int kTasks = 16;
  constexpr int kPerTask = 100;
  for (int t = 0; t < kTasks; ++t)
    pool.submit([&sink, t] {
      for (int i = 0; i < kPerTask; ++i)
        sink.record(make_event("e", static_cast<std::uint64_t>(t) * kPerTask +
                                        static_cast<std::uint64_t>(i)));
    });
  pool.wait_idle();
  EXPECT_EQ(sink.recorded(), static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(sink.dropped(), 0u);
  // Every distinct event survived (tickets are unique, capacity was enough).
  std::set<std::uint64_t> ids;
  for (const TraceEvent& e : sink.events()) ids.insert(e.ctx.task_id);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kTasks) * kPerTask);
}

// ---- chrome export ---------------------------------------------------------

TEST(ObsChromeTrace, SerializesValidJson) {
  std::vector<TraceEvent> events;
  TraceEvent x = make_event("span", 7);
  x.ctx.kind = "embedding";
  x.ctx.backend_fingerprint = 0xdeadbeef;
  x.structure = 0x1234;
  x.arg_name[0] = "cache_hit";
  x.arg[0] = 1;
  events.push_back(x);
  TraceEvent i = make_event("mark", 8);
  i.ph = 'i';
  i.cat = "session";
  events.push_back(i);

  const std::string doc = chrome_trace_json(events);
  EXPECT_TRUE(testing::valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"span\""), std::string::npos);
  EXPECT_NE(doc.find("\"cache_hit\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"s\":\"p\""), std::string::npos);  // instant scope
}

TEST(ObsChromeTrace, EmptySinkSerializesValidJson) {
  EXPECT_TRUE(testing::valid_json(chrome_trace_json({})));
}

TEST(ObsTracePath, ValidateRejectsUnwritablePath) {
  EXPECT_THROW(validate_trace_path("/nonexistent_dir_xyz123/trace.json"),
               Error);
}

// ---- end-to-end through the Session ---------------------------------------

api::SessionConfig small_session() {
  api::SessionConfig cfg;
  cfg.engine.threads = 2;
  cfg.backends.model = ModelConfig::deepseq(/*hidden=*/12, /*t=*/2);
  return cfg;
}

std::shared_ptr<const Circuit> shared_aig(std::uint64_t seed, int pis = 5) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = pis;
  spec.num_ffs = 4;
  spec.num_gates = 60;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return std::make_shared<const Circuit>(generate_circuit(spec, rng));
}

TEST(ObsSessionTrace, OneTaskYieldsACompleteSpanChain) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "deepseq_obs_span_chain.json")
          .string();
  TraceSink::global().clear();  // isolate from earlier tests in this binary
  {
    api::SessionConfig cfg = small_session();
    cfg.trace_path = path;
    api::Session session(cfg);
    EXPECT_TRUE(tracing_enabled());

    const auto circuit = shared_aig(1);
    Rng rng(9);
    api::TaskRequest req;
    req.circuit = circuit;
    req.workload = random_workload(*circuit, rng);
    req.task = api::TaskKind::kLogicProb;  // embed + regression head
    req.init_seed = 7;
    session.submit(std::move(req)).get();
  }  // ~Session writes the dump
  EXPECT_FALSE(tracing_enabled());  // prior (off) state restored

  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(testing::valid_json(doc)) << doc;
  // The full chain of one request, each stage present by name.
  for (const char* span : {"\"submit\"", "\"queue\"", "\"resolve\"",
                           "\"embed\"", "\"head\"", "\"task\""}) {
    EXPECT_NE(doc.find(span), std::string::npos) << "missing span " << span;
  }
  EXPECT_NE(doc.find("\"kind\":\"logic-prob\""), std::string::npos);
  // Every span of the single submitted task carries the same task id.
  const std::vector<std::uint64_t> ids = task_ids_in(doc);
  ASSERT_GE(ids.size(), 6u);
  for (std::uint64_t id : ids) EXPECT_EQ(id, ids.front());
  std::filesystem::remove(path);
}

TEST(ObsSessionTrace, UnwritableTracePathFailsSessionConstruction) {
  api::SessionConfig cfg = small_session();
  cfg.trace_path = "/nonexistent_dir_xyz123/trace.json";
  EXPECT_THROW(api::Session session(cfg), Error);
}

TEST(ObsSessionTrace, TaskCountersBalanceAcrossSuccessAndFailure) {
  const Snapshot base = Registry::global().snapshot();
  {
    api::Session session(small_session());
    const auto circuit = shared_aig(2, /*pis=*/5);
    const auto other = shared_aig(3, /*pis=*/9);  // different PI count
    Rng rng(11);

    api::TaskRequest ok;
    ok.circuit = circuit;
    ok.workload = random_workload(*circuit, rng);
    ok.task = api::TaskKind::kEmbedding;
    session.submit(ok).get();

    api::TaskRequest bad = ok;
    bad.workload = random_workload(*other, rng);  // PI mismatch: must throw
    EXPECT_THROW(session.submit(bad).get(), std::exception);
    session.drain();
  }
  const Snapshot d = delta(Registry::global().snapshot(), base);
  const auto count = [&d](const std::string& name) {
    const auto it = d.counters.find(name);
    return it == d.counters.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(count("task.submitted.embedding"), 2u);
  EXPECT_EQ(count("task.completed.embedding"), 1u);
  EXPECT_EQ(count("task.failed.embedding"), 1u);
  EXPECT_EQ(count("task.submitted.embedding"),
            count("task.completed.embedding") +
                count("task.failed.embedding"));
}

TEST(ObsSessionTrace, WriteChromeTraceDumpsTheGlobalSink) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "deepseq_obs_dump.json")
          .string();
  TraceSink::global().clear();
  TraceSink::global().record(make_event("standalone", 42));
  write_chrome_trace(path);
  const std::string doc = slurp(path);
  EXPECT_TRUE(testing::valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"standalone\""), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace deepseq::obs
