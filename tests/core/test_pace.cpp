#include "core/pace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

Circuit s27_aig() { return decompose_to_aig(iscas89_s27()).aig; }

std::vector<TrainSample> s27_samples(int count, std::uint64_t seed) {
  std::vector<TrainSample> out;
  Rng rng(seed);
  const Circuit aig = s27_aig();
  for (int k = 0; k < count; ++k) {
    Workload w = random_workload(aig, rng);
    ActivityOptions opt;
    opt.num_cycles = 500;
    out.push_back(make_sample("s27_" + std::to_string(k), aig, std::move(w),
                              opt, rng.next_u64()));
  }
  return out;
}

TEST(PaceGraph, TargetsExcludePisAndAttendToThemselvesFirst) {
  const Circuit aig = s27_aig();
  const PaceGraph g = build_pace_graph(aig, PaceConfig{});
  for (NodeId pi : aig.pis())
    for (NodeId t : g.targets) EXPECT_NE(t, pi);
  // The BFS pushes the node itself before any ancestor.
  std::vector<int> first_source(g.targets.size(), -1);
  for (std::size_t e = 0; e < g.sources.size(); ++e)
    if (first_source[g.segment[e]] < 0)
      first_source[g.segment[e]] = static_cast<int>(g.sources[e]);
  for (std::size_t i = 0; i < g.targets.size(); ++i)
    EXPECT_EQ(first_source[i], static_cast<int>(g.targets[i]));
}

TEST(PaceGraph, AncestorCapIsRespected) {
  Rng rng(5);
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 4;
  spec.num_gates = 150;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  const Circuit aig = generate_circuit(spec, rng);
  PaceConfig cfg;
  cfg.max_ancestors = 7;
  const PaceGraph g = build_pace_graph(aig, cfg);
  std::vector<int> count(g.targets.size(), 0);
  for (int s : g.segment) ++count[s];
  for (int c : count) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, cfg.max_ancestors + 1);
  }
}

TEST(PaceGraph, FeatureWidthIncludesPositionalEncoding) {
  PaceConfig cfg;
  cfg.pos_dim = 6;
  const PaceGraph g = build_pace_graph(s27_aig(), cfg);
  EXPECT_EQ(g.features.cols(), kFeatureDim + 6);
}

TEST(PaceGraph, RejectsGenericCircuits) {
  EXPECT_THROW(build_pace_graph(counter4(), PaceConfig{}), CircuitError);
}

TEST(PaceEncoder, PiRowsStayPinnedThroughAllLayers) {
  const Circuit aig = s27_aig();
  PaceConfig cfg;
  cfg.hidden_dim = 8;
  const PaceGraph graph = build_pace_graph(aig, cfg);
  const PaceEncoder enc(cfg);
  Rng rng(3);
  const Workload w = random_workload(aig, rng);
  nn::Graph g(false);
  const nn::Var h = enc.embed(g, graph, w, 77);
  for (std::size_t k = 0; k < aig.pis().size(); ++k)
    for (int c = 0; c < cfg.hidden_dim; ++c)
      EXPECT_FLOAT_EQ(h->value.at(static_cast<int>(aig.pis()[k]), c),
                      static_cast<float>(w.pi_prob[k]));
}

TEST(PaceEncoder, OutputsAreProbabilityShaped) {
  const Circuit aig = s27_aig();
  PaceConfig cfg;
  cfg.hidden_dim = 8;
  const PaceGraph graph = build_pace_graph(aig, cfg);
  const PaceEncoder enc(cfg);
  Rng rng(4);
  const Workload w = random_workload(aig, rng);
  nn::Graph g(false);
  const auto out = enc.forward(g, graph, w, 5);
  ASSERT_EQ(out.tr->value.rows(), graph.num_nodes);
  ASSERT_EQ(out.tr->value.cols(), 2);
  ASSERT_EQ(out.lg->value.cols(), 1);
  for (std::size_t i = 0; i < out.tr->value.size(); ++i) {
    EXPECT_GE(out.tr->value.data()[i], 0.0f);
    EXPECT_LE(out.tr->value.data()[i], 1.0f);
  }
}

TEST(PaceEncoder, DeterministicForFixedSeeds) {
  const Circuit aig = s27_aig();
  PaceConfig cfg;
  cfg.hidden_dim = 8;
  const PaceGraph graph = build_pace_graph(aig, cfg);
  const PaceEncoder a(cfg), b(cfg);
  Rng rng(6);
  const Workload w = random_workload(aig, rng);
  nn::Graph g(false);
  const auto oa = a.forward(g, graph, w, 9);
  const auto ob = b.forward(g, graph, w, 9);
  for (std::size_t i = 0; i < oa.tr->value.size(); ++i)
    EXPECT_FLOAT_EQ(oa.tr->value.data()[i], ob.tr->value.data()[i]);
}

TEST(PaceEncoder, RejectsWorkloadMismatch) {
  const Circuit aig = s27_aig();
  PaceConfig cfg;
  const PaceGraph graph = build_pace_graph(aig, cfg);
  const PaceEncoder enc(cfg);
  nn::Graph g(false);
  Workload w;  // no PI probabilities
  EXPECT_THROW(enc.embed(g, graph, w, 1), Error);
}

TEST(PaceFit, LearnsOnOverfitTask) {
  auto ds = s27_samples(3, 21);
  PaceConfig cfg;
  cfg.hidden_dim = 12;
  cfg.layers = 2;
  PaceEncoder model(cfg);
  const PaceTrainStats first = fit_pace(model, ds, ds, 1, 5e-3f, 2);
  const PaceTrainStats later = fit_pace(model, ds, ds, 60, 5e-3f, 2);
  EXPECT_LT(later.final_loss, first.final_loss);
  EXPECT_LT(later.avg_pe_lg, 0.25);
}

TEST(PaceFit, RejectsEmptyTrainingSet) {
  PaceEncoder model(PaceConfig{});
  EXPECT_THROW(fit_pace(model, {}, {}, 1, 1e-3f), Error);
}

}  // namespace
}  // namespace deepseq
