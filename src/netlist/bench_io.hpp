#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Parse an ISCAS'89-style BENCH netlist:
///
///   # comment
///   INPUT(G0)
///   OUTPUT(G17)
///   G5 = DFF(G10)
///   G10 = NAND(G0, G5)
///   G17 = NOT(G10)
///
/// Signals may be referenced before definition (feedback through DFFs).
/// Accepted gates: AND OR NAND NOR XOR XNOR NOT BUFF DFF MUX CONST0.
/// Multi-input AND/OR/NAND/NOR (>2 fanins) are legal BENCH and are expanded
/// into balanced 2-input trees on the fly.
Circuit parse_bench(std::istream& in, std::string circuit_name = "bench");
Circuit parse_bench_string(const std::string& text,
                           std::string circuit_name = "bench");
Circuit parse_bench_file(const std::string& path);

/// Stable unique per-node names: the node's own name when present (with a
/// numeric suffix on collisions), otherwise "n<id>". Shared by the BENCH
/// writer, SAIF emission and the power analyzer so activity files and
/// netlists always agree on net names.
std::vector<std::string> unique_node_names(const Circuit& c);

/// Serialize to BENCH. Nodes without names get stable generated names.
void write_bench(const Circuit& c, std::ostream& out);
std::string write_bench_string(const Circuit& c);
void write_bench_file(const Circuit& c, const std::string& path);

}  // namespace deepseq
