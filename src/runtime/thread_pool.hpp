#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace deepseq::runtime {

/// Fixed-size worker pool over a lock-based MPMC task queue — the execution
/// substrate of the serving layer. Design points:
///
/// * submit() is safe from any thread, including from inside a task (the
///   queue lock is never held while running user work).
/// * wait_idle() blocks until the queue is empty AND no task is executing —
///   the barrier the batched inference engine uses between waves.
/// * Tasks must not throw; submit_with_result() transports exceptions
///   through its std::future instead.
class ThreadPool {
 public:
  /// `threads` <= 0 falls back to hardware_concurrency (min 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue fire-and-forget work.
  void submit(std::function<void()> task);

  /// Enqueue work whose result (or exception) is delivered via a future.
  template <typename F>
  auto submit_with_result(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task]() { (*task)(); });
    return future;
  }

  /// Block until every submitted task has finished. Safe to call
  /// concurrently with submit(); returns once a momentarily-idle state is
  /// observed.
  void wait_idle();

  /// Tasks executed so far (monotonic; for stats and tests).
  std::size_t completed() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;   // tasks popped but not yet finished
  std::size_t completed_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deepseq::runtime
