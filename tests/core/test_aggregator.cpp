#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/gradcheck.hpp"

namespace deepseq {
namespace {

using nn::Graph;
using nn::Tensor;
using nn::Var;

struct AggFixture {
  int dim = 4;
  Tensor hv_targets, hv_edges, hu;
  std::vector<int> segment{0, 0, 1, 1, 1};
  int num_targets = 2;

  AggFixture() {
    Rng rng(5);
    hv_targets = Tensor::xavier(num_targets, dim, rng);
    hu = Tensor::xavier(5, dim, rng);
    hv_edges = Tensor(5, dim);
    for (int e = 0; e < 5; ++e)
      for (int c = 0; c < dim; ++c)
        hv_edges.at(e, c) = hv_targets.at(segment[e], c);
  }
};

class AggregatorKinds : public ::testing::TestWithParam<AggregatorKind> {};

TEST_P(AggregatorKinds, OutputShapeMatchesMessageDim) {
  AggFixture f;
  Rng rng(7);
  const Aggregator agg(GetParam(), f.dim, rng, "agg");
  Graph g;
  const Var m = agg.aggregate(g, g.constant(f.hv_targets), g.constant(f.hv_edges),
                              g.constant(f.hu), f.segment, f.num_targets);
  EXPECT_EQ(m->value.rows(), f.num_targets);
  EXPECT_EQ(m->value.cols(), agg.message_dim());
}

TEST_P(AggregatorKinds, HasTrainableParams) {
  Rng rng(8);
  const Aggregator agg(GetParam(), 4, rng, "agg");
  nn::NamedParams p;
  agg.collect_params(p);
  EXPECT_FALSE(p.empty());
}

TEST_P(AggregatorKinds, GradCheckThroughAggregation) {
  AggFixture f;
  Rng rng(9);
  const Aggregator agg(GetParam(), f.dim, rng, "agg");
  nn::NamedParams params;
  agg.collect_params(params);
  // Also check gradients flowing into the source states.
  Var hu_param = nn::make_param(f.hu);
  params.emplace_back("hu", hu_param);
  const Tensor target = Tensor::full(f.num_targets, agg.message_dim(), 0.1f);
  auto forward = [&](Graph& g) {
    const Var m =
        agg.aggregate(g, g.constant(f.hv_targets), g.constant(f.hv_edges),
                      hu_param, f.segment, f.num_targets);
    return g.l1_loss(m, target);
  };
  const auto res = nn::grad_check(forward, params, 5e-3f, 4);
  EXPECT_LT(res.max_rel_error, 0.06) << "worst: " << res.worst_param;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregatorKinds,
                         ::testing::Values(AggregatorKind::kConvSum,
                                           AggregatorKind::kAttention,
                                           AggregatorKind::kDualAttention),
                         [](const auto& info) {
                           switch (info.param) {
                             case AggregatorKind::kConvSum: return "ConvSum";
                             case AggregatorKind::kAttention: return "Attention";
                             default: return "DualAttention";
                           }
                         });

TEST(Aggregator, ConvSumIsDegreeNormalizedMean) {
  // With identity weights and zero bias, conv-sum reduces to the mean of
  // predecessor states.
  const int dim = 3;
  Rng rng(11);
  Aggregator agg(AggregatorKind::kConvSum, dim, rng, "agg");
  nn::NamedParams p;
  agg.collect_params(p);
  p[0].second->value = Tensor(dim, dim);
  for (int i = 0; i < dim; ++i) p[0].second->value.at(i, i) = 1.0f;
  p[1].second->value.zero();

  Graph g;
  const Tensor hu = Tensor::from_rows({{1, 0, 0}, {3, 0, 0}, {6, 0, 0}});
  const std::vector<int> seg{0, 0, 1};
  const Var m = agg.aggregate(g, g.constant(Tensor(2, dim)),
                              g.constant(Tensor(3, dim)), g.constant(hu), seg, 2);
  EXPECT_NEAR(m->value.at(0, 0), 2.0f, 1e-6);  // mean(1, 3)
  EXPECT_NEAR(m->value.at(1, 0), 6.0f, 1e-6);  // mean(6)
}

TEST(Aggregator, AttentionIsConvexCombination) {
  // Attention output lies in the convex hull of source states: with 1-d
  // states, between min and max.
  Rng rng(13);
  Aggregator agg(AggregatorKind::kAttention, 1, rng, "agg");
  Graph g;
  const Tensor hu = Tensor::from_rows({{0.0f}, {1.0f}, {0.5f}});
  const std::vector<int> seg{0, 0, 0};
  const Var m = agg.aggregate(g, g.constant(Tensor(1, 1)),
                              g.constant(Tensor(3, 1)), g.constant(hu), seg, 1);
  EXPECT_GE(m->value.at(0, 0), 0.0f);
  EXPECT_LE(m->value.at(0, 0), 1.0f);
}

TEST(Aggregator, DualAttentionConcatenatesTrAndLg) {
  // m = m_TR || m_LG with m_TR = gate * m_LG, so the left half equals the
  // right half scaled by a factor in (0, 1), column-wise per target.
  AggFixture f;
  const int dim = f.dim;
  Rng rng(17);
  Aggregator agg(AggregatorKind::kDualAttention, dim, rng, "agg");
  Graph g;
  const Var m = agg.aggregate(g, g.constant(f.hv_targets), g.constant(f.hv_edges),
                              g.constant(f.hu), f.segment, f.num_targets);
  ASSERT_EQ(m->value.cols(), 2 * dim);
  for (int t = 0; t < f.num_targets; ++t) {
    // Recover the gate from any nonzero LG column and check consistency.
    double gate = -1.0;
    for (int c = 0; c < dim; ++c) {
      const float lg = m->value.at(t, dim + c);
      const float tr = m->value.at(t, c);
      if (std::abs(lg) > 1e-5) {
        const double ratio = tr / lg;
        if (gate < 0) {
          gate = ratio;
        } else {
          EXPECT_NEAR(ratio, gate, 1e-4);
        }
      }
    }
    EXPECT_GT(gate, 0.0);
    EXPECT_LT(gate, 1.0);
  }
}

TEST(Aggregator, NameCollisionFreeParams) {
  Rng rng(19);
  Aggregator a1(AggregatorKind::kDualAttention, 4, rng, "fwd");
  Aggregator a2(AggregatorKind::kDualAttention, 4, rng, "rev");
  nn::NamedParams p;
  a1.collect_params(p);
  a2.collect_params(p);
  std::set<std::string> names;
  for (const auto& [n, v] : p) names.insert(n);
  EXPECT_EQ(names.size(), p.size());
}

}  // namespace
}  // namespace deepseq
