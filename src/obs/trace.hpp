#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace deepseq::obs {

/// Global tracing switch. Disabled (the default) the request path pays one
/// relaxed atomic load per would-be span — no clock reads, no recording.
/// api::Session flips it on when SessionConfig::trace_path / DEEPSEQ_TRACE
/// is set and restores the prior value on destruction.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Process-wide monotonic task id (starts at 1).
std::uint64_t next_task_id();

/// Nanoseconds since the process trace origin (first use of the trace
/// clock). Chrome trace timestamps are derived from this.
std::uint64_t trace_now_ns();
std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp);

/// The per-task identity a trace span carries: assigned in
/// api::Session::submit/run_sync and propagated by value through the
/// engine's request/result structs so every stage of one request — queue,
/// cache resolve, embed/chain-execute, head compute — records spans
/// attributable to the same task. `kind` points at a static task name
/// (api::task_name); a null kind marks an untraced request (engine-level
/// callers that bypass the Session).
struct TaskContext {
  std::uint64_t task_id = 0;
  const char* kind = nullptr;
  std::uint64_t backend_fingerprint = 0;
};

/// One fixed-size trace record. Name/category/argument-name pointers must
/// be static strings (they are stored, not copied). ph 'X' is a complete
/// span [ts_ns, ts_ns + dur_ns); ph 'i' an instant event.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = "task";
  char ph = 'X';
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // filled by TraceSink::record
  TaskContext ctx;
  std::uint64_t structure = 0;  // structural-hash digest; 0 = none
  // Up to eight numeric args (null name = unused slot).
  static constexpr int kMaxArgs = 8;
  const char* arg_name[kMaxArgs] = {};
  std::int64_t arg[kMaxArgs] = {};
};

/// Bounded MPMC ring-buffer sink: record() claims a slot by ticket
/// (one relaxed fetch_add) and writes it under a per-slot spinlock, so
/// concurrent writers on distinct slots never touch shared state and the
/// ring overwrites the oldest events once full (the tail of a long run is
/// what a post-mortem trace wants). recorded()/dropped() are exact.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  void record(TraceEvent e);

  /// Copy out the retained events, oldest first.
  std::vector<TraceEvent> events() const;

  std::uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > slots_.size() ? n - slots_.size() : 0;
  }
  std::size_t capacity() const { return slots_.size(); }

  /// Drop every retained event (counters restart too).
  void clear();

  /// The process-wide sink every instrumentation point records into
  /// (intentionally leaked, like Registry::global()).
  static TraceSink& global();

 private:
  struct Slot {
    mutable std::atomic<bool> busy{false};
    std::uint64_t ticket = kEmpty;
    TraceEvent e;
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// Record into the global sink iff tracing is enabled. Callers that need
/// timestamps should gate their clock reads on tracing_enabled() first.
inline void record_event(const TraceEvent& e) {
  if (tracing_enabled()) TraceSink::global().record(e);
}

/// Serialize events as a Chrome trace-event / Perfetto-compatible JSON
/// document ({"traceEvents":[...],"displayTimeUnit":"ms"}; ts/dur in
/// microseconds).
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Dump the global sink's retained events to `path`. Throws Error naming
/// the path when the file cannot be written.
void write_chrome_trace(const std::string& path);

/// The DEEPSEQ_TRACE knob: empty when unset; otherwise the dump path.
/// Strict like DEEPSEQ_ARTIFACT — validate_trace_path() fails fast (Error
/// naming the variable and path) when the file cannot be created, so a
/// typo'd path surfaces at Session construction, not as a silently missing
/// trace after the run.
std::string trace_path_from_env();
void validate_trace_path(const std::string& path);

}  // namespace deepseq::obs
