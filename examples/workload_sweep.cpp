// Uses the simulation and estimation substrates standalone (no training):
// sweeps the activity level of a design's workload and reports how power
// and the static-gate fraction respond, comparing the simulator against
// the non-simulative probabilistic estimate. This is the §V-A1 observation
// — realistic (gated) workloads leave most of a design idle — as a
// runnable experiment.

#include <cstdio>

#include "dataset/test_designs.hpp"
#include "power/power_analyzer.hpp"
#include "prob/switching.hpp"
#include "sim/simulator.hpp"

using namespace deepseq;

int main() {
  const TestDesign design = build_test_design("ac97_ctrl", 1.0 / 16.0, 21);
  std::printf("design %s: %zu nodes, %zu FFs\n\n", design.name.c_str(),
              design.netlist.num_nodes(), design.netlist.ffs().size());

  std::printf("%-14s | %9s | %12s | %12s | %9s\n", "active PIs", "static %",
              "sim P (mW)", "prob P (mW)", "prob err");
  std::printf("----------------------------------------------------------------\n");

  Rng rng(5);
  for (const double active : {0.05, 0.15, 0.3, 0.6, 1.0}) {
    const Workload w = low_activity_workload(design.netlist, rng, active);

    const NodeActivity act = collect_activity(design.netlist, w, {2000, 1});
    std::vector<double> sim_rate(design.netlist.num_nodes());
    for (NodeId v = 0; v < design.netlist.num_nodes(); ++v)
      sim_rate[v] = act.toggle_rate(v);
    const double sim_mw = analyze_power_rates(design.netlist, sim_rate).total_mw();

    const SwitchingEstimate est = estimate_switching(design.netlist, w);
    std::vector<double> est_rate(design.netlist.num_nodes());
    for (NodeId v = 0; v < design.netlist.num_nodes(); ++v)
      est_rate[v] = est.toggle_rate(v);
    const double est_mw = analyze_power_rates(design.netlist, est_rate).total_mw();

    std::printf("%13.0f%% | %8.1f%% | %12.4f | %12.4f | %8.1f%%\n",
                active * 100, act.static_fraction() * 100, sim_mw, est_mw,
                sim_mw > 0 ? 100.0 * std::abs(est_mw - sim_mw) / sim_mw : 0.0);
  }
  std::printf("\nLower activity -> more static gates and larger relative error\n"
              "of the independence-based estimate: the regime that motivates\n"
              "workload-aware learned models (paper §V-A1).\n");
  return 0;
}
