// Multi-task serving demo: one deepseq::api::Session answers every
// TaskKind for the same circuit — embeddings, per-node logic/transition
// probabilities, model-predicted power, model-only reliability, and SCOAP
// testability — sharing one cached structure resolve (and one cached
// forward pass across the embedding-consuming tasks).
//
//   serve_tasks [netlist.bench|.aag|.aig]
//
// Without an argument the embedded s27 benchmark circuit is used.
// DEEPSEQ_BACKEND selects the embedding backend (default deepseq; the
// probability/power/reliability tasks need the deepseq regress heads).

#include <cstdio>
#include <exception>
#include <future>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/session.hpp"
#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"
#include "netlist/aiger_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"

using namespace deepseq;

namespace {

Circuit load_circuit(const std::string& path) {
  Circuit c;
  if (path.size() > 4 && path.substr(path.size() - 4) == ".aag")
    c = parse_aiger_file(path);
  else if (path.size() > 4 && path.substr(path.size() - 4) == ".aig")
    c = parse_aiger_binary_file(path);
  else if (path.size() > 2 && path.substr(path.size() - 2) == ".v")
    c = parse_verilog_file(path);  // streaming chunked frontend (src/ingest/)
  else
    c = parse_bench_file(path);
  c.validate();
  if (!c.is_strict_aig()) c = decompose_to_aig(c).aig;
  return c;
}

}  // namespace

int main(int argc, char** argv) try {
  Circuit circuit = argc > 1 ? load_circuit(argv[1])
                             : decompose_to_aig(iscas89_s27()).aig;
  auto aig = std::make_shared<const Circuit>(std::move(circuit));
  std::printf("circuit: %zu AIG nodes, %zu PIs, %zu FFs, %zu POs\n",
              aig->num_nodes(), aig->pis().size(), aig->ffs().size(),
              aig->pos().size());

  api::SessionConfig cfg;
  cfg.backend = api::backend_from_env(api::BackendRegistry::global());
  // DEEPSEQ_ARTIFACT swaps fine-tuned weights into the chosen backend.
  cfg.backends = api::options_from_env(cfg.backends);
  cfg.engine.threads = 2;
  api::Session session(cfg);
  std::printf("session backend: %s, weights %s (registered:",
              cfg.backend.c_str(), session.backend().info().weights.c_str());
  for (const std::string& name : session.backend_names())
    std::printf(" %s", name.c_str());
  std::printf(")\n\n");

  Rng rng(11);
  const Workload workload = random_workload(*aig, rng);

  // Submit every task kind the backend supports concurrently; they
  // coalesce into one batch and share the structure resolve.
  const api::BackendInfo& info = session.backend().info();
  std::vector<api::TaskKind> tasks = {api::TaskKind::kEmbedding,
                                      api::TaskKind::kTestability};
  if (info.supports_regress) {
    tasks.push_back(api::TaskKind::kLogicProb);
    tasks.push_back(api::TaskKind::kTransitionProb);
    tasks.push_back(api::TaskKind::kPower);
  }
  if (info.supports_reliability) tasks.push_back(api::TaskKind::kReliability);
  std::vector<std::future<api::TaskResult>> futures;
  for (const api::TaskKind task : tasks) {
    api::TaskRequest req;
    req.circuit = aig;
    req.workload = workload;
    req.task = task;
    req.init_seed = 7;
    futures.push_back(session.submit(std::move(req)));
  }
  session.drain();

  for (auto& f : futures) {
    const api::TaskResult r = f.get();
    std::printf("%-16s %7.2f ms  ", task_name(r.task), r.total_ms);
    switch (r.task) {
      case api::TaskKind::kEmbedding: {
        const auto& out = r.as<api::EmbeddingOutput>();
        std::printf("%d x %d node-state matrix\n", out.embedding->rows(),
                    out.embedding->cols());
        break;
      }
      case api::TaskKind::kLogicProb: {
        const auto& out = r.as<api::LogicProbOutput>();
        double sum = 0.0;
        for (int v = 0; v < out.prob->rows(); ++v) sum += out.prob->at(v, 0);
        std::printf("mean P(node=1) = %.3f\n", sum / out.prob->rows());
        break;
      }
      case api::TaskKind::kTransitionProb: {
        const auto& out = r.as<api::TransitionProbOutput>();
        double sum = 0.0;
        for (int v = 0; v < out.prob->rows(); ++v)
          sum += out.prob->at(v, 0) + out.prob->at(v, 1);
        std::printf("mean toggles/cycle = %.3f\n", sum / out.prob->rows());
        break;
      }
      case api::TaskKind::kPower: {
        const auto& out = r.as<api::PowerOutput>();
        std::printf("predicted %.4f mW (%zu nets)\n", out.report.total_mw(),
                    out.report.nets_matched);
        break;
      }
      case api::TaskKind::kReliability: {
        const auto& out = r.as<api::ReliabilityOutput>();
        std::printf("circuit reliability = %.4f over %zu nodes\n",
                    out.circuit_reliability, out.node_reliability.size());
        break;
      }
      case api::TaskKind::kTestability: {
        const auto& out = r.as<api::TestabilityOutput>();
        double worst = 0.0;
        for (NodeId v = 0; v < aig->num_nodes(); ++v) {
          const double e = out.scoap.fault_effort(v, /*stuck_at=*/false);
          if (e < kScoapInf && e > worst) worst = e;
        }
        std::printf("worst finite SCOAP fault effort = %.0f\n", worst);
        break;
      }
    }
  }

  const auto stats = session.cache_stats();
  std::printf("\nstructure resolves: %llu (hits %llu) — all tasks shared "
              "one prepare\n",
              static_cast<unsigned long long>(stats.structures.misses),
              static_cast<unsigned long long>(stats.structures.hits));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "serve_tasks: %s\n", e.what());
  return 1;
}
