#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/graph.hpp"

namespace deepseq::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // Minimize (x - 3)^2 elementwise via autograd + Adam.
  Var x = make_param(Tensor::scalar(0.0f));
  Adam adam({{"x", x}}, AdamOptions{0.1f, 0.9f, 0.999f, 1e-8f, 0.0f});
  const Tensor target = Tensor::scalar(3.0f);
  for (int step = 0; step < 500; ++step) {
    adam.zero_grad();
    Graph g;
    Var diff = g.sub(x, g.constant(target));
    Var loss = g.mul(diff, diff);
    g.backward(loss);
    adam.step();
  }
  EXPECT_NEAR(x->value.at(0, 0), 3.0f, 0.05f);
}

TEST(Adam, ZeroGradClearsAccumulation) {
  Var x = make_param(Tensor::scalar(1.0f));
  Adam adam({{"x", x}});
  {
    Graph g;
    g.backward(g.mul(x, x));
  }
  EXPECT_NE(x->grad.at(0, 0), 0.0f);
  adam.zero_grad();
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.0f);
}

TEST(Adam, StepWithoutGradIsNoop) {
  Var x = make_param(Tensor::scalar(5.0f));
  Adam adam({{"x", x}});
  adam.step();  // no gradient accumulated yet
  EXPECT_FLOAT_EQ(x->value.at(0, 0), 5.0f);
}

TEST(Adam, FirstStepMovesByLr) {
  // Adam's bias-corrected first step has magnitude ~lr regardless of
  // gradient scale.
  Var x = make_param(Tensor::scalar(0.0f));
  Adam adam({{"x", x}}, AdamOptions{0.01f, 0.9f, 0.999f, 1e-8f, 0.0f});
  x->ensure_grad().fill(123.0f);
  adam.step();
  EXPECT_NEAR(x->value.at(0, 0), -0.01f, 1e-4);
}

TEST(Adam, GradClipBoundsStep) {
  Var x = make_param(Tensor::scalar(0.0f));
  Var y = make_param(Tensor::scalar(0.0f));
  Adam clipped({{"x", x}, {"y", y}},
               AdamOptions{0.01f, 0.9f, 0.999f, 1e-8f, 1.0f});
  x->ensure_grad().fill(1000.0f);
  y->ensure_grad().fill(1000.0f);
  clipped.step();
  // Both entries clipped to global norm 1 (each ~0.707); the Adam update is
  // still ~lr in magnitude but must be finite and sane.
  EXPECT_LT(std::fabs(x->value.at(0, 0)), 0.02f);
  EXPECT_GT(std::fabs(x->value.at(0, 0)), 0.0f);
}

TEST(Adam, CountsSteps) {
  Var x = make_param(Tensor::scalar(0.0f));
  Adam adam({{"x", x}});
  EXPECT_EQ(adam.step_count(), 0);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(Adam, TwoParameterCoupledObjective) {
  // Minimize (a + b - 1)^2 + (a - b)^2 -> a = b = 0.5.
  Var a = make_param(Tensor::scalar(2.0f));
  Var b = make_param(Tensor::scalar(-1.0f));
  Adam adam({{"a", a}, {"b", b}}, AdamOptions{0.05f, 0.9f, 0.999f, 1e-8f, 0.0f});
  for (int step = 0; step < 800; ++step) {
    adam.zero_grad();
    Graph g;
    Var s = g.sub(g.add(a, b), g.constant(Tensor::scalar(1.0f)));
    Var d = g.sub(a, b);
    Var loss = g.add(g.mul(s, s), g.mul(d, d));
    g.backward(loss);
    adam.step();
  }
  EXPECT_NEAR(a->value.at(0, 0), 0.5f, 0.05f);
  EXPECT_NEAR(b->value.at(0, 0), 0.5f, 0.05f);
}

}  // namespace
}  // namespace deepseq::nn
