#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/simulator.hpp"

namespace deepseq {

/// Standard value-change-dump (IEEE 1364 §18) writer for simulator traces:
/// the debugging artifact every waveform viewer (GTKWave etc.) consumes.
/// One VcdWriter records one lane of the bit-parallel simulator; values are
/// emitted only when they change, after an initial full dump at time 0.
class VcdWriter {
 public:
  /// Watches `watch` nodes (all nodes when empty). The header is written
  /// immediately; node names come from unique_node_names().
  VcdWriter(std::ostream& out, const Circuit& c,
            std::vector<NodeId> watch = {});

  /// Record the watched values of `sim` (lane `lane`) at the next
  /// timestep. Call once per cycle, after step().
  void sample(const SequentialSimulator& sim, int lane = 0);

  /// Timesteps recorded so far.
  int timesteps() const { return time_; }

 private:
  std::ostream& out_;
  const Circuit& c_;
  std::vector<NodeId> watch_;
  std::vector<std::string> ids_;     // VCD identifier per watched node
  std::vector<signed char> last_;    // -1 = not yet dumped
  int time_ = 0;
};

/// Convenience: simulate `cycles` of `workload` on `c` and dump all nodes'
/// lane-0 waveform as VCD text.
std::string dump_vcd(const Circuit& c, const Workload& w, int cycles);

}  // namespace deepseq
