// Regenerates Table I: the statistics of the pre-training dataset.
// Paper: 1159 / 1691 / 7684 subcircuits with 148.88 / 272.6 / 211.41 mean
// nodes for ISCAS'89 / ITC'99 / OpenCores. The default bench scale draws a
// smaller corpus from the same family mix; DEEPSEQ_FULL=1 or
// DEEPSEQ_CIRCUITS=10534 regenerates the full-size corpus.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE I", "statistics of the training dataset", cfg);

  const TrainingDataset& ds = shared_dataset(cfg);

  struct PaperRow {
    const char* name;
    int count;
    double mean, std;
  };
  const PaperRow paper[] = {{"ISCAS'89", 1159, 148.88, 87.56},
                            {"ITC'99", 1691, 272.6, 108.33},
                            {"Opencores", 7684, 211.41, 81.37}};

  std::printf("%-12s | %13s | %20s || %13s | %20s\n", "Benchmark",
              "# Subcircuits", "# Nodes (avg+/-std)", "paper #", "paper nodes");
  std::printf("%.*s\n", 92, "-----------------------------------------------"
                            "---------------------------------------------");
  std::size_t total = 0;
  for (std::size_t f = 0; f < ds.stats.size(); ++f) {
    const FamilyStats& fs = ds.stats[f];
    total += static_cast<std::size_t>(fs.count);
    std::printf("%-12s | %13d | %9.2f +/- %6.2f || %13d | %9.2f +/- %6.2f\n",
                fs.name.c_str(), fs.count, fs.node_mean, fs.node_std,
                paper[f].count, paper[f].mean, paper[f].std);
  }
  std::printf("total subcircuits: %zu (paper: 10534)\n", total);

  // Sanity diagnostics a reviewer would want: every sample is a strict
  // sequential AIG with at least one FF.
  std::size_t ffs = 0, nodes = 0;
  for (const auto& s : ds.samples) {
    ffs += s.circuit->ffs().size();
    nodes += s.circuit->num_nodes();
  }
  std::printf("aggregate: %zu nodes, %zu FFs, %.1f%% FF share\n", nodes, ffs,
              100.0 * static_cast<double>(ffs) / static_cast<double>(nodes));
  return 0;
}
