#include "api/session.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/pipeline.hpp"

namespace deepseq::api {
namespace {

double ms_between(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

constexpr int kNumTaskKinds = 6;

/// Per-TaskKind serving metrics on the process-wide registry: submit/
/// complete/fail counters and total/queue/compute latency histograms
/// (recorded in ns; names carry the kind, e.g. "task.submitted.power").
/// Resolved once per process; recording is lock-free.
struct TaskMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Histogram* total_ns;
  obs::Histogram* queue_ns;
  obs::Histogram* compute_ns;
};

const TaskMetrics& task_metrics(TaskKind k) {
  static const std::array<TaskMetrics, kNumTaskKinds> all = [] {
    std::array<TaskMetrics, kNumTaskKinds> a{};
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kNumTaskKinds; ++i) {
      const std::string kind = task_name(static_cast<TaskKind>(i));
      a[i] = TaskMetrics{&reg.counter("task.submitted." + kind),
                         &reg.counter("task.completed." + kind),
                         &reg.counter("task.failed." + kind),
                         &reg.histogram("task.total_ns." + kind),
                         &reg.histogram("task.queue_ns." + kind),
                         &reg.histogram("task.compute_ns." + kind)};
    }
    return a;
  }();
  return all[static_cast<int>(k)];
}

/// Which parts of the embedding pipeline a task consumes.
bool task_needs_embedding(TaskKind k) {
  switch (k) {
    case TaskKind::kEmbedding:
    case TaskKind::kLogicProb:
    case TaskKind::kTransitionProb:
    case TaskKind::kPower:
      return true;
    case TaskKind::kReliability:
    case TaskKind::kTestability:
      return false;
  }
  return true;
}

bool task_needs_state(TaskKind k) { return k == TaskKind::kReliability; }

bool task_needs_regress(TaskKind k) {
  return k == TaskKind::kLogicProb || k == TaskKind::kTransitionProb ||
         k == TaskKind::kPower;
}

}  // namespace

const char* task_name(TaskKind k) {
  switch (k) {
    case TaskKind::kEmbedding: return "embedding";
    case TaskKind::kLogicProb: return "logic-prob";
    case TaskKind::kTransitionProb: return "transition-prob";
    case TaskKind::kPower: return "power";
    case TaskKind::kReliability: return "reliability";
    case TaskKind::kTestability: return "testability";
  }
  return "?";
}

Session::Session(const SessionConfig& config, BackendRegistry& registry)
    : config_(config), registry_(registry), engine_(config.engine) {
  // Fail fast on a misconfigured default and have it ready before the first
  // request (backend construction builds model weights — not something to
  // pay inside a latency-sensitive first submit).
  config_.backend = registry_.resolve(config_.backend, "deepseq");
  (void)backend(config_.backend);
  // Tracing: explicit config wins, else the DEEPSEQ_TRACE env knob. The
  // path is created/truncated NOW so a typo fails construction (the same
  // fail-fast contract as DEEPSEQ_ARTIFACT), not after a whole run.
  trace_path_ = config_.trace_path.empty() ? obs::trace_path_from_env()
                                           : config_.trace_path;
  if (!trace_path_.empty()) {
    obs::validate_trace_path(trace_path_);
    tracing_prev_ = obs::tracing_enabled();
    obs::set_tracing_enabled(true);
  }
}

Session::~Session() {
  if (trace_path_.empty()) return;
  // Capture every span of still-in-flight tasks before dumping (engine_ is
  // destroyed after this body, but its drain is what orders the last
  // recorded events before the export).
  engine_.drain();
  try {
    obs::write_chrome_trace(trace_path_);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[obs] trace dump failed: %s\n", e.what());
  }
  obs::set_tracing_enabled(tracing_prev_);
}

const EmbeddingBackend& Session::backend(const std::string& name) {
  return *backend_handle(name);
}

std::shared_ptr<const EmbeddingBackend> Session::backend_handle(
    const std::string& name) {
  const std::string& key = name.empty() ? config_.backend : name;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    const auto it = backends_.find(key);
    if (it != backends_.end()) return it->second;
  }
  // Construct outside the lock: building a backend means building model
  // weights, and holding backends_mu_ through that would stall every
  // concurrent submit (including ones for already-built backends). If two
  // threads race, both build deterministically identical backends and the
  // first insert wins.
  std::shared_ptr<EmbeddingBackend> created =
      registry_.create(key, config_.backends);
  std::lock_guard<std::mutex> lock(backends_mu_);
  return backends_.emplace(key, std::move(created)).first->second;
}

std::uint64_t Session::reload_weights(
    std::shared_ptr<const artifact::Artifact> artifact,
    const std::string& name) {
  if (artifact == nullptr)
    throw Error("Session::reload_weights: null artifact");
  const std::string key = name.empty() ? config_.backend : name;
  // Build the replacement through the same registry path as construction,
  // so kind/architecture mismatches fail here, before anything is swapped.
  BackendOptions options = config_.backends;
  options.artifact = std::move(artifact);
  // One push at a time: without this, two concurrent reloads could both
  // pass the no-op guard and swap in arbitrary order, leaving one caller
  // holding a "new serving fingerprint" that is not actually live.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::shared_ptr<EmbeddingBackend> replacement =
      registry_.create(key, options);
  const std::uint64_t fingerprint = replacement->info().fingerprint;
  // A push that does not change the serving fingerprint cannot be told
  // apart from a factory that ignored BackendOptions::artifact (a custom
  // registration that never reads it) — fail fast instead of reporting a
  // successful push that served nothing new. Only an already-built
  // instance can be "live"; a never-served name has nothing to compare.
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    const auto it = backends_.find(key);
    if (it != backends_.end() &&
        it->second->info().fingerprint == fingerprint)
      throw Error("Session::reload_weights: rebuilding '" + key +
                  "' from the artifact did not change the serving "
                  "fingerprint — either these exact weights are already "
                  "live, or the '" + key +
                  "' factory ignores BackendOptions::artifact");
  }
  // Let already-submitted batches finish on the weights they were submitted
  // against (each in-flight completion owns a handle on its instance, so
  // the swap below can never pull weights out from under a forward pass).
  engine_.drain();
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    backends_[key] = std::move(replacement);
  }
  // Swap events are rare and operationally interesting: always count, and
  // drop an instant marker into the trace when one is being recorded.
  obs::Registry::global().counter("session.reload_weights").inc();
  if (obs::tracing_enabled()) {
    obs::TraceEvent e;
    e.name = "reload_weights";
    e.cat = "session";
    e.ph = 'i';
    e.ts_ns = obs::trace_now_ns();
    e.ctx.backend_fingerprint = fingerprint;
    obs::TraceSink::global().record(e);
  }
  return fingerprint;
}

runtime::EmbeddingRequest Session::to_engine_request(
    const TaskRequest& request, const EmbeddingBackend& be) const {
  if (!request.circuit)
    throw Error("Session: request without a circuit");
  if (task_needs_regress(request.task) && !be.info().supports_regress)
    throw Error(std::string("task '") + task_name(request.task) +
                "' needs regress heads, which backend '" + be.info().name +
                "' does not provide");
  if (request.task == TaskKind::kReliability && !be.info().supports_reliability)
    throw Error(std::string("backend '") + be.info().name +
                "' does not support the reliability task");
  runtime::EmbeddingRequest er;
  er.circuit = request.circuit;
  er.workload = request.workload;
  er.backend = &be;
  er.init_seed = request.init_seed;
  er.want_embedding = task_needs_embedding(request.task);
  er.want_state = task_needs_state(request.task);
  return er;
}

TaskResult Session::finish(const TaskRequest& request,
                           const EmbeddingBackend& be,
                           runtime::EmbeddingResult&& er) {
  const auto head_start = std::chrono::steady_clock::now();
  TaskResult result;
  result.task = request.task;
  result.backend = be.info().name;
  result.structure = er.structure;
  result.structure_cache_hit = er.structure_cache_hit;
  result.embedding_cache_hit = er.embedding_cache_hit;
  result.queue_ms = er.queue_ms;

  // Probability heads are cached under the request's EmbeddingKey, beside
  // the embedding itself: the shared_ptr aliasing below hands out views into
  // the cached Regression without copying.
  const auto regression = [&]() {
    return engine_.regress_cached(er.key, be, *er.embedding,
                                  &result.regression_cache_hit);
  };

  switch (request.task) {
    case TaskKind::kEmbedding: {
      result.output = EmbeddingOutput{std::move(er.embedding)};
      break;
    }
    case TaskKind::kLogicProb: {
      auto reg = regression();
      result.output =
          LogicProbOutput{std::shared_ptr<const nn::Tensor>(reg, &reg->lg)};
      break;
    }
    case TaskKind::kTransitionProb: {
      auto reg = regression();
      result.output =
          TransitionProbOutput{std::shared_ptr<const nn::Tensor>(reg, &reg->tr)};
      break;
    }
    case TaskKind::kPower: {
      const auto reg = regression();
      PowerOutput out;
      const std::size_t n = request.circuit->num_nodes();
      out.logic1.resize(n);
      out.toggle_rate.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        const int row = static_cast<int>(v);
        out.logic1[v] = reg->lg.at(row, 0);
        out.toggle_rate[v] = reg->tr.at(row, 0) + reg->tr.at(row, 1);
      }
      out.report = power_from_activity(*request.circuit, out.logic1,
                                       out.toggle_rate,
                                       config_.power_duration);
      result.output = std::move(out);
      break;
    }
    case TaskKind::kReliability: {
      ReliabilityEstimate est = be.reliability(*er.state, request.workload,
                                               /*pos=*/{}, request.init_seed);
      result.output = ReliabilityOutput{est.circuit_reliability,
                                        std::move(est.node_reliability)};
      break;
    }
    case TaskKind::kTestability: {
      result.output =
          TestabilityOutput{compute_scoap(*request.circuit, config_.scoap)};
      break;
    }
  }

  const auto head_end = std::chrono::steady_clock::now();
  const double head_ms = ms_between(head_start, head_end);
  result.compute_ms = er.compute_ms + head_ms;
  result.total_ms = er.total_ms + head_ms;

  // Completion accounting: counters and latency histograms per kind, plus
  // the last two spans of the task's trace chain — "head" (this task head)
  // and the whole-task "task" span (submit -> fulfilled) that ties the
  // chain together in the Chrome trace.
  const TaskMetrics& metrics = task_metrics(request.task);
  metrics.completed->inc();
  metrics.total_ns->record_ms(result.total_ms);
  metrics.queue_ns->record_ms(result.queue_ms);
  metrics.compute_ns->record_ms(result.compute_ms);
  if (er.trace.kind != nullptr && obs::tracing_enabled()) {
    obs::TraceEvent head;
    head.name = "head";
    head.ts_ns = obs::to_trace_ns(head_start);
    head.dur_ns = obs::to_trace_ns(head_end) - head.ts_ns;
    head.ctx = er.trace;
    head.structure = er.structure.digest;
    head.arg_name[0] = "regression_cache_hit";
    head.arg[0] = result.regression_cache_hit ? 1 : 0;
    obs::TraceSink::global().record(head);

    obs::TraceEvent task;
    task.name = "task";
    const std::uint64_t end_ns = obs::to_trace_ns(head_end);
    const auto total_ns = static_cast<std::uint64_t>(result.total_ms * 1e6);
    task.ts_ns = end_ns > total_ns ? end_ns - total_ns : 0;
    task.dur_ns = end_ns - task.ts_ns;
    task.ctx = er.trace;
    task.structure = er.structure.digest;
    task.arg_name[0] = "structure_cache_hit";
    task.arg[0] = result.structure_cache_hit ? 1 : 0;
    task.arg_name[1] = "embedding_cache_hit";
    task.arg[1] = result.embedding_cache_hit ? 1 : 0;
    obs::TraceSink::global().record(task);
  }
  return result;
}

std::future<TaskResult> Session::submit(TaskRequest request) {
  const TaskMetrics& metrics = task_metrics(request.task);
  metrics.submitted->inc();
  runtime::EmbeddingRequest er;
  std::shared_ptr<const EmbeddingBackend> be;
  try {
    // The completion owns the handle: the instance this task was submitted
    // against stays alive (and its weights untouched) through the forward
    // pass and task head even if reload_weights swaps the name meanwhile.
    be = backend_handle(request.backend);
    er = to_engine_request(request, *be);
  } catch (...) {
    // Fail-fast rejections (unknown backend, unsupported task/backend
    // combination) still balance: submitted == completed + failed.
    metrics.failed->inc();
    throw;
  }
  er.trace.kind = task_name(request.task);
  er.trace.backend_fingerprint = be->info().fingerprint;
  if (obs::tracing_enabled()) {
    // Task ids exist for span attribution only: the global id counter is a
    // shared cache line, so the untraced hot path never touches it.
    er.trace.task_id = obs::next_task_id();
    obs::TraceEvent e;
    e.name = "submit";
    e.ph = 'i';
    e.ts_ns = obs::trace_now_ns();
    e.ctx = er.trace;
    obs::TraceSink::global().record(e);
  }
  return engine_.submit_then(
      std::move(er),
      [this, request = std::move(request),
       be = std::move(be)](runtime::EmbeddingResult&& result) {
        return finish(request, *be, std::move(result));
      });
}

TaskResult Session::run_sync(const TaskRequest& request) {
  const TaskMetrics& metrics = task_metrics(request.task);
  metrics.submitted->inc();
  try {
    const std::shared_ptr<const EmbeddingBackend> be =
        backend_handle(request.backend);
    runtime::EmbeddingRequest er = to_engine_request(request, *be);
    er.trace.kind = task_name(request.task);
    er.trace.backend_fingerprint = be->info().fingerprint;
    if (obs::tracing_enabled()) er.trace.task_id = obs::next_task_id();
    return finish(request, *be, engine_.run_sync(std::move(er)));
  } catch (...) {
    metrics.failed->inc();
    throw;
  }
}

void Session::flush() { engine_.flush(); }

void Session::drain() { engine_.drain(); }

}  // namespace deepseq::api
