#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "nn/op.hpp"

namespace deepseq::nn {

/// One kernel step: an op plus the slice it covers — a row range for
/// row-parallel kernels (matmul, gather, elementwise, ...), a column range
/// for the segment reductions (whose output rows are scatter targets but
/// whose columns are independent), or the full kernel ({0, 0}) for
/// non-splittable kinds (segment_softmax, the scalar losses). Steps of
/// concurrent tasks write disjoint output regions, so they can run on
/// different threads with bit-identical results: every output element is
/// produced by exactly one step using the same inner-loop order as the
/// sequential kernel.
///
/// `role` selects the kernel: kRoleForward for the forward pass; backward
/// plans (built by Executor::run_backward) use kRolePrep / kRoleAll /
/// part indices >= 0 (one part per gradient target of the op).
struct Chunk {
  Op* op = nullptr;
  int begin = 0;
  int end = 0;
  int role = -1;
};

inline constexpr int kRoleForward = -1;
/// Backward: allocate the op's input gradients (runs alone, before parts).
inline constexpr int kRolePrep = -2;
/// Backward: prep + every part at full range, sequentially (single-chunk ops
/// and aliased operands, which must keep the sequential scatter order).
inline constexpr int kRoleAll = -3;

/// One schedulable unit: a run of steps [first, first + count) in the
/// owning Plan that a single thread executes sequentially, end to end. A
/// fused chain of ops becomes one task (or K row-range tasks when the chain
/// is uniformly row-splittable); an unfused op's chunks become one
/// single-step task each.
struct ChainTask {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::uint64_t work = 0;
};

/// A cut wave: tasks [first_task, first_task + task_count) that are mutually
/// independent — no task's chain consumes another same-cut task's output —
/// so the executor may run them in any order or concurrently. One barrier
/// separates consecutive cuts; cuts exist only at true fan-in/fan-out points
/// of the contracted chain DAG.
struct CutWave {
  std::uint32_t first_task = 0;
  std::uint32_t task_count = 0;
  std::uint64_t work = 0;
};

/// Estimated scalar operations of one op's forward kernel. Drives chunk
/// sizing, fusion decisions and the inline/parallel decision only — never
/// affects results.
std::uint64_t op_work(const Op& op);

/// Extent of the op's parallel axis (output rows, or columns for the
/// segment reductions); 0 when the kernel must run as one chunk.
int op_parallel_extent(const Op& op);

/// Minimum estimated work per additional chunk: kernels below this run as a
/// single chunk, and one chunk is added per multiple of it (capped by the
/// executor's thread count). Deterministic in the op alone, so a given
/// (batch, thread-count) pair always produces the same chunk boundaries.
inline constexpr std::uint64_t kSplitWork = 8192;

/// The shared splitting rule (forward planning and backward parts): chunks
/// for a kernel of `work` estimated scalar ops over `extent` rows.
int chunk_count(std::uint64_t work, int extent, int threads);

/// DEEPSEQ_NN_FUSE knob (strict env_int): 0 falls back to unfused
/// one-chunk-task-per-op wave plans (PR 3 behavior) for A/B benching and
/// bisection; any other value (and unset) enables chain fusion. Read per
/// flush, so a process can toggle it between runs.
bool nn_fuse_from_env();

/// Chain-length histogram buckets: 1, 2, 3, 4, 5-8, 9-16, 17-32, 33+.
inline constexpr int kChainHistBuckets = 8;
int chain_len_bucket(int len);
const char* chain_len_bucket_name(int bucket);

/// Structural counters of one built plan, for benches and the CI gate.
struct PlanStats {
  std::uint32_t ops = 0;        // ops planned
  std::uint32_t chains = 0;     // clusters (fused chains + singletons)
  std::uint32_t fused_ops = 0;  // ops riding inside a multi-op chain
  std::uint32_t slab_gather_rows = 0;   // gather rows served from a state slab
  std::uint32_t slab_scatter_rows = 0;  // rows scattered into a state slab
  std::array<std::uint32_t, kChainHistBuckets> chain_len_hist{};
};

/// One node of the contracted chain DAG — a planned cluster and its place in
/// the dependency-counted schedule. A node's tasks (row-split slices of an
/// aligned chain, or chunks of a lone op) are mutually independent and
/// become runnable together: the executor seeds a node's countdown at
/// `in_tasks` (the summed task_count of every producer node), decrements it
/// once per finished producer task, and on zero publishes tasks
/// [first_task, first_task + task_count) straight to the claim queue.
/// `consumers_[consumers_begin, consumers_end)` lists the nodes this one
/// feeds. Nodes are emitted producers-first (cut-level order), so ids of
/// producers are always smaller.
struct DepNode {
  std::uint32_t first_task = 0;
  std::uint32_t task_count = 0;
  std::uint32_t consumers_begin = 0;
  std::uint32_t consumers_end = 0;
  std::uint32_t in_tasks = 0;
};

/// The plan layer: a cut-ordered chain-task schedule. build() runs a
/// union-find "gather-cut" pass over the recorded op DAG: an op is unioned
/// into a producer cluster when every escaping edge of that cluster points
/// at it (which provably keeps the contracted DAG acyclic), either
/// preserving row-splittability (aligned chains, which emit K row-range
/// tasks sized for `threads` workers) or sequentially when no parallel
/// slots are lost. Barriers remain only between cut waves — the true
/// fan-in/fan-out points. Executor::run_backward assembles backward plans
/// through the same container.
class Plan {
 public:
  static Plan build(const std::vector<Op*>& ops, int threads, bool fuse);

  bool empty() const { return steps_.empty(); }
  const std::vector<CutWave>& cuts() const { return cuts_; }
  const std::vector<ChainTask>& tasks() const { return tasks_; }
  const Chunk* steps() const { return steps_.data(); }
  std::size_t step_count() const { return steps_.size(); }

  /// One barrier per cut wave: the structural quantity chain fusion shrinks.
  std::size_t barrier_count() const { return cuts_.size(); }
  const PlanStats& stats() const { return stats_; }

  // ---- dependency-counted schedule ----------------------------------------
  /// True once the dependency layer is populated (build() always links it;
  /// hand-assembled plans opt in via link_cuts_sequential()).
  bool dep_linked() const { return dep_linked_; }
  const std::vector<DepNode>& dep_nodes() const { return dep_nodes_; }
  const std::vector<std::uint32_t>& dep_consumers() const { return consumers_; }
  /// Owning DepNode id per task (parallel to tasks()).
  const std::vector<std::uint32_t>& task_node() const { return task_node_; }
  /// Global synchronization points a dep-scheduled execution performs: the
  /// single end-of-flush completion wait (0 for an empty plan). Contrast
  /// with barrier_count(), which the per-cut barrier scheduler pays. Both
  /// are structural — independent of how many cores actually run the plan.
  std::size_t global_syncs() const { return steps_.empty() ? 0 : 1; }
  /// Tasks released by a finishing producer (in_tasks > 0 nodes) under
  /// dependency-counted scheduling; the remainder are runnable at flush
  /// start.
  std::uint32_t released_task_count() const;
  /// Link consecutive cuts as a dependency chain (cut w feeds cut w+1):
  /// exactly the barrier schedule's ordering, as one DepNode per cut. The
  /// backward planner uses this — per-op scatter accumulation order must
  /// survive — trading per-cut barriers for countdown releases with one
  /// end-of-flush sync.
  void link_cuts_sequential();

  std::uint64_t total_work() const;
  std::uint32_t max_cut_tasks() const;

  // ---- assembly (build() and the backward planner) -------------------------
  void reserve(std::size_t cuts, std::size_t tasks, std::size_t steps);
  CutWave& add_cut() {
    cuts_.push_back(CutWave{static_cast<std::uint32_t>(tasks_.size()), 0, 0});
    return cuts_.back();
  }
  ChainTask& add_task(std::uint64_t work) {
    tasks_.push_back(
        ChainTask{static_cast<std::uint32_t>(steps_.size()), 0, work});
    ++cuts_.back().task_count;
    cuts_.back().work += work;
    return tasks_.back();
  }
  void add_step(const Chunk& c) {
    steps_.push_back(c);
    ++tasks_.back().count;
  }
  /// Append a step to the current task, crediting `work` to it (the
  /// backward planner grows fused sequential runs this way).
  void extend_task(const Chunk& c, std::uint64_t work) {
    add_step(c);
    tasks_.back().work += work;
    cuts_.back().work += work;
  }

 private:
  std::vector<Chunk> steps_;
  std::vector<ChainTask> tasks_;
  std::vector<CutWave> cuts_;
  std::vector<DepNode> dep_nodes_;
  std::vector<std::uint32_t> consumers_;  // flat consumer lists (CSR)
  std::vector<std::uint32_t> task_node_;  // task index -> DepNode id
  bool dep_linked_ = false;
  PlanStats stats_;
};

}  // namespace deepseq::nn
