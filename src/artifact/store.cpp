#include "artifact/store.hpp"

#include <algorithm>
#include <cstdio>

#include "common/env.hpp"
#include "common/error.hpp"

namespace deepseq::artifact {
namespace fs = std::filesystem;

namespace {

std::string hash_hex16(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Store Store::open(const std::string& dir) {
  if (!fs::is_directory(dir))
    throw Error("artifact::Store: '" + dir + "' is not a directory");
  Store store;
  store.dir_ = dir;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".dsqa") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    std::shared_ptr<const Artifact> art;
    try {
      // load_artifact re-verifies the stored content hash — a store that
      // opens serves only bit-exact artifacts.
      art = std::make_shared<const Artifact>(load_artifact(path));
    } catch (const std::exception& e) {
      throw Error("artifact::Store: failed to load '" + path +
                  "': " + e.what());
    }
    StoreEntry se;
    // Logical name = stem up to the first '@' — "model@1a2b.dsqa" and
    // "model.dsqa" are two versions of "model", so a push can drop a new
    // file next to the old one without renaming anything.
    const std::string stem = fs::path(path).stem().string();
    se.name = stem.substr(0, stem.find('@'));
    se.content_hash = art->manifest.content_hash;
    se.hash_hex = hash_hex16(se.content_hash);
    se.path = path;
    se.backend_kind = art->manifest.backend_kind;
    se.mtime = fs::last_write_time(path);
    // Identical (name, hash) from two scans of the same file cannot happen
    // (paths are unique); identical content under two names is two entries.
    store.entries_.push_back(std::move(se));
    store.artifacts_.push_back(std::move(art));
  }
  // Sort entries (and the parallel artifact column) by (name, hash).
  std::vector<std::size_t> order(store.entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const StoreEntry& ea = store.entries_[a];
    const StoreEntry& eb = store.entries_[b];
    return ea.name != eb.name ? ea.name < eb.name
                              : ea.hash_hex < eb.hash_hex;
  });
  std::vector<StoreEntry> entries;
  std::vector<std::shared_ptr<const Artifact>> artifacts;
  entries.reserve(order.size());
  artifacts.reserve(order.size());
  for (std::size_t i : order) {
    entries.push_back(std::move(store.entries_[i]));
    artifacts.push_back(std::move(store.artifacts_[i]));
  }
  store.entries_ = std::move(entries);
  store.artifacts_ = std::move(artifacts);
  return store;
}

const StoreEntry& Store::resolve_entry(const std::string& ref) const {
  std::string name = ref;
  std::string version = "latest";
  if (const auto at = ref.find('@'); at != std::string::npos) {
    name = ref.substr(0, at);
    version = ref.substr(at + 1);
  }
  if (name.empty() || version.empty())
    throw Error("artifact::Store: malformed ref '" + ref +
                "' (want name, name@latest or name@<hex hash>)");
  std::vector<std::size_t> named;
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].name == name) named.push_back(i);
  if (named.empty()) {
    std::string known;
    for (const StoreEntry& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name + "@" + e.hash_hex;
    }
    throw Error("artifact::Store: no artifact named '" + name + "' in '" +
                dir_ + "'" +
                (known.empty() ? " (store is empty)" : "; have: " + known));
  }
  if (version == "latest") {
    std::size_t best = named[0];
    for (std::size_t i : named) {
      if (entries_[i].mtime > entries_[best].mtime ||
          (entries_[i].mtime == entries_[best].mtime &&
           entries_[i].hash_hex > entries_[best].hash_hex))
        best = i;
    }
    return entries_[best];
  }
  // Hash (prefix) match — must be unique.
  std::vector<std::size_t> matches;
  for (std::size_t i : named)
    if (entries_[i].hash_hex.rfind(version, 0) == 0) matches.push_back(i);
  if (matches.size() == 1) return entries_[matches[0]];
  std::string versions;
  for (std::size_t i : named) {
    if (!versions.empty()) versions += ", ";
    versions += entries_[i].hash_hex;
  }
  if (matches.empty())
    throw Error("artifact::Store: no version of '" + name + "' matches '" +
                version + "'; have: " + versions);
  throw Error("artifact::Store: hash prefix '" + version + "' of '" + name +
              "' is ambiguous; have: " + versions);
}

std::shared_ptr<const Artifact> Store::resolve(const std::string& ref) const {
  const StoreEntry& entry = resolve_entry(ref);
  return artifacts_[static_cast<std::size_t>(&entry - entries_.data())];
}

std::string Store::manifest_json() const {
  std::string out = "{\"dir\":\"" + json_escape(dir_) + "\",\"entries\":[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const StoreEntry& e = entries_[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + json_escape(e.name) + "\",\"hash\":\"" +
           e.hash_hex + "\",\"kind\":\"" + json_escape(e.backend_kind) +
           "\",\"path\":\"" + json_escape(e.path) + "\"}";
  }
  out += "]}";
  return out;
}

std::shared_ptr<const Store> store_from_env() {
  const std::string dir = env_string("DEEPSEQ_ARTIFACT_DIR", "");
  if (dir.empty()) return nullptr;
  try {
    return std::make_shared<const Store>(Store::open(dir));
  } catch (const std::exception& e) {
    throw Error(std::string("DEEPSEQ_ARTIFACT_DIR: ") + e.what());
  }
}

}  // namespace deepseq::artifact
