#include "api/session.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "api/backends.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/scoap.hpp"
#include "nn/graph.hpp"
#include "power/pipeline.hpp"
#include "reliability/reliability_model.hpp"

namespace deepseq::api {
namespace {

ModelConfig small_model() { return ModelConfig::deepseq(/*hidden=*/12, /*t=*/2); }

PaceConfig small_pace() {
  PaceConfig cfg;
  cfg.hidden_dim = 12;
  cfg.layers = 2;
  return cfg;
}

SessionConfig small_session(int threads = 2) {
  SessionConfig cfg;
  cfg.engine.threads = threads;
  cfg.backends.model = small_model();
  cfg.backends.pace = small_pace();
  return cfg;
}

std::shared_ptr<const Circuit> shared_aig(std::uint64_t seed) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 5;
  spec.num_ffs = 4;
  spec.num_gates = 60;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return std::make_shared<const Circuit>(generate_circuit(spec, rng));
}

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TaskRequest make_request(std::shared_ptr<const Circuit> circuit, TaskKind task,
                         std::uint64_t workload_seed = 9,
                         std::uint64_t init_seed = 7) {
  Rng rng(workload_seed);
  TaskRequest req;
  req.workload = random_workload(*circuit, rng);
  req.circuit = std::move(circuit);
  req.task = task;
  req.init_seed = init_seed;
  return req;
}

// ---- parity suite: Session results vs direct pipeline calls ----------------
//
// Every task served through the Session must be bit-identical to calling
// the underlying model / power / reliability / SCOAP pipeline directly on
// the same circuit + workload + seed (the engines are deterministic, and
// the serving layer must add nothing but scheduling).

TEST(SessionParity, EmbeddingMatchesDirectModelCall) {
  Session session(small_session());
  const auto circuit = shared_aig(1);
  const TaskRequest req = make_request(circuit, TaskKind::kEmbedding);

  const TaskResult res = session.run_sync(req);
  EXPECT_EQ(res.backend, "deepseq");

  const DeepSeqModel ref(small_model());
  nn::Graph g(false);
  const nn::Tensor want =
      ref.embed(g, build_circuit_graph(*circuit), req.workload, req.init_seed)
          ->value;
  EXPECT_TRUE(bit_identical(*res.as<EmbeddingOutput>().embedding, want));
}

TEST(SessionParity, PaceEmbeddingMatchesDirectEncoderCall) {
  Session session(small_session());
  const auto circuit = shared_aig(2);
  TaskRequest req = make_request(circuit, TaskKind::kEmbedding);
  req.backend = "pace";

  const TaskResult res = session.run_sync(req);
  EXPECT_EQ(res.backend, "pace");

  const PaceEncoder ref(small_pace());
  nn::Graph g(false);
  const nn::Tensor want =
      ref.embed(g, build_pace_graph(*circuit, small_pace()), req.workload,
                req.init_seed)
          ->value;
  EXPECT_TRUE(bit_identical(*res.as<EmbeddingOutput>().embedding, want));
}

TEST(SessionParity, ProbabilityTasksMatchDirectRegressHeads) {
  Session session(small_session());
  const auto circuit = shared_aig(3);

  const TaskResult lg =
      session.run_sync(make_request(circuit, TaskKind::kLogicProb));
  const TaskResult tr =
      session.run_sync(make_request(circuit, TaskKind::kTransitionProb));

  const DeepSeqModel ref(small_model());
  const TaskRequest req = make_request(circuit, TaskKind::kLogicProb);
  nn::Graph g(false);
  const auto out = ref.regress(
      g, ref.embed(g, build_circuit_graph(*circuit), req.workload,
                   req.init_seed));
  EXPECT_TRUE(bit_identical(*lg.as<LogicProbOutput>().prob, out.lg->value));
  EXPECT_TRUE(
      bit_identical(*tr.as<TransitionProbOutput>().prob, out.tr->value));
}

TEST(SessionParity, PowerMatchesDirectPipelineCall) {
  SessionConfig cfg = small_session();
  Session session(cfg);
  const auto circuit = shared_aig(4);
  const TaskRequest req = make_request(circuit, TaskKind::kPower);

  const TaskResult res = session.run_sync(req);
  const auto& out = res.as<PowerOutput>();

  // Direct path: regress heads -> per-node activity -> the power pipeline's
  // SAIF + analyzer artifact flow.
  const DeepSeqModel ref(small_model());
  nn::Graph g(false);
  const auto pred = ref.regress(
      g, ref.embed(g, build_circuit_graph(*circuit), req.workload,
                   req.init_seed));
  const std::size_t n = circuit->num_nodes();
  std::vector<double> logic1(n), rate(n);
  for (std::size_t v = 0; v < n; ++v) {
    const int row = static_cast<int>(v);
    logic1[v] = pred.lg->value.at(row, 0);
    rate[v] = pred.tr->value.at(row, 0) + pred.tr->value.at(row, 1);
  }
  const PowerReport want =
      power_from_activity(*circuit, logic1, rate, cfg.power_duration);

  EXPECT_EQ(out.logic1, logic1);
  EXPECT_EQ(out.toggle_rate, rate);
  EXPECT_EQ(out.report.total_watts, want.total_watts);  // bit-identical
  EXPECT_EQ(out.report.combinational_watts, want.combinational_watts);
  EXPECT_EQ(out.report.sequential_watts, want.sequential_watts);
  EXPECT_EQ(out.report.nets_matched, want.nets_matched);
  EXPECT_EQ(out.report.nets_missing, 0u);
}

TEST(SessionParity, ReliabilityMatchesDirectModelEstimate) {
  Session session(small_session());
  const auto circuit = shared_aig(5);
  const TaskRequest req = make_request(circuit, TaskKind::kReliability);

  const TaskResult res = session.run_sync(req);
  const auto& out = res.as<ReliabilityOutput>();

  const DeepSeqModel ref(small_model());
  const ReliabilityModel ref_rel(ref);
  const auto want = ref_rel.estimate(
      build_circuit_graph(*circuit), req.workload,
      std::vector<NodeId>(circuit->pos().begin(), circuit->pos().end()),
      req.init_seed);
  EXPECT_EQ(out.circuit_reliability, want.circuit_reliability);
  EXPECT_EQ(out.node_reliability, want.node_reliability);
}

TEST(SessionParity, TestabilityMatchesDirectScoapCall) {
  Session session(small_session());
  const auto circuit =
      std::make_shared<const Circuit>(decompose_to_aig(iscas89_s27()).aig);

  const TaskResult res =
      session.run_sync(make_request(circuit, TaskKind::kTestability));
  const auto& out = res.as<TestabilityOutput>();

  const ScoapMeasures want = compute_scoap(*circuit);
  EXPECT_EQ(out.scoap.cc0, want.cc0);
  EXPECT_EQ(out.scoap.cc1, want.cc1);
  EXPECT_EQ(out.scoap.co, want.co);

  // Testability reads the circuit alone: no backend prepare, no forward
  // pass — the caches are never touched.
  const auto stats = session.cache_stats();
  EXPECT_EQ(stats.structures.misses, 0u);
  EXPECT_EQ(stats.embeddings.misses, 0u);
}

// ---- serving behaviour ------------------------------------------------------

TEST(Session, SubmitMatchesRunSyncBitIdentical) {
  Session a(small_session()), b(small_session());
  const auto circuit = shared_aig(6);
  const TaskRequest req = make_request(circuit, TaskKind::kLogicProb);

  auto f = a.submit(req);
  a.drain();
  const TaskResult via_pool = f.get();
  const TaskResult via_sync = b.run_sync(req);
  EXPECT_TRUE(bit_identical(*via_pool.as<LogicProbOutput>().prob,
                            *via_sync.as<LogicProbOutput>().prob));
}

TEST(Session, TasksShareOneStructureResolve) {
  Session session(small_session());
  const auto circuit = shared_aig(7);

  std::vector<std::future<TaskResult>> futures;
  for (const TaskKind task :
       {TaskKind::kEmbedding, TaskKind::kLogicProb, TaskKind::kTransitionProb,
        TaskKind::kPower, TaskKind::kReliability})
    futures.push_back(session.submit(make_request(circuit, task)));
  session.drain();
  for (auto& f : futures) (void)f.get();

  const auto stats = session.cache_stats();
  EXPECT_EQ(stats.structures.misses, 1u);  // one prepare served every task
  // One forward pass fed all embedding-consuming tasks.
  EXPECT_EQ(stats.embeddings.misses, 1u);
  EXPECT_GE(stats.embeddings.hits, 3u);
}

TEST(Session, UnsupportedTaskFailsFastWithClearError) {
  Session session(small_session());
  TaskRequest req = make_request(shared_aig(8), TaskKind::kLogicProb);
  req.backend = "pace";
  try {
    (void)session.submit(std::move(req));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pace"), std::string::npos) << msg;
    EXPECT_NE(msg.find("regress"), std::string::npos) << msg;
  }

  TaskRequest rel = make_request(shared_aig(8), TaskKind::kReliability);
  rel.backend = "pace";
  EXPECT_THROW((void)session.submit(std::move(rel)), Error);
}

TEST(Session, UnknownBackendNameFailsFast) {
  Session session(small_session());
  TaskRequest req = make_request(shared_aig(9), TaskKind::kEmbedding);
  req.backend = "no-such-backend";
  EXPECT_THROW((void)session.submit(std::move(req)), Error);

  SessionConfig bad = small_session();
  bad.backend = "also-missing";
  EXPECT_THROW(Session{bad}, Error);
}

TEST(Session, ComputeErrorsSurfaceThroughFuture) {
  Session session(small_session());
  TaskRequest req;
  req.circuit = shared_aig(10);
  req.workload.pi_prob = {0.5};  // wrong PI count
  req.task = TaskKind::kEmbedding;
  auto f = session.submit(std::move(req));
  session.flush();
  EXPECT_THROW(f.get(), Error);
}

TEST(Session, ResultCarriesTaskMetadata) {
  Session session(small_session());
  const auto circuit = shared_aig(11);
  const TaskResult res =
      session.run_sync(make_request(circuit, TaskKind::kEmbedding));
  EXPECT_EQ(res.task, TaskKind::kEmbedding);
  EXPECT_EQ(res.backend, "deepseq");
  EXPECT_EQ(res.structure, structural_hash(*circuit));
  EXPECT_FALSE(res.embedding_cache_hit);
  EXPECT_GE(res.total_ms, res.compute_ms);
  // Wrong-type access throws.
  EXPECT_THROW((void)res.as<PowerOutput>(), std::bad_variant_access);
}

TEST(Session, WarmProbabilityTrafficSkipsRegressionHeads) {
  Session session(small_session());
  const auto circuit = shared_aig(17);
  const TaskRequest req = make_request(circuit, TaskKind::kLogicProb);

  const TaskResult cold = session.run_sync(req);
  EXPECT_FALSE(cold.regression_cache_hit);

  // Same circuit + workload + seed: embedding AND regression heads both
  // served from cache, outputs bit-identical to the cold pass.
  const TaskResult warm = session.run_sync(req);
  EXPECT_TRUE(warm.embedding_cache_hit);
  EXPECT_TRUE(warm.regression_cache_hit);
  EXPECT_TRUE(bit_identical(*cold.as<LogicProbOutput>().prob,
                            *warm.as<LogicProbOutput>().prob));

  // The transition-prob task shares the same cached Regression entry.
  const TaskResult tr =
      session.run_sync(make_request(circuit, TaskKind::kTransitionProb));
  EXPECT_TRUE(tr.regression_cache_hit);

  const auto stats = session.cache_stats();
  EXPECT_GE(stats.regressions.hits, 2u);

  // A different workload misses both layers.
  const TaskResult other = session.run_sync(
      make_request(circuit, TaskKind::kLogicProb, /*workload_seed=*/21));
  EXPECT_FALSE(other.embedding_cache_hit);
  EXPECT_FALSE(other.regression_cache_hit);
}

TEST(Session, BackendsReportThreadedEmbedCapability) {
  Session session(small_session());
  EXPECT_TRUE(session.backend("deepseq").info().threaded_embed);
  EXPECT_TRUE(session.backend("pace").info().threaded_embed);
  EXPECT_GE(session.num_threads(), 1);
}

}  // namespace
}  // namespace deepseq::api
