#include "netlist/circuit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace deepseq {
namespace {

Circuit tiny() {
  // a, b -> AND -> NOT -> PO, with an FF fed by the AND.
  Circuit c("tiny");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  const NodeId n = c.add_not(g, "n");
  c.add_ff(g, "q");
  c.add_po(n, "out");
  return c;
}

TEST(Circuit, BasicConstruction) {
  const Circuit c = tiny();
  EXPECT_EQ(c.num_nodes(), 5u);
  EXPECT_EQ(c.pis().size(), 2u);
  EXPECT_EQ(c.ffs().size(), 1u);
  EXPECT_EQ(c.pos().size(), 1u);
  EXPECT_NO_THROW(c.validate());
}

TEST(Circuit, TypeCounts) {
  const auto counts = tiny().type_counts();
  EXPECT_EQ(counts[static_cast<int>(GateType::kPi)], 2u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kAnd)], 1u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kNot)], 1u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kFf)], 1u);
}

TEST(Circuit, FindByName) {
  const Circuit c = tiny();
  EXPECT_NE(c.find_by_name("g"), kNullNode);
  EXPECT_EQ(c.type(c.find_by_name("q")), GateType::kFf);
  EXPECT_EQ(c.find_by_name("nope"), kNullNode);
}

TEST(Circuit, FanoutsIncludeFfReads) {
  const Circuit c = tiny();
  const NodeId g = c.find_by_name("g");
  const auto fo = c.fanouts();
  EXPECT_EQ(fo[g].size(), 2u);  // NOT and FF both read g
}

TEST(Circuit, WrongArityThrows) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  EXPECT_THROW(c.add_gate(GateType::kAnd, {a}, "bad"), CircuitError);
  EXPECT_THROW(c.add_gate(GateType::kNot, {a, a}, "bad"), CircuitError);
}

TEST(Circuit, AddGateRejectsPiAndFf) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  EXPECT_THROW(c.add_gate(GateType::kPi, {}, "bad"), CircuitError);
  EXPECT_THROW(c.add_gate(GateType::kFf, {a}, "bad"), CircuitError);
}

TEST(Circuit, UnconnectedFfFailsValidation) {
  Circuit c;
  c.add_pi("a");
  c.add_ff(kNullNode, "q");
  EXPECT_THROW(c.validate(), CircuitError);
}

TEST(Circuit, CombinationalCycleDetected) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g1 = c.add_gate(GateType::kAnd, {a, a}, "g1");
  const NodeId g2 = c.add_and(g1, a, "g2");
  // Close a combinational loop g1 <- g2.
  c.set_fanin(g1, 1, g2);
  EXPECT_THROW(c.validate(), CircuitError);
}

TEST(Circuit, SequentialCycleIsLegal) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId ff = c.add_ff(kNullNode, "q");
  const NodeId g = c.add_and(a, ff, "g");
  c.set_fanin(ff, 0, g);  // loop through the FF
  c.add_po(g, "out");
  EXPECT_NO_THROW(c.validate());
}

TEST(Circuit, SelfLoopFfIsLegal) {
  Circuit c;
  const NodeId ff = c.add_ff(kNullNode, "q");
  c.set_fanin(ff, 0, ff);  // q -> q (hold register)
  c.add_po(ff, "out");
  EXPECT_NO_THROW(c.validate());
}

TEST(Circuit, SetFaninValidatesSlot) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g = c.add_not(a, "g");
  EXPECT_THROW(c.set_fanin(g, 1, a), CircuitError);
  EXPECT_THROW(c.set_fanin(999, 0, a), CircuitError);
}

TEST(Circuit, AddPoValidatesId) {
  Circuit c;
  c.add_pi("a");
  EXPECT_THROW(c.add_po(5, "bad"), CircuitError);
}

TEST(Circuit, IsStrictAig) {
  EXPECT_TRUE(tiny().is_strict_aig());
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  c.add_gate(GateType::kXor, {a, b}, "x");
  EXPECT_FALSE(c.is_strict_aig());
}

TEST(GateTypes, ArityTable) {
  EXPECT_EQ(gate_arity(GateType::kPi), 0);
  EXPECT_EQ(gate_arity(GateType::kNot), 1);
  EXPECT_EQ(gate_arity(GateType::kAnd), 2);
  EXPECT_EQ(gate_arity(GateType::kMux), 3);
  EXPECT_EQ(gate_arity(GateType::kFf), 1);
}

TEST(GateTypes, ParseRoundTrip) {
  for (int t = 0; t < kNumGateTypes; ++t) {
    const auto type = static_cast<GateType>(t);
    EXPECT_EQ(parse_gate_type(gate_type_name(type)), type);
  }
  EXPECT_THROW(parse_gate_type("FOO"), ParseError);
}

struct GateTruthCase {
  GateType type;
  bool a, b, expected;
};

class GateEval2 : public ::testing::TestWithParam<GateTruthCase> {};

TEST_P(GateEval2, TruthTable) {
  const auto& p = GetParam();
  EXPECT_EQ(eval_gate(p.type, p.a, p.b), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateEval2,
    ::testing::Values(
        GateTruthCase{GateType::kAnd, true, true, true},
        GateTruthCase{GateType::kAnd, true, false, false},
        GateTruthCase{GateType::kOr, false, false, false},
        GateTruthCase{GateType::kOr, true, false, true},
        GateTruthCase{GateType::kNand, true, true, false},
        GateTruthCase{GateType::kNand, false, true, true},
        GateTruthCase{GateType::kNor, false, false, true},
        GateTruthCase{GateType::kNor, true, false, false},
        GateTruthCase{GateType::kXor, true, false, true},
        GateTruthCase{GateType::kXor, true, true, false},
        GateTruthCase{GateType::kXnor, true, true, true},
        GateTruthCase{GateType::kXnor, false, true, false}));

TEST(GateEval, NotAndBuf) {
  EXPECT_TRUE(eval_gate(GateType::kNot, false));
  EXPECT_FALSE(eval_gate(GateType::kNot, true));
  EXPECT_TRUE(eval_gate(GateType::kBuf, true));
}

TEST(GateEval, MuxSelects) {
  // eval_gate(kMux, then, else, select)
  EXPECT_TRUE(eval_gate(GateType::kMux, true, false, true));
  EXPECT_FALSE(eval_gate(GateType::kMux, true, false, false));
  EXPECT_TRUE(eval_gate(GateType::kMux, false, true, false));
}

TEST(GateEval, WordParallelMatchesScalar) {
  for (const GateType t : {GateType::kAnd, GateType::kOr, GateType::kXor,
                           GateType::kNand, GateType::kNor, GateType::kXnor}) {
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        const std::uint64_t wa = a ? ~0ULL : 0, wb = b ? ~0ULL : 0;
        const bool scalar = eval_gate(t, a, b);
        EXPECT_EQ(eval_gate_word(t, wa, wb) & 1ULL, scalar ? 1ULL : 0ULL);
      }
    }
  }
}

TEST(GateEval, PiAndFfThrow) {
  EXPECT_THROW(eval_gate_word(GateType::kPi, 0), Error);
  EXPECT_THROW(eval_gate_word(GateType::kFf, 0), Error);
}

}  // namespace
}  // namespace deepseq
