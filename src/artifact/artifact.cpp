#include "artifact/artifact.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "netlist/structural_hash.hpp"
#include "nn/serialize.hpp"

namespace deepseq::artifact {

namespace {

constexpr std::uint32_t kMagic = 0x41515344;      // "DSQA" little-endian
constexpr std::uint64_t kTrailer = 0x21444E454151ULL;  // end-of-file marker
constexpr std::uint32_t kMaxNameLen = 1 << 16;
constexpr std::uint32_t kMaxCount = 1 << 20;

// ---- content hashing -------------------------------------------------------

std::uint64_t hash_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = hash_mix(h, chunk);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = hash_mix(h, tail | (static_cast<std::uint64_t>(n) << 56));
  }
  return h;
}

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = hash_mix(h, s.size());
  return hash_bytes(h, s.data(), s.size());
}

// ---- binary I/O helpers ----------------------------------------------------

template <typename T>
void write_pod(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Reader that fails fast with the offending path and field on truncation.
struct Reader {
  std::istream& in;
  const std::string& path;

  void fail(const std::string& what) const {
    throw Error("load_artifact: " + what + " in " + path);
  }

  template <typename T>
  T pod(const char* field) {
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in) fail(std::string("truncated file (reading ") + field + ")");
    return v;
  }

  std::string str(const char* field, std::uint32_t max_len = kMaxNameLen) {
    const auto len = pod<std::uint32_t>(field);
    if (len > max_len)
      fail(std::string("corrupt length for ") + field + " (" +
           std::to_string(len) + " bytes)");
    std::string s(len, '\0');
    in.read(s.data(), len);
    if (!in) fail(std::string("truncated file (reading ") + field + ")");
    return s;
  }
};

}  // namespace

// ---- Section / Artifact ----------------------------------------------------

const nn::Tensor* Section::find(const std::string& tensor_name) const {
  const auto it = std::lower_bound(
      tensors.begin(), tensors.end(), tensor_name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  if (it == tensors.end() || it->first != tensor_name) return nullptr;
  return &it->second;
}

void Artifact::add_section(const std::string& name,
                           const nn::NamedParams& params) {
  std::vector<std::pair<std::string, nn::Tensor>> tensors;
  tensors.reserve(params.size());
  for (const auto& [pname, var] : params) tensors.emplace_back(pname, var->value);
  add_section(name, std::move(tensors));
}

void Artifact::add_section(
    const std::string& name,
    std::vector<std::pair<std::string, nn::Tensor>> tensors) {
  if (has_section(name))
    throw Error("Artifact: duplicate section '" + name + "'");
  Section s;
  s.name = name;
  s.tensors = std::move(tensors);
  std::sort(s.tensors.begin(), s.tensors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < s.tensors.size(); ++i)
    if (s.tensors[i - 1].first == s.tensors[i].first)
      throw Error("Artifact: duplicate tensor '" + s.tensors[i].first +
                  "' in section '" + name + "'");
  const auto pos = std::lower_bound(
      sections_.begin(), sections_.end(), name,
      [](const Section& sec, const std::string& n) { return sec.name < n; });
  sections_.insert(pos, std::move(s));
}

bool Artifact::has_section(const std::string& name) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const Section& s) { return s.name == name; });
}

const Section& Artifact::section(const std::string& name) const {
  for (const Section& s : sections_)
    if (s.name == name) return s;
  std::string msg = "Artifact: no section '" + name + "'; present:";
  for (const Section& s : sections_) msg += " " + s.name;
  if (sections_.empty()) msg += " (none)";
  throw Error(msg);
}

void Artifact::apply_section(const std::string& name,
                             const nn::NamedParams& params) const {
  const Section& s = section(name);
  for (const auto& [pname, var] : params) {
    const nn::Tensor* t = s.find(pname);
    if (t == nullptr)
      throw Error("Artifact: parameter '" + pname + "' missing from section '" +
                  name + "'");
    if (!t->same_shape(var->value))
      throw Error("Artifact: shape mismatch for '" + pname + "' in section '" +
                  name + "': artifact has " + t->shape_string() +
                  ", model expects " + var->value.shape_string());
    var->value = *t;
  }
}

void Artifact::set_metadata(const std::string& key, const std::string& value) {
  auto& md = manifest.metadata;
  const auto it = std::lower_bound(
      md.begin(), md.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != md.end() && it->first == key)
    it->second = value;
  else
    md.insert(it, {key, value});
}

const std::string* Artifact::find_metadata(const std::string& key) const {
  for (const auto& [k, v] : manifest.metadata)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t Artifact::content_hash() const {
  std::uint64_t h = hash_string(0xD5A47ULL, manifest.backend_kind);
  h = mix_config(h, manifest.model);  // core/{model,pace}.hpp — the same
  h = mix_config(h, manifest.pace);   // field lists the fingerprints use
  h = hash_mix(h, sections_.size());
  for (const Section& s : sections_) {
    h = hash_string(h, s.name);
    h = hash_mix(h, s.tensors.size());
    for (const auto& [name, t] : s.tensors) {
      h = hash_string(h, name);
      h = hash_mix(h, static_cast<std::uint64_t>(t.rows()));
      h = hash_mix(h, static_cast<std::uint64_t>(t.cols()));
      h = hash_bytes(h, t.data(), t.size() * sizeof(float));
    }
  }
  return h;
}

// ---- save / load -----------------------------------------------------------

void save_artifact(const std::string& path, Artifact& a) {
  // Enforce the reader's length limits up front: anything save_artifact
  // accepts must load back (never a saved-but-unloadable artifact).
  const auto check_len = [&](const std::string& s, std::uint32_t max,
                             const char* what) {
    if (s.size() > max)
      throw Error(std::string("save_artifact: ") + what + " exceeds " +
                  std::to_string(max) + " bytes (" + std::to_string(s.size()) +
                  ") for " + path);
  };
  check_len(a.manifest.backend_kind, kMaxNameLen, "backend kind");
  for (const auto& [k, v] : a.manifest.metadata) {
    check_len(k, kMaxNameLen, "metadata key");
    check_len(v, kMaxCount, "metadata value");
  }
  for (const Section& s : a.sections()) {
    check_len(s.name, kMaxNameLen, "section name");
    for (const auto& [name, t] : s.tensors) {
      (void)t;
      check_len(name, kMaxNameLen, "tensor name");
    }
  }

  a.manifest.format_version = kFormatVersion;
  a.manifest.content_hash = a.content_hash();

  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("save_artifact: cannot open " + path);
  write_pod(out, kMagic);
  write_pod(out, kFormatVersion);
  write_pod(out, a.manifest.content_hash);
  write_string(out, a.manifest.backend_kind);

  const ModelConfig& m = a.manifest.model;
  write_pod(out, static_cast<std::uint32_t>(m.aggregator));
  write_pod(out, static_cast<std::uint32_t>(m.propagation));
  write_pod(out, static_cast<std::int32_t>(m.iterations));
  write_pod(out, static_cast<std::int32_t>(m.hidden_dim));
  write_pod(out, m.seed);

  const PaceConfig& p = a.manifest.pace;
  write_pod(out, static_cast<std::int32_t>(p.hidden_dim));
  write_pod(out, static_cast<std::int32_t>(p.layers));
  write_pod(out, static_cast<std::int32_t>(p.max_ancestors));
  write_pod(out, static_cast<std::int32_t>(p.pos_dim));
  write_pod(out, p.seed);

  write_pod(out, static_cast<std::uint32_t>(a.manifest.metadata.size()));
  for (const auto& [k, v] : a.manifest.metadata) {
    write_string(out, k);
    write_string(out, v);
  }

  // Sections reuse the bare save_params record layout as their payload: one
  // nn::TensorRecord per tensor, in the artifact's sorted-name order.
  write_pod(out, static_cast<std::uint32_t>(a.sections().size()));
  for (const Section& s : a.sections()) {
    write_string(out, s.name);
    write_pod(out, static_cast<std::uint32_t>(s.tensors.size()));
    for (const auto& [name, t] : s.tensors) nn::write_tensor_record(out, name, t);
  }
  write_pod(out, kTrailer);
  if (!out) throw Error("save_artifact: write failed for " + path);
}

Artifact load_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_artifact: cannot open " + path);
  Reader r{in, path};

  if (r.pod<std::uint32_t>("magic") != kMagic)
    r.fail("bad magic (not a DeepSeq artifact)");
  const auto version = r.pod<std::uint32_t>("format version");
  if (version != kFormatVersion)
    r.fail("unsupported format version " + std::to_string(version) +
           " (this build reads version " + std::to_string(kFormatVersion) + ")");

  Artifact a;
  a.manifest.format_version = version;
  const auto stored_hash = r.pod<std::uint64_t>("content hash");
  a.manifest.backend_kind = r.str("backend kind");

  ModelConfig& m = a.manifest.model;
  m.aggregator = static_cast<AggregatorKind>(r.pod<std::uint32_t>("aggregator"));
  m.propagation =
      static_cast<PropagationKind>(r.pod<std::uint32_t>("propagation"));
  m.iterations = r.pod<std::int32_t>("iterations");
  m.hidden_dim = r.pod<std::int32_t>("hidden_dim");
  m.seed = r.pod<std::uint64_t>("model seed");

  PaceConfig& p = a.manifest.pace;
  p.hidden_dim = r.pod<std::int32_t>("pace hidden_dim");
  p.layers = r.pod<std::int32_t>("pace layers");
  p.max_ancestors = r.pod<std::int32_t>("pace max_ancestors");
  p.pos_dim = r.pod<std::int32_t>("pace pos_dim");
  p.seed = r.pod<std::uint64_t>("pace seed");

  const auto metadata_count = r.pod<std::uint32_t>("metadata count");
  if (metadata_count > kMaxCount) r.fail("corrupt metadata count");
  for (std::uint32_t i = 0; i < metadata_count; ++i) {
    std::string key = r.str("metadata key");
    a.manifest.metadata.emplace_back(std::move(key),
                                     r.str("metadata value", kMaxCount));
  }

  const auto section_count = r.pod<std::uint32_t>("section count");
  if (section_count > kMaxCount) r.fail("corrupt section count");
  for (std::uint32_t si = 0; si < section_count; ++si) {
    const std::string sname = r.str("section name");
    const auto tensor_count = r.pod<std::uint32_t>("tensor count");
    if (tensor_count > kMaxCount) r.fail("corrupt tensor count");
    std::vector<std::pair<std::string, nn::Tensor>> tensors;
    tensors.reserve(tensor_count);
    for (std::uint32_t ti = 0; ti < tensor_count; ++ti) {
      nn::TensorRecord rec = nn::read_tensor_record(
          in, "load_artifact: section '" + sname + "' of " + path);
      tensors.emplace_back(std::move(rec.name), std::move(rec.value));
    }
    a.add_section(sname, std::move(tensors));  // sort + dedup checks
  }
  if (r.pod<std::uint64_t>("trailer") != kTrailer)
    r.fail("missing end-of-file marker (truncated or overwritten file)");

  a.manifest.content_hash = a.content_hash();
  if (a.manifest.content_hash != stored_hash)
    r.fail("content hash mismatch (file corrupted): stored " +
           std::to_string(stored_hash) + ", recomputed " +
           std::to_string(a.manifest.content_hash));
  return a;
}

}  // namespace deepseq::artifact
