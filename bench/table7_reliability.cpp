// Regenerates Table VII: reliability analysis on the six large designs —
// Monte-Carlo fault-simulation ground truth vs the analytic baseline [32]
// and DeepSeq fine-tuned with the error-probability head (§V-B).
// Reproduction target: both estimates close to GT (reliability ~0.97-1.0),
// DeepSeq closer (paper: 2.66% vs 0.31% average error).

#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "reliability/pipeline.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE VII", "reliability analysis on the large test designs", cfg);

  const DeepSeqModel deepseq_model = pretrained_deepseq(cfg);

  ReliabilityPipelineOptions ropt;
  ropt.fault.num_sequences = cfg.fault_sequences;
  ropt.fault.cycles_per_sequence = cfg.fault_cycles;
  ropt.fault.gate_error_rate = cfg.fault_eps;
  ropt.finetune_epochs = cfg.rel_ft_epochs;
  ropt.finetune_lr = cfg.ft_lr;
  ReliabilityPipeline pipeline(deepseq_model, ropt);

  {
    WallTimer t;
    const auto& all = shared_dataset(cfg).samples;
    const std::size_t n =
        std::min<std::size_t>(all.size(), static_cast<std::size_t>(cfg.rel_ft_samples));
    pipeline.finetune({all.begin(), all.begin() + static_cast<std::ptrdiff_t>(n)});
    std::printf("[setup] reliability fine-tuning on %zu circuits (%.0fs)\n", n,
                t.seconds());
  }

  struct PaperRow {
    const char* name;
    double gt, prob, prob_err, ds, ds_err;
  };
  const PaperRow paper[] = {
      {"noc_router", 0.9876, 0.9607, 0.0272, 0.9814, 0.0063},
      {"pll", 0.9792, 0.9501, 0.0395, 0.9857, 0.0035},
      {"ptc", 0.9970, 0.9656, 0.0315, 0.9928, 0.0042},
      {"rtcclock", 0.9985, 0.9812, 0.0173, 0.9969, 0.0016},
      {"ac97_ctrl", 0.9953, 0.9704, 0.0250, 0.9943, 0.0010},
      {"mem_ctrl", 0.9958, 0.9767, 0.0192, 0.9936, 0.0022},
  };

  std::printf("\n%-11s | %7s | %7s %7s | %7s %7s || %7s %7s %7s\n", "Design",
              "GT", "Prob", "Err", "DeepSeq", "Err", "p:GT", "p:Prob", "p:DS");
  std::printf("%.*s\n", 92, std::string(92, '-').c_str());
  double sum_prob = 0, sum_ds = 0;
  int n = 0;
  for (const PaperRow& pr : paper) {
    WallTimer t;
    const TestDesign design =
        build_test_design(pr.name, cfg.design_scale, cfg.eval_seed);
    Rng rng(cfg.eval_seed ^ 0x7777u ^ static_cast<std::uint64_t>(n));
    const Workload w = low_activity_workload(design.netlist, rng,
                                             cfg.workload_active_fraction);
    const ReliabilityComparison cmp = pipeline.run(design, w);
    std::printf("%-11s | %7.4f | %7.4f %7s | %7.4f %7s || %7.4f %7s %7s  [%.0fs]\n",
                pr.name, cmp.gt, cmp.probabilistic,
                pct(cmp.probabilistic_error).c_str(), cmp.deepseq,
                pct(cmp.deepseq_error).c_str(), pr.gt,
                pct(pr.prob_err).c_str(), pct(pr.ds_err).c_str(), t.seconds());
    std::fflush(stdout);
    sum_prob += cmp.probabilistic_error;
    sum_ds += cmp.deepseq_error;
    ++n;
  }
  std::printf("%-11s | %7s | %7s %7s | %7s %7s || %7s %7s %7s\n", "Avg.", "",
              "", pct(sum_prob / n).c_str(), "", pct(sum_ds / n).c_str(), "",
              "2.66%", "0.31%");
  return 0;
}
