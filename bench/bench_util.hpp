#pragma once

#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "dataset/training_data.hpp"
#include "obs/metrics.hpp"
#include "power/grannite.hpp"

namespace deepseq::bench {

/// Scale configuration shared by every table bench. Defaults are sized so
/// the whole suite regenerates on a single core in tens of minutes;
/// DEEPSEQ_FULL=1 switches every knob to the paper's values (§IV-A3 and
/// §V) — expect days of CPU time at that setting. Individual knobs can be
/// overridden with DEEPSEQ_* environment variables (see EXPERIMENTS.md).
struct BenchConfig {
  bool full = false;

  // Pre-training corpus (Table I) and optimization (§IV-A3).
  int circuits = 60;
  int sim_cycles = 2000;
  int epochs = 40;
  int hidden = 32;
  int iterations = 4;  // T
  float lr = 1.5e-3f;
  int batch = 4;
  std::uint64_t data_seed = 1;
  double val_fraction = 0.2;

  // Downstream evaluation (Tables IV-VII).
  double design_scale = 1.0 / 16.0;
  int gt_cycles = 2000;
  int ft_workloads = 12;   // paper: 1000
  int ft_epochs = 20;      // paper: 50
  float ft_lr = 2e-3f;
  int ft_cycles = 1000;
  double workload_active_fraction = 0.3;

  // Reliability (Table VII, §V-B1).
  int fault_sequences = 256;  // paper: 1000
  int fault_cycles = 100;     // paper: 100
  double fault_eps = 0.0005;  // paper: 0.05%
  int rel_ft_samples = 24;
  int rel_ft_epochs = 12;

  std::uint64_t eval_seed = 777;
  std::string cache_dir = "deepseq_cache";

  static BenchConfig from_env();
  std::string fingerprint() const;  // cache-key component
};

/// The shared pre-training dataset (memoized per process).
const TrainingDataset& shared_dataset(const BenchConfig& cfg);
void split_dataset(const BenchConfig& cfg, std::vector<TrainSample>& train,
                   std::vector<TrainSample>& val);

/// Train a model on `train` (or load it from the bench cache when an
/// identically-configured earlier bench already trained it). The cache key
/// covers the model description and every scale knob.
DeepSeqModel train_or_load(const ModelConfig& config,
                           const std::vector<TrainSample>& train,
                           const BenchConfig& cfg, const std::string& tag);

/// Variant with explicit training options (e.g. task-weight ablations);
/// the tag must make the cache key unique for the option set.
DeepSeqModel train_or_load(const ModelConfig& config,
                           const std::vector<TrainSample>& train,
                           const BenchConfig& cfg, const std::string& tag,
                           const TrainOptions& topt);

/// Per-design fine-tuning budget for Tables V/VI: the configured
/// workloads/epochs are scaled by sqrt(1000 / aig_nodes) (clamped) so
/// cheap small designs fine-tune longer and expensive large ones less —
/// roughly constant wall-time per design. Full scale returns the
/// configured values unchanged (the paper's 1000 x 50).
struct FtBudget {
  int workloads = 0;
  int epochs = 0;
};
FtBudget scaled_ft_budget(const BenchConfig& cfg, std::size_t aig_nodes);

/// Pre-trained models for the downstream benches (trained on the full
/// dataset, cached).
DeepSeqModel pretrained_deepseq(const BenchConfig& cfg);
GranniteModel pretrained_grannite(const BenchConfig& cfg);

/// Formatting helpers for paper-style tables.
void print_banner(const std::string& table, const std::string& caption,
                  const BenchConfig& cfg);
std::string pct(double fraction, int decimals = 2);

/// Minimal streaming JSON writer for machine-readable bench output (the
/// serving/runtime benches emit one JSON document next to their tables so
/// results can be tracked across commits). Keys/values are appended in
/// call order; strings are escaped; no pretty-printing beyond newlines.
class JsonWriter {
 public:
  std::string str() const;  // finalized document

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key = {});
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);  // next value's key (inside object)
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    return key(k).value(v);
  }

 private:
  void separator();
  std::string out_;
  bool need_comma_ = false;
};

/// Write `json` to `path` (parent dirs created), echoing the path on stdout.
void write_json_file(const std::string& path, const std::string& json);

/// Emit an obs::Summary as flat `<prefix>_{mean,p50,p90,p99,max}_ms` fields
/// (plus `<prefix>_count`) — the one JSON shape every bench uses for a
/// latency digest, backed by the same obs::Histogram percentile math as the
/// server loop and the metrics export.
void json_summary(JsonWriter& json, const std::string& prefix,
                  const obs::Summary& s);

/// Emit a histogram window (typically an obs::delta of the process
/// registry around a measured region) as `<prefix>_{mean,p50,p99,max}`
/// fields in the recorded unit times `scale` — queue-depth / batch-size
/// distributions ride into bench JSON through this.
void json_histogram(JsonWriter& json, const std::string& prefix,
                    const obs::HistogramSnapshot& h, double scale = 1.0);

}  // namespace deepseq::bench
