#include "sim/fault_sim.hpp"

#include <bit>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

FaultSimResult simulate_faults(const Circuit& c, const Workload& w,
                               const FaultSimOptions& opt) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("simulate_faults: workload PI count mismatch");
  const std::size_t n = c.num_nodes();

  // Evaluation order of combinational gates.
  const Levelization lv = comb_levelize(c);
  std::vector<NodeId> order;
  for (std::size_t l = 1; l < lv.by_level.size(); ++l)
    for (NodeId v : lv.by_level[l]) order.push_back(v);

  std::vector<std::uint64_t> golden(n, 0), faulty(n, 0);
  std::vector<std::uint64_t> match1(n, 0), g0(n, 0), g1(n, 0), e01(n, 0), e10(n, 0);
  std::uint64_t po_match = 0, po_total = 0;

  Rng pattern_rng(w.pattern_seed);
  Rng fault_rng(w.pattern_seed ^ 0x9E3779B97F4A7C15ULL);

  auto eval = [&](std::vector<std::uint64_t>& val, NodeId v) {
    const Node& nd = c.node(v);
    const std::uint64_t a = val[nd.fanin[0]];
    const std::uint64_t b = nd.num_fanins > 1 ? val[nd.fanin[1]] : 0;
    const std::uint64_t s3 = nd.num_fanins > 2 ? val[nd.fanin[2]] : 0;
    switch (nd.type) {
      case GateType::kAnd: return a & b;
      case GateType::kNot: return ~a;
      case GateType::kBuf: return a;
      case GateType::kOr: return a | b;
      case GateType::kNand: return ~(a & b);
      case GateType::kNor: return ~(a | b);
      case GateType::kXor: return a ^ b;
      case GateType::kXnor: return ~(a ^ b);
      case GateType::kMux: return (a & b) | (~a & s3);
      default: throw Error("simulate_faults: unexpected gate type");
    }
  };

  const int words = (opt.num_sequences + 63) / 64;
  std::vector<std::uint64_t> pi_words(c.pis().size());
  for (int word = 0; word < words; ++word) {
    std::fill(golden.begin(), golden.end(), 0);
    std::fill(faulty.begin(), faulty.end(), 0);
    for (int cycle = 0; cycle < opt.cycles_per_sequence; ++cycle) {
      for (std::size_t k = 0; k < pi_words.size(); ++k) {
        pi_words[k] = pattern_rng.bernoulli_word(w.pi_prob[k]);
        golden[c.pis()[k]] = pi_words[k];
        faulty[c.pis()[k]] = pi_words[k];
      }
      for (NodeId v : order) {
        golden[v] = eval(golden, v);
        faulty[v] = eval(faulty, v) ^ fault_rng.bernoulli_word(opt.gate_error_rate);
      }
      // Statistics for this cycle.
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t gv = golden[v], fv = faulty[v];
        g1[v] += std::popcount(gv);
        g0[v] += std::popcount(~gv);
        e01[v] += std::popcount(~gv & fv);
        e10[v] += std::popcount(gv & ~fv);
        match1[v] += std::popcount(~(gv ^ fv));
      }
      for (NodeId po : c.pos()) {
        po_match += std::popcount(~(golden[po] ^ faulty[po]));
        po_total += 64;
      }
      // Clock both runs (two-phase for FF chains).
      std::vector<std::uint64_t> gnext(c.ffs().size()), fnext(c.ffs().size());
      for (std::size_t k = 0; k < c.ffs().size(); ++k) {
        gnext[k] = golden[c.fanin(c.ffs()[k], 0)];
        fnext[k] = faulty[c.fanin(c.ffs()[k], 0)];
        if (opt.inject_ff)
          fnext[k] ^= fault_rng.bernoulli_word(opt.gate_error_rate);
      }
      for (std::size_t k = 0; k < c.ffs().size(); ++k) {
        golden[c.ffs()[k]] = gnext[k];
        faulty[c.ffs()[k]] = fnext[k];
      }
    }
  }

  FaultSimResult res;
  res.err01.assign(n, 0.0);
  res.err10.assign(n, 0.0);
  res.node_reliability.assign(n, 1.0);
  for (std::size_t v = 0; v < n; ++v) {
    if (g0[v] > 0)
      res.err01[v] = static_cast<double>(e01[v]) / static_cast<double>(g0[v]);
    if (g1[v] > 0)
      res.err10[v] = static_cast<double>(e10[v]) / static_cast<double>(g1[v]);
    const std::uint64_t total = g0[v] + g1[v];
    if (total > 0)
      res.node_reliability[v] =
          static_cast<double>(match1[v]) / static_cast<double>(total);
  }
  res.circuit_reliability =
      po_total > 0 ? static_cast<double>(po_match) / static_cast<double>(po_total)
                   : 1.0;
  return res;
}

}  // namespace deepseq
