#include "core/sample.hpp"

namespace deepseq {

TrainSample make_sample_from_activity(std::string name,
                                      std::shared_ptr<const Circuit> aig,
                                      Workload workload,
                                      const NodeActivity& activity,
                                      std::uint64_t init_seed) {
  TrainSample s;
  s.name = std::move(name);
  s.circuit = std::move(aig);
  s.graph = build_circuit_graph(*s.circuit);
  s.workload = std::move(workload);
  s.init_seed = init_seed;
  const int n = s.graph.num_nodes;
  s.target_tr = nn::Tensor(n, 2);
  s.target_lg = nn::Tensor(n, 1);
  for (int v = 0; v < n; ++v) {
    s.target_tr.at(v, 0) = static_cast<float>(activity.tr01[v]);
    s.target_tr.at(v, 1) = static_cast<float>(activity.tr10[v]);
    s.target_lg.at(v, 0) = static_cast<float>(activity.logic1[v]);
  }
  return s;
}

TrainSample make_sample(std::string name, Circuit aig, Workload workload,
                        const ActivityOptions& sim_opt,
                        std::uint64_t init_seed) {
  auto circuit = std::make_shared<const Circuit>(std::move(aig));
  const NodeActivity act = collect_activity(*circuit, workload, sim_opt);
  return make_sample_from_activity(std::move(name), std::move(circuit),
                                   std::move(workload), act, init_seed);
}

}  // namespace deepseq
