#include "prob/switching.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include "dataset/embedded.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

TEST(Switching, IndependentGatesAreExact) {
  // On a tree (no reconvergence, no FFs) the independence assumption is
  // exact for signal probabilities.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const NodeId g1 = c.add_and(a, b, "g1");
  const NodeId g2 = c.add_gate(GateType::kOr, {g1, d}, "g2");
  const NodeId g3 = c.add_not(g2, "g3");
  c.add_po(g3, "o");
  Workload w;
  w.pi_prob = {0.5, 0.4, 0.2};
  const SwitchingEstimate est = estimate_switching(c, w);
  EXPECT_NEAR(est.logic1[g1], 0.2, 1e-12);
  EXPECT_NEAR(est.logic1[g2], 1 - 0.8 * 0.8, 1e-12);
  EXPECT_NEAR(est.logic1[g3], 0.8 * 0.8, 1e-12);
}

TEST(Switching, AllGateTypeFormulas) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId s = c.add_pi("s");
  const NodeId g_and = c.add_and(a, b);
  const NodeId g_or = c.add_gate(GateType::kOr, {a, b});
  const NodeId g_nand = c.add_gate(GateType::kNand, {a, b});
  const NodeId g_nor = c.add_gate(GateType::kNor, {a, b});
  const NodeId g_xor = c.add_gate(GateType::kXor, {a, b});
  const NodeId g_xnor = c.add_gate(GateType::kXnor, {a, b});
  const NodeId g_mux = c.add_gate(GateType::kMux, {s, a, b});
  const NodeId g_buf = c.add_gate(GateType::kBuf, {a});
  c.add_po(g_and, "o");
  Workload w;
  w.pi_prob = {0.3, 0.7, 0.5};
  const auto est = estimate_switching(c, w);
  EXPECT_NEAR(est.logic1[g_and], 0.21, 1e-12);
  EXPECT_NEAR(est.logic1[g_or], 1 - 0.7 * 0.3, 1e-12);
  EXPECT_NEAR(est.logic1[g_nand], 1 - 0.21, 1e-12);
  EXPECT_NEAR(est.logic1[g_nor], 0.7 * 0.3, 1e-12);
  EXPECT_NEAR(est.logic1[g_xor], 0.3 * 0.3 + 0.7 * 0.7, 1e-12);
  EXPECT_NEAR(est.logic1[g_xnor], 1 - (0.3 * 0.3 + 0.7 * 0.7), 1e-12);
  EXPECT_NEAR(est.logic1[g_mux], 0.5 * 0.3 + 0.5 * 0.7, 1e-12);
  EXPECT_NEAR(est.logic1[g_buf], 0.3, 1e-12);
}

TEST(Switching, TransitionModelIsTemporalIndependence) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  c.add_po(c.add_not(a), "o");
  Workload w;
  w.pi_prob = {0.3};
  const auto est = estimate_switching(c, w);
  EXPECT_NEAR(est.tr01[a], 0.7 * 0.3, 1e-12);
  EXPECT_NEAR(est.tr10[a], 0.3 * 0.7, 1e-12);
}

TEST(Switching, FfFixedPointConverges) {
  // Toggle FF: q' = NOT q. Stationary probability is 0.5 — which equals the
  // initial guess, so convergence is immediate.
  Circuit c;
  const NodeId q = c.add_ff(kNullNode, "q");
  const NodeId n = c.add_not(q, "n");
  c.set_fanin(q, 0, n);
  c.add_po(q, "o");
  c.validate();
  Workload w;  // no PIs
  const auto est = estimate_switching(c, w);
  EXPECT_NEAR(est.logic1[q], 0.5, 1e-6);
}

TEST(Switching, FfFixedPointIterates) {
  // Sticky FF: q' = q OR a with P(a)=0.1. Starting from the hardware reset
  // state 0, the estimate must climb toward the absorbing all-ones state
  // over several damped iterations.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId q = c.add_ff(kNullNode, "q");
  const NodeId g = c.add_gate(GateType::kOr, {q, a}, "g");
  c.set_fanin(q, 0, g);
  c.add_po(q, "o");
  c.validate();
  Workload w;
  w.pi_prob = {0.1};
  const auto est = estimate_switching(c, w);
  EXPECT_GT(est.iterations_used, 3);
  EXPECT_GT(est.logic1[q], 0.9);
}

TEST(Switching, HoldRegisterStaysAtResetState) {
  // Gated hold register q' = q: the FF never leaves the reset state, so a
  // sound estimate reports zero switching (the 0.5/0.5-initialized variant
  // of this estimator would report 0.25 forever).
  Circuit c;
  const NodeId q = c.add_ff(kNullNode, "q");
  const NodeId buf = c.add_gate(GateType::kBuf, {q}, "keep");
  c.set_fanin(q, 0, buf);
  c.add_po(q, "o");
  c.validate();
  Workload w;
  const auto est = estimate_switching(c, w);
  EXPECT_NEAR(est.logic1[q], 0.0, 1e-9);
  EXPECT_NEAR(est.tr01[q] + est.tr10[q], 0.0, 1e-9);
}

TEST(Switching, CounterBitsConvergeToHalf) {
  const Circuit c = counter4();
  Workload w;
  w.pi_prob = {1.0};
  const auto est = estimate_switching(c, w);
  for (NodeId ff : c.ffs()) EXPECT_NEAR(est.logic1[ff], 0.5, 1e-4);
}

TEST(Switching, AgreesWithSimulationOnTreeCircuit) {
  // For a reconvergence-free combinational cone, the probabilistic method
  // matches simulation closely.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const NodeId e = c.add_pi("e");
  const NodeId g1 = c.add_and(a, b, "g1");
  const NodeId g2 = c.add_gate(GateType::kXor, {d, e}, "g2");
  const NodeId g3 = c.add_gate(GateType::kOr, {g1, g2}, "g3");
  c.add_po(g3, "o");
  Workload w;
  w.pi_prob = {0.3, 0.8, 0.5, 0.25};
  w.pattern_seed = 42;
  const auto est = estimate_switching(c, w);
  const NodeActivity act = collect_activity(c, w, {20000, 1});
  EXPECT_NEAR(est.logic1[g3], act.logic1[g3], 0.01);
  EXPECT_NEAR(est.tr01[g3], act.tr01[g3], 0.01);
}

TEST(Switching, ErrsOnSequentialCorrelation) {
  // A counter's upper bits toggle at deterministic, cross-bit-correlated
  // rates (1/2^k) that the spatial-independence model cannot track — the
  // cyclic-FF weakness the paper attributes to probabilistic methods
  // (§V-A). Require a large relative error in either direction.
  const Circuit c = counter4();
  Workload w;
  w.pi_prob = {1.0};
  w.pattern_seed = 3;
  const auto est = estimate_switching(c, w);
  const NodeActivity act = collect_activity(c, w, {8192, 1});
  const NodeId bit3 = c.pos()[3];
  const double est_rate = est.tr01[bit3] + est.tr10[bit3];
  const double true_rate = act.toggle_rate(bit3);
  EXPECT_GT(std::fabs(est_rate - true_rate) / true_rate, 0.5)
      << "est " << est_rate << " true " << true_rate;
}

TEST(Switching, ProbabilitiesStayInRange) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.1, 0.9, 0.4, 0.6};
  const auto est = estimate_switching(c, w);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    EXPECT_GE(est.logic1[v], 0.0);
    EXPECT_LE(est.logic1[v], 1.0);
    EXPECT_GE(est.tr01[v], 0.0);
    EXPECT_LE(est.tr01[v], 0.25 + 1e-12);
  }
}

TEST(Switching, MismatchedWorkloadThrows) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5};
  EXPECT_THROW(estimate_switching(c, w), Error);
}

TEST(SignalProbs, DirectPropagation) {
  const Circuit c = counter4();
  const std::vector<double> pi_prob{1.0};
  const std::vector<double> ff_prob(c.ffs().size(), 0.25);
  const auto p = propagate_signal_probs(c, pi_prob, ff_prob);
  for (std::size_t k = 0; k < c.ffs().size(); ++k)
    EXPECT_DOUBLE_EQ(p[c.ffs()[k]], 0.25);
  EXPECT_THROW(propagate_signal_probs(c, {0.5, 0.5}, ff_prob), Error);
}

}  // namespace
}  // namespace deepseq
