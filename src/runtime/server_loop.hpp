#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "obs/metrics.hpp"

namespace deepseq::runtime {

/// A netlist loaded for serving: parsed from disk (or synthesized), already
/// normalized to the strict sequential AIG the models consume.
struct LoadedNetlist {
  std::string name;
  std::shared_ptr<const Circuit> aig;
};

/// Load every .bench / .aag (ASCII AIGER) / .aig (binary AIGER) file in
/// `dir`, decomposing generic gate types to AND/NOT where needed (paper
/// §V-A2). Unreadable or structurally invalid files are skipped with a
/// note on stderr; the result is sorted by name for reproducible traces.
std::vector<LoadedNetlist> load_netlist_dir(const std::string& dir);

/// Request-replay configuration. The trace is OPEN-LOOP: arrival times are
/// drawn up front from the offered rate (Poisson by default) and requests
/// are submitted at those times regardless of completion — the standard
/// way to expose queueing delay that closed-loop (wait-for-reply) drivers
/// hide. The replay runs as a CLIENT of the serving tier: an in-process
/// serve::Server is stood up on an ephemeral loopback port and every
/// request goes over the wire, so there is exactly one request path from
/// trace replay to fleet serving.
struct ServerConfig {
  double qps = 50.0;
  int total_requests = 200;
  /// Poisson (exponential inter-arrival) vs uniform spacing.
  bool poisson = true;
  /// Backends (registry names) traffic is spread over uniformly at random;
  /// a single entry pins all traffic to one backend. Every name must be
  /// registered — server_config_from_env() validates against the registry.
  std::vector<std::string> backends = {"deepseq"};
  /// Distinct workloads per netlist cycled through by the trace. Small
  /// values make repeat (cacheable) requests common, mimicking hot
  /// circuits; large values approximate an all-cold stream.
  int workloads_per_netlist = 4;
  std::uint64_t seed = 1;
  api::SessionConfig session;
  /// Serving-tier shape behind the loopback port: Session shards requests
  /// are routed over by structural hash, and worker threads per shard
  /// (0 = derive from session.engine.threads).
  int shards = 1;
  int workers_per_shard = 0;
  /// Server-side latency budget per request in ms (admission control sheds
  /// typed kOverloadDeadline past it); 0 = none.
  std::uint32_t deadline_ms = 0;
};

/// Read serving knobs from the environment (common/env):
///   DEEPSEQ_QPS       offered rate                          (default 50)
///   DEEPSEQ_THREADS   session worker threads                (default 4)
///   DEEPSEQ_REQUESTS  trace length                          (default 200)
///   DEEPSEQ_SHARDS    serving-tier Session shards           (default 1)
///   DEEPSEQ_BACKEND   registry name, or a comma-separated list for mixed
///                     traffic (default deepseq)
///   DEEPSEQ_METRICS   period in seconds: run_server_loop prints an
///                     obs::snapshot_json() metrics delta at this cadence
///                     while the trace replays (unset / <= 0 = off)
/// DEEPSEQ_BACKEND is resolved against the BackendRegistry: unknown names
/// fail fast with an Error listing every registered backend.
ServerConfig server_config_from_env();

/// Latency digests are the obs histogram summary now — one percentile
/// implementation (obs::Histogram) serves the server loop, the benches and
/// the metrics export. Fields are in milliseconds here (mean/p50/p90/p99/
/// max); percentiles are log-bucket estimates within 6.25% of exact.
using LatencySummary = obs::Summary;

/// Digest a sample of millisecond latencies through an obs::Histogram
/// (nearest-rank percentile estimates); empty input yields zeros.
LatencySummary summarize_latencies(const std::vector<double>& total_ms);

struct ServerStats {
  std::size_t completed = 0;
  std::size_t failed = 0;  // requests whose future carried an exception
  /// Requests the serving tier rejected with a typed overload error
  /// (queue-full / deadline) — admission control working as intended, kept
  /// separate from `failed`.
  std::size_t shed = 0;
  double wall_seconds = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  LatencySummary latency;  // client-observed: submit -> reply
  /// Breakdown of the same requests: time outside the compute path (wire,
  /// admission queue, engine queue) vs the forward pass — separates
  /// queueing delay from compute cost.
  LatencySummary queue;    // client total minus the session's total_ms
  LatencySummary compute;  // compute_ms as measured by the serving Session
  runtime::CircuitCache::Stats cache;  // summed over shards
};

/// Stand up a serve::Server (ephemeral loopback port, `config.shards`
/// Session shards built from `config.session`), replay the trace through a
/// serve::Client over the socket, and return aggregate stats.
ServerStats run_server_loop(const ServerConfig& config,
                            const std::vector<LoadedNetlist>& netlists,
                            bool verbose = false);

}  // namespace deepseq::runtime
