// Netlist format round-trips: the interchange formats the library speaks
// and the transformations between them —
//   1. parse an ISCAS'89-style BENCH netlist,
//   2. decompose the generic gates into a strict sequential AIG (§V-A2)
//      and optimize it (§III),
//   3. emit structural Verilog, ASCII AIGER and binary AIGER,
//   4. re-parse each artifact and verify sequential equivalence by
//      co-simulation.

#include <cstdio>
#include <sstream>

#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"
#include "netlist/aiger_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "sim/simulator.hpp"

using namespace deepseq;

namespace {

/// Co-simulate both circuits on random inputs; returns the first cycle
/// with a PO mismatch, or -1 when equivalent.
int first_divergence(const Circuit& a, const Circuit& b, int cycles) {
  SequentialSimulator sa(a), sb(b);
  Rng rng(99);
  std::vector<std::uint64_t> words(a.pis().size());
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (auto& w : words) w = rng.next_u64();
    sa.step(words);
    sb.step(words);
    for (std::size_t k = 0; k < a.pos().size(); ++k)
      if (sa.value(a.pos()[k]) != sb.value(b.pos()[k]))
        return cycle;
    sa.clock();
    sb.clock();
  }
  return -1;
}

void report(const char* what, const Circuit& reference, const Circuit& c) {
  const int diverged = first_divergence(reference, c, 256);
  std::printf("  %-22s %4zu nodes   %s\n", what, c.num_nodes(),
              diverged < 0 ? "equivalent (256 cycles x 64 lanes)"
                           : "DIVERGED");
}

}  // namespace

int main() {
  // 1. Start from s27 in BENCH form (the format the ISCAS'89 suite ships in).
  const Circuit s27 = iscas89_s27();
  std::printf("s27 (BENCH): %zu nodes, %zu PIs, %zu FFs, %zu POs\n\n",
              s27.num_nodes(), s27.pis().size(), s27.ffs().size(),
              s27.pos().size());

  // 2. Generic gates -> strict AIG -> optimized AIG.
  const Circuit aig = decompose_to_aig(s27).aig;
  const OptimizeResult opt = optimize_aig(aig);
  std::printf("decomposed AIG: %zu nodes; optimized: %zu nodes (-%zu)\n\n",
              aig.num_nodes(), opt.circuit.num_nodes(), opt.removed_nodes);

  // 3/4. Round-trip through every format.
  std::printf("round-trips (all verified against the original):\n");
  report("BENCH", s27, parse_bench_string(write_bench_string(s27)));
  report("structural Verilog", s27,
         parse_verilog_string(write_verilog_string(s27)));
  report("ASCII AIGER (.aag)", s27,
         parse_aiger_string(write_aiger_string(opt.circuit)));
  std::stringstream bin;
  write_aiger_binary(opt.circuit, bin);
  report("binary AIGER (.aig)", s27, parse_aiger_binary(bin));

  const std::string aag = write_aiger_string(opt.circuit);
  std::printf("\noptimized s27 as ASCII AIGER:\n%s", aag.c_str());
  std::printf("binary AIGER is %zu bytes (ASCII: %zu)\n",
              bin.str().size(), aag.size());
  return 0;
}
