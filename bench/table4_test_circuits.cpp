// Regenerates Table IV: the six large test designs used by the downstream
// evaluations. At the default scale the generators target 1/16 of the
// paper's node counts (DEEPSEQ_FULL=1 targets the exact counts); this bench
// also reports the decomposed-AIG sizes the model actually consumes.

#include <cstdio>

#include "bench_util.hpp"
#include "dataset/test_designs.hpp"
#include "netlist/aig.hpp"
#include "netlist/topology.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE IV", "statistics of the test designs", cfg);

  std::printf("%-11s | %-28s | %8s | %8s | %6s | %5s | %6s || %9s\n",
              "Design", "Description", "# Nodes", "AIG", "FFs", "PIs",
              "depth", "paper #");
  std::printf("%.*s\n", 104, "--------------------------------------------------"
                             "------------------------------------------------------");
  for (const TestDesign& d :
       build_all_test_designs(cfg.design_scale, cfg.eval_seed)) {
    const AigConversion conv = decompose_to_aig(d.netlist);
    const Levelization lv = comb_levelize(conv.aig);
    std::printf("%-11s | %-28s | %8zu | %8zu | %6zu | %5zu | %6d || %9d\n",
                d.name.c_str(), d.description.c_str(), d.netlist.num_nodes(),
                conv.aig.num_nodes(), d.netlist.ffs().size(),
                d.netlist.pis().size(), lv.depth, d.paper_nodes);
  }
  std::printf("\n(# Nodes targets paper_count x %.4f; AIG = after the §V-A2 "
              "gate decomposition used for inference)\n",
              cfg.design_scale);
  return 0;
}
