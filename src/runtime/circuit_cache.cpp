#include "runtime/circuit_cache.hpp"

#include <cstring>

namespace deepseq::runtime {

std::uint64_t EmbeddingKey::hash64() const {
  std::uint64_t h = structure.digest;
  h = hash_mix(h, exact);
  h = hash_mix(h, backend_fingerprint);
  h = hash_mix(h, workload_fingerprint);
  h = hash_mix(h, init_seed);
  return h;
}

bool EmbeddingKey::operator==(const EmbeddingKey& o) const {
  return structure == o.structure && exact == o.exact &&
         backend_fingerprint == o.backend_fingerprint &&
         workload_fingerprint == o.workload_fingerprint &&
         init_seed == o.init_seed;
}

std::uint64_t workload_fingerprint(const Workload& w) {
  std::uint64_t h = hash_mix(0x3019ULL, w.pi_prob.size());
  for (double p : w.pi_prob) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(p));
    std::memcpy(&bits, &p, sizeof(bits));
    h = hash_mix(h, bits);
  }
  return hash_mix(h, w.pattern_seed);
}

CircuitCache::CircuitCache(const CircuitCacheConfig& config)
    : structures_(config.structure_capacity, config.shards),
      embeddings_(config.embedding_capacity, config.shards),
      regressions_(config.regression_capacity, config.shards) {
  // Export every layer's hit/miss/eviction stream process-wide (all caches
  // of a process aggregate under one name — snapshot deltas isolate one
  // serving run when needed).
  auto& reg = obs::Registry::global();
  const auto bind = [&reg](auto& layer, const char* name) {
    const std::string prefix = std::string("cache.") + name;
    layer.bind_obs(&reg.counter(prefix + ".hits"),
                   &reg.counter(prefix + ".misses"),
                   &reg.counter(prefix + ".evictions"));
  };
  bind(structures_, "structures");
  bind(embeddings_, "embeddings");
  bind(regressions_, "regressions");
}

CircuitCache::Stats CircuitCache::stats() const {
  Stats s;
  s.structures = structures_.counters();
  s.embeddings = embeddings_.counters();
  s.regressions = regressions_.counters();
  s.structure_entries = structures_.size();
  s.embedding_entries = embeddings_.size();
  s.regression_entries = regressions_.size();
  return s;
}

}  // namespace deepseq::runtime
