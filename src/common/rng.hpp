#pragma once

#include <cstdint>
#include <vector>

namespace deepseq {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64-seeded state). Every stochastic component of the library takes
/// an explicit `Rng&` or seed so experiments regenerate bit-identically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool bernoulli(double p);

  /// 64 independent Bernoulli(p) draws packed into one word (bit i is lane i).
  std::uint64_t bernoulli_word(double p);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Derive an independent child generator (stable given the parent state).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace deepseq
