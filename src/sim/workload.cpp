#include "sim/workload.hpp"

namespace deepseq {

Workload random_workload(const Circuit& c, Rng& rng) {
  Workload w;
  w.pi_prob.reserve(c.pis().size());
  for (std::size_t k = 0; k < c.pis().size(); ++k)
    w.pi_prob.push_back(rng.uniform());
  w.pattern_seed = rng.next_u64();
  return w;
}

Workload low_activity_workload(const Circuit& c, Rng& rng,
                               double active_fraction) {
  Workload w;
  w.pi_prob.reserve(c.pis().size());
  for (std::size_t k = 0; k < c.pis().size(); ++k) {
    if (rng.bernoulli(active_fraction)) {
      w.pi_prob.push_back(rng.uniform());
    } else {
      w.pi_prob.push_back(rng.bernoulli(0.5) ? 1.0 : 0.0);
    }
  }
  w.pattern_seed = rng.next_u64();
  return w;
}

}  // namespace deepseq
