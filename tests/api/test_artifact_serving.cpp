#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/backends.hpp"
#include "api/ensemble.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
#include "artifact/model_io.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "nn/graph.hpp"

namespace deepseq::api {
namespace {

ModelConfig small_model() { return ModelConfig::deepseq(/*hidden=*/8, /*t=*/2); }

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::shared_ptr<const Circuit> shared_aig(std::uint64_t seed) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 5;
  spec.num_ffs = 3;
  spec.num_gates = 40;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return std::make_shared<const Circuit>(generate_circuit(spec, rng));
}

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TaskRequest make_request(std::shared_ptr<const Circuit> circuit, TaskKind task,
                         std::uint64_t workload_seed = 9,
                         std::uint64_t init_seed = 7) {
  Rng rng(workload_seed);
  TaskRequest req;
  req.workload = random_workload(*circuit, rng);
  req.circuit = std::move(circuit);
  req.task = task;
  req.init_seed = init_seed;
  return req;
}

/// Fine-tune a small model briefly on s27 and return it (deterministic).
DeepSeqModel tuned_model(int epochs = 2) {
  DeepSeqModel model(small_model());
  Rng rng(5);
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  std::vector<TrainSample> train;
  for (int k = 0; k < 2; ++k) {
    Workload w = random_workload(aig, rng);
    ActivityOptions opt;
    opt.num_cycles = 200;
    train.push_back(make_sample("s27_" + std::to_string(k), aig, std::move(w),
                                opt, rng.next_u64()));
  }
  TrainOptions opt;
  opt.epochs = epochs;
  opt.lr = 5e-3f;
  Trainer trainer(model, opt);
  trainer.fit(train);
  return model;
}

/// Save `model` as an artifact and load it back (the full disk round trip
/// a production weight push takes).
std::shared_ptr<const artifact::Artifact> artifact_for(
    const DeepSeqModel& model, const std::string& name) {
  artifact::Artifact a = artifact::snapshot(model);
  const std::string path = tmp_path(name);
  artifact::save_artifact(path, a);
  return std::make_shared<const artifact::Artifact>(
      artifact::load_artifact(path));
}

// ---- acceptance: trainer -> artifact -> Session, bit-identical -------------

TEST(ArtifactServing, TunedHeadsServeBitIdenticalThroughSession) {
  const DeepSeqModel tuned = tuned_model();
  const auto art = artifact_for(tuned, "tuned.dsqa");

  SessionConfig cfg;
  cfg.engine.threads = 2;
  cfg.backends.model = small_model();
  cfg.backends.artifact = art;
  Session session(cfg);

  // The artifact-built backend advertises its provenance + derived identity.
  const BackendInfo& info = session.backend().info();
  EXPECT_EQ(info.weights, artifact_weights_label(art->manifest.content_hash));
  EXPECT_EQ(info.fingerprint, artifact_fingerprint(art->manifest.content_hash));
  EXPECT_NE(info.fingerprint, deepseq_fingerprint(small_model()));

  const auto circuit = shared_aig(1);
  const TaskRequest lg_req = make_request(circuit, TaskKind::kLogicProb);
  const TaskResult lg = session.run_sync(lg_req);
  const TaskResult tr =
      session.run_sync(make_request(circuit, TaskKind::kTransitionProb));
  const TaskResult emb =
      session.run_sync(make_request(circuit, TaskKind::kEmbedding));

  // Reference: invoke the tuned DeepSeqModel directly.
  nn::Graph g(false);
  const auto want_emb = tuned.embed(g, build_circuit_graph(*circuit),
                                    lg_req.workload, lg_req.init_seed);
  const auto want = tuned.regress(g, want_emb);
  EXPECT_TRUE(bit_identical(*emb.as<EmbeddingOutput>().embedding,
                            want_emb->value));
  EXPECT_TRUE(bit_identical(*lg.as<LogicProbOutput>().prob, want.lg->value));
  EXPECT_TRUE(bit_identical(*tr.as<TransitionProbOutput>().prob,
                            want.tr->value));
}

TEST(ArtifactServing, TrainerSaveArtifactEmbedsProvenance) {
  DeepSeqModel model(small_model());
  Rng rng(5);
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  ActivityOptions sim;
  sim.num_cycles = 100;
  Workload w = random_workload(aig, rng);
  const std::vector<TrainSample> train = {
      make_sample("s27", aig, std::move(w), sim, 3)};
  TrainOptions opt;
  opt.epochs = 2;
  Trainer trainer(model, opt);
  trainer.fit(train);

  const std::string path = tmp_path("trainer.dsqa");
  const std::uint64_t hash = trainer.save_artifact(path);
  const artifact::Artifact a = artifact::load_artifact(path);
  EXPECT_EQ(a.manifest.content_hash, hash);
  ASSERT_NE(a.find_metadata("epochs"), nullptr);
  EXPECT_EQ(*a.find_metadata("epochs"), "2");
  EXPECT_NE(a.find_metadata("final_loss"), nullptr);
  EXPECT_NE(a.find_metadata("lr"), nullptr);

  // The artifact holds the trained weights, not the init: rebuilding from
  // it matches the live model's predictions bit-exactly.
  DeepSeqModel rebuilt(a.manifest.model);
  artifact::apply(a, rebuilt);
  const auto circuit = shared_aig(2);
  Rng wrng(11);
  const Workload wl = random_workload(*circuit, wrng);
  nn::Graph g1(false), g2(false);
  const auto got =
      rebuilt.forward(g1, build_circuit_graph(*circuit), wl, 7);
  const auto ref = model.forward(g2, build_circuit_graph(*circuit), wl, 7);
  EXPECT_TRUE(bit_identical(got.lg->value, ref.lg->value));
  EXPECT_TRUE(bit_identical(got.tr->value, ref.tr->value));
}

// ---- hot reload -------------------------------------------------------------

TEST(ArtifactServing, ReloadWeightsSwapsFingerprintAndResultsWithoutDrops) {
  SessionConfig cfg;
  cfg.engine.threads = 2;
  cfg.backends.model = small_model();
  Session session(cfg);

  const std::uint64_t seed_fingerprint = session.backend().info().fingerprint;
  EXPECT_EQ(session.backend().info().weights, "seed");

  // In-flight load across several circuits, submitted before the push.
  std::vector<std::shared_ptr<const Circuit>> circuits;
  std::vector<std::future<TaskResult>> inflight;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    circuits.push_back(shared_aig(s));
    inflight.push_back(
        session.submit(make_request(circuits.back(), TaskKind::kLogicProb, s)));
  }

  const DeepSeqModel tuned = tuned_model();
  const auto art = artifact_for(tuned, "reload.dsqa");
  const std::uint64_t new_fingerprint = session.reload_weights(art);

  EXPECT_NE(new_fingerprint, seed_fingerprint);
  EXPECT_EQ(new_fingerprint, artifact_fingerprint(art->manifest.content_hash));
  EXPECT_EQ(session.backend().info().fingerprint, new_fingerprint);
  EXPECT_EQ(session.backend().info().weights,
            artifact_weights_label(art->manifest.content_hash));

  // Nothing submitted before the push was dropped, and each result is the
  // OLD weights' output (the weights it was submitted against).
  const DeepSeqModel untuned(small_model());
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    const TaskResult r = inflight[i].get();
    const TaskRequest ref_req =
        make_request(circuits[i], TaskKind::kLogicProb, i + 1);
    nn::Graph g(false);
    const auto want = untuned.regress(
        g, untuned.embed(g, build_circuit_graph(*circuits[i]),
                         ref_req.workload, ref_req.init_seed));
    EXPECT_TRUE(bit_identical(*r.as<LogicProbOutput>().prob, want.lg->value))
        << "in-flight task " << i;
  }

  // Subsequent submits serve the tuned weights.
  const TaskRequest req = make_request(circuits[0], TaskKind::kLogicProb, 1);
  const TaskResult after = session.run_sync(req);
  nn::Graph g(false);
  const auto want = tuned.regress(
      g, tuned.embed(g, build_circuit_graph(*circuits[0]), req.workload,
                     req.init_seed));
  EXPECT_TRUE(bit_identical(*after.as<LogicProbOutput>().prob, want.lg->value));
  EXPECT_FALSE(after.embedding_cache_hit);  // new fingerprint = new cache keys

  // Re-pushing the already-live artifact is indistinguishable from a
  // factory ignoring it — both fail fast with the fingerprint unchanged.
  EXPECT_THROW((void)session.reload_weights(art), Error);
  EXPECT_EQ(session.backend().info().fingerprint, new_fingerprint);

  // Reload errors leave the serving instance untouched.
  PaceConfig pc;
  pc.hidden_dim = 8;
  pc.layers = 1;
  auto wrong_kind = std::make_shared<const artifact::Artifact>(
      artifact::snapshot(PaceEncoder(pc)));
  EXPECT_THROW((void)session.reload_weights(wrong_kind), Error);
  EXPECT_EQ(session.backend().info().fingerprint, new_fingerprint);
  EXPECT_THROW((void)session.reload_weights(nullptr), Error);
}

// ---- cache isolation --------------------------------------------------------

TEST(ArtifactServing, DifferentArtifactsNeverShareCacheEntries) {
  // Two artifact weight-sets with identical architecture, served through
  // ONE session (one shared CircuitCache): every layer must key them apart.
  ModelConfig cfg_a = small_model();
  ModelConfig cfg_b = small_model();
  cfg_b.seed = 31337;  // same shapes, different weights
  const auto art_a = artifact_for(DeepSeqModel(cfg_a), "iso_a.dsqa");
  const auto art_b = artifact_for(DeepSeqModel(cfg_b), "iso_b.dsqa");
  ASSERT_NE(art_a->manifest.content_hash, art_b->manifest.content_hash);

  BackendRegistry registry;
  registry.register_backend("tuned-a", [art_a](const BackendOptions&) {
    return std::make_unique<DeepSeqBackend>(*art_a);
  });
  registry.register_backend("tuned-b", [art_b](const BackendOptions&) {
    return std::make_unique<DeepSeqBackend>(*art_b);
  });

  SessionConfig cfg;
  cfg.backend = "tuned-a";
  cfg.engine.threads = 2;
  Session session(cfg, registry);

  const auto circuit = shared_aig(3);
  TaskRequest req = make_request(circuit, TaskKind::kLogicProb);
  req.backend = "tuned-a";
  const TaskResult ra = session.run_sync(req);
  req.backend = "tuned-b";
  const TaskResult rb = session.run_sync(req);

  // Same circuit, workload and seed — but different weights: nothing may be
  // served across the two backends from any cache layer.
  auto stats = session.cache_stats();
  EXPECT_EQ(stats.structures.misses, 2u);
  EXPECT_EQ(stats.embeddings.misses, 2u);
  EXPECT_EQ(stats.embeddings.hits, 0u);
  EXPECT_EQ(stats.regressions.misses, 2u);
  EXPECT_EQ(stats.regressions.hits, 0u);
  EXPECT_FALSE(bit_identical(*ra.as<LogicProbOutput>().prob,
                             *rb.as<LogicProbOutput>().prob));

  // Sanity: the SAME artifact does share (warm path still works).
  req.backend = "tuned-a";
  const TaskResult warm = session.run_sync(req);
  EXPECT_TRUE(warm.embedding_cache_hit);
  EXPECT_TRUE(warm.regression_cache_hit);
  EXPECT_TRUE(bit_identical(*ra.as<LogicProbOutput>().prob,
                            *warm.as<LogicProbOutput>().prob));
  stats = session.cache_stats();
  EXPECT_EQ(stats.embeddings.misses, 2u);  // unchanged
}

// ---- ensemble backend -------------------------------------------------------

TEST(EnsembleBackend, FingerprintDerivesFromBaseAndK) {
  BackendOptions opts;
  opts.model = small_model();
  opts.ensemble_k = 3;
  auto& reg = BackendRegistry::global();
  ASSERT_TRUE(reg.contains("ensemble"));
  auto base = reg.create("deepseq", opts);
  auto ens3 = reg.create("ensemble", opts);
  opts.ensemble_k = 5;
  auto ens5 = reg.create("ensemble", opts);

  EXPECT_EQ(ens3->info().name, "ensemble");
  EXPECT_EQ(ens3->info().fingerprint,
            ensemble_fingerprint(base->info().fingerprint, 3));
  EXPECT_NE(ens3->info().fingerprint, base->info().fingerprint);
  EXPECT_NE(ens3->info().fingerprint, ens5->info().fingerprint);
  EXPECT_TRUE(ens3->info().supports_regress);
  EXPECT_FALSE(ens3->info().supports_reliability);
  EXPECT_THROW(EnsembleBackend(nullptr, 2), Error);
  EXPECT_THROW(EnsembleBackend(reg.create("deepseq", opts), 0), Error);
}

TEST(EnsembleBackend, EmbeddingIsMeanOverRealizations) {
  BackendOptions opts;
  opts.model = small_model();
  opts.ensemble_k = 3;
  auto& reg = BackendRegistry::global();
  auto base = reg.create("deepseq", opts);
  auto ens = reg.create("ensemble", opts);

  const auto circuit = shared_aig(4);
  Rng rng(9);
  const Workload w = random_workload(*circuit, rng);
  const auto state = ens->prepare(*circuit);
  const nn::Tensor got = ens->embed(*state, w, /*init_seed=*/7);

  // Reference: the documented realization seeds through the base backend,
  // averaged with the same double accumulation.
  const auto base_state = base->prepare(*circuit);
  std::vector<nn::Tensor> members;
  for (int r = 0; r < 3; ++r)
    members.push_back(base->embed(
        *base_state, w, EnsembleBackend::realization_seed(7, r)));
  nn::Tensor want = members[0];
  for (std::size_t i = 0; i < want.size(); ++i) {
    double acc = members[0].data()[i];
    acc += members[1].data()[i];
    acc += members[2].data()[i];
    want.data()[i] = static_cast<float>(acc / 3.0);
  }
  EXPECT_TRUE(bit_identical(got, want));
  // Members are genuinely distinct realizations.
  EXPECT_FALSE(bit_identical(members[0], members[1]));
}

TEST(EnsembleBackend, ServesProbabilityTasksThroughSession) {
  SessionConfig cfg;
  cfg.backend = "ensemble";
  cfg.engine.threads = 2;
  cfg.backends.model = small_model();
  cfg.backends.ensemble_k = 2;
  Session session(cfg);
  const auto circuit = shared_aig(5);
  const TaskResult res =
      session.run_sync(make_request(circuit, TaskKind::kLogicProb));
  EXPECT_EQ(res.backend, "ensemble");
  EXPECT_EQ(res.as<LogicProbOutput>().prob->rows(),
            static_cast<int>(circuit->num_nodes()));
  // Reliability must fail fast on the ensemble.
  EXPECT_THROW(
      (void)session.submit(make_request(circuit, TaskKind::kReliability)),
      Error);
}

// ---- DEEPSEQ_ARTIFACT plumbing ---------------------------------------------

TEST(ArtifactEnv, UnsetYieldsNoArtifact) {
  ::unsetenv("DEEPSEQ_ARTIFACT");
  EXPECT_EQ(artifact_from_env(), nullptr);
  EXPECT_EQ(options_from_env().artifact, nullptr);
}

TEST(ArtifactEnv, NonexistentPathFailsFastNamingVariableAndPath) {
  ::setenv("DEEPSEQ_ARTIFACT", "/no/such/weights.dsqa", 1);
  try {
    (void)artifact_from_env();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("DEEPSEQ_ARTIFACT"), std::string::npos) << msg;
    EXPECT_NE(msg.find("/no/such/weights.dsqa"), std::string::npos) << msg;
  }
  ::unsetenv("DEEPSEQ_ARTIFACT");
}

TEST(ArtifactEnv, ValidPathLoadsIntoOptionsAndKindMismatchNamesBoth) {
  PaceConfig pc;
  pc.hidden_dim = 8;
  pc.layers = 1;
  artifact::Artifact pace_art = artifact::snapshot(PaceEncoder(pc));
  const std::string path = tmp_path("env_pace.dsqa");
  artifact::save_artifact(path, pace_art);

  ::setenv("DEEPSEQ_ARTIFACT", path.c_str(), 1);
  const BackendOptions opts = options_from_env();
  ASSERT_NE(opts.artifact, nullptr);
  EXPECT_EQ(opts.artifact->manifest.backend_kind, artifact::kKindPace);

  // The matching backend builds...
  auto pace = BackendRegistry::global().create("pace", opts);
  EXPECT_EQ(pace->info().fingerprint,
            artifact_fingerprint(opts.artifact->manifest.content_hash));
  // ...and a mismatched one fails fast naming both kinds — no silent
  // fallback to seed weights.
  try {
    (void)BackendRegistry::global().create("deepseq", opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pace"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deepseq"), std::string::npos) << msg;
  }
  ::unsetenv("DEEPSEQ_ARTIFACT");
}

}  // namespace
}  // namespace deepseq::api
