#include "api/ensemble.hpp"

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "netlist/structural_hash.hpp"

namespace deepseq::api {

std::uint64_t ensemble_fingerprint(std::uint64_t base_fingerprint, int k) {
  return hash_mix(hash_mix(0xE25EULL, base_fingerprint),
                  static_cast<std::uint64_t>(k));
}

std::uint64_t EnsembleBackend::realization_seed(std::uint64_t init_seed,
                                                int r) {
  return hash_mix(init_seed, static_cast<std::uint64_t>(r) + 1);
}

EnsembleBackend::EnsembleBackend(std::unique_ptr<EmbeddingBackend> base, int k)
    : base_(std::move(base)), k_(k) {
  if (base_ == nullptr) throw Error("EnsembleBackend: null base backend");
  if (k_ < 1)
    throw Error("EnsembleBackend: need at least 1 realization, got " +
                std::to_string(k_));
  info_ = base_->info();  // hidden_dim, weights provenance, capabilities
  info_.name = "ensemble";
  info_.fingerprint = ensemble_fingerprint(base_->info().fingerprint, k_);
  info_.supports_reliability = false;
}

std::shared_ptr<const BackendState> EnsembleBackend::prepare(
    const Circuit& aig) const {
  return base_->prepare(aig);
}

nn::Tensor EnsembleBackend::embed(const BackendState& state, const Workload& w,
                                  std::uint64_t init_seed) const {
  nn::Tensor out = base_->embed(state, w, realization_seed(init_seed, 0));
  if (k_ == 1) return out;
  // Accumulate in double so the mean is independent of summation noise
  // across realizations; the realization order is fixed, so results are
  // deterministic either way.
  std::vector<double> acc(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) acc[i] = out.data()[i];
  for (int r = 1; r < k_; ++r) {
    const nn::Tensor t = base_->embed(state, w, realization_seed(init_seed, r));
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += t.data()[i];
  }
  const double inv_k = 1.0 / static_cast<double>(k_);
  for (std::size_t i = 0; i < acc.size(); ++i)
    out.data()[i] = static_cast<float>(acc[i] * inv_k);
  return out;
}

Regression EnsembleBackend::regress(const nn::Tensor& embedding) const {
  return base_->regress(embedding);
}

}  // namespace deepseq::api
