#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "support/equivalence.hpp"

namespace deepseq {
namespace {

TEST(VerilogParse, MinimalCombinationalModule) {
  const Circuit c = parse_verilog_string(R"(
    module half_adder (a, b, s, co);
      input a, b;
      output s, co;
      xor g1 (s, a, b);
      and g2 (co, a, b);
    endmodule
  )");
  EXPECT_EQ(c.name(), "half_adder");
  EXPECT_EQ(c.pis().size(), 2u);
  EXPECT_EQ(c.pos().size(), 2u);
  EXPECT_EQ(c.type_counts()[static_cast<int>(GateType::kXor)], 1u);
  EXPECT_EQ(c.type_counts()[static_cast<int>(GateType::kAnd)], 1u);
}

TEST(VerilogParse, DffWithFeedbackAndClock) {
  const Circuit c = parse_verilog_string(R"(
    // toggle flip-flop
    module toggle (clk, q);
      input clk;
      output q;
      wire nq;
      DFF r (.Q(q), .D(nq), .CK(clk));
      not g (nq, q);
    endmodule
  )");
  // clk only drives the DFF clock pin, so it is not a logic PI.
  EXPECT_EQ(c.pis().size(), 0u);
  EXPECT_EQ(c.ffs().size(), 1u);
  // The FF toggles every cycle: 0, 1, 0, 1, ...
  SequentialSimulator sim(c);
  const NodeId q = c.pos()[0];
  bool expected = false;
  for (int cycle = 0; cycle < 8; ++cycle) {
    sim.step({});
    EXPECT_EQ(sim.value(q) & 1ULL, expected ? 1ULL : 0ULL) << "cycle " << cycle;
    sim.clock();
    expected = !expected;
  }
}

TEST(VerilogParse, PositionalDffAndInstancelessGates) {
  const Circuit c = parse_verilog_string(R"(
    module m (clk, d, q);
      input clk, d;
      output q;
      DFF r1 (q, d, clk);
    endmodule
  )");
  EXPECT_EQ(c.pis().size(), 1u);  // clk dropped, d kept
  EXPECT_EQ(c.ffs().size(), 1u);
}

TEST(VerilogParse, ClockUsedAsDataStaysPi) {
  const Circuit c = parse_verilog_string(R"(
    module m (clk, q, y);
      input clk;
      output q, y;
      DFF r1 (q, y, clk);
      buf g (y, clk);
    endmodule
  )");
  EXPECT_EQ(c.pis().size(), 1u);  // clk also feeds a buf, so it is a PI
}

TEST(VerilogParse, AssignFormsProduceExpectedGates) {
  const Circuit c = parse_verilog_string(R"(
    module m (a, b, s, y0, y1, y2, y3);
      input a, b, s;
      output y0, y1, y2, y3;
      assign y0 = a;
      assign y1 = ~a;
      assign y2 = s ? a : b;
      assign y3 = 1'b1;
    endmodule
  )");
  const auto counts = c.type_counts();
  EXPECT_EQ(counts[static_cast<int>(GateType::kBuf)], 1u);
  EXPECT_GE(counts[static_cast<int>(GateType::kNot)], 2u);  // ~a and const1
  EXPECT_EQ(counts[static_cast<int>(GateType::kMux)], 1u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kConst0)], 1u);
}

TEST(VerilogParse, NaryGatesExpandToTrees) {
  const Circuit c = parse_verilog_string(R"(
    module m (a, b, d, e, y);
      input a, b, d, e;
      output y;
      nand g (y, a, b, d, e);
    endmodule
  )");
  // 4-input NAND = NOT over a 3-AND tree.
  EXPECT_EQ(c.type_counts()[static_cast<int>(GateType::kAnd)], 3u);
  EXPECT_EQ(c.type_counts()[static_cast<int>(GateType::kNot)], 1u);
  SequentialSimulator sim(c);
  sim.step({~0ULL, ~0ULL, ~0ULL, ~0ULL});
  EXPECT_EQ(sim.value(c.pos()[0]) & 1ULL, 0ULL);
  sim.step({~0ULL, 0ULL, ~0ULL, ~0ULL});
  EXPECT_EQ(sim.value(c.pos()[0]) & 1ULL, 1ULL);
}

TEST(VerilogParse, NaryGateFeedingNaryGateResolvesOutOfOrder) {
  const Circuit c = parse_verilog_string(R"(
    module m (a, b, d, y);
      input a, b, d;
      output y;
      and g2 (y, w, a, b);
      or  g1 (w, a, b, d);
    endmodule
  )");
  EXPECT_EQ(c.pos().size(), 1u);
}

TEST(VerilogParse, RejectsBuses) {
  EXPECT_THROW(parse_verilog_string("module m (a); input [3:0] a; endmodule"),
               ParseError);
}

TEST(VerilogParse, RejectsUnknownModule) {
  EXPECT_THROW(parse_verilog_string(R"(
    module m (a, y);
      input a; output y;
      SUPERGATE g (y, a);
    endmodule
  )"),
               ParseError);
}

TEST(VerilogParse, RejectsDoubleDriver) {
  EXPECT_THROW(parse_verilog_string(R"(
    module m (a, y);
      input a; output y;
      buf g1 (y, a);
      not g2 (y, a);
    endmodule
  )"),
               ParseError);
}

TEST(VerilogParse, CommentsAreIgnored) {
  const Circuit c = parse_verilog_string(R"(
    /* block
       comment */
    module m (a, y); // trailing
      input a;
      output y;
      buf g (y, a); /* inline */
    endmodule
  )");
  EXPECT_EQ(c.pis().size(), 1u);
}

TEST(VerilogRoundTrip, S27IsSimulationEquivalent) {
  const Circuit c = iscas89_s27();
  const Circuit back = parse_verilog_string(write_verilog_string(c));
  testing::expect_po_equivalent(c, back, 200, 31);
}

TEST(VerilogRoundTrip, Counter4IsSimulationEquivalent) {
  const Circuit c = counter4();
  const Circuit back = parse_verilog_string(write_verilog_string(c));
  testing::expect_po_equivalent(c, back, 200, 32);
}

class VerilogRoundTripRandom : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(VerilogRoundTripRandom, GenericCircuitSurvivesRoundTrip) {
  Rng rng(GetParam());
  GeneratorSpec spec;
  spec.num_pis = 5;
  spec.num_ffs = 6;
  spec.num_gates = 120;
  const Circuit c = generate_circuit(spec, rng);
  const Circuit back = parse_verilog_string(write_verilog_string(c));
  EXPECT_EQ(c.ffs().size(), back.ffs().size());
  testing::expect_po_equivalent(c, back, 128, GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogRoundTripRandom,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(VerilogRoundTrip, AigCircuitSurvivesRoundTrip) {
  Rng rng(77);
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 4;
  spec.num_gates = 100;
  const Circuit generic = generate_circuit(spec, rng);
  const Circuit aig = decompose_to_aig(generic).aig;
  const Circuit back = parse_verilog_string(write_verilog_string(aig));
  testing::expect_po_equivalent(aig, back, 128, 78);
}

TEST(VerilogWrite, ClkNameCollisionIsAvoided) {
  Circuit c("m");
  const NodeId clk_named_pi = c.add_pi("clk");  // a data PI named clk
  const NodeId ff = c.add_ff(clk_named_pi, "q");
  c.add_po(ff, "y");
  const std::string text = write_verilog_string(c);
  const Circuit back = parse_verilog_string(text);
  EXPECT_EQ(back.pis().size(), 1u);
  EXPECT_EQ(back.ffs().size(), 1u);
  testing::expect_po_equivalent(c, back, 64, 5);
}

}  // namespace
}  // namespace deepseq
