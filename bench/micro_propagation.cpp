// Single-circuit propagation microbenchmark across the Table IV designs and
// nn-executor thread counts: the intra-level parallelism lever this layer
// exists for. For every design the bench times DeepSeqModel::embed under
// DEEPSEQ_NN_THREADS-equivalent executors (1 = the sequential path), checks
// parallel embeddings bit-identical to sequential, and — for the largest
// design — verifies gradient bit-identity in grad mode and records
// per-level (per planner flush) timing.
//
// Emits a table and micro_propagation.json (bench_util::JsonWriter) with a
// `threads` dimension so the perf trajectory of the record/plan/execute
// stack is machine-readable across commits. Note the speedup column only
// means something on a multi-core host: `hardware_concurrency` is part of
// the JSON so a 1-core CI box reporting ~1.0x is self-explaining.
//
// Knobs: DEEPSEQ_PROP_THREADS (max thread sweep, default 4),
// DEEPSEQ_PROP_REPS (timing repetitions, default 3), DEEPSEQ_FULL=1 for
// paper-scale designs and model.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"
#include "dataset/test_designs.hpp"
#include "netlist/aig.hpp"
#include "nn/executor.hpp"
#include "nn/gradcheck.hpp"
#include "runtime/thread_pool.hpp"

using namespace deepseq;
using namespace deepseq::bench;

namespace {

struct Design {
  std::string name;
  Circuit aig;
  CircuitGraph graph;
  Workload workload;
  int levels = 0;
};

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

double time_embed(const DeepSeqModel& model, const Design& d,
                  nn::Executor& exec, int reps, nn::Tensor* out,
                  nn::ExecStats* stats = nullptr) {
  nn::ExecutorScope scope(exec);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const bool trace = stats != nullptr && rep == 0;
    nn::ExecStats local;
    WallTimer t;
    nn::Graph g(/*grad_enabled=*/false);
    nn::Var e;
    if (trace) {
      nn::ExecTraceScope ts(local);
      e = model.embed(g, d.graph, d.workload, 7);
    } else {
      e = model.embed(g, d.graph, d.workload, 7);
    }
    best = std::min(best, t.millis());
    if (trace) *stats = std::move(local);
    if (rep == 0 && out != nullptr) *out = e->value;
  }
  return best;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("PROPAGATION",
               "single-circuit embed vs nn-executor threads (record/plan/"
               "execute)",
               cfg);

  const int max_threads = static_cast<int>(env_int("DEEPSEQ_PROP_THREADS", 4));
  const int reps = static_cast<int>(env_int("DEEPSEQ_PROP_REPS", 3));
  std::vector<int> sweep{1};
  for (const int t : {2, 4, 8})
    if (t <= max_threads) sweep.push_back(t);

  std::vector<Design> designs;
  for (TestDesign& td :
       build_all_test_designs(default_design_scale(), cfg.eval_seed)) {
    Design d;
    d.name = td.name;
    d.aig = optimize_aig(decompose_to_aig(td.netlist).aig).circuit;
    d.graph = build_circuit_graph(d.aig);
    Rng rng(cfg.eval_seed);
    d.workload = random_workload(d.aig, rng);
    d.levels = static_cast<int>(d.graph.comb_forward.size());
    designs.push_back(std::move(d));
  }
  std::size_t largest = 0;
  for (std::size_t i = 1; i < designs.size(); ++i)
    if (designs[i].aig.num_nodes() > designs[largest].aig.num_nodes())
      largest = i;

  const DeepSeqModel model(ModelConfig::deepseq(cfg.hidden, cfg.iterations));
  runtime::ThreadPool pool(sweep.back());

  JsonWriter json;
  json.begin_object();
  json.field("bench", "micro_propagation");
  json.field("hidden", cfg.hidden);
  json.field("iterations", cfg.iterations);
  json.field("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));
  json.field("largest_design", designs[largest].name);
  json.begin_array("rows");

  std::printf("%-10s | %6s %6s | %7s | %10s | %8s | %5s\n", "design", "nodes",
              "levels", "threads", "embed ms", "speedup", "biteq");
  std::printf("%.*s\n", 70, std::string(70, '-').c_str());

  double largest_best_speedup = 0.0;
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const Design& d = designs[i];
    nn::Tensor reference;
    double seq_ms = 0.0;
    for (const int threads : sweep) {
      nn::Executor exec(&pool, threads);
      nn::Tensor embedding;
      const double ms = time_embed(model, d, exec, reps, &embedding);
      const bool identical =
          threads == 1 ? true : bit_identical(reference, embedding);
      if (threads == 1) {
        reference = std::move(embedding);
        seq_ms = ms;
      }
      const double speedup = ms > 0.0 ? seq_ms / ms : 0.0;
      if (i == largest && threads > 1)
        largest_best_speedup = std::max(largest_best_speedup, speedup);
      std::printf("%-10s | %6zu %6d | %7d | %10.2f | %7.2fx | %5s\n",
                  d.name.c_str(), d.aig.num_nodes(), d.levels, threads, ms,
                  speedup, identical ? "yes" : "NO");
      json.begin_object();
      json.field("design", d.name);
      json.field("nodes", static_cast<std::uint64_t>(d.aig.num_nodes()));
      json.field("levels", d.levels);
      json.field("threads", threads);
      json.field("embed_ms", ms);
      json.field("speedup_vs_1t", speedup);
      json.field("bit_identical", identical);
      json.end_object();
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  json.end_array();  // rows

  // Per-level (per planner flush) timing of the largest design, sequential
  // vs widest executor — the machine-readable shape of where time goes.
  {
    const Design& d = designs[largest];
    for (const int threads : {1, sweep.back()}) {
      nn::Executor exec(&pool, threads);
      nn::ExecStats stats;
      time_embed(model, d, exec, 1, nullptr, &stats);
      json.key("levels_" + std::to_string(threads) + "t");
      json.begin_object();
      json.field("flushes", stats.flushes);
      json.field("waves", stats.waves);
      json.field("chunks", stats.chunks);
      json.field("parallel_waves", stats.parallel_waves);
      json.begin_array("flush_ms");
      for (const double ms : stats.flush_ms) json.value(ms);
      json.end_array();
      json.end_object();
      if (threads == 1)
        std::printf("%s per-level trace: %d flushes, %d waves, %d chunks\n",
                    d.name.c_str(), stats.flushes, stats.waves, stats.chunks);
    }
  }

  // Grad-mode parity on the largest design: loss and every parameter
  // gradient bit-identical between sequential and parallel backward.
  {
    const Design& d = designs[largest];
    const nn::Tensor target_lg(d.graph.num_nodes, 1);
    const auto params = model.params();
    auto run = [&](nn::Executor& exec, std::vector<nn::Tensor>& grads) {
      nn::ExecutorScope scope(exec);
      for (const auto& [name, p] : params) {
        (void)name;
        if (p->has_grad()) p->grad.zero();
      }
      nn::Graph g(/*grad_enabled=*/true);
      const auto out = model.forward(g, d.graph, d.workload, 7);
      const nn::Var loss = g.l1_loss(out.lg, target_lg);
      g.backward(loss);
      grads.clear();
      for (const auto& [name, p] : params) {
        (void)name;
        grads.push_back(p->has_grad()
                            ? p->grad
                            : nn::Tensor(p->value.rows(), p->value.cols()));
      }
      return loss->value.at(0, 0);
    };
    nn::Executor seq;
    nn::Executor par(&pool, sweep.back());
    std::vector<nn::Tensor> g_seq, g_par;
    const float loss_seq = run(seq, g_seq);
    const float loss_par = run(par, g_par);
    bool grads_identical = loss_seq == loss_par && g_seq.size() == g_par.size();
    for (std::size_t k = 0; grads_identical && k < g_seq.size(); ++k)
      grads_identical = bit_identical(g_seq[k], g_par[k]);
    std::printf("grad-mode parity on %s at %d threads: %s\n", d.name.c_str(),
                sweep.back(), grads_identical ? "bit-identical" : "DIVERGED");
    json.field("grad_bit_identical", grads_identical);
  }

  json.field("largest_speedup_at_max_threads", largest_best_speedup);
  json.end_object();
  write_json_file("micro_propagation.json", json.str());
  return 0;
}
