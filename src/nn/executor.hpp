#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/plan.hpp"

namespace deepseq::runtime {
class ThreadPool;
}

namespace deepseq::nn {

/// Resolve the DEEPSEQ_NN_THREADS knob (strict env_int): the explicit value
/// when set, else `fallback` (the shared pool's size, or hardware
/// concurrency for the process-global executor). 1 selects the sequential
/// path; values < 1 fall back too.
int nn_threads_from_env(int fallback);

/// DEEPSEQ_NN_DEPSCHED knob (env_int): 0 falls back to the per-cut barrier
/// scheduler (ChainDriver, the PR 5 behavior) for A/B benching and parity
/// testing; any other value (and unset) selects dependency-counted
/// scheduling with a single end-of-flush sync. Read per flush.
bool nn_depsched_from_env();

/// Per-flush execution counters, collected when an ExecTraceScope is active
/// on the calling thread (benches and the structural CI gate use this).
/// `barriers`/`chains`/`chain_len_hist`/`global_syncs`/`released_chains`/
/// `barriered_chains` are structural properties of the built plans and the
/// selected scheduler — independent of how many cores actually ran them.
struct ExecStats {
  int flushes = 0;
  int barriers = 0;       // cut waves planned (what the barrier scheduler pays)
  int chains = 0;         // chain clusters planned (fused chains + singletons)
  int steps = 0;          // kernel steps executed
  int fused_ops = 0;      // ops that rode inside a multi-op chain
  int parallel_cuts = 0;  // cuts dispatched to the pool with > 1 task
  /// Global synchronization points the active scheduler actually pays: one
  /// end-of-flush completion wait per flush under dependency-counted
  /// scheduling, one per cut under DEEPSEQ_NN_DEPSCHED=0.
  int global_syncs = 0;
  /// Chain tasks released straight to the claim queue by a finishing
  /// producer (dependency-counted scheduling only).
  int released_chains = 0;
  /// Chain tasks that waited behind a cut barrier instead (barrier
  /// scheduling only: every task beyond the first cut).
  int barriered_chains = 0;
  int slab_gather_rows = 0;   // gather rows served from a state slab
  int slab_scatter_rows = 0;  // rows scattered into a state slab
  int simd_lanes = 1;         // kernel lane width of the last flush (8 = AVX2)
  std::array<int, kChainHistBuckets> chain_len_hist{};  // chains by length
  std::vector<double> flush_ms;  // one entry per Graph::flush, in call order
};

/// The execute layer: runs a Plan's cut waves of chain tasks — and taped
/// ops' backward kernels — over a shared runtime::ThreadPool. The calling
/// thread always participates in a cut (it drains the same task queue the
/// pool helpers do), so executors may safely share the pool that is running
/// their caller: a saturated pool degrades to inline execution instead of
/// deadlocking.
///
/// Results are bit-identical to sequential execution at any thread count
/// and any DEEPSEQ_NN_FUSE / DEEPSEQ_NN_DEPSCHED / DEEPSEQ_NN_SIMD setting:
/// every output element is produced by exactly one step with the same
/// per-element operation order as the single-chunk scalar kernel (the SIMD
/// layer guarantees this per kernel), concurrent chain tasks write disjoint
/// outputs (distinct ops, or disjoint row ranges of a row-split chain), the
/// dependency-counted schedule releases a task only after every producer
/// task finished, and backward kernels are chunked only where gradient
/// scatter targets are provably disjoint (aliased operands fall back to the
/// sequential order).
class Executor {
 public:
  /// Sequential executor (the DEEPSEQ_NN_THREADS=1 path).
  Executor();
  /// Run plans with up to `threads` workers on `pool` (non-owning; must
  /// outlive the executor). threads <= 1 never touches the pool.
  Executor(runtime::ThreadPool* pool, int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int threads() const { return threads_; }
  runtime::ThreadPool* pool() const { return pool_; }

  /// Execute a flushed batch: cuts in order, chain tasks of a cut
  /// potentially in parallel, each task's steps sequentially on one thread.
  /// Fills taped ops' backward byproducts (argmax, saved). Takes the plan
  /// by value: pool helpers share the schedule and may outlive the call.
  void run(Plan plan);

  /// Run the backward kernels of `ops` (already in reverse topological
  /// order). Chunkable ops (disjoint scatter targets) keep their own
  /// prep + parts cuts; consecutive non-chunkable ops fuse into one
  /// sequential chain task — one barrier per run instead of one per op.
  /// Ops whose output never received a gradient are skipped, exactly as in
  /// sequential backward.
  void run_backward(const std::vector<Op*>& ops);

  /// Process-global executor: owns a pool sized by DEEPSEQ_NN_THREADS
  /// (default: hardware concurrency). DEEPSEQ_NN_THREADS=1 keeps everything
  /// on the calling thread.
  static Executor& global();

  /// The executor Graph flushes use on this thread: the innermost active
  /// ExecutorScope's, or global().
  static Executor& current();

 private:
  friend class ExecutorScope;

  /// Dispatch one plan: inline when small/sequential; otherwise the
  /// dependency-counted DepDriver (tasks released to one claim queue as
  /// their producers finish, a single end-of-flush completion wait) or,
  /// under DEEPSEQ_NN_DEPSCHED=0, the per-cut barrier ChainDriver. The
  /// caller participates; up to threads-1 pool helpers are enlisted once
  /// for the whole plan and stay hot across releases.
  void run_plan(Plan plan);

  runtime::ThreadPool* pool_ = nullptr;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  int threads_ = 1;
};

/// RAII thread-local executor override: Graphs flushed on this thread while
/// the scope is alive use `e` (the serving layer threads its shared worker
/// pool into the nn layer this way).
class ExecutorScope {
 public:
  explicit ExecutorScope(Executor& e);
  ~ExecutorScope();
  ExecutorScope(const ExecutorScope&) = delete;
  ExecutorScope& operator=(const ExecutorScope&) = delete;

 private:
  Executor* prev_;
};

/// RAII per-flush stats collection on the calling thread (benches only).
class ExecTraceScope {
 public:
  explicit ExecTraceScope(ExecStats& stats);
  ~ExecTraceScope();
  ExecTraceScope(const ExecTraceScope&) = delete;
  ExecTraceScope& operator=(const ExecTraceScope&) = delete;

 private:
  ExecStats* prev_;
};

}  // namespace deepseq::nn
