#include "serve/protocol.hpp"

#include <cstring>

#include "common/error.hpp"

namespace deepseq::serve {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kOverloadQueueFull: return "overload-queue-full";
    case ErrorCode::kOverloadDeadline: return "overload-deadline";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

// ---- WireWriter ------------------------------------------------------------

void WireWriter::u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(b, 4);
}

void WireWriter::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(b, 8);
}

void WireWriter::f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void WireWriter::bytes(const void* data, std::size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

// ---- WireReader ------------------------------------------------------------

const void* WireReader::raw(std::size_t n, const char* what) {
  if (size_ - pos_ < n)
    throw Error(std::string("serve wire: truncated while reading ") + what +
                " at offset " + std::to_string(pos_) + " (need " +
                std::to_string(n) + " bytes, have " +
                std::to_string(size_ - pos_) + ")");
  const void* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::u8(const char* what) {
  return *static_cast<const std::uint8_t*>(raw(1, what));
}

std::uint32_t WireReader::u32(const char* what) {
  const auto* b = static_cast<const unsigned char*>(raw(4, what));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64(const char* what) {
  const auto* b = static_cast<const unsigned char*>(raw(8, what));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

float WireReader::f32(const char* what) {
  const std::uint32_t bits = u32(what);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double WireReader::f64(const char* what) {
  const std::uint64_t bits = u64(what);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str(const char* what) {
  const std::uint32_t n = u32(what);
  if (n > kMaxFrameBytes)
    throw Error(std::string("serve wire: implausible string length for ") +
                what + ": " + std::to_string(n));
  const char* p = static_cast<const char*>(raw(n, what));
  return std::string(p, n);
}

void WireReader::expect_done(const char* message_name) const {
  if (pos_ != size_)
    throw Error(std::string("serve wire: ") + std::to_string(size_ - pos_) +
                " trailing bytes after decoding " + message_name);
}

// ---- sub-codecs ------------------------------------------------------------

void encode_circuit(WireWriter& w, const Circuit& c) {
  w.str(c.name());
  w.u32(static_cast<std::uint32_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    w.u8(static_cast<std::uint8_t>(c.type(v)));
    w.u8(static_cast<std::uint8_t>(c.num_fanins(v)));
    for (int i = 0; i < c.num_fanins(v); ++i)
      w.u32(c.fanin(v, i));
    w.str(c.node_name(v));
  }
  w.u32(static_cast<std::uint32_t>(c.pos().size()));
  for (std::size_t k = 0; k < c.pos().size(); ++k) {
    w.u32(c.pos()[k]);
    w.str(c.po_name(k));
  }
}

Circuit decode_circuit(WireReader& r) {
  Circuit c(r.str("circuit name"));
  const std::uint32_t num_nodes = r.u32("node count");
  if (num_nodes >= kNullNode)
    throw Error("serve wire: implausible node count " +
                std::to_string(num_nodes));
  // Two passes: nodes are created in id order with placeholder fanins first
  // (a fanin may legally reference a later node — FF feedback), then wired.
  struct PendingFanin {
    NodeId node;
    int slot;
    NodeId source;
  };
  std::vector<PendingFanin> wiring;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    const std::uint8_t type_byte = r.u8("node type");
    if (type_byte >= kNumGateTypes)
      throw Error("serve wire: node " + std::to_string(v) +
                  " has unknown gate type " + std::to_string(type_byte));
    const auto type = static_cast<GateType>(type_byte);
    const int arity = r.u8("fanin count");
    if (arity != gate_arity(type))
      throw Error("serve wire: node " + std::to_string(v) + " (" +
                  std::string(gate_type_name(type)) + ") carries " +
                  std::to_string(arity) + " fanins, type needs " +
                  std::to_string(gate_arity(type)));
    std::vector<NodeId> fanins(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      const NodeId src = r.u32("fanin id");
      if (src >= num_nodes)
        throw Error("serve wire: node " + std::to_string(v) +
                    " fanin references id " + std::to_string(src) +
                    " beyond node count " + std::to_string(num_nodes));
      fanins[static_cast<std::size_t>(i)] = src;
    }
    std::string name = r.str("node name");
    NodeId id = kNullNode;
    switch (type) {
      case GateType::kPi: id = c.add_pi(std::move(name)); break;
      case GateType::kConst0: id = c.add_const0(std::move(name)); break;
      case GateType::kFf: id = c.add_ff(kNullNode, std::move(name)); break;
      default:
        id = c.add_gate(type,
                        std::vector<NodeId>(fanins.size(), kNullNode),
                        std::move(name));
        break;
    }
    for (int i = 0; i < arity; ++i)
      wiring.push_back({id, i, fanins[static_cast<std::size_t>(i)]});
  }
  for (const PendingFanin& pf : wiring) c.set_fanin(pf.node, pf.slot, pf.source);
  const std::uint32_t num_pos = r.u32("PO count");
  if (num_pos > num_nodes)
    throw Error("serve wire: more POs than nodes");
  for (std::uint32_t k = 0; k < num_pos; ++k) {
    const NodeId node = r.u32("PO node id");
    if (node >= num_nodes)
      throw Error("serve wire: PO references id beyond node count");
    c.add_po(node, r.str("PO name"));
  }
  return c;
}

void encode_workload(WireWriter& w, const Workload& wl) {
  w.u64(wl.pattern_seed);
  w.u32(static_cast<std::uint32_t>(wl.pi_prob.size()));
  for (double p : wl.pi_prob) w.f64(p);
}

Workload decode_workload(WireReader& r) {
  Workload wl;
  wl.pattern_seed = r.u64("workload seed");
  const std::uint32_t n = r.u32("workload PI count");
  if (static_cast<std::uint64_t>(n) * 8 > kMaxFrameBytes)
    throw Error("serve wire: implausible workload PI count");
  wl.pi_prob.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) wl.pi_prob[i] = r.f64("PI probability");
  return wl;
}

void encode_tensor(WireWriter& w, const nn::Tensor& t) {
  w.u32(static_cast<std::uint32_t>(t.rows()));
  w.u32(static_cast<std::uint32_t>(t.cols()));
  // Raw IEEE-754 bit patterns: the decoded tensor is bit-identical.
  for (std::size_t i = 0; i < t.size(); ++i) w.f32(t.data()[i]);
}

nn::Tensor decode_tensor(WireReader& r) {
  const std::uint32_t rows = r.u32("tensor rows");
  const std::uint32_t cols = r.u32("tensor cols");
  if (static_cast<std::uint64_t>(rows) * cols * 4 > kMaxFrameBytes)
    throw Error("serve wire: implausible tensor shape " +
                std::to_string(rows) + "x" + std::to_string(cols));
  nn::Tensor t(static_cast<int>(rows), static_cast<int>(cols));
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = r.f32("tensor value");
  return t;
}

namespace {

void encode_doubles(WireWriter& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (double d : v) w.f64(d);
}

std::vector<double> decode_doubles(WireReader& r, const char* what) {
  const std::uint32_t n = r.u32(what);
  if (static_cast<std::uint64_t>(n) * 8 > kMaxFrameBytes)
    throw Error(std::string("serve wire: implausible vector length for ") +
                what);
  std::vector<double> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = r.f64(what);
  return v;
}

std::shared_ptr<const nn::Tensor> decode_tensor_ptr(WireReader& r) {
  return std::make_shared<const nn::Tensor>(decode_tensor(r));
}

void encode_structure(WireWriter& w, const StructuralHash& h) {
  w.u64(h.digest);
  w.u32(h.num_nodes);
  w.u32(h.num_pis);
  w.u32(h.num_pos);
  w.u32(h.num_ffs);
}

StructuralHash decode_structure(WireReader& r) {
  StructuralHash h;
  h.digest = r.u64("structure digest");
  h.num_nodes = r.u32("structure node count");
  h.num_pis = r.u32("structure PI count");
  h.num_pos = r.u32("structure PO count");
  h.num_ffs = r.u32("structure FF count");
  return h;
}

}  // namespace

// ---- messages --------------------------------------------------------------

std::string encode(const TaskRequestMsg& m) {
  WireWriter w;
  // The request id leads every request payload (before even the version),
  // so a server can address a typed error for an undecodable frame.
  w.u64(m.request_id);
  w.u32(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(m.task));
  w.str(m.backend);
  w.u64(m.init_seed);
  w.u32(m.deadline_ms);
  encode_circuit(w, m.circuit);
  encode_workload(w, m.workload);
  return w.take();
}

TaskRequestMsg decode_task_request(const std::string& payload) {
  WireReader r(payload);
  TaskRequestMsg m;
  m.request_id = r.u64("request id");
  const std::uint32_t version = r.u32("protocol version");
  if (version != kProtocolVersion)
    throw Error("serve wire: protocol version " + std::to_string(version) +
                " (this server speaks " + std::to_string(kProtocolVersion) +
                ")");
  const std::uint8_t kind = r.u8("task kind");
  if (kind >= 6)
    throw Error("serve wire: unknown task kind " + std::to_string(kind));
  m.task = static_cast<api::TaskKind>(kind);
  m.backend = r.str("backend name");
  m.init_seed = r.u64("init seed");
  m.deadline_ms = r.u32("deadline");
  m.circuit = decode_circuit(r);
  m.workload = decode_workload(r);
  r.expect_done("TaskRequest");
  return m;
}

std::string encode(const TaskResponseMsg& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u32(m.shard);
  const api::TaskResult& res = m.result;
  w.u8(static_cast<std::uint8_t>(res.task));
  w.str(res.backend);
  encode_structure(w, res.structure);
  w.u8(static_cast<std::uint8_t>((res.structure_cache_hit ? 1 : 0) |
                                 (res.embedding_cache_hit ? 2 : 0) |
                                 (res.regression_cache_hit ? 4 : 0)));
  w.f64(res.queue_ms);
  w.f64(res.compute_ms);
  w.f64(res.total_ms);
  switch (res.task) {
    case api::TaskKind::kEmbedding:
      encode_tensor(w, *res.as<api::EmbeddingOutput>().embedding);
      break;
    case api::TaskKind::kLogicProb:
      encode_tensor(w, *res.as<api::LogicProbOutput>().prob);
      break;
    case api::TaskKind::kTransitionProb:
      encode_tensor(w, *res.as<api::TransitionProbOutput>().prob);
      break;
    case api::TaskKind::kPower: {
      const auto& out = res.as<api::PowerOutput>();
      w.f64(out.report.total_watts);
      w.f64(out.report.combinational_watts);
      w.f64(out.report.sequential_watts);
      w.f64(out.report.io_watts);
      w.u64(out.report.nets_matched);
      w.u64(out.report.nets_missing);
      encode_doubles(w, out.logic1);
      encode_doubles(w, out.toggle_rate);
      break;
    }
    case api::TaskKind::kReliability: {
      const auto& out = res.as<api::ReliabilityOutput>();
      w.f64(out.circuit_reliability);
      encode_doubles(w, out.node_reliability);
      break;
    }
    case api::TaskKind::kTestability: {
      const auto& out = res.as<api::TestabilityOutput>();
      encode_doubles(w, out.scoap.cc0);
      encode_doubles(w, out.scoap.cc1);
      encode_doubles(w, out.scoap.co);
      w.u32(static_cast<std::uint32_t>(out.scoap.controllability_iterations));
      w.u32(static_cast<std::uint32_t>(out.scoap.observability_iterations));
      break;
    }
  }
  return w.take();
}

TaskResponseMsg decode_task_response(const std::string& payload) {
  WireReader r(payload);
  TaskResponseMsg m;
  m.request_id = r.u64("request id");
  m.shard = r.u32("shard index");
  const std::uint8_t kind = r.u8("task kind");
  if (kind >= 6)
    throw Error("serve wire: unknown task kind " + std::to_string(kind));
  api::TaskResult& res = m.result;
  res.task = static_cast<api::TaskKind>(kind);
  res.backend = r.str("backend name");
  res.structure = decode_structure(r);
  const std::uint8_t hits = r.u8("cache-hit flags");
  res.structure_cache_hit = (hits & 1) != 0;
  res.embedding_cache_hit = (hits & 2) != 0;
  res.regression_cache_hit = (hits & 4) != 0;
  res.queue_ms = r.f64("queue ms");
  res.compute_ms = r.f64("compute ms");
  res.total_ms = r.f64("total ms");
  switch (res.task) {
    case api::TaskKind::kEmbedding:
      res.output = api::EmbeddingOutput{decode_tensor_ptr(r)};
      break;
    case api::TaskKind::kLogicProb:
      res.output = api::LogicProbOutput{decode_tensor_ptr(r)};
      break;
    case api::TaskKind::kTransitionProb:
      res.output = api::TransitionProbOutput{decode_tensor_ptr(r)};
      break;
    case api::TaskKind::kPower: {
      api::PowerOutput out;
      out.report.total_watts = r.f64("total watts");
      out.report.combinational_watts = r.f64("combinational watts");
      out.report.sequential_watts = r.f64("sequential watts");
      out.report.io_watts = r.f64("io watts");
      out.report.nets_matched = r.u64("nets matched");
      out.report.nets_missing = r.u64("nets missing");
      out.logic1 = decode_doubles(r, "logic-1 probabilities");
      out.toggle_rate = decode_doubles(r, "toggle rates");
      res.output = std::move(out);
      break;
    }
    case api::TaskKind::kReliability: {
      api::ReliabilityOutput out;
      out.circuit_reliability = r.f64("circuit reliability");
      out.node_reliability = decode_doubles(r, "node reliability");
      res.output = std::move(out);
      break;
    }
    case api::TaskKind::kTestability: {
      api::TestabilityOutput out;
      out.scoap.cc0 = decode_doubles(r, "cc0");
      out.scoap.cc1 = decode_doubles(r, "cc1");
      out.scoap.co = decode_doubles(r, "co");
      out.scoap.controllability_iterations =
          static_cast<int>(r.u32("controllability iterations"));
      out.scoap.observability_iterations =
          static_cast<int>(r.u32("observability iterations"));
      res.output = std::move(out);
      break;
    }
  }
  r.expect_done("TaskResponse");
  return m;
}

std::string encode(const ErrorResponseMsg& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u8(static_cast<std::uint8_t>(m.code));
  w.str(m.detail);
  return w.take();
}

ErrorResponseMsg decode_error_response(const std::string& payload) {
  WireReader r(payload);
  ErrorResponseMsg m;
  m.request_id = r.u64("request id");
  const std::uint8_t code = r.u8("error code");
  if (code < 1 || code > 5)
    throw Error("serve wire: unknown error code " + std::to_string(code));
  m.code = static_cast<ErrorCode>(code);
  m.detail = r.str("error detail");
  r.expect_done("ErrorResponse");
  return m;
}

std::string encode(const ReloadRequestMsg& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.str(m.backend);
  w.str(m.artifact_ref);
  return w.take();
}

ReloadRequestMsg decode_reload_request(const std::string& payload) {
  WireReader r(payload);
  ReloadRequestMsg m;
  m.request_id = r.u64("request id");
  m.backend = r.str("backend name");
  m.artifact_ref = r.str("artifact ref");
  r.expect_done("ReloadRequest");
  return m;
}

std::string encode(const ReloadResponseMsg& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u64(m.fingerprint);
  w.u32(m.shards);
  return w.take();
}

ReloadResponseMsg decode_reload_response(const std::string& payload) {
  WireReader r(payload);
  ReloadResponseMsg m;
  m.request_id = r.u64("request id");
  m.fingerprint = r.u64("fingerprint");
  m.shards = r.u32("shard count");
  r.expect_done("ReloadResponse");
  return m;
}

std::string encode(const StatsRequestMsg& m) {
  WireWriter w;
  w.u64(m.request_id);
  return w.take();
}

StatsRequestMsg decode_stats_request(const std::string& payload) {
  WireReader r(payload);
  StatsRequestMsg m;
  m.request_id = r.u64("request id");
  r.expect_done("StatsRequest");
  return m;
}

std::string encode(const StatsResponseMsg& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.str(m.json);
  return w.take();
}

StatsResponseMsg decode_stats_response(const std::string& payload) {
  WireReader r(payload);
  StatsResponseMsg m;
  m.request_id = r.u64("request id");
  m.json = r.str("stats json");
  r.expect_done("StatsResponse");
  return m;
}

std::string encode_frame(MsgType type, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes)
    throw Error("serve wire: frame payload exceeds " +
                std::to_string(kMaxFrameBytes) + " bytes");
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

void FrameParser::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

std::optional<FrameParser::Frame> FrameParser::next() {
  const std::size_t avail = buf_.size() - scan_;
  if (avail < 5) {
    if (scan_ > 0 && avail == 0) {
      buf_.clear();
      scan_ = 0;
    }
    return std::nullopt;
  }
  WireReader header(buf_.data() + scan_, 5);
  const std::uint32_t len = header.u32("frame length");
  if (len > kMaxFrameBytes)
    throw Error("serve wire: frame length " + std::to_string(len) +
                " exceeds the " + std::to_string(kMaxFrameBytes) +
                "-byte limit");
  const std::uint8_t type = header.u8("frame type");
  if (type < 1 || type > 7)
    throw Error("serve wire: unknown frame type " + std::to_string(type));
  if (avail < 5u + len) return std::nullopt;
  Frame f;
  f.type = static_cast<MsgType>(type);
  f.payload.assign(buf_.data() + scan_ + 5, len);
  scan_ += 5u + len;
  // Compact once the consumed prefix dominates, keeping feed() amortized.
  if (scan_ > buf_.size() / 2) {
    buf_.erase(0, scan_);
    scan_ = 0;
  }
  return f;
}

}  // namespace deepseq::serve
