#include "api/session.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "power/pipeline.hpp"

namespace deepseq::api {
namespace {

double ms_between(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Which parts of the embedding pipeline a task consumes.
bool task_needs_embedding(TaskKind k) {
  switch (k) {
    case TaskKind::kEmbedding:
    case TaskKind::kLogicProb:
    case TaskKind::kTransitionProb:
    case TaskKind::kPower:
      return true;
    case TaskKind::kReliability:
    case TaskKind::kTestability:
      return false;
  }
  return true;
}

bool task_needs_state(TaskKind k) { return k == TaskKind::kReliability; }

bool task_needs_regress(TaskKind k) {
  return k == TaskKind::kLogicProb || k == TaskKind::kTransitionProb ||
         k == TaskKind::kPower;
}

}  // namespace

const char* task_name(TaskKind k) {
  switch (k) {
    case TaskKind::kEmbedding: return "embedding";
    case TaskKind::kLogicProb: return "logic-prob";
    case TaskKind::kTransitionProb: return "transition-prob";
    case TaskKind::kPower: return "power";
    case TaskKind::kReliability: return "reliability";
    case TaskKind::kTestability: return "testability";
  }
  return "?";
}

Session::Session(const SessionConfig& config, BackendRegistry& registry)
    : config_(config), registry_(registry), engine_(config.engine) {
  // Fail fast on a misconfigured default and have it ready before the first
  // request (backend construction builds model weights — not something to
  // pay inside a latency-sensitive first submit).
  config_.backend = registry_.resolve(config_.backend, "deepseq");
  (void)backend(config_.backend);
}

const EmbeddingBackend& Session::backend(const std::string& name) {
  return *backend_handle(name);
}

std::shared_ptr<const EmbeddingBackend> Session::backend_handle(
    const std::string& name) {
  const std::string& key = name.empty() ? config_.backend : name;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    const auto it = backends_.find(key);
    if (it != backends_.end()) return it->second;
  }
  // Construct outside the lock: building a backend means building model
  // weights, and holding backends_mu_ through that would stall every
  // concurrent submit (including ones for already-built backends). If two
  // threads race, both build deterministically identical backends and the
  // first insert wins.
  std::shared_ptr<EmbeddingBackend> created =
      registry_.create(key, config_.backends);
  std::lock_guard<std::mutex> lock(backends_mu_);
  return backends_.emplace(key, std::move(created)).first->second;
}

std::uint64_t Session::reload_weights(
    std::shared_ptr<const artifact::Artifact> artifact,
    const std::string& name) {
  if (artifact == nullptr)
    throw Error("Session::reload_weights: null artifact");
  const std::string key = name.empty() ? config_.backend : name;
  // Build the replacement through the same registry path as construction,
  // so kind/architecture mismatches fail here, before anything is swapped.
  BackendOptions options = config_.backends;
  options.artifact = std::move(artifact);
  // One push at a time: without this, two concurrent reloads could both
  // pass the no-op guard and swap in arbitrary order, leaving one caller
  // holding a "new serving fingerprint" that is not actually live.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::shared_ptr<EmbeddingBackend> replacement =
      registry_.create(key, options);
  const std::uint64_t fingerprint = replacement->info().fingerprint;
  // A push that does not change the serving fingerprint cannot be told
  // apart from a factory that ignored BackendOptions::artifact (a custom
  // registration that never reads it) — fail fast instead of reporting a
  // successful push that served nothing new. Only an already-built
  // instance can be "live"; a never-served name has nothing to compare.
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    const auto it = backends_.find(key);
    if (it != backends_.end() &&
        it->second->info().fingerprint == fingerprint)
      throw Error("Session::reload_weights: rebuilding '" + key +
                  "' from the artifact did not change the serving "
                  "fingerprint — either these exact weights are already "
                  "live, or the '" + key +
                  "' factory ignores BackendOptions::artifact");
  }
  // Let already-submitted batches finish on the weights they were submitted
  // against (each in-flight completion owns a handle on its instance, so
  // the swap below can never pull weights out from under a forward pass).
  engine_.drain();
  std::lock_guard<std::mutex> lock(backends_mu_);
  backends_[key] = std::move(replacement);
  return fingerprint;
}

runtime::EmbeddingRequest Session::to_engine_request(
    const TaskRequest& request, const EmbeddingBackend& be) const {
  if (!request.circuit)
    throw Error("Session: request without a circuit");
  if (task_needs_regress(request.task) && !be.info().supports_regress)
    throw Error(std::string("task '") + task_name(request.task) +
                "' needs regress heads, which backend '" + be.info().name +
                "' does not provide");
  if (request.task == TaskKind::kReliability && !be.info().supports_reliability)
    throw Error(std::string("backend '") + be.info().name +
                "' does not support the reliability task");
  runtime::EmbeddingRequest er;
  er.circuit = request.circuit;
  er.workload = request.workload;
  er.backend = &be;
  er.init_seed = request.init_seed;
  er.want_embedding = task_needs_embedding(request.task);
  er.want_state = task_needs_state(request.task);
  return er;
}

TaskResult Session::finish(const TaskRequest& request,
                           const EmbeddingBackend& be,
                           runtime::EmbeddingResult&& er) {
  const auto head_start = std::chrono::steady_clock::now();
  TaskResult result;
  result.task = request.task;
  result.backend = be.info().name;
  result.structure = er.structure;
  result.structure_cache_hit = er.structure_cache_hit;
  result.embedding_cache_hit = er.embedding_cache_hit;
  result.queue_ms = er.queue_ms;

  // Probability heads are cached under the request's EmbeddingKey, beside
  // the embedding itself: the shared_ptr aliasing below hands out views into
  // the cached Regression without copying.
  const auto regression = [&]() {
    return engine_.regress_cached(er.key, be, *er.embedding,
                                  &result.regression_cache_hit);
  };

  switch (request.task) {
    case TaskKind::kEmbedding: {
      result.output = EmbeddingOutput{std::move(er.embedding)};
      break;
    }
    case TaskKind::kLogicProb: {
      auto reg = regression();
      result.output =
          LogicProbOutput{std::shared_ptr<const nn::Tensor>(reg, &reg->lg)};
      break;
    }
    case TaskKind::kTransitionProb: {
      auto reg = regression();
      result.output =
          TransitionProbOutput{std::shared_ptr<const nn::Tensor>(reg, &reg->tr)};
      break;
    }
    case TaskKind::kPower: {
      const auto reg = regression();
      PowerOutput out;
      const std::size_t n = request.circuit->num_nodes();
      out.logic1.resize(n);
      out.toggle_rate.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        const int row = static_cast<int>(v);
        out.logic1[v] = reg->lg.at(row, 0);
        out.toggle_rate[v] = reg->tr.at(row, 0) + reg->tr.at(row, 1);
      }
      out.report = power_from_activity(*request.circuit, out.logic1,
                                       out.toggle_rate,
                                       config_.power_duration);
      result.output = std::move(out);
      break;
    }
    case TaskKind::kReliability: {
      ReliabilityEstimate est = be.reliability(*er.state, request.workload,
                                               /*pos=*/{}, request.init_seed);
      result.output = ReliabilityOutput{est.circuit_reliability,
                                        std::move(est.node_reliability)};
      break;
    }
    case TaskKind::kTestability: {
      result.output =
          TestabilityOutput{compute_scoap(*request.circuit, config_.scoap)};
      break;
    }
  }

  const double head_ms =
      ms_between(head_start, std::chrono::steady_clock::now());
  result.compute_ms = er.compute_ms + head_ms;
  result.total_ms = er.total_ms + head_ms;
  return result;
}

std::future<TaskResult> Session::submit(TaskRequest request) {
  // The completion owns the handle: the instance this task was submitted
  // against stays alive (and its weights untouched) through the forward
  // pass and task head even if reload_weights swaps the name meanwhile.
  std::shared_ptr<const EmbeddingBackend> be = backend_handle(request.backend);
  runtime::EmbeddingRequest er = to_engine_request(request, *be);
  return engine_.submit_then(
      std::move(er),
      [this, request = std::move(request),
       be = std::move(be)](runtime::EmbeddingResult&& result) {
        return finish(request, *be, std::move(result));
      });
}

TaskResult Session::run_sync(const TaskRequest& request) {
  const std::shared_ptr<const EmbeddingBackend> be =
      backend_handle(request.backend);
  return finish(request, *be,
                engine_.run_sync(to_engine_request(request, *be)));
}

void Session::flush() { engine_.flush(); }

void Session::drain() { engine_.drain(); }

}  // namespace deepseq::api
