#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netlist/circuit.hpp"
#include "sim/simulator.hpp"

namespace deepseq::testing {

/// Sequential equivalence check by co-simulation: drive both circuits with
/// the same random PI sequence (they must have the same number of PIs, in
/// corresponding creation order) and require identical PO values on every
/// cycle. Used by format round-trip and AIG-transformation property tests.
inline void expect_po_equivalent(const Circuit& a, const Circuit& b,
                                 int cycles, std::uint64_t seed) {
  ASSERT_EQ(a.pis().size(), b.pis().size());
  ASSERT_EQ(a.pos().size(), b.pos().size());
  SequentialSimulator sa(a), sb(b);
  Rng rng(seed);
  std::vector<std::uint64_t> words(a.pis().size());
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (auto& w : words) w = rng.next_u64();
    sa.step(words);
    sb.step(words);
    for (std::size_t k = 0; k < a.pos().size(); ++k)
      ASSERT_EQ(sa.value(a.pos()[k]), sb.value(b.pos()[k]))
          << "PO " << k << " diverges at cycle " << cycle;
    sa.clock();
    sb.clock();
  }
}

}  // namespace deepseq::testing
