#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace deepseq::obs {

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::atomic<std::uint64_t>& Counter::slot() {
  return slots_[thread_ordinal() % kShards].v;
}

// ---- histogram bucket math -------------------------------------------------

int Histogram::bucket_index(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kSub)) return static_cast<int>(v);
  const int e = 63 - std::countl_zero(v);  // floor log2, >= kSubBits
  const int sub =
      static_cast<int>((v >> (e - kSubBits)) & (static_cast<std::uint64_t>(kSub) - 1));
  return kSub + (e - kSubBits) * kSub + sub;
}

std::uint64_t Histogram::bucket_lower(int i) {
  if (i < kSub) return static_cast<std::uint64_t>(i);
  const int e = kSubBits + (i - kSub) / kSub;
  const int sub = (i - kSub) % kSub;
  return (std::uint64_t{1} << e) +
         (static_cast<std::uint64_t>(sub) << (e - kSubBits));
}

std::uint64_t Histogram::bucket_upper(int i) {
  if (i < kSub) return static_cast<std::uint64_t>(i);
  const int e = kSubBits + (i - kSub) / kSub;
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return bucket_lower(i) + width - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    s.count += n;
    s.buckets.emplace_back(bucket_upper(i), n);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  // Nearest rank: the value whose cumulative count first reaches rank.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (const auto& [upper, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      // Midpoint of the bucket, never past the exact max.
      const double lower =
          upper == 0 ? 0.0
                     : static_cast<double>(
                           Histogram::bucket_lower(Histogram::bucket_index(upper)));
      const double mid = (lower + static_cast<double>(upper)) / 2.0;
      return std::min(mid, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

Summary HistogramSnapshot::summary(double scale) const {
  Summary s;
  s.count = count;
  if (count == 0) return s;
  s.mean = static_cast<double>(sum) / static_cast<double>(count) * scale;
  s.p50 = percentile(0.50) * scale;
  s.p90 = percentile(0.90) * scale;
  s.p99 = percentile(0.99) * scale;
  s.max = static_cast<double>(max) * scale;
  return s;
}

// ---- snapshot / delta / json -----------------------------------------------

Snapshot delta(const Snapshot& now, const Snapshot& base) {
  Snapshot d;
  for (const auto& [name, v] : now.counters) {
    const auto it = base.counters.find(name);
    const std::uint64_t b = it == base.counters.end() ? 0 : it->second;
    d.counters[name] = v >= b ? v - b : 0;
  }
  d.gauges = now.gauges;
  for (const auto& [name, h] : now.histograms) {
    const auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      d.histograms[name] = h;
      continue;
    }
    const HistogramSnapshot& bh = it->second;
    HistogramSnapshot dh;
    std::map<std::uint64_t, std::uint64_t> counts(h.buckets.begin(),
                                                  h.buckets.end());
    for (const auto& [upper, n] : bh.buckets) {
      auto c = counts.find(upper);
      if (c != counts.end()) c->second = c->second >= n ? c->second - n : 0;
    }
    std::uint64_t top = 0;
    for (const auto& [upper, n] : counts) {
      if (n == 0) continue;
      dh.buckets.emplace_back(upper, n);
      dh.count += n;
      top = upper;
    }
    dh.sum = h.sum >= bh.sum ? h.sum - bh.sum : 0;
    dh.max = std::min(h.max, top);
    d.histograms[name] = std::move(dh);
  }
  return d;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out += ":{\"value\":" + std::to_string(g.value) +
           ",\"max\":" + std::to_string(g.max) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    const Summary s = h.summary();
    out += ":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"mean\":";
    append_double(out, s.mean);
    out += ",\"p50\":";
    append_double(out, s.p50);
    out += ",\"p90\":";
    append_double(out, s.p90);
    out += ",\"p99\":";
    append_double(out, s.p99);
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [upper, n] : h.buckets) {
      if (!bfirst) out.push_back(',');
      bfirst = false;
      out += "[" + std::to_string(upper) + "," + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

// ---- registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_)
    s.gauges[name] = {g->value(), g->max_value()};
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

std::string snapshot_json() { return to_json(Registry::global().snapshot()); }

void count_task_failed(const char* kind) {
  if (kind == nullptr) return;
  Registry::global().counter(std::string("task.failed.") + kind).inc();
}

}  // namespace deepseq::obs
