#include "ingest/stream_parser.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <utility>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "ingest/lexer.hpp"
#include "ingest/source.hpp"
#include "netlist/verilog_io.hpp"
#include "runtime/thread_pool.hpp"

namespace deepseq::ingest {

namespace {

constexpr std::size_t kDefaultChunkBytes = 1 << 20;  // 1 MiB

/// Tokens whose presence marks a module as behavioral (simulation-only):
/// the DFF companion module write_verilog appends trips always/initial/@.
bool behavioral_token(const std::string& text) {
  if (text == "@" || text == "#") return true;
  const std::string low = to_lower(text);
  return low == "always" || low == "initial" || low == "specify";
}

/// One module's token slice, cut out of the stream in source order.
struct ModuleSlice {
  std::vector<VerilogToken> tokens;
  std::uint64_t src_bytes = 0;
  bool behavioral = false;
};

/// Cuts the incoming token stream at module/endmodule boundaries. Tokens
/// between modules must open the next module; anything else is a
/// fail-fast (a corpus file is a plain concatenation of modules).
class ModuleSplitter {
 public:
  template <typename Sink>
  void consume(std::vector<VerilogToken>& tokens,
               std::vector<std::uint64_t>& offsets, Sink&& sink) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      VerilogToken& t = tokens[i];
      if (!in_module_) {
        if (to_lower(t.text) != "module")
          throw ParseError("expected 'module'", t.line);
        in_module_ = true;
        behavioral_ = false;
        start_offset_ = offsets[i];
      } else if (behavioral_token(t.text)) {
        behavioral_ = true;
      }
      const bool ends = in_module_ && to_lower(t.text) == "endmodule";
      const std::uint64_t end_offset = offsets[i] + t.text.size();
      current_.push_back(std::move(t));
      if (ends) {
        in_module_ = false;
        sink(ModuleSlice{std::move(current_), end_offset - start_offset_,
                         behavioral_});
        current_.clear();
      }
    }
    tokens.clear();
    offsets.clear();
  }

  bool mid_module() const { return in_module_; }
  /// The partial slice of a module truncated at EOF (parsed anyway so the
  /// reported error is the parser's own missing-endmodule message).
  ModuleSlice take_partial() {
    in_module_ = false;
    return ModuleSlice{std::move(current_), 0, false};
  }

 private:
  bool in_module_ = false;
  bool behavioral_ = false;
  std::uint64_t start_offset_ = 0;
  std::vector<VerilogToken> current_;
};

ParsedModule parse_slice(ModuleSlice&& slice) {
  WallTimer timer;
  ParsedModule out;
  out.src_bytes = slice.src_bytes;
  out.circuit = parse_verilog_tokens(std::move(slice.tokens));
  out.parse_ms = timer.millis();
  return out;
}

/// The shared driver: pump chunks through the lexer, cut modules, parse
/// them inline or on the pool, return modules in source order. On failure
/// the earliest error in source order wins: module parse errors (checked
/// in dispatch order) outrank a lex/split error, which always lies
/// further into the stream than any fully-dispatched module.
std::vector<ParsedModule> run_stream(
    const std::function<std::string_view()>& next_chunk,
    const IngestOptions& options, StreamStats* stats) {
  WallTimer total;
  StreamLexer lexer;
  ModuleSplitter splitter;

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    const int threads = options.resolved_threads();
    if (threads != 1)
      pool = (owned_pool = std::make_unique<runtime::ThreadPool>(threads))
                 .get();
  }

  std::vector<std::future<ParsedModule>> futures;
  std::vector<ParsedModule> modules;
  std::uint64_t skipped = 0;
  const auto sink = [&](ModuleSlice&& slice) {
    if (slice.behavioral && options.skip_behavioral) {
      ++skipped;
      return;
    }
    if (pool != nullptr) {
      futures.push_back(pool->submit_with_result(
          [s = std::make_shared<ModuleSlice>(std::move(slice))]() {
            return parse_slice(std::move(*s));
          }));
    } else {
      modules.push_back(parse_slice(std::move(slice)));
    }
  };

  std::exception_ptr stream_error;
  try {
    for (;;) {
      const std::string_view chunk = next_chunk();
      if (chunk.empty()) break;
      lexer.feed(chunk);
      splitter.consume(lexer.tokens(), lexer.offsets(), sink);
    }
    lexer.finish();
    splitter.consume(lexer.tokens(), lexer.offsets(), sink);
    if (splitter.mid_module()) sink(splitter.take_partial());
  } catch (...) {
    stream_error = std::current_exception();
  }

  for (auto& f : futures) modules.push_back(f.get());  // source order
  if (stream_error) std::rethrow_exception(stream_error);

  if (stats != nullptr) {
    stats->file_bytes = lexer.bytes_fed();
    stats->modules_parsed = modules.size();
    stats->modules_skipped = skipped;
    stats->peak_carry_bytes = lexer.peak_carry_bytes();
    stats->max_token_bytes = lexer.max_token_bytes();
    stats->elapsed_ms = total.millis();
  }
  return modules;
}

}  // namespace

std::size_t IngestOptions::resolved_chunk_bytes() const {
  if (chunk_bytes > 0) return chunk_bytes;
  const std::int64_t v =
      env_int("DEEPSEQ_INGEST_CHUNK", static_cast<std::int64_t>(kDefaultChunkBytes));
  if (v <= 0)
    throw Error("DEEPSEQ_INGEST_CHUNK must be a positive byte count, got " +
                env_string("DEEPSEQ_INGEST_CHUNK", ""));
  return static_cast<std::size_t>(v);
}

int IngestOptions::resolved_threads() const {
  std::int64_t v = threads;
  if (v < 0) v = env_int("DEEPSEQ_INGEST_THREADS", 1);
  if (v < 0)
    throw Error("DEEPSEQ_INGEST_THREADS must be >= 0, got " +
                env_string("DEEPSEQ_INGEST_THREADS", ""));
  return static_cast<int>(v);  // 0 = one worker per hardware thread
}

std::vector<ParsedModule> parse_verilog_modules_file(const std::string& path,
                                                     const IngestOptions& options,
                                                     StreamStats* stats) {
  FileChunkReader reader(path, options.resolved_chunk_bytes());
  auto modules = run_stream([&reader]() { return reader.next_chunk(); },
                            options, stats);
  if (stats != nullptr) {
    stats->chunk_bytes = reader.chunk_bytes();
    stats->reader_buffer_bytes = reader.buffer_bytes();
    stats->mmap_backed = reader.mmap_backed();
  }
  return modules;
}

std::vector<ParsedModule> parse_verilog_modules_string(
    const std::string& text, const IngestOptions& options,
    StreamStats* stats) {
  const std::size_t chunk = options.resolved_chunk_bytes();
  std::size_t pos = 0;
  const auto next_chunk = [&]() -> std::string_view {
    if (pos >= text.size()) return {};
    const std::size_t n = std::min(chunk, text.size() - pos);
    const std::string_view view(text.data() + pos, n);
    pos += n;
    return view;
  };
  auto modules = run_stream(next_chunk, options, stats);
  if (stats != nullptr) stats->chunk_bytes = chunk;
  return modules;
}

Circuit parse_verilog_file_first_module(const std::string& path,
                                        std::string fallback_name,
                                        std::size_t chunk_bytes) {
  IngestOptions options;
  options.chunk_bytes = chunk_bytes;
  FileChunkReader reader(path, options.resolved_chunk_bytes());
  StreamLexer lexer;
  std::vector<VerilogToken> tokens;
  bool complete = false;
  const auto drain = [&]() {
    for (VerilogToken& t : lexer.tokens()) {
      const bool ends = to_lower(t.text) == "endmodule";
      tokens.push_back(std::move(t));
      if (ends) {
        complete = true;
        break;
      }
    }
    lexer.tokens().clear();
    lexer.offsets().clear();
  };
  for (;;) {
    const std::string_view chunk = reader.next_chunk();
    if (chunk.empty()) break;
    lexer.feed(chunk);
    drain();
    if (complete) break;  // stop reading: the rest of the file is not ours
  }
  if (!complete) {
    lexer.finish();
    drain();
  }
  // A missing endmodule falls through to the parser, which reports the
  // same error the legacy whole-text path does.
  return parse_verilog_tokens(std::move(tokens), std::move(fallback_name));
}

}  // namespace deepseq::ingest
