#include "power/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <filesystem>

#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

TEST(MapWorkload, PermutesProbabilitiesCorrectly) {
  const Circuit generic = iscas89_s27();
  const AigConversion conv = decompose_to_aig(generic);
  Workload w;
  w.pi_prob = {0.1, 0.2, 0.3, 0.4};
  w.pattern_seed = 5;
  const Workload mapped = map_workload_to_aig(generic, conv.node_map, conv.aig, w);
  ASSERT_EQ(mapped.pi_prob.size(), conv.aig.pis().size());
  // Check through names: the AIG PI named G1 carries G1's probability.
  for (std::size_t k = 0; k < generic.pis().size(); ++k) {
    const NodeId aig_pi = conv.node_map[generic.pis()[k]];
    // Find position in aig.pis().
    std::size_t pos = 0;
    while (conv.aig.pis()[pos] != aig_pi) ++pos;
    EXPECT_DOUBLE_EQ(mapped.pi_prob[pos], w.pi_prob[k]);
  }
}

TEST(MapWorkload, SizeMismatchThrows) {
  const Circuit generic = iscas89_s27();
  const AigConversion conv = decompose_to_aig(generic);
  Workload w;
  w.pi_prob = {0.5};
  EXPECT_THROW(map_workload_to_aig(generic, conv.node_map, conv.aig, w), Error);
}

/// The full Fig. 3 pipeline on a miniature design: exercises fine-tuning,
/// all four SAIF emissions and the analyzer. Keep the knobs tiny — this is
/// a smoke/contract test, not a benchmark.
TEST(PowerPipeline, EndToEndOnMiniDesign) {
  const TestDesign design = build_test_design("ptc", 0.04, 3);  // ~80 nodes

  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 2));
  GranniteConfig gcfg;
  gcfg.hidden_dim = 8;
  const GranniteModel grannite(gcfg);

  PowerPipelineOptions opt;
  opt.gt_sim_cycles = 400;
  opt.finetune_workloads = 2;
  opt.finetune_epochs = 1;
  opt.finetune_sim_cycles = 200;
  opt.saif_dir = ::testing::TempDir();
  PowerPipeline pipeline(pretrained, grannite, opt);

  Rng rng(17);
  const Workload w = low_activity_workload(design.netlist, rng, 0.4);
  const PowerComparison cmp = pipeline.run(design, w);

  EXPECT_GT(cmp.gt_mw, 0.0);
  EXPECT_GT(cmp.probabilistic_mw, 0.0);
  EXPECT_GT(cmp.grannite_mw, 0.0);
  EXPECT_GT(cmp.deepseq_mw, 0.0);
  EXPECT_GE(cmp.static_fraction, 0.0);
  EXPECT_LE(cmp.static_fraction, 1.0);

  // SAIF artifacts written for every method (the Fig. 3 handoff).
  for (const char* label : {"W0_gt", "W0_probabilistic", "W0_grannite", "W0_deepseq"}) {
    const std::string path =
        opt.saif_dir + "/ptc_" + label + ".saif";
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    const SaifDocument doc = parse_saif_file(path);
    EXPECT_EQ(doc.duration, opt.gt_sim_cycles);
    EXPECT_EQ(doc.nets.size(), design.netlist.num_nodes());
  }
}

TEST(PowerPipeline, MultipleWorkloadsShareFineTuning) {
  const TestDesign design = build_test_design("ptc", 0.03, 5);
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 1));
  GranniteConfig gcfg;
  gcfg.hidden_dim = 8;
  const GranniteModel grannite(gcfg);

  PowerPipelineOptions opt;
  opt.gt_sim_cycles = 300;
  opt.finetune_workloads = 2;
  opt.finetune_epochs = 1;
  opt.finetune_sim_cycles = 150;
  PowerPipeline pipeline(pretrained, grannite, opt);

  Rng rng(23);
  std::vector<Workload> ws;
  for (int k = 0; k < 3; ++k)
    ws.push_back(low_activity_workload(design.netlist, rng, 0.4));
  const auto rows = pipeline.run_workloads(design, ws);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].workload_id, "W0");
  EXPECT_EQ(rows[2].workload_id, "W2");
  // Different workloads give different ground-truth power.
  EXPECT_NE(rows[0].gt_mw, rows[1].gt_mw);
}

TEST(PowerPipeline, PretrainedModelsAreNotMutated) {
  const TestDesign design = build_test_design("ptc", 0.02, 7);
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 1));
  // Snapshot a weight.
  const auto params = pretrained.params();
  const float before = params[0].second->value.data()[0];

  GranniteConfig gcfg;
  gcfg.hidden_dim = 8;
  const GranniteModel grannite(gcfg);
  PowerPipelineOptions opt;
  opt.gt_sim_cycles = 200;
  opt.finetune_workloads = 1;
  opt.finetune_epochs = 1;
  opt.finetune_sim_cycles = 100;
  PowerPipeline pipeline(pretrained, grannite, opt);
  Rng rng(29);
  pipeline.run(design, low_activity_workload(design.netlist, rng, 0.5));
  EXPECT_FLOAT_EQ(params[0].second->value.data()[0], before);
}


class PipelineDist : public ::testing::TestWithParam<FinetuneDist> {};

TEST_P(PipelineDist, EveryDistributionRunsEndToEnd) {
  const TestDesign design = build_test_design("ptc", 0.04, 3);
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 2));
  GranniteConfig gcfg;
  gcfg.hidden_dim = 8;
  const GranniteModel grannite(gcfg);

  PowerPipelineOptions opt;
  opt.gt_sim_cycles = 300;
  opt.finetune_workloads = 2;
  opt.finetune_epochs = 1;
  opt.finetune_sim_cycles = 100;
  opt.finetune_dist = GetParam();
  opt.inference_init_seeds = 2;
  PowerPipeline pipeline(pretrained, grannite, opt);

  Rng rng(23);
  const Workload w = low_activity_workload(design.netlist, rng, 0.4);
  const PowerComparison cmp = pipeline.run(design, w);
  EXPECT_GT(cmp.gt_mw, 0.0);
  EXPECT_GT(cmp.deepseq_mw, 0.0);
  EXPECT_GT(cmp.grannite_mw, 0.0);
  EXPECT_GE(cmp.static_fraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Dists, PipelineDist,
                         ::testing::Values(FinetuneDist::kUniform,
                                           FinetuneDist::kLowActivity,
                                           FinetuneDist::kMixed),
                         [](const auto& info) {
                           return std::string(
                               finetune_dist_name(info.param)) == "low-activity"
                                      ? std::string("low_activity")
                                      : std::string(
                                            finetune_dist_name(info.param));
                         });

TEST(PowerPipeline, EnsembleAveragingIsDeterministic) {
  const TestDesign design = build_test_design("ptc", 0.04, 3);
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 2));
  GranniteConfig gcfg;
  gcfg.hidden_dim = 8;
  const GranniteModel grannite(gcfg);
  PowerPipelineOptions opt;
  opt.gt_sim_cycles = 200;
  opt.finetune_workloads = 2;
  opt.finetune_epochs = 1;
  opt.finetune_sim_cycles = 100;
  opt.inference_init_seeds = 3;
  Rng rng(29);
  const Workload w = low_activity_workload(design.netlist, rng, 0.4);
  PowerPipeline a(pretrained, grannite, opt), b(pretrained, grannite, opt);
  const PowerComparison ra = a.run(design, w), rb = b.run(design, w);
  EXPECT_DOUBLE_EQ(ra.deepseq_mw, rb.deepseq_mw);
  EXPECT_DOUBLE_EQ(ra.grannite_mw, rb.grannite_mw);
}


}  // namespace
}  // namespace deepseq
