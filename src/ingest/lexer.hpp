#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/verilog_io.hpp"

namespace deepseq::ingest {

/// Push-style chunked Verilog lexer: feed() the source in fixed-size
/// windows in order, finish() at EOF, drain tokens between feeds. Emits a
/// token stream identical — text, order and line numbers, including the
/// line reported by the unterminated-comment error — to the legacy
/// whole-text `tokenize_verilog`, for ANY chunking of the same bytes
/// (pinned against it in tests/ingest). A token or comment spanning a
/// chunk boundary is carried in a small state machine whose only byte
/// buffer is the partial token itself, so the peak carry-over is bounded
/// by the longest single token in the file — never by the file size.
class StreamLexer {
 public:
  /// Lex one more window of the source. Throws ParseError exactly where
  /// the legacy tokenizer does (escaped identifier, vector/bus bracket).
  void feed(std::string_view chunk);

  /// Signal EOF: completes a pending token, emits a pending '/', throws
  /// ParseError("unterminated comment") if EOF lands inside /* */.
  void finish();

  /// Tokens lexed so far and their byte offsets (offset of each token's
  /// first character in the overall stream, parallel to tokens). The
  /// consumer takes/clears them between feeds; the lexer only appends.
  std::vector<VerilogToken>& tokens() { return tokens_; }
  std::vector<std::uint64_t>& offsets() { return offsets_; }

  std::uint64_t bytes_fed() const { return offset_; }
  /// Largest partial-token carry ever held across a feed() boundary.
  std::size_t peak_carry_bytes() const { return peak_carry_; }
  /// Longest completed token seen (the bound peak_carry_bytes obeys).
  std::size_t max_token_bytes() const { return max_token_; }

 private:
  enum class State {
    kDefault,
    kSlash,      // '/' seen, comment kind undecided
    kLineComment,
    kBlock,      // inside /* */
    kBlockStar,  // inside /* */, previous char was '*'
    kIdent,
    kNumber,     // sized constant: digits then ident chars / '\''
  };

  void process(char ch);
  void emit(std::string text, int line, std::uint64_t offset);
  void emit_pending();

  State state_ = State::kDefault;
  int line_ = 1;
  std::uint64_t offset_ = 0;
  std::string tok_;           // partial ident/number being accumulated
  int tok_line_ = 0;
  std::uint64_t tok_offset_ = 0;
  int slash_line_ = 0;        // line of a pending undecided '/'
  std::uint64_t slash_offset_ = 0;
  bool block_nl_last_ = false;  // last comment char was a counted newline
  std::size_t peak_carry_ = 0;
  std::size_t max_token_ = 0;
  std::vector<VerilogToken> tokens_;
  std::vector<std::uint64_t> offsets_;
};

}  // namespace deepseq::ingest
