#include "api/backends.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "artifact/model_io.hpp"
#include "common/error.hpp"
#include "netlist/structural_hash.hpp"
#include "nn/graph.hpp"

namespace deepseq::api {
namespace {

DeepSeqModel deepseq_model_from_artifact(const artifact::Artifact& a) {
  artifact::require_kind(a, artifact::kKindDeepSeq);
  DeepSeqModel model(a.manifest.model);
  artifact::apply(a, model);
  return model;
}

PaceEncoder pace_encoder_from_artifact(const artifact::Artifact& a) {
  artifact::require_kind(a, artifact::kKindPace);
  PaceEncoder encoder(a.manifest.pace);
  artifact::apply(a, encoder);
  return encoder;
}

}  // namespace

Regression EmbeddingBackend::regress(const nn::Tensor&) const {
  throw Error("backend '" + info().name + "' does not support regress heads");
}

ReliabilityEstimate EmbeddingBackend::reliability(
    const BackendState&, const Workload&, const std::vector<NodeId>&,
    std::uint64_t) const {
  throw Error("backend '" + info().name +
              "' does not support the reliability task");
}

std::uint64_t deepseq_fingerprint(const ModelConfig& m) {
  return mix_config(0xD5ULL, m);
}

std::uint64_t pace_fingerprint(const PaceConfig& p) {
  return mix_config(0xFACEULL, p);
}

std::uint64_t artifact_fingerprint(std::uint64_t content_hash) {
  // A distinct domain tag keeps artifact-built identities disjoint from the
  // seed-built config fingerprints above.
  return hash_mix(0xA2717ULL, content_hash);
}

std::string artifact_weights_label(std::uint64_t content_hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "artifact:%016" PRIx64, content_hash);
  return buf;
}

// ---- DeepSeqBackend --------------------------------------------------------

DeepSeqBackend::DeepSeqBackend(const ModelConfig& config)
    : model_(config), reliability_model_(model_) {
  info_.name = "deepseq";
  info_.hidden_dim = config.hidden_dim;
  info_.fingerprint = deepseq_fingerprint(config);
  info_.supports_regress = true;
  info_.supports_reliability = true;
  info_.threaded_embed = true;
}

DeepSeqBackend::DeepSeqBackend(const artifact::Artifact& a)
    : model_(deepseq_model_from_artifact(a)), reliability_model_(model_) {
  // reliability_model_ forked the artifact backbone above; when the
  // artifact bundles a tuned error head, load it too (otherwise the head
  // keeps its deterministic seed initialization, as in the config ctor).
  if (a.has_section(artifact::kSectionReliability))
    artifact::apply(a, reliability_model_);
  const std::uint64_t content_hash = a.content_hash();
  info_.name = "deepseq";
  info_.hidden_dim = model_.config().hidden_dim;
  info_.fingerprint = artifact_fingerprint(content_hash);
  info_.weights = artifact_weights_label(content_hash);
  info_.supports_regress = true;
  info_.supports_reliability = true;
  info_.threaded_embed = true;
}

std::shared_ptr<const BackendState> DeepSeqBackend::prepare(
    const Circuit& aig) const {
  auto state = std::make_shared<DeepSeqState>();
  state->graph = build_circuit_graph(aig);
  state->pos.assign(aig.pos().begin(), aig.pos().end());
  return state;
}

nn::Tensor DeepSeqBackend::embed(const BackendState& state, const Workload& w,
                                 std::uint64_t init_seed) const {
  const auto& s = static_cast<const DeepSeqState&>(state);
  nn::Graph g(/*grad_enabled=*/false);
  return std::move(model_.embed(g, s.graph, w, init_seed)->value);
}

Regression DeepSeqBackend::regress(const nn::Tensor& embedding) const {
  nn::Graph g(/*grad_enabled=*/false);
  const auto out = model_.regress(g, g.constant(embedding));
  Regression r;
  r.tr = std::move(out.tr->value);
  r.lg = std::move(out.lg->value);
  return r;
}

ReliabilityEstimate DeepSeqBackend::reliability(
    const BackendState& state, const Workload& w,
    const std::vector<NodeId>& pos, std::uint64_t init_seed) const {
  const auto& s = static_cast<const DeepSeqState&>(state);
  auto est = reliability_model_.estimate(s.graph, w,
                                         pos.empty() ? s.pos : pos, init_seed);
  ReliabilityEstimate out;
  out.node_reliability = std::move(est.node_reliability);
  out.circuit_reliability = est.circuit_reliability;
  return out;
}

// ---- PaceBackend -----------------------------------------------------------

PaceBackend::PaceBackend(const PaceConfig& config) : encoder_(config) {
  info_.name = "pace";
  info_.hidden_dim = config.hidden_dim;
  info_.fingerprint = pace_fingerprint(config);
  info_.threaded_embed = true;  // graph ops go through the same executor
}

PaceBackend::PaceBackend(const artifact::Artifact& a)
    : encoder_(pace_encoder_from_artifact(a)) {
  const std::uint64_t content_hash = a.content_hash();
  info_.name = "pace";
  info_.hidden_dim = encoder_.config().hidden_dim;
  info_.fingerprint = artifact_fingerprint(content_hash);
  info_.weights = artifact_weights_label(content_hash);
  info_.threaded_embed = true;
}

std::shared_ptr<const BackendState> PaceBackend::prepare(
    const Circuit& aig) const {
  auto state = std::make_shared<PaceState>();
  state->graph = build_pace_graph(aig, encoder_.config());
  return state;
}

nn::Tensor PaceBackend::embed(const BackendState& state, const Workload& w,
                              std::uint64_t init_seed) const {
  const auto& s = static_cast<const PaceState&>(state);
  nn::Graph g(/*grad_enabled=*/false);
  return std::move(encoder_.embed(g, s.graph, w, init_seed)->value);
}

}  // namespace deepseq::api
