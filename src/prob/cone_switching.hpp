#pragma once

#include "prob/switching.hpp"

namespace deepseq {

/// Reconvergence-aware refinement of the probabilistic baseline, in the
/// spirit of multipass-SPRA [31] (exact on reconvergent fanout, exponential
/// in the number of fanout sources — which is why the paper notes it cannot
/// scale to large circuits).
///
/// The plain estimator (estimate_switching) assumes spatial independence
/// between gate fanins, which is exact on fanout-free (tree) logic but
/// wrong wherever a fanout reconverges: the classic failure y = a AND NOT a
/// yields P(y=1) = p(1-p) instead of 0. This estimator detects gates whose
/// fanin support sets (transitive PI/FF sources) intersect and, when the
/// combined support is small enough, computes the exact lag-1 joint by
/// enumerating all source value pairs over two consecutive cycles —
/// 4^|support| cone evaluations. Gates with disjoint fanin supports keep
/// the (then exact) independence propagation; gates whose support exceeds
/// the cap fall back to it (approximate).
///
/// FF temporal feedback is resolved with the same damped fixed point as the
/// base method, so the two estimators differ only in spatial correlation
/// handling — isolating exactly the error source the paper attributes to
/// non-simulative methods (§V-A).
struct ConeSwitchingOptions {
  /// Exact enumeration cap: a gate is enumerated when its support holds at
  /// most this many sources (cost 4^max_support cone evaluations).
  int max_support = 8;
  SwitchingOptions base;
};

struct ConeSwitchingEstimate : SwitchingEstimate {
  std::size_t exact_nodes = 0;     // gates with exact (enumerated) joints
  std::size_t fallback_nodes = 0;  // reconvergent gates beyond the cap
};

ConeSwitchingEstimate estimate_switching_cone(
    const Circuit& c, const Workload& w, const ConeSwitchingOptions& opt = {});

}  // namespace deepseq
