#pragma once

#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "core/circuit_graph.hpp"
#include "nn/modules.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// Which message-passing schedule a model uses.
enum class PropagationKind {
  /// Plain DAG pass over the acyclified graph (DAG-ConvGNN / DAG-RecGNN
  /// baselines): every non-PI node, including FFs, updates from its
  /// remaining predecessors; no FF state-copy step.
  kBaselineDag,
  /// The paper's customized sequential propagation (Fig. 2): FFs act as
  /// pseudo primary inputs, forward + reverse passes update combinational
  /// gates only, then FF states are overwritten with their D-predecessor's
  /// state — mimicking the clock edge.
  kDeepSeqCustom,
};

const char* propagation_name(PropagationKind k);

struct ModelConfig {
  AggregatorKind aggregator = AggregatorKind::kDualAttention;
  PropagationKind propagation = PropagationKind::kDeepSeqCustom;
  int iterations = 10;   // T; 1 gives the non-recursive DAG-ConvGNN
  int hidden_dim = 64;
  std::uint64_t seed = 20240301;

  // Named presets matching the rows of Tables II/III.
  static ModelConfig deepseq(int hidden = 64, int t = 10);
  static ModelConfig deepseq_simple_attention(int hidden = 64, int t = 10);
  static ModelConfig dag_conv_gnn(AggregatorKind agg, int hidden = 64);
  static ModelConfig dag_rec_gnn(AggregatorKind agg, int hidden = 64, int t = 10);

  std::string description() const;
};

/// Mix every output-affecting ModelConfig field into `h` — the single field
/// enumeration behind api::deepseq_fingerprint AND the artifact content
/// hash, so the two cache identities can never silently drift when a field
/// is added here.
std::uint64_t mix_config(std::uint64_t h, const ModelConfig& m);

/// The DeepSeq model (and, via ModelConfig, its baselines): initial states
/// from the workload (PIs pinned to their logic-1 probability in every
/// dimension, paper §III-B), T rounds of forward + reverse message passing
/// with GRU combine (Eq. 4/8), and two independent 3-layer MLP regressors
/// predicting transition probabilities (2-d) and logic probability (1-d)
/// per node.
class DeepSeqModel {
 public:
  explicit DeepSeqModel(const ModelConfig& config);

  const ModelConfig& config() const { return config_; }

  struct Output {
    nn::Var tr;  // N x 2 sigmoid outputs: P(0->1), P(1->0)
    nn::Var lg;  // N x 1 sigmoid output: P(node = 1)
  };

  /// Run the full propagation + regression. `init_seed` makes the random
  /// initialization of non-PI states reproducible per sample.
  Output forward(nn::Graph& g, const CircuitGraph& graph, const Workload& w,
                 std::uint64_t init_seed) const;

  /// Final node embeddings h_v^T (N x hidden), for downstream heads.
  nn::Var embed(nn::Graph& g, const CircuitGraph& graph, const Workload& w,
                std::uint64_t init_seed) const;

  /// Regress an embedding matrix through the task MLPs.
  Output regress(nn::Graph& g, const nn::Var& embeddings) const;

  nn::NamedParams params() const;
  /// Backbone = everything except the task MLPs (for fine-tuning heads).
  nn::NamedParams backbone_params() const;
  /// The two regression heads alone (the "regression" artifact section).
  nn::NamedParams head_params() const;

  void save(const std::string& path) const;
  void load(const std::string& path);

  /// Copy parameter values from another model with identical architecture
  /// (used to fork a pre-trained model before task-specific fine-tuning, so
  /// the pre-trained weights stay untouched).
  void copy_params_from(const DeepSeqModel& other);

 private:
  nn::Var propagate(nn::Graph& g, const CircuitGraph& graph, const Workload& w,
                    std::uint64_t init_seed) const;

  ModelConfig config_;
  Aggregator agg_fwd_, agg_rev_;
  nn::GruCell gru_fwd_, gru_rev_;
  nn::Mlp mlp_tr_, mlp_lg_;
};

}  // namespace deepseq
