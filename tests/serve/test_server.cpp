// End-to-end serving-tier tests over real loopback TCP: every TaskKind's
// socket round trip is bit-identical to a direct Session::run_sync with the
// same preset (the tier's acceptance contract), overload sheds typed
// instead of queueing unboundedly, the stats endpoint serves valid JSON,
// and reload_weights flips every shard coordinated through the wire,
// resolved "name@hash" against an artifact::Store directory.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/backends.hpp"
#include "artifact/model_io.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "netlist/structural_hash.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/workload.hpp"
#include "support/json_check.hpp"

namespace deepseq::serve {
namespace {

ModelConfig small_model() { return ModelConfig::deepseq(/*hidden=*/8, /*t=*/2); }

ServeConfig small_server(int shards = 2, int workers = 1,
                         std::size_t depth = 64) {
  ServeConfig cfg;
  cfg.router.shards = shards;
  cfg.router.workers_per_shard = workers;
  cfg.router.admission.default_depth = depth;
  cfg.router.session.engine.threads = 1;
  cfg.router.session.backends.model = small_model();
  return cfg;
}

std::shared_ptr<const Circuit> shared_aig(std::uint64_t seed) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 5;
  spec.num_ffs = 3;
  spec.num_gates = 40;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return std::make_shared<const Circuit>(generate_circuit(spec, rng));
}

api::TaskRequest make_request(std::shared_ptr<const Circuit> circuit,
                              api::TaskKind task,
                              std::uint64_t workload_seed = 9) {
  Rng rng(workload_seed);
  api::TaskRequest req;
  req.workload = random_workload(*circuit, rng);
  req.circuit = std::move(circuit);
  req.task = task;
  req.init_seed = 7;
  return req;
}

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool bit_identical(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// The acceptance predicate: a served TaskResult carries exactly the bits a
/// direct run_sync produced (timings and cache flags are scheduling, not
/// output, and are excluded).
void expect_output_bit_identical(const api::TaskResult& got,
                                 const api::TaskResult& want) {
  ASSERT_EQ(got.task, want.task);
  EXPECT_EQ(got.backend, want.backend);
  EXPECT_EQ(got.structure, want.structure);
  switch (want.task) {
    case api::TaskKind::kEmbedding:
      EXPECT_TRUE(bit_identical(*got.as<api::EmbeddingOutput>().embedding,
                                *want.as<api::EmbeddingOutput>().embedding));
      break;
    case api::TaskKind::kLogicProb:
      EXPECT_TRUE(bit_identical(*got.as<api::LogicProbOutput>().prob,
                                *want.as<api::LogicProbOutput>().prob));
      break;
    case api::TaskKind::kTransitionProb:
      EXPECT_TRUE(bit_identical(*got.as<api::TransitionProbOutput>().prob,
                                *want.as<api::TransitionProbOutput>().prob));
      break;
    case api::TaskKind::kPower: {
      const auto& g = got.as<api::PowerOutput>();
      const auto& w = want.as<api::PowerOutput>();
      EXPECT_TRUE(bits_equal(g.report.total_watts, w.report.total_watts));
      EXPECT_TRUE(bits_equal(g.report.combinational_watts,
                             w.report.combinational_watts));
      EXPECT_TRUE(bits_equal(g.report.sequential_watts,
                             w.report.sequential_watts));
      EXPECT_TRUE(bits_equal(g.report.io_watts, w.report.io_watts));
      EXPECT_EQ(g.report.nets_matched, w.report.nets_matched);
      EXPECT_EQ(g.report.nets_missing, w.report.nets_missing);
      EXPECT_TRUE(bit_identical(g.logic1, w.logic1));
      EXPECT_TRUE(bit_identical(g.toggle_rate, w.toggle_rate));
      break;
    }
    case api::TaskKind::kReliability: {
      const auto& g = got.as<api::ReliabilityOutput>();
      const auto& w = want.as<api::ReliabilityOutput>();
      EXPECT_TRUE(bits_equal(g.circuit_reliability, w.circuit_reliability));
      EXPECT_TRUE(bit_identical(g.node_reliability, w.node_reliability));
      break;
    }
    case api::TaskKind::kTestability: {
      const auto& g = got.as<api::TestabilityOutput>().scoap;
      const auto& w = want.as<api::TestabilityOutput>().scoap;
      EXPECT_TRUE(bit_identical(g.cc0, w.cc0));
      EXPECT_TRUE(bit_identical(g.cc1, w.cc1));
      EXPECT_TRUE(bit_identical(g.co, w.co));
      EXPECT_EQ(g.controllability_iterations, w.controllability_iterations);
      EXPECT_EQ(g.observability_iterations, w.observability_iterations);
      break;
    }
  }
}

// The acceptance criterion of the tier: for EVERY TaskKind, a request that
// crossed the socket, the router and a shard worker returns bit-identical
// output to a direct Session::run_sync built from the same preset.
TEST(ServeServer, SocketRoundTripBitIdenticalForEveryTaskKind) {
  const ServeConfig cfg = small_server();
  Server server(cfg);
  Client client(server.port());
  api::Session reference(cfg.router.session);

  for (int k = 0; k < kNumTaskKinds; ++k) {
    const api::TaskKind kind = static_cast<api::TaskKind>(k);
    const api::TaskRequest req = make_request(shared_aig(7), kind);
    const TaskReply reply = client.run(req);
    EXPECT_EQ(reply.shard,
              server.router().shard_for(structural_hash(*req.circuit)));
    expect_output_bit_identical(reply.result, reference.run_sync(req));
  }
}

TEST(ServeServer, ManyInFlightRequestsCompleteOutOfOrderOnOneConnection) {
  Server server(small_server(/*shards=*/2, /*workers=*/2));
  Client client(server.port());

  std::vector<api::TaskRequest> reqs;
  std::vector<std::future<TaskReply>> futures;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    reqs.push_back(make_request(
        shared_aig(seed),
        static_cast<api::TaskKind>(seed % kNumTaskKinds), seed));
    futures.push_back(client.submit(reqs.back()));
  }
  api::Session reference(small_server().router.session);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const TaskReply reply = futures[i].get();
    expect_output_bit_identical(reply.result, reference.run_sync(reqs[i]));
  }
}

// Overload contract: with an undersized queue the server sheds TYPED rather
// than queueing unboundedly, and the accounting closes exactly — every
// submission ends as completed, shed or failed.
TEST(ServeServer, SaturationShedsTypedAndAccountingCloses) {
  Server server(small_server(/*shards=*/1, /*workers=*/1, /*depth=*/1));
  Client client(server.port());

  const int kBurst = 48;
  std::vector<std::future<TaskReply>> futures;
  for (int i = 0; i < kBurst; ++i)
    futures.push_back(client.submit(
        make_request(shared_aig(1 + (i % 4)), api::TaskKind::kEmbedding,
                     static_cast<std::uint64_t>(i))));

  int completed = 0, shed = 0, failed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++completed;
    } catch (const ServeError& e) {
      if (e.overloaded()) {
        EXPECT_EQ(e.code(), ErrorCode::kOverloadQueueFull);
        ++shed;
      } else {
        ++failed;
      }
    }
  }
  EXPECT_EQ(completed + shed + failed, kBurst);
  EXPECT_GT(completed, 0);
  EXPECT_GT(shed, 0) << "a 1-deep queue under a 48-burst must shed";
  EXPECT_EQ(failed, 0);

  // The per-shard admission counters agree with the client's view.
  const ShardRouter::ShardStats st = server.router().shard_stats(0);
  std::uint64_t counted_shed = 0;
  for (int k = 0; k < kNumTaskKinds; ++k) counted_shed += st.admission.shed[k];
  EXPECT_EQ(counted_shed, static_cast<std::uint64_t>(shed));
}

TEST(ServeServer, StatsEndpointServesValidJson) {
  Server server(small_server());
  Client client(server.port());
  (void)client.run(make_request(shared_aig(2), api::TaskKind::kEmbedding));

  for (const std::string& doc : {client.stats_json(), server.stats_json()}) {
    EXPECT_TRUE(testing::valid_json(doc)) << doc;
    EXPECT_NE(doc.find("\"per_shard\""), std::string::npos);
    EXPECT_NE(doc.find("\"requests\""), std::string::npos);
    EXPECT_NE(doc.find("\"shards\":2"), std::string::npos);
  }
}

TEST(ServeServer, ReloadOverTheWireFlipsEveryShardCoordinated) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/serve_store";
  fs::remove_all(dir);
  fs::create_directories(dir);
  artifact::Artifact art = artifact::snapshot(DeepSeqModel(small_model()));
  artifact::save_artifact(dir + "/model.dsqa", art);

  ServeConfig cfg = small_server(/*shards=*/3);
  cfg.artifact_dir = dir;
  Server server(cfg);
  Client client(server.port());

  const std::uint64_t seed_fp = server.router().shard_fingerprint(0);
  const std::uint64_t new_fp = client.reload("model@latest");
  EXPECT_NE(new_fp, seed_fp);
  for (int s = 0; s < server.router().num_shards(); ++s)
    EXPECT_EQ(server.router().shard_fingerprint(s), new_fp) << "shard " << s;

  // Serving continues on the new weights.
  EXPECT_NO_THROW(
      (void)client.run(make_request(shared_aig(3), api::TaskKind::kLogicProb)));

  // Re-pushing the live artifact fails every shard's no-op guard — typed
  // kInternal, fingerprints untouched.
  try {
    (void)client.reload("model@latest");
    FAIL() << "re-pushing live weights must fail typed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_FALSE(e.overloaded());
  }
  for (int s = 0; s < server.router().num_shards(); ++s)
    EXPECT_EQ(server.router().shard_fingerprint(s), new_fp);

  // Unknown refs are the client's fault, not the server's.
  try {
    (void)client.reload("nonesuch@latest");
    FAIL() << "unknown artifact ref must fail typed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
    EXPECT_NE(std::string(e.what()).find("nonesuch"), std::string::npos);
  }
}

TEST(ServeServer, ReloadWithoutArtifactDirIsBadRequest) {
  // No ServeConfig::artifact_dir and no DEEPSEQ_ARTIFACT_DIR: the endpoint
  // rejects typed instead of guessing.
  unsetenv("DEEPSEQ_ARTIFACT_DIR");
  Server server(small_server(1));
  Client client(server.port());
  try {
    (void)client.reload("model@latest");
    FAIL() << "reload without a store must fail typed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
}

TEST(ServeServer, BadArtifactDirFailsConstructionFast) {
  ServeConfig cfg = small_server(1);
  cfg.artifact_dir = ::testing::TempDir() + "/definitely/not/a/store";
  EXPECT_THROW(Server{cfg}, Error);
}

// Shutdown drains typed: a stop() racing a burst must resolve EVERY future
// — completed, or a typed ServeError — never a hang or a silent drop.
TEST(ServeServer, StopResolvesEveryOutstandingFutureTyped) {
  auto server = std::make_unique<Server>(
      small_server(/*shards=*/1, /*workers=*/1, /*depth=*/64));
  Client client(server->port());

  std::vector<std::future<TaskReply>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(client.submit(
        make_request(shared_aig(1 + (i % 4)), api::TaskKind::kEmbedding,
                     static_cast<std::uint64_t>(i))));
  server->stop();

  int completed = 0, typed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++completed;
    } catch (const ServeError&) {
      ++typed;
    }
  }
  EXPECT_EQ(completed + typed, 16);
  server.reset();
}

}  // namespace
}  // namespace deepseq::serve
