#pragma once

#include <vector>

#include "nn/modules.hpp"

namespace deepseq::nn {

/// ADAM optimizer (paper §IV-A3: all models train with ADAM, lr = 1e-4).
/// Gradients accumulate on parameter Vars across one or more backward()
/// calls (gradient accumulation over a batch of circuits); step() consumes
/// and zero_grad() clears them.
struct AdamOptions {
  float lr = 1e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float grad_clip = 0.0f;  // 0 disables; otherwise clip by global L2 norm
};

class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(NamedParams params, const Options& opt = {});

  void zero_grad();
  void step();
  int step_count() const { return t_; }
  const NamedParams& params() const { return params_; }

 private:
  NamedParams params_;
  Options opt_;
  std::vector<Tensor> m_, v_;
  int t_ = 0;
};

}  // namespace deepseq::nn
