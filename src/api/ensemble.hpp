#pragma once

#include <cstdint>
#include <memory>

#include "api/backend.hpp"

namespace deepseq::api {

/// Server-side h0 ensemble over a base backend (the ROADMAP backend idea):
/// one embed() averages the base backend's embeddings over K deterministic
/// init-seed realizations, smoothing the per-sample random initialization
/// of non-PI states (paper §III-B) without any client-side fan-out.
/// Registered as "ensemble" over the deepseq model — built from the same
/// BackendOptions as the base, including an optional tuned artifact.
///
/// Capabilities: regress delegates to the base (the averaged embedding runs
/// through the same probability heads); the reliability readout is not
/// offered (it is defined on single realizations). The fingerprint mixes K
/// into the base fingerprint, so every (weights, K) combination caches
/// separately and can never share entries with the base backend itself.
class EnsembleBackend final : public EmbeddingBackend {
 public:
  /// Throws Error on a null base or k < 1.
  EnsembleBackend(std::unique_ptr<EmbeddingBackend> base, int k);

  const BackendInfo& info() const override { return info_; }
  std::shared_ptr<const BackendState> prepare(const Circuit& aig) const override;
  nn::Tensor embed(const BackendState& state, const Workload& w,
                   std::uint64_t init_seed) const override;
  Regression regress(const nn::Tensor& embedding) const override;

  int realizations() const { return k_; }
  const EmbeddingBackend& base() const { return *base_; }

  /// Seed the base backend embeds realization `r` of a request with —
  /// deterministic and documented so callers can reproduce single members.
  static std::uint64_t realization_seed(std::uint64_t init_seed, int r);

 private:
  std::unique_ptr<EmbeddingBackend> base_;
  int k_ = 1;
  BackendInfo info_;
};

/// Fingerprint of an ensemble of `k` realizations over a base backend.
std::uint64_t ensemble_fingerprint(std::uint64_t base_fingerprint, int k);

}  // namespace deepseq::api
