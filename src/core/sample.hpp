#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/circuit_graph.hpp"
#include "nn/tensor.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// One supervised training/evaluation instance: a strict sequential AIG, a
/// workload, and the simulated per-node ground truth of the two tasks
/// (paper §III-A): target_tr columns are [P(0->1), P(1->0)], target_lg is
/// P(node = 1).
struct TrainSample {
  std::string name;
  std::shared_ptr<const Circuit> circuit;
  CircuitGraph graph;
  Workload workload;
  std::uint64_t init_seed = 1;
  nn::Tensor target_tr;  // N x 2
  nn::Tensor target_lg;  // N x 1
};

/// Simulate `workload` on `aig` and package circuit + labels.
TrainSample make_sample(std::string name, Circuit aig, Workload workload,
                        const ActivityOptions& sim_opt, std::uint64_t init_seed);

/// Package with precomputed activity (when the caller already simulated).
TrainSample make_sample_from_activity(std::string name,
                                      std::shared_ptr<const Circuit> aig,
                                      Workload workload,
                                      const NodeActivity& activity,
                                      std::uint64_t init_seed);

}  // namespace deepseq
