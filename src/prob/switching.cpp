#include "prob/switching.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

namespace {

double gate_prob(GateType t, double a, double b, double s) {
  switch (t) {
    case GateType::kAnd: return a * b;
    case GateType::kNot: return 1.0 - a;
    case GateType::kBuf: return a;
    case GateType::kOr: return 1.0 - (1.0 - a) * (1.0 - b);
    case GateType::kNand: return 1.0 - a * b;
    case GateType::kNor: return (1.0 - a) * (1.0 - b);
    case GateType::kXor: return a * (1.0 - b) + (1.0 - a) * b;
    case GateType::kXnor: return a * b + (1.0 - a) * (1.0 - b);
    case GateType::kMux: return a * b + (1.0 - a) * s;  // a=select, b=then, s=else
    case GateType::kConst0: return 0.0;
    default: throw Error("gate_prob: unexpected gate type");
  }
}

/// Lag-1 joint distribution of a stationary binary process:
/// j[x][y] = P(v_t = x, v_t+1 = y).
struct Joint {
  double j[2][2] = {{1.0, 0.0}, {0.0, 0.0}};  // constant 0 by default

  double p1() const { return j[1][0] + j[1][1]; }
  double tr01() const { return j[0][1]; }
  double tr10() const { return j[1][0]; }

  static Joint constant(int value) {
    Joint out;
    out.j[0][0] = value ? 0.0 : 1.0;
    out.j[1][1] = value ? 1.0 : 0.0;
    out.j[0][1] = out.j[1][0] = 0.0;
    return out;
  }

  /// Independent Bernoulli(p) per cycle (the PI pattern model, §III-B).
  static Joint bernoulli(double p) {
    Joint out;
    out.j[0][0] = (1.0 - p) * (1.0 - p);
    out.j[0][1] = (1.0 - p) * p;
    out.j[1][0] = p * (1.0 - p);
    out.j[1][1] = p * p;
    return out;
  }

  double max_abs_diff(const Joint& o) const {
    double m = 0.0;
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y)
        m = std::max(m, std::fabs(j[x][y] - o.j[x][y]));
    return m;
  }

  /// Re-normalize to a proper distribution. Without this, the ~1 ulp the
  /// product rule adds per level compounds roughly *quadratically* through
  /// deep circuits across fixed-point iterations (error doubles per sweep)
  /// and diverges to infinity after ~55 iterations.
  void normalize() {
    double sum = 0.0;
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y) {
        if (j[x][y] < 0.0) j[x][y] = 0.0;
        sum += j[x][y];
      }
    if (sum <= 0.0) {
      *this = constant(0);
      return;
    }
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y) j[x][y] /= sum;
  }
};

bool gate_out(GateType t, int a, int b, int s) {
  // Circuit MUX fanin order is (select, then, else); eval_gate takes
  // (then, else, select).
  if (t == GateType::kMux) return eval_gate(t, b != 0, s != 0, a != 0);
  return eval_gate(t, a != 0, b != 0);
}

/// Output joint from input joints assuming the input processes are
/// mutually independent: enumerate all input (t, t+1) value pairs.
Joint propagate_gate_joint(GateType t, const Joint* in, int arity) {
  Joint out;
  out.j[0][0] = out.j[0][1] = out.j[1][0] = out.j[1][1] = 0.0;
  const int combos = 1 << (2 * arity);  // (v_t, v_t1) per input
  for (int mask = 0; mask < combos; ++mask) {
    double prob = 1.0;
    int vt[3] = {0, 0, 0}, vt1[3] = {0, 0, 0};
    for (int i = 0; i < arity; ++i) {
      vt[i] = (mask >> (2 * i)) & 1;
      vt1[i] = (mask >> (2 * i + 1)) & 1;
      prob *= in[i].j[vt[i]][vt1[i]];
      if (prob == 0.0) break;
    }
    if (prob == 0.0) continue;
    const int x = gate_out(t, vt[0], vt[1], vt[2]) ? 1 : 0;
    const int y = gate_out(t, vt1[0], vt1[1], vt1[2]) ? 1 : 0;
    out.j[x][y] += prob;
  }
  out.normalize();
  return out;
}

}  // namespace

std::vector<double> propagate_signal_probs(const Circuit& c,
                                           const std::vector<double>& pi_prob,
                                           const std::vector<double>& ff_prob) {
  if (pi_prob.size() != c.pis().size())
    throw Error("propagate_signal_probs: PI probability count mismatch");
  if (ff_prob.size() != c.ffs().size())
    throw Error("propagate_signal_probs: FF probability count mismatch");

  std::vector<double> p(c.num_nodes(), 0.0);
  for (std::size_t k = 0; k < c.pis().size(); ++k) p[c.pis()[k]] = pi_prob[k];
  for (std::size_t k = 0; k < c.ffs().size(); ++k) p[c.ffs()[k]] = ff_prob[k];

  const Levelization lv = comb_levelize(c);
  for (std::size_t l = 1; l < lv.by_level.size(); ++l) {
    for (NodeId v : lv.by_level[l]) {
      const Node& n = c.node(v);
      const double a = p[n.fanin[0]];
      const double b = n.num_fanins > 1 ? p[n.fanin[1]] : 0.0;
      const double s = n.num_fanins > 2 ? p[n.fanin[2]] : 0.0;
      p[v] = gate_prob(n.type, a, b, s);
    }
  }
  return p;
}

SwitchingEstimate estimate_switching(const Circuit& c, const Workload& w,
                                     const SwitchingOptions& opt) {
  if (w.pi_prob.size() != c.pis().size())
    throw Error("estimate_switching: workload PI count mismatch");

  const std::size_t n = c.num_nodes();
  std::vector<Joint> joint(n);
  for (std::size_t k = 0; k < c.pis().size(); ++k)
    joint[c.pis()[k]] = Joint::bernoulli(w.pi_prob[k]);
  // FFs start from the hardware reset state (constant 0) so hold registers
  // whose D feeds back to themselves keep the correct static fixed point —
  // starting from 0.5/0.5 they would never leave it (identity has every
  // joint as a fixed point) and the estimate would report 0.25 activity on
  // completely idle state bits.
  for (NodeId ff : c.ffs()) joint[ff] = Joint::constant(0);

  const Levelization lv = comb_levelize(c);
  auto comb_sweep = [&]() {
    for (std::size_t l = 1; l < lv.by_level.size(); ++l) {
      for (NodeId v : lv.by_level[l]) {
        const Node& nd = c.node(v);
        Joint in[3];
        for (int i = 0; i < nd.num_fanins; ++i) in[i] = joint[nd.fanin[i]];
        joint[v] = propagate_gate_joint(nd.type, in, nd.num_fanins);
      }
    }
  };

  SwitchingEstimate est;
  int iter = 0;
  for (; iter < opt.max_iterations; ++iter) {
    comb_sweep();
    // FF process = D process delayed by one cycle; in steady state their
    // lag-1 joints coincide. Damped update toward the D joint.
    double max_delta = 0.0;
    for (NodeId ff : c.ffs()) {
      const Joint& d = joint[c.fanin(ff, 0)];
      Joint updated;
      for (int x = 0; x < 2; ++x)
        for (int y = 0; y < 2; ++y)
          updated.j[x][y] =
              opt.damping * d.j[x][y] + (1.0 - opt.damping) * joint[ff].j[x][y];
      updated.normalize();
      max_delta = std::max(max_delta, updated.max_abs_diff(joint[ff]));
      joint[ff] = updated;
    }
    if (max_delta < opt.tolerance) break;
  }
  est.iterations_used = iter + 1;
  comb_sweep();  // final pass with the converged FF joints

  est.logic1.resize(n);
  est.tr01.resize(n);
  est.tr10.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    est.logic1[v] = joint[v].p1();
    est.tr01[v] = joint[v].tr01();
    est.tr10[v] = joint[v].tr10();
  }
  return est;
}

}  // namespace deepseq
