#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace deepseq::runtime {
namespace {

/// Process-wide pool metrics (all ThreadPool instances aggregate): queue
/// depth is a gauge sampled at every transition, executed tasks a counter.
/// Looked up once; recording is lock-free.
struct PoolMetrics {
  obs::Gauge& queue_depth = obs::Registry::global().gauge("pool.queue_depth");
  obs::Counter& tasks = obs::Registry::global().counter("pool.tasks");
  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    PoolMetrics::get().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    PoolMetrics::get().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    ++in_flight_;
    lock.unlock();
    task();
    PoolMetrics::get().tasks.inc();
    lock.lock();
    --in_flight_;
    ++completed_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace deepseq::runtime
