#include "dataset/embedded.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace deepseq {
namespace {

TEST(Embedded, S27MatchesPublishedStructure) {
  const Circuit c = iscas89_s27();
  EXPECT_EQ(c.pis().size(), 4u);
  EXPECT_EQ(c.ffs().size(), 3u);
  EXPECT_EQ(c.pos().size(), 1u);
  // 10 logic gates: 1 AND, 2 NOT, 2 OR (as parsed), 1 NAND, 4 NOR.
  const auto counts = c.type_counts();
  EXPECT_EQ(counts[static_cast<int>(GateType::kAnd)], 1u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kNot)], 2u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kOr)], 2u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kNand)], 1u);
  EXPECT_EQ(counts[static_cast<int>(GateType::kNor)], 4u);
}

TEST(Embedded, S27KnownResponse) {
  // With all inputs held at 0: G14=NOT(G0)=1, and the state settles into a
  // repeating pattern; just check the first cycles are consistent and
  // deterministic.
  const Circuit c = iscas89_s27();
  SequentialSimulator sim(c);
  const NodeId g17 = c.pos()[0];
  std::vector<int> trace;
  for (int t = 0; t < 8; ++t) {
    sim.step({0, 0, 0, 0});
    trace.push_back(static_cast<int>(sim.value(g17) & 1ULL));
    sim.clock();
  }
  // First cycle: G11 = NOR(G5=0, G9); G9 = NAND(G16, G15);
  // G8 = AND(G14=1, G6=0) = 0; G12 = NOR(0, 0) = 1; G15 = OR(1, 0) = 1;
  // G16 = OR(0, 0) = 0; G9 = NAND(0, 1) = 1; G11 = NOR(0, 1) = 0;
  // G17 = NOT(G11) = 1.
  EXPECT_EQ(trace[0], 1);
  // Deterministic repeat.
  SequentialSimulator sim2(c);
  for (int t = 0; t < 8; ++t) {
    sim2.step({0, 0, 0, 0});
    EXPECT_EQ(static_cast<int>(sim2.value(g17) & 1ULL), trace[t]);
    sim2.clock();
  }
}

TEST(Embedded, Counter4Structure) {
  const Circuit c = counter4();
  EXPECT_EQ(c.pis().size(), 1u);
  EXPECT_EQ(c.ffs().size(), 4u);
  EXPECT_EQ(c.pos().size(), 4u);
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace deepseq
