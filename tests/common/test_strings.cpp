#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace deepseq {
namespace {

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nfoo\r "), "foo");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t ").empty());
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("input(a)", "input("));
  EXPECT_FALSE(starts_with("in", "input"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.0319), "3.19%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace deepseq
