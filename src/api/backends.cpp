#include "api/backends.hpp"

#include <utility>

#include "common/error.hpp"
#include "netlist/structural_hash.hpp"
#include "nn/graph.hpp"

namespace deepseq::api {

Regression EmbeddingBackend::regress(const nn::Tensor&) const {
  throw Error("backend '" + info().name + "' does not support regress heads");
}

ReliabilityEstimate EmbeddingBackend::reliability(
    const BackendState&, const Workload&, const std::vector<NodeId>&,
    std::uint64_t) const {
  throw Error("backend '" + info().name +
              "' does not support the reliability task");
}

std::uint64_t deepseq_fingerprint(const ModelConfig& m) {
  std::uint64_t h = hash_mix(0xD5ULL, static_cast<std::uint64_t>(m.aggregator));
  h = hash_mix(h, static_cast<std::uint64_t>(m.propagation));
  h = hash_mix(h, static_cast<std::uint64_t>(m.iterations));
  h = hash_mix(h, static_cast<std::uint64_t>(m.hidden_dim));
  return hash_mix(h, m.seed);
}

std::uint64_t pace_fingerprint(const PaceConfig& p) {
  std::uint64_t h = hash_mix(0xFACEULL, static_cast<std::uint64_t>(p.hidden_dim));
  h = hash_mix(h, static_cast<std::uint64_t>(p.layers));
  h = hash_mix(h, static_cast<std::uint64_t>(p.max_ancestors));
  h = hash_mix(h, static_cast<std::uint64_t>(p.pos_dim));
  return hash_mix(h, p.seed);
}

// ---- DeepSeqBackend --------------------------------------------------------

DeepSeqBackend::DeepSeqBackend(const ModelConfig& config)
    : model_(config), reliability_model_(model_) {
  info_.name = "deepseq";
  info_.hidden_dim = config.hidden_dim;
  info_.fingerprint = deepseq_fingerprint(config);
  info_.supports_regress = true;
  info_.supports_reliability = true;
  info_.threaded_embed = true;
}

std::shared_ptr<const BackendState> DeepSeqBackend::prepare(
    const Circuit& aig) const {
  auto state = std::make_shared<DeepSeqState>();
  state->graph = build_circuit_graph(aig);
  state->pos.assign(aig.pos().begin(), aig.pos().end());
  return state;
}

nn::Tensor DeepSeqBackend::embed(const BackendState& state, const Workload& w,
                                 std::uint64_t init_seed) const {
  const auto& s = static_cast<const DeepSeqState&>(state);
  nn::Graph g(/*grad_enabled=*/false);
  return std::move(model_.embed(g, s.graph, w, init_seed)->value);
}

Regression DeepSeqBackend::regress(const nn::Tensor& embedding) const {
  nn::Graph g(/*grad_enabled=*/false);
  const auto out = model_.regress(g, g.constant(embedding));
  Regression r;
  r.tr = std::move(out.tr->value);
  r.lg = std::move(out.lg->value);
  return r;
}

ReliabilityEstimate DeepSeqBackend::reliability(
    const BackendState& state, const Workload& w,
    const std::vector<NodeId>& pos, std::uint64_t init_seed) const {
  const auto& s = static_cast<const DeepSeqState&>(state);
  auto est = reliability_model_.estimate(s.graph, w,
                                         pos.empty() ? s.pos : pos, init_seed);
  ReliabilityEstimate out;
  out.node_reliability = std::move(est.node_reliability);
  out.circuit_reliability = est.circuit_reliability;
  return out;
}

// ---- PaceBackend -----------------------------------------------------------

PaceBackend::PaceBackend(const PaceConfig& config) : encoder_(config) {
  info_.name = "pace";
  info_.hidden_dim = config.hidden_dim;
  info_.fingerprint = pace_fingerprint(config);
  info_.threaded_embed = true;  // graph ops go through the same executor
}

std::shared_ptr<const BackendState> PaceBackend::prepare(
    const Circuit& aig) const {
  auto state = std::make_shared<PaceState>();
  state->graph = build_pace_graph(aig, encoder_.config());
  return state;
}

nn::Tensor PaceBackend::embed(const BackendState& state, const Workload& w,
                              std::uint64_t init_seed) const {
  const auto& s = static_cast<const PaceState&>(state);
  nn::Graph g(/*grad_enabled=*/false);
  return std::move(encoder_.embed(g, s.graph, w, init_seed)->value);
}

}  // namespace deepseq::api
