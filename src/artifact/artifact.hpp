#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/pace.hpp"
#include "nn/modules.hpp"
#include "nn/tensor.hpp"

namespace deepseq::artifact {

/// Container format revision this build reads and writes. Readers reject any
/// other version fail-fast (no silent migration); bump on every layout
/// change. The content hash is independent of the container version, so a
/// format bump alone never changes a model's serving identity.
constexpr std::uint32_t kFormatVersion = 1;

/// One named tensor group of an artifact — the unit task heads are stored
/// at ("backbone", "regression", "reliability", ...). Tensors are kept
/// sorted by name, which makes serialization byte-deterministic and the
/// content hash stable across writers.
struct Section {
  std::string name;
  std::vector<std::pair<std::string, nn::Tensor>> tensors;  // sorted by name

  const nn::Tensor* find(const std::string& tensor_name) const;
};

/// Self-describing header of an artifact: everything a consumer needs to
/// rebuild the exact serving model without out-of-band knowledge. The config
/// snapshot matching `backend_kind` ("deepseq" reads `model`, "pace" reads
/// `pace`) pins the architecture; free-form metadata carries training
/// provenance (epochs, final loss, ...) and never affects the content hash.
struct Manifest {
  std::uint32_t format_version = kFormatVersion;
  std::string backend_kind;  // "deepseq" | "pace" | a registered backend name
  ModelConfig model;
  PaceConfig pace;
  /// Sorted key/value training provenance ("epochs", "final_loss", ...).
  std::vector<std::pair<std::string, std::string>> metadata;
  /// Deterministic digest of the artifact's model content: backend kind,
  /// the full config snapshots (including init seeds — conservative: two
  /// snapshots of bit-identical weights taken under different config seeds
  /// hash apart even though they serve identically), and every section's
  /// tensor names, shapes and payload bits. Excludes metadata and the
  /// container version, so re-saving the same artifact with different
  /// notes keeps the same serving identity. Filled by
  /// save_artifact/load_artifact; recomputable any time via
  /// content_hash().
  std::uint64_t content_hash = 0;
};

/// A versioned model artifact: the single currency for weights between the
/// trainer and the serving surface. Produced by Trainer::save_artifact /
/// artifact::snapshot, consumed by api::BackendOptions::artifact and
/// api::Session::reload_weights. The artifact content hash keys the serving
/// caches (api::BackendInfo::fingerprint derives from it), so two artifacts
/// with different weights can never share cached embeddings or regressions.
class Artifact {
 public:
  Manifest manifest;

  const std::vector<Section>& sections() const { return sections_; }

  /// Add a section holding copies of `params` values, sorted by tensor
  /// name. Throws Error on a duplicate section or tensor name.
  void add_section(const std::string& name, const nn::NamedParams& params);
  /// Same, taking ownership of already-materialized tensors (the loader's
  /// path — no second copy of the weights).
  void add_section(const std::string& name,
                   std::vector<std::pair<std::string, nn::Tensor>> tensors);

  bool has_section(const std::string& name) const;
  /// Lookup; throws Error naming the sections present when absent.
  const Section& section(const std::string& name) const;

  /// Assign this section's tensors into `params` (matched by name; shapes
  /// must agree). Every param must be present in the section — fail-fast
  /// Error otherwise; extra section tensors are ignored, so a subset of a
  /// larger bundle can be applied (mirrors nn::load_params semantics).
  void apply_section(const std::string& name,
                     const nn::NamedParams& params) const;

  void set_metadata(const std::string& key, const std::string& value);
  /// nullptr when the key is absent.
  const std::string* find_metadata(const std::string& key) const;

  /// Recompute the deterministic content digest (see Manifest::content_hash).
  std::uint64_t content_hash() const;

 private:
  std::vector<Section> sections_;  // sorted by section name
};

/// Write `a` to `path`, embedding the recomputed content hash (also stored
/// into a.manifest.content_hash). Identical artifacts always produce
/// byte-identical files. Throws Error on I/O failure.
void save_artifact(const std::string& path, Artifact& a);

/// Read an artifact written by save_artifact. Fail-fast Error on: unopenable
/// path, bad magic, any format version other than kFormatVersion (the
/// message names both), truncation at any point, or a stored content hash
/// that does not match the recomputed one (bit-rot / tampering).
Artifact load_artifact(const std::string& path);

}  // namespace deepseq::artifact
