// Admission-control tests (deterministic — all time flows through an
// injected fake clock, so deadline sheds are exact arithmetic): bounded
// queues reject typed under saturation, shed-on-deadline fires on both the
// push and pop side, priorities give a deterministic serving order, and the
// obs accounting closes exactly: submitted == completed + failed + shed.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"

namespace deepseq::serve {
namespace {

struct FakeClock {
  std::shared_ptr<std::atomic<std::uint64_t>> now =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::function<std::uint64_t()> fn() const {
    auto n = now;
    return [n] { return n->load(); };
  }
};

Job noop_job(int kind, std::uint64_t deadline_ns = 0) {
  Job j;
  j.kind = kind;
  j.deadline_ns = deadline_ns;
  j.run = [] {};
  return j;
}

TEST(ServeAdmission, BoundedQueueShedsTypedAtCapacity) {
  AdmissionConfig cfg;
  cfg.depth[0] = 2;
  FakeClock clock;
  cfg.clock = clock.fn();
  AdmissionQueue q(cfg);

  EXPECT_EQ(q.try_push(noop_job(0)), std::nullopt);
  EXPECT_EQ(q.try_push(noop_job(0)), std::nullopt);
  EXPECT_EQ(q.try_push(noop_job(0)), ShedReason::kQueueFull);
  // Other kinds have their own bounded queue — kind 0 being full does not
  // shed kind 1.
  EXPECT_EQ(q.try_push(noop_job(1)), std::nullopt);

  const AdmissionQueue::Counts counts = q.counts();
  EXPECT_EQ(counts.admitted[0], 2u);
  EXPECT_EQ(counts.shed[0], 1u);
  EXPECT_EQ(counts.admitted[1], 1u);
  EXPECT_EQ(counts.shed_by_reason[static_cast<int>(ShedReason::kQueueFull)],
            1u);

  // Popping frees a slot; push is admitted again.
  Job out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(q.try_push(noop_job(0)), std::nullopt);
  q.shutdown();
}

TEST(ServeAdmission, DeadlineShedIsExactArithmetic) {
  AdmissionConfig cfg;
  cfg.workers = 2;
  cfg.initial_cost_ns = 1000;  // each queued job is assumed to cost 1000ns
  FakeClock clock;
  clock.now->store(5000);
  cfg.clock = clock.fn();
  AdmissionQueue q(cfg);

  // Queue 4 jobs: total queued cost 4000ns over 2 workers = 2000ns wait.
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.try_push(noop_job(0)), std::nullopt);
  EXPECT_EQ(q.estimated_wait_ns(), 2000u);

  // now(5000) + wait(2000) > deadline 6999 -> shed (leaves the queue, and
  // therefore the wait estimate, untouched); == deadline 7000 -> admitted
  // (the check is strictly-greater).
  EXPECT_EQ(q.try_push(noop_job(0, 6999)), ShedReason::kDeadline);
  EXPECT_EQ(q.try_push(noop_job(0, 7000)), std::nullopt);
  EXPECT_EQ(q.counts().shed_by_reason[static_cast<int>(ShedReason::kDeadline)],
            1u);
  q.shutdown();
}

TEST(ServeAdmission, PopSideExpiryShedsAndContinues) {
  AdmissionConfig cfg;
  FakeClock clock;
  cfg.clock = clock.fn();
  AdmissionQueue q(cfg);

  std::vector<ShedReason> shed_reasons;
  Job expiring = noop_job(0, /*deadline_ns=*/100);
  expiring.shed = [&](ShedReason r) { shed_reasons.push_back(r); };
  ASSERT_EQ(q.try_push(std::move(expiring)), std::nullopt);  // admitted at t=0

  bool live_ran = false;
  Job live = noop_job(0);
  live.run = [&] { live_ran = true; };
  ASSERT_EQ(q.try_push(std::move(live)), std::nullopt);

  clock.now->store(101);  // the first job expired while queued
  Job out;
  ASSERT_TRUE(q.pop(out));  // skips the expired job, delivers the live one
  out.run();
  EXPECT_TRUE(live_ran);
  ASSERT_EQ(shed_reasons.size(), 1u);
  EXPECT_EQ(shed_reasons[0], ShedReason::kDeadline);

  // The pop-side shed appears in BOTH admitted and shed — the monotone
  // accounting the obs identity builds on.
  const AdmissionQueue::Counts counts = q.counts();
  EXPECT_EQ(counts.admitted[0], 2u);
  EXPECT_EQ(counts.shed[0], 1u);
  q.shutdown();
}

TEST(ServeAdmission, PriorityOrderIsDeterministic) {
  AdmissionConfig cfg;
  cfg.priority = {3, 1, 2, 0, 0, 3};  // kinds 3 and 4 tie at the front
  FakeClock clock;
  cfg.clock = clock.fn();
  AdmissionQueue q(cfg);

  for (int kind : {0, 1, 2, 3, 4, 5})
    ASSERT_EQ(q.try_push(noop_job(kind)), std::nullopt);

  // Smallest priority value first; ties break toward the lower kind index;
  // FIFO within a kind.
  std::vector<int> order;
  Job out;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.pop(out));
    order.push_back(out.kind);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2, 0, 5}));
  q.shutdown();
}

TEST(ServeAdmission, ShutdownDrainsTypedAndRejectsLatePushes) {
  AdmissionConfig cfg;
  FakeClock clock;
  cfg.clock = clock.fn();
  AdmissionQueue q(cfg);

  std::vector<ShedReason> sheds;
  for (int i = 0; i < 3; ++i) {
    Job j = noop_job(i);
    j.shed = [&](ShedReason r) { sheds.push_back(r); };
    ASSERT_EQ(q.try_push(std::move(j)), std::nullopt);
  }
  q.shutdown();
  ASSERT_EQ(sheds.size(), 3u);
  for (ShedReason r : sheds) EXPECT_EQ(r, ShedReason::kShutdown);

  Job out;
  EXPECT_FALSE(q.pop(out));
  EXPECT_EQ(q.try_push(noop_job(0)), ShedReason::kShutdown);
  EXPECT_EQ(q.counts().shed_by_reason[static_cast<int>(ShedReason::kShutdown)],
            4u);
}

TEST(ServeAdmission, EwmaTracksServiceTimes) {
  AdmissionConfig cfg;
  cfg.initial_cost_ns = 0;
  FakeClock clock;
  cfg.clock = clock.fn();
  AdmissionQueue q(cfg);

  EXPECT_EQ(q.service_estimate_ns(0), 0u);
  q.record_service_ns(0, 8000);  // first sample replaces the zero estimate
  EXPECT_EQ(q.service_estimate_ns(0), 8000u);
  q.record_service_ns(0, 16000);  // (7*8000 + 16000) / 8
  EXPECT_EQ(q.service_estimate_ns(0), 9000u);
  EXPECT_EQ(q.service_estimate_ns(1), 0u);  // per-kind isolation
  q.shutdown();
}

// The audited identity under concurrent saturation: every submission ends
// in exactly one of {completed, shed}, queue counters and obs registry both
// close exactly. Producers race workers, so admit/shed splits vary run to
// run — the identity must hold regardless.
TEST(ServeAdmission, ObsAccountingClosesUnderSaturation) {
  const obs::Snapshot before = obs::Registry::global().snapshot();

  AdmissionConfig cfg;
  cfg.default_depth = 4;
  cfg.workers = 2;
  AdmissionQueue q(cfg);

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      Job job;
      while (q.pop(job)) job.run();
    });
  }

  const int kProducers = 4, kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Job j;
        j.kind = (p + i) % kNumTaskKinds;
        j.run = [&] { completed.fetch_add(1); };
        j.shed = [&](ShedReason) { shed.fetch_add(1); };
        if (q.try_push(std::move(j))) shed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.shutdown();  // drains the backlog typed; poppers wake and exit
  for (std::thread& t : workers) t.join();

  const std::uint64_t submitted =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(completed.load() + shed.load(), submitted);

  // Queue counters: pushes that were admitted then completed are only in
  // admitted; post-admission sheds (shutdown drain) are in both.
  const AdmissionQueue::Counts counts = q.counts();
  std::uint64_t total_admitted = 0, total_shed = 0;
  for (int k = 0; k < kNumTaskKinds; ++k) {
    total_admitted += counts.admitted[k];
    total_shed += counts.shed[k];
  }
  EXPECT_EQ(total_admitted + total_shed, submitted + counts.shed_by_reason[2]);
  EXPECT_EQ(completed.load(),
            total_admitted - counts.shed_by_reason[
                                 static_cast<int>(ShedReason::kShutdown)]);

  // The obs registry mirrors the queue counters 1:1 over the test window.
  const obs::Snapshot window =
      obs::delta(obs::Registry::global().snapshot(), before);
  std::uint64_t obs_admitted = 0, obs_shed = 0;
  for (const auto& [name, value] : window.counters) {
    if (name.rfind("serve.admitted.", 0) == 0) obs_admitted += value;
    if (name.rfind("serve.shed.", 0) == 0) obs_shed += value;
  }
  EXPECT_EQ(obs_admitted, total_admitted);
  EXPECT_EQ(obs_shed, total_shed);
}

TEST(ServeAdmission, BadKindAndBadWorkerCountThrow) {
  AdmissionConfig cfg;
  AdmissionQueue q(cfg);
  EXPECT_THROW(q.try_push(noop_job(-1)), Error);
  EXPECT_THROW(q.try_push(noop_job(kNumTaskKinds)), Error);
  q.shutdown();

  AdmissionConfig bad;
  bad.workers = 0;
  EXPECT_THROW(AdmissionQueue{bad}, Error);
}

}  // namespace
}  // namespace deepseq::serve
