// Shard-routing tests (the placement half of the serving tier): isomorphic
// circuits — node ids permuted, everything renamed — always land on the
// same shard, the routing function is pinned so it stays stable across
// processes and releases, per-shard caches are isolated, and a coordinated
// reload_all flips every shard's fingerprint with zero dropped in-flight
// tasks.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/backends.hpp"
#include "artifact/model_io.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "netlist/structural_hash.hpp"
#include "serve/router.hpp"
#include "sim/workload.hpp"

namespace deepseq::serve {
namespace {

std::shared_ptr<const Circuit> shared_aig(std::uint64_t seed,
                                          int num_gates = 40) {
  Rng rng(seed);
  GeneratorSpec spec;
  spec.num_pis = 5;
  spec.num_ffs = 3;
  spec.num_gates = num_gates;
  for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
  spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
  spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
  return std::make_shared<const Circuit>(generate_circuit(spec, rng));
}

/// An isomorphic copy with permuted node ids and every name changed. The
/// structural hash mixes PI/FF/PO interface ordinals (workloads and outputs
/// are positional), so the copy preserves each list's RELATIVE order — but
/// the node id assignment is scrambled: FFs first, then PIs, then gates in
/// reverse id order, fanins wired afterwards through set_fanin.
Circuit permute_isomorphic(const Circuit& c) {
  Circuit out(c.name());
  std::vector<NodeId> map(c.num_nodes(), kNullNode);
  for (NodeId id : c.ffs())
    map[id] = out.add_ff(kNullNode, "r" + std::to_string(id));
  for (NodeId id : c.pis())
    map[id] = out.add_pi("r" + std::to_string(id));
  for (NodeId id = static_cast<NodeId>(c.num_nodes()); id-- > 0;) {
    if (c.type(id) == GateType::kPi || c.type(id) == GateType::kFf) continue;
    const std::vector<NodeId> placeholders(
        static_cast<std::size_t>(c.num_fanins(id)), kNullNode);
    map[id] = out.add_gate(c.type(id), placeholders, "r" + std::to_string(id));
  }
  for (NodeId id = 0; id < c.num_nodes(); ++id)
    for (int s = 0; s < c.num_fanins(id); ++s)
      out.set_fanin(map[id], s, map[c.fanin(id, s)]);
  for (std::size_t k = 0; k < c.pos().size(); ++k)
    out.add_po(map[c.pos()[k]], "rpo" + std::to_string(k));
  out.validate();
  return out;
}

RouterConfig small_router(int shards, int workers = 1) {
  RouterConfig cfg;
  cfg.shards = shards;
  cfg.workers_per_shard = workers;
  cfg.session.engine.threads = 1;
  cfg.session.backends.model = ModelConfig::deepseq(/*hidden=*/8, /*t=*/2);
  return cfg;
}

api::TaskRequest embedding_request(std::shared_ptr<const Circuit> circuit,
                                   std::uint64_t workload_seed = 9) {
  Rng rng(workload_seed);
  api::TaskRequest req;
  req.workload = random_workload(*circuit, rng);
  req.circuit = std::move(circuit);
  req.task = api::TaskKind::kEmbedding;
  req.init_seed = 7;
  return req;
}

/// submit() with the callback turned into a future.
std::future<RoutedOutcome> route(ShardRouter& router, api::TaskRequest req,
                                 std::uint64_t deadline_ns = 0) {
  auto promise = std::make_shared<std::promise<RoutedOutcome>>();
  std::future<RoutedOutcome> fut = promise->get_future();
  router.submit(std::move(req), deadline_ns,
                [promise](RoutedOutcome&& out) {
                  promise->set_value(std::move(out));
                });
  return fut;
}

TEST(ServeRouter, IsomorphicCircuitsRouteToTheSameShard) {
  const RouterConfig cfg = small_router(/*shards=*/5);
  ShardRouter router(cfg);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto original = shared_aig(seed);
    const Circuit permuted = permute_isomorphic(*original);
    // The permutation is real: ids actually moved (creation-order hash
    // differs) while the structure hash is unchanged.
    ASSERT_EQ(structural_hash(permuted), structural_hash(*original));
    ASSERT_NE(exact_hash(permuted), exact_hash(*original)) << "seed " << seed;
    EXPECT_EQ(router.shard_for(structural_hash(permuted)),
              router.shard_for(structural_hash(*original)))
        << "seed " << seed;
  }
}

// Pin the routing function itself: shard_for depends only on the structural
// hash and the shard count, and these literals must never drift — a fleet
// front end rebuilt years later has to compute the same placement.
TEST(ServeRouter, RoutingFunctionIsPinnedForever) {
  StructuralHash a;
  a.digest = 0x0123456789abcdefULL;
  a.num_nodes = 100;
  a.num_ffs = 7;
  StructuralHash b;
  b.digest = 0xfeedfacecafebeefULL;
  b.num_nodes = 33;
  b.num_ffs = 2;

  ShardRouter five(small_router(5));
  EXPECT_EQ(five.shard_for(a), 1);
  EXPECT_EQ(five.shard_for(b), 4);
  ShardRouter four(small_router(4));
  EXPECT_EQ(four.shard_for(a), 0);
  EXPECT_EQ(four.shard_for(b), 2);
}

TEST(ServeRouter, PlacementIsStableAcrossRestarts) {
  const RouterConfig cfg = small_router(/*shards=*/4);
  std::vector<int> first;
  {
    ShardRouter router(cfg);
    for (std::uint64_t seed = 1; seed <= 10; ++seed)
      first.push_back(router.shard_for(structural_hash(*shared_aig(seed))));
  }
  ShardRouter restarted(cfg);
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    EXPECT_EQ(restarted.shard_for(structural_hash(*shared_aig(seed))),
              first[static_cast<std::size_t>(seed - 1)])
        << "seed " << seed;
}

TEST(ServeRouter, ServedResultMatchesDirectRunSyncBitForBit) {
  ShardRouter router(small_router(/*shards=*/3));
  const api::TaskRequest req = embedding_request(shared_aig(3));

  RoutedOutcome out = route(router, req).get();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.shard, router.shard_for(structural_hash(*req.circuit)));

  // Reference: a fresh Session built from the identical preset.
  api::Session reference(small_router(1).session);
  const api::TaskResult want = reference.run_sync(req);
  const auto& got =
      *std::get<api::TaskResult>(out.value).as<api::EmbeddingOutput>().embedding;
  const auto& ref = *want.as<api::EmbeddingOutput>().embedding;
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  EXPECT_EQ(std::memcmp(got.data(), ref.data(), got.size() * sizeof(float)), 0);
}

TEST(ServeRouter, ShardCachesAreIsolated) {
  ShardRouter router(small_router(/*shards=*/4));
  // Find a circuit and serve it twice: its shard warms up, every other
  // shard's cache stays untouched.
  const auto circuit = shared_aig(5);
  const int home = router.shard_for(structural_hash(*circuit));
  ASSERT_TRUE(route(router, embedding_request(circuit)).get().ok());
  ASSERT_TRUE(route(router, embedding_request(circuit)).get().ok());

  // The worker bumps `served` just AFTER delivering the result, so give the
  // final increment a bounded moment to land.
  for (int spin = 0; spin < 1000 && router.shard_stats(home).served < 2;
       ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  for (int s = 0; s < router.num_shards(); ++s) {
    const ShardRouter::ShardStats st = router.shard_stats(s);
    if (s == home) {
      EXPECT_EQ(st.served, 2u);
      // First request misses cold, second is served from the warm cache (a
      // warm embedding hit short-circuits the structure resolve).
      EXPECT_EQ(st.cache.embeddings.hits, 1u);
      EXPECT_EQ(st.cache.embeddings.misses, 1u);
      EXPECT_GE(st.cache.structures.misses, 1u);
    } else {
      EXPECT_EQ(st.served, 0u);
      EXPECT_EQ(st.cache.structures.hits + st.cache.structures.misses, 0u);
      EXPECT_EQ(st.cache.embeddings.hits + st.cache.embeddings.misses, 0u);
    }
  }
}

TEST(ServeRouter, ReloadAllFlipsEveryShardWithZeroDroppedTasks) {
  RouterConfig cfg = small_router(/*shards=*/3, /*workers=*/2);
  ShardRouter router(cfg);

  const std::uint64_t seed_fp = router.shard_fingerprint(0);
  for (int s = 1; s < router.num_shards(); ++s)
    ASSERT_EQ(router.shard_fingerprint(s), seed_fp);

  // In-flight load across every shard, submitted before (and racing) the
  // push. Every single future must resolve to a served result.
  std::vector<std::future<RoutedOutcome>> inflight;
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    inflight.push_back(route(router, embedding_request(shared_aig(seed))));

  const auto art = std::make_shared<const artifact::Artifact>(
      artifact::snapshot(DeepSeqModel(cfg.session.backends.model)));
  const std::uint64_t new_fp = router.reload_all(art);
  EXPECT_NE(new_fp, seed_fp);

  // Coordination: every shard now serves the SAME new fingerprint.
  for (int s = 0; s < router.num_shards(); ++s)
    EXPECT_EQ(router.shard_fingerprint(s), new_fp) << "shard " << s;

  // Zero dropped: everything in flight completed (drain-then-swap; nothing
  // was shed or failed by the push).
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    RoutedOutcome out = inflight[i].get();
    EXPECT_TRUE(out.ok()) << "in-flight task " << i;
  }

  // Re-pushing the already-live artifact fails the Session no-op guard on
  // shard 0 before anything is flipped, and every shard keeps serving.
  EXPECT_THROW((void)router.reload_all(art), Error);
  for (int s = 0; s < router.num_shards(); ++s)
    EXPECT_EQ(router.shard_fingerprint(s), new_fp);
  EXPECT_THROW((void)router.reload_all(nullptr), Error);
}

TEST(ServeRouter, SubmitWithoutCircuitReportsExceptionOutcome) {
  ShardRouter router(small_router(1));
  api::TaskRequest req;  // no circuit
  RoutedOutcome out = route(router, std::move(req)).get();
  EXPECT_FALSE(out.ok());
  ASSERT_TRUE(std::holds_alternative<std::exception_ptr>(out.value));
  EXPECT_THROW(std::rethrow_exception(std::get<std::exception_ptr>(out.value)),
               Error);
}

TEST(ServeRouter, BadConfigThrows) {
  EXPECT_THROW(ShardRouter{small_router(0)}, Error);
  RouterConfig no_workers = small_router(1);
  no_workers.workers_per_shard = 0;
  EXPECT_THROW(ShardRouter{no_workers}, Error);
}

}  // namespace
}  // namespace deepseq::serve
