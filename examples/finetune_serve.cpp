// The trainer-to-Session weight pipeline, end to end:
//
//   1. fine-tune a small DeepSeq model briefly on a tiny design,
//   2. save it as a versioned model artifact (manifest + content hash),
//   3. serve the artifact through an api::Session (BackendOptions::artifact),
//   4. assert the Session's task results are bit-identical to invoking the
//      tuned model directly (exit code 1 on any mismatch — CI smoke),
//   5. hot-push the artifact into a running seed-weight Session with
//      Session::reload_weights and show the fingerprint flip.
//
//   finetune_serve [artifact.dsqa]          train + save + serve (default
//                                           path: /tmp/deepseq_tuned.dsqa)
//   DEEPSEQ_ARTIFACT=... finetune_serve     skip training; serve the given
//                                           artifact and verify parity
//                                           against a model rebuilt from it

#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/session.hpp"
#include "artifact/model_io.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

using namespace deepseq;

namespace {

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Serve logic/transition probability through a Session built on `artifact`
/// and compare bit-exactly against the tuned model invoked directly.
bool verify_parity(const std::shared_ptr<const artifact::Artifact>& art,
                   const DeepSeqModel& tuned) {
  api::SessionConfig cfg;
  cfg.engine.threads = 2;
  cfg.backends.artifact = art;
  api::Session session(cfg);
  std::printf("session backend: %s, weights %s, fingerprint %016llx\n",
              session.backend().info().name.c_str(),
              session.backend().info().weights.c_str(),
              static_cast<unsigned long long>(
                  session.backend().info().fingerprint));

  const auto circuit = std::make_shared<const Circuit>(
      decompose_to_aig(iscas89_s27()).aig);
  Rng rng(11);
  api::TaskRequest req;
  req.circuit = circuit;
  req.workload = random_workload(*circuit, rng);
  req.init_seed = 7;
  req.task = api::TaskKind::kLogicProb;
  const api::TaskResult lg = session.run_sync(req);
  req.task = api::TaskKind::kTransitionProb;
  const api::TaskResult tr = session.run_sync(req);

  nn::Graph g(false);
  const auto want = tuned.regress(
      g, tuned.embed(g, build_circuit_graph(*circuit), req.workload,
                     req.init_seed));
  const bool lg_ok =
      bit_identical(*lg.as<api::LogicProbOutput>().prob, want.lg->value);
  const bool tr_ok =
      bit_identical(*tr.as<api::TransitionProbOutput>().prob, want.tr->value);
  std::printf("parity vs direct tuned model: logic-prob %s, transition-prob "
              "%s\n",
              lg_ok ? "bit-identical" : "MISMATCH",
              tr_ok ? "bit-identical" : "MISMATCH");
  return lg_ok && tr_ok;
}

}  // namespace

int main(int argc, char** argv) try {
  // Serve-only mode: DEEPSEQ_ARTIFACT names a previously saved artifact.
  if (const auto art = api::artifact_from_env()) {
    std::printf("DEEPSEQ_ARTIFACT set: serving %s weights, content hash "
                "%016llx\n",
                art->manifest.backend_kind.c_str(),
                static_cast<unsigned long long>(art->manifest.content_hash));
    for (const auto& [key, value] : art->manifest.metadata)
      std::printf("  metadata %s = %s\n", key.c_str(), value.c_str());
    DeepSeqModel tuned(art->manifest.model);
    artifact::apply(*art, tuned);
    return verify_parity(art, tuned) ? 0 : 1;
  }

  const std::string path = argc > 1 ? argv[1] : "/tmp/deepseq_tuned.dsqa";

  // 1. Fine-tune briefly on the embedded s27 benchmark.
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  Rng rng(5);
  std::vector<TrainSample> train;
  for (int k = 0; k < 2; ++k) {
    Workload w = random_workload(aig, rng);
    ActivityOptions sim;
    sim.num_cycles = 500;
    train.push_back(make_sample("s27_" + std::to_string(k), aig, std::move(w),
                                sim, rng.next_u64()));
  }
  DeepSeqModel model(ModelConfig::deepseq(/*hidden=*/16, /*t=*/2));
  TrainOptions opt;
  opt.epochs = 1;
  opt.lr = 5e-3f;
  opt.verbose = true;
  Trainer trainer(model, opt);
  std::printf("fine-tuning %s for %d epoch(s) on %zu samples...\n",
              model.config().description().c_str(), opt.epochs, train.size());
  trainer.fit(train);

  // 2. Save the versioned artifact (epoch/loss metadata embedded).
  const std::uint64_t hash = trainer.save_artifact(path);
  std::printf("saved artifact %s (content hash %016llx)\n", path.c_str(),
              static_cast<unsigned long long>(hash));

  // 3 + 4. Serve it through a Session and verify bit-exact parity.
  const auto art = std::make_shared<const artifact::Artifact>(
      artifact::load_artifact(path));
  if (!verify_parity(art, model)) return 1;

  // 5. Hot reload: push the tuned weights into a Session that is already
  // serving seed weights — zero downtime, new fingerprint.
  api::SessionConfig cfg;
  cfg.engine.threads = 2;
  cfg.backends.model = model.config();
  api::Session session(cfg);
  const std::uint64_t before = session.backend().info().fingerprint;
  const std::uint64_t after = session.reload_weights(art);
  std::printf("hot reload: fingerprint %016llx -> %016llx (%s)\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(after),
              session.backend().info().weights.c_str());
  return before != after ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "finetune_serve: %s\n", e.what());
  return 1;
}
