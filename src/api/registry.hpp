#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "core/model.hpp"
#include "core/pace.hpp"

namespace deepseq::artifact {
class Artifact;
}

namespace deepseq::api {

/// Construction presets handed to every backend factory. A factory reads
/// the slice it cares about ("deepseq" reads `model`, "pace" reads `pace`);
/// new backends can extend this struct or close over their own options at
/// registration time.
struct BackendOptions {
  ModelConfig model = ModelConfig::deepseq(/*hidden=*/32, /*t=*/4);
  PaceConfig pace;
  /// Optional tuned weights (the trainer-to-Session pipeline): when set,
  /// the built-in factories ignore the config presets above, rebuild the
  /// model from the artifact's manifest snapshot + weight sections, and
  /// derive the backend fingerprint from the artifact content hash — so a
  /// tuned backend can never share cache entries with a seed-built one.
  /// The artifact kind must match the backend ("deepseq" and "ensemble"
  /// read deepseq artifacts, "pace" reads pace ones); create() fails fast
  /// naming both kinds otherwise.
  std::shared_ptr<const artifact::Artifact> artifact;
  /// "ensemble" backend: h0 realizations averaged per request.
  int ensemble_k = 4;
};

/// String-keyed factory registry: the extensibility point that replaces the
/// old hardcoded `Backend` enum. Backends are resolved by name — from code,
/// from DEEPSEQ_BACKEND, from CLI flags — and new ones (quantized, distilled,
/// onnx-exported, ...) plug in with one register_backend() call, no serving
/// layer changes. All methods are thread-safe.
class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<EmbeddingBackend>(const BackendOptions&)>;

  /// Register a factory under `name`. Throws Error on a duplicate name.
  void register_backend(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;

  /// Registered names, sorted — for CLIs, benches and error messages.
  std::vector<std::string> names() const;

  /// Instantiate the backend registered under `name`. Unknown names throw
  /// an Error that lists every registered name (fail fast — no silent
  /// fallback to a default).
  std::unique_ptr<EmbeddingBackend> create(const std::string& name,
                                           const BackendOptions& options) const;

  /// Validate a requested name: empty resolves to `fallback`, a registered
  /// name resolves to itself, anything else throws the create() error.
  std::string resolve(const std::string& requested,
                      const std::string& fallback) const;

  /// The process-wide registry, pre-populated with the built-in "deepseq",
  /// "pace" and "ensemble" backends.
  static BackendRegistry& global();

 private:
  std::string unknown_message(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// Resolve DEEPSEQ_BACKEND against `registry` (empty/unset -> `fallback`;
/// unknown -> Error listing the registered names).
std::string backend_from_env(const BackendRegistry& registry,
                             const std::string& fallback = "deepseq");

/// Load the artifact DEEPSEQ_ARTIFACT points at; nullptr when the variable
/// is unset or empty. Same fail-fast contract as DEEPSEQ_BACKEND: a
/// nonexistent path, truncated file or corrupt content throws an Error
/// naming the variable, the path and what was found — never a silent
/// fallback to seed weights. (A kind mismatch against the chosen backend
/// surfaces later, at BackendRegistry::create.)
std::shared_ptr<const artifact::Artifact> artifact_from_env();

/// `base` with DEEPSEQ_ARTIFACT resolved into `artifact` (unchanged when
/// the variable is unset) — the one-liner for examples/benches/CLIs that
/// want the full env-configured serving surface.
BackendOptions options_from_env(BackendOptions base = {});

}  // namespace deepseq::api
