#include "power/grannite.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

TrainSample s27_sample(std::uint64_t seed) {
  Rng rng(seed);
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  Workload w = random_workload(aig, rng);
  return make_sample("s27", aig, std::move(w), {600, 1}, rng.next_u64());
}

TEST(Grannite, SampleSeparatesSourcesFromLogic) {
  const TrainSample base = s27_sample(1);
  const GranniteSample gs = make_grannite_sample(base);
  for (int v = 0; v < base.graph.num_nodes; ++v) {
    const bool src = gs.source_feats.at(v, 2) > 0.5f;
    const bool masked = gs.comb_mask.at(v, 0) > 0.5f;
    EXPECT_NE(src, masked) << "node " << v;
    if (src) {
      // Source features equal the simulated PI/FF activity.
      EXPECT_FLOAT_EQ(gs.source_feats.at(v, 0),
                      base.target_tr.at(v, 0) + base.target_tr.at(v, 1));
      EXPECT_FLOAT_EQ(gs.source_feats.at(v, 1), base.target_lg.at(v, 0));
    }
  }
}

TEST(Grannite, ForwardShapeAndRange) {
  const TrainSample base = s27_sample(2);
  const GranniteSample gs = make_grannite_sample(base);
  GranniteConfig cfg;
  cfg.hidden_dim = 8;
  const GranniteModel model(cfg);
  nn::Graph g(false);
  const auto pred = model.forward(g, base.graph, gs.source_feats, 1);
  EXPECT_EQ(pred->value.rows(), base.graph.num_nodes);
  EXPECT_EQ(pred->value.cols(), 2);
  for (std::size_t i = 0; i < pred->value.size(); ++i) {
    EXPECT_GE(pred->value.data()[i], 0.0f);
    EXPECT_LE(pred->value.data()[i], 1.0f);
  }
}

TEST(Grannite, ToggleRatesUseSimulationForSources) {
  const TrainSample base = s27_sample(3);
  const GranniteSample gs = make_grannite_sample(base);
  GranniteConfig cfg;
  cfg.hidden_dim = 8;
  const GranniteModel model(cfg);
  const auto rates = model.toggle_rates(base.graph, gs.source_feats, 1);
  for (int v = 0; v < base.graph.num_nodes; ++v) {
    if (gs.source_feats.at(v, 2) > 0.5f) {
      EXPECT_NEAR(rates[v], gs.source_feats.at(v, 0), 1e-6);
    }
  }
}

TEST(Grannite, FitReducesCombGateError) {
  std::vector<TrainSample> bases;
  for (int k = 0; k < 3; ++k) bases.push_back(s27_sample(10 + k));
  std::vector<GranniteSample> gs;
  for (const auto& b : bases) gs.push_back(make_grannite_sample(b));

  GranniteConfig cfg;
  cfg.hidden_dim = 8;
  GranniteModel model(cfg);
  auto comb_error = [&]() {
    double err = 0.0;
    int n = 0;
    for (const auto& s : gs) {
      nn::Graph g(false);
      const auto pred = model.forward(g, s.base->graph, s.source_feats,
                                      s.base->init_seed);
      for (int v = 0; v < s.base->graph.num_nodes; ++v) {
        if (s.comb_mask.at(v, 0) < 0.5f) continue;
        err += std::abs(pred->value.at(v, 0) - s.base->target_tr.at(v, 0));
        err += std::abs(pred->value.at(v, 1) - s.base->target_tr.at(v, 1));
        n += 2;
      }
    }
    return err / n;
  };
  const double before = comb_error();
  model.fit(gs, 25, 5e-3f);
  const double after = comb_error();
  EXPECT_LT(after, before);
}

TEST(Grannite, CopyParamsMatchesOutputs) {
  const TrainSample base = s27_sample(4);
  const GranniteSample gs = make_grannite_sample(base);
  GranniteConfig cfg;
  cfg.hidden_dim = 8;
  const GranniteModel src(cfg);
  GranniteConfig cfg2 = cfg;
  cfg2.seed = 1234;
  GranniteModel dst(cfg2);
  dst.copy_params_from(src);
  nn::Graph g1(false), g2(false);
  const auto a = src.forward(g1, base.graph, gs.source_feats, 5);
  const auto b = dst.forward(g2, base.graph, gs.source_feats, 5);
  for (std::size_t i = 0; i < a->value.size(); ++i)
    EXPECT_FLOAT_EQ(a->value.data()[i], b->value.data()[i]);
}

}  // namespace
}  // namespace deepseq
