#include "ingest/source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include "common/error.hpp"

namespace deepseq::ingest {

FileChunkReader::FileChunkReader(const std::string& path,
                                 std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 1)) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) throw ParseError("cannot open file: " + path);
  struct stat st{};
  if (::fstat(fd_, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd_);
    fd_ = -1;
    throw ParseError("cannot open file: " + path);
  }
  file_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes_ > 0) {
    void* m = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (m != MAP_FAILED) {
      map_ = static_cast<const char*>(m);
      ::madvise(m, file_bytes_, MADV_SEQUENTIAL);
    }
  }
  if (map_ == nullptr && file_bytes_ > 0) buffer_.resize(chunk_bytes_);
}

FileChunkReader::~FileChunkReader() {
  if (map_ != nullptr)
    ::munmap(const_cast<char*>(map_), static_cast<std::size_t>(file_bytes_));
  if (fd_ >= 0) ::close(fd_);
}

std::string_view FileChunkReader::next_chunk() {
  if (pos_ >= file_bytes_) return {};
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_bytes_, file_bytes_ - pos_));
  if (map_ != nullptr) {
    std::string_view view(map_ + pos_, want);
    pos_ += want;
    return view;
  }
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::read(fd_, buffer_.data() + got, want - got);
    if (n < 0) throw ParseError("read error (file truncated mid-stream?)");
    if (n == 0) break;  // file shrank underneath us: serve what we have
    got += static_cast<std::size_t>(n);
  }
  pos_ += got;
  if (got == 0) pos_ = file_bytes_;  // force EOF
  return {buffer_.data(), got};
}

}  // namespace deepseq::ingest
